// Command simulate regenerates the paper's Section 6 simulation study.
//
// Usage:
//
//	simulate [-group all|table1|1|2|3|4|5|findings|integrated|measured]
//	         [-scale N] [-mem B] [-seed S]
//
// The analytic groups evaluate the cost formulas at full TREC scale, which
// is exactly what the paper's simulation did. The measured group builds
// 1/scale synthetic corpora, runs the three real algorithms and prints
// measured page I/O next to the model.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"textjoin/internal/corpus"
	"textjoin/internal/costmodel"
	"textjoin/internal/metrics"
	"textjoin/internal/simulate"
	"textjoin/internal/telemetry"
)

func main() {
	group := flag.String("group", "all", "which experiment group to run: all, table1, 1, 2, 3, 4, 5, lambda, delta, extended, findings, integrated, measured")
	scale := flag.Int64("scale", 256, "corpus shrink divisor for -group measured")
	mem := flag.Int64("mem", 200, "memory budget B in pages for -group measured")
	seed := flag.Int64("seed", 1, "corpus seed for -group measured")
	telemetryMode := flag.String("telemetry", "", "emit a telemetry snapshot to stderr after -group measured: text or json")
	promPath := flag.String("prom", "", "after -group measured, write the collector as a Prometheus text exposition to this file")
	flag.Parse()

	if err := run(*group, *scale, *mem, *seed, *telemetryMode, *promPath); err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}
}

func run(group string, scale, mem, seed int64, telemetryMode, promPath string) error {
	printTables := func(tables []*simulate.Table) {
		for _, t := range tables {
			fmt.Println(t.Format())
		}
	}
	switch group {
	case "all":
		printTables(simulate.RunAll())
		fmt.Println(simulate.FormatFindings(simulate.Findings()))
		return nil
	case "table1":
		printTables([]*simulate.Table{simulate.Table1()})
	case "1":
		printTables(simulate.Group1())
	case "2":
		printTables(simulate.Group2())
	case "3":
		printTables(simulate.Group3())
	case "4":
		printTables(simulate.Group4())
	case "5":
		printTables(simulate.Group5())
	case "lambda":
		printTables(simulate.GroupLambda())
	case "delta":
		printTables(simulate.GroupDelta())
	case "extended":
		printExtended()
	case "findings":
		fmt.Println(simulate.FormatFindings(simulate.Findings()))
	case "integrated":
		// The integrated choices are the last column of every table;
		// print a compact choice matrix over the whole grid.
		fmt.Println("== integrated algorithm choices across the grid ==")
		for _, t := range simulate.RunAll() {
			if t.ID == "table1" {
				continue
			}
			var choices []string
			for _, r := range t.Rows {
				choices = append(choices, fmt.Sprintf("%s:%s", r.Label, r.Chosen))
			}
			fmt.Printf("%-18s %s\n", t.ID, strings.Join(choices, "  "))
		}
	case "measured":
		var tel *telemetry.Collector
		var sink telemetry.Sink
		if telemetryMode != "" {
			var err error
			sink, err = telemetry.SinkFor(telemetryMode)
			if err != nil {
				return err
			}
			tel = telemetry.New()
		}
		if promPath != "" && tel == nil {
			tel = telemetry.New()
		}
		for _, pair := range [][2]corpus.Profile{
			{corpus.WSJ, corpus.WSJ},
			{corpus.FR, corpus.FR},
			{corpus.DOE, corpus.DOE},
			{corpus.WSJ, corpus.DOE},
		} {
			res, err := simulate.MeasuredTelemetry(pair[0], pair[1], scale, mem, seed, tel)
			if err != nil {
				return err
			}
			fmt.Println(res.Format())
		}
		if sink != nil {
			if err := sink.Export(os.Stderr, tel.Snapshot()); err != nil {
				return err
			}
		}
		if promPath != "" {
			if err := writeProm(promPath, tel); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown group %q", group)
	}
	return nil
}

// printExtended shows the CPU+communication model (the paper's
// further-studies item 2) for each self join under two configurations: a
// slow CPU and an expensive link to a remote C1.
func printExtended() {
	sys := costmodel.DefaultSystem()
	q := costmodel.DefaultQuery()
	configs := []struct {
		name string
		cpu  costmodel.CPUParams
		net  costmodel.NetParams
	}{
		{"io-only (paper)", costmodel.CPUParams{}, costmodel.NetParams{}},
		{"slow-cpu (1000 ops/page)", costmodel.CPUParams{OpsPerPageRead: 1000}, costmodel.NetParams{}},
		{"remote-C1 (2 units/page)", costmodel.CPUParams{}, costmodel.NetParams{CostPerPage: 2, C1Remote: true}},
	}
	for _, p := range corpus.Profiles() {
		in := costmodel.Input{C1: p.Stats(), C2: p.Stats()}
		fmt.Printf("== extended: self join %s ⋈ %s ==\n", p.Name, p.Name)
		fmt.Printf("%-26s %6s %14s %14s %14s   %s\n", "config", "alg", "io", "cpu", "comm", "total")
		for _, cfg := range configs {
			chosen, bds := costmodel.ChooseTotal(in, sys, q, cfg.cpu, cfg.net)
			for _, b := range bds {
				marker := " "
				if b.Algorithm == chosen {
					marker = "*"
				}
				fmt.Printf("%-26s %5v%s %14.0f %14.0f %14.0f   %.0f\n",
					cfg.name, b.Algorithm, marker, b.IO, b.CPU, b.Comm, b.Total())
			}
		}
		fmt.Println()
	}
}

// writeProm renders the collector as a Prometheus text exposition, so a
// measured run's counters can be pushed to any scrape-file collector.
func writeProm(path string, tel *telemetry.Collector) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	// Backstop release for the error path; the success path checks the
	// explicit Close below and the second Close is a no-op.
	defer f.Close()
	if err := metrics.Encode(f, tel.Snapshot()); err != nil {
		return err
	}
	return f.Close()
}
