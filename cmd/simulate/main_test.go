package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"textjoin/internal/metrics"
)

// silence routes stdout to /dev/null for the duration of a test, keeping
// the test log readable while still executing the full printing path.
func silence(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = old
		devnull.Close()
	})
}

func TestRunGroups(t *testing.T) {
	silence(t)
	for _, group := range []string{"table1", "1", "2", "3", "4", "5", "lambda", "delta", "extended", "findings", "integrated"} {
		if err := run(group, 0, 0, 0, "", ""); err != nil {
			t.Errorf("run(%q): %v", group, err)
		}
	}
}

func TestRunAll(t *testing.T) {
	silence(t)
	if err := run("all", 0, 0, 0, "", ""); err != nil {
		t.Errorf("run(all): %v", err)
	}
}

func TestRunMeasured(t *testing.T) {
	if testing.Short() {
		t.Skip("empirical run")
	}
	silence(t)
	if err := run("measured", 2048, 200, 1, "", ""); err != nil {
		t.Errorf("run(measured): %v", err)
	}
}

// TestRunMeasuredProm checks the -prom export: the written file must be
// a valid Prometheus exposition carrying the per-file I/O counters.
func TestRunMeasuredProm(t *testing.T) {
	if testing.Short() {
		t.Skip("empirical run")
	}
	silence(t)
	path := filepath.Join(t.TempDir(), "sim.prom")
	if err := run("measured", 4096, 200, 1, "", path); err != nil {
		t.Fatalf("run(measured, prom): %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.Lint(data); err != nil {
		t.Errorf("prom export rejected by parser: %v", err)
	}
	if !strings.Contains(string(data), "textjoin_iosim_file_seq_reads_total") {
		t.Error("prom export lacks per-file I/O counters")
	}
}

func TestRunUnknownGroup(t *testing.T) {
	if err := run("bogus", 0, 0, 0, "", ""); err == nil {
		t.Error("unknown group: want error")
	}
}
