package main

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"

	"textjoin"
	"textjoin/internal/core"
	"textjoin/internal/corpus"
	"textjoin/internal/costmodel"
	"textjoin/internal/telemetry"
)

// BenchConfig fixes every input of the experiment grid; two runs with
// the same config produce byte-identical reports.
type BenchConfig struct {
	Scale       int64   `json:"scale"`
	Seed        int64   `json:"seed"`
	MemoryPages int64   `json:"memory_pages"`
	Lambda      int     `json:"lambda"`
	Alpha       float64 `json:"alpha"`
	Workers     []int   `json:"workers"`
}

func defaultBenchConfig() BenchConfig {
	return BenchConfig{Scale: 256, Seed: 1, MemoryPages: 256, Lambda: 5, Alpha: 5, Workers: []int{1, 4}}
}

// shape is one collection pairing of the grid.
type shape struct {
	name   string
	p1, p2 string
}

// shapes returns the grid's collection pairings: the paper's three
// self-joins plus one cross-collection join.
func shapes() []shape {
	return []shape{
		{"wsj-wsj", "wsj", "wsj"},
		{"fr-fr", "fr", "fr"},
		{"doe-doe", "doe", "doe"},
		{"wsj-fr", "wsj", "fr"},
	}
}

// Cell is one grid measurement. All fields come from the deterministic
// simulated store; none is wall-clock derived.
type Cell struct {
	Shape         string  `json:"shape"`
	Algorithm     string  `json:"alg"`
	Workers       int     `json:"workers"`
	SeqReads      int64   `json:"seq_reads"`
	RandReads     int64   `json:"rand_reads"`
	Cost          float64 `json:"cost"`
	Comparisons   int64   `json:"comparisons"`
	Accumulations int64   `json:"accumulations"`
	EntryFetches  int64   `json:"entry_fetches"`
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
	// Prefilter counters; only the prefilter grid's "+pf" cells carry
	// non-zero values.
	PagesSkipped    int64 `json:"pages_skipped,omitempty"`
	ClustersSkipped int64 `json:"clusters_skipped,omitempty"`
	DocsSkipped     int64 `json:"docs_skipped,omitempty"`
	FalsePasses     int64 `json:"false_passes,omitempty"`
	// Approximate-join fields; only the LSH grid's "LSH-b*r*" cells
	// carry non-zero values. Recall is measured against the exact
	// ground-truth pair set of the same shape, not estimated.
	Recall       float64 `json:"recall,omitempty"`
	BucketProbes int64   `json:"bucket_probes,omitempty"`
	Candidates   int64   `json:"candidates,omitempty"`
	// ResultsHash fingerprints the full result set, so the baseline
	// comparison also catches correctness regressions (and proves the
	// parallel variants produce serial-identical output).
	ResultsHash string `json:"results_hash"`
}

func (c Cell) key() string { return fmt.Sprintf("%s/%s/w%d", c.Shape, c.Algorithm, c.Workers) }

// IntegratedCell records the planner's behaviour on one shape: the
// estimates it ranked, its choice, and the measured cost of that choice.
type IntegratedCell struct {
	Shape     string             `json:"shape"`
	Chosen    string             `json:"chosen"`
	Estimates map[string]float64 `json:"estimates"`
	Measured  float64            `json:"measured"`
}

// CalibrationSample is one estimated-vs-measured observation in the JSON
// report (costmodel.Sample with the algorithm as a string).
type CalibrationSample struct {
	Label     string  `json:"label"`
	Algorithm string  `json:"alg"`
	Estimated float64 `json:"estimated"`
	Measured  float64 `json:"measured"`
}

// CalibrationReport is the cost-model audit section of the report.
type CalibrationReport struct {
	Samples []CalibrationSample `json:"samples"`
	// PlannerSamples are extracted by replaying the integrated runs'
	// telemetry plan events through core.PlanSamples — the live-trace
	// counterpart of the full-grid Samples above.
	PlannerSamples []CalibrationSample `json:"planner_samples"`
	Mispicks       []struct {
		Label         string  `json:"label"`
		EstimatedBest string  `json:"estimated_best"`
		MeasuredBest  string  `json:"measured_best"`
		Penalty       float64 `json:"penalty"`
	} `json:"mispicks"`
}

// calibration rebuilds the aggregation from the serialized samples.
func (c *CalibrationReport) calibration() (*costmodel.Calibration, error) {
	cal := costmodel.NewCalibration(nil)
	for _, s := range c.Samples {
		alg, err := parseModelAlg(s.Algorithm)
		if err != nil {
			return nil, err
		}
		if err := cal.Add(costmodel.Sample{Label: s.Label, Algorithm: alg, Estimated: s.Estimated, Measured: s.Measured}); err != nil {
			return nil, err
		}
	}
	return cal, nil
}

func (c *CalibrationReport) writeReport(w io.Writer) error {
	if c == nil {
		return fmt.Errorf("report carries no calibration section (run with -calibrate)")
	}
	cal, err := c.calibration()
	if err != nil {
		return err
	}
	return cal.WriteReport(w)
}

func parseModelAlg(s string) (costmodel.Algorithm, error) {
	for _, a := range []costmodel.Algorithm{costmodel.AlgHHNL, costmodel.AlgHVNL, costmodel.AlgVVM} {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("unknown algorithm %q", s)
}

// Report is the complete observatory output.
type Report struct {
	Version     int                `json:"version"`
	Config      BenchConfig        `json:"config"`
	Cells       []Cell             `json:"cells"`
	Integrated  []IntegratedCell   `json:"integrated"`
	Calibration *CalibrationReport `json:"calibration,omitempty"`
}

// runGrid executes the full experiment grid.
func runGrid(cfg BenchConfig, calibrate bool) (*Report, error) {
	report := &Report{Version: 1, Config: cfg}
	cal := costmodel.NewCalibration(nil)
	var planner []CalibrationSample

	for _, sh := range shapes() {
		env, err := buildShape(sh, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", sh.name, err)
		}

		// Measured cost of every algorithm, per worker count.
		measured := map[string]float64{}
		for _, alg := range []textjoin.Algorithm{textjoin.HHNL, textjoin.HVNL, textjoin.VVM} {
			for _, workers := range cfg.Workers {
				cell, _, err := runCell(env, cfg, sh.name, alg, workers)
				if err != nil {
					return nil, fmt.Errorf("%s/%v/w%d: %v", sh.name, alg, workers, err)
				}
				report.Cells = append(report.Cells, cell)
				if workers == 1 {
					measured[alg.String()] = cell.Cost
				}
			}
		}

		// The planner's view of the same shape.
		ic, samples, err := runIntegrated(env, cfg, sh.name, measured)
		if err != nil {
			return nil, fmt.Errorf("%s: integrated: %v", sh.name, err)
		}
		report.Integrated = append(report.Integrated, ic)
		if calibrate {
			for _, s := range samples {
				alg, err := parseModelAlg(s.Algorithm)
				if err != nil {
					return nil, err
				}
				if err := cal.Add(costmodel.Sample{Label: s.Label, Algorithm: alg, Estimated: s.Estimated, Measured: s.Measured}); err != nil {
					return nil, err
				}
			}
			planner = append(planner, extractPlannerSamples(env.tel, sh.name)...)
		}
	}

	if calibrate {
		cr := &CalibrationReport{PlannerSamples: planner}
		for _, s := range cal.Samples() {
			cr.Samples = append(cr.Samples, CalibrationSample{
				Label: s.Label, Algorithm: s.Algorithm.String(), Estimated: s.Estimated, Measured: s.Measured,
			})
		}
		for _, m := range cal.Mispicks() {
			cr.Mispicks = append(cr.Mispicks, struct {
				Label         string  `json:"label"`
				EstimatedBest string  `json:"estimated_best"`
				MeasuredBest  string  `json:"measured_best"`
				Penalty       float64 `json:"penalty"`
			}{m.Label, m.EstimatedBest.String(), m.MeasuredBest.String(), m.Penalty})
		}
		report.Calibration = cr
	}
	return report, nil
}

// shapeEnv is one built workspace of the grid.
type shapeEnv struct {
	ws         *textjoin.Workspace
	c1, c2     *textjoin.Collection
	inv1, inv2 *textjoin.InvertedFile
	tel        *textjoin.Telemetry
}

func buildShape(sh shape, cfg BenchConfig) (*shapeEnv, error) {
	ws := textjoin.NewWorkspace(textjoin.WithAlpha(cfg.Alpha))
	gen := func(name, profile string, seed int64) (*textjoin.Collection, error) {
		p, err := corpus.ProfileByName(profile)
		if err != nil {
			return nil, err
		}
		sp := p.Scaled(cfg.Scale)
		sp.Name = name
		return ws.GenerateCorpus(sp, seed)
	}
	c1, err := gen("c1", sh.p1, cfg.Seed)
	if err != nil {
		return nil, err
	}
	c2, err := gen("c2", sh.p2, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	inv1, err := ws.BuildInvertedFile(c1)
	if err != nil {
		return nil, err
	}
	inv2, err := ws.BuildInvertedFile(c2)
	if err != nil {
		return nil, err
	}
	// Warm the one-time B+tree loads during the build phase. LoadIndex is
	// idempotent, so without this the first HVNL cell would pay the tree
	// read and later cells would not, making cells order-dependent.
	if _, err := inv1.LoadIndex(); err != nil {
		return nil, err
	}
	if _, err := inv2.LoadIndex(); err != nil {
		return nil, err
	}
	tel := textjoin.NewTelemetry()
	ws.ResetIOStats()
	ws.SetTelemetry(tel)
	return &shapeEnv{ws: ws, c1: c1, c2: c2, inv1: inv1, inv2: inv2, tel: tel}, nil
}

func (e *shapeEnv) inputs() textjoin.Inputs {
	return textjoin.Inputs{Outer: e.c2, Inner: e.c1, InnerInv: e.inv1, OuterInv: e.inv2}
}

func (e *shapeEnv) options(cfg BenchConfig) textjoin.Options {
	return textjoin.Options{Lambda: cfg.Lambda, MemoryPages: cfg.MemoryPages, Telemetry: e.tel}
}

// runCell measures one (shape, algorithm, workers) grid point. The raw
// results are returned alongside the cell so grids that need them — the
// LSH grid's ground truth — avoid a second, head-position-dependent run.
func runCell(env *shapeEnv, cfg BenchConfig, shapeName string, alg textjoin.Algorithm, workers int) (Cell, []textjoin.Result, error) {
	// Park the heads so each cell's sequential/random classification is
	// independent of where the previous cell finished.
	env.ws.ParkHeads()
	in, opts := env.inputs(), env.options(cfg)
	var results []textjoin.Result
	var stats *textjoin.JoinStats
	var err error
	switch {
	case workers > 1 && alg == textjoin.HHNL:
		results, stats, err = textjoin.JoinHHNLParallel(in, opts, workers)
	case workers > 1 && alg == textjoin.HVNL:
		results, stats, err = textjoin.JoinHVNLParallel(in, opts, workers)
	case workers > 1 && alg == textjoin.VVM:
		results, stats, err = textjoin.JoinVVMParallel(in, opts, workers)
	default:
		results, stats, err = textjoin.Join(alg, in, opts)
	}
	if err != nil {
		return Cell{}, nil, err
	}
	return Cell{
		Shape:         shapeName,
		Algorithm:     alg.String(),
		Workers:       workers,
		SeqReads:      stats.IO.SeqReads,
		RandReads:     stats.IO.RandReads,
		Cost:          stats.Cost,
		Comparisons:   stats.Comparisons,
		Accumulations: stats.Accumulations,
		EntryFetches:  stats.EntryFetches,
		CacheHits:     stats.Cache.Hits,
		CacheMisses:   stats.Cache.Misses,
		ResultsHash:   hashResults(results),
	}, results, nil
}

// runIntegrated runs the planner on the shape and pairs its estimates
// with the measured workers=1 costs of the grid, producing one
// calibration sample per algorithm.
func runIntegrated(env *shapeEnv, cfg BenchConfig, shapeName string, measured map[string]float64) (IntegratedCell, []CalibrationSample, error) {
	env.ws.ParkHeads()
	in, opts := env.inputs(), env.options(cfg)
	dec, err := textjoin.Choose(in, opts)
	if err != nil {
		return IntegratedCell{}, nil, err
	}
	_, stats, _, err := textjoin.JoinIntegrated(in, opts)
	if err != nil {
		return IntegratedCell{}, nil, err
	}
	ic := IntegratedCell{
		Shape:     shapeName,
		Chosen:    dec.Chosen.String(),
		Estimates: map[string]float64{},
		Measured:  stats.Cost,
	}
	var samples []CalibrationSample
	for _, est := range dec.Estimates {
		name := est.Algorithm.String()
		ic.Estimates[name] = est.Seq
		if m, ok := measured[name]; ok {
			samples = append(samples, CalibrationSample{Label: shapeName, Algorithm: name, Estimated: est.Seq, Measured: m})
		}
	}
	return ic, samples, nil
}

// extractPlannerSamples replays the shape's telemetry plan events; the
// labels are re-prefixed with the shape so grid cells stay distinct.
func extractPlannerSamples(tel *telemetry.Collector, shapeName string) []CalibrationSample {
	var out []CalibrationSample
	for _, s := range core.PlanSamples(tel.Snapshot()) {
		out = append(out, CalibrationSample{
			Label:     shapeName + "/" + s.Label,
			Algorithm: s.Algorithm.String(),
			Estimated: s.Estimated,
			Measured:  s.Measured,
		})
	}
	return out
}

// hashResults fingerprints a result set: outer ids, match ids and the
// exact similarity bits.
func hashResults(results []textjoin.Result) string {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		//lint:ignore errdrop hash.Hash Write is documented to never return an error
		h.Write(buf[:])
	}
	for _, r := range results {
		put(uint64(r.Outer))
		for _, m := range r.Matches {
			put(uint64(m.Doc))
			put(math.Float64bits(m.Sim))
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// compare returns one message per regression of cur against base. Cells
// present only in cur are additions, not regressions; cells missing from
// cur and any value drifting beyond the relative tolerance fail.
func compare(cur, base *Report, tolerance float64) []string {
	var out []string
	curCells := map[string]Cell{}
	for _, c := range cur.Cells {
		curCells[c.key()] = c
	}
	for _, b := range base.Cells {
		c, ok := curCells[b.key()]
		if !ok {
			out = append(out, fmt.Sprintf("%s: cell missing from current report", b.key()))
			continue
		}
		check := func(field string, got, want float64) {
			if !within(got, want, tolerance) {
				out = append(out, fmt.Sprintf("%s: %s = %g, baseline %g", b.key(), field, got, want))
			}
		}
		check("seq_reads", float64(c.SeqReads), float64(b.SeqReads))
		check("rand_reads", float64(c.RandReads), float64(b.RandReads))
		check("cost", c.Cost, b.Cost)
		check("comparisons", float64(c.Comparisons), float64(b.Comparisons))
		check("accumulations", float64(c.Accumulations), float64(b.Accumulations))
		check("entry_fetches", float64(c.EntryFetches), float64(b.EntryFetches))
		check("cache_hits", float64(c.CacheHits), float64(b.CacheHits))
		check("cache_misses", float64(c.CacheMisses), float64(b.CacheMisses))
		check("pages_skipped", float64(c.PagesSkipped), float64(b.PagesSkipped))
		check("docs_skipped", float64(c.DocsSkipped), float64(b.DocsSkipped))
		check("false_passes", float64(c.FalsePasses), float64(b.FalsePasses))
		check("recall", c.Recall, b.Recall)
		check("bucket_probes", float64(c.BucketProbes), float64(b.BucketProbes))
		check("candidates", float64(c.Candidates), float64(b.Candidates))
		if c.ResultsHash != b.ResultsHash {
			out = append(out, fmt.Sprintf("%s: results hash %s, baseline %s", b.key(), c.ResultsHash, b.ResultsHash))
		}
	}
	return out
}

func within(got, want, tolerance float64) bool {
	if got == want {
		return true
	}
	if want == 0 {
		return math.Abs(got) <= tolerance
	}
	return math.Abs(got-want)/math.Abs(want) <= tolerance
}

// writeHuman renders the report as a table.
func writeHuman(w io.Writer, r *Report) {
	fmt.Fprintf(w, "benchreport: scale=%d lambda=%d mem=%d alpha=%.1f\n\n",
		r.Config.Scale, r.Config.Lambda, r.Config.MemoryPages, r.Config.Alpha)
	fmt.Fprintf(w, "%-10s %-5s %3s %9s %9s %10s %12s %s\n",
		"shape", "alg", "w", "seq", "rand", "cost", "accum", "hash")
	for _, c := range r.Cells {
		work := c.Comparisons + c.Accumulations
		fmt.Fprintf(w, "%-10s %-5s %3d %9d %9d %10.0f %12d %.8s\n",
			c.Shape, c.Algorithm, c.Workers, c.SeqReads, c.RandReads, c.Cost, work, c.ResultsHash)
	}
	fmt.Fprintln(w)
	for _, ic := range r.Integrated {
		fmt.Fprintf(w, "%-10s integrated chose %-5s (measured %.0f; estimates", ic.Shape, ic.Chosen, ic.Measured)
		for _, a := range []string{"HHNL", "HVNL", "VVM"} {
			if v, ok := ic.Estimates[a]; ok {
				fmt.Fprintf(w, " %s=%.0f", a, v)
			}
		}
		fmt.Fprintln(w, ")")
	}
}
