package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"textjoin/internal/analysis"
)

// tinyConfig keeps test grids fast: heavily scaled collections.
func tinyConfig() BenchConfig {
	cfg := defaultBenchConfig()
	cfg.Scale = 2048
	cfg.MemoryPages = 1000
	return cfg
}

// TestGridDeterminism is the property the checked-in baseline relies on:
// two runs with the same config produce byte-identical JSON.
func TestGridDeterminism(t *testing.T) {
	r1, err := runGrid(tinyConfig(), true)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := runGrid(tinyConfig(), true)
	if err != nil {
		t.Fatal(err)
	}
	j1, err := json.Marshal(r1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(r2)
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Errorf("reports differ across runs:\n%s\n%s", j1, j2)
	}
}

func TestGridShape(t *testing.T) {
	cfg := tinyConfig()
	report, err := runGrid(cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(shapes()) * 3 * len(cfg.Workers)
	if len(report.Cells) != wantCells {
		t.Errorf("got %d cells, want %d", len(report.Cells), wantCells)
	}
	if len(report.Integrated) != len(shapes()) {
		t.Errorf("got %d integrated cells, want %d", len(report.Integrated), len(shapes()))
	}

	// Parallel workers must reproduce the serial results and I/O exactly.
	serial := map[string]Cell{}
	for _, c := range report.Cells {
		if c.Workers == 1 {
			serial[c.Shape+"/"+c.Algorithm] = c
		}
	}
	for _, c := range report.Cells {
		s := serial[c.Shape+"/"+c.Algorithm]
		if c.ResultsHash != s.ResultsHash {
			t.Errorf("%s: parallel results diverge from serial", c.key())
		}
		if c.SeqReads != s.SeqReads || c.RandReads != s.RandReads {
			t.Errorf("%s: parallel I/O (%d,%d) differs from serial (%d,%d)",
				c.key(), c.SeqReads, c.RandReads, s.SeqReads, s.RandReads)
		}
	}

	// Calibration: one sample per (shape, algorithm), and the planner
	// replay extracted at least one sample per shape.
	if n := len(report.Calibration.Samples); n != len(shapes())*3 {
		t.Errorf("got %d calibration samples, want %d", n, len(shapes())*3)
	}
	if n := len(report.Calibration.PlannerSamples); n != len(shapes()) {
		t.Errorf("got %d planner samples, want %d", n, len(shapes()))
	}
	for _, ic := range report.Integrated {
		if len(ic.Estimates) != 3 {
			t.Errorf("%s: %d estimates", ic.Shape, len(ic.Estimates))
		}
	}
}

// TestLSHGridDeterminism extends the byte-identical-reports property to
// the LSH grid, whose baseline BENCH_PR8.json is diff-checked in CI.
func TestLSHGridDeterminism(t *testing.T) {
	r1, err := runLSHGrid(defaultBenchConfig())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := runLSHGrid(defaultBenchConfig())
	if err != nil {
		t.Fatal(err)
	}
	j1, err := json.Marshal(r1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(r2)
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Errorf("LSH reports differ across runs:\n%s\n%s", j1, j2)
	}
}

// TestLSHGridShape pins the grid's structure and the semantics of its
// cells: exact cells carry no recall or probe counters, LSH cells carry
// a measured recall in (0, 1] and a full probe/skip account, the
// serial/parallel pairs hash identically, and the frontier gate the run
// enforces (recall ≥ 0.9 at ≤ half the best exact page reads) is met by
// at least one serial LSH cell.
func TestLSHGridShape(t *testing.T) {
	cfg := defaultBenchConfig()
	report, err := runLSHGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(pfShapes()) * (2 + len(lshGridConfigs())) * len(cfg.Workers)
	if len(report.Cells) != wantCells {
		t.Errorf("got %d cells, want %d", len(report.Cells), wantCells)
	}

	bestExact := map[string]int64{}
	for _, c := range report.Cells {
		if strings.HasPrefix(c.Algorithm, "LSH-") {
			continue
		}
		if c.Recall != 0 || c.BucketProbes != 0 || c.Candidates != 0 {
			t.Errorf("%s: exact cell carries LSH fields: recall %v, probes %d, candidates %d",
				c.key(), c.Recall, c.BucketProbes, c.Candidates)
		}
		if c.Workers != 1 {
			continue
		}
		reads := c.SeqReads + c.RandReads
		if cur, ok := bestExact[c.Shape]; !ok || reads < cur {
			bestExact[c.Shape] = reads
		}
	}

	gateMet := false
	serial := map[string]Cell{}
	for _, c := range report.Cells {
		if !strings.HasPrefix(c.Algorithm, "LSH-") {
			continue
		}
		if c.Recall <= 0 || c.Recall > 1 {
			t.Errorf("%s: measured recall %v outside (0, 1]", c.key(), c.Recall)
		}
		if c.BucketProbes <= 0 || c.Candidates <= 0 {
			t.Errorf("%s: LSH cell missing probe counters: %d probes, %d candidates",
				c.key(), c.BucketProbes, c.Candidates)
		}
		if c.Workers == 1 {
			serial[c.Shape+"/"+c.Algorithm] = c
			reads := c.SeqReads + c.RandReads
			if c.Recall >= lshRecallFloor && float64(reads)*lshSpeedupFloor <= float64(bestExact[c.Shape]) {
				gateMet = true
			}
		} else if s := serial[c.Shape+"/"+c.Algorithm]; c.ResultsHash != s.ResultsHash {
			t.Errorf("%s: parallel results diverge from serial", c.key())
		}
	}
	if !gateMet {
		t.Error("no serial LSH cell meets the recall/speedup gate")
	}
}

func TestCompare(t *testing.T) {
	cur, err := runGrid(tinyConfig(), false)
	if err != nil {
		t.Fatal(err)
	}
	if msgs := compare(cur, cur, 0); len(msgs) != 0 {
		t.Errorf("self-comparison found regressions: %v", msgs)
	}

	// Perturb one cell: exact comparison flags it, a loose tolerance
	// accepts it, a hash flip always fails.
	base, _ := runGrid(tinyConfig(), false)
	base.Cells[0].Cost += 1
	base.Cells[1].Cost *= 1.001
	msgs := compare(cur, base, 0)
	if len(msgs) != 2 {
		t.Errorf("exact comparison found %d regressions, want 2: %v", len(msgs), msgs)
	}
	if msgs := compare(cur, base, 0.5); len(msgs) != 0 {
		t.Errorf("tolerant comparison still failed: %v", msgs)
	}
	base.Cells[2].ResultsHash = "feedfacefeedface"
	if msgs := compare(cur, base, 0.5); len(msgs) != 1 {
		t.Errorf("hash flip: %d regressions, want 1: %v", len(msgs), msgs)
	}

	// A baseline cell missing from the current report is a regression.
	extra := &Report{Cells: append([]Cell{}, base.Cells...)}
	extra.Cells = append(extra.Cells, Cell{Shape: "zz", Algorithm: "HHNL", Workers: 1})
	if msgs := compare(cur, extra, 0.5); len(msgs) < 2 {
		t.Errorf("missing cell not flagged: %v", msgs)
	}
}

func TestCalibrationReportText(t *testing.T) {
	report, err := runGrid(tinyConfig(), true)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := report.Calibration.writeReport(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# Cost-model calibration report", "## HHNL", "## HVNL", "## VVM", "mispicks"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("calibration report lacks %q", want)
		}
	}

	var none *CalibrationReport
	if err := none.writeReport(&sb); err == nil {
		t.Error("nil calibration section should error")
	}
}

func TestParseWorkers(t *testing.T) {
	if w, err := parseWorkers("1, 2,8"); err != nil || len(w) != 3 || w[2] != 8 {
		t.Errorf("parseWorkers: %v %v", w, err)
	}
	for _, bad := range []string{"", "0", "x", "1,,2"} {
		if _, err := parseWorkers(bad); err == nil {
			t.Errorf("parseWorkers(%q) accepted", bad)
		}
	}
}

func TestHumanReport(t *testing.T) {
	report, err := runGrid(tinyConfig(), false)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	writeHuman(&sb, report)
	for _, want := range []string{"wsj-wsj", "doe-doe", "integrated chose"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("human report lacks %q:\n%s", want, sb.String())
		}
	}
}

// TestLintcheckClean holds this command to the repo's own static
// analysis suite: the benchmark harness feeds checked-in baselines, so
// its own determinism hygiene is lint-enforced, not just reviewed.
func TestLintcheckClean(t *testing.T) {
	root, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			t.Fatal("no go.mod above working directory")
		}
		root = parent
	}
	report, err := analysis.Run(root, analysis.DefaultPolicy(),
		analysis.RunOptions{Packages: []string{"cmd/benchreport"}})
	if err != nil {
		t.Fatalf("analysis.Run: %v", err)
	}
	for _, d := range report.Diagnostics {
		t.Errorf("%s", d)
	}
}
