package main

import (
	"fmt"
	"io"
	"math"
	"strings"

	"textjoin"
)

// The LSH grid charts the recall-vs-speed frontier of the approximate
// MinHash/banding join against exact ground truth. It reuses the
// prefilter grid's clustered corpora — the regime where candidate
// generation can skip whole page runs — and runs every banding shape of
// lshGridConfigs over them. Each LSH cell's recall is *measured*: the
// exact HHNL result set of the same shape is the ground-truth pair set,
// and recall is the fraction of those pairs the approximate join
// returned. The run itself fails unless the frontier meets the floor
// the baseline was accepted under: at least one cell with recall ≥ 0.9
// at no more than half the page reads of the best exact cell.

// lshRecallFloor and lshSpeedupFloor are the acceptance gate: some cell
// must reach this recall while reading at most 1/lshSpeedupFloor of the
// best exact join's pages.
const (
	lshRecallFloor  = 0.9
	lshSpeedupFloor = 2.0
)

// lshGridConfigs returns the banding shapes of the frontier, ordered
// from cheap-and-lossy to candidate-heavy-and-near-exact. Rows per band
// sharpen the S-curve (fewer low-similarity candidates, lower recall);
// bands buy recall back at the cost of more bucket collisions.
func lshGridConfigs() []textjoin.LSHConfig {
	return []textjoin.LSHConfig{
		{Bands: 8, Rows: 1},
		{Bands: 16, Rows: 1},
		{Bands: 32, Rows: 1},
		{Bands: 64, Rows: 1},
		{Bands: 32, Rows: 2},
	}
}

func lshAlgName(cfg textjoin.LSHConfig) string {
	return fmt.Sprintf("LSH-b%dr%d", cfg.Bands, cfg.Rows)
}

// lshPair is one (outer, inner) match used for the recall measurement.
type lshPair struct{ outer, inner uint32 }

func lshPairSet(results []textjoin.Result) map[lshPair]bool {
	set := make(map[lshPair]bool)
	for _, r := range results {
		for _, m := range r.Matches {
			set[lshPair{r.Outer, m.Doc}] = true
		}
	}
	return set
}

// lshMeasuredRecall is |got ∩ truth| / |truth|; an empty truth set makes
// recall trivially 1.
func lshMeasuredRecall(got []textjoin.Result, truth map[lshPair]bool) float64 {
	if len(truth) == 0 {
		return 1
	}
	hits := 0
	for _, r := range got {
		for _, m := range r.Matches {
			if truth[lshPair{r.Outer, m.Doc}] {
				hits++
			}
		}
	}
	return float64(hits) / float64(len(truth))
}

// runLSHGrid executes the recall-vs-speed grid. Exact cells (HHNL at
// the grid budget, HVNL at its larger index-resident budget) establish
// the ground truth and the best exact page-read count per shape; each
// banding shape then runs on a freshly built, byte-identical workspace —
// the sidecar file name is fixed per collection, so one workspace can
// hold only one banding shape — at every worker count, gated on
// serial/parallel hash equality.
func runLSHGrid(cfg BenchConfig) (*Report, error) {
	cfg.MemoryPages = 8
	report := &Report{Version: 1, Config: cfg}
	gateMet := false
	for _, sh := range pfShapes() {
		env, _, err := buildLSHShape(sh, cfg, nil)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", sh.name, err)
		}
		var truth map[lshPair]bool
		bestExact := int64(math.MaxInt64)
		for _, alg := range []textjoin.Algorithm{textjoin.HHNL, textjoin.HVNL} {
			cfg := cfg
			if alg == textjoin.HVNL {
				cfg.MemoryPages = 64
			}
			for _, workers := range cfg.Workers {
				cell, results, err := runCell(env, cfg, sh.name, alg, workers)
				if err != nil {
					return nil, fmt.Errorf("%s/%v/w%d: %v", sh.name, alg, workers, err)
				}
				report.Cells = append(report.Cells, cell)
				if workers == 1 {
					if alg == textjoin.HHNL {
						truth = lshPairSet(results)
					}
					if reads := cell.SeqReads + cell.RandReads; reads < bestExact {
						bestExact = reads
					}
				}
			}
		}
		for _, lcfg := range lshGridConfigs() {
			lenv, sc, err := buildLSHShape(sh, cfg, &lcfg)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %v", sh.name, lshAlgName(lcfg), err)
			}
			var serialHash string
			for _, workers := range cfg.Workers {
				cell, results, err := runLSHCell(lenv, sc, cfg, sh.name, lcfg, workers)
				if err != nil {
					return nil, fmt.Errorf("%s/%s/w%d: %v", sh.name, lshAlgName(lcfg), workers, err)
				}
				cell.Recall = lshMeasuredRecall(results, truth)
				if workers == 1 {
					serialHash = cell.ResultsHash
					reads := cell.SeqReads + cell.RandReads
					if cell.Recall >= lshRecallFloor && float64(reads)*lshSpeedupFloor <= float64(bestExact) {
						gateMet = true
					}
				} else if cell.ResultsHash != serialHash {
					return nil, fmt.Errorf("%s/%s/w%d: parallel results diverge from serial: hash %s vs %s",
						sh.name, lshAlgName(lcfg), workers, cell.ResultsHash, serialHash)
				}
				report.Cells = append(report.Cells, cell)
			}
		}
	}
	if !gateMet {
		return nil, fmt.Errorf("frontier gate failed: no cell reached recall ≥ %.2f at ≤ 1/%.0f of the best exact page reads",
			lshRecallFloor, lshSpeedupFloor)
	}
	return report, nil
}

// buildLSHShape rebuilds the prefilter grid's clustered workspace and,
// when a banding shape is given, attaches the inner collection's MinHash
// sidecar. The rebuild per shape is what keeps the grid honest: the
// generator is deterministic, so every banding shape measures the exact
// same corpus, and the exact ground truth carries across workspaces.
func buildLSHShape(sh pfShape, cfg BenchConfig, lcfg *textjoin.LSHConfig) (*shapeEnv, *textjoin.LSHSidecar, error) {
	env, _, err := buildPrefilterShape(sh, cfg)
	if err != nil {
		return nil, nil, err
	}
	if lcfg == nil {
		return env, nil, nil
	}
	sc, err := env.ws.BuildLSH(env.c1, *lcfg)
	if err != nil {
		return nil, nil, err
	}
	env.ws.ResetIOStats()
	return env, sc, nil
}

// runLSHCell is the approximate counterpart of runCell: same parked
// heads, same telemetry, with the sidecar offered through Options.LSH
// and the LSH skip/probe counters landing in the cell.
func runLSHCell(env *shapeEnv, sc *textjoin.LSHSidecar, cfg BenchConfig, shapeName string, lcfg textjoin.LSHConfig, workers int) (Cell, []textjoin.Result, error) {
	env.ws.ParkHeads()
	in, opts := env.inputs(), env.options(cfg)
	opts.LSH = sc
	var results []textjoin.Result
	var stats *textjoin.JoinStats
	var err error
	if workers > 1 {
		results, stats, err = textjoin.JoinLSHParallel(in, opts, workers)
	} else {
		results, stats, err = textjoin.JoinLSH(in, opts)
	}
	if err != nil {
		return Cell{}, nil, err
	}
	return Cell{
		Shape:         shapeName,
		Algorithm:     lshAlgName(lcfg),
		Workers:       workers,
		SeqReads:      stats.IO.SeqReads,
		RandReads:     stats.IO.RandReads,
		Cost:          stats.Cost,
		Comparisons:   stats.Comparisons,
		Accumulations: stats.Accumulations,
		EntryFetches:  stats.EntryFetches,
		CacheHits:     stats.Cache.Hits,
		CacheMisses:   stats.Cache.Misses,
		PagesSkipped:  stats.LSH.PagesSkipped,
		DocsSkipped:   stats.LSH.DocsSkipped,
		BucketProbes:  stats.LSH.BucketProbes,
		Candidates:    stats.LSH.Candidates,
		ResultsHash:   hashResults(results),
	}, results, nil
}

// writeLSHSummary renders the recall-vs-speed frontier: per shape, the
// best exact page-read count, then every banding shape's measured recall
// and read reduction against it.
func writeLSHSummary(w io.Writer, r *Report) {
	bestExact := map[string]int64{}
	for _, c := range r.Cells {
		if strings.HasPrefix(c.Algorithm, "LSH-") || c.Workers != 1 {
			continue
		}
		reads := c.SeqReads + c.RandReads
		if cur, ok := bestExact[c.Shape]; !ok || reads < cur {
			bestExact[c.Shape] = reads
		}
	}
	for _, c := range r.Cells {
		if !strings.HasPrefix(c.Algorithm, "LSH-") || c.Workers != 1 {
			continue
		}
		br := bestExact[c.Shape]
		reads := c.SeqReads + c.RandReads
		speedup := math.Inf(1)
		if reads > 0 {
			speedup = float64(br) / float64(reads)
		}
		fmt.Fprintf(w, "%-14s %-9s recall %.4f: page reads %d vs best exact %d (%.1f× fewer; %d probes, %d candidates, %d pages skipped)\n",
			c.Shape, c.Algorithm, c.Recall, reads, br, speedup,
			c.BucketProbes, c.Candidates, c.PagesSkipped)
	}
}
