// Command benchreport is the benchmark observatory: it runs the
// experiment grid (collection shapes × algorithms × worker counts) over
// the simulated store, emits a machine-readable JSON report plus a
// human-readable table, fails when a checked-in baseline regresses, and
// audits the cost model's calibration (estimated vs measured cost, with
// the cells where the integrated algorithm would mispick).
//
// Every reported number derives from the deterministic simulated disk —
// no wall-clock time — so reports are byte-stable across machines and
// runs, and the baseline comparison can demand exact equality.
//
// Usage:
//
//	benchreport -json BENCH_PR4.json -baseline BENCH_BASELINE.json
//	benchreport -calibrate -calreport CALIBRATION_PR4.md
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

func main() {
	cfg := defaultBenchConfig()
	jsonPath := flag.String("json", "", "write the machine-readable report to this file")
	baselinePath := flag.String("baseline", "", "compare against this baseline report; exit non-zero on regression")
	tolerance := flag.Float64("tolerance", 0, "relative deviation tolerated by the baseline comparison (0 = exact)")
	calibrate := flag.Bool("calibrate", false, "audit cost-model calibration and include it in the report")
	prefilter := flag.Bool("prefilter", false, "run the signature-prefilter grid (clustered shapes, cells with the filter off and on) instead of the main grid")
	lshGrid := flag.Bool("lsh", false, "run the LSH recall-vs-speed grid (clustered shapes, exact ground-truth cells plus every banding shape, measured recall) instead of the main grid")
	calReport := flag.String("calreport", "", "write the calibration report to this file (implies -calibrate)")
	quiet := flag.Bool("q", false, "suppress the human-readable table")
	flag.Int64Var(&cfg.Scale, "scale", cfg.Scale, "profile shrink divisor")
	flag.Int64Var(&cfg.Seed, "seed", cfg.Seed, "generation seed")
	flag.Int64Var(&cfg.MemoryPages, "mem", cfg.MemoryPages, "memory budget B in pages")
	flag.IntVar(&cfg.Lambda, "lambda", cfg.Lambda, "λ of SIMILAR_TO(λ)")
	flag.Float64Var(&cfg.Alpha, "alpha", cfg.Alpha, "random/sequential I/O cost ratio α")
	workers := flag.String("workers", "1,4", "comma-separated worker counts")
	flag.Parse()

	if *calReport != "" {
		*calibrate = true
	}
	var err error
	if cfg.Workers, err = parseWorkers(*workers); err != nil {
		fatal(err)
	}

	var report *Report
	switch {
	case *prefilter:
		report, err = runPrefilterGrid(cfg)
	case *lshGrid:
		report, err = runLSHGrid(cfg)
	default:
		report, err = runGrid(cfg, *calibrate)
	}
	if err != nil {
		fatal(err)
	}
	if !*quiet {
		writeHuman(os.Stdout, report)
		if *prefilter {
			writePrefilterSummary(os.Stdout, report)
		}
		if *lshGrid {
			writeLSHSummary(os.Stdout, report)
		}
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("report written to %s\n", *jsonPath)
	}
	if *calibrate {
		if err := writeCalibration(report, *calReport); err != nil {
			fatal(err)
		}
	}

	if *baselinePath != "" {
		base, err := loadReport(*baselinePath)
		if err != nil {
			fatal(err)
		}
		regressions := compare(report, base, *tolerance)
		if len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "benchreport: %d regression(s) vs %s:\n", len(regressions), *baselinePath)
			for _, r := range regressions {
				fmt.Fprintf(os.Stderr, "  %s\n", r)
			}
			os.Exit(1)
		}
		fmt.Printf("baseline check: %d cells match %s\n", len(report.Cells), *baselinePath)
	}
}

func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("benchreport: bad worker count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &r, nil
}

func writeCalibration(report *Report, path string) error {
	if path == "" {
		return report.Calibration.writeReport(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	// Backstop release for the error paths; the success path checks the
	// explicit Close below and the second Close is a no-op.
	defer f.Close()
	if err := report.Calibration.writeReport(f); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("calibration report written to %s\n", path)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchreport:", err)
	os.Exit(1)
}
