package main

import (
	"fmt"
	"io"
	"strings"

	"textjoin"
	"textjoin/internal/corpus"
)

// The prefilter grid measures the signature + cluster pruning layer on
// corpora where it can act: planted-topic collections run through the
// cluster-driven build path (greedy reorder → signature sidecar →
// id-remapped inverted file). Each (shape, algorithm, workers) pair is
// run twice — prefilter off and on — and the run itself fails unless
// the two result hashes are identical: the baseline file cannot even be
// generated from a filter that changes results.

// pfShape is one clustered pairing of the prefilter grid.
type pfShape struct {
	name             string
	n1, n2           int64
	termsPerDoc      float64
	vocab1, vocab2   int64
	topics1, topics2 int
}

// pfShapes returns the prefilter grid's pairings: a self-similar pair
// of equal vocabularies (inner-scan pruning carries HHNL) and a pair
// where the outer vocabulary is four times wider, so three quarters of
// the outer documents are provably disjoint from the inner collection
// (outer-sweep pruning carries HVNL).
func pfShapes() []pfShape {
	return []pfShape{
		{"clustered-eq", 512, 512, 64, 16384, 16384, 16, 16},
		{"clustered-wide", 512, 512, 64, 16384, 65536, 4, 16},
	}
}

// pfSigConfig is the code the prefilter grid uses. One hash over
// coarse term buckets keeps the page and cluster aggregates sparse
// enough that topically distinct regions stay distinguishable.
func pfSigConfig() textjoin.SignatureConfig {
	return textjoin.SignatureConfig{Bits: 2048, Hashes: 1, Granularity: 512, ClusterDocs: 16}
}

// buildPrefilterShape builds one clustered workspace: the inner
// collection is generated scattered and then rebuilt through the full
// clustered layout (reorder, sidecar, remapped inverted file); the
// outer collection is stored topic-contiguously so HHNL batches stay
// topically narrow.
func buildPrefilterShape(sh pfShape, cfg BenchConfig) (*shapeEnv, *textjoin.Prefilter, error) {
	ws := textjoin.NewWorkspace(textjoin.WithAlpha(cfg.Alpha))
	gen := func(name string, n, vocab int64, topics int, scatter bool, seed int64) (*textjoin.Collection, error) {
		f, err := ws.Disk().Create(name)
		if err != nil {
			return nil, err
		}
		p := corpus.ClusteredProfile{
			Profile:       corpus.Profile{Name: name, NumDocs: n, TermsPerDoc: sh.termsPerDoc, DistinctTerms: vocab},
			Topics:        topics,
			TopicFraction: 1.0,
			Scatter:       scatter,
		}
		return corpus.GenerateClustered(p, seed, f)
	}
	src, err := gen("c1src", sh.n1, sh.vocab1, sh.topics1, true, cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	srcInv, err := ws.BuildInvertedFile(src)
	if err != nil {
		return nil, nil, err
	}
	lay, err := ws.BuildClusteredLayout("c1", src, srcInv, pfSigConfig())
	if err != nil {
		return nil, nil, err
	}
	c2, err := gen("c2", sh.n2, sh.vocab2, sh.topics2, false, cfg.Seed+1)
	if err != nil {
		return nil, nil, err
	}
	inv2, err := ws.BuildInvertedFile(c2)
	if err != nil {
		return nil, nil, err
	}
	sig2, err := ws.BuildSignatures(c2, pfSigConfig())
	if err != nil {
		return nil, nil, err
	}
	if _, err := lay.InvertedFile.LoadIndex(); err != nil {
		return nil, nil, err
	}
	if _, err := inv2.LoadIndex(); err != nil {
		return nil, nil, err
	}
	tel := textjoin.NewTelemetry()
	ws.ResetIOStats()
	ws.SetTelemetry(tel)
	env := &shapeEnv{ws: ws, c1: lay.Collection, c2: c2, inv1: lay.InvertedFile, inv2: inv2, tel: tel}
	return env, &textjoin.Prefilter{Inner: lay.Signatures, Outer: sig2}, nil
}

// runPrefilterGrid executes the prefilter grid: every cell twice, off
// then on, gated on exact result-hash equality. The memory budget is
// pinned low per algorithm — 8 pages for HHNL so its batches span few
// topics (the regime the pruning targets), 64 for HVNL whose resident
// B+tree index alone needs more than 8.
func runPrefilterGrid(cfg BenchConfig) (*Report, error) {
	cfg.MemoryPages = 8
	report := &Report{Version: 1, Config: cfg}
	for _, sh := range pfShapes() {
		env, pf, err := buildPrefilterShape(sh, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", sh.name, err)
		}
		for _, alg := range []textjoin.Algorithm{textjoin.HHNL, textjoin.HVNL} {
			cfg := cfg
			if alg == textjoin.HVNL {
				cfg.MemoryPages = 64
			}
			for _, workers := range cfg.Workers {
				off, _, err := runCell(env, cfg, sh.name, alg, workers)
				if err != nil {
					return nil, fmt.Errorf("%s/%v/w%d: %v", sh.name, alg, workers, err)
				}
				on, err := runPrefilterCell(env, pf, cfg, sh.name, alg, workers)
				if err != nil {
					return nil, fmt.Errorf("%s/%v/w%d+pf: %v", sh.name, alg, workers, err)
				}
				if on.ResultsHash != off.ResultsHash {
					return nil, fmt.Errorf("%s/%v/w%d: prefilter changed results: hash %s (on) vs %s (off)",
						sh.name, alg, workers, on.ResultsHash, off.ResultsHash)
				}
				report.Cells = append(report.Cells, off, on)
			}
		}
	}
	return report, nil
}

// runPrefilterCell is runCell with the sidecars offered to the join;
// the cell's algorithm label gains a "+pf" suffix.
func runPrefilterCell(env *shapeEnv, pf *textjoin.Prefilter, cfg BenchConfig, shapeName string, alg textjoin.Algorithm, workers int) (Cell, error) {
	env.ws.ParkHeads()
	in, opts := env.inputs(), env.options(cfg)
	opts.Prefilter = pf
	var results []textjoin.Result
	var stats *textjoin.JoinStats
	var err error
	switch {
	case workers > 1 && alg == textjoin.HHNL:
		results, stats, err = textjoin.JoinHHNLParallel(in, opts, workers)
	case workers > 1 && alg == textjoin.HVNL:
		results, stats, err = textjoin.JoinHVNLParallel(in, opts, workers)
	default:
		results, stats, err = textjoin.Join(alg, in, opts)
	}
	if err != nil {
		return Cell{}, err
	}
	return Cell{
		Shape:           shapeName,
		Algorithm:       alg.String() + "+pf",
		Workers:         workers,
		SeqReads:        stats.IO.SeqReads,
		RandReads:       stats.IO.RandReads,
		Cost:            stats.Cost,
		Comparisons:     stats.Comparisons,
		Accumulations:   stats.Accumulations,
		EntryFetches:    stats.EntryFetches,
		CacheHits:       stats.Cache.Hits,
		CacheMisses:     stats.Cache.Misses,
		PagesSkipped:    stats.Prefilter.PagesSkipped,
		ClustersSkipped: stats.Prefilter.ClustersSkipped,
		DocsSkipped:     stats.Prefilter.DocsSkipped,
		FalsePasses:     stats.Prefilter.FalsePasses,
		ResultsHash:     hashResults(results),
	}, nil
}

// writePrefilterSummary appends the pruning outcome per on/off pair:
// the page-read reduction the filter bought and the skip counters.
func writePrefilterSummary(w io.Writer, r *Report) {
	off := map[string]Cell{}
	for _, c := range r.Cells {
		if !strings.HasSuffix(c.Algorithm, "+pf") {
			off[c.key()] = c
		}
	}
	for _, c := range r.Cells {
		if !strings.HasSuffix(c.Algorithm, "+pf") {
			continue
		}
		base, ok := off[fmt.Sprintf("%s/%s/w%d", c.Shape, strings.TrimSuffix(c.Algorithm, "+pf"), c.Workers)]
		if !ok {
			continue
		}
		br := base.SeqReads + base.RandReads
		cr := c.SeqReads + c.RandReads
		var red float64
		if br > 0 {
			red = 100 * (1 - float64(cr)/float64(br))
		}
		fmt.Fprintf(w, "%-14s %-5s w%d: page reads %d → %d (%.1f%% fewer; skipped %d pages, %d clusters, %d docs; %d false passes)\n",
			c.Shape, strings.TrimSuffix(c.Algorithm, "+pf"), c.Workers, br, cr, red,
			c.PagesSkipped, c.ClustersSkipped, c.DocsSkipped, c.FalsePasses)
	}
}
