package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"textjoin/internal/analysis"
	"textjoin/internal/reqtrace"
	"textjoin/internal/telemetry"
)

func snapshotJSON(t *testing.T) []byte {
	t.Helper()
	tick := time.Unix(0, 0)
	c := telemetry.New(telemetry.WithClock(func() time.Time {
		tick = tick.Add(time.Millisecond)
		return tick
	}))
	c.Counter("join.hhnl.outer_docs").Add(3)
	c.Event(telemetry.PhasePlan, "estimate.hhnl.seq", 10)
	c.StartSpan(telemetry.PhaseScan, "scan").End()
	sink, err := telemetry.SinkFor("json")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := sink.Export(&sb, c.Snapshot()); err != nil {
		t.Fatal(err)
	}
	return []byte(sb.String())
}

func jsonlStream(t *testing.T) []byte {
	t.Helper()
	var sb strings.Builder
	enc := json.NewEncoder(&sb)
	for i, name := range []string{"a", "b", "c"} {
		if err := enc.Encode(telemetry.Entry{
			Seq: uint64(i + 1), Kind: telemetry.KindEvent,
			Phase: telemetry.PhaseIO, Name: name, StartNanos: int64(i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return []byte(sb.String())
}

func write(t *testing.T, dir, name string, data []byte) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestValidateFormats(t *testing.T) {
	if f, err := validate(snapshotJSON(t)); err != nil || f != "snapshot" {
		t.Errorf("snapshot: format %q err %v", f, err)
	}
	if f, err := validate(jsonlStream(t)); err != nil || f != "trace stream" {
		t.Errorf("jsonl: format %q err %v", f, err)
	}
	if _, err := validate([]byte("nonsense\n")); err == nil {
		t.Error("garbage accepted")
	} else if !strings.Contains(err.Error(), "snapshot") || !strings.Contains(err.Error(), "trace stream") {
		t.Errorf("error does not mention both formats: %v", err)
	}
}

func TestRunMultipleFiles(t *testing.T) {
	dir := t.TempDir()
	good1 := write(t, dir, "snap.json", snapshotJSON(t))
	good2 := write(t, dir, "trace.jsonl", jsonlStream(t))
	bad := write(t, dir, "bad.json", []byte("{broken\n"))

	var out, errOut strings.Builder
	if code := run([]string{good1, good2}, nil, &out, &errOut, false); code != 0 {
		t.Errorf("all-valid run exited %d: %s", code, errOut.String())
	}
	if got := out.String(); !strings.Contains(got, "snapshot ok") || !strings.Contains(got, "trace stream ok") {
		t.Errorf("missing ok lines:\n%s", got)
	}

	// A bad file in the middle does not stop later files from being
	// checked, and the summary counts it.
	out.Reset()
	errOut.Reset()
	if code := run([]string{good1, bad, good2}, nil, &out, &errOut, false); code != 1 {
		t.Errorf("run with bad file exited %d", code)
	}
	if !strings.Contains(errOut.String(), "1 of 3 input(s) invalid") {
		t.Errorf("missing summary:\n%s", errOut.String())
	}
	if !strings.Contains(out.String(), good2) {
		t.Errorf("later file skipped after error:\n%s", out.String())
	}

	// Quiet mode suppresses ok lines, never errors.
	out.Reset()
	errOut.Reset()
	if code := run([]string{good1, bad}, nil, &out, &errOut, true); code != 1 {
		t.Errorf("quiet run exited %d", code)
	}
	if out.String() != "" {
		t.Errorf("quiet mode printed ok lines:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "bad.json") {
		t.Errorf("quiet mode swallowed the error:\n%s", errOut.String())
	}

	// Unreadable file counts as invalid.
	if code := run([]string{filepath.Join(dir, "missing.json")}, nil, &out, &errOut, true); code != 1 {
		t.Errorf("missing file exited %d", code)
	}
}

func TestRunStdin(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, strings.NewReader(string(snapshotJSON(t))), &out, &errOut, false); code != 0 {
		t.Errorf("stdin run exited %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "<stdin>: snapshot ok") {
		t.Errorf("stdin verdict missing:\n%s", out.String())
	}
}

// TestLintcheckClean holds this command to the repo's own static
// analysis: the validator that checks everyone else's output should
// itself pass the in-tree lint suite.
func TestLintcheckClean(t *testing.T) {
	root, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			t.Fatal("no go.mod above working directory")
		}
		root = parent
	}
	report, err := analysis.Run(root, analysis.DefaultPolicy(),
		analysis.RunOptions{Packages: []string{"cmd/tracecheck"}})
	if err != nil {
		t.Fatalf("analysis.Run: %v", err)
	}
	for _, d := range report.Diagnostics {
		t.Errorf("%s", d)
	}
}

// requestTraceJSON builds one finished request trace through the real
// tracer, exactly as textjoind's flight recorder serves it.
func requestTraceJSON(t *testing.T) []byte {
	t.Helper()
	tick := time.Unix(0, 0)
	tr := reqtrace.NewTracer(7, func() time.Time {
		tick = tick.Add(time.Millisecond)
		return tick
	})
	root := tr.StartTrace("join")
	q := root.StartChild("queue", "admission")
	q.End()
	e := root.StartChild("exec", "join hvnl")
	e.SetAttr("join.alg", "hvnl")
	e.End()
	root.End()
	data, err := json.Marshal(root.Data())
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestValidateRequestTrace: the per-request format is auto-detected and
// malformed trees are rejected by every format, not silently accepted
// by another.
func TestValidateRequestTrace(t *testing.T) {
	good := requestTraceJSON(t)
	if f, err := validate(good); err != nil || f != "request trace" {
		t.Fatalf("request trace: format %q err %v", f, err)
	}

	// Corrupt the tree in ways the reqtrace validator must catch: a
	// dangling parent and a second root.
	var d reqtrace.TraceData
	if err := json.Unmarshal(good, &d); err != nil {
		t.Fatal(err)
	}
	dangling := d
	dangling.Spans = append([]reqtrace.SpanData(nil), d.Spans...)
	dangling.Spans[len(dangling.Spans)-1].Parent = "00000000000000ff"
	twoRoots := d
	twoRoots.Spans = append([]reqtrace.SpanData(nil), d.Spans...)
	twoRoots.Spans[0].Parent = "" // the queue child, orphaned into a second root

	for name, bad := range map[string]reqtrace.TraceData{
		"dangling parent": dangling,
		"two roots":       twoRoots,
	} {
		data, err := json.Marshal(bad)
		if err != nil {
			t.Fatal(err)
		}
		if f, err := validate(data); err == nil {
			t.Errorf("%s accepted as %q", name, f)
		}
	}

	// Cross-format isolation: the other two formats stay correctly
	// attributed, and a request trace never passes as either.
	if err := telemetry.ValidateJSON(good); err == nil {
		t.Error("request trace accepted as a snapshot")
	}
	if err := telemetry.ValidateJSONLines(good); err == nil {
		t.Error("request trace accepted as a trace stream")
	}
	if err := reqtrace.Validate(snapshotJSON(t)); err == nil {
		t.Error("snapshot accepted as a request trace")
	}
	if err := reqtrace.Validate(jsonlStream(t)); err == nil {
		t.Error("trace stream accepted as a request trace")
	}
}
