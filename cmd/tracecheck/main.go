// Command tracecheck validates a JSON telemetry snapshot read from
// stdin against the exporter schema: counters and histograms sorted and
// well-formed, bucket counts consistent, trace entries strictly ordered.
// It exits 0 on a valid snapshot and 1 otherwise, so it can terminate a
// pipeline like
//
//	textjoin ... -telemetry json 2>&1 1>/dev/null | tracecheck
//
// in the trace-smoke Makefile target.
package main

import (
	"fmt"
	"io"
	"os"

	"textjoin/internal/telemetry"
)

func main() {
	data, err := io.ReadAll(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck: read stdin:", err)
		os.Exit(1)
	}
	if err := telemetry.ValidateJSON(data); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
	fmt.Println("tracecheck: snapshot ok")
}
