// Command tracecheck validates telemetry exports: JSON snapshots (the
// -telemetry json exporter schema: counters and histograms sorted and
// well-formed, bucket counts consistent, trace entries strictly ordered),
// per-request trace trees (the textjoind /debug/requests/{traceID}
// format: a reqtrace span tree with exactly one root and resolvable
// parents), and JSON Lines trace streams (the textjoind /traces format,
// one trace entry per line). The format is auto-detected per input.
//
// With no arguments it reads stdin, so it can terminate a pipeline like
//
//	textjoin ... -telemetry json 2>&1 1>/dev/null | tracecheck
//
// With file arguments it validates each file, prints a per-file verdict,
// and exits non-zero if any file is invalid — it does not stop at the
// first bad file. -q suppresses the per-file "ok" lines (errors always
// print).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"textjoin/internal/reqtrace"
	"textjoin/internal/telemetry"
)

func main() {
	quiet := flag.Bool("q", false, "print only errors, not per-file ok lines")
	flag.Parse()
	os.Exit(run(flag.Args(), os.Stdin, os.Stdout, os.Stderr, *quiet))
}

// run validates each named input (or stdin when none), reporting every
// failure; the exit code is the number of invalid inputs capped at 1.
func run(paths []string, stdin io.Reader, stdout, stderr io.Writer, quiet bool) int {
	type input struct {
		name string
		data []byte
		err  error
	}
	var inputs []input
	if len(paths) == 0 {
		data, err := io.ReadAll(stdin)
		inputs = append(inputs, input{"<stdin>", data, err})
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		inputs = append(inputs, input{p, data, err})
	}

	bad := 0
	for _, in := range inputs {
		if in.err != nil {
			fmt.Fprintf(stderr, "tracecheck: %s: %v\n", in.name, in.err)
			bad++
			continue
		}
		format, err := validate(in.data)
		if err != nil {
			fmt.Fprintf(stderr, "tracecheck: %s: %v\n", in.name, err)
			bad++
			continue
		}
		if !quiet {
			fmt.Fprintf(stdout, "tracecheck: %s: %s ok\n", in.name, format)
		}
	}
	if bad > 0 {
		fmt.Fprintf(stderr, "tracecheck: %d of %d input(s) invalid\n", bad, len(inputs))
		return 1
	}
	return 0
}

// validate auto-detects the export format: the snapshot schema first,
// then the per-request trace tree, then the JSON Lines trace stream.
// Detection is unambiguous — each validator rejects unknown fields, and
// the request-trace document is the only one carrying reqtrace_schema —
// so the order only decides whose error message leads. An input valid
// under any format passes; one valid under none reports all three
// failures.
func validate(data []byte) (string, error) {
	snapErr := telemetry.ValidateJSON(data)
	if snapErr == nil {
		return "snapshot", nil
	}
	reqErr := reqtrace.Validate(data)
	if reqErr == nil {
		return "request trace", nil
	}
	lineErr := telemetry.ValidateJSONLines(data)
	if lineErr == nil {
		return "trace stream", nil
	}
	return "", fmt.Errorf("not a valid snapshot (%v), request trace (%v), nor trace stream (%v)", snapErr, reqErr, lineErr)
}
