// Command textjoin runs a textual join between two document collections.
//
// Collections come either from portable text files produced by corpusgen
// (-c1/-c2) or from generated profiles (-p1/-p2 with -scale). The join is
// C1 SIMILAR_TO(λ) C2: for each document of C2, the λ most similar
// documents of C1.
//
// Usage:
//
//	textjoin -p1 wsj -p2 wsj -scale 512 -alg auto -lambda 5 -mem 100
//	textjoin -c1 a.txt -c2 b.txt -alg vvm -show 3
//
// With -alg auto the integrated algorithm estimates all three costs and
// runs the cheapest; -explain prints the estimates.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"

	"textjoin/internal/collection"
	"textjoin/internal/core"
	"textjoin/internal/corpus"
	"textjoin/internal/document"
	"textjoin/internal/invfile"
	"textjoin/internal/iosim"
	"textjoin/internal/metrics"
	"textjoin/internal/telemetry"
)

func main() {
	c1Path := flag.String("c1", "", "inner collection file (portable text format)")
	c2Path := flag.String("c2", "", "outer collection file (portable text format)")
	p1 := flag.String("p1", "", "inner profile: wsj, fr, doe (alternative to -c1)")
	p2 := flag.String("p2", "", "outer profile: wsj, fr, doe (alternative to -c2)")
	scale := flag.Int64("scale", 512, "profile shrink divisor")
	seed := flag.Int64("seed", 1, "generation seed")
	alg := flag.String("alg", "auto", "algorithm: auto, hhnl, hvnl, vvm")
	lambda := flag.Int("lambda", 20, "λ of SIMILAR_TO(λ)")
	mem := flag.Int64("mem", 10000, "memory budget B in pages")
	alpha := flag.Float64("alpha", 5, "random/sequential I/O cost ratio α")
	weighting := flag.String("weighting", "raw", "similarity weighting: raw, cosine, tfidf")
	show := flag.Int("show", 5, "print the matches of the first N outer documents")
	explain := flag.Bool("explain", false, "print the integrated algorithm's cost estimates")
	queries := flag.String("queries", "", "run a memory-resident query batch (portable text format) against C1 instead of a stored C2")
	saveDisk := flag.String("save-disk", "", "after building, snapshot the whole simulated disk to this file")
	telemetryMode := flag.String("telemetry", "", "emit a telemetry snapshot to stderr after the join: text or json")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); with -telemetry also /metrics and /traces")
	flag.Parse()

	var tel *telemetry.Collector
	var sink telemetry.Sink
	if *telemetryMode != "" {
		var err error
		sink, err = telemetry.SinkFor(*telemetryMode)
		if err != nil {
			fmt.Fprintln(os.Stderr, "textjoin:", err)
			os.Exit(1)
		}
		tel = telemetry.New()
	}
	if *pprofAddr != "" {
		// Alongside pprof, expose the live collector (when -telemetry is
		// on) in the same formats textjoind serves.
		if tel != nil {
			http.Handle("/metrics", metrics.NewExporter(tel))
			http.Handle("/traces", metrics.TraceHandler(tel))
		}
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "textjoin: pprof:", err)
			}
		}()
	}

	var err error
	if *queries != "" {
		err = runBatch(*c1Path, *p1, *scale, *seed, *queries, *lambda, *mem, *alpha, *weighting, *show, tel)
	} else {
		err = run(*c1Path, *c2Path, *p1, *p2, *scale, *seed, *alg, *lambda, *mem, *alpha, *weighting, *show, *explain, *saveDisk, tel)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "textjoin:", err)
		os.Exit(1)
	}
	if tel != nil {
		if err := sink.Export(os.Stderr, tel.Snapshot()); err != nil {
			fmt.Fprintln(os.Stderr, "textjoin: telemetry export:", err)
			os.Exit(1)
		}
	}
}

// saveSnapshot serializes the simulated disk so the built corpus and
// index structures can be inspected or reused.
func saveSnapshot(d *iosim.Disk, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	// Backstop release for the error path; the success path checks the
	// explicit Close below and the second Close is a no-op.
	defer f.Close()
	if _, err := d.WriteTo(f); err != nil {
		return err
	}
	return f.Close()
}

// runBatch joins an ad-hoc query batch (no stored collection, no inverted
// file on the batch) against C1 — the paper's batch-query scenario. The
// integrated algorithm picks between HHNL and HVNL; VVM is inapplicable.
func runBatch(c1Path, p1 string, scale, seed int64, queriesPath string, lambda int, mem int64, alphaRatio float64, weighting string, show int, tel *telemetry.Collector) error {
	d := iosim.NewDisk(iosim.WithPageSize(4096), iosim.WithAlpha(alphaRatio))
	c1, err := loadCollection(d, "c1", c1Path, p1, scale, seed)
	if err != nil {
		return err
	}
	ef, err := d.Create("c1.inv")
	if err != nil {
		return err
	}
	tf, err := d.Create("c1.bt")
	if err != nil {
		return err
	}
	inv1, err := invfile.Build(c1, ef, tf)
	if err != nil {
		return err
	}
	qf, err := os.Open(queriesPath)
	if err != nil {
		return err
	}
	defer qf.Close()
	docs, err := corpus.ReadText(qf)
	if err != nil {
		return err
	}
	batch, err := collection.NewBatch("queries", docs)
	if err != nil {
		return err
	}
	d.ResetStats()
	d.SetCollector(tel)

	w, err := document.ParseWeighting(weighting)
	if err != nil {
		return err
	}
	in := core.Inputs{Outer: batch, Inner: c1, InnerInv: inv1}
	opts := core.Options{Lambda: lambda, MemoryPages: mem, Weighting: w, Telemetry: tel}
	results, stats, dec, err := core.JoinIntegrated(in, opts)
	if err != nil {
		return err
	}
	fmt.Printf("batch: %d queries against %s (N=%d)\n", batch.NumDocs(), c1.Name(), c1.NumDocs())
	fmt.Printf("integrated choice: %v (VVM inapplicable for a batch)\n", dec.Chosen)
	fmt.Printf("I/O: %s  cost=%.0f\n", stats.IO, stats.Cost)
	for i, r := range results {
		if i >= show {
			break
		}
		fmt.Printf("query %d:", r.Outer)
		for _, m := range r.Matches {
			fmt.Printf("  (%d, %.4g)", m.Doc, m.Sim)
		}
		fmt.Println()
	}
	return nil
}

func loadCollection(d *iosim.Disk, name, path, profileName string, scale, seed int64) (*collection.Collection, error) {
	switch {
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		docs, err := corpus.ReadText(f)
		if err != nil {
			return nil, err
		}
		file, err := d.Create(name)
		if err != nil {
			return nil, err
		}
		return corpus.BuildFromDocs(name, file, docs)
	case profileName != "":
		p, err := corpus.ProfileByName(profileName)
		if err != nil {
			return nil, err
		}
		return corpus.GenerateOn(d, name, p.Scaled(scale), seed)
	default:
		return nil, fmt.Errorf("collection %s: provide a file or a profile", name)
	}
}

func run(c1Path, c2Path, p1, p2 string, scale, seed int64, algName string, lambda int, mem int64, alpha float64, weighting string, show int, explain bool, saveDisk string, tel *telemetry.Collector) error {
	d := iosim.NewDisk(iosim.WithPageSize(4096), iosim.WithAlpha(alpha))
	c1, err := loadCollection(d, "c1", c1Path, p1, scale, seed)
	if err != nil {
		return err
	}
	c2, err := loadCollection(d, "c2", c2Path, p2, scale, seed+1)
	if err != nil {
		return err
	}
	buildInv := func(c *collection.Collection, prefix string) (*invfile.InvertedFile, error) {
		ef, err := d.Create(prefix + ".inv")
		if err != nil {
			return nil, err
		}
		tf, err := d.Create(prefix + ".bt")
		if err != nil {
			return nil, err
		}
		return invfile.Build(c, ef, tf)
	}
	inv1, err := buildInv(c1, "c1")
	if err != nil {
		return err
	}
	inv2, err := buildInv(c2, "c2")
	if err != nil {
		return err
	}
	if saveDisk != "" {
		if err := saveSnapshot(d, saveDisk); err != nil {
			return err
		}
		fmt.Printf("disk snapshot written to %s\n", saveDisk)
	}
	d.ResetStats()
	d.SetCollector(tel)

	w, err := document.ParseWeighting(weighting)
	if err != nil {
		return err
	}
	in := core.Inputs{Outer: c2, Inner: c1, InnerInv: inv1, OuterInv: inv2}
	opts := core.Options{Lambda: lambda, MemoryPages: mem, Weighting: w, Telemetry: tel}

	st1, st2 := c1.Stats(), c2.Stats()
	fmt.Printf("C1: %s  N=%d K=%.1f T=%d D=%d pages\n", c1.Name(), st1.N, st1.K, st1.T, st1.D)
	fmt.Printf("C2: %s  N=%d K=%.1f T=%d D=%d pages\n", c2.Name(), st2.N, st2.K, st2.T, st2.D)

	var results []core.Result
	var stats *core.Stats
	if algName == "auto" {
		var dec core.Decision
		results, stats, dec, err = core.JoinIntegrated(in, opts)
		if err != nil {
			return err
		}
		fmt.Printf("integrated choice: %v\n", dec.Chosen)
		if explain {
			for _, e := range dec.Estimates {
				fmt.Printf("  %-5v seq=%.0f rand=%.0f\n", e.Algorithm, e.Seq, e.Rand)
			}
		}
	} else {
		a, err := core.ParseAlgorithm(algName)
		if err != nil {
			return err
		}
		results, stats, err = core.Join(a, in, opts)
		if err != nil {
			return err
		}
	}

	fmt.Printf("join: %v  outer=%d inner=%d passes=%d\n",
		stats.Algorithm, stats.OuterDocs, stats.InnerDocs, stats.Passes)
	fmt.Printf("I/O: %s  cost=%.0f (alpha=%.1f)\n", stats.IO, stats.Cost, alpha)
	if stats.Algorithm == core.HVNL {
		fmt.Printf("cache: hits=%d misses=%d evictions=%d hit-rate=%.2f\n",
			stats.Cache.Hits, stats.Cache.Misses, stats.Cache.Evictions, stats.Cache.HitRate())
	}

	for i, r := range results {
		if i >= show {
			break
		}
		fmt.Printf("C2 doc %d:", r.Outer)
		for _, m := range r.Matches {
			fmt.Printf("  (%d, %.4g)", m.Doc, m.Sim)
		}
		fmt.Println()
	}
	return nil
}
