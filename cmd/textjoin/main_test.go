package main

import (
	"os"
	"path/filepath"
	"testing"
)

func silence(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = old
		devnull.Close()
	})
}

func TestRunProfilesAllAlgorithms(t *testing.T) {
	silence(t)
	for _, alg := range []string{"auto", "hhnl", "hvnl", "vvm"} {
		if err := run("", "", "wsj", "wsj", 4096, 1, alg, 3, 200, 5, "raw", 2, true, "", nil); err != nil {
			t.Errorf("alg %q: %v", alg, err)
		}
	}
}

func TestRunWeightings(t *testing.T) {
	silence(t)
	for _, w := range []string{"raw", "cosine", "tfidf"} {
		if err := run("", "", "doe", "doe", 4096, 1, "hhnl", 2, 200, 5, w, 1, false, "", nil); err != nil {
			t.Errorf("weighting %q: %v", w, err)
		}
	}
}

func TestRunFromFiles(t *testing.T) {
	silence(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "c.txt")
	content := "0 1:2 5:1\n1 2:1 5:3\n2 1:1 2:2\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, path, "", "", 1, 1, "vvm", 2, 100, 5, "raw", 3, false, "", nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunBatch(t *testing.T) {
	silence(t)
	dir := t.TempDir()
	queries := filepath.Join(dir, "q.txt")
	if err := os.WriteFile(queries, []byte("0 1:1 2:1\n1 5:2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runBatch("", "wsj", 4096, 1, queries, 2, 200, 5, "raw", 2, nil); err != nil {
		t.Fatal(err)
	}
	// Errors: missing query file, bad weighting, missing C1.
	if err := runBatch("", "wsj", 4096, 1, "/nonexistent.txt", 2, 200, 5, "raw", 2, nil); err == nil {
		t.Error("missing query file: want error")
	}
	if err := runBatch("", "wsj", 4096, 1, queries, 2, 200, 5, "bogus", 2, nil); err == nil {
		t.Error("bad weighting: want error")
	}
	if err := runBatch("", "", 4096, 1, queries, 2, 200, 5, "raw", 2, nil); err == nil {
		t.Error("missing C1: want error")
	}
}

func TestRunSaveDisk(t *testing.T) {
	silence(t)
	snap := filepath.Join(t.TempDir(), "disk.tjdk")
	if err := run("", "", "wsj", "wsj", 4096, 1, "hhnl", 2, 200, 5, "raw", 1, false, snap, nil); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(snap)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Error("empty snapshot")
	}
	// Bad path errors out.
	if err := run("", "", "wsj", "wsj", 4096, 1, "hhnl", 2, 200, 5, "raw", 1, false, "/no-such-dir/x", nil); err == nil {
		t.Error("bad snapshot path: want error")
	}
}

func TestRunErrors(t *testing.T) {
	silence(t)
	// No source for C1.
	if err := run("", "", "", "wsj", 4096, 1, "auto", 2, 100, 5, "raw", 1, false, "", nil); err == nil {
		t.Error("missing C1 source: want error")
	}
	// Unknown algorithm.
	if err := run("", "", "wsj", "wsj", 4096, 1, "bogus", 2, 100, 5, "raw", 1, false, "", nil); err == nil {
		t.Error("unknown algorithm: want error")
	}
	// Unknown weighting.
	if err := run("", "", "wsj", "wsj", 4096, 1, "hhnl", 2, 100, 5, "bogus", 1, false, "", nil); err == nil {
		t.Error("unknown weighting: want error")
	}
	// Unknown profile.
	if err := run("", "", "trec", "wsj", 4096, 1, "hhnl", 2, 100, 5, "raw", 1, false, "", nil); err == nil {
		t.Error("unknown profile: want error")
	}
	// Missing file.
	if err := run("/nonexistent.txt", "", "", "wsj", 4096, 1, "hhnl", 2, 100, 5, "raw", 1, false, "", nil); err == nil {
		t.Error("missing file: want error")
	}
}
