package main

import (
	"errors"
	"net/http"
	"strings"
	"testing"
)

// TestClassify pins the outcome buckets: 503 is load shedding, 422 is a
// join the workspace cannot run — the two must never be conflated with
// each other or with genuine errors.
func TestClassify(t *testing.T) {
	cases := []struct {
		name   string
		err    error
		status int
		want   outcome
	}{
		{"ok", nil, http.StatusOK, outcomeOK},
		{"rejected", nil, http.StatusServiceUnavailable, outcomeRejected},
		{"unprocessable", nil, http.StatusUnprocessableEntity, outcomeUnprocessable},
		{"bad request", nil, http.StatusBadRequest, outcomeError},
		{"server error", nil, http.StatusInternalServerError, outcomeError},
		{"not found", nil, http.StatusNotFound, outcomeError},
		{"transport error", errors.New("connection refused"), 0, outcomeError},
		// A transport error wins even when a status leaked through.
		{"error with status", errors.New("timeout"), http.StatusOK, outcomeError},
	}
	for _, c := range cases {
		if got := classify(c.err, c.status); got != c.want {
			t.Errorf("%s: classify(%v, %d) = %v, want %v", c.name, c.err, c.status, got, c.want)
		}
	}
}

// TestSanityUnprocessable ensures the CI gate fails a run with 422s even
// when no request landed in the error bucket.
func TestSanityUnprocessable(t *testing.T) {
	runs := []runStat{{
		Label: "t", Requests: 10, OK: 9, Unprocessable: 1,
		P50Ms: 1, P99Ms: 2, MaxMs: 3,
	}}
	err := sanity(runs)
	if err == nil || !strings.Contains(err.Error(), "unprocessable") {
		t.Fatalf("sanity = %v, want unprocessable failure", err)
	}
}
