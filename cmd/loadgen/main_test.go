package main

import (
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"textjoin/internal/metrics"
	"textjoin/internal/slo"
	"textjoin/internal/telemetry"
)

// TestClassify pins the outcome buckets: 503 is load shedding, 422 is a
// join the workspace cannot run — the two must never be conflated with
// each other or with genuine errors.
func TestClassify(t *testing.T) {
	cases := []struct {
		name   string
		err    error
		status int
		want   outcome
	}{
		{"ok", nil, http.StatusOK, outcomeOK},
		{"rejected", nil, http.StatusServiceUnavailable, outcomeRejected},
		{"unprocessable", nil, http.StatusUnprocessableEntity, outcomeUnprocessable},
		{"bad request", nil, http.StatusBadRequest, outcomeError},
		{"server error", nil, http.StatusInternalServerError, outcomeError},
		{"not found", nil, http.StatusNotFound, outcomeError},
		{"transport error", errors.New("connection refused"), 0, outcomeError},
		// A transport error wins even when a status leaked through.
		{"error with status", errors.New("timeout"), http.StatusOK, outcomeError},
	}
	for _, c := range cases {
		if got := classify(c.err, c.status); got != c.want {
			t.Errorf("%s: classify(%v, %d) = %v, want %v", c.name, c.err, c.status, got, c.want)
		}
	}
}

// TestSanityUnprocessable ensures the CI gate fails a run with 422s even
// when no request landed in the error bucket.
func TestSanityUnprocessable(t *testing.T) {
	runs := []runStat{{
		Label: "t", Requests: 10, OK: 9, Unprocessable: 1,
		P50Ms: 1, P99Ms: 2, MaxMs: 3,
	}}
	err := sanity(runs)
	if err == nil || !strings.Contains(err.Error(), "unprocessable") {
		t.Fatalf("sanity = %v, want unprocessable failure", err)
	}
}

// TestSanityServerTime pins the client-vs-server clock gates: a reply
// claiming more server time than the client measured, or a server p50
// above the client p50, fails -check.
func TestSanityServerTime(t *testing.T) {
	base := runStat{
		Label: "t", Requests: 10, OK: 10,
		P50Ms: 5, P99Ms: 6, MaxMs: 7, ServerP50Ms: 4,
	}
	if err := sanity([]runStat{base}); err != nil {
		t.Fatalf("clean run rejected: %v", err)
	}
	overrun := base
	overrun.ServerOverruns = 2
	if err := sanity([]runStat{overrun}); err == nil || !strings.Contains(err.Error(), "server time") {
		t.Fatalf("sanity = %v, want server-time overrun failure", err)
	}
	inverted := base
	inverted.ServerP50Ms = 50
	if err := sanity([]runStat{inverted}); err == nil || !strings.Contains(err.Error(), "server p50") {
		t.Fatalf("sanity = %v, want server-p50 failure", err)
	}
}

// TestSanitySLO: a blown error budget fails -check even when every
// request succeeded.
func TestSanitySLO(t *testing.T) {
	run := runStat{
		Label: "t", Requests: 10, OK: 10,
		P50Ms: 5, P99Ms: 6, MaxMs: 7,
		SLO: []sloStat{
			{Objective: "availability", BudgetRemaining: 1},
			{Objective: "latency", BudgetRemaining: -0.5, BurnRate: 1.5},
		},
	}
	err := sanity([]runStat{run})
	if err == nil || !strings.Contains(err.Error(), "latency") {
		t.Fatalf("sanity = %v, want latency SLO failure", err)
	}
}

// TestScrapeSLO drives the scraper against a real exporter+engine pair:
// the same wiring textjoind serves, so the parser is pinned to the
// exposition the SLO layer actually emits.
func TestScrapeSLO(t *testing.T) {
	col := telemetry.New()
	eng, err := slo.New(col, time.Now, time.Minute, []slo.Objective{
		{Name: "availability", Target: 0.99, Good: []string{"ok"}, Bad: []string{"bad"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	col.Counter("ok").Add(99)
	col.Counter("bad").Add(1)
	exp := metrics.NewExporter(col, metrics.WithExtraGauges(eng.Gauges))
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		exp.ServeHTTP(w, r)
	}))
	defer hs.Close()

	got, err := scrapeSLO(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Objective != "availability" {
		t.Fatalf("scraped %+v", got)
	}
	s := got[0]
	near := func(got, want float64) bool { return math.Abs(got-want) < 1e-9 }
	if !near(s.Target, 0.99) || !near(s.Compliance, 0.99) || !near(s.BurnRate, 1) || !near(s.BudgetRemaining, 0) {
		t.Fatalf("objective state %+v", s)
	}

	// A server without the SLO layer is an explicit error, not an empty
	// success.
	bare := metrics.NewExporter(col)
	hs2 := httptest.NewServer(bare)
	defer hs2.Close()
	if _, err := scrapeSLO(hs2.URL); err == nil {
		t.Fatal("scrapeSLO accepted an exposition without slo families")
	}
}
