// Command loadgen is an open-loop load generator for textjoind: it fires
// /join requests at a fixed arrival rate — arrivals never wait for
// completions, as in a real request stream — cycling through a mix of
// algorithm/λ/prefilter profiles, and reports completed throughput and
// latency percentiles per target.
//
// One run can drive several servers (repeat -target label=url) so a
// serialized baseline and a concurrent server face the identical
// arrival process; the combined report lands in one JSON file whose
// field order is fixed (benchreport-style), making diffs reviewable.
//
// Usage:
//
//	loadgen -addr http://localhost:8080 -rate 50 -duration 10s
//	loadgen -target serialized=http://:8081 -target concurrent=http://:8082 \
//	        -rate 200 -duration 10s -json BENCH_PR7.json
//	loadgen -addr http://localhost:8080 -wait 15s -check   # CI smoke
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"textjoin/internal/metrics"
)

// target is one server under load.
type target struct {
	Label string
	URL   string
}

// targetList implements flag.Value for repeated -target label=url.
type targetList []target

func (t *targetList) String() string {
	var parts []string
	for _, x := range *t {
		parts = append(parts, x.Label+"="+x.URL)
	}
	return strings.Join(parts, ",")
}

func (t *targetList) Set(v string) error {
	label, url, ok := strings.Cut(v, "=")
	if !ok || label == "" || url == "" {
		return fmt.Errorf("want label=url, got %q", v)
	}
	*t = append(*t, target{Label: label, URL: url})
	return nil
}

// defaultMix cycles through the serving profiles the acceptance
// criterion names: all three exact algorithms, serial and parallel
// variants, prefilter on and off, the approximate LSH join, plus the
// integrated planner.
const defaultMix = "alg=hhnl|alg=hvnl|alg=vvm|alg=hvnl&workers=2|alg=vvm&workers=2|alg=hhnl&prefilter=on|alg=hvnl&prefilter=on|mode=lsh|alg=auto"

// report is the JSON artifact. Field order is fixed by the struct, all
// floats are rounded to fixed precision, and no timestamps are recorded
// — two runs differ only where the measurement differs.
type report struct {
	Version int       `json:"version"`
	Config  runConfig `json:"config"`
	Runs    []runStat `json:"runs"`
}

type runConfig struct {
	RatePerSec      float64  `json:"rate_per_sec"`
	DurationSeconds float64  `json:"duration_seconds"`
	Lambda          int      `json:"lambda"`
	Mix             []string `json:"mix"`
}

// runStat is one target's outcome. Rejected counts 503s (admission
// control shedding load, by design); Unprocessable counts 422s (the
// server admitted the request but the workspace cannot run that join —
// a mix problem, not an overload signal); Errors everything else
// non-200.
type runStat struct {
	Label            string  `json:"label"`
	Requests         int64   `json:"requests"`
	OK               int64   `json:"ok"`
	Rejected         int64   `json:"rejected"`
	Unprocessable    int64   `json:"unprocessable"`
	Errors           int64   `json:"errors"`
	ThroughputPerSec float64 `json:"throughput_per_sec"`
	P50Ms            float64 `json:"p50_ms"`
	P90Ms            float64 `json:"p90_ms"`
	P99Ms            float64 `json:"p99_ms"`
	P999Ms           float64 `json:"p999_ms"`
	MaxMs            float64 `json:"max_ms"`
	// The server-reported residence breakdown, decoded from each 200
	// reply's queue_seconds/exec_seconds fields. GapP50Ms is the median
	// client-vs-server latency gap — what the network, HTTP layer and
	// response encoding cost on top of the server's own accounting.
	QueueP50Ms  float64 `json:"queue_p50_ms"`
	ExecP50Ms   float64 `json:"exec_p50_ms"`
	ServerP50Ms float64 `json:"server_p50_ms"`
	GapP50Ms    float64 `json:"gap_p50_ms"`
	// ServerOverruns counts replies whose self-reported time exceeded
	// the client-measured latency — impossible if both clocks are sane,
	// so any non-zero value fails -check.
	ServerOverruns int64 `json:"server_overruns"`
	// SLO is the target's textjoin_slo_* state scraped after the run
	// (present only with -slo).
	SLO []sloStat `json:"slo,omitempty"`
}

// sloStat is one objective's error-budget state scraped from /metrics.
type sloStat struct {
	Objective       string  `json:"objective"`
	Target          float64 `json:"target"`
	Compliance      float64 `json:"compliance"`
	BudgetRemaining float64 `json:"budget_remaining"`
	BurnRate        float64 `json:"burn_rate"`
}

func main() {
	var targets targetList
	addr := flag.String("addr", "http://localhost:8080", "single server base URL (ignored when -target is given)")
	label := flag.String("label", "default", "run label for the single -addr target")
	flag.Var(&targets, "target", "label=url server under load; repeat for several targets")
	rate := flag.Float64("rate", 50, "arrival rate in requests per second (open loop)")
	duration := flag.Duration("duration", 5*time.Second, "length of each run")
	lambda := flag.Int("lambda", 5, "λ sent with every request")
	mix := flag.String("mix", defaultMix, "request profiles, '|'-separated /join query fragments, cycled per arrival")
	wait := flag.Duration("wait", 0, "poll each target's /healthz this long before loading (0 = no wait)")
	jsonPath := flag.String("json", "", "write the machine-readable report here")
	check := flag.Bool("check", false, "exit non-zero unless every request succeeded and percentiles are sane (CI smoke)")
	sloScrape := flag.Bool("slo", false, "after each run, scrape the target's /metrics for textjoin_slo_* error budgets; with -check, a blown budget fails")
	flag.Parse()

	if len(targets) == 0 {
		targets = targetList{{Label: *label, URL: *addr}}
	}
	profiles := strings.Split(*mix, "|")

	rep := report{
		Version: 1,
		Config: runConfig{
			RatePerSec:      *rate,
			DurationSeconds: (*duration).Seconds(),
			Lambda:          *lambda,
			Mix:             profiles,
		},
	}
	for _, tgt := range targets {
		if *wait > 0 {
			if err := waitReady(tgt.URL, *wait); err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: %s: %v\n", tgt.Label, err)
				os.Exit(1)
			}
		}
		st := runLoad(tgt, *rate, *duration, *lambda, profiles)
		if *sloScrape {
			slo, err := scrapeSLO(tgt.URL)
			if err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: %s: slo: %v\n", tgt.Label, err)
				os.Exit(1)
			}
			st.SLO = slo
		}
		rep.Runs = append(rep.Runs, st)
	}

	printTable(os.Stdout, rep.Runs)
	if *jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		fmt.Printf("loadgen: wrote %s\n", *jsonPath)
	}
	if *check {
		if err := sanity(rep.Runs); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: check:", err)
			os.Exit(1)
		}
		fmt.Println("loadgen: check ok")
	}
}

// waitReady polls /healthz until the server answers 200 or the budget
// runs out — the handshake that lets CI start loadgen and textjoind
// concurrently.
func waitReady(base string, budget time.Duration) error {
	client := &http.Client{Timeout: 2 * time.Second}
	deadline := time.Now().Add(budget)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			//lint:ignore errdrop readiness probe: a drain error just means another retry
			io.Copy(io.Discard, resp.Body)
			//lint:ignore errdrop readiness probe: a close error just means another retry
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not ready after %v", base, budget)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// runLoad drives one target with a fixed-rate arrival process: a ticker
// fires every 1/rate seconds and each arrival gets its own goroutine,
// so a slow (or queued) request never delays the next arrival — the
// open-loop property that exposes queueing collapse, which closed-loop
// generators hide.
func runLoad(tgt target, rate float64, duration time.Duration, lambda int, profiles []string) runStat {
	client := &http.Client{Timeout: 2 * duration}
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	stop := time.After(duration)

	st := runStat{Label: tgt.Label}
	var mu sync.Mutex
	var latencies, queueMs, execMs, serverMs, gapMs []float64
	var wg sync.WaitGroup
	begin := time.Now()
	next := 0
arrivals:
	for {
		select {
		case <-stop:
			break arrivals
		case <-ticker.C:
			profile := profiles[next%len(profiles)]
			next++
			st.Requests++
			wg.Add(1)
			go func(profile string) {
				defer wg.Done()
				url := fmt.Sprintf("%s/join?%s&lambda=%d&show=0", tgt.URL, profile, lambda)
				reqBegin := time.Now()
				resp, err := client.Get(url)
				var body []byte
				if resp != nil {
					// A truncated body must classify as a transport error,
					// not a success with a bogus latency sample.
					var readErr error
					body, readErr = io.ReadAll(resp.Body)
					if err == nil {
						err = readErr
					}
					//lint:ignore errdrop body fully read above; Close carries no further signal
					resp.Body.Close()
				}
				// The client clock stops only after the body is fully
				// read, so it strictly covers the server's own
				// wall_seconds accounting.
				elapsed := time.Since(reqBegin)
				status := 0
				if resp != nil {
					status = resp.StatusCode
				}
				mu.Lock()
				defer mu.Unlock()
				switch classify(err, status) {
				case outcomeOK:
					st.OK++
					clientMs := elapsed.Seconds() * 1e3
					latencies = append(latencies, clientMs)
					// The server's residence breakdown rides in every
					// 200 reply; the gap between the two clocks is the
					// client-side overhead the server cannot see.
					var j struct {
						QueueSeconds float64 `json:"queue_seconds"`
						ExecSeconds  float64 `json:"exec_seconds"`
					}
					if json.Unmarshal(body, &j) == nil {
						sMs := (j.QueueSeconds + j.ExecSeconds) * 1e3
						queueMs = append(queueMs, j.QueueSeconds*1e3)
						execMs = append(execMs, j.ExecSeconds*1e3)
						serverMs = append(serverMs, sMs)
						gapMs = append(gapMs, clientMs-sMs)
						if sMs > clientMs {
							st.ServerOverruns++
						}
					}
				case outcomeRejected:
					st.Rejected++
				case outcomeUnprocessable:
					st.Unprocessable++
				default:
					st.Errors++
				}
			}(profile)
		}
	}
	wg.Wait()
	elapsed := time.Since(begin).Seconds()

	sort.Float64s(latencies)
	sort.Float64s(queueMs)
	sort.Float64s(execMs)
	sort.Float64s(serverMs)
	sort.Float64s(gapMs)
	st.ThroughputPerSec = round3(float64(st.OK) / elapsed)
	st.P50Ms = round3(percentile(latencies, 0.50))
	st.P90Ms = round3(percentile(latencies, 0.90))
	st.P99Ms = round3(percentile(latencies, 0.99))
	st.P999Ms = round3(percentile(latencies, 0.999))
	if n := len(latencies); n > 0 {
		st.MaxMs = round3(latencies[n-1])
	}
	st.QueueP50Ms = round3(percentile(queueMs, 0.50))
	st.ExecP50Ms = round3(percentile(execMs, 0.50))
	st.ServerP50Ms = round3(percentile(serverMs, 0.50))
	st.GapP50Ms = round3(percentile(gapMs, 0.50))
	return st
}

// scrapeSLO pulls one target's /metrics, insists the exposition is
// Lint-clean and carries the textjoin_slo_* families, and decodes every
// objective's error-budget state.
func scrapeSLO(base string) ([]sloStat, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics: status %d", resp.StatusCode)
	}
	if err := metrics.Lint(body); err != nil {
		return nil, fmt.Errorf("/metrics exposition rejected: %v", err)
	}
	byName := map[string]*sloStat{}
	order := []string{}
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, "textjoin_slo_") {
			continue
		}
		family, rest, ok := strings.Cut(line, `{objective="`)
		if !ok {
			continue
		}
		name, rest, ok := strings.Cut(rest, `"} `)
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			return nil, fmt.Errorf("bad sample %q: %v", line, err)
		}
		s := byName[name]
		if s == nil {
			s = &sloStat{Objective: name}
			byName[name] = s
			order = append(order, name)
		}
		switch family {
		case "textjoin_slo_target":
			s.Target = v
		case "textjoin_slo_compliance":
			s.Compliance = v
		case "textjoin_slo_error_budget_remaining":
			s.BudgetRemaining = v
		case "textjoin_slo_burn_rate":
			s.BurnRate = v
		}
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("exposition carries no textjoin_slo_* families")
	}
	sort.Strings(order)
	out := make([]sloStat, 0, len(order))
	for _, name := range order {
		out = append(out, *byName[name])
	}
	return out, nil
}

// outcome is a completed request's classification.
type outcome int

const (
	// outcomeOK is a 200 — the join ran.
	outcomeOK outcome = iota
	// outcomeRejected is a 503 — admission control shed the request.
	outcomeRejected
	// outcomeUnprocessable is a 422 — the server admitted the request
	// but the workspace cannot run that join (memory budget, missing
	// structure). It indicts the mix, not the server's capacity, so it
	// must not be lumped in with transport failures and 5xx errors.
	outcomeUnprocessable
	// outcomeError is everything else: transport failure or any other
	// non-200 status.
	outcomeError
)

// classify maps one request's transport error and HTTP status to its
// outcome bucket. A transport error always wins: there is no status
// worth reading when the request never completed.
func classify(err error, status int) outcome {
	if err != nil {
		return outcomeError
	}
	switch status {
	case http.StatusOK:
		return outcomeOK
	case http.StatusServiceUnavailable:
		return outcomeRejected
	case http.StatusUnprocessableEntity:
		return outcomeUnprocessable
	default:
		return outcomeError
	}
}

// percentile returns the q-quantile of sorted values (nearest-rank).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func round3(v float64) float64 { return math.Round(v*1e3) / 1e3 }

// printTable renders the human-readable summary.
func printTable(w io.Writer, runs []runStat) {
	fmt.Fprintf(w, "%-12s %8s %8s %8s %8s %8s %10s %9s %9s %9s %9s %9s %9s %9s\n",
		"target", "requests", "ok", "rejected", "unproc", "errors", "thrpt/s", "p50ms", "p90ms", "p99ms", "p999ms", "maxms", "srv50ms", "gap50ms")
	for _, r := range runs {
		fmt.Fprintf(w, "%-12s %8d %8d %8d %8d %8d %10.1f %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f\n",
			r.Label, r.Requests, r.OK, r.Rejected, r.Unprocessable, r.Errors,
			r.ThroughputPerSec, r.P50Ms, r.P90Ms, r.P99Ms, r.P999Ms, r.MaxMs,
			r.ServerP50Ms, r.GapP50Ms)
	}
	for _, r := range runs {
		for _, s := range r.SLO {
			fmt.Fprintf(w, "%-12s slo %-14s target=%.3f compliance=%.4f budget=%.3f burn=%.3f\n",
				r.Label, s.Objective, s.Target, s.Compliance, s.BudgetRemaining, s.BurnRate)
		}
	}
}

// sanity is the CI gate behind -check: the short smoke run must complete
// every request (no errors, no rejections) with ordered, non-zero
// percentiles.
func sanity(runs []runStat) error {
	for _, r := range runs {
		switch {
		case r.Requests == 0:
			return fmt.Errorf("%s: no requests issued", r.Label)
		case r.Errors > 0:
			return fmt.Errorf("%s: %d requests failed", r.Label, r.Errors)
		case r.Rejected > 0:
			return fmt.Errorf("%s: %d requests rejected", r.Label, r.Rejected)
		case r.Unprocessable > 0:
			return fmt.Errorf("%s: %d requests unprocessable", r.Label, r.Unprocessable)
		case r.OK != r.Requests:
			return fmt.Errorf("%s: %d of %d requests unaccounted for", r.Label, r.Requests-r.OK, r.Requests)
		case r.P50Ms <= 0 || r.P99Ms < r.P50Ms || r.MaxMs < r.P99Ms:
			return fmt.Errorf("%s: implausible percentiles p50=%v p99=%v max=%v", r.Label, r.P50Ms, r.P99Ms, r.MaxMs)
		case r.ServerOverruns > 0:
			return fmt.Errorf("%s: %d replies reported more server time than the client measured", r.Label, r.ServerOverruns)
		case r.ServerP50Ms > r.P50Ms:
			return fmt.Errorf("%s: server p50 %vms exceeds client p50 %vms", r.Label, r.ServerP50Ms, r.P50Ms)
		}
		for _, s := range r.SLO {
			if s.BudgetRemaining < 0 {
				return fmt.Errorf("%s: SLO %q violated: budget remaining %v (burn rate %v)",
					r.Label, s.Objective, s.BudgetRemaining, s.BurnRate)
			}
		}
	}
	return nil
}
