// Command corpusgen emits synthetic document collections in the portable
// text format (one document per line: "docID term:occurrences ...").
//
// Usage:
//
//	corpusgen -profile wsj -scale 256 -seed 1 -out corpus.txt
//	corpusgen -docs 500 -terms-per-doc 40 -vocab 5000 -out corpus.txt
//
// The named profiles carry the statistics of the paper's TREC collections
// (WSJ, FR, DOE); -scale shrinks them for laptop-scale experiments while
// preserving vocabulary density.
package main

import (
	"flag"
	"fmt"
	"os"

	"textjoin/internal/corpus"
	"textjoin/internal/document"
)

func main() {
	profile := flag.String("profile", "", "paper profile: wsj, fr or doe (overrides -docs/-terms-per-doc/-vocab)")
	scale := flag.Int64("scale", 1, "shrink divisor applied to the profile")
	docs := flag.Int64("docs", 100, "number of documents (custom profile)")
	termsPerDoc := flag.Float64("terms-per-doc", 20, "mean distinct terms per document (custom profile)")
	vocab := flag.Int64("vocab", 2000, "vocabulary size (custom profile)")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "-", "output file, - for stdout")
	flag.Parse()

	if err := run(*profile, *scale, *docs, *termsPerDoc, *vocab, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "corpusgen:", err)
		os.Exit(1)
	}
}

func run(profileName string, scale, nDocs int64, termsPerDoc float64, vocab, seed int64, out string) error {
	var p corpus.Profile
	if profileName != "" {
		var err error
		p, err = corpus.ProfileByName(profileName)
		if err != nil {
			return err
		}
		p = p.Scaled(scale)
	} else {
		p = corpus.Profile{Name: "custom", NumDocs: nDocs, TermsPerDoc: termsPerDoc, DistinctTerms: vocab}
	}

	g, err := corpus.NewGenerator(p, seed)
	if err != nil {
		return err
	}
	generated := make([]*document.Document, 0, p.NumDocs)
	for id := int64(0); id < p.NumDocs; id++ {
		generated = append(generated, g.Document(uint32(id)))
	}

	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	fmt.Fprintf(w, "# profile=%s docs=%d terms/doc=%.1f vocab=%d seed=%d\n",
		p.Name, p.NumDocs, p.TermsPerDoc, p.DistinctTerms, seed)
	return corpus.WriteText(w, generated)
}
