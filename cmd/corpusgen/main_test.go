package main

import (
	"os"
	"path/filepath"
	"testing"

	"textjoin/internal/corpus"
)

func TestRunCustomProfile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "c.txt")
	if err := run("", 1, 25, 8, 300, 7, out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	docs, err := corpus.ReadText(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 25 {
		t.Errorf("docs = %d, want 25", len(docs))
	}
	for i, d := range docs {
		if d.ID != uint32(i) || len(d.Cells) == 0 {
			t.Errorf("doc %d = %+v", i, d)
		}
	}
}

func TestRunNamedProfileScaled(t *testing.T) {
	out := filepath.Join(t.TempDir(), "wsj.txt")
	if err := run("wsj", 4096, 0, 0, 0, 1, out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	docs, err := corpus.ReadText(f)
	if err != nil {
		t.Fatal(err)
	}
	want := corpus.WSJ.Scaled(4096).NumDocs
	if int64(len(docs)) != want {
		t.Errorf("docs = %d, want %d", len(docs), want)
	}
}

func TestRunDeterministic(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.txt")
	b := filepath.Join(dir, "b.txt")
	if err := run("", 1, 10, 5, 100, 3, a); err != nil {
		t.Fatal(err)
	}
	if err := run("", 1, 10, 5, 100, 3, b); err != nil {
		t.Fatal(err)
	}
	da, _ := os.ReadFile(a)
	db, _ := os.ReadFile(b)
	if string(da) != string(db) {
		t.Error("same seed produced different corpora")
	}
}

func TestRunErrors(t *testing.T) {
	out := filepath.Join(t.TempDir(), "x.txt")
	if err := run("nope", 1, 0, 0, 0, 1, out); err == nil {
		t.Error("unknown profile: want error")
	}
	if err := run("", 1, 10, 50, 5, 1, out); err == nil {
		t.Error("K > vocab: want error")
	}
	if err := run("", 1, 10, 5, 100, 1, "/nonexistent-dir/x.txt"); err == nil {
		t.Error("bad output path: want error")
	}
}
