// Command textjoind is the long-running observability service: it builds
// a workspace once (two generated collections with their inverted
// files), then serves joins and live telemetry over HTTP.
//
// Endpoints:
//
//	/join          run a join; query parameters alg (auto, hhnl, hvnl,
//	               vvm, lsh), mode (exact, lsh), recall, lambda, workers,
//	               weighting (raw, cosine, tfidf), show; responds with
//	               JSON
//	/metrics       Prometheus text exposition of the telemetry collector,
//	               with per-second rate gauges between scrapes
//	/traces        the trace ring as JSON Lines; ?since=<seq> tails
//	/healthz       liveness plus workspace summary, JSON
//	/debug/requests
//	               the flight recorder: the slowest and most recent
//	               request traces (HTML, or JSON with ?format=json);
//	               /debug/requests/{traceID} is one request's span tree
//	/debug/pprof/  the standard Go profiling handlers
//
// Every /join answers (and accepts) a W3C-style Traceparent header and
// reports its trace_id in the response body; textjoin_slo_* gauge
// families on /metrics track the availability and latency objectives'
// error budgets.
//
// Usage:
//
//	textjoind -addr localhost:8080 -p1 wsj -p2 wsj -scale 2048
//	textjoind -smoke        # self-drive every endpoint once and exit
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
)

func main() {
	cfg := defaultConfig()
	addr := flag.String("addr", "localhost:8080", "listen address (port 0 picks a free port)")
	smoke := flag.Bool("smoke", false, "start on a loopback port, exercise every endpoint, shut down; exit non-zero on failure")
	flag.StringVar(&cfg.P1, "p1", cfg.P1, "inner collection profile: wsj, fr, doe")
	flag.StringVar(&cfg.P2, "p2", cfg.P2, "outer collection profile: wsj, fr, doe")
	flag.Int64Var(&cfg.Scale, "scale", cfg.Scale, "profile shrink divisor")
	flag.Int64Var(&cfg.Seed, "seed", cfg.Seed, "generation seed")
	flag.Int64Var(&cfg.MemoryPages, "mem", cfg.MemoryPages, "memory budget B in pages")
	flag.Float64Var(&cfg.Alpha, "alpha", cfg.Alpha, "random/sequential I/O cost ratio α")
	flag.IntVar(&cfg.Lambda, "lambda", cfg.Lambda, "default λ of SIMILAR_TO(λ)")
	flag.IntVar(&cfg.TraceCap, "trace-cap", cfg.TraceCap, "trace ring capacity in entries")
	budgetMB := flag.Int64("budget-mb", cfg.BudgetBytes>>20, "admission budget for concurrent joins, MiB")
	flag.IntVar(&cfg.QueueLen, "queue", cfg.QueueLen, "admission wait-queue capacity; a full queue rejects with 503")
	flag.DurationVar(&cfg.QueueWait, "queue-wait", cfg.QueueWait, "longest a request may wait for admission before 503")
	flag.BoolVar(&cfg.Serialize, "serialize", cfg.Serialize, "run joins one at a time (benchmark baseline)")
	flag.DurationVar(&cfg.IODelay, "io-delay", cfg.IODelay, "real wall-clock latency per simulated page read (benchmark device model)")
	flag.Uint64Var(&cfg.TraceSeed, "trace-seed", cfg.TraceSeed, "seed of the request tracer's deterministic ID stream")
	flag.IntVar(&cfg.RecorderCap, "recorder-cap", cfg.RecorderCap, "flight recorder capacity: keeps this many slowest and this many most recent request traces")
	flag.DurationVar(&cfg.SLOWindow, "slo-window", cfg.SLOWindow, "rolling window for SLO evaluation")
	flag.Float64Var(&cfg.SLOAvailTarget, "slo-avail", cfg.SLOAvailTarget, "availability SLO target in (0, 1)")
	flag.Float64Var(&cfg.SLOLatencyTarget, "slo-latency-target", cfg.SLOLatencyTarget, "latency SLO target in (0, 1)")
	flag.DurationVar(&cfg.SLOLatency, "slo-latency", cfg.SLOLatency, "latency SLO threshold: a /join under this duration is good")
	flag.Parse()
	cfg.BudgetBytes = *budgetMB << 20

	if *smoke {
		if err := runSmoke(cfg, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "textjoind: smoke:", err)
			os.Exit(1)
		}
		return
	}

	srv, err := newServer(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "textjoind:", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "textjoind:", err)
		os.Exit(1)
	}
	fmt.Printf("textjoind: %s\n", srv.describe())
	fmt.Printf("textjoind: listening on %s\n", ln.Addr())
	if err := (&http.Server{Handler: srv.handler()}).Serve(ln); err != nil {
		fmt.Fprintln(os.Stderr, "textjoind:", err)
		os.Exit(1)
	}
}
