package main

import (
	"errors"
	"sync"
	"time"

	"textjoin"
	"textjoin/internal/costmodel"
)

// Admission control: every /join request is charged an estimated memory
// footprint before it runs. A bytes-weighted semaphore admits requests
// while their footprints fit the configured budget; excess requests wait
// in a bounded FIFO queue with a deadline. The queue is the only place a
// request can park, so the server's peak memory is budget + one page of
// bookkeeping per queued request — it can neither OOM under a burst nor
// build an unbounded backlog.

var (
	// errQueueFull rejects a request when the wait queue is at capacity.
	errQueueFull = errors.New("admission queue full")
	// errQueueWait rejects a request that waited past the deadline.
	errQueueWait = errors.New("admission wait deadline exceeded")
)

// waiter is one parked request: ready is closed when its footprint fits.
type waiter struct {
	cost  int64
	ready chan struct{}
}

// admitter is the bytes-weighted FIFO semaphore. Footprints larger than
// the whole budget are clamped to it, so an oversized request is never
// rejected permanently — it simply runs alone.
type admitter struct {
	budget   int64
	maxQueue int
	maxWait  time.Duration
	tel      *textjoin.Telemetry

	mu    sync.Mutex
	inUse int64
	queue []*waiter
}

func newAdmitter(budget int64, maxQueue int, maxWait time.Duration, tel *textjoin.Telemetry) *admitter {
	if budget <= 0 {
		budget = 1
	}
	// Materialize the admission families at zero so the first scrape
	// already carries the levels, not just scrapes that follow load.
	tel.Counter("http.inflight").Add(0)
	tel.Counter("http.queue_depth").Add(0)
	tel.Counter("http.rejected").Add(0)
	return &admitter{budget: budget, maxQueue: maxQueue, maxWait: maxWait, tel: tel}
}

// clamp bounds a request's charge to the whole budget.
func (a *admitter) clamp(cost int64) int64 {
	if cost < 1 {
		return 1
	}
	if cost > a.budget {
		return a.budget
	}
	return cost
}

// admit charges cost bytes against the budget, parking in FIFO order
// when it does not fit. It returns the time spent queued; on error
// (queue full or deadline) the request was never admitted and must not
// be released.
func (a *admitter) admit(cost int64) (time.Duration, error) {
	cost = a.clamp(cost)
	a.mu.Lock()
	if len(a.queue) == 0 && a.inUse+cost <= a.budget {
		a.inUse += cost
		a.mu.Unlock()
		a.tel.Counter("http.inflight").Add(1)
		return 0, nil
	}
	if len(a.queue) >= a.maxQueue {
		a.mu.Unlock()
		a.tel.Counter("http.rejected").Add(1)
		return 0, errQueueFull
	}
	w := &waiter{cost: cost, ready: make(chan struct{})}
	a.queue = append(a.queue, w)
	a.mu.Unlock()
	a.tel.Counter("http.queue_depth").Add(1)

	begin := time.Now()
	timer := time.NewTimer(a.maxWait)
	defer timer.Stop()
	select {
	case <-w.ready:
		a.tel.Counter("http.queue_depth").Add(-1)
		a.tel.Counter("http.inflight").Add(1)
		return time.Since(begin), nil
	case <-timer.C:
	}
	// Deadline fired. Remove ourselves — unless release admitted us in
	// the race window, in which case the admission stands.
	a.mu.Lock()
	for i, q := range a.queue {
		if q == w {
			a.queue = append(a.queue[:i], a.queue[i+1:]...)
			a.mu.Unlock()
			a.tel.Counter("http.queue_depth").Add(-1)
			a.tel.Counter("http.rejected").Add(1)
			return time.Since(begin), errQueueWait
		}
	}
	a.mu.Unlock()
	<-w.ready
	a.tel.Counter("http.queue_depth").Add(-1)
	a.tel.Counter("http.inflight").Add(1)
	return time.Since(begin), nil
}

// release returns an admitted request's charge and wakes every queued
// waiter that now fits, in arrival order.
func (a *admitter) release(cost int64) {
	cost = a.clamp(cost)
	a.mu.Lock()
	a.inUse -= cost
	for len(a.queue) > 0 {
		w := a.queue[0]
		if a.inUse+w.cost > a.budget {
			break
		}
		a.inUse += w.cost
		a.queue = a.queue[1:]
		close(w.ready)
	}
	a.mu.Unlock()
	a.tel.Counter("http.inflight").Add(-1)
}

// footprintBytes estimates the peak memory one join request pins while
// it runs: the page-buffer working set (bounded by both the memory
// budget B and the data actually on disk) plus the similarity
// accumulators the algorithms allocate — the λ-tracker over the outer
// collection and, for the inverted-file algorithms, one accumulator
// array over the inner collection per worker. The estimate reuses the
// cost model's S/D formulas and SimBytes constant so it tracks the same
// corpus statistics the planner sees. "auto" charges the worst case
// across algorithms, since the choice is not known until after
// admission.
func (s *server) footprintBytes(algName string, lambda, workers int) int64 {
	st1, st2 := s.c1.Stats(), s.c2.Stats()
	pageSize := int64(s.c1.File().PageSize())
	if workers < 1 {
		workers = 1
	}

	// Working set: the join never buffers more than B pages, and never
	// more than both collections plus their inverted files (≈ D again).
	dataPages := 2 * (st1.D + st2.D)
	bufPages := s.cfg.MemoryPages
	if dataPages < bufPages {
		bufPages = dataPages
	}
	buffer := bufPages * pageSize

	// λ-tracker: λ best matches for every outer document.
	tracker := int64(costmodel.SimBytes) * int64(lambda) * st2.N

	// Accumulators: HVNL and VVM keep one similarity slot per inner
	// document; parallel variants keep one array per worker.
	accum := int64(costmodel.SimBytes) * st1.N * int64(workers)
	if algName == "hhnl" {
		accum = 0
	}
	return buffer + tracker + accum
}
