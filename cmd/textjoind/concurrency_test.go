package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"
)

// joinPaths is the mixed request set the acceptance criterion names:
// all three algorithms, serial and parallel variants, prefilter on and
// off — more than eight requests in flight at once.
func joinPaths() []string {
	return []string{
		"/join?alg=hhnl&show=2",
		"/join?alg=hvnl&show=2",
		"/join?alg=vvm&show=2",
		"/join?alg=hhnl&workers=2&show=2",
		"/join?alg=hvnl&workers=2&show=2",
		"/join?alg=vvm&workers=2&show=2",
		"/join?alg=hhnl&prefilter=on&show=2",
		"/join?alg=hvnl&prefilter=on&show=2",
		"/join?alg=auto&show=2",
		"/join?alg=vvm&workers=7&show=2",
	}
}

// deterministic strips a join response down to the fields that must be
// byte-identical between serial and concurrent execution — everything
// except the wall-clock timings.
func deterministic(j joinResponse) joinResponse {
	j.WallSeconds, j.QueueSeconds, j.ExecSeconds = 0, 0, 0
	j.TraceID = ""
	return j
}

func getJoin(t *testing.T, hs *httptest.Server, path string) joinResponse {
	t.Helper()
	status, body := get(t, hs, path)
	if status != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", path, status, body)
	}
	var j joinResponse
	if err := json.Unmarshal(body, &j); err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return j
}

// TestConcurrentJoinsMatchSerial is the serving-layer acceptance check:
// the mixed request set run all at once returns, request for request,
// exactly the response a serial run produced — same results, same
// per-request I/O stats, same costs. Under -race this also proves the
// unlocked join path is data-race free end to end.
func TestConcurrentJoinsMatchSerial(t *testing.T) {
	_, hs := testServer(t, 2048)
	paths := joinPaths()

	want := make([]joinResponse, len(paths))
	for i, p := range paths {
		want[i] = deterministic(getJoin(t, hs, p))
	}

	got := make([]joinResponse, len(paths))
	var wg sync.WaitGroup
	for i, p := range paths {
		i, p := i, p
		wg.Add(1)
		go func() {
			defer wg.Done()
			got[i] = deterministic(getJoin(t, hs, p))
		}()
	}
	wg.Wait()

	for i, p := range paths {
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Errorf("%s: concurrent response diverges from serial:\nserial:     %+v\nconcurrent: %+v",
				p, want[i], got[i])
		}
	}
}

// TestSerializeMode: with -serialize every request charges the whole
// budget, so requests still succeed concurrently — they just take turns.
func TestSerializeMode(t *testing.T) {
	cfg := defaultConfig()
	cfg.Scale = 2048
	cfg.Serialize = true
	cfg.QueueWait = 10 * time.Second
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.handler())
	defer hs.Close()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			getJoin(t, hs, "/join?alg=hvnl&show=0")
		}()
	}
	wg.Wait()
	if n := s.joins.Load(); n != 4 {
		t.Fatalf("joins = %d, want 4", n)
	}
}

// TestQueueFullRejects: with the budget held and no queue capacity, a
// join is turned away with 503 and a Retry-After hint instead of
// parking unboundedly.
func TestQueueFullRejects(t *testing.T) {
	cfg := defaultConfig()
	cfg.Scale = 4096
	cfg.QueueLen = 0
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.handler())
	defer hs.Close()

	// Occupy the entire budget, as a long-running join would.
	if _, err := s.adm.admit(cfg.BudgetBytes); err != nil {
		t.Fatal(err)
	}
	resp, err := hs.Client().Get(hs.URL + "/join?alg=hhnl&show=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 reply carries no Retry-After header")
	}
	s.adm.release(cfg.BudgetBytes)

	// With the budget free again the same request succeeds.
	getJoin(t, hs, "/join?alg=hhnl&show=0")
}

// TestQueueWaitDeadline: a request that queues but never fits is
// rejected with 503 once the configured deadline passes.
func TestQueueWaitDeadline(t *testing.T) {
	cfg := defaultConfig()
	cfg.Scale = 4096
	cfg.QueueLen = 4
	cfg.QueueWait = 30 * time.Millisecond
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.handler())
	defer hs.Close()

	if _, err := s.adm.admit(cfg.BudgetBytes); err != nil {
		t.Fatal(err)
	}
	defer s.adm.release(cfg.BudgetBytes)
	resp, err := hs.Client().Get(hs.URL + "/join?alg=hhnl&show=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
}

// TestJoinErrorMapping: a join the workspace cannot run (memory budget
// below the algorithm's minimal working set) maps to 422, not to a
// generic failure — and malformed parameters never reach admission.
func TestJoinErrorMapping(t *testing.T) {
	cfg := defaultConfig()
	cfg.Scale = 4096
	cfg.MemoryPages = 1
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.handler())
	defer hs.Close()

	status, body := get(t, hs, "/join?alg=vvm&show=0")
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("insufficient memory: status %d, want 422: %s", status, body)
	}

	// Parameter errors reject before admission: the inflight gauge
	// stays untouched.
	before := s.tel.Counter("http.rejected").Value()
	if status, _ := get(t, hs, "/join?alg=bogus"); status != http.StatusBadRequest {
		t.Fatalf("alg=bogus: status %d, want 400", status)
	}
	if after := s.tel.Counter("http.rejected").Value(); after != before {
		t.Errorf("malformed request touched admission (rejected %d -> %d)", before, after)
	}
}

// TestJoinTimingFields: the reply separates queue wait from execution;
// the total wall time covers both.
func TestJoinTimingFields(t *testing.T) {
	_, hs := testServer(t, 4096)
	j := getJoin(t, hs, "/join?alg=hvnl&show=0")
	if j.ExecSeconds <= 0 {
		t.Errorf("exec_seconds = %v, want > 0", j.ExecSeconds)
	}
	if j.WallSeconds < j.ExecSeconds {
		t.Errorf("wall_seconds %v < exec_seconds %v", j.WallSeconds, j.ExecSeconds)
	}
	if j.QueueSeconds != 0 {
		t.Errorf("queue_seconds = %v on an idle server, want 0", j.QueueSeconds)
	}
}
