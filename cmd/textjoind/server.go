package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync/atomic"
	"time"

	"textjoin"
	"textjoin/internal/corpus"
	"textjoin/internal/reqtrace"
	"textjoin/internal/telemetry"
)

// config describes the workspace the server builds at startup and the
// admission-control envelope it serves under.
type config struct {
	P1, P2      string
	Scale       int64
	Seed        int64
	MemoryPages int64
	Alpha       float64
	Lambda      int
	TraceCap    int
	// BudgetBytes caps the summed footprint of concurrently running
	// joins; QueueLen and QueueWait bound the FIFO wait queue behind
	// it. Serialize charges every request the whole budget, restoring
	// one-join-at-a-time execution (the pre-concurrency behavior, kept
	// as a benchmark baseline).
	BudgetBytes int64
	QueueLen    int
	QueueWait   time.Duration
	Serialize   bool
	// IODelay charges every simulated page read that much real time
	// (default 0), modeling device latency for serving benchmarks.
	IODelay time.Duration
	// TraceSeed seeds the request tracer's deterministic ID stream;
	// RecorderCap bounds the flight recorder (N slowest + N most
	// recent finished request traces behind /debug/requests).
	TraceSeed   uint64
	RecorderCap int
	// The SLO layer: availability (join outcomes) and latency
	// (http.request.join.ns against SLOLatency) objectives evaluated
	// over a rolling SLOWindow and exported as textjoin_slo_* gauges.
	SLOWindow        time.Duration
	SLOAvailTarget   float64
	SLOLatencyTarget float64
	SLOLatency       time.Duration
}

func defaultConfig() config {
	return config{
		P1:          "wsj",
		P2:          "wsj",
		Scale:       2048,
		Seed:        1,
		MemoryPages: 10000,
		Alpha:       5,
		Lambda:      5,
		TraceCap:    4096,
		BudgetBytes: 256 << 20,
		QueueLen:    64,
		QueueWait:   2 * time.Second,

		TraceSeed:        1,
		RecorderCap:      reqtrace.DefaultRecorderCap,
		SLOWindow:        textjoin.DefaultSLOWindow,
		SLOAvailTarget:   0.99,
		SLOLatencyTarget: 0.95,
		SLOLatency:       2 * time.Second,
	}
}

// server owns the workspace, the telemetry collector and the exporter.
// Joins run concurrently: each request executes on a private I/O view of
// the workspace disk (its own head positions and counters over the same
// immutable pages), so overlapping joins return results and stats
// byte-identical to serial runs. The admitter bounds how many run at
// once by their estimated memory footprints; /metrics, /traces and
// /healthz bypass admission entirely and stay responsive under load.
type server struct {
	cfg        config
	ws         *textjoin.Workspace
	c1, c2     *textjoin.Collection
	inv1       *textjoin.InvertedFile
	inv2       *textjoin.InvertedFile
	sig1, sig2 *textjoin.SignatureSidecar
	lsh1       *textjoin.LSHSidecar
	tel        *textjoin.Telemetry
	exporter   *textjoin.MetricsExporter
	tracer     *textjoin.RequestTracer
	recorder   *textjoin.FlightRecorder
	slo        *textjoin.SLOEngine
	adm        *admitter
	start      time.Time

	joins atomic.Int64
}

func newServer(cfg config) (*server, error) {
	ws := textjoin.NewWorkspace(textjoin.WithAlpha(cfg.Alpha), textjoin.WithIODelay(cfg.IODelay))
	gen := func(name, profile string, seed int64) (*textjoin.Collection, error) {
		p, err := corpus.ProfileByName(profile)
		if err != nil {
			return nil, err
		}
		sp := p.Scaled(cfg.Scale)
		sp.Name = name
		return ws.GenerateCorpus(sp, seed)
	}
	c1, err := gen("c1", cfg.P1, cfg.Seed)
	if err != nil {
		return nil, err
	}
	c2, err := gen("c2", cfg.P2, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	inv1, err := ws.BuildInvertedFile(c1)
	if err != nil {
		return nil, err
	}
	inv2, err := ws.BuildInvertedFile(c2)
	if err != nil {
		return nil, err
	}
	sig1, err := ws.BuildSignatures(c1, textjoin.SignatureConfig{})
	if err != nil {
		return nil, err
	}
	sig2, err := ws.BuildSignatures(c2, textjoin.SignatureConfig{})
	if err != nil {
		return nil, err
	}
	// The MinHash sidecar covers the inner collection only: LSH generates
	// candidates per outer document on the fly, so the outer side never
	// needs one.
	lsh1, err := ws.BuildLSH(c1, textjoin.LSHConfig{})
	if err != nil {
		return nil, err
	}

	// Load both term indexes up front: the one-time B+tree sweep is
	// charged to startup, not to whichever request happens to arrive
	// first — per-request I/O stats stay identical from the first join.
	if _, err := inv1.LoadIndex(); err != nil {
		return nil, err
	}
	if _, err := inv2.LoadIndex(); err != nil {
		return nil, err
	}

	tel := textjoin.NewTelemetry(telemetry.WithTraceCap(cfg.TraceCap))
	ws.ResetIOStats()
	ws.SetTelemetry(tel)

	// The SLO layer reads the same collector the joins write: the
	// availability objective classifies join outcomes, the latency
	// objective classifies the per-request /join latency histogram.
	sloEng, err := textjoin.NewSLOEngine(tel, cfg.SLOWindow, []textjoin.SLOObjective{
		{
			Name:   "availability",
			Target: cfg.SLOAvailTarget,
			Good:   []string{"http.join.ok"},
			Bad:    []string{"http.join.err", "http.rejected"},
		},
		{
			Name:           "latency",
			Target:         cfg.SLOLatencyTarget,
			Histogram:      "http.request.join.ns",
			ThresholdNanos: cfg.SLOLatency.Nanoseconds(),
		},
	})
	if err != nil {
		return nil, err
	}
	return &server{
		cfg:      cfg,
		ws:       ws,
		c1:       c1,
		c2:       c2,
		inv1:     inv1,
		inv2:     inv2,
		sig1:     sig1,
		sig2:     sig2,
		lsh1:     lsh1,
		tel:      tel,
		exporter: textjoin.NewMetricsExporter(tel, textjoin.WithSLOGauges(sloEng)),
		tracer:   textjoin.NewRequestTracer(cfg.TraceSeed),
		recorder: textjoin.NewFlightRecorder(cfg.RecorderCap),
		slo:      sloEng,
		adm:      newAdmitter(cfg.BudgetBytes, cfg.QueueLen, cfg.QueueWait, tel),
		start:    time.Now(),
	}, nil
}

func (s *server) describe() string {
	st1, st2 := s.c1.Stats(), s.c2.Stats()
	return fmt.Sprintf("C1=%s/%d (N=%d K=%.1f) C2=%s/%d (N=%d K=%.1f) mem=%d alpha=%.1f",
		s.cfg.P1, s.cfg.Scale, st1.N, st1.K, s.cfg.P2, s.cfg.Scale, st2.N, st2.K,
		s.cfg.MemoryPages, s.cfg.Alpha)
}

// timed wraps a handler with the per-endpoint request-latency histogram.
func (s *server) timed(endpoint string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		begin := time.Now()
		h.ServeHTTP(w, r)
		s.tel.Histogram("http.request."+endpoint+".ns", telemetry.DefaultLatencyBuckets).
			Observe(time.Since(begin).Nanoseconds())
	})
}

// traced wraps a handler with a request-scoped trace: it opens a root
// span for every request (linking to the caller's trace when a
// Traceparent header is present), exposes it to the handler through the
// request context, echoes the trace identity in the response
// Traceparent header, and hands the finished tree to the flight
// recorder when the handler returns — on every path, including panics
// unwinding through the deferred Record.
func (s *server) traced(name string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var span *textjoin.RequestSpan
		if remote, parent, err := reqtrace.ParseTraceparent(r.Header.Get(reqtrace.TraceparentHeader)); err == nil {
			span = s.tracer.StartLinkedTrace(name, remote, parent)
		} else {
			span = s.tracer.StartTrace(name)
		}
		if span != nil {
			w.Header().Set(reqtrace.TraceparentHeader,
				reqtrace.FormatTraceparent(span.TraceID(), span.SpanID()))
		}
		defer s.recorder.Record(span)
		h.ServeHTTP(w, r.WithContext(reqtrace.NewContext(r.Context(), span)))
	})
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/join", s.timed("join", s.traced("join", http.HandlerFunc(s.handleJoin))))
	mux.Handle("/metrics", s.timed("metrics", s.exporter))
	debugRequests := s.timed("debug_requests", textjoin.FlightRecorderHandler(s.recorder, "/debug/requests"))
	mux.Handle("/debug/requests", debugRequests)
	mux.Handle("/debug/requests/", debugRequests)
	mux.Handle("/traces", s.timed("traces", textjoin.TraceStreamHandler(s.tel)))
	mux.Handle("/healthz", s.timed("healthz", http.HandlerFunc(s.handleHealth)))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	st1, st2 := s.c1.Stats(), s.c2.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
		"joins":          s.joins.Load(),
		"collections": []map[string]any{
			{"name": "c1", "profile": s.cfg.P1, "docs": st1.N, "terms": st1.T, "pages": st1.D},
			{"name": "c2", "profile": s.cfg.P2, "docs": st2.N, "terms": st2.T, "pages": st2.D},
		},
	})
}

// joinResponse is the /join reply. WallSeconds is the request's total
// residence time; QueueSeconds is the share spent parked in the
// admission queue and ExecSeconds the share actually executing the join,
// so saturation (queue growth) is distinguishable from slow joins.
type joinResponse struct {
	TraceID      string          `json:"trace_id,omitempty"`
	Algorithm    string          `json:"algorithm"`
	Integrated   bool            `json:"integrated"`
	Workers      int             `json:"workers"`
	Lambda       int             `json:"lambda"`
	OuterDocs    int64           `json:"outer_docs"`
	InnerDocs    int64           `json:"inner_docs"`
	Passes       int             `json:"passes"`
	SeqReads     int64           `json:"seq_reads"`
	RandReads    int64           `json:"rand_reads"`
	Cost         float64         `json:"cost"`
	WallSeconds  float64         `json:"wall_seconds"`
	QueueSeconds float64         `json:"queue_seconds"`
	ExecSeconds  float64         `json:"exec_seconds"`
	Prefilter    *prefilterStats `json:"prefilter,omitempty"`
	LSH          *lshStats       `json:"lsh,omitempty"`
	Results      []joinResult    `json:"results,omitempty"`
}

// lshStats reports the approximate join's candidate generation outcome.
type lshStats struct {
	BucketProbes int64 `json:"bucket_probes"`
	Candidates   int64 `json:"candidates"`
	PagesSkipped int64 `json:"pages_skipped"`
	DocsSkipped  int64 `json:"docs_skipped"`
}

// prefilterStats reports the signature prefilter's pruning outcome.
type prefilterStats struct {
	PagesSkipped    int64 `json:"pages_skipped"`
	ClustersSkipped int64 `json:"clusters_skipped"`
	DocsSkipped     int64 `json:"docs_skipped"`
	FalsePasses     int64 `json:"false_passes"`
}

type joinResult struct {
	Outer   uint32      `json:"outer"`
	Matches []joinMatch `json:"matches"`
}

type joinMatch struct {
	Doc uint32  `json:"doc"`
	Sim float64 `json:"sim"`
}

// handleJoin runs one join. Parameters: alg (auto, hhnl, hvnl, vvm, lsh;
// default auto), lambda, workers (>1 selects the parallel variant of an
// explicit algorithm), weighting (raw, cosine, tfidf), show (result rows
// to include, default 3), prefilter (on, off; default off) to offer the
// signature sidecars to the join — results are byte-identical either
// way, only the I/O pattern changes. mode (exact, lsh; default exact)
// set to lsh runs the approximate MinHash join (alg=lsh is the same
// request), and recall in (0, 1] offers the LSH plan to alg=auto's
// planner under that recall SLO.
//
// Every parameter is validated before the request is admitted, so a
// malformed request never occupies budget or queue space. Admitted
// requests run on a private I/O view and release their footprint when
// done. Failure classes map to distinct statuses: bad parameters → 400,
// admission rejection → 503 (with Retry-After), a join the workspace
// cannot run (memory budget, missing structure) → 422, anything else →
// 500.
func (s *server) handleJoin(w http.ResponseWriter, r *http.Request) {
	begin := time.Now()
	span := reqtrace.FromContext(r.Context())
	algName := param(r, "alg", "auto")
	if algName != "auto" {
		if _, err := textjoin.ParseAlgorithm(algName); err != nil {
			s.joinError(w, span, http.StatusBadRequest, err)
			return
		}
	}
	lambda, err := intParam(r, "lambda", s.cfg.Lambda)
	if err == nil && lambda <= 0 {
		err = fmt.Errorf("lambda must be positive")
	}
	if err != nil {
		s.joinError(w, span, http.StatusBadRequest, err)
		return
	}
	workers, err := intParam(r, "workers", 1)
	if err != nil {
		s.joinError(w, span, http.StatusBadRequest, err)
		return
	}
	show, err := intParam(r, "show", 3)
	if err != nil {
		s.joinError(w, span, http.StatusBadRequest, err)
		return
	}
	weighting, err := textjoin.ParseWeighting(param(r, "weighting", "raw"))
	if err != nil {
		s.joinError(w, span, http.StatusBadRequest, err)
		return
	}
	prefilter := param(r, "prefilter", "off")
	if prefilter != "on" && prefilter != "off" {
		s.joinError(w, span, http.StatusBadRequest, fmt.Errorf("parameter prefilter: want on or off, got %q", prefilter))
		return
	}
	mode := param(r, "mode", "exact")
	if mode != "exact" && mode != "lsh" {
		s.joinError(w, span, http.StatusBadRequest, fmt.Errorf("parameter mode: want exact or lsh, got %q", mode))
		return
	}
	if algName == "lsh" {
		mode = "lsh"
	}
	recall, err := floatParam(r, "recall", 0)
	if err == nil && recall != 0 && (recall <= 0 || recall > 1) {
		err = fmt.Errorf("parameter recall: want a value in (0, 1], got %v", recall)
	}
	if err != nil {
		s.joinError(w, span, http.StatusBadRequest, err)
		return
	}

	// The accepted request parameters, stamped on the root span so a
	// trace is self-describing.
	span.SetAttr("join.alg", algName)
	span.SetAttr("join.mode", mode)
	span.SetInt("join.lambda", int64(lambda))
	span.SetInt("join.workers", int64(workers))
	span.SetAttr("join.prefilter", prefilter)
	if recall != 0 {
		span.SetFloat("join.recall_slo", recall)
	}

	// Admission: charge the estimated footprint against the budget. In
	// serialize mode every request is charged the whole budget, so at
	// most one join runs at a time (the benchmark baseline).
	cost := s.footprintBytes(algName, lambda, workers)
	if s.cfg.Serialize {
		cost = s.cfg.BudgetBytes
	}
	qspan := span.StartChild("queue", "admission")
	qspan.SetInt("queue.cost_bytes", cost)
	queued, err := s.adm.admit(cost)
	qspan.SetInt("queue.wait_ns", queued.Nanoseconds())
	if err != nil {
		qspan.SetAttr("queue.rejected", "true")
		qspan.End()
		w.Header().Set("Retry-After", retryAfter(s.cfg.QueueWait))
		s.joinError(w, span, http.StatusServiceUnavailable, err)
		return
	}
	qspan.End()
	defer s.adm.release(cost)

	// Snapshot: bind the inputs to a private I/O view so this join's
	// page reads move private head positions and counters.
	v := s.ws.Snapshot()
	defer v.Close()
	in := textjoin.Inputs{Outer: s.c2, Inner: s.c1, InnerInv: s.inv1, OuterInv: s.inv2}
	if in, err = in.WithView(v); err != nil {
		s.joinError(w, span, http.StatusInternalServerError, err)
		return
	}
	exec := span.StartChild("exec", "join "+algName)
	opts := textjoin.Options{
		Lambda:      lambda,
		MemoryPages: s.cfg.MemoryPages,
		Weighting:   weighting,
		Telemetry:   s.tel,
		Trace:       exec,
	}
	if prefilter == "on" {
		opts.Prefilter = &textjoin.Prefilter{Inner: s.sig1, Outer: s.sig2}
	}
	if mode == "lsh" || recall != 0 {
		opts.LSH = s.lsh1
		opts.RecallSLO = recall
	}

	resp := joinResponse{Workers: workers, Lambda: lambda}
	var results []textjoin.Result
	var stats *textjoin.JoinStats

	execBegin := time.Now()
	switch {
	case mode == "lsh" && workers > 1:
		results, stats, err = textjoin.JoinLSHParallel(in, opts, workers)
	case mode == "lsh":
		results, stats, err = textjoin.JoinLSH(in, opts)
	case algName == "auto":
		results, stats, _, err = textjoin.JoinIntegrated(in, opts)
		resp.Integrated = true
	default:
		//lint:ignore errdrop algName was validated with ParseAlgorithm before admission
		alg, _ := textjoin.ParseAlgorithm(algName)
		switch {
		case workers > 1 && alg == textjoin.HHNL:
			results, stats, err = textjoin.JoinHHNLParallel(in, opts, workers)
		case workers > 1 && alg == textjoin.HVNL:
			results, stats, err = textjoin.JoinHVNLParallel(in, opts, workers)
		case workers > 1 && alg == textjoin.VVM:
			results, stats, err = textjoin.JoinVVMParallel(in, opts, workers)
		default:
			results, stats, err = textjoin.Join(alg, in, opts)
		}
	}
	exec.End()
	recordViewIO(span, v)
	execSeconds := time.Since(execBegin).Seconds()
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, textjoin.ErrInsufficientMemory) || errors.Is(err, textjoin.ErrMissingInput) {
			status = http.StatusUnprocessableEntity
		}
		s.joinError(w, span, status, err)
		return
	}
	s.joins.Add(1)
	s.tel.Counter("query.joins").Add(1)
	s.tel.Counter("http.join.ok").Add(1)
	span.SetInt("http.status", http.StatusOK)
	span.SetAttr("join.chosen", stats.Algorithm.String())
	span.SetInt("result.rows", int64(len(results)))
	span.SetAttr("result.hash", resultHash(results))
	resp.TraceID = traceIDString(span)

	resp.Algorithm = stats.Algorithm.String()
	resp.OuterDocs = stats.OuterDocs
	resp.InnerDocs = stats.InnerDocs
	resp.Passes = stats.Passes
	resp.SeqReads = stats.IO.SeqReads
	resp.RandReads = stats.IO.RandReads
	resp.Cost = stats.Cost
	resp.WallSeconds = time.Since(begin).Seconds()
	resp.QueueSeconds = queued.Seconds()
	resp.ExecSeconds = execSeconds
	if stats.Prefilter.Enabled {
		resp.Prefilter = &prefilterStats{
			PagesSkipped:    stats.Prefilter.PagesSkipped,
			ClustersSkipped: stats.Prefilter.ClustersSkipped,
			DocsSkipped:     stats.Prefilter.DocsSkipped,
			FalsePasses:     stats.Prefilter.FalsePasses,
		}
	}
	if stats.LSH.Enabled {
		resp.LSH = &lshStats{
			BucketProbes: stats.LSH.BucketProbes,
			Candidates:   stats.LSH.Candidates,
			PagesSkipped: stats.LSH.PagesSkipped,
			DocsSkipped:  stats.LSH.DocsSkipped,
		}
	}
	for i, res := range results {
		if i >= show {
			break
		}
		jr := joinResult{Outer: res.Outer, Matches: []joinMatch{}}
		for _, m := range res.Matches {
			jr.Matches = append(jr.Matches, joinMatch{Doc: m.Doc, Sim: m.Sim})
		}
		resp.Results = append(resp.Results, jr)
	}
	writeJSON(w, http.StatusOK, resp)
}

// traceIDString is the request's trace ID, or "" when tracing is off.
func traceIDString(span *textjoin.RequestSpan) string {
	if span == nil {
		return ""
	}
	return span.TraceID().String()
}

// joinError finishes a failed /join: it stamps the outcome on the root
// span, counts the failure for the availability SLO (503 rejections are
// already counted by the admitter as http.rejected), and answers with
// the error and the trace ID so the caller can pull the full tree from
// /debug/requests.
func (s *server) joinError(w http.ResponseWriter, span *textjoin.RequestSpan, status int, err error) {
	span.SetInt("http.status", int64(status))
	span.SetAttr("error", err.Error())
	if status != http.StatusServiceUnavailable {
		s.tel.Counter("http.join.err").Add(1)
	}
	body := map[string]string{"error": err.Error()}
	if id := traceIDString(span); id != "" {
		body["trace_id"] = id
	}
	writeJSON(w, status, body)
}

// recordViewIO hangs one "io" span off the request with the view's
// per-file page-read breakdown — which files this request touched, and
// how sequentially.
func recordViewIO(span *textjoin.RequestSpan, v *textjoin.IOView) {
	if span == nil {
		return
	}
	io := span.StartChild("io", "view")
	var seq, rand, writes int64
	for _, fs := range v.FileStats() {
		if fs.Stats.Reads() == 0 && fs.Stats.Writes == 0 {
			continue
		}
		io.SetAttr("io.file."+fs.Name, fmt.Sprintf("seq=%d rand=%d writes=%d",
			fs.Stats.SeqReads, fs.Stats.RandReads, fs.Stats.Writes))
		seq += fs.Stats.SeqReads
		rand += fs.Stats.RandReads
		writes += fs.Stats.Writes
	}
	io.SetInt("io.seq_reads", seq)
	io.SetInt("io.rand_reads", rand)
	io.SetInt("io.writes", writes)
	io.End()
}

// resultHash is a stable FNV-1a digest of a result set — two joins that
// produced byte-identical rankings share it, so traces of equivalent
// requests (serial vs parallel, prefiltered vs not) can be compared at
// a glance.
func resultHash(results []textjoin.Result) string {
	h := fnv.New64a()
	var buf [8]byte
	put32 := func(v uint32) {
		buf[0], buf[1], buf[2], buf[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		//lint:ignore errdrop hash.Hash Write is documented to never return an error
		h.Write(buf[:4])
	}
	for _, res := range results {
		put32(res.Outer)
		put32(uint32(len(res.Matches)))
		for _, m := range res.Matches {
			put32(m.Doc)
			bits := math.Float64bits(m.Sim)
			for i := 0; i < 8; i++ {
				buf[i] = byte(bits >> (8 * i))
			}
			//lint:ignore errdrop hash.Hash Write is documented to never return an error
			h.Write(buf[:8])
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// retryAfter renders the admission deadline as a whole-second
// Retry-After value (at least 1): after one deadline's worth of drain,
// the queue that rejected this request has turned over.
func retryAfter(wait time.Duration) string {
	secs := int64(math.Ceil(wait.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

func param(r *http.Request, name, def string) string {
	if v := r.URL.Query().Get(name); v != "" {
		return v
	}
	return def
}

func intParam(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("parameter %s: %v", name, err)
	}
	return n, nil
}

func floatParam(r *http.Request, name string, def float64) (float64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("parameter %s: %v", name, err)
	}
	return f, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	//lint:ignore errdrop an encode error here means the client hung up; the handler has no recourse
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
