package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	"textjoin/internal/metrics"
	"textjoin/internal/reqtrace"
	"textjoin/internal/telemetry"
)

// runSmoke is the self-contained health check behind `textjoind -smoke`
// (and `make obs-smoke`): it starts the server on an ephemeral loopback
// port, drives every endpoint through real HTTP, validates the /metrics
// exposition with the strict parser and the /traces stream with the
// tracecheck schema, and shuts the listener down cleanly. Any failure
// returns an error (non-zero exit) — no curl, jq or scrape tooling
// needed in CI.
func runSmoke(cfg config, out io.Writer) error {
	// A small workspace keeps the smoke run under a second.
	if cfg.Scale < 4096 {
		cfg.Scale = 4096
	}
	srv, err := newServer(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "smoke: workspace %s\n", srv.describe())

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.handler()}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	client := &http.Client{Timeout: 30 * time.Second}
	get := func(path string) ([]byte, error) {
		resp, err := client.Get(base + path)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
		return body, nil
	}

	steps := []struct {
		name string
		run  func() error
	}{
		{"healthz", func() error {
			body, err := get("/healthz")
			if err != nil {
				return err
			}
			var h struct {
				Status string `json:"status"`
			}
			if err := json.Unmarshal(body, &h); err != nil {
				return err
			}
			if h.Status != "ok" {
				return fmt.Errorf("status %q", h.Status)
			}
			return nil
		}},
		{"join auto", func() error {
			body, err := get("/join?alg=auto&show=1")
			if err != nil {
				return err
			}
			var j joinResponse
			if err := json.Unmarshal(body, &j); err != nil {
				return err
			}
			if !j.Integrated || j.OuterDocs == 0 {
				return fmt.Errorf("unexpected join response: %s", body)
			}
			fmt.Fprintf(out, "smoke: integrated chose %s (cost %.0f)\n", j.Algorithm, j.Cost)
			return nil
		}},
		{"join parallel vvm", func() error {
			_, err := get("/join?alg=vvm&workers=4&show=0")
			return err
		}},
		{"join concurrent", func() error {
			// A concurrent burst: every request must succeed, each on
			// its own I/O view under the admission budget.
			paths := []string{
				"/join?alg=hhnl&show=0", "/join?alg=hvnl&show=0",
				"/join?alg=vvm&show=0", "/join?alg=hvnl&workers=2&show=0",
			}
			errs := make(chan error, len(paths))
			for _, p := range paths {
				go func(p string) { _, err := get(p); errs <- err }(p)
			}
			for range paths {
				if err := <-errs; err != nil {
					return err
				}
			}
			return nil
		}},
		{"join rejects bad alg", func() error {
			resp, err := client.Get(base + "/join?alg=bogus")
			if err != nil {
				return err
			}
			//lint:ignore errdrop only the status code matters to this step
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				return fmt.Errorf("alg=bogus: want 400, got %d", resp.StatusCode)
			}
			return nil
		}},
		{"join prefilter", func() error {
			body, err := get("/join?alg=hhnl&prefilter=on&show=0")
			if err != nil {
				return err
			}
			var j joinResponse
			if err := json.Unmarshal(body, &j); err != nil {
				return err
			}
			if j.Prefilter == nil {
				return fmt.Errorf("prefilter=on reply carries no prefilter stats: %s", body)
			}
			body, err = get("/metrics")
			if err != nil {
				return err
			}
			if !strings.Contains(string(body), "textjoin_prefilter_") {
				return fmt.Errorf("exposition lacks textjoin_prefilter_ counters")
			}
			return nil
		}},
		{"join lsh", func() error {
			body, err := get("/join?mode=lsh&show=0")
			if err != nil {
				return err
			}
			var j joinResponse
			if err := json.Unmarshal(body, &j); err != nil {
				return err
			}
			if j.Algorithm != "LSH" || j.LSH == nil {
				return fmt.Errorf("mode=lsh reply is not an LSH join: %s", body)
			}
			if _, err := get("/join?alg=auto&recall=0.9&show=0"); err != nil {
				return err
			}
			body, err = get("/metrics")
			if err != nil {
				return err
			}
			if !strings.Contains(string(body), "textjoin_join_lsh_") {
				return fmt.Errorf("exposition lacks textjoin_join_lsh_ counters")
			}
			return nil
		}},
		{"metrics scrape", func() error {
			body, err := get("/metrics")
			if err != nil {
				return err
			}
			if err := metrics.Lint(body); err != nil {
				return fmt.Errorf("exposition rejected: %v", err)
			}
			if !strings.Contains(string(body), "textjoin_scrapes_total") {
				return fmt.Errorf("exposition lacks textjoin_scrapes_total")
			}
			for _, family := range []string{
				"textjoin_http_inflight", "textjoin_http_queue_depth",
				"textjoin_http_request_ns",
			} {
				if !strings.Contains(string(body), family) {
					return fmt.Errorf("exposition lacks %s", family)
				}
			}
			return nil
		}},
		{"metrics rates", func() error {
			// A second scrape after more work carries rate gauges.
			if _, err := get("/join?alg=hvnl&workers=2&show=0"); err != nil {
				return err
			}
			body, err := get("/metrics")
			if err != nil {
				return err
			}
			if err := metrics.Lint(body); err != nil {
				return fmt.Errorf("exposition rejected: %v", err)
			}
			if !strings.Contains(string(body), "_per_second") {
				return fmt.Errorf("second scrape carries no rate gauges")
			}
			return nil
		}},
		{"traces stream", func() error {
			body, err := get("/traces")
			if err != nil {
				return err
			}
			if len(body) == 0 {
				return fmt.Errorf("empty trace stream")
			}
			if err := telemetry.ValidateJSONLines(body); err != nil {
				return fmt.Errorf("trace stream rejected: %v", err)
			}
			return nil
		}},
		{"request trace", func() error {
			// A traced join: the response names its trace, the flight
			// recorder serves the full tree, and the tree validates
			// against the reqtrace schema.
			body, err := get("/join?alg=hvnl&show=0")
			if err != nil {
				return err
			}
			var j joinResponse
			if err := json.Unmarshal(body, &j); err != nil {
				return err
			}
			if j.TraceID == "" {
				return fmt.Errorf("join reply carries no trace_id: %s", body)
			}
			list, err := get("/debug/requests?format=json")
			if err != nil {
				return err
			}
			if !strings.Contains(string(list), j.TraceID) {
				return fmt.Errorf("flight recorder listing lacks trace %s", j.TraceID)
			}
			detail, err := get("/debug/requests/" + j.TraceID + "?format=json")
			if err != nil {
				return err
			}
			if err := reqtrace.Validate(detail); err != nil {
				return fmt.Errorf("trace %s rejected: %v", j.TraceID, err)
			}
			var d reqtrace.TraceData
			if err := json.Unmarshal(detail, &d); err != nil {
				return err
			}
			phases := map[string]bool{}
			for _, sp := range d.Spans {
				phases[sp.Phase] = true
			}
			for _, want := range []string{"request", "queue", "exec", "io"} {
				if !phases[want] {
					return fmt.Errorf("trace %s lacks a %s span: %s", j.TraceID, want, detail)
				}
			}
			return nil
		}},
		{"slo gauges", func() error {
			body, err := get("/metrics")
			if err != nil {
				return err
			}
			if err := metrics.Lint(body); err != nil {
				return fmt.Errorf("exposition rejected: %v", err)
			}
			for _, family := range []string{
				`textjoin_slo_target{objective="availability"}`,
				`textjoin_slo_target{objective="latency"}`,
				"textjoin_slo_compliance", "textjoin_slo_error_budget_remaining",
				"textjoin_slo_burn_rate", "textjoin_slo_window_seconds",
			} {
				if !strings.Contains(string(body), family) {
					return fmt.Errorf("exposition lacks %s", family)
				}
			}
			return nil
		}},
		{"pprof index", func() error {
			body, err := get("/debug/pprof/")
			if err != nil {
				return err
			}
			if !strings.Contains(string(body), "goroutine") {
				return fmt.Errorf("pprof index lacks profiles")
			}
			return nil
		}},
	}
	for _, step := range steps {
		if err := step.run(); err != nil {
			//lint:ignore errdrop a shutdown error must not mask the failing step's error
			hs.Close()
			return fmt.Errorf("%s: %w", step.name, err)
		}
		fmt.Fprintf(out, "smoke: %-18s ok\n", step.name)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-done; err != http.ErrServerClosed {
		return fmt.Errorf("serve: %w", err)
	}
	fmt.Fprintln(out, "smoke: shutdown clean")
	return nil
}
