package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"textjoin/internal/metrics"
	"textjoin/internal/telemetry"
)

func testServer(t *testing.T, scale int64) (*server, *httptest.Server) {
	t.Helper()
	cfg := defaultConfig()
	cfg.Scale = scale
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.handler())
	t.Cleanup(hs.Close)
	return s, hs
}

func get(t *testing.T, hs *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := hs.Client().Get(hs.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestServerEndpoints(t *testing.T) {
	s, hs := testServer(t, 4096)

	status, body := get(t, hs, "/healthz")
	if status != 200 {
		t.Fatalf("healthz status %d", status)
	}
	var health struct {
		Status string `json:"status"`
		Joins  int64  `json:"joins"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Joins != 0 {
		t.Errorf("health = %+v", health)
	}

	status, body = get(t, hs, "/join?alg=auto&lambda=3&show=2")
	if status != 200 {
		t.Fatalf("join status %d: %s", status, body)
	}
	var j joinResponse
	if err := json.Unmarshal(body, &j); err != nil {
		t.Fatal(err)
	}
	if !j.Integrated || j.Lambda != 3 || j.OuterDocs == 0 || len(j.Results) > 2 {
		t.Errorf("join response: %+v", j)
	}
	if s.joins.Load() != 1 {
		t.Errorf("joins counter = %d, want 1", s.joins.Load())
	}

	status, body = get(t, hs, "/metrics")
	if status != 200 {
		t.Fatalf("metrics status %d", status)
	}
	if err := metrics.Lint(body); err != nil {
		t.Errorf("metrics exposition rejected: %v\n%s", err, body)
	}
	for _, want := range []string{"textjoin_plan_chosen_total", "textjoin_iosim_file_seq_reads_total", "textjoin_scrapes_total"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics lack %s", want)
		}
	}

	status, body = get(t, hs, "/traces")
	if status != 200 {
		t.Fatalf("traces status %d", status)
	}
	if err := telemetry.ValidateJSONLines(body); err != nil {
		t.Errorf("trace stream rejected: %v", err)
	}

	for path, want := range map[string]int{
		"/join?alg=bogus":    http.StatusBadRequest,
		"/join?lambda=x":     http.StatusBadRequest,
		"/join?lambda=-1":    http.StatusBadRequest,
		"/join?weighting=no": http.StatusBadRequest,
		"/join?mode=bogus":   http.StatusBadRequest,
		"/join?recall=1.5":   http.StatusBadRequest,
		"/join?recall=-0.2":  http.StatusBadRequest,
		"/join?recall=x":     http.StatusBadRequest,
	} {
		if status, _ := get(t, hs, path); status != want {
			t.Errorf("GET %s: status %d, want %d", path, status, want)
		}
	}
}

// TestServerLSH drives the approximate join end to end: mode=lsh (and
// its alg=lsh spelling) must reply with LSH stats, the parallel variant
// must return the same top-λ pairs as the serial one, and recall=r must
// reach the integrated planner without breaking the auto path.
func TestServerLSH(t *testing.T) {
	_, hs := testServer(t, 4096)

	status, body := get(t, hs, "/join?mode=lsh&lambda=3&show=2")
	if status != 200 {
		t.Fatalf("mode=lsh status %d: %s", status, body)
	}
	var serial joinResponse
	if err := json.Unmarshal(body, &serial); err != nil {
		t.Fatal(err)
	}
	if serial.Algorithm != "LSH" || serial.Integrated {
		t.Errorf("mode=lsh ran %q (integrated=%v), want LSH", serial.Algorithm, serial.Integrated)
	}
	if serial.LSH == nil || serial.LSH.BucketProbes == 0 {
		t.Errorf("mode=lsh reply lacks LSH stats: %+v", serial.LSH)
	}

	status, body = get(t, hs, "/join?alg=lsh&lambda=3&show=2&workers=2")
	if status != 200 {
		t.Fatalf("alg=lsh workers=2 status %d: %s", status, body)
	}
	var parallel joinResponse
	if err := json.Unmarshal(body, &parallel); err != nil {
		t.Fatal(err)
	}
	if parallel.Algorithm != "LSH" {
		t.Errorf("alg=lsh ran %q, want LSH", parallel.Algorithm)
	}
	if len(parallel.Results) != len(serial.Results) {
		t.Fatalf("parallel returned %d result rows, serial %d", len(parallel.Results), len(serial.Results))
	}
	for i := range serial.Results {
		a, b := serial.Results[i], parallel.Results[i]
		if a.Outer != b.Outer || len(a.Matches) != len(b.Matches) {
			t.Fatalf("row %d: serial %+v, parallel %+v", i, a, b)
		}
		for j := range a.Matches {
			if a.Matches[j] != b.Matches[j] {
				t.Errorf("row %d match %d: serial %+v, parallel %+v", i, j, a.Matches[j], b.Matches[j])
			}
		}
	}

	status, body = get(t, hs, "/join?alg=auto&recall=0.9&show=0")
	if status != 200 {
		t.Fatalf("auto recall=0.9 status %d: %s", status, body)
	}
	var auto joinResponse
	if err := json.Unmarshal(body, &auto); err != nil {
		t.Fatal(err)
	}
	if !auto.Integrated || auto.Algorithm == "" {
		t.Errorf("auto recall response: %+v", auto)
	}
}

// TestConcurrentScrapes is the acceptance check for the live scrape
// path: /metrics and /traces are hammered while parallel HVNL and VVM
// joins are in flight. Every exposition must parse and every trace
// stream must validate; run under -race this also proves the scrape
// path shares no unsynchronized state with the join hot path.
func TestConcurrentScrapes(t *testing.T) {
	_, hs := testServer(t, 2048)

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	joins := []string{
		"/join?alg=hvnl&workers=4&show=0",
		"/join?alg=vvm&workers=4&show=0",
		"/join?alg=hvnl&workers=2&show=0",
		"/join?alg=auto&show=0",
	}
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for _, path := range joins {
			resp, err := hs.Client().Get(hs.URL + path)
			if err != nil {
				errs <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				errs <- &joinStatusError{path, resp.StatusCode}
				return
			}
		}
	}()

	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := hs.Client().Get(hs.URL + "/metrics")
				if err != nil {
					errs <- err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if err := metrics.Lint(body); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			resp, err := hs.Client().Get(hs.URL + "/traces")
			if err != nil {
				errs <- err
				return
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				errs <- err
				return
			}
			if err := telemetry.ValidateJSONLines(body); err != nil {
				errs <- err
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

type joinStatusError struct {
	path   string
	status int
}

func (e *joinStatusError) Error() string {
	return "GET " + e.path + ": unexpected status " + http.StatusText(e.status)
}

func TestSmoke(t *testing.T) {
	var sb strings.Builder
	if err := runSmoke(defaultConfig(), &sb); err != nil {
		t.Fatalf("smoke failed: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "shutdown clean") {
		t.Errorf("smoke output lacks clean shutdown:\n%s", sb.String())
	}
}
