package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"textjoin/internal/metrics"
	"textjoin/internal/reqtrace"
)

// tracedServer is testServer with enough recorder capacity to retain
// every trace a test produces, and an admission envelope tight enough
// that a burst queues and overflows — the load shape the flight
// recorder must survive.
func tracedServer(t *testing.T, pressure bool) (*server, *httptest.Server) {
	t.Helper()
	cfg := defaultConfig()
	cfg.Scale = 2048
	cfg.RecorderCap = 256
	if pressure {
		cfg.BudgetBytes = 1 << 20
		cfg.QueueLen = 4
		cfg.QueueWait = 200 * time.Millisecond
	}
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.handler())
	t.Cleanup(hs.Close)
	return s, hs
}

// fetchTrace pulls one trace from the flight recorder and validates it
// against the reqtrace schema.
func fetchTrace(t *testing.T, hs *httptest.Server, traceID string) reqtrace.TraceData {
	t.Helper()
	status, body := get(t, hs, "/debug/requests/"+traceID+"?format=json")
	if status != http.StatusOK {
		t.Fatalf("trace %s: status %d: %s", traceID, status, body)
	}
	if err := reqtrace.Validate(body); err != nil {
		t.Fatalf("trace %s rejected: %v\n%s", traceID, err, body)
	}
	var d reqtrace.TraceData
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	return d
}

// TestEveryJoinOutcomeYieldsTrace: accepted, malformed and rejected
// requests each leave exactly one well-formed trace behind, announced
// in the Traceparent response header and (where there is a JSON body
// field for it) in the body.
func TestEveryJoinOutcomeYieldsTrace(t *testing.T) {
	_, hs := tracedServer(t, false)

	cases := []struct {
		path       string
		wantStatus int
		wantPhases []string
	}{
		{"/join?alg=hvnl&show=0", http.StatusOK, []string{"request", "queue", "exec", "io"}},
		{"/join?mode=lsh&show=0", http.StatusOK, []string{"request", "queue", "exec", "io"}},
		{"/join?alg=hvnl&workers=3&show=0", http.StatusOK, []string{"request", "queue", "exec", "io"}},
		{"/join?alg=hhnl&prefilter=on&show=0", http.StatusOK, []string{"request", "queue", "exec", "io"}},
		{"/join?alg=auto&show=0", http.StatusOK, []string{"request", "queue", "exec", "io", "plan"}},
		{"/join?alg=bogus", http.StatusBadRequest, []string{"request"}},
		{"/join?lambda=-1", http.StatusBadRequest, []string{"request"}},
	}
	for _, tc := range cases {
		resp, err := hs.Client().Get(hs.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.wantStatus {
			t.Fatalf("%s: status %d, want %d", tc.path, resp.StatusCode, tc.wantStatus)
		}
		tp := resp.Header.Get(reqtrace.TraceparentHeader)
		traceID, _, err := reqtrace.ParseTraceparent(tp)
		if err != nil {
			t.Fatalf("%s: bad Traceparent %q: %v", tc.path, tp, err)
		}
		d := fetchTrace(t, hs, traceID.String())
		phases := map[string]bool{}
		for _, sp := range d.Spans {
			phases[sp.Phase] = true
		}
		for _, want := range tc.wantPhases {
			if !phases[want] {
				t.Errorf("%s: trace lacks a %s span: %+v", tc.path, want, d.Spans)
			}
		}
	}
}

// TestTraceparentPropagation: an incoming Traceparent header links the
// server's trace into the caller's — the response echoes the caller's
// trace ID and the stored trace records the remote parent span.
func TestTraceparentPropagation(t *testing.T) {
	_, hs := tracedServer(t, false)

	const remote = "4bf92f3577b34da6a3ce929d0e0e4736"
	const parent = "00f067aa0ba902b7"
	req, err := http.NewRequest("GET", hs.URL+"/join?alg=hvnl&show=0", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(reqtrace.TraceparentHeader, "00-"+remote+"-"+parent+"-01")
	resp, err := hs.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	traceID, _, err := reqtrace.ParseTraceparent(resp.Header.Get(reqtrace.TraceparentHeader))
	if err != nil {
		t.Fatal(err)
	}
	if traceID.String() != remote {
		t.Fatalf("server did not adopt the caller's trace ID: got %s, want %s", traceID, remote)
	}
	var j joinResponse
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	if j.TraceID != remote {
		t.Fatalf("join reply trace_id = %q, want %q", j.TraceID, remote)
	}
	d := fetchTrace(t, hs, remote)
	if d.RemoteParent != parent {
		t.Fatalf("stored trace remote_parent = %q, want %q", d.RemoteParent, parent)
	}
}

// TestFlightRecorderUnderLoad is the -race acceptance test: a mixed
// join burst (serial, parallel, LSH, prefiltered) under a tight
// admission budget, with scrapers hammering /debug/requests and
// /metrics the whole time. Every response's trace must come back as a
// well-formed tree, every scrape must serve valid JSON and a
// Lint-clean exposition, and the server must not leak goroutines.
func TestFlightRecorderUnderLoad(t *testing.T) {
	before := runtime.NumGoroutine()
	_, hs := tracedServer(t, true)

	paths := append(joinPaths(),
		"/join?mode=lsh&show=0",
		"/join?mode=lsh&workers=2&show=0",
		"/join?alg=auto&recall=0.9&show=0",
	)

	stop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrape := func(f func()) {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
					f()
				}
			}
		}()
	}
	var mu sync.Mutex
	var scrapeErrs []string
	fail := func(format string, args ...any) {
		mu.Lock()
		if len(scrapeErrs) < 10 {
			scrapeErrs = append(scrapeErrs, fmt.Sprintf(format, args...))
		}
		mu.Unlock()
	}
	scrape(func() {
		status, body := get(t, hs, "/debug/requests?format=json")
		if status != http.StatusOK {
			fail("debug/requests: status %d", status)
			return
		}
		var list struct {
			Slowest []struct {
				TraceID string `json:"trace_id"`
			} `json:"slowest"`
		}
		if err := json.Unmarshal(body, &list); err != nil {
			fail("debug/requests: %v", err)
			return
		}
		// Re-fetch whatever the listing names: a trace visible in the
		// listing must be individually retrievable and schema-valid
		// even while new requests churn the ring.
		for _, row := range list.Slowest {
			status, body := get(t, hs, "/debug/requests/"+row.TraceID+"?format=json")
			if status != http.StatusOK {
				continue // evicted between listing and fetch
			}
			if err := reqtrace.Validate(body); err != nil {
				fail("trace %s torn: %v", row.TraceID, err)
			}
		}
	})
	scrape(func() {
		status, body := get(t, hs, "/metrics")
		if status != http.StatusOK {
			fail("metrics: status %d", status)
			return
		}
		if err := metrics.Lint(body); err != nil {
			fail("metrics: %v", err)
		}
	})

	// The join burst. 503 rejections are expected under this budget —
	// they must still carry a Traceparent pointing at a stored trace.
	var joinWG sync.WaitGroup
	var ids sync.Map
	for round := 0; round < 3; round++ {
		for _, p := range paths {
			joinWG.Add(1)
			go func(p string) {
				defer joinWG.Done()
				resp, err := hs.Client().Get(hs.URL + p)
				if err != nil {
					fail("%s: %v", p, err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
					fail("%s: status %d", p, resp.StatusCode)
					return
				}
				traceID, _, err := reqtrace.ParseTraceparent(resp.Header.Get(reqtrace.TraceparentHeader))
				if err != nil {
					fail("%s: bad Traceparent: %v", p, err)
					return
				}
				ids.Store(traceID.String(), resp.StatusCode)
			}(p)
		}
		joinWG.Wait()
	}
	close(stop)
	scrapeWG.Wait()
	if len(scrapeErrs) > 0 {
		t.Fatalf("under load:\n%s", strings.Join(scrapeErrs, "\n"))
	}

	// Every response's trace is retrievable as a complete tree: roots
	// ended, queue span present, rejected requests marked.
	n := 0
	ids.Range(func(k, v any) bool {
		n++
		d := fetchTrace(t, hs, k.(string))
		phases := map[string]bool{}
		for _, sp := range d.Spans {
			phases[sp.Phase] = true
		}
		if !phases["request"] || !phases["queue"] {
			t.Errorf("trace %s incomplete: %+v", k, d.Spans)
		}
		if v.(int) == http.StatusOK && !phases["exec"] {
			t.Errorf("accepted trace %s lacks an exec span", k)
		}
		return true
	})
	if n == 0 {
		t.Fatal("no traces collected")
	}
	t.Logf("collected %d traces under admission pressure", n)

	// Goroutine-leak check: after the burst drains and idle connections
	// close, the count settles back to (about) where it started.
	hs.Client().CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+8 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(50 * time.Millisecond)
	}
}
