package main

import (
	"errors"
	"sync"
	"testing"
	"time"

	"textjoin"
)

func testAdmitter(budget int64, queue int, wait time.Duration) *admitter {
	return newAdmitter(budget, queue, wait, textjoin.NewTelemetry())
}

func TestAdmitterAdmitsWithinBudget(t *testing.T) {
	a := testAdmitter(100, 4, time.Second)
	for i := 0; i < 4; i++ {
		queued, err := a.admit(25)
		if err != nil || queued != 0 {
			t.Fatalf("admit %d: queued=%v err=%v", i, queued, err)
		}
	}
	if a.inUse != 100 {
		t.Fatalf("inUse = %d, want 100", a.inUse)
	}
	for i := 0; i < 4; i++ {
		a.release(25)
	}
	if a.inUse != 0 {
		t.Fatalf("inUse after release = %d, want 0", a.inUse)
	}
}

// TestAdmitterClampsOversized: a footprint beyond the whole budget is
// clamped, never rejected outright — the request simply runs alone.
func TestAdmitterClampsOversized(t *testing.T) {
	a := testAdmitter(100, 4, time.Second)
	if _, err := a.admit(1 << 40); err != nil {
		t.Fatalf("oversized request rejected: %v", err)
	}
	if a.inUse != 100 {
		t.Fatalf("inUse = %d, want clamped 100", a.inUse)
	}
	a.release(1 << 40)
	if a.inUse != 0 {
		t.Fatalf("inUse after release = %d, want 0", a.inUse)
	}
}

// TestAdmitterQueueFull: with the budget held and the queue at
// capacity, the next request is rejected immediately.
func TestAdmitterQueueFull(t *testing.T) {
	a := testAdmitter(100, 0, time.Second)
	if _, err := a.admit(100); err != nil {
		t.Fatal(err)
	}
	if _, err := a.admit(1); !errors.Is(err, errQueueFull) {
		t.Fatalf("err = %v, want errQueueFull", err)
	}
}

// TestAdmitterDeadline: a queued request that never fits is rejected
// once the wait deadline passes.
func TestAdmitterDeadline(t *testing.T) {
	a := testAdmitter(100, 4, 20*time.Millisecond)
	if _, err := a.admit(100); err != nil {
		t.Fatal(err)
	}
	begin := time.Now()
	queued, err := a.admit(1)
	if !errors.Is(err, errQueueWait) {
		t.Fatalf("err = %v, want errQueueWait", err)
	}
	if queued < 20*time.Millisecond {
		t.Fatalf("reported queue time %v shorter than the deadline", queued)
	}
	if time.Since(begin) > 5*time.Second {
		t.Fatal("deadline did not bound the wait")
	}
	if len(a.queue) != 0 {
		t.Fatalf("expired waiter still queued (%d)", len(a.queue))
	}
}

// TestAdmitterFIFO: waiters are admitted strictly in arrival order as
// budget frees up.
func TestAdmitterFIFO(t *testing.T) {
	a := testAdmitter(100, 16, 5*time.Second)
	if _, err := a.admit(100); err != nil {
		t.Fatal(err)
	}

	const n = 5
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	start := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Stagger arrivals so queue order is deterministic.
			<-start
			if _, err := a.admit(100); err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			a.release(100)
		}()
		start <- struct{}{}
		for {
			a.mu.Lock()
			parked := len(a.queue) == i+1
			a.mu.Unlock()
			if parked {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	a.release(100)
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("admission order %v, want FIFO", order)
		}
	}
}

// TestAdmitterConcurrentChurn hammers the semaphore from many
// goroutines; under -race this is the data-race check, and the budget
// invariant must hold at every admission.
func TestAdmitterConcurrentChurn(t *testing.T) {
	a := testAdmitter(100, 64, 5*time.Second)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if _, err := a.admit(30); err != nil {
					t.Errorf("admit: %v", err)
					return
				}
				a.mu.Lock()
				over := a.inUse > a.budget
				a.mu.Unlock()
				if over {
					t.Error("budget exceeded")
				}
				a.release(30)
			}
		}()
	}
	wg.Wait()
	if a.inUse != 0 {
		t.Fatalf("inUse after churn = %d, want 0", a.inUse)
	}
}
