package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"textjoin/internal/analysis"
)

func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}

// TestLiveRepoClean is the shipped-tree acceptance bar through the
// actual driver: the checked-in module must lint clean, exit 0.
func TestLiveRepoClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(repoRoot(t), "", "", false, false, false, false, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s\nstdout: %s", code, stderr.String(), stdout.String())
	}
	if !strings.Contains(stdout.String(), "lintcheck: ok") {
		t.Errorf("missing ok line: %s", stdout.String())
	}
}

// writeInjected builds a temp module containing a deliberate wallclock
// violation in a package missing from the import-layer table.
func writeInjected(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"go.mod": "module injected\n\ngo 1.22\n",
		"internal/badpkg/bad.go": `// Package badpkg exists to prove the lint gate fails closed.
package badpkg

import "time"

// Stamp reads the wall clock from library code.
func Stamp() int64 { return time.Now().UnixNano() }
`,
	}
	for rel, src := range files {
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// TestInjectedViolationFails is the negative test behind the `make
// verify` acceptance criterion: a module with a violation makes the
// driver exit 1 and name the finding.
func TestInjectedViolationFails(t *testing.T) {
	root := writeInjected(t)
	var stdout, stderr bytes.Buffer
	code := run(root, "wallclock", "", false, false, false, false, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "must not read the wall clock") {
		t.Errorf("finding not printed: %s", stdout.String())
	}

	// An unfiltered run additionally flags the package as missing from
	// the import-layer policy table.
	stdout.Reset()
	stderr.Reset()
	code = run(root, "", "", false, false, false, false, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("full run exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "not in the import-layer policy table") {
		t.Errorf("policy-table finding missing: %s", stdout.String())
	}
}

// TestJSONSchema validates -json output against the strict report
// schema, on both a clean run and a failing run.
func TestJSONSchema(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(repoRoot(t), "", "", false, true, false, false, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr.String())
	}
	if err := analysis.ValidateReport(stdout.Bytes()); err != nil {
		t.Errorf("clean-run JSON invalid: %v", err)
	}

	stdout.Reset()
	code = run(writeInjected(t), "wallclock", "", false, true, false, false, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("injected exit = %d, want 1", code)
	}
	if err := analysis.ValidateReport(stdout.Bytes()); err != nil {
		t.Errorf("failing-run JSON invalid: %v", err)
	}
}

// TestReportMode prints the per-rule summary and still exits by
// finding count.
func TestReportMode(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(writeInjected(t), "wallclock", "", false, false, true, false, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	out := stdout.String()
	for _, want := range []string{"module injected", "wallclock", "suppressed by lint:ignore"} {
		if !strings.Contains(out, want) {
			t.Errorf("report mode missing %q:\n%s", want, out)
		}
	}
}

// writeModule materializes a temp module from a file map.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, src := range files {
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// TestInjectedPathSensitiveViolationsFail is the negative test for the
// CFG-based analyzers: for each rule, a temp module with one deliberate
// violation must make the driver exit 1 and print the finding.
func TestInjectedPathSensitiveViolationsFail(t *testing.T) {
	cases := []struct {
		rule string
		rel  string
		src  string
		want string
	}{
		{
			rule: "resourceleak",
			rel:  "internal/badpkg/bad.go",
			src: `// Package badpkg leaks a listener on purpose.
package badpkg

import "net"

// Leak abandons the listener on the success path.
func Leak() error {
	ln, err := net.Listen("tcp", ":0")
	if err != nil {
		return err
	}
	ln.Addr()
	return nil
}
`,
			want: "never releases",
		},
		{
			rule: "errdrop",
			rel:  "cmd/bad/main.go",
			src: `// Command bad drops an error on purpose.
package main

import "errors"

func work() error { return errors.New("boom") }

func main() {
	_ = work()
}
`,
			want: "assigns an error to _",
		},
		{
			rule: "lockorder",
			rel:  "internal/badpkg/bad.go",
			src: `// Package badpkg orders its locks inconsistently on purpose.
package badpkg

import "sync"

// S carries two mutexes acquired in both orders below.
type S struct {
	a, b sync.Mutex
}

// AB nests a before b.
func (s *S) AB() {
	s.a.Lock()
	s.b.Lock()
	s.b.Unlock()
	s.a.Unlock()
}

// BA nests b before a.
func (s *S) BA() {
	s.b.Lock()
	s.a.Lock()
	s.a.Unlock()
	s.b.Unlock()
}
`,
			want: "lock order cycle",
		},
	}
	for _, tc := range cases {
		t.Run(tc.rule, func(t *testing.T) {
			root := writeModule(t, map[string]string{
				"go.mod": "module injected\n\ngo 1.22\n",
				tc.rel:   tc.src,
			})
			var stdout, stderr bytes.Buffer
			code := run(root, tc.rule, "", false, false, false, false, &stdout, &stderr)
			if code != 1 {
				t.Fatalf("exit = %d, want 1; stderr: %s\nstdout: %s", code, stderr.String(), stdout.String())
			}
			if !strings.Contains(stdout.String(), tc.want) {
				t.Errorf("finding %q not printed:\n%s", tc.want, stdout.String())
			}
		})
	}
}

// TestFastMode runs only the syntactic analyzers: the live repo stays
// clean, and combining -fast with -rule is a usage error.
func TestFastMode(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(repoRoot(t), "", "", true, false, false, false, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s\nstdout: %s", code, stderr.String(), stdout.String())
	}
	if !strings.Contains(stdout.String(), "lintcheck: ok") {
		t.Errorf("missing ok line: %s", stdout.String())
	}

	stderr.Reset()
	if code := run(repoRoot(t), "wallclock", "", true, false, false, false, &stdout, &stderr); code != 2 {
		t.Errorf("-fast with -rule exit = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "mutually exclusive") {
		t.Errorf("stderr = %s", stderr.String())
	}
}

// TestReportStats pins the per-rule stats columns of -report on a full
// run over the live repo: every rule shows its files-visited count.
func TestReportStats(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(repoRoot(t), "", "", false, false, true, false, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s\nstdout: %s", code, stderr.String(), stdout.String())
	}
	out := stdout.String()
	for _, rule := range []string{"resourceleak", "errdrop", "lockorder", "importlayer"} {
		if !strings.Contains(out, rule) {
			t.Errorf("report missing rule %s:\n%s", rule, out)
		}
	}
	if !strings.Contains(out, "file(s)") {
		t.Errorf("report missing files column:\n%s", out)
	}
}

// TestUsageErrors exit with status 2, distinct from findings.
func TestUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(repoRoot(t), "nosuchrule", "", false, false, false, false, &stdout, &stderr); code != 2 {
		t.Errorf("unknown rule exit = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown rule") {
		t.Errorf("stderr = %s", stderr.String())
	}
	stderr.Reset()
	if code := run(t.TempDir(), "", "", false, false, false, false, &stdout, &stderr); code != 2 {
		t.Errorf("rootless dir exit = %d, want 2", code)
	}
}
