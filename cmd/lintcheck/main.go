// Command lintcheck runs the repo's static-analysis suite
// (internal/analysis) over the whole module and exits non-zero on any
// finding. It is the `make lint` gate: the six analyzers encode the
// project's architectural promises — the DESIGN.md package DAG
// (importlayer), deterministic result production (mapdeterminism),
// byte-stable baselines (wallclock), the nil-safe telemetry contract
// (nilrecv), scrape-lock-free locking (mutexhygiene) and leak-free
// request tracing (spanhygiene) — plus the lintdirective hygiene rule
// that keeps every //lint:ignore explained and load-bearing.
//
// Usage:
//
//	lintcheck [-root dir] [-rule r1,r2] [-pkg p1,p2] [-json] [-report] [-q]
//
// With no flags it finds the module root by walking up from the
// working directory to go.mod and prints go-vet-style findings, one
// per line. -rule and -pkg narrow the run (stale-ignore detection is
// skipped on narrowed runs). -json emits the machine-readable report
// validated by analysis.ValidateReport. -report prints a human
// summary: every rule with its doc line and finding count, plus the
// suppression tally.
//
// Exit status: 0 clean, 1 findings, 2 usage or load/type-check error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"textjoin/internal/analysis"
)

func main() {
	var (
		root    = flag.String("root", "", "module root (default: nearest go.mod above the working directory)")
		rules   = flag.String("rule", "", "comma-separated rule names to run (default: all)")
		pkgs    = flag.String("pkg", "", "comma-separated module-relative package paths (prefixes) to check")
		asJSON  = flag.Bool("json", false, "emit the machine-readable report")
		summary = flag.Bool("report", false, "print a per-rule summary instead of one line per finding")
		quiet   = flag.Bool("q", false, "suppress the trailing ok/finding-count line")
	)
	flag.Parse()
	os.Exit(run(*root, *rules, *pkgs, *asJSON, *summary, *quiet, os.Stdout, os.Stderr))
}

func run(root, rules, pkgs string, asJSON, summary, quiet bool, stdout, stderr io.Writer) int {
	if root == "" {
		r, err := findRoot()
		if err != nil {
			fmt.Fprintf(stderr, "lintcheck: %v\n", err)
			return 2
		}
		root = r
	}
	opts := analysis.RunOptions{Rules: splitList(rules), Packages: splitList(pkgs)}
	report, err := analysis.Run(root, analysis.DefaultPolicy(), opts)
	if err != nil {
		fmt.Fprintf(stderr, "lintcheck: %v\n", err)
		return 2
	}

	switch {
	case asJSON:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(stderr, "lintcheck: %v\n", err)
			return 2
		}
	case summary:
		printSummary(stdout, report)
	default:
		for _, d := range report.Diagnostics {
			fmt.Fprintln(stdout, d.String())
		}
	}

	if len(report.Diagnostics) > 0 {
		if !quiet && !asJSON {
			fmt.Fprintf(stderr, "lintcheck: %d finding(s) in %d package(s)\n",
				len(report.Diagnostics), len(report.Packages))
		}
		return 1
	}
	if !quiet && !asJSON {
		fmt.Fprintf(stdout, "lintcheck: ok (%d packages, %d rules, %d suppressed)\n",
			len(report.Packages), len(report.Rules), report.Suppressed)
	}
	return 0
}

// printSummary renders the -report mode: each rule with its doc and
// finding count, then the suppression tally — the review-friendly view
// for deciding which findings to fix and which to justify.
func printSummary(w io.Writer, report *analysis.Report) {
	counts := make(map[string]int)
	for _, d := range report.Diagnostics {
		counts[d.Rule]++
	}
	fmt.Fprintf(w, "module %s: %d packages analyzed\n", report.Module, len(report.Packages))
	for _, a := range analysis.Analyzers(analysis.DefaultPolicy()) {
		fmt.Fprintf(w, "  %-16s %3d finding(s)  %s\n", a.Name(), counts[a.Name()], a.Doc())
	}
	fmt.Fprintf(w, "  %-16s %3d finding(s)  malformed, unknown-rule or stale lint:ignore directives\n",
		analysis.RuleLintDirective, counts[analysis.RuleLintDirective])
	fmt.Fprintf(w, "  suppressed by lint:ignore: %d\n", report.Suppressed)
	for _, d := range report.Diagnostics {
		fmt.Fprintln(w, "  "+d.String())
	}
}

// findRoot walks up from the working directory to the nearest go.mod.
func findRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
