// Command lintcheck runs the repo's static-analysis suite
// (internal/analysis) over the whole module and exits non-zero on any
// finding. It is the `make lint` gate: the nine analyzers encode the
// project's architectural promises — the DESIGN.md package DAG
// (importlayer), deterministic result production (mapdeterminism),
// byte-stable baselines (wallclock), the nil-safe telemetry contract
// (nilrecv), scrape-lock-free locking (mutexhygiene), leak-free
// request tracing (spanhygiene), released resources (resourceleak),
// consulted errors (errdrop) and a cycle-free lock-acquisition order
// (lockorder) — plus the lintdirective hygiene rule that keeps every
// //lint:ignore explained and load-bearing.
//
// Usage:
//
//	lintcheck [-root dir] [-rule r1,r2] [-pkg p1,p2] [-fast] [-json] [-report] [-q]
//
// With no flags it finds the module root by walking up from the
// working directory to go.mod and prints go-vet-style findings, one
// per line. -rule and -pkg narrow the run (stale-ignore detection is
// skipped on narrowed runs). -fast runs only the syntactic analyzers,
// skipping type checking entirely — the `make lint-fast` edit-loop
// gate. -json emits the machine-readable report validated by
// analysis.ValidateReport. -report prints a human summary: every rule
// that ran with its finding count, files visited, pre-suppression
// diagnostics and wall time, plus the suppression tally.
//
// Exit status: 0 clean, 1 findings, 2 usage or load/type-check error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"textjoin/internal/analysis"
)

func main() {
	var (
		root    = flag.String("root", "", "module root (default: nearest go.mod above the working directory)")
		rules   = flag.String("rule", "", "comma-separated rule names to run (default: all)")
		pkgs    = flag.String("pkg", "", "comma-separated module-relative package paths (prefixes) to check")
		fast    = flag.Bool("fast", false, "run only the syntactic analyzers, skipping type checking")
		asJSON  = flag.Bool("json", false, "emit the machine-readable report")
		summary = flag.Bool("report", false, "print a per-rule summary instead of one line per finding")
		quiet   = flag.Bool("q", false, "suppress the trailing ok/finding-count line")
	)
	flag.Parse()
	os.Exit(run(*root, *rules, *pkgs, *fast, *asJSON, *summary, *quiet, os.Stdout, os.Stderr))
}

func run(root, rules, pkgs string, fast, asJSON, summary, quiet bool, stdout, stderr io.Writer) int {
	if root == "" {
		r, err := findRoot()
		if err != nil {
			fmt.Fprintf(stderr, "lintcheck: %v\n", err)
			return 2
		}
		root = r
	}
	ruleList := splitList(rules)
	if fast {
		if len(ruleList) > 0 {
			fmt.Fprintln(stderr, "lintcheck: -fast and -rule are mutually exclusive")
			return 2
		}
		ruleList = syntacticRules()
	}
	opts := analysis.RunOptions{Rules: ruleList, Packages: splitList(pkgs), Now: time.Now}
	report, err := analysis.Run(root, analysis.DefaultPolicy(), opts)
	if err != nil {
		fmt.Fprintf(stderr, "lintcheck: %v\n", err)
		return 2
	}

	switch {
	case asJSON:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(stderr, "lintcheck: %v\n", err)
			return 2
		}
	case summary:
		printSummary(stdout, report)
	default:
		for _, d := range report.Diagnostics {
			fmt.Fprintln(stdout, d.String())
		}
	}

	if len(report.Diagnostics) > 0 {
		if !quiet && !asJSON {
			fmt.Fprintf(stderr, "lintcheck: %d finding(s) in %d package(s)\n",
				len(report.Diagnostics), len(report.Packages))
		}
		return 1
	}
	if !quiet && !asJSON {
		fmt.Fprintf(stdout, "lintcheck: ok (%d packages, %d rules, %d suppressed)\n",
			len(report.Packages), len(report.Rules), report.Suppressed)
	}
	return 0
}

// syntacticRules names the analyzers that run without type
// information; selecting only these makes the loader skip the type
// checker, which is the entire point of `lintcheck -fast`.
func syntacticRules() []string {
	var out []string
	for _, a := range analysis.Analyzers(analysis.DefaultPolicy()) {
		if !a.NeedsTypes() {
			out = append(out, a.Name())
		}
	}
	return out
}

// printSummary renders the -report mode: each rule that ran with its
// finding count, files visited, pre-suppression diagnostics and wall
// time, then the suppression tally — the review-friendly view for
// deciding which findings to fix and which to justify.
func printSummary(w io.Writer, report *analysis.Report) {
	counts := make(map[string]int)
	for _, d := range report.Diagnostics {
		counts[d.Rule]++
	}
	docs := make(map[string]string)
	for _, a := range analysis.Analyzers(analysis.DefaultPolicy()) {
		docs[a.Name()] = a.Doc()
	}
	fmt.Fprintf(w, "module %s: %d packages analyzed\n", report.Module, len(report.Packages))
	for _, st := range report.RuleStats {
		fmt.Fprintf(w, "  %-16s %3d finding(s)  %4d file(s)  %3d raw  %8s  %s\n",
			st.Rule, counts[st.Rule], st.Files, st.Diagnostics,
			time.Duration(st.WallNS).Round(10*time.Microsecond), docs[st.Rule])
	}
	fmt.Fprintf(w, "  %-16s %3d finding(s)  malformed, unknown-rule or stale lint:ignore directives\n",
		analysis.RuleLintDirective, counts[analysis.RuleLintDirective])
	fmt.Fprintf(w, "  suppressed by lint:ignore: %d\n", report.Suppressed)
	for _, d := range report.Diagnostics {
		fmt.Fprintln(w, "  "+d.String())
	}
}

// findRoot walks up from the working directory to the nearest go.mod.
func findRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
