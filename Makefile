GO ?= go

.PHONY: build test verify bench bench-smoke race trace-smoke obs-smoke bench-json bench-prefilter bench-lsh bench-load loadgen-smoke slo-smoke lint lint-fast lint-report

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# verify is the CI gate for the concurrent join paths: vet everything,
# run the in-repo static-analysis suite (cmd/lintcheck: package-DAG,
# map-iteration determinism, wall-clock hygiene, nil-receiver guards,
# mutex hygiene, plus the CFG-based resource-leak, dropped-error and
# lock-order analyzers — fails on any finding or unexplained
# lint:ignore), then race-check the packages with goroutines (the
# analysis engine's CFG/dataflow tests included, owner-sharded parallel
# VVM and HVNL, parallel HHNL), the accumulator layer they share, the
# entry cache the parallel HVNL coordinator drives, the telemetry
# collector they all report to, the request tracer and flight recorder
# that follow each request, the SLO engine computing error budgets over
# them, and the observability server that scrapes it during in-flight
# joins. The core run includes the differential harness (telemetry
# on/off invariance, concurrent snapshots). It finishes with the
# observability smokes: the self-driving textjoind endpoint check, the
# load-generator gate, the SLO/error-budget gate, and the
# baseline-checked benchmark grids.
verify: obs-smoke loadgen-smoke slo-smoke bench-json bench-prefilter bench-lsh
	$(GO) vet ./...
	$(GO) run ./cmd/lintcheck
	$(GO) test -race ./internal/core/... ./internal/accum/... ./internal/entrycache/... ./internal/telemetry/... ./internal/metrics/... ./internal/reqtrace/... ./internal/slo/... ./internal/analysis/... ./cmd/textjoind/...

# lint runs the repo's own static-analysis suite over the whole module:
# nine analyzers driven by the checked-in policy table in
# internal/analysis/policy.go (see DESIGN.md §11 and §16). Exit 1 on
# findings.
lint:
	$(GO) run ./cmd/lintcheck

# lint-fast runs only the syntactic analyzers (no type checking) — the
# edit-loop variant: a few hundred milliseconds instead of a full
# type-checked pass.
lint-fast:
	$(GO) run ./cmd/lintcheck -fast

# lint-report prints the review-friendly view: every rule with its doc
# line and finding count, the suppression tally, then each finding.
lint-report:
	$(GO) run ./cmd/lintcheck -report || true

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# bench-smoke runs every benchmark exactly once — a fast compile-and-run
# check that the bench suite itself still works. BenchmarkTelemetryOverhead
# fails this target if the disabled telemetry path ever allocates.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x .

# trace-smoke runs a real join with -telemetry json and validates the
# emitted snapshot against the exporter schema (cmd/tracecheck). The
# snapshot goes to stderr, results to stdout, so 2>&1 1>/dev/null routes
# only the snapshot into the checker.
trace-smoke:
	$(GO) run ./cmd/textjoin -p1 wsj -p2 wsj -scale 8192 -alg auto -lambda 5 -mem 200 -show 0 -telemetry json 2>&1 1>/dev/null | $(GO) run ./cmd/tracecheck

# obs-smoke boots textjoind on an ephemeral loopback port, drives every
# endpoint (/healthz, /join serial and parallel, /metrics twice so rate
# gauges appear, /traces, /debug/pprof/), validates the exposition with
# the strict parser and the trace stream with the tracecheck schema, and
# shuts down cleanly — all in-process, no curl needed.
obs-smoke:
	$(GO) run ./cmd/textjoind -smoke

# bench-json runs the benchmark observatory grid (shapes × algorithms ×
# worker counts over the deterministic simulated store), writes the
# machine-readable report and the cost-model calibration audit, and
# fails if any cell regressed against the checked-in baseline.
bench-json:
	$(GO) run ./cmd/benchreport -q -json BENCH_PR4.json -baseline BENCH_BASELINE.json -calibrate -calreport CALIBRATION_PR4.md

# loadgen-smoke is the CI check for the concurrent serving path: boot a
# real textjoind on a loopback port, fire a short open-loop run over the
# mixed request profiles, and fail unless every request completed with
# plausible latency percentiles. The server is killed whether or not the
# check passes.
LOADGEN_PORT ?= 18573
loadgen-smoke:
	$(GO) build -o /tmp/textjoind.loadgen ./cmd/textjoind
	$(GO) build -o /tmp/loadgen.loadgen ./cmd/loadgen
	@/tmp/textjoind.loadgen -addr 127.0.0.1:$(LOADGEN_PORT) -scale 4096 & \
	pid=$$!; \
	/tmp/loadgen.loadgen -addr http://127.0.0.1:$(LOADGEN_PORT) -wait 30s -rate 40 -duration 2s -check; \
	rc=$$?; kill $$pid 2>/dev/null; exit $$rc

# slo-smoke is the CI gate for the SLO layer: boot a real textjoind,
# drive a fixed-rate run, then scrape /metrics (-slo) so the run fails
# unless the textjoin_slo_* families pass the strict exposition parser
# AND both error budgets (availability, latency) end the run with
# budget remaining. -check also enforces the client-vs-server clock
# gates: no reply may claim more server time than the client measured.
SLO_PORT ?= 18574
slo-smoke:
	$(GO) build -o /tmp/textjoind.slo ./cmd/textjoind
	$(GO) build -o /tmp/loadgen.slo ./cmd/loadgen
	@/tmp/textjoind.slo -addr 127.0.0.1:$(SLO_PORT) -scale 4096 & \
	pid=$$!; \
	/tmp/loadgen.slo -addr http://127.0.0.1:$(SLO_PORT) -wait 30s -rate 40 -duration 3s -slo -check; \
	rc=$$?; kill $$pid 2>/dev/null; exit $$rc

# bench-load reproduces the checked-in BENCH_PR7.json: the identical
# open-loop arrival process against a serialized server and a concurrent
# one, both modeling 3ms of device latency per page read. The serialized
# baseline saturates and sheds load (503s, by design); the concurrent
# server absorbs the full rate at a far lower p99. Numbers are
# machine-dependent — regenerate rather than diff-check.
bench-load:
	$(GO) build -o /tmp/textjoind.loadgen ./cmd/textjoind
	$(GO) build -o /tmp/loadgen.loadgen ./cmd/loadgen
	@/tmp/textjoind.loadgen -addr 127.0.0.1:18575 -scale 4096 -io-delay 3ms -serialize & \
	pid1=$$!; \
	/tmp/textjoind.loadgen -addr 127.0.0.1:18576 -scale 4096 -io-delay 3ms & \
	pid2=$$!; \
	/tmp/loadgen.loadgen -target serialized=http://127.0.0.1:18575 -target concurrent=http://127.0.0.1:18576 \
		-wait 30s -rate 600 -duration 10s -json BENCH_PR7.json; \
	rc=$$?; kill $$pid1 $$pid2 2>/dev/null; exit $$rc

# bench-prefilter runs the signature-prefilter grid: clustered shapes,
# each cell with the filter off and on. The run itself fails if any
# on-cell's result hash differs from its off-cell (signatures may only
# skip, never admit), and the baseline gate fails if the measured I/O
# or skip counters drift from the checked-in BENCH_PR6.json. Regenerate
# the baseline with: go run ./cmd/benchreport -prefilter -json BENCH_PR6.json
bench-prefilter:
	$(GO) run ./cmd/benchreport -prefilter -q -baseline BENCH_PR6.json

# bench-lsh runs the LSH recall-vs-speed grid: clustered shapes, exact
# ground-truth cells plus every banding shape, with recall measured
# against the exact result pairs (not estimated). The run itself fails
# unless some cell reaches recall ≥ 0.9 at no more than half the best
# exact join's page reads, and the baseline gate fails if the frontier
# drifts from the checked-in BENCH_PR8.json. Regenerate the baseline
# with: go run ./cmd/benchreport -lsh -json BENCH_PR8.json
bench-lsh:
	$(GO) run ./cmd/benchreport -lsh -q -baseline BENCH_PR8.json
