GO ?= go

.PHONY: build test verify bench bench-smoke race trace-smoke

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# verify is the CI gate for the concurrent join paths: vet everything,
# then race-check the packages with goroutines (owner-sharded parallel
# VVM and HVNL, parallel HHNL), the accumulator layer they share, the
# entry cache the parallel HVNL coordinator drives, and the telemetry
# collector they all report to. The core run includes the differential
# harness (telemetry on/off invariance, concurrent snapshots).
verify:
	$(GO) vet ./...
	$(GO) test -race ./internal/core/... ./internal/accum/... ./internal/entrycache/... ./internal/telemetry/...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# bench-smoke runs every benchmark exactly once — a fast compile-and-run
# check that the bench suite itself still works. BenchmarkTelemetryOverhead
# fails this target if the disabled telemetry path ever allocates.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x .

# trace-smoke runs a real join with -telemetry json and validates the
# emitted snapshot against the exporter schema (cmd/tracecheck). The
# snapshot goes to stderr, results to stdout, so 2>&1 1>/dev/null routes
# only the snapshot into the checker.
trace-smoke:
	$(GO) run ./cmd/textjoin -p1 wsj -p2 wsj -scale 8192 -alg auto -lambda 5 -mem 200 -show 0 -telemetry json 2>&1 1>/dev/null | $(GO) run ./cmd/tracecheck
