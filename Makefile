GO ?= go

.PHONY: build test verify bench race

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# verify is the CI gate for the concurrent join paths: vet everything,
# then race-check the packages with goroutines (owner-sharded parallel
# VVM, parallel HHNL) and the accumulator layer they share.
verify:
	$(GO) vet ./...
	$(GO) test -race ./internal/core/... ./internal/accum/...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .
