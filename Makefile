GO ?= go

.PHONY: build test verify bench bench-smoke race

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# verify is the CI gate for the concurrent join paths: vet everything,
# then race-check the packages with goroutines (owner-sharded parallel
# VVM and HVNL, parallel HHNL), the accumulator layer they share, and the
# entry cache the parallel HVNL coordinator drives.
verify:
	$(GO) vet ./...
	$(GO) test -race ./internal/core/... ./internal/accum/... ./internal/entrycache/...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# bench-smoke runs every benchmark exactly once — a fast compile-and-run
# check that the bench suite itself still works.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x .
