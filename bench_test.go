// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section 6), plus ablation benches for the design choices
// called out in DESIGN.md.
//
// The analytic benches (Table1, Group1–Group5, Integrated, Findings)
// evaluate the paper's cost formulas at full TREC scale — exactly the
// computation the paper's simulation performed — and report the
// regenerated rows through -benchmem counters. The Measured benches run
// the three real algorithms on scaled synthetic corpora and report
// measured page I/O, validating the formulas' shape.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package textjoin

import (
	"fmt"
	"io"
	"math/rand"
	"testing"

	"textjoin/internal/accum"
	"textjoin/internal/cluster"
	"textjoin/internal/collection"
	"textjoin/internal/core"
	"textjoin/internal/corpus"
	"textjoin/internal/costmodel"
	"textjoin/internal/entrycache"
	"textjoin/internal/invfile"
	"textjoin/internal/iosim"
	"textjoin/internal/reqtrace"
	"textjoin/internal/simulate"
	"textjoin/internal/telemetry"
)

// BenchmarkTable1 regenerates the collection statistics table.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t := simulate.Table1(); len(t.Rows) != 6 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkGroup1 regenerates the six Group 1 simulations (self joins,
// varying B and α).
func BenchmarkGroup1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if ts := simulate.Group1(); len(ts) != 6 {
			b.Fatal("bad group")
		}
	}
}

// BenchmarkGroup2 regenerates the six Group 2 simulations (cross joins).
func BenchmarkGroup2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if ts := simulate.Group2(); len(ts) != 6 {
			b.Fatal("bad group")
		}
	}
}

// BenchmarkGroup3 regenerates the three Group 3 simulations (selection
// over an originally large C2).
func BenchmarkGroup3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if ts := simulate.Group3(); len(ts) != 3 {
			b.Fatal("bad group")
		}
	}
}

// BenchmarkGroup4 regenerates the three Group 4 simulations (originally
// small C2).
func BenchmarkGroup4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if ts := simulate.Group4(); len(ts) != 3 {
			b.Fatal("bad group")
		}
	}
}

// BenchmarkGroup5 regenerates the three Group 5 simulations (fewer but
// larger documents).
func BenchmarkGroup5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if ts := simulate.Group5(); len(ts) != 3 {
			b.Fatal("bad group")
		}
	}
}

// BenchmarkIntegrated scores the integrated algorithm's choice across the
// whole simulation grid.
func BenchmarkIntegrated(b *testing.B) {
	sys := costmodel.DefaultSystem()
	q := costmodel.DefaultQuery()
	var inputs []costmodel.Input
	for _, p1 := range corpus.Profiles() {
		for _, p2 := range corpus.Profiles() {
			inputs = append(inputs, costmodel.Input{C1: p1.Stats(), C2: p2.Stats()})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, in := range inputs {
			alg, _ := costmodel.Choose(in, sys, q)
			_ = alg
		}
	}
}

// BenchmarkFindings re-derives the paper's five summary findings.
func BenchmarkFindings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fs := simulate.Findings()
		for _, f := range fs {
			if !f.Holds {
				b.Fatalf("finding %d does not hold", f.ID)
			}
		}
	}
}

// measuredEnv caches the scaled corpora shared by the Measured benches.
type measuredEnv struct {
	d  *iosim.Disk
	in core.Inputs
}

func newMeasuredEnv(b *testing.B, scale int64) *measuredEnv {
	b.Helper()
	d := iosim.NewDisk(iosim.WithPageSize(4096), iosim.WithAlpha(5))
	c1, err := corpus.GenerateOn(d, "c1", corpus.WSJ.Scaled(scale), 1)
	if err != nil {
		b.Fatal(err)
	}
	c2, err := corpus.GenerateOn(d, "c2", corpus.WSJ.Scaled(scale), 2)
	if err != nil {
		b.Fatal(err)
	}
	mkInv := func(c *Collection, prefix string) *invfile.InvertedFile {
		ef, _ := d.Create(prefix + ".inv")
		tf, _ := d.Create(prefix + ".bt")
		inv, err := invfile.Build(c, ef, tf)
		if err != nil {
			b.Fatal(err)
		}
		return inv
	}
	inv1 := mkInv(c1, "c1")
	inv2 := mkInv(c2, "c2")
	d.ResetStats()
	return &measuredEnv{d: d, in: core.Inputs{Outer: c2, Inner: c1, InnerInv: inv1, OuterInv: inv2}}
}

func benchMeasured(b *testing.B, alg core.Algorithm, opts core.Options) {
	env := newMeasuredEnv(b, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	var lastCost float64
	for i := 0; i < b.N; i++ {
		_, st, err := core.Join(alg, env.in, opts)
		if err != nil {
			b.Fatal(err)
		}
		lastCost = st.Cost
	}
	b.ReportMetric(lastCost, "io-cost")
}

// BenchmarkMeasuredHHNL runs the real HHNL on a 1/1024-scale WSJ pair.
func BenchmarkMeasuredHHNL(b *testing.B) {
	benchMeasured(b, core.HHNL, core.Options{Lambda: 20, MemoryPages: 100})
}

// BenchmarkMeasuredHVNL runs the real HVNL on a 1/1024-scale WSJ pair.
func BenchmarkMeasuredHVNL(b *testing.B) {
	benchMeasured(b, core.HVNL, core.Options{Lambda: 20, MemoryPages: 100})
}

// BenchmarkMeasuredVVM runs the real VVM on a 1/1024-scale WSJ pair.
func BenchmarkMeasuredVVM(b *testing.B) {
	benchMeasured(b, core.VVM, core.Options{Lambda: 20, MemoryPages: 100})
}

// BenchmarkTelemetryOverhead measures what the instrumentation layer
// costs each measured join: disabled (nil collector — the default) vs
// enabled (collector attached to both the disk and the join). The
// disabled sub-benchmarks first assert that the nil-collector primitives
// allocate nothing, so even a 1x bench-smoke run fails if the disabled
// path regresses.
func BenchmarkTelemetryOverhead(b *testing.B) {
	algs := []struct {
		name string
		alg  core.Algorithm
	}{{"HHNL", core.HHNL}, {"HVNL", core.HVNL}, {"VVM", core.VVM}}
	opts := core.Options{Lambda: 20, MemoryPages: 100}
	for _, a := range algs {
		env := newMeasuredEnv(b, 1024)
		b.Run(a.name+"/disabled", func(b *testing.B) {
			var tel *telemetry.Collector
			if allocs := testing.AllocsPerRun(100, func() {
				tel.Counter("x").Add(1)
				tel.Histogram("h", telemetry.DefaultSizeBuckets).Observe(1)
				tel.StartSpan(telemetry.PhaseScan, "s").End()
				tel.Event(telemetry.PhaseIO, "e", 1)
			}); allocs != 0 {
				b.Fatalf("disabled telemetry path allocates %v/op, want 0", allocs)
			}
			// The request-tracing layer holds to the same contract: with
			// no tracer attached (nil span in Options.Trace, nil recorder
			// behind it), the hot loop must not allocate.
			var rtr *reqtrace.Tracer
			var rspan *reqtrace.Span
			var rec *reqtrace.Recorder
			if allocs := testing.AllocsPerRun(100, func() {
				rtr.StartTrace("join").End()
				rspan.StartChild("exec", "join").End()
				rspan.SetAttr("k", "v")
				rspan.SetInt("n", 1)
				rspan.SetFloat("f", 0.5)
				rec.Record(rspan)
			}); allocs != 0 {
				b.Fatalf("disabled reqtrace path allocates %v/op, want 0", allocs)
			}
			env.d.SetCollector(nil)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Join(a.alg, env.in, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(a.name+"/enabled", func(b *testing.B) {
			tel := telemetry.New()
			env.d.SetCollector(tel)
			o := opts
			o.Telemetry = tel
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Join(a.alg, env.in, o); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			env.d.SetCollector(nil)
		})
	}
}

// BenchmarkMeasuredIntegrated runs choice + execution.
func BenchmarkMeasuredIntegrated(b *testing.B) {
	env := newMeasuredEnv(b, 1024)
	opts := core.Options{Lambda: 20, MemoryPages: 100}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := core.JoinIntegrated(env.in, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScanDecode measures the scan/decode pipeline in isolation: one
// op is a full sweep of the 1/256-scale WSJ collection (or its inverted
// file). The reuse paths decode every record straight out of the page
// window into one arena and must stay allocation-free in the steady
// state; the clone paths bound what retaining callers pay.
func BenchmarkScanDecode(b *testing.B) {
	env := newMeasuredEnv(b, 256)
	c1 := env.in.Inner
	inv1 := env.in.InnerInv
	b.Run("collection-reuse", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sc := c1.Scan()
			for {
				if _, err := sc.NextReuse(); err != nil {
					if err == io.EOF {
						break
					}
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("collection-clone", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sc := c1.Scan()
			for {
				if _, err := sc.Next(); err != nil {
					if err == io.EOF {
						break
					}
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("invfile-reuse", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sc := inv1.Scan()
			for {
				if _, err := sc.NextReuse(); err != nil {
					if err == io.EOF {
						break
					}
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("invfile-clone", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sc := inv1.Scan()
			for {
				if _, err := sc.Next(); err != nil {
					if err == io.EOF {
						break
					}
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkAblationHVNLPolicy compares the paper's min-outer-df entry
// replacement against LRU under tight memory (DESIGN.md decision 2). The
// reported io-cost and entry-fetches metrics are the comparison of
// interest: a 1/256-scale corpus with an 11-page budget forces heavy
// eviction.
func BenchmarkAblationHVNLPolicy(b *testing.B) {
	for _, policy := range []entrycache.Policy{entrycache.MinOuterDF, entrycache.LRU} {
		b.Run(policy.String(), func(b *testing.B) {
			env := newMeasuredEnv(b, 256)
			opts := core.Options{Lambda: 20, MemoryPages: 11, CachePolicy: policy}
			b.ResetTimer()
			var cost float64
			var fetches int64
			for i := 0; i < b.N; i++ {
				_, st, err := core.JoinHVNL(env.in, opts)
				if err != nil {
					b.Fatal(err)
				}
				cost = st.Cost
				fetches = st.EntryFetches
			}
			b.ReportMetric(cost, "io-cost")
			b.ReportMetric(float64(fetches), "entry-fetches")
		})
	}
}

// BenchmarkAblationSharedHead contrasts the paper's dedicated-drive
// assumption with a single contended device (DESIGN.md decision 1).
// HVNL interleaves sequential outer-document reads with random
// inverted-file fetches, so sharing one head turns the whole outer scan
// random — the hvs → hvr degradation the paper's random formulas model.
func BenchmarkAblationSharedHead(b *testing.B) {
	run := func(b *testing.B, shared bool) float64 {
		b.Helper()
		diskOpts := []iosim.Option{iosim.WithPageSize(512), iosim.WithAlpha(5)}
		if shared {
			diskOpts = append(diskOpts, iosim.WithSharedHead())
		}
		d := iosim.NewDisk(diskOpts...)
		r := rand.New(rand.NewSource(3))
		mkdocs := func(n int) []*Document {
			docs := make([]*Document, n)
			for i := range docs {
				counts := make(map[uint32]int)
				for j := 0; j < 20; j++ {
					counts[uint32(r.Intn(500))]++
				}
				docs[i] = NewDocument(uint32(i), counts)
			}
			return docs
		}
		build := func(name string, docs []*Document) *Collection {
			f, err := d.Create(name)
			if err != nil {
				b.Fatal(err)
			}
			bld, err := collection.NewBuilder(name, f)
			if err != nil {
				b.Fatal(err)
			}
			for _, doc := range docs {
				if err := bld.Add(doc); err != nil {
					b.Fatal(err)
				}
			}
			c, err := bld.Finish()
			if err != nil {
				b.Fatal(err)
			}
			return c
		}
		c1 := build("c1", mkdocs(60))
		c2 := build("c2", mkdocs(60))
		ef, _ := d.Create("c1.inv")
		tf, _ := d.Create("c1.bt")
		inv1, err := invfile.Build(c1, ef, tf)
		if err != nil {
			b.Fatal(err)
		}
		d.ResetStats()
		in := core.Inputs{Outer: c2, Inner: c1, InnerInv: inv1}
		var cost float64
		for i := 0; i < b.N; i++ {
			_, st, err := core.JoinHVNL(in, core.Options{Lambda: 5, MemoryPages: 25})
			if err != nil {
				b.Fatal(err)
			}
			cost = st.Cost
		}
		return cost
	}
	b.Run("dedicated-heads", func(b *testing.B) {
		b.ReportMetric(run(b, false), "io-cost")
	})
	b.Run("shared-head", func(b *testing.B) {
		b.ReportMetric(run(b, true), "io-cost")
	})
}

// BenchmarkAblationClusteredOrder measures the paper's clustered-storage
// remark: HVNL over a planted-topic outer collection, stored scattered vs
// greedily cluster-ordered (the tractable stand-in for the NP-hard optimal
// order), under an LRU cache sized to roughly one topic.
func BenchmarkAblationClusteredOrder(b *testing.B) {
	d := iosim.NewDisk(iosim.WithPageSize(4096))
	p := corpus.ClusteredProfile{
		Profile: corpus.Profile{Name: "planted", NumDocs: 240, TermsPerDoc: 20, DistinctTerms: 3000},
		Topics:  8,
		Scatter: true,
	}
	f, _ := d.Create("scattered")
	scattered, err := corpus.GenerateClustered(p, 7, f)
	if err != nil {
		b.Fatal(err)
	}
	innerProfile := p
	innerProfile.Name = "inner"
	innerProfile.NumDocs = 1000
	fi, _ := d.Create("inner")
	inner, err := corpus.GenerateClustered(innerProfile, 8, fi)
	if err != nil {
		b.Fatal(err)
	}
	ef, _ := d.Create("inner.inv")
	tf, _ := d.Create("inner.bt")
	inv, err := invfile.Build(inner, ef, tf)
	if err != nil {
		b.Fatal(err)
	}
	cf, _ := d.Create("clustered")
	clustered, _, err := cluster.Clustered("clustered", cf, scattered)
	if err != nil {
		b.Fatal(err)
	}
	opts := core.Options{Lambda: 5, MemoryPages: 12, CachePolicy: entrycache.LRU}
	for _, tc := range []struct {
		name  string
		outer *collection.Collection
	}{{"scattered", scattered}, {"cluster-ordered", clustered}} {
		b.Run(tc.name, func(b *testing.B) {
			var fetches int64
			var cost float64
			for i := 0; i < b.N; i++ {
				_, st, err := core.JoinHVNL(core.Inputs{Outer: tc.outer, Inner: inner, InnerInv: inv}, opts)
				if err != nil {
					b.Fatal(err)
				}
				fetches = st.EntryFetches
				cost = st.Cost
			}
			b.ReportMetric(float64(fetches), "entry-fetches")
			b.ReportMetric(cost, "io-cost")
		})
	}
}

// BenchmarkParallelJoins compares serial and parallel HHNL/HVNL/VVM
// wall-clock on a memory-resident corpus (the paper's further-studies
// item 3).
func BenchmarkParallelJoins(b *testing.B) {
	env := newMeasuredEnv(b, 256)
	opts := core.Options{Lambda: 10, MemoryPages: 500}
	b.Run("HHNL-serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := core.JoinHHNL(env.in, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("HHNL-parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := core.JoinHHNLParallel(env.in, opts, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("HVNL-serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := core.JoinHVNL(env.in, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("HVNL-parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := core.JoinHVNLParallel(env.in, opts, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("VVM-serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := core.JoinVVM(env.in, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("VVM-parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := core.JoinVVMParallel(env.in, opts, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	// A fixed worker count exposes the owner-sharded routing cost even
	// when GOMAXPROCS is low (workers=0 may degenerate to serial).
	b.Run("VVM-parallel-4w", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := core.JoinVVMParallel(env.in, opts, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("HVNL-parallel-4w", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := core.JoinHVNLParallel(env.in, opts, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// accumWorkload is a fixed random stream of (row, inner, v) adds shaped
// like one VVM pass: rows×cols pair space, nnz distinct non-zero pairs,
// several adds per pair (one per shared term).
type accumWorkload struct {
	rows, cols int
	rowIdx     []int
	innerIdx   []uint32
	val        []float64
}

func newAccumWorkload(rows, cols, nnz, addsPerPair int) *accumWorkload {
	r := rand.New(rand.NewSource(11))
	w := &accumWorkload{rows: rows, cols: cols}
	for p := 0; p < nnz; p++ {
		row, inner := r.Intn(rows), uint32(r.Intn(cols))
		for a := 0; a < addsPerPair; a++ {
			w.rowIdx = append(w.rowIdx, row)
			w.innerIdx = append(w.innerIdx, inner)
			w.val = append(w.val, float64(r.Intn(40)+1))
		}
	}
	return w
}

// BenchmarkAccumVVM compares the per-pass similarity stores on the same
// add stream: the old map[uint64]float64, the open-addressing table, and
// the dense matrix. One op is a full pass: accumulate + drain.
func BenchmarkAccumVVM(b *testing.B) {
	w := newAccumWorkload(512, 1024, 40000, 4)
	drain := func(a accum.Accumulator) float64 {
		var sum float64
		a.ForEach(func(row int, inner uint32, v float64) { sum += v })
		return sum
	}
	b.Run("map", func(b *testing.B) {
		var sum float64
		for i := 0; i < b.N; i++ {
			m := make(map[uint64]float64)
			for j, row := range w.rowIdx {
				m[uint64(row)<<32|uint64(w.innerIdx[j])] += w.val[j]
			}
			for _, v := range m {
				sum += v
			}
		}
		_ = sum
	})
	b.Run("table", func(b *testing.B) {
		var sum float64
		for i := 0; i < b.N; i++ {
			t := accum.NewTable(0)
			for j, row := range w.rowIdx {
				t.Add(row, w.innerIdx[j], w.val[j])
			}
			sum += drain(t)
		}
		_ = sum
	})
	b.Run("dense", func(b *testing.B) {
		var sum float64
		for i := 0; i < b.N; i++ {
			d := accum.NewDense(w.rows, w.cols)
			for j, row := range w.rowIdx {
				d.Add(row, w.innerIdx[j], w.val[j])
			}
			sum += drain(d)
		}
		_ = sum
	})
}

// BenchmarkAccumHVNL compares HVNL's per-outer-document store — the old
// map[uint32]float64 versus the flat touched-list accumulator — on a
// stream of documents reusing one accumulator (as JoinHVNL now does).
func BenchmarkAccumHVNL(b *testing.B) {
	const n1, perDoc = 4096, 600
	r := rand.New(rand.NewSource(12))
	ids := make([]uint32, perDoc)
	vals := make([]float64, perDoc)
	for i := range ids {
		ids[i] = uint32(r.Intn(n1))
		vals[i] = float64(r.Intn(40) + 1)
	}
	b.Run("map", func(b *testing.B) {
		var sum float64
		for i := 0; i < b.N; i++ {
			m := make(map[uint32]float64)
			for j, id := range ids {
				m[id] += vals[j]
			}
			for _, v := range m {
				sum += v
			}
		}
		_ = sum
	})
	b.Run("flat", func(b *testing.B) {
		f := accum.NewFlat(n1)
		var sum float64
		for i := 0; i < b.N; i++ {
			for j, id := range ids {
				f.Add(id, vals[j])
			}
			f.ForEach(func(id uint32, v float64) { sum += v })
			f.Reset()
		}
		_ = sum
	})
}

// BenchmarkQueryEndToEnd times the extended-SQL path including planning.
func BenchmarkQueryEndToEnd(b *testing.B) {
	ws := NewWorkspace(WithPageSize(512))
	dict := NewDictionary()
	tok := NewTokenizer(dict)
	texts := []string{
		"database systems engineering", "compiler construction research",
		"distributed storage go", "information retrieval indexing",
	}
	mk := func(name string, shift int) (*Collection, *InvertedFile) {
		docs := make([]*Document, len(texts))
		for i := range texts {
			doc, err := tok.Document(uint32(i), texts[(i+shift)%len(texts)])
			if err != nil {
				b.Fatal(err)
			}
			docs[i] = doc
		}
		c, err := ws.NewCollection(name, docs)
		if err != nil {
			b.Fatal(err)
		}
		inv, err := ws.BuildInvertedFile(c)
		if err != nil {
			b.Fatal(err)
		}
		return c, inv
	}
	resumes, rinv := mk("resumes", 0)
	jobs, jinv := mk("jobs", 1)
	applicants, _ := NewRelation("Applicants", []Column{{Name: "Name", Type: StringType}, {Name: "Resume", Type: TextType}})
	positions, _ := NewRelation("Positions", []Column{{Name: "Title", Type: StringType}, {Name: "Descr", Type: TextType}})
	for i := range texts {
		applicants.Insert(StringValue(fmt.Sprintf("a%d", i)), TextValue(uint32(i)))
		positions.Insert(StringValue(fmt.Sprintf("p%d", i)), TextValue(uint32(i)))
	}
	cat := NewCatalog()
	cat.Register(applicants)
	cat.Register(positions)
	cat.BindText("Applicants", "Resume", TextBinding{Collection: resumes, Inverted: rinv})
	cat.BindText("Positions", "Descr", TextBinding{Collection: jobs, Inverted: jinv})
	eng := NewEngine(cat)
	src := `select P.Title, A.Name from Positions P, Applicants A where A.Resume similar_to(2) P.Descr`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.ExecuteString(src, QueryOptions{MemoryPages: 100}); err != nil {
			b.Fatal(err)
		}
	}
}
