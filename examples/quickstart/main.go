// Quickstart: build two tiny collections, join them with each algorithm,
// and let the integrated algorithm pick the cheapest — the minimal tour of
// the public API.
package main

import (
	"fmt"
	"log"

	"textjoin"
)

func main() {
	// A workspace owns a simulated paged disk (4 KB pages, α = 5).
	ws := textjoin.NewWorkspace()

	// Documents are term vectors: term number → occurrence count.
	// Collection C1: the "inner" side that match candidates come from.
	c1Docs := []*textjoin.Document{
		textjoin.NewDocument(0, map[uint32]int{1: 2, 5: 1, 9: 3}),
		textjoin.NewDocument(1, map[uint32]int{2: 1, 5: 2}),
		textjoin.NewDocument(2, map[uint32]int{1: 1, 2: 1, 9: 1}),
		textjoin.NewDocument(3, map[uint32]int{7: 4}),
	}
	// Collection C2: the "outer" side each of whose documents gets λ
	// matches.
	c2Docs := []*textjoin.Document{
		textjoin.NewDocument(0, map[uint32]int{1: 1, 9: 2}),
		textjoin.NewDocument(1, map[uint32]int{5: 3, 2: 1}),
	}

	c1, err := ws.NewCollection("c1", c1Docs)
	if err != nil {
		log.Fatal(err)
	}
	c2, err := ws.NewCollection("c2", c2Docs)
	if err != nil {
		log.Fatal(err)
	}

	// HVNL and VVM need inverted files (with B+trees); HHNL does not.
	inv1, err := ws.BuildInvertedFile(c1)
	if err != nil {
		log.Fatal(err)
	}
	inv2, err := ws.BuildInvertedFile(c2)
	if err != nil {
		log.Fatal(err)
	}
	ws.ResetIOStats() // measure only join-time I/O

	in := textjoin.Inputs{Outer: c2, Inner: c1, InnerInv: inv1, OuterInv: inv2}
	opts := textjoin.Options{Lambda: 2, MemoryPages: 100}

	// All three algorithms compute the same join.
	for _, alg := range []textjoin.Algorithm{textjoin.HHNL, textjoin.HVNL, textjoin.VVM} {
		results, stats, err := textjoin.Join(alg, in, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%v (I/O cost %.0f):\n", alg, stats.Cost)
		for _, r := range results {
			fmt.Printf("  C2 doc %d ->", r.Outer)
			for _, m := range r.Matches {
				fmt.Printf(" (C1 doc %d, sim %.0f)", m.Doc, m.Sim)
			}
			fmt.Println()
		}
	}

	// The integrated algorithm picks the cheapest by estimated cost.
	_, stats, dec, err := textjoin.JoinIntegrated(in, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("integrated: chose %v and spent %.0f cost units\n", dec.Chosen, stats.Cost)
	for _, e := range dec.Estimates {
		fmt.Printf("  estimate %-5v seq=%.1f rand=%.1f\n", e.Algorithm, e.Seq, e.Rand)
	}
}
