// Clustering exercises the self-join special case the paper points out:
// "The clustering problem in IR systems requires to find, for each
// document d, those documents similar to d in the same document
// collection. This can be considered as a special case of the join
// problem when the two document collections ... are identical."
//
// The example generates a synthetic corpus, self-joins it with VVM (one
// merge scan of the inverted file against itself), and derives
// single-link-style clusters from the λ-nearest-neighbor graph.
package main

import (
	"fmt"
	"log"

	"textjoin"
)

func main() {
	ws := textjoin.NewWorkspace()

	// A scaled-down WSJ profile: enough terms per document for a
	// meaningful nearest-neighbor graph.
	profile := textjoin.Profiles()[0].Scaled(512)
	c, err := ws.GenerateCorpus(profile, 42)
	if err != nil {
		log.Fatal(err)
	}
	inv, err := ws.BuildInvertedFile(c)
	if err != nil {
		log.Fatal(err)
	}
	ws.ResetIOStats()

	st := c.Stats()
	fmt.Printf("corpus: %d docs, %.1f terms/doc, %d distinct terms\n", st.N, st.K, st.T)

	// Self join: both sides are the same collection and inverted file.
	results, stats, err := textjoin.Join(textjoin.VVM,
		textjoin.Inputs{Outer: c, Inner: c, InnerInv: inv, OuterInv: inv},
		textjoin.Options{Lambda: 4, MemoryPages: 2000},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("self join via VVM: %d result rows, %d passes, I/O cost %.0f\n",
		len(results), stats.Passes, stats.Cost)

	// Union-find over mutual nearest-neighbor edges (excluding the
	// trivial self edge) yields clusters.
	parent := make([]int, st.N)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	// Only strong edges cluster: a similarity threshold keeps weak
	// single-shared-term links from collapsing everything into one blob.
	const minSim = 30
	edges := 0
	for _, r := range results {
		for _, m := range r.Matches {
			if m.Doc == r.Outer || m.Sim < minSim {
				continue // self similarity or too-weak link
			}
			union(int(r.Outer), int(m.Doc))
			edges++
		}
	}

	sizes := map[int]int{}
	for i := range parent {
		sizes[find(i)]++
	}
	singletons, clusters, largest := 0, 0, 0
	for _, n := range sizes {
		if n == 1 {
			singletons++
			continue
		}
		clusters++
		if n > largest {
			largest = n
		}
	}
	fmt.Printf("nearest-neighbor edges: %d\n", edges)
	fmt.Printf("clusters: %d multi-document clusters (largest %d docs), %d singletons\n",
		clusters, largest, singletons)

	// Show one non-trivial cluster's members.
	for root, n := range sizes {
		if n > 1 && n <= 8 {
			fmt.Printf("example cluster (root %d):", root)
			for i := range parent {
				if find(i) == root {
					fmt.Printf(" %d", i)
				}
			}
			fmt.Println()
			break
		}
	}
}
