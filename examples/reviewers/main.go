// Reviewers reproduces the case study the paper cites as related work [3]
// (Dumais & Nielsen, "Automating the Assignment of Submitted Manuscripts
// to Reviewers", SIGIR 1992) as a textual join: match each submitted
// abstract with the λ reviewer profiles most similar to it.
//
// The join is "Profiles SIMILAR_TO(λ) Abstracts" — for every submission
// (outer collection) find the λ best reviewers (inner collection). The
// example uses tf-idf weighting, the realistic similarity the paper
// mentions, and HVNL, the natural choice when the outer collection is
// small (each abstract probes the profile inverted file like a query).
package main

import (
	"fmt"
	"log"

	"textjoin"
)

var reviewers = []struct {
	name    string
	profile string
}{
	{"Prof. Stone", "query optimization cost models join algorithms relational databases"},
	{"Dr. Vector", "information retrieval ranking vector space models inverted files"},
	{"Prof. Lattice", "concurrency control transactions recovery locking protocols"},
	{"Dr. Graph", "graph databases traversal shortest paths social networks"},
	{"Prof. Stream", "data streams approximate aggregation sliding windows sketches"},
	{"Dr. Text", "text mining natural language document clustering topic models"},
}

var submissions = []struct {
	title    string
	abstract string
}{
	{
		"Joins between Textual Attributes",
		"we analyze join algorithms over textual attributes using inverted files and cost models for query optimization in databases",
	},
	{
		"Streaming Top-k Aggregation",
		"approximate aggregation over data streams with sliding windows and sketch data structures",
	},
	{
		"Clustering Large Document Sets",
		"document clustering with vector space models and topic models for text mining",
	},
}

func main() {
	ws := textjoin.NewWorkspace()
	dict := textjoin.NewDictionary()
	tok := textjoin.NewTokenizer(dict)

	var profileDocs, abstractDocs []*textjoin.Document
	for i, r := range reviewers {
		d, err := tok.Document(uint32(i), r.profile)
		if err != nil {
			log.Fatal(err)
		}
		profileDocs = append(profileDocs, d)
	}
	for i, s := range submissions {
		d, err := tok.Document(uint32(i), s.abstract)
		if err != nil {
			log.Fatal(err)
		}
		abstractDocs = append(abstractDocs, d)
	}

	profiles, err := ws.NewCollection("profiles", profileDocs)
	if err != nil {
		log.Fatal(err)
	}
	abstracts, err := ws.NewCollection("abstracts", abstractDocs)
	if err != nil {
		log.Fatal(err)
	}
	profilesInv, err := ws.BuildInvertedFile(profiles)
	if err != nil {
		log.Fatal(err)
	}
	ws.ResetIOStats()

	// Each submission needs 2 reviewers; tf-idf downweights ubiquitous
	// vocabulary so that distinctive expertise dominates.
	results, stats, err := textjoin.Join(textjoin.HVNL,
		textjoin.Inputs{Outer: abstracts, Inner: profiles, InnerInv: profilesInv},
		textjoin.Options{Lambda: 2, MemoryPages: 500, Weighting: textjoin.TFIDF},
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("reviewer assignments (tf-idf similarity, HVNL):")
	for _, r := range results {
		fmt.Printf("\n%q\n", submissions[r.Outer].title)
		if len(r.Matches) == 0 {
			fmt.Println("  no matching reviewer")
			continue
		}
		for rank, m := range r.Matches {
			fmt.Printf("  %d. %-14s (score %.2f)\n", rank+1, reviewers[m.Doc].name, m.Sim)
		}
	}
	fmt.Printf("\njoin I/O: %s, cache hit rate %.2f\n", stats.IO, stats.Cache.HitRate())
}
