// Jobmatch runs the paper's motivating example end to end through the
// extended-SQL layer:
//
//	Select P.P#, P.Title, A.SSN, A.Name
//	From Positions P, Applicants A
//	Where P.Title like "%Engineer%"
//	  and A.Resume SIMILAR_TO(2) P.Job_descr
//
// The LIKE selection is evaluated first so that only engineering
// positions participate in the textual join, and the planner then picks
// the join algorithm by estimated cost (the integrated algorithm).
package main

import (
	"fmt"
	"log"
	"strings"

	"textjoin"
)

var positions = []struct {
	id    int64
	title string
	descr string
}{
	{1, "Database Engineer", "design and operate distributed database systems, query optimization, go services"},
	{2, "Search Engineer", "build information retrieval engines, inverted indexes, text ranking"},
	{3, "Payroll Clerk", "process payroll, benefits administration, monthly reporting"},
	{4, "Hardware Engineer", "digital circuit design, fpga prototyping, signal integrity"},
	{5, "Engineering Manager", "lead a team of software engineers, planning, hiring, mentoring"},
	{6, "Technical Writer", "write documentation and tutorials for developer products"},
}

var applicants = []struct {
	ssn    int64
	name   string
	resume string
}{
	{1001, "Ada", "ten years building distributed databases and query optimizers in go and c++"},
	{1002, "Bob", "payroll specialist, benefits and compensation reporting"},
	{1003, "Cara", "search systems: inverted indexes, ranking, text retrieval at scale"},
	{1004, "Dan", "fpga and asic design, circuits, verilog, signal analysis"},
	{1005, "Eve", "engineering leadership, team building, roadmap planning, hiring"},
	{1006, "Finn", "technical documentation, developer tutorials, api references"},
	{1007, "Gil", "database internals, storage engines, b-trees, go"},
}

func main() {
	ws := textjoin.NewWorkspace()
	dict := textjoin.NewDictionary()
	tok := textjoin.NewTokenizer(dict)

	// Tokenize the textual attributes into two collections.
	var descrDocs, resumeDocs []*textjoin.Document
	for i, p := range positions {
		d, err := tok.Document(uint32(i), p.descr)
		if err != nil {
			log.Fatal(err)
		}
		descrDocs = append(descrDocs, d)
	}
	for i, a := range applicants {
		d, err := tok.Document(uint32(i), a.resume)
		if err != nil {
			log.Fatal(err)
		}
		resumeDocs = append(resumeDocs, d)
	}
	descrs, err := ws.NewCollection("job_descriptions", descrDocs)
	if err != nil {
		log.Fatal(err)
	}
	resumes, err := ws.NewCollection("resumes", resumeDocs)
	if err != nil {
		log.Fatal(err)
	}
	descrsInv, err := ws.BuildInvertedFile(descrs)
	if err != nil {
		log.Fatal(err)
	}
	resumesInv, err := ws.BuildInvertedFile(resumes)
	if err != nil {
		log.Fatal(err)
	}

	// The global relations of the motivating example.
	posRel, err := textjoin.NewRelation("Positions", []textjoin.Column{
		{Name: "P#", Type: textjoin.IntType},
		{Name: "Title", Type: textjoin.StringType},
		{Name: "Job_descr", Type: textjoin.TextType},
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, p := range positions {
		if err := posRel.Insert(textjoin.IntValue(p.id), textjoin.StringValue(p.title), textjoin.TextValue(uint32(i))); err != nil {
			log.Fatal(err)
		}
	}
	appRel, err := textjoin.NewRelation("Applicants", []textjoin.Column{
		{Name: "SSN", Type: textjoin.IntType},
		{Name: "Name", Type: textjoin.StringType},
		{Name: "Resume", Type: textjoin.TextType},
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, a := range applicants {
		if err := appRel.Insert(textjoin.IntValue(a.ssn), textjoin.StringValue(a.name), textjoin.TextValue(uint32(i))); err != nil {
			log.Fatal(err)
		}
	}

	cat := textjoin.NewCatalog()
	must(cat.Register(posRel))
	must(cat.Register(appRel))
	must(cat.BindText("Positions", "Job_descr", textjoin.TextBinding{Collection: descrs, Inverted: descrsInv}))
	must(cat.BindText("Applicants", "Resume", textjoin.TextBinding{Collection: resumes, Inverted: resumesInv}))

	engine := textjoin.NewEngine(cat)
	src := `Select P.P#, P.Title, A.SSN, A.Name
	        From Positions P, Applicants A
	        Where P.Title like "%Engineer%"
	          and A.Resume SIMILAR_TO(2) P.Job_descr`
	fmt.Println("query:")
	for _, line := range strings.Split(src, "\n") {
		fmt.Println("   ", strings.TrimSpace(line))
	}

	rs, err := engine.ExecuteString(src, textjoin.QueryOptions{MemoryPages: 1000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplanner chose %v; estimates:\n", rs.Algorithm)
	for _, e := range rs.Estimates {
		fmt.Printf("  %-5v seq=%.1f rand=%.1f\n", e.Algorithm, e.Seq, e.Rand)
	}
	fmt.Printf("\n%s\n", strings.Join(rs.Columns, " | "))
	for _, row := range rs.Rows {
		fmt.Println(strings.Join(row, " | "))
	}
	fmt.Printf("\njoin I/O: %s (cost %.0f)\n", rs.JoinStats.IO, rs.JoinStats.Cost)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
