// Multidb demonstrates Section 3's multidatabase term-number problem:
// "different numbers may be used to represent the same term in different
// local IR systems due to the local autonomy", solved by a standard
// mapping from terms to term numbers kept in memory.
//
// Two autonomous IR systems hold résumés and job descriptions with
// incompatible local term numberings. Each local vocabulary is mapped to
// the standard dictionary, the documents are renumbered through the
// memory-resident mappings, and the textual join then runs on comparable
// vectors.
package main

import (
	"fmt"
	"log"

	"textjoin"
)

// Local IR system A (résumés) numbers its vocabulary one way...
var systemAVocab = map[uint32]string{
	501: "database", 502: "go", 503: "distributed", 504: "compiler",
	505: "haskell", 506: "payroll",
}

var systemADocs = []struct {
	name  string
	cells map[uint32]int // in system A's local numbering
}{
	{"Ada", map[uint32]int{501: 2, 502: 1, 503: 1}}, // database go distributed
	{"Hal", map[uint32]int{504: 2, 505: 1}},         // compiler haskell
	{"Pam", map[uint32]int{506: 3}},                 // payroll
}

// ...and local IR system B (job descriptions) numbers the same terms
// completely differently.
var systemBVocab = map[uint32]string{
	7: "go", 8: "database", 9: "compiler", 10: "distributed",
	11: "haskell", 12: "payroll",
}

var systemBDocs = []struct {
	title string
	cells map[uint32]int // in system B's local numbering
}{
	{"Database Engineer", map[uint32]int{8: 2, 7: 1, 10: 1}},
	{"Compiler Engineer", map[uint32]int{9: 2, 11: 1}},
	{"Payroll Admin", map[uint32]int{12: 2}},
}

func main() {
	// The standard dictionary all locals map into.
	dict := textjoin.NewDictionary()
	mapA, err := textjoin.NewLocalMapping("systemA", dict, systemAVocab)
	if err != nil {
		log.Fatal(err)
	}
	mapB, err := textjoin.NewLocalMapping("systemB", dict, systemBVocab)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("standard dictionary: %d terms; mapping A %d bytes, mapping B %d bytes in memory\n",
		dict.Len(), mapA.SizeBytes(), mapB.SizeBytes())

	// Renumber each local system's documents through its mapping.
	ws := textjoin.NewWorkspace()
	var resumeDocs, jobDocs []*textjoin.Document
	for i, d := range systemADocs {
		local := textjoin.NewDocument(uint32(i), d.cells)
		resumeDocs = append(resumeDocs, mapA.RemapDocument(local))
	}
	for i, d := range systemBDocs {
		local := textjoin.NewDocument(uint32(i), d.cells)
		jobDocs = append(jobDocs, mapB.RemapDocument(local))
	}

	resumes, err := ws.NewCollection("resumes", resumeDocs)
	if err != nil {
		log.Fatal(err)
	}
	jobs, err := ws.NewCollection("jobs", jobDocs)
	if err != nil {
		log.Fatal(err)
	}
	inv, err := ws.BuildInvertedFile(resumes)
	if err != nil {
		log.Fatal(err)
	}

	// Without the mapping, "database" would be term 501 on one side and
	// term 8 on the other — every similarity would be garbage. With it,
	// the join works on comparable numbers.
	results, _, err := textjoin.Join(textjoin.HVNL,
		textjoin.Inputs{Outer: jobs, Inner: resumes, InnerInv: inv},
		textjoin.Options{Lambda: 1, MemoryPages: 100},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbest candidate per position (joined across autonomous systems):")
	for _, r := range results {
		title := systemBDocs[r.Outer].title
		if len(r.Matches) == 0 {
			fmt.Printf("  %-18s -> no candidate\n", title)
			continue
		}
		m := r.Matches[0]
		fmt.Printf("  %-18s -> %s (similarity %.0f)\n", title, systemADocs[m.Doc].name, m.Sim)
	}
}
