// Batchqueries demonstrates the paper's batch-query scenario — the
// related problem the introduction contrasts with the join: "processing a
// set of queries against a document collection in batch".
//
// The batch differs from a join operand in exactly the two ways the paper
// lists: its statistics must be collected explicitly (NewBatch does so at
// construction, since the batch is already in memory), and it has no
// inverted file — so VVM is inapplicable and the integrated planner
// chooses between HHNL and HVNL only. Reading the batch costs no I/O.
package main

import (
	"fmt"
	"log"

	"textjoin"
)

func main() {
	ws := textjoin.NewWorkspace()
	dict := textjoin.NewDictionary()
	tok := textjoin.NewTokenizer(dict)

	// A stored article collection with its inverted file.
	articles := []string{
		"go garbage collector latency tuning",
		"relational query optimization with cost models",
		"distributed consensus and replication protocols",
		"inverted index compression techniques",
		"vector space retrieval and ranking functions",
		"b tree storage engines and buffer management",
	}
	var docs []*textjoin.Document
	for i, text := range articles {
		d, err := tok.Document(uint32(i), text)
		if err != nil {
			log.Fatal(err)
		}
		docs = append(docs, d)
	}
	coll, err := ws.NewCollection("articles", docs)
	if err != nil {
		log.Fatal(err)
	}
	inv, err := ws.BuildInvertedFile(coll)
	if err != nil {
		log.Fatal(err)
	}
	ws.ResetIOStats()

	// An ad-hoc batch of user queries: never stored, never indexed.
	queryTexts := []string{
		"how do cost models drive query optimization",
		"compressing an inverted index",
		"tuning gc latency in go services",
	}
	var queryDocs []*textjoin.Document
	for i, text := range queryTexts {
		d, err := tok.Document(uint32(i), text)
		if err != nil {
			log.Fatal(err)
		}
		queryDocs = append(queryDocs, d)
	}
	batch, err := textjoin.NewBatch("user-queries", queryDocs)
	if err != nil {
		log.Fatal(err)
	}

	results, stats, dec, err := textjoin.JoinIntegrated(
		textjoin.Inputs{Outer: batch, Inner: coll, InnerInv: inv},
		textjoin.Options{Lambda: 2, MemoryPages: 500},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planner chose %v (VVM inapplicable: the batch has no inverted file)\n\n", dec.Chosen)
	for _, r := range results {
		fmt.Printf("%q\n", queryTexts[r.Outer])
		for rank, m := range r.Matches {
			fmt.Printf("  %d. %q (sim %.0f)\n", rank+1, articles[m.Doc], m.Sim)
		}
	}
	fmt.Printf("\nI/O: %s (the batch itself cost nothing to read)\n", stats.IO)
}
