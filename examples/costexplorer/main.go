// Costexplorer sweeps the paper's cost model over memory sizes and shows
// where the algorithm of choice flips — the insight behind the paper's
// integrated algorithm ("no one algorithm is definitely better than all
// other algorithms in all circumstances").
//
// It prints, for a chosen collection pair, the estimated cost of each
// algorithm across a B sweep with the winner marked, then repeats the
// exercise for a selection of m surviving outer documents (the Group 3
// shape, where HVNL takes over at small m), and finally shows how the
// extended model (CPU + communication, the paper's further-studies item
// 2) can overturn an I/O-only choice.
package main

import (
	"fmt"
	"math"

	"textjoin"
)

func main() {
	wsj := textjoin.Profiles()[0].Stats()
	q := textjoin.QueryParams{Lambda: 20, Delta: 0.1}

	fmt.Println("WSJ ⋈ WSJ, varying memory B (pages):")
	fmt.Printf("%10s %12s %12s %12s   %s\n", "B", "HHNL", "HVNL", "VVM", "winner")
	for _, b := range []int64{2500, 5000, 10000, 20000, 40000, 60000, 80000} {
		sys := textjoin.System{B: b, P: 4096, Alpha: 5}
		ests := textjoin.EstimateCosts(textjoin.CostInput{C1: wsj, C2: wsj}, sys, q)
		printRow(fmt.Sprintf("%d", b), ests)
	}

	fmt.Println("\nselection leaves m documents of WSJ as C2 (inverted file keeps full size):")
	fmt.Printf("%10s %12s %12s %12s   %s\n", "m", "HHNL", "HVNL", "VVM", "winner")
	sys := textjoin.System{B: 10000, P: 4096, Alpha: 5}
	for _, m := range []int64{1, 5, 10, 25, 50, 100, 500} {
		sub := textjoin.CollectionStats{N: m, K: wsj.K, T: growth(wsj, m)}
		in := textjoin.CostInput{C1: wsj, C2: sub, InvOnC1: wsj, InvOnC2: wsj, C2Random: true}
		printRow(fmt.Sprintf("%d", m), textjoin.EstimateCosts(in, sys, q))
	}

	fmt.Println("\nextended model: DOE ⋈ DOE with a slow CPU (1000 ops per page-read time):")
	doe := textjoin.Profiles()[2].Stats()
	in := textjoin.CostInput{C1: doe, C2: doe}
	ioOnly := textjoin.EstimateCosts(in, sys, q)
	extended := textjoin.EstimateTotalCosts(in, sys, q,
		textjoin.CPUParams{OpsPerPageRead: 1000}, textjoin.NetParams{})
	fmt.Printf("%10s %12s %14s %14s   %s\n", "", "io-only", "cpu-part", "total", "")
	for i, e := range ioOnly {
		b := extended[i]
		fmt.Printf("%10v %12.0f %14.0f %14.0f\n", e.Algorithm, e.Seq, b.CPU, b.Total())
	}
	fmt.Println("the I/O-only winner (HHNL) pays N1·N2·(K1+K2) CPU operations and loses.")
}

func printRow(label string, ests []textjoin.Estimate) {
	best := ests[0]
	for _, e := range ests[1:] {
		if e.Seq < best.Seq {
			best = e
		}
	}
	fmt.Printf("%10s", label)
	for _, e := range ests {
		if math.IsInf(e.Seq, 1) {
			fmt.Printf(" %12s", "inf")
			continue
		}
		fmt.Printf(" %12.0f", e.Seq)
	}
	fmt.Printf("   %v\n", best.Algorithm)
}

// growth is the paper's vocabulary growth estimate f(m).
func growth(c textjoin.CollectionStats, m int64) int64 {
	t := float64(c.T)
	return int64(t - math.Pow(1-c.K/t, float64(m))*t)
}
