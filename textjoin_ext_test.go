package textjoin

import (
	"math"
	"math/rand"
	"testing"
)

// Tests for the public surface of the extensions (parallel joins,
// clustered ordering, extended cost model).

func TestPublicParallelJoins(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	ws := NewWorkspace(WithPageSize(256))
	c1, err := ws.NewCollection("c1", randomDocuments(r, 25, 50, 10))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ws.NewCollection("c2", randomDocuments(r, 20, 50, 10))
	if err != nil {
		t.Fatal(err)
	}
	inv1, err := ws.BuildInvertedFile(c1)
	if err != nil {
		t.Fatal(err)
	}
	inv2, err := ws.BuildInvertedFile(c2)
	if err != nil {
		t.Fatal(err)
	}
	in := Inputs{Outer: c2, Inner: c1, InnerInv: inv1, OuterInv: inv2}
	opts := Options{Lambda: 4, MemoryPages: 100}

	serial, _, err := Join(HHNL, in, opts)
	if err != nil {
		t.Fatal(err)
	}
	parallel, _, err := JoinHHNLParallel(in, opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("row counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Outer != parallel[i].Outer || len(serial[i].Matches) != len(parallel[i].Matches) {
			t.Fatalf("row %d differs", i)
		}
	}

	vs, _, err := Join(VVM, in, opts)
	if err != nil {
		t.Fatal(err)
	}
	vp, _, err := JoinVVMParallel(in, opts, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vs {
		if vs[i].Outer != vp[i].Outer || len(vs[i].Matches) != len(vp[i].Matches) {
			t.Fatalf("VVM row %d differs", i)
		}
		for j := range vs[i].Matches {
			if vs[i].Matches[j].Doc != vp[i].Matches[j].Doc {
				t.Fatalf("VVM row %d match %d differs", i, j)
			}
		}
	}
}

func TestPublicClusterOrder(t *testing.T) {
	docs := []*Document{
		NewDocument(0, map[uint32]int{1: 1, 2: 1}),
		NewDocument(1, map[uint32]int{50: 1, 51: 1}),
		NewDocument(2, map[uint32]int{2: 1, 3: 1}),
		NewDocument(3, map[uint32]int{51: 1, 52: 1}),
	}
	order := ClusterOrder(docs)
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
	seen := map[int]bool{}
	for _, i := range order {
		seen[i] = true
	}
	if len(seen) != 4 {
		t.Fatalf("not a permutation: %v", order)
	}
}

func TestPublicClusterCollection(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	ws := NewWorkspace(WithPageSize(256))
	src, err := ws.NewCollection("src", randomDocuments(r, 15, 30, 8))
	if err != nil {
		t.Fatal(err)
	}
	clustered, origIDs, err := ws.ClusterCollection("clustered", src)
	if err != nil {
		t.Fatal(err)
	}
	if clustered.NumDocs() != src.NumDocs() || len(origIDs) != 15 {
		t.Fatalf("clustered N = %d, origIDs = %d", clustered.NumDocs(), len(origIDs))
	}
	// Every original id appears exactly once.
	seen := map[uint32]bool{}
	for _, id := range origIDs {
		if seen[id] {
			t.Fatalf("duplicate original id %d", id)
		}
		seen[id] = true
	}
	// Content preserved under the mapping.
	for newID, oldID := range origIDs {
		a, err1 := clustered.Fetch(uint32(newID))
		b, err2 := src.Fetch(oldID)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if len(a.Cells) != len(b.Cells) {
			t.Fatalf("doc %d content differs", newID)
		}
	}
}

func TestPublicExtendedCostModel(t *testing.T) {
	in := CostInput{C1: Profiles()[0].Stats(), C2: Profiles()[0].Stats()}
	sys := System{B: 10000, P: 4096, Alpha: 5}
	q := QueryParams{Lambda: 20, Delta: 0.1}

	// Zero knobs reproduce the I/O-only estimates.
	plain := EstimateCosts(in, sys, q)
	extended := EstimateTotalCosts(in, sys, q, CPUParams{}, NetParams{})
	if len(extended) != 3 {
		t.Fatalf("breakdowns = %v", extended)
	}
	for i, b := range extended {
		if b.CPU != 0 || b.Comm != 0 {
			t.Errorf("%v: non-zero knobs at defaults: %+v", b.Algorithm, b)
		}
		if math.Abs(b.IO-plain[i].Seq) > 1e-9 {
			t.Errorf("%v: IO %v != plain seq %v", b.Algorithm, b.IO, plain[i].Seq)
		}
	}

	// Turning the knobs adds cost.
	loaded := EstimateTotalCosts(in, sys, q,
		CPUParams{OpsPerPageRead: 1e6},
		NetParams{CostPerPage: 1, C1Remote: true})
	for i, b := range loaded {
		if b.CPU <= 0 || b.Comm <= 0 {
			t.Errorf("%v: knobs had no effect: %+v", b.Algorithm, b)
		}
		if b.Total() <= extended[i].Total() {
			t.Errorf("%v: total did not grow", b.Algorithm)
		}
	}
}
