package textjoin

import (
	"math/rand"
	"testing"
)

func randomDocuments(r *rand.Rand, n, vocab, maxLen int) []*Document {
	docs := make([]*Document, n)
	for i := range docs {
		counts := make(map[uint32]int)
		for j, l := 0, r.Intn(maxLen)+1; j < l; j++ {
			counts[uint32(r.Intn(vocab))]++
		}
		docs[i] = NewDocument(uint32(i), counts)
	}
	return docs
}

// TestPublicAPIEndToEnd drives the whole public surface: build, invert,
// join with each algorithm, integrated choice, cost estimates.
func TestPublicAPIEndToEnd(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	ws := NewWorkspace(WithPageSize(256), WithAlpha(5))
	c1, err := ws.NewCollection("c1", randomDocuments(r, 30, 60, 12))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ws.NewCollection("c2", randomDocuments(r, 25, 60, 12))
	if err != nil {
		t.Fatal(err)
	}
	inv1, err := ws.BuildInvertedFile(c1)
	if err != nil {
		t.Fatal(err)
	}
	inv2, err := ws.BuildInvertedFile(c2)
	if err != nil {
		t.Fatal(err)
	}
	ws.ResetIOStats()

	in := Inputs{Outer: c2, Inner: c1, InnerInv: inv1, OuterInv: inv2}
	opts := Options{Lambda: 4, MemoryPages: 100}

	var baseline []Result
	for _, alg := range []Algorithm{HHNL, HVNL, VVM} {
		res, st, err := Join(alg, in, opts)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if len(res) != 25 {
			t.Fatalf("%v: %d results", alg, len(res))
		}
		if st.Cost <= 0 {
			t.Errorf("%v: cost %v", alg, st.Cost)
		}
		if baseline == nil {
			baseline = res
			continue
		}
		for i := range res {
			if res[i].Outer != baseline[i].Outer || len(res[i].Matches) != len(baseline[i].Matches) {
				t.Fatalf("%v: row %d differs", alg, i)
			}
			for j := range res[i].Matches {
				if res[i].Matches[j].Doc != baseline[i].Matches[j].Doc {
					t.Fatalf("%v: row %d match %d differs", alg, i, j)
				}
			}
		}
	}

	res, st, dec, err := JoinIntegrated(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.Algorithm != dec.Chosen || len(res) != 25 || len(dec.Estimates) != 3 {
		t.Errorf("integrated: alg=%v chosen=%v rows=%d ests=%d", st.Algorithm, dec.Chosen, len(res), len(dec.Estimates))
	}

	dec2, err := Choose(in, opts)
	if err != nil || dec2.Chosen != dec.Chosen {
		t.Errorf("Choose = %v, %v", dec2.Chosen, err)
	}

	if ws.Disk().Stats().Reads() == 0 {
		t.Error("no disk reads recorded")
	}
}

func TestPublicCostModel(t *testing.T) {
	ps := Profiles()
	if len(ps) != 3 || ps[0].Name != "WSJ" {
		t.Fatalf("Profiles = %v", ps)
	}
	ests := EstimateCosts(
		CostInput{C1: ps[0].Stats(), C2: ps[0].Stats()},
		System{B: 10000, P: 4096, Alpha: 5},
		QueryParams{Lambda: 20, Delta: 0.1},
	)
	if len(ests) != 3 {
		t.Fatalf("estimates = %v", ests)
	}
	for _, e := range ests {
		if e.Seq <= 0 {
			t.Errorf("%v: seq %v", e.Algorithm, e.Seq)
		}
	}
}

func TestPublicTokenizerAndSimilarity(t *testing.T) {
	dict := NewDictionary()
	tok := NewTokenizer(dict)
	d1, err := tok.Document(0, "distributed database systems")
	if err != nil {
		t.Fatal(err)
	}
	d2, err := tok.Document(1, "database systems research")
	if err != nil {
		t.Fatal(err)
	}
	if sim := Similarity(d1, d2); sim != 2 {
		t.Errorf("similarity = %v, want 2 (database + system)", sim)
	}
}

func TestPublicQueryLayer(t *testing.T) {
	ws := NewWorkspace(WithPageSize(256))
	dict := NewDictionary()
	tok := NewTokenizer(dict)

	mkDocs := func(texts []string) []*Document {
		docs := make([]*Document, len(texts))
		for i, s := range texts {
			d, err := tok.Document(uint32(i), s)
			if err != nil {
				t.Fatal(err)
			}
			docs[i] = d
		}
		return docs
	}
	resumes, err := ws.NewCollection("resumes", mkDocs([]string{
		"go databases", "haskell compilers",
	}))
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := ws.NewCollection("jobs", mkDocs([]string{
		"database engineer go", "compiler engineer haskell",
	}))
	if err != nil {
		t.Fatal(err)
	}
	rinv, err := ws.BuildInvertedFile(resumes)
	if err != nil {
		t.Fatal(err)
	}
	jinv, err := ws.BuildInvertedFile(jobs)
	if err != nil {
		t.Fatal(err)
	}

	applicants, err := NewRelation("Applicants", []Column{
		{Name: "Name", Type: StringType}, {Name: "Resume", Type: TextType},
	})
	if err != nil {
		t.Fatal(err)
	}
	applicants.Insert(StringValue("Ada"), TextValue(0))
	applicants.Insert(StringValue("Hal"), TextValue(1))
	positions, err := NewRelation("Positions", []Column{
		{Name: "Title", Type: StringType}, {Name: "Descr", Type: TextType},
	})
	if err != nil {
		t.Fatal(err)
	}
	positions.Insert(StringValue("DB Engineer"), TextValue(0))
	positions.Insert(StringValue("Compiler Engineer"), TextValue(1))

	cat := NewCatalog()
	if err := cat.Register(applicants); err != nil {
		t.Fatal(err)
	}
	if err := cat.Register(positions); err != nil {
		t.Fatal(err)
	}
	if err := cat.BindText("Applicants", "Resume", TextBinding{Collection: resumes, Inverted: rinv}); err != nil {
		t.Fatal(err)
	}
	if err := cat.BindText("Positions", "Descr", TextBinding{Collection: jobs, Inverted: jinv}); err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(cat)
	rs, err := eng.ExecuteString(`
		select P.Title, A.Name from Positions P, Applicants A
		where A.Resume similar_to(1) P.Descr`, QueryOptions{MemoryPages: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 2 {
		t.Fatalf("rows = %v", rs.Rows)
	}
	for _, row := range rs.Rows {
		switch row[0] {
		case "DB Engineer":
			if row[1] != "Ada" {
				t.Errorf("DB Engineer matched %s", row[1])
			}
		case "Compiler Engineer":
			if row[1] != "Hal" {
				t.Errorf("Compiler Engineer matched %s", row[1])
			}
		}
	}
}

func TestPublicSimulation(t *testing.T) {
	tables := RunSimulation()
	if len(tables) != 28 {
		t.Errorf("RunSimulation = %d tables", len(tables))
	}
	findings := RunFindings()
	if len(findings) != 5 {
		t.Errorf("RunFindings = %d", len(findings))
	}
	for _, f := range findings {
		if !f.Holds {
			t.Errorf("finding %d does not hold: %s", f.ID, f.Evidence)
		}
	}
}
