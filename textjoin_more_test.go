package textjoin

import (
	"math"
	"math/rand"
	"testing"
)

func TestPublicGenerateCorpus(t *testing.T) {
	ws := NewWorkspace()
	p := Profile{Name: "gen", NumDocs: 40, TermsPerDoc: 8, DistinctTerms: 400}
	c, err := ws.GenerateCorpus(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumDocs() != 40 {
		t.Errorf("N = %d", c.NumDocs())
	}
	// Degenerate profile errors out.
	if _, err := ws.GenerateCorpus(Profile{Name: "bad", NumDocs: 1, TermsPerDoc: 10, DistinctTerms: 2}, 1); err == nil {
		t.Error("K > T: want error")
	}
}

func TestPublicBatch(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	ws := NewWorkspace(WithPageSize(256))
	inner, err := ws.NewCollection("inner", randomDocuments(r, 20, 40, 10))
	if err != nil {
		t.Fatal(err)
	}
	inv, err := ws.BuildInvertedFile(inner)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := NewBatch("q", randomDocuments(r, 4, 40, 8))
	if err != nil {
		t.Fatal(err)
	}
	res, st, dec, err := JoinIntegrated(
		Inputs{Outer: batch, Inner: inner, InnerInv: inv},
		Options{Lambda: 3, MemoryPages: 200},
	)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Chosen == VVM {
		t.Error("VVM chosen for a batch")
	}
	if len(res) != 4 || st.OuterDocs != 4 {
		t.Errorf("res=%d outer=%d", len(res), st.OuterDocs)
	}
	// Duplicate ids rejected.
	if _, err := NewBatch("dup", []*Document{
		NewDocument(1, map[uint32]int{1: 1}),
		NewDocument(1, map[uint32]int{2: 1}),
	}); err == nil {
		t.Error("duplicate batch ids: want error")
	}
}

func TestPublicMeasureStats(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	ws := NewWorkspace(WithPageSize(256))
	c1, err := ws.NewCollection("c1", randomDocuments(r, 20, 40, 10))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ws.NewCollection("c2", randomDocuments(r, 20, 40, 10))
	if err != nil {
		t.Fatal(err)
	}
	q := MeasureOverlap(c1, c2)
	if q <= 0 || q > 1 {
		t.Errorf("q = %v", q)
	}
	if got := MeasureOverlap(c1, c1); got != 1 {
		t.Errorf("self overlap = %v, want 1", got)
	}
	delta := MeasureDelta(c1, c2)
	if delta <= 0 || delta > 1 {
		t.Errorf("delta = %v", delta)
	}
}

func TestPublicLocalMapping(t *testing.T) {
	dict := NewDictionary()
	m, err := NewLocalMapping("sys", dict, map[uint32]string{10: "go", 20: "db"})
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 2 || m.System() != "sys" {
		t.Errorf("mapping = %s/%d", m.System(), m.Len())
	}
	doc := m.RemapDocument(NewDocument(0, map[uint32]int{10: 3, 20: 1}))
	g, ok := dict.Lookup("go")
	if !ok || doc.Weight(g) != 3 {
		t.Errorf("remap: %+v", doc)
	}
}

func TestPublicBuildErrors(t *testing.T) {
	ws := NewWorkspace()
	// Out-of-order document ids.
	if _, err := ws.NewCollection("bad", []*Document{NewDocument(5, map[uint32]int{1: 1})}); err == nil {
		t.Error("bad ids: want error")
	}
	// Duplicate collection name.
	if _, err := ws.NewCollection("dup", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ws.NewCollection("dup", nil); err == nil {
		t.Error("duplicate name: want error")
	}
	// Inverted file name collision.
	c, err := ws.NewCollection("c", []*Document{NewDocument(0, map[uint32]int{1: 1})})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ws.BuildInvertedFile(c); err != nil {
		t.Fatal(err)
	}
	if _, err := ws.BuildInvertedFile(c); err == nil {
		t.Error("duplicate inverted file: want error")
	}
	// OpenInvertedFile on a collection that has one works.
	inv, err := ws.OpenInvertedFile(c)
	if err != nil {
		t.Fatal(err)
	}
	if inv.Stats().Entries != 1 {
		t.Errorf("entries = %d", inv.Stats().Entries)
	}
	// OpenInvertedFile for a collection without one fails.
	other, _ := ws.NewCollection("other", nil)
	if _, err := ws.OpenInvertedFile(other); err == nil {
		t.Error("missing inverted file: want error")
	}
}

func TestPublicSimilarityWeightsMatch(t *testing.T) {
	a := NewDocument(0, map[uint32]int{1: 2, 2: 3})
	b := NewDocument(1, map[uint32]int{1: 4, 3: 1})
	if got := Similarity(a, b); math.Abs(got-8) > 1e-12 {
		t.Errorf("Similarity = %v, want 8", got)
	}
}
