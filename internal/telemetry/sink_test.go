package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenCollector builds a fully deterministic collector: fake clock,
// fixed counters, a histogram with an overflow hit, one span, two events.
func goldenCollector() *Collector {
	c := New(WithTraceCap(16), WithClock(fakeClock(time.Millisecond)))
	c.Counter("io.file.c1.inv.seq").Add(12)
	c.Counter("cache.lru.hits").Add(7)
	c.Counter("cache.lru.misses").Add(3)
	h := c.Histogram("io.readat.pages", []int64{1, 4, 16})
	for _, v := range []int64{1, 2, 4, 9, 100} {
		h.Observe(v)
	}
	sp := c.StartSpan(PhaseScan, "hvnl.preload")
	c.Event(PhasePlan, "estimate.hvnl.seq", 4200)
	sp.End()
	c.Event(PhaseIO, "fault.c1.bt", 5)
	return c
}

func golden(t *testing.T, sink Sink, file string) {
	t.Helper()
	var buf bytes.Buffer
	if err := sink.Export(&buf, goldenCollector().Snapshot()); err != nil {
		t.Fatalf("export: %v", err)
	}
	path := filepath.Join("testdata", file)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, buf.Bytes(), want)
	}
}

func TestTextSinkGolden(t *testing.T) { golden(t, TextSink{}, "snapshot.golden.txt") }
func TestJSONSinkGolden(t *testing.T) { golden(t, JSONSink{}, "snapshot.golden.json") }

func TestJSONExportValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := (JSONSink{}).Export(&buf, goldenCollector().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := ValidateJSON(buf.Bytes()); err != nil {
		t.Errorf("exporter output rejected by its own validator: %v", err)
	}
	// An empty (nil-collector) snapshot is also valid.
	buf.Reset()
	var nilC *Collector
	if err := (JSONSink{}).Export(&buf, nilC.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := ValidateJSON(buf.Bytes()); err != nil {
		t.Errorf("empty snapshot rejected: %v", err)
	}
}

func TestValidateJSONRejects(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"not-json", `{`, "invalid snapshot"},
		{"unknown-field", `{"counters":[],"histograms":[],"trace":[],"trace_dropped":0,"bogus":1}`, "invalid snapshot"},
		{"trailing-data", `{"counters":[],"histograms":[],"trace":[],"trace_dropped":0} {}`, "trailing data"},
		{"empty-counter-name", `{"counters":[{"name":"","value":1}],"histograms":[],"trace":[],"trace_dropped":0}`, "empty name"},
		{"histogram-no-buckets", `{"counters":[],"histograms":[{"name":"h","count":0,"sum":0,"buckets":[]}],"trace":[],"trace_dropped":0}`, "no buckets"},
		{"bounds-not-ascending", `{"counters":[],"histograms":[{"name":"h","count":2,"sum":0,"buckets":[{"le":10,"count":1},{"le":5,"count":0},{"le":9223372036854775807,"count":1}]}],"trace":[],"trace_dropped":0}`, "not ascending"},
		{"negative-bucket", `{"counters":[],"histograms":[{"name":"h","count":0,"sum":0,"buckets":[{"le":10,"count":-1},{"le":9223372036854775807,"count":1}]}],"trace":[],"trace_dropped":0}`, "negative count"},
		{"missing-overflow", `{"counters":[],"histograms":[{"name":"h","count":1,"sum":0,"buckets":[{"le":10,"count":1}]}],"trace":[],"trace_dropped":0}`, "overflow bucket"},
		{"count-mismatch", `{"counters":[],"histograms":[{"name":"h","count":5,"sum":0,"buckets":[{"le":10,"count":1},{"le":9223372036854775807,"count":1}]}],"trace":[],"trace_dropped":0}`, "sum to"},
		{"trace-seq-not-ascending", `{"counters":[],"histograms":[],"trace":[{"seq":2,"kind":"event","phase":"io","name":"a"},{"seq":1,"kind":"event","phase":"io","name":"b"}],"trace_dropped":0}`, "seq not ascending"},
		{"unknown-kind", `{"counters":[],"histograms":[],"trace":[{"seq":1,"kind":"blip","phase":"io","name":"a"}],"trace_dropped":0}`, "unknown kind"},
		{"missing-phase", `{"counters":[],"histograms":[],"trace":[{"seq":1,"kind":"event","phase":"","name":"a"}],"trace_dropped":0}`, "lacks phase or name"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateJSON([]byte(tc.doc))
			if err == nil {
				t.Fatal("validator accepted a malformed snapshot")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestSinkFor(t *testing.T) {
	if s, err := SinkFor("text"); err != nil || s == nil {
		t.Errorf("SinkFor(text) = %v, %v", s, err)
	}
	if s, err := SinkFor("json"); err != nil || s == nil {
		t.Errorf("SinkFor(json) = %v, %v", s, err)
	}
	if _, err := SinkFor("xml"); err == nil {
		t.Error("SinkFor(xml) accepted")
	}
}

func TestValidateJSONLines(t *testing.T) {
	valid := `{"seq":1,"kind":"span","phase":"scan","name":"a","start_ns":10,"dur_ns":5}
{"seq":2,"kind":"event","phase":"io","name":"b","start_ns":20,"value":3}

{"seq":7,"kind":"event","phase":"plan","name":"c","start_ns":30}`
	if err := ValidateJSONLines([]byte(valid)); err != nil {
		t.Fatalf("valid JSONL rejected: %v", err)
	}
	if err := ValidateJSONLines(nil); err != nil {
		t.Fatalf("empty stream rejected: %v", err)
	}
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"not-json", "{", "invalid trace entry"},
		{"unknown-field", `{"seq":1,"kind":"event","phase":"io","name":"a","bogus":1}`, "invalid trace entry"},
		{"trailing", `{"seq":1,"kind":"event","phase":"io","name":"a"} {}`, "trailing data"},
		{"seq", "{\"seq\":2,\"kind\":\"event\",\"phase\":\"io\",\"name\":\"a\"}\n{\"seq\":1,\"kind\":\"event\",\"phase\":\"io\",\"name\":\"b\"}", "seq not ascending"},
		{"kind", `{"seq":1,"kind":"blip","phase":"io","name":"a"}`, "unknown kind"},
		{"phase", `{"seq":1,"kind":"event","phase":"","name":"a"}`, "lacks phase or name"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateJSONLines([]byte(tc.doc))
			if err == nil {
				t.Fatal("validator accepted a malformed stream")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
