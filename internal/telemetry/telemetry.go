// Package telemetry is the execution instrumentation layer of the join
// system: atomic counters, bucketed histograms, and a bounded in-memory
// trace of phase-labelled spans and events, exported through a Sink.
//
// The paper's whole argument is built on counting — page reads, cache
// hits, pass counts — and this package makes those counts observable
// while a join runs instead of only in the coarse Stats struct after the
// fact. Every layer that does work reports here: iosim classifies page
// reads per file, the entry cache reports hits and evictions by policy,
// the joins mark their phases (scan, probe, score, flush, merge,
// finalize), and the integrated planner records its estimated cost next
// to the measured one.
//
// The package is zero-dependency and near-zero-overhead when disabled:
// a nil *Collector disables everything. All Collector, Counter,
// Histogram and Span methods are nil-safe no-ops, so instrumented code
// holds plain fields and calls them unconditionally — the disabled path
// is a predictable nil check, performs no allocation, and reads no
// clock. Instrumented hot loops resolve their counters once, outside the
// loop, so the per-operation cost is one atomic add when enabled and one
// branch when not.
//
// Collectors are safe for concurrent use: counters and histogram buckets
// are atomics, the trace ring takes a short mutex, and Snapshot can run
// while writers are active (the differential harness pins that results
// are identical with collection running concurrently).
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Phase labels used by the join system. The taxonomy is shared across
// algorithms so traces from different joins line up:
//
//	setup    — one-time structure loading (B+tree, index preload decision)
//	scan     — sequential sweeps of stored structures
//	probe    — per-outer-document index probing (HVNL)
//	score    — similarity computation over resident documents (HHNL)
//	flush    — per-document/per-pass accumulator drain into top-λ
//	merge    — merge-scan of inverted files (VVM) or per-worker merges
//	finalize — result emission
//	plan     — the integrated planner's estimated and measured costs
//	io       — storage-level events (fault injections)
const (
	PhaseSetup    = "setup"
	PhaseScan     = "scan"
	PhaseProbe    = "probe"
	PhaseScore    = "score"
	PhaseFlush    = "flush"
	PhaseMerge    = "merge"
	PhaseFinalize = "finalize"
	PhasePlan     = "plan"
	PhaseIO       = "io"
)

// DefaultTraceCap bounds the trace ring when WithTraceCap is not given.
const DefaultTraceCap = 1024

// Collector gathers counters, histograms and trace entries. The zero
// value is not usable; create with New. A nil *Collector is the disabled
// collector: every method is a cheap no-op.
type Collector struct {
	now   func() time.Time
	epoch time.Time

	mu       sync.Mutex
	counters map[string]*Counter
	hists    map[string]*Histogram

	traceMu  sync.Mutex
	trace    []Entry
	traceCap int
	seq      uint64
}

// Option configures a Collector.
type Option func(*Collector)

// WithTraceCap sets the trace ring capacity; older entries are
// overwritten once the ring is full. n must be positive.
func WithTraceCap(n int) Option {
	return func(c *Collector) {
		if n > 0 {
			c.traceCap = n
		}
	}
}

// WithClock substitutes the time source, letting tests produce
// deterministic span timings.
func WithClock(now func() time.Time) Option {
	return func(c *Collector) { c.now = now }
}

// New creates an enabled collector.
func New(opts ...Option) *Collector {
	c := &Collector{
		now:      time.Now,
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
		traceCap: DefaultTraceCap,
	}
	for _, o := range opts {
		o(c)
	}
	c.epoch = c.now()
	return c
}

// Enabled reports whether the collector records anything.
func (c *Collector) Enabled() bool { return c != nil }

// Counter returns the named counter, creating it on first use. A nil
// collector returns a nil counter, whose methods are no-ops — resolve
// counters once and call Add unconditionally.
func (c *Collector) Counter(name string) *Counter {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if ct, ok := c.counters[name]; ok {
		return ct
	}
	ct := &Counter{name: name}
	c.counters[name] = ct
	return ct
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds (ascending) on first use; later calls return the
// existing histogram regardless of bounds. A nil collector returns a nil
// histogram.
func (c *Collector) Histogram(name string, bounds []int64) *Histogram {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if h, ok := c.hists[name]; ok {
		return h
	}
	h := newHistogram(name, bounds)
	c.hists[name] = h
	return h
}

// Counter is a named atomic counter.
type Counter struct {
	name string
	v    atomic.Int64
}

// Add accumulates n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count, 0 on a nil counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Histogram is a named bucketed histogram over int64 observations
// (latencies in nanoseconds, sizes in bytes or pages). Buckets are
// defined by ascending inclusive upper bounds; one implicit overflow
// bucket catches everything above the last bound.
type Histogram struct {
	name   string
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	sum    atomic.Int64
	n      atomic.Int64
}

func newHistogram(name string, bounds []int64) *Histogram {
	b := make([]int64, len(bounds))
	copy(b, bounds)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{name: name, bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value. No-op on a nil histogram.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of observations, 0 on a nil histogram.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// ExpBuckets returns n ascending bucket bounds starting at start and
// multiplying by factor: the standard shape for latency and size
// histograms.
func ExpBuckets(start, factor int64, n int) []int64 {
	if start <= 0 || factor < 2 || n <= 0 {
		panic("telemetry: ExpBuckets needs start > 0, factor >= 2, n > 0")
	}
	out := make([]int64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Default bucket shapes shared by the instrumented layers.
var (
	// DefaultLatencyBuckets spans 1µs .. ~4.3s in powers of 4 (ns).
	DefaultLatencyBuckets = ExpBuckets(1000, 4, 12)
	// DefaultSizeBuckets spans 1 .. 32768 in powers of 2 (pages, cells,
	// entries — any small cardinality).
	DefaultSizeBuckets = ExpBuckets(1, 2, 16)
)

// Entry is one trace-ring record: a finished span or a point event.
type Entry struct {
	// Seq is the global record order; Snapshot returns entries in Seq
	// order with gaps only where the ring overwrote older entries.
	Seq uint64 `json:"seq"`
	// Kind is "span" or "event".
	Kind string `json:"kind"`
	// Phase is one of the Phase* labels.
	Phase string `json:"phase"`
	// Name identifies the specific operation, e.g. "hvnl.preload".
	Name string `json:"name"`
	// StartNanos is the offset from the collector's creation.
	StartNanos int64 `json:"start_ns"`
	// DurNanos is the span duration (spans only).
	DurNanos int64 `json:"dur_ns,omitempty"`
	// Value carries an event's payload (events only).
	Value int64 `json:"value,omitempty"`
}

// KindSpan and KindEvent are the two Entry kinds.
const (
	KindSpan  = "span"
	KindEvent = "event"
)

// Span is an in-flight phase measurement. The zero Span (from a nil
// collector) is a no-op.
type Span struct {
	c     *Collector
	phase string
	name  string
	start time.Time
}

// StartSpan begins a span in the given phase. On a nil collector no
// clock is read and the returned Span does nothing.
func (c *Collector) StartSpan(phase, name string) Span {
	if c == nil {
		return Span{}
	}
	return Span{c: c, phase: phase, name: name, start: c.now()}
}

// End finishes the span: one trace entry plus an observation in the
// phase's duration histogram ("phase.<phase>.ns").
func (s Span) End() {
	if s.c == nil {
		return
	}
	dur := s.c.now().Sub(s.start)
	s.c.record(Entry{
		Kind:       KindSpan,
		Phase:      s.phase,
		Name:       s.name,
		StartNanos: s.start.Sub(s.c.epoch).Nanoseconds(),
		DurNanos:   dur.Nanoseconds(),
	})
	s.c.Histogram("phase."+s.phase+".ns", DefaultLatencyBuckets).Observe(dur.Nanoseconds())
}

// Event records a point event with a value in the trace ring. No-op on a
// nil collector.
func (c *Collector) Event(phase, name string, value int64) {
	if c == nil {
		return
	}
	c.record(Entry{
		Kind:       KindEvent,
		Phase:      phase,
		Name:       name,
		StartNanos: c.now().Sub(c.epoch).Nanoseconds(),
		Value:      value,
	})
}

// record appends e to the bounded ring, overwriting the oldest entry
// when full.
func (c *Collector) record(e Entry) {
	c.traceMu.Lock()
	e.Seq = c.seq
	if len(c.trace) < c.traceCap {
		c.trace = append(c.trace, e)
	} else {
		c.trace[c.seq%uint64(c.traceCap)] = e
	}
	c.seq++
	c.traceMu.Unlock()
}

// CounterValue is one counter in a Snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Bucket is one histogram bucket in a Snapshot: the count of
// observations v with previousBound < v <= Le. The overflow bucket has
// Le == math.MaxInt64 and renders as "+Inf".
type Bucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramValue is one histogram in a Snapshot. Bucket counts are
// per-bucket (not cumulative) and sum to Count.
type HistogramValue struct {
	Name    string   `json:"name"`
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Buckets []Bucket `json:"buckets"`
}

// Snapshot is a point-in-time copy of everything the collector holds,
// ready for a Sink. Counters and histograms are sorted by name; trace
// entries are in Seq order, oldest surviving entry first.
type Snapshot struct {
	Counters     []CounterValue   `json:"counters"`
	Histograms   []HistogramValue `json:"histograms"`
	Trace        []Entry          `json:"trace"`
	TraceDropped uint64           `json:"trace_dropped"`
}

const maxInt64 = int64(^uint64(0) >> 1)

// Snapshot copies the current state. Safe to call while writers are
// active; counter and bucket reads are individually atomic (the snapshot
// is a consistent-enough view for reporting, not a serializable
// transaction). A nil collector returns an empty snapshot.
func (c *Collector) Snapshot() *Snapshot {
	if c == nil {
		return &Snapshot{}
	}
	s := &Snapshot{}
	c.mu.Lock()
	counters := make([]*Counter, 0, len(c.counters))
	for _, ct := range c.counters {
		counters = append(counters, ct)
	}
	hists := make([]*Histogram, 0, len(c.hists))
	for _, h := range c.hists {
		hists = append(hists, h)
	}
	c.mu.Unlock()

	sort.Slice(counters, func(i, j int) bool { return counters[i].name < counters[j].name })
	for _, ct := range counters {
		s.Counters = append(s.Counters, CounterValue{Name: ct.name, Value: ct.v.Load()})
	}
	sort.Slice(hists, func(i, j int) bool { return hists[i].name < hists[j].name })
	for _, h := range hists {
		hv := HistogramValue{Name: h.name, Count: h.n.Load(), Sum: h.sum.Load()}
		var inBuckets int64
		for i := range h.counts {
			le := maxInt64
			if i < len(h.bounds) {
				le = h.bounds[i]
			}
			n := h.counts[i].Load()
			inBuckets += n
			hv.Buckets = append(hv.Buckets, Bucket{Le: le, Count: n})
		}
		// Writers update count and buckets non-transactionally; pin the
		// exported invariant (bucket counts sum to Count) to what the
		// buckets actually held at read time.
		hv.Count = inBuckets
		s.Histograms = append(s.Histograms, hv)
	}

	c.traceMu.Lock()
	if c.seq > uint64(len(c.trace)) {
		s.TraceDropped = c.seq - uint64(len(c.trace))
	}
	start := c.seq % uint64(c.traceCap)
	for i := range c.trace {
		var e Entry
		if len(c.trace) < c.traceCap {
			e = c.trace[i]
		} else {
			e = c.trace[(start+uint64(i))%uint64(c.traceCap)]
		}
		s.Trace = append(s.Trace, e)
	}
	c.traceMu.Unlock()
	return s
}
