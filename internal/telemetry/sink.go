package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"
)

// Sink renders a Snapshot. The two stock sinks cover the command-line
// flag values: TextSink for humans, JSONSink for machines (validated by
// ValidateJSON and `make trace-smoke`).
type Sink interface {
	Export(w io.Writer, s *Snapshot) error
}

// SinkFor maps a -telemetry flag value to a sink.
func SinkFor(mode string) (Sink, error) {
	switch mode {
	case "text":
		return TextSink{}, nil
	case "json":
		return JSONSink{}, nil
	}
	return nil, fmt.Errorf("telemetry: unknown sink %q (want text or json)", mode)
}

// TextSink renders the snapshot as line-oriented text: one `counter`
// line per counter, a `histogram` header plus indented `le` lines per
// histogram, and one `trace` line per surviving ring entry.
type TextSink struct{}

// Export writes the text rendering.
func (TextSink) Export(w io.Writer, s *Snapshot) error {
	bw := &errWriter{w: w}
	bw.printf("# telemetry snapshot\n")
	for _, c := range s.Counters {
		bw.printf("counter %s %d\n", c.Name, c.Value)
	}
	for _, h := range s.Histograms {
		bw.printf("histogram %s count=%d sum=%d\n", h.Name, h.Count, h.Sum)
		for _, b := range h.Buckets {
			if b.Count == 0 {
				continue
			}
			bw.printf("  le %s: %d\n", formatLe(b.Le), b.Count)
		}
	}
	bw.printf("trace entries=%d dropped=%d\n", len(s.Trace), s.TraceDropped)
	for _, e := range s.Trace {
		switch e.Kind {
		case KindSpan:
			bw.printf("  %d span %s %s start=%s dur=%s\n",
				e.Seq, e.Phase, e.Name, time.Duration(e.StartNanos), time.Duration(e.DurNanos))
		default:
			bw.printf("  %d event %s %s value=%d start=%s\n",
				e.Seq, e.Phase, e.Name, e.Value, time.Duration(e.StartNanos))
		}
	}
	return bw.err
}

func formatLe(le int64) string {
	if le == maxInt64 {
		return "+Inf"
	}
	return fmt.Sprintf("%d", le)
}

// errWriter folds the repeated error checks of sequential Fprintf calls.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err == nil {
		_, e.err = fmt.Fprintf(e.w, format, args...)
	}
}

// JSONSink renders the snapshot as one indented JSON document — the
// exporter schema ValidateJSON checks.
type JSONSink struct{}

// Export writes the JSON rendering.
func (JSONSink) Export(w io.Writer, s *Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ValidateJSON checks data against the JSONSink exporter schema: a
// single Snapshot document with no unknown fields, non-empty names,
// ascending histogram bounds whose bucket counts sum to the histogram
// count, and strictly ascending trace sequence numbers of known kinds.
func ValidateJSON(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Snapshot
	if err := dec.Decode(&s); err != nil {
		return fmt.Errorf("telemetry: invalid snapshot: %w", err)
	}
	if dec.More() {
		return errors.New("telemetry: trailing data after snapshot")
	}
	for _, c := range s.Counters {
		if c.Name == "" {
			return errors.New("telemetry: counter with empty name")
		}
	}
	for _, h := range s.Histograms {
		if h.Name == "" {
			return errors.New("telemetry: histogram with empty name")
		}
		if len(h.Buckets) < 1 {
			return fmt.Errorf("telemetry: histogram %s has no buckets", h.Name)
		}
		var sum int64
		prev := int64(0)
		for i, b := range h.Buckets {
			if b.Count < 0 {
				return fmt.Errorf("telemetry: histogram %s bucket %d has negative count", h.Name, i)
			}
			if i > 0 && b.Le <= prev {
				return fmt.Errorf("telemetry: histogram %s bounds not ascending at %d", h.Name, i)
			}
			prev = b.Le
			sum += b.Count
		}
		if h.Buckets[len(h.Buckets)-1].Le != maxInt64 {
			return fmt.Errorf("telemetry: histogram %s lacks the overflow bucket", h.Name)
		}
		if sum != h.Count {
			return fmt.Errorf("telemetry: histogram %s bucket counts sum to %d, count is %d", h.Name, sum, h.Count)
		}
	}
	return ValidateEntries(s.Trace)
}

// ValidateEntries checks a sequence of trace entries against the
// exporter schema: strictly ascending sequence numbers, known kinds, and
// non-empty phase and name. It is the shared rule set behind the trace
// section of ValidateJSON and the JSONL streams of ValidateJSONLines.
func ValidateEntries(entries []Entry) error {
	var prevSeq uint64
	for i, e := range entries {
		if i > 0 && e.Seq <= prevSeq {
			return fmt.Errorf("telemetry: trace seq not ascending at %d", i)
		}
		prevSeq = e.Seq
		if e.Kind != KindSpan && e.Kind != KindEvent {
			return fmt.Errorf("telemetry: trace entry %d has unknown kind %q", e.Seq, e.Kind)
		}
		if e.Phase == "" || e.Name == "" {
			return fmt.Errorf("telemetry: trace entry %d lacks phase or name", e.Seq)
		}
	}
	return nil
}

// ValidateJSONLines checks data against the streamed-trace schema: one
// JSON trace entry per non-empty line (the /traces endpoint's JSONL
// format), no unknown fields, obeying the same entry rules as a
// snapshot's trace section. An empty stream is valid: a quiet ring has
// nothing to say.
func ValidateJSONLines(data []byte) error {
	var entries []Entry
	for lineNo, line := range bytes.Split(data, []byte("\n")) {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		var e Entry
		if err := dec.Decode(&e); err != nil {
			return fmt.Errorf("telemetry: line %d: invalid trace entry: %w", lineNo+1, err)
		}
		if dec.More() {
			return fmt.Errorf("telemetry: line %d: trailing data after trace entry", lineNo+1)
		}
		entries = append(entries, e)
	}
	return ValidateEntries(entries)
}
