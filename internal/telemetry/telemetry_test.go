package telemetry

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock returns a deterministic clock that advances by step on every
// reading, starting at the Unix epoch.
func fakeClock(step time.Duration) func() time.Time {
	base := time.Unix(0, 0)
	n := 0
	return func() time.Time {
		n++
		return base.Add(time.Duration(n) * step)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	c := New()
	h := c.Histogram("b", []int64{10, 100, 1000})
	// Bounds are inclusive upper bounds: v lands in the first bucket with
	// v <= le. Exercise every edge, both sides.
	for _, v := range []int64{-5, 0, 10} {
		h.Observe(v) // bucket 0 (le 10)
	}
	for _, v := range []int64{11, 100} {
		h.Observe(v) // bucket 1 (le 100)
	}
	for _, v := range []int64{101, 1000} {
		h.Observe(v) // bucket 2 (le 1000)
	}
	for _, v := range []int64{1001, maxInt64} {
		h.Observe(v) // overflow bucket (le +Inf)
	}
	s := c.Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatalf("histograms = %d, want 1", len(s.Histograms))
	}
	hv := s.Histograms[0]
	wantCounts := []int64{3, 2, 2, 2}
	wantLe := []int64{10, 100, 1000, maxInt64}
	if len(hv.Buckets) != len(wantCounts) {
		t.Fatalf("buckets = %d, want %d", len(hv.Buckets), len(wantCounts))
	}
	for i, b := range hv.Buckets {
		if b.Le != wantLe[i] || b.Count != wantCounts[i] {
			t.Errorf("bucket %d = {le %d, count %d}, want {le %d, count %d}",
				i, b.Le, b.Count, wantLe[i], wantCounts[i])
		}
	}
	if hv.Count != 9 {
		t.Errorf("count = %d, want 9", hv.Count)
	}
	if h.Count() != 9 {
		t.Errorf("Count() = %d, want 9", h.Count())
	}
}

func TestHistogramBoundsSortedAndReused(t *testing.T) {
	c := New()
	h1 := c.Histogram("h", []int64{100, 1, 10}) // unsorted input is sorted
	h1.Observe(5)
	s := c.Snapshot()
	got := s.Histograms[0].Buckets
	if got[0].Le != 1 || got[1].Le != 10 || got[2].Le != 100 {
		t.Errorf("bounds not sorted: %+v", got)
	}
	if got[1].Count != 1 {
		t.Errorf("5 landed in the wrong bucket: %+v", got)
	}
	// A second resolve with different bounds returns the existing histogram.
	h2 := c.Histogram("h", []int64{7})
	if h1 != h2 {
		t.Error("re-resolving a histogram by name created a new one")
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 5)
	want := []int64{1, 2, 4, 8, 16}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets(1,2,5) = %v, want %v", got, want)
		}
	}
	for _, bad := range [][3]int64{{0, 2, 3}, {1, 1, 3}, {1, 2, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ExpBuckets(%v) did not panic", bad)
				}
			}()
			ExpBuckets(bad[0], bad[1], int(bad[2]))
		}()
	}
}

func TestCountersConcurrent(t *testing.T) {
	c := New()
	const goroutines, adds = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Resolve inside the goroutine so the map path races too.
			ct := c.Counter("shared")
			h := c.Histogram("shared.h", DefaultSizeBuckets)
			for i := 0; i < adds; i++ {
				ct.Add(1)
				h.Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if v := c.Counter("shared").Value(); v != goroutines*adds {
		t.Errorf("counter = %d, want %d", v, goroutines*adds)
	}
	if n := c.Histogram("shared.h", nil).Count(); n != goroutines*adds {
		t.Errorf("histogram count = %d, want %d", n, goroutines*adds)
	}
}

func TestTraceRingBounded(t *testing.T) {
	const cap = 8
	c := New(WithTraceCap(cap), WithClock(fakeClock(time.Microsecond)))
	for i := 0; i < 3*cap; i++ {
		c.Event(PhaseIO, fmt.Sprintf("e%d", i), int64(i))
	}
	s := c.Snapshot()
	if len(s.Trace) != cap {
		t.Fatalf("trace len = %d, want %d", len(s.Trace), cap)
	}
	if s.TraceDropped != 2*cap {
		t.Errorf("dropped = %d, want %d", s.TraceDropped, 2*cap)
	}
	// Oldest surviving entry first, strictly ascending.
	for i, e := range s.Trace {
		if want := uint64(2*cap + i); e.Seq != want {
			t.Errorf("trace[%d].Seq = %d, want %d", i, e.Seq, want)
		}
	}
}

func TestTraceUnderCap(t *testing.T) {
	c := New(WithTraceCap(16))
	c.Event(PhasePlan, "only", 1)
	s := c.Snapshot()
	if len(s.Trace) != 1 || s.TraceDropped != 0 {
		t.Fatalf("trace = %d entries dropped %d, want 1 and 0", len(s.Trace), s.TraceDropped)
	}
	if s.Trace[0].Kind != KindEvent || s.Trace[0].Name != "only" || s.Trace[0].Value != 1 {
		t.Errorf("entry = %+v", s.Trace[0])
	}
}

func TestSpanRecordsDuration(t *testing.T) {
	// The fake clock advances 1ms per reading: epoch at t=1ms, span start
	// at t=2ms, span end at t=3ms → StartNanos 1ms, DurNanos 1ms.
	c := New(WithClock(fakeClock(time.Millisecond)))
	sp := c.StartSpan(PhaseScan, "sweep")
	sp.End()
	s := c.Snapshot()
	if len(s.Trace) != 1 {
		t.Fatalf("trace len = %d, want 1", len(s.Trace))
	}
	e := s.Trace[0]
	if e.Kind != KindSpan || e.Phase != PhaseScan || e.Name != "sweep" {
		t.Errorf("entry = %+v", e)
	}
	if e.StartNanos != int64(time.Millisecond) || e.DurNanos != int64(time.Millisecond) {
		t.Errorf("start=%d dur=%d, want both %d", e.StartNanos, e.DurNanos, int64(time.Millisecond))
	}
	// End also feeds the per-phase duration histogram.
	if n := c.Histogram("phase.scan.ns", nil).Count(); n != 1 {
		t.Errorf("phase histogram count = %d, want 1", n)
	}
}

func TestNilCollectorIsDisabled(t *testing.T) {
	var c *Collector
	if c.Enabled() {
		t.Error("nil collector reports enabled")
	}
	// None of these may panic.
	c.Counter("x").Add(3)
	if v := c.Counter("x").Value(); v != 0 {
		t.Errorf("nil counter value = %d", v)
	}
	c.Histogram("h", DefaultSizeBuckets).Observe(5)
	if n := c.Histogram("h", nil).Count(); n != 0 {
		t.Errorf("nil histogram count = %d", n)
	}
	c.StartSpan(PhaseScan, "s").End()
	Span{}.End()
	c.Event(PhaseIO, "e", 1)
	s := c.Snapshot()
	if len(s.Counters) != 0 || len(s.Histograms) != 0 || len(s.Trace) != 0 {
		t.Errorf("nil snapshot not empty: %+v", s)
	}
}

// The disabled path must not allocate: instrumented code holds nil
// collectors in the common case and every primitive must stay a branch.
func TestDisabledPathDoesNotAllocate(t *testing.T) {
	var c *Collector
	ct := c.Counter("x")
	h := c.Histogram("h", DefaultSizeBuckets)
	cases := []struct {
		name string
		fn   func()
	}{
		{"counter-add", func() { ct.Add(1) }},
		{"histogram-observe", func() { h.Observe(7) }},
		{"span", func() { c.StartSpan(PhaseScan, "s").End() }},
		{"event", func() { c.Event(PhaseIO, "e", 1) }},
		{"resolve-counter", func() { c.Counter("x") }},
		{"resolve-histogram", func() { c.Histogram("h", nil) }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(100, tc.fn); allocs != 0 {
			t.Errorf("%s: %v allocs on the disabled path, want 0", tc.name, allocs)
		}
	}
}

func TestSnapshotSortedByName(t *testing.T) {
	c := New()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		c.Counter(n).Add(1)
		c.Histogram("h."+n, []int64{1}).Observe(1)
	}
	s := c.Snapshot()
	for i := 1; i < len(s.Counters); i++ {
		if s.Counters[i-1].Name >= s.Counters[i].Name {
			t.Errorf("counters not sorted: %q before %q", s.Counters[i-1].Name, s.Counters[i].Name)
		}
	}
	for i := 1; i < len(s.Histograms); i++ {
		if s.Histograms[i-1].Name >= s.Histograms[i].Name {
			t.Errorf("histograms not sorted: %q before %q", s.Histograms[i-1].Name, s.Histograms[i].Name)
		}
	}
}

// Snapshot must be callable while writers are active without tripping the
// race detector or producing an inconsistent bucket/count pair.
func TestSnapshotDuringWrites(t *testing.T) {
	c := New(WithTraceCap(32))
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ct := c.Counter("w")
		h := c.Histogram("wh", DefaultSizeBuckets)
		i := int64(0)
		for {
			select {
			case <-done:
				return
			default:
				ct.Add(1)
				h.Observe(i % 64)
				c.Event(PhaseIO, "tick", i)
				i++
			}
		}
	}()
	for i := 0; i < 50; i++ {
		s := c.Snapshot()
		for _, hv := range s.Histograms {
			var sum int64
			for _, b := range hv.Buckets {
				sum += b.Count
			}
			if sum != hv.Count {
				t.Fatalf("histogram %s: buckets sum to %d, count %d", hv.Name, sum, hv.Count)
			}
		}
		for j := 1; j < len(s.Trace); j++ {
			if s.Trace[j].Seq <= s.Trace[j-1].Seq {
				t.Fatalf("trace seq not ascending at %d", j)
			}
		}
	}
	close(done)
	wg.Wait()
}
