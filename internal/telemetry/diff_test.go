package telemetry

import (
	"strings"
	"testing"
	"time"
)

// fixedClock returns a clock that advances step per call.
func fixedClock(step time.Duration) func() time.Time {
	t := time.Unix(0, 0)
	return func() time.Time {
		t = t.Add(step)
		return t
	}
}

func TestDiffCounters(t *testing.T) {
	c := New()
	c.Counter("a").Add(3)
	c.Counter("b").Add(10)
	prev := c.Snapshot()

	c.Counter("a").Add(4)
	c.Counter("c").Add(1)
	cur := c.Snapshot()

	d := cur.Diff(prev)
	want := map[string]int64{"a": 4, "b": 0, "c": 1}
	if len(d.Counters) != len(want) {
		t.Fatalf("got %d counters, want %d", len(d.Counters), len(want))
	}
	for _, cv := range d.Counters {
		if want[cv.Name] != cv.Value {
			t.Errorf("counter %s: got %d, want %d", cv.Name, cv.Value, want[cv.Name])
		}
	}
}

// TestDiffAcrossRuns pins the reset rule: a counter smaller than in prev
// (a fresh collector in a new run) reports its full current value, never
// a negative delta.
func TestDiffAcrossRuns(t *testing.T) {
	old := New()
	old.Counter("a").Add(100)
	old.Counter("gone").Add(5)
	old.Histogram("h", []int64{1, 2}).Observe(1)
	old.Histogram("h", []int64{1, 2}).Observe(1)
	prev := old.Snapshot()

	fresh := New()
	fresh.Counter("a").Add(7)
	fresh.Histogram("h", []int64{1, 2}).Observe(2)
	cur := fresh.Snapshot()

	d := cur.Diff(prev)
	if len(d.Counters) != 1 || d.Counters[0].Name != "a" || d.Counters[0].Value != 7 {
		t.Fatalf("reset counter delta: got %+v, want a=7 only", d.Counters)
	}
	h := d.Histograms[0]
	// Bucket counts shrank (le=1 went 2 -> 0), so the histogram is
	// treated as new: current values pass through.
	if h.Count != 1 || h.Sum != 2 {
		t.Fatalf("reset histogram: got count=%d sum=%d, want 1/2", h.Count, h.Sum)
	}
}

func TestDiffHistograms(t *testing.T) {
	c := New()
	h := c.Histogram("h", []int64{10, 100})
	h.Observe(5)
	h.Observe(50)
	prev := c.Snapshot()

	h.Observe(5)
	h.Observe(500)
	cur := c.Snapshot()

	d := cur.Diff(prev)
	if len(d.Histograms) != 1 {
		t.Fatalf("got %d histograms, want 1", len(d.Histograms))
	}
	dh := d.Histograms[0]
	if dh.Count != 2 || dh.Sum != 505 {
		t.Errorf("delta count=%d sum=%d, want 2/505", dh.Count, dh.Sum)
	}
	wantBuckets := []int64{1, 0, 1} // le=10: one new 5; le=100: none; +Inf: the 500
	for i, b := range dh.Buckets {
		if b.Count != wantBuckets[i] {
			t.Errorf("bucket %d: got %d, want %d", i, b.Count, wantBuckets[i])
		}
	}
}

func TestDiffTrace(t *testing.T) {
	c := New(WithClock(fixedClock(time.Millisecond)))
	c.Event(PhaseIO, "e0", 0)
	c.Event(PhaseIO, "e1", 1)
	prev := c.Snapshot()

	c.Event(PhaseIO, "e2", 2)
	c.Event(PhaseIO, "e3", 3)
	cur := c.Snapshot()

	d := cur.Diff(prev)
	if len(d.Trace) != 2 {
		t.Fatalf("got %d new entries, want 2", len(d.Trace))
	}
	for i, e := range d.Trace {
		if want := "e" + string(rune('2'+i)); e.Name != want {
			t.Errorf("entry %d: got %s, want %s", i, e.Name, want)
		}
	}

	// A restarted collector (lower max seq) contributes its whole trace.
	fresh := New(WithClock(fixedClock(time.Millisecond)))
	fresh.Event(PhaseIO, "n0", 0)
	d2 := fresh.Snapshot().Diff(cur)
	if len(d2.Trace) != 1 || d2.Trace[0].Name != "n0" {
		t.Fatalf("restart trace diff: got %+v, want the full fresh trace", d2.Trace)
	}
}

func TestDiffTraceDropped(t *testing.T) {
	c := New(WithTraceCap(2), WithClock(fixedClock(time.Millisecond)))
	c.Event(PhaseIO, "a", 0)
	c.Event(PhaseIO, "b", 0)
	c.Event(PhaseIO, "c", 0)
	prev := c.Snapshot() // dropped=1
	c.Event(PhaseIO, "d", 0)
	cur := c.Snapshot() // dropped=2
	if d := cur.Diff(prev); d.TraceDropped != 1 {
		t.Fatalf("dropped delta: got %d, want 1", d.TraceDropped)
	}
}

// TestDiffIsValidSnapshot pins that a Diff round-trips through the JSON
// sink and its validator: rate computation and export share one schema.
func TestDiffIsValidSnapshot(t *testing.T) {
	c := New(WithClock(fixedClock(time.Millisecond)))
	c.Counter("x").Add(1)
	c.Histogram("h", DefaultSizeBuckets).Observe(3)
	prev := c.Snapshot()
	c.Counter("x").Add(2)
	c.Histogram("h", DefaultSizeBuckets).Observe(9)
	c.StartSpan(PhaseScan, "s").End()
	d := c.Snapshot().Diff(prev)

	var sb strings.Builder
	if err := (JSONSink{}).Export(&sb, d); err != nil {
		t.Fatal(err)
	}
	if err := ValidateJSON([]byte(sb.String())); err != nil {
		t.Fatalf("diff snapshot fails the exporter schema: %v", err)
	}
}

func TestDiffNil(t *testing.T) {
	var s *Snapshot
	if d := s.Diff(nil); len(d.Counters) != 0 || len(d.Trace) != 0 {
		t.Fatalf("nil diff not empty: %+v", d)
	}
	c := New()
	c.Counter("a").Add(2)
	if d := c.Snapshot().Diff(nil); len(d.Counters) != 1 || d.Counters[0].Value != 2 {
		t.Fatalf("diff against nil should pass values through: %+v", d)
	}
}
