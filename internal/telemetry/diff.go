package telemetry

// Diff returns the change from prev to s as a new Snapshot: counter
// deltas, per-bucket histogram deltas, and the trace entries recorded
// after prev's newest entry. It is the primitive behind scrape-to-scrape
// rate computation in the metrics exporter.
//
// Snapshots are compared by name, not by origin, so prev may come from a
// different collector — an earlier process run, a restarted service —
// where raw subtraction would go negative. Diff applies the usual
// monotone-counter reset rule: when a counter (or histogram bucket)
// is smaller than it was in prev, the source is assumed to have
// restarted and the full current value counts as the delta. Counters
// that exist only in prev are dropped (they no longer exist); counters
// that exist only in s are reported whole.
//
// The result preserves Snapshot's ordering invariants (counters and
// histograms sorted by name, trace in ascending Seq order), so a Diff
// is itself a valid Snapshot for any Sink.
func (s *Snapshot) Diff(prev *Snapshot) *Snapshot {
	if s == nil {
		return &Snapshot{}
	}
	out := &Snapshot{}
	if prev == nil {
		prev = &Snapshot{}
	}

	prevCounters := make(map[string]int64, len(prev.Counters))
	for _, c := range prev.Counters {
		prevCounters[c.Name] = c.Value
	}
	for _, c := range s.Counters {
		d := c.Value
		if pv, ok := prevCounters[c.Name]; ok && pv <= c.Value {
			d = c.Value - pv
		}
		out.Counters = append(out.Counters, CounterValue{Name: c.Name, Value: d})
	}

	prevHists := make(map[string]HistogramValue, len(prev.Histograms))
	for _, h := range prev.Histograms {
		prevHists[h.Name] = h
	}
	for _, h := range s.Histograms {
		out.Histograms = append(out.Histograms, diffHistogram(h, prevHists))
	}

	// Trace: everything newer than prev's newest entry. A current ring
	// whose newest Seq is below prev's means a different (restarted)
	// collector: the whole current trace is new.
	var prevMax uint64
	havePrev := len(prev.Trace) > 0
	if havePrev {
		prevMax = prev.Trace[len(prev.Trace)-1].Seq
	}
	var curMax uint64
	if len(s.Trace) > 0 {
		curMax = s.Trace[len(s.Trace)-1].Seq
	}
	restarted := havePrev && len(s.Trace) > 0 && curMax < prevMax
	for _, e := range s.Trace {
		if restarted || !havePrev || e.Seq > prevMax {
			out.Trace = append(out.Trace, e)
		}
	}
	if restarted || s.TraceDropped < prev.TraceDropped {
		out.TraceDropped = s.TraceDropped
	} else {
		out.TraceDropped = s.TraceDropped - prev.TraceDropped
	}
	return out
}

// diffHistogram subtracts prev's same-named histogram bucket by bucket.
// A histogram with different bounds or any shrunken bucket is treated as
// new (reset rule): the current values are the delta.
func diffHistogram(h HistogramValue, prev map[string]HistogramValue) HistogramValue {
	out := HistogramValue{Name: h.Name, Count: h.Count, Sum: h.Sum}
	out.Buckets = make([]Bucket, len(h.Buckets))
	copy(out.Buckets, h.Buckets)

	p, ok := prev[h.Name]
	if !ok || len(p.Buckets) != len(h.Buckets) {
		return out
	}
	for i, b := range h.Buckets {
		if p.Buckets[i].Le != b.Le || p.Buckets[i].Count > b.Count {
			return out
		}
	}
	if p.Sum > h.Sum || p.Count > h.Count {
		return out
	}
	for i := range out.Buckets {
		out.Buckets[i].Count -= p.Buckets[i].Count
	}
	out.Sum -= p.Sum
	out.Count -= p.Count
	return out
}
