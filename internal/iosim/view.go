package iosim

import (
	"errors"
	"fmt"
	"sort"
)

// ErrReadOnlyView is returned when a write is attempted through a view
// file: views are read-only sessions over an immutable store.
var ErrReadOnlyView = errors.New("iosim: view files are read-only")

// ErrViewClosed is returned when a view file is read after its view was
// closed.
var ErrViewClosed = errors.New("iosim: view is closed")

// View is a read-only I/O session over a Disk.
//
// The simulated disk models one head per file, so two concurrent readers
// of the same file would corrupt each other's sequential/random
// classification and interleave their counters. A View gives one logical
// request its own session: every file accessed through the view gets a
// private head position (starting parked) and private Stats, while the
// page bytes are served from the shared immutable store. Faults inject
// and telemetry counters fire exactly as for direct reads.
//
// Views are cheap — a small struct plus one clone File per distinct file
// touched — and safe for concurrent use alongside other views and direct
// disk access. Close merges the view's counters back into the per-file
// and disk-wide totals, so aggregate accounting is preserved no matter
// how reads interleaved while the view was open.
type View struct {
	disk *Disk

	// All fields below are guarded by disk.mu.
	stats    Stats           // disk-level counters for this view
	lastFile *File           // this view's shared-head position
	clones   map[*File]*File // base file -> this view's session file
	closed   bool
}

// View opens a new read-only session on the disk.
func (d *Disk) View() *View {
	return &View{disk: d, clones: make(map[*File]*File)}
}

// Disk returns the disk the view reads from.
func (v *View) Disk() *Disk { return v.disk }

// File returns the view's session file for base. The clone shares the
// base file's pages (and telemetry counters) but owns its head position
// — initially parked — and its Stats. Calling File twice with the same
// base returns the same clone, so pointer identity within one view is
// preserved (I/O trackers that deduplicate by pointer keep working).
// Passing a clone (of this or another view) resolves to its base first;
// passing nil returns nil.
func (v *View) File(base *File) *File {
	if base == nil {
		return nil
	}
	if base.base != nil {
		base = base.base
	}
	if base.disk != v.disk {
		panic(fmt.Sprintf("iosim: view on disk %p cannot adopt file %q from disk %p", v.disk, base.name, base.disk))
	}
	v.disk.mu.Lock()
	defer v.disk.mu.Unlock()
	if c, ok := v.clones[base]; ok {
		return c
	}
	c := &File{disk: v.disk, name: base.name, head: -1, base: base, view: v}
	v.clones[base] = c
	return c
}

// Stats returns the I/O performed through the view so far. Until Close,
// these counters are visible only here; afterwards they are part of the
// per-file and disk totals.
func (v *View) Stats() Stats {
	v.disk.mu.Lock()
	defer v.disk.mu.Unlock()
	return v.stats
}

// FileStat is one file's I/O counters within a view session.
type FileStat struct {
	Name  string
	Stats Stats
}

// FileStats returns the per-file I/O performed through the view so
// far, sorted by file name — the per-request breakdown a trace span
// attaches before the view closes. Files the view never touched do
// not appear.
func (v *View) FileStats() []FileStat {
	v.disk.mu.Lock()
	defer v.disk.mu.Unlock()
	out := make([]FileStat, 0, len(v.clones))
	for base, c := range v.clones {
		out = append(out, FileStat{Name: base.name, Stats: c.stats})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ParkHeads parks every session head of the view (and the view's shared
// head), mirroring Disk.ParkHeads for one session.
func (v *View) ParkHeads() {
	v.disk.mu.Lock()
	defer v.disk.mu.Unlock()
	for _, c := range v.clones {
		c.head = -1
	}
	v.lastFile = nil
}

// Close merges the view's counters into the per-file and disk-wide
// totals and invalidates the session: further reads through its files
// return ErrViewClosed. Close is idempotent.
func (v *View) Close() {
	v.disk.mu.Lock()
	defer v.disk.mu.Unlock()
	if v.closed {
		return
	}
	v.closed = true
	for base, c := range v.clones {
		base.stats.Add(c.stats)
	}
	v.disk.stats.Add(v.stats)
}

// Base returns the underlying shared file when f is a view session file,
// or f itself otherwise.
func (f *File) Base() *File {
	if f.base != nil {
		return f.base
	}
	return f
}

// pagesLocked returns the page store backing f — the base file's pages
// for a view clone. Called with the disk lock held.
func (f *File) pagesLocked() [][]byte {
	if f.base != nil {
		return f.base.pages
	}
	return f.pages
}
