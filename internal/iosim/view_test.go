package iosim

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"textjoin/internal/telemetry"
)

// viewFixture builds a disk with nFiles files of nPages pages each and
// zeroes the build-time counters.
func viewFixture(t *testing.T, nFiles, nPages int) (*Disk, []*File) {
	t.Helper()
	d := NewDisk(iosimTestPageSize())
	files := make([]*File, nFiles)
	for i := range files {
		f, err := d.Create(fmt.Sprintf("f%d", i))
		if err != nil {
			t.Fatal(err)
		}
		for p := 0; p < nPages; p++ {
			if _, err := f.AppendPage([]byte{byte(i), byte(p)}); err != nil {
				t.Fatal(err)
			}
		}
		files[i] = f
	}
	d.ResetStats()
	return d, files
}

func iosimTestPageSize() Option { return WithPageSize(64) }

// scanThrough reads every page of f in order through the given file
// handle (a base file or a view clone).
func scanThrough(t *testing.T, f *File) {
	t.Helper()
	for p := int64(0); p < f.Pages(); p++ {
		if _, err := f.ReadPage(p); err != nil {
			t.Fatal(err)
		}
	}
}

func TestViewStatsMatchSerialRun(t *testing.T) {
	// Serial baseline: scan the file directly on a pristine disk.
	d, files := viewFixture(t, 1, 8)
	scanThrough(t, files[0])
	want := d.Stats()

	// Same scan through a view on a disk whose base head was left
	// mid-file by other traffic: the view starts parked, so its stats
	// must match the pristine serial run, not inherit the base head.
	d2, files2 := viewFixture(t, 1, 8)
	if _, err := files2[0].ReadPage(3); err != nil {
		t.Fatal(err)
	}
	base := d2.Stats()
	fileBase := files2[0].Stats()
	v := d2.View()
	scanThrough(t, v.File(files2[0]))
	if got := v.Stats(); got != want {
		t.Errorf("view stats = %+v, want %+v", got, want)
	}
	// Until Close the disk totals exclude the view's reads.
	if got := d2.Stats(); got != base {
		t.Errorf("disk stats before Close = %+v, want %+v", got, base)
	}
	v.Close()
	sum := base
	sum.Add(want)
	if got := d2.Stats(); got != sum {
		t.Errorf("disk stats after Close = %+v, want %+v", got, sum)
	}
	// Per-file totals merged too (on top of the build-time writes that
	// ResetStats leaves in the per-file counters).
	fileSum := fileBase
	fileSum.Add(want)
	if got := files2[0].Stats(); got != fileSum {
		t.Errorf("file stats after Close = %+v, want %+v", got, fileSum)
	}
}

func TestViewConcurrentScansIdentical(t *testing.T) {
	// Serial reference for one interleaved-file scan.
	d, files := viewFixture(t, 2, 16)
	ref := d.View()
	for p := int64(0); p < 16; p++ {
		for _, f := range files {
			if _, err := ref.File(f).ReadPage(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := ref.Stats()
	ref.Close()

	const n = 8
	stats := make([]Stats, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			v := d.View()
			defer v.Close()
			for p := int64(0); p < 16; p++ {
				for _, f := range files {
					if _, err := v.File(f).ReadPage(p); err != nil {
						t.Error(err)
						return
					}
				}
			}
			stats[i] = v.Stats()
		}()
	}
	wg.Wait()
	for i, got := range stats {
		if got != want {
			t.Errorf("view %d stats = %+v, want %+v", i, got, want)
		}
	}
	// Aggregate accounting: disk totals carry every view's reads.
	var sum Stats
	sum.Add(want) // the serial reference view
	for range stats {
		sum.Add(want)
	}
	if got := d.Stats(); got != sum {
		t.Errorf("disk stats = %+v, want %+v", got, sum)
	}
}

func TestViewFileIdentity(t *testing.T) {
	d, files := viewFixture(t, 1, 2)
	v := d.View()
	c := v.File(files[0])
	if c2 := v.File(files[0]); c2 != c {
		t.Error("View.File is not memoized per base file")
	}
	if c2 := v.File(c); c2 != c {
		t.Error("View.File of a clone does not resolve to the same clone")
	}
	w := d.View()
	wc := w.File(c) // a foreign clone resolves to its base first
	if wc == c {
		t.Error("views share a clone")
	}
	if wc.Base() != files[0] || c.Base() != files[0] {
		t.Error("Base does not resolve to the shared file")
	}
	if v.File(nil) != nil {
		t.Error("View.File(nil) != nil")
	}
}

func TestViewReadOnly(t *testing.T) {
	d, files := viewFixture(t, 1, 2)
	c := d.View().File(files[0])
	if _, err := c.AppendPage([]byte{1}); !errors.Is(err, ErrReadOnlyView) {
		t.Errorf("AppendPage err = %v, want ErrReadOnlyView", err)
	}
	if err := c.WritePage(0, []byte{1}); !errors.Is(err, ErrReadOnlyView) {
		t.Errorf("WritePage err = %v, want ErrReadOnlyView", err)
	}
	// Metadata and byte reads delegate to the base store.
	if c.Pages() != 2 || c.Size() != files[0].Size() || c.Name() != files[0].Name() {
		t.Error("clone metadata differs from base")
	}
	got, err := c.ReadAt(0, 2)
	if err != nil || got[0] != 0 || got[1] != 0 {
		t.Errorf("ReadAt through view = %v, %v", got, err)
	}
}

func TestViewClosed(t *testing.T) {
	d, files := viewFixture(t, 1, 2)
	v := d.View()
	c := v.File(files[0])
	v.Close()
	v.Close() // idempotent
	if _, err := c.ReadPage(0); !errors.Is(err, ErrViewClosed) {
		t.Errorf("read after Close err = %v, want ErrViewClosed", err)
	}
}

func TestViewFaultInjection(t *testing.T) {
	d, files := viewFixture(t, 1, 4)
	d.InjectFaults(FaultPlan{FailAfterReads: 1})
	v := d.View()
	defer v.Close()
	c := v.File(files[0])
	if _, err := c.ReadPage(0); err != nil {
		t.Fatalf("read 1: %v", err)
	}
	if _, err := c.ReadPage(1); !errors.Is(err, ErrInjected) {
		t.Errorf("read 2 err = %v, want ErrInjected", err)
	}
}

func TestViewTelemetry(t *testing.T) {
	d, files := viewFixture(t, 1, 4)
	tel := telemetry.New()
	d.SetCollector(tel)
	v := d.View()
	scanThrough(t, v.File(files[0]))
	v.Close()
	counters := make(map[string]int64)
	for _, c := range tel.Snapshot().Counters {
		counters[c.Name] = c.Value
	}
	if got := counters["io.file.f0.rand"]; got != 1 {
		t.Errorf("io.file.f0.rand = %d, want 1", got)
	}
	if got := counters["io.file.f0.seq"]; got != 3 {
		t.Errorf("io.file.f0.seq = %d, want 3", got)
	}
}

func TestViewSharedHeadIsolation(t *testing.T) {
	// On a shared-head disk, alternating files is all-random. Two views
	// alternating concurrently must each see their own shared head, not
	// perturb each other or the base.
	d := NewDisk(WithPageSize(64), WithSharedHead())
	fa, _ := d.Create("a")
	fb, _ := d.Create("b")
	for p := 0; p < 4; p++ {
		fa.AppendPage(nil)
		fb.AppendPage(nil)
	}
	d.ResetStats()

	run := func(v *View) Stats {
		ca, cb := v.File(fa), v.File(fb)
		for p := int64(0); p < 4; p++ {
			ca.ReadPage(p)
			cb.ReadPage(p)
		}
		return v.Stats()
	}
	want := run(d.View())
	if want.RandReads != 8 || want.SeqReads != 0 {
		t.Fatalf("shared-head alternation should be all-random, got %+v", want)
	}

	// A view that stays on one file gets sequential runs even while the
	// alternating view thrashes "its" head.
	v1, v2 := d.View(), d.View()
	c1 := v1.File(fa)
	c1.ReadPage(0)
	v2.File(fb).ReadPage(0) // would break v1's run if heads were shared across views
	c1.ReadPage(1)
	if got := v1.Stats(); got.SeqReads != 1 || got.RandReads != 1 {
		t.Errorf("view shared head leaked across views: %+v", got)
	}
}
