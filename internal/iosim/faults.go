package iosim

import (
	"errors"
	"fmt"
)

// ErrInjected is the base error wrapped by injected faults, so tests can
// assert errors.Is(err, ErrInjected).
var ErrInjected = errors.New("iosim: injected fault")

// FaultPlan schedules read failures for fault-injection testing. The zero
// value injects nothing.
//
// Faults let the test suite verify that every scanner, builder and join
// algorithm propagates storage errors instead of masking them — the
// failure paths a purely happy-path suite never exercises.
type FaultPlan struct {
	// FailAfterReads makes the n+1-th page read (counting from the
	// moment the plan is armed) fail when > 0.
	FailAfterReads int64
	// FailFile restricts the failure to reads of the named file; empty
	// matches any file.
	FailFile string
	// Repeat keeps failing every read after the trigger instead of
	// failing once.
	Repeat bool
}

type faultState struct {
	plan  FaultPlan
	reads int64
	fired bool
}

// InjectFaults arms a fault plan on the disk, replacing any previous one.
// Passing the zero FaultPlan disarms injection.
func (d *Disk) InjectFaults(plan FaultPlan) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if plan == (FaultPlan{}) {
		d.faults = nil
		return
	}
	d.faults = &faultState{plan: plan}
}

// checkFault is called with the disk lock held before a read is served.
func (d *Disk) checkFault(f *File) error {
	fs := d.faults
	if fs == nil {
		return nil
	}
	if fs.plan.FailFile != "" && fs.plan.FailFile != f.name {
		return nil
	}
	fs.reads++
	if fs.reads <= fs.plan.FailAfterReads {
		return nil
	}
	if fs.fired && !fs.plan.Repeat {
		return nil
	}
	fs.fired = true
	// Record the fault before surfacing it, so operators can correlate
	// clean error propagation in the join with the storage-level event.
	d.tel.Event("io", "fault."+f.name, fs.reads)
	return fmt.Errorf("%w: read %d of %q", ErrInjected, fs.reads, f.name)
}
