package iosim

import (
	"errors"
	"testing"
)

func faultDisk(t *testing.T) (*Disk, *File, *File) {
	t.Helper()
	d := NewDisk(WithPageSize(16))
	a, err := d.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Create("b")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		a.AppendPage(nil)
		b.AppendPage(nil)
	}
	return d, a, b
}

func TestFaultAfterReads(t *testing.T) {
	d, a, _ := faultDisk(t)
	d.InjectFaults(FaultPlan{FailAfterReads: 2})
	if _, err := a.ReadPage(0); err != nil {
		t.Fatalf("read 1: %v", err)
	}
	if _, err := a.ReadPage(1); err != nil {
		t.Fatalf("read 2: %v", err)
	}
	if _, err := a.ReadPage(2); !errors.Is(err, ErrInjected) {
		t.Fatalf("read 3 err = %v, want ErrInjected", err)
	}
	// One-shot by default: the next read succeeds.
	if _, err := a.ReadPage(3); err != nil {
		t.Fatalf("read after fault: %v", err)
	}
}

func TestFaultRepeat(t *testing.T) {
	d, a, _ := faultDisk(t)
	d.InjectFaults(FaultPlan{FailAfterReads: 1, Repeat: true})
	a.ReadPage(0)
	for i := 0; i < 3; i++ {
		if _, err := a.ReadPage(1); !errors.Is(err, ErrInjected) {
			t.Fatalf("repeat read %d err = %v", i, err)
		}
	}
}

func TestFaultFileScoped(t *testing.T) {
	d, a, b := faultDisk(t)
	d.InjectFaults(FaultPlan{FailAfterReads: 0, FailFile: "b", Repeat: true})
	if _, err := a.ReadPage(0); err != nil {
		t.Fatalf("a unaffected: %v", err)
	}
	if _, err := b.ReadPage(0); !errors.Is(err, ErrInjected) {
		t.Fatalf("b err = %v, want ErrInjected", err)
	}
}

func TestFaultDisarm(t *testing.T) {
	d, a, _ := faultDisk(t)
	d.InjectFaults(FaultPlan{FailAfterReads: 0, Repeat: true})
	if _, err := a.ReadPage(0); !errors.Is(err, ErrInjected) {
		t.Fatal("fault not armed")
	}
	d.InjectFaults(FaultPlan{})
	if _, err := a.ReadPage(0); err != nil {
		t.Fatalf("after disarm: %v", err)
	}
}

func TestFaultDoesNotCountAsRead(t *testing.T) {
	d, a, _ := faultDisk(t)
	d.InjectFaults(FaultPlan{FailAfterReads: 0, Repeat: true})
	a.ReadPage(0)
	if got := d.Stats().Reads(); got != 0 {
		t.Errorf("failed read counted in stats: %d", got)
	}
}

func TestFaultThroughReadAt(t *testing.T) {
	d, a, _ := faultDisk(t)
	d.InjectFaults(FaultPlan{FailAfterReads: 1})
	if _, err := a.ReadAt(0, 32); !errors.Is(err, ErrInjected) {
		t.Fatalf("ReadAt err = %v, want ErrInjected", err)
	}
}
