// Package iosim provides a simulated paged storage device.
//
// The paper analyzes the three text-join algorithms purely by their I/O
// cost, abstracting the storage hardware into two numbers: the page size P
// and the cost ratio α of a random page read over a sequential page read.
// This package implements exactly that abstraction: files are sequences of
// fixed-size pages, every read is classified as sequential or random from
// the position of the per-file head, and the accumulated cost is
//
//	cost = sequentialReads + α · randomReads.
//
// Each file tracks its own head position, which models the paper's
// assumption that each collection is read by a dedicated drive with no
// interference from other I/O requests. A Disk-wide shared head mode is
// available to model the opposite, contended, scenario (the paper's
// "random" cost variants).
package iosim

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"textjoin/internal/telemetry"
)

// DefaultPageSize is the page size used throughout the paper (4 KB).
const DefaultPageSize = 4096

// DefaultAlpha is the paper's base value for the random/sequential cost ratio.
const DefaultAlpha = 5.0

// Common errors returned by Disk and File operations.
var (
	ErrFileExists   = errors.New("iosim: file already exists")
	ErrFileNotFound = errors.New("iosim: file not found")
	ErrPageRange    = errors.New("iosim: page index out of range")
	ErrClosed       = errors.New("iosim: disk is closed")
)

// Stats accumulates I/O counters. Counters are page-granular: reading a
// document that spans three pages accounts for three page reads.
type Stats struct {
	// SeqReads counts page reads that continued from the file head.
	SeqReads int64
	// RandReads counts page reads that required repositioning the head.
	RandReads int64
	// Writes counts page writes. Writes are not part of the paper's cost
	// model (all structures are built ahead of the join) but are tracked
	// for completeness.
	Writes int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.SeqReads += other.SeqReads
	s.RandReads += other.RandReads
	s.Writes += other.Writes
}

// Reads returns the total number of page reads.
func (s Stats) Reads() int64 { return s.SeqReads + s.RandReads }

// Cost returns the paper's I/O cost: sequential reads count 1 unit each,
// random reads count alpha units each.
func (s Stats) Cost(alpha float64) float64 {
	return float64(s.SeqReads) + alpha*float64(s.RandReads)
}

// String formats the counters for logs and test output.
func (s Stats) String() string {
	return fmt.Sprintf("seq=%d rand=%d writes=%d", s.SeqReads, s.RandReads, s.Writes)
}

// Sub returns s minus other, useful for measuring a phase between two
// snapshots.
func (s Stats) Sub(other Stats) Stats {
	return Stats{
		SeqReads:  s.SeqReads - other.SeqReads,
		RandReads: s.RandReads - other.RandReads,
		Writes:    s.Writes - other.Writes,
	}
}

// Disk is a collection of simulated paged files sharing one set of I/O
// counters.
//
// Disk is safe for concurrent use.
type Disk struct {
	mu       sync.Mutex
	pageSize int
	alpha    float64
	files    map[string]*File
	stats    Stats
	closed   bool

	// readDelay, when positive, charges every page read that much real
	// wall-clock time, outside the disk lock — the device-latency knob
	// for serving benchmarks. Zero (the default) keeps reads free, so
	// analytic runs and tests are unaffected. Immutable after NewDisk.
	readDelay time.Duration

	// sharedHead, when true, makes all files share a single head: any
	// read on file A after a read on file B is random even if it would
	// have been sequential on A's own head. Models a single contended
	// device.
	sharedHead bool
	lastFile   *File
	faults     *faultState

	// tel, when set, receives per-file read/write counters, record-fetch
	// size and latency histograms, and fault events. nil disables all
	// instrumentation (the default): the per-read cost is one nil check.
	tel          *telemetry.Collector
	telReadPages *telemetry.Histogram
	telReadNanos *telemetry.Histogram
}

// Option configures a Disk.
type Option func(*Disk)

// WithPageSize sets the page size in bytes. The default is 4096.
func WithPageSize(n int) Option {
	return func(d *Disk) { d.pageSize = n }
}

// WithAlpha sets the random/sequential cost ratio used by Cost.
func WithAlpha(alpha float64) Option {
	return func(d *Disk) { d.alpha = alpha }
}

// WithSharedHead makes all files on the disk share one head position,
// modeling a single contended device instead of one dedicated drive per
// collection.
func WithSharedHead() Option {
	return func(d *Disk) { d.sharedHead = true }
}

// WithReadDelay charges every successful page read d of real wall-clock
// time, slept outside the disk lock so concurrent readers overlap their
// waits exactly as they would on a real device. The accounting (Stats,
// cost model, telemetry) is unchanged — the knob only makes simulated
// I/O take real time, which is what serving benchmarks need to expose
// the difference between serialized and concurrent execution.
func WithReadDelay(d time.Duration) Option {
	return func(dk *Disk) { dk.readDelay = d }
}

// NewDisk creates an empty simulated disk.
func NewDisk(opts ...Option) *Disk {
	d := &Disk{
		pageSize: DefaultPageSize,
		alpha:    DefaultAlpha,
		files:    make(map[string]*File),
	}
	for _, o := range opts {
		o(d)
	}
	if d.pageSize <= 0 {
		panic("iosim: page size must be positive")
	}
	return d
}

// PageSize returns the disk's page size in bytes.
func (d *Disk) PageSize() int { return d.pageSize }

// Alpha returns the disk's random/sequential cost ratio.
func (d *Disk) Alpha() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.alpha
}

// SetAlpha changes the cost ratio; it affects only future Cost calls, the
// per-class counters are unchanged.
func (d *Disk) SetAlpha(alpha float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.alpha = alpha
}

// SetCollector attaches a telemetry collector to the disk: every file
// (present and future) gets per-file sequential/random read and write
// counters ("io.file.<name>.seq" etc.), record fetches feed size and
// latency histograms, and injected faults record "io" events. Passing
// nil detaches instrumentation.
func (d *Disk) SetCollector(c *telemetry.Collector) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tel = c
	if c != nil {
		d.telReadPages = c.Histogram("io.readat.pages", telemetry.DefaultSizeBuckets)
		d.telReadNanos = c.Histogram("io.readat.ns", telemetry.DefaultLatencyBuckets)
	} else {
		d.telReadPages, d.telReadNanos = nil, nil
	}
	for _, f := range d.files {
		f.attachTelemetryLocked()
	}
}

// readHists returns the record-fetch histograms under the disk lock.
func (d *Disk) readHists() (pages, nanos *telemetry.Histogram) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.telReadPages, d.telReadNanos
}

// Create creates a new empty file.
func (d *Disk) Create(name string) (*File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, ErrClosed
	}
	if _, ok := d.files[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrFileExists, name)
	}
	f := &File{disk: d, name: name, head: -1}
	f.attachTelemetryLocked()
	d.files[name] = f
	return f, nil
}

// Open returns an existing file.
func (d *Disk) Open(name string) (*File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, ErrClosed
	}
	f, ok := d.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrFileNotFound, name)
	}
	return f, nil
}

// Remove deletes a file and frees its pages.
func (d *Disk) Remove(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.files[name]; !ok {
		return fmt.Errorf("%w: %q", ErrFileNotFound, name)
	}
	delete(d.files, name)
	return nil
}

// Files returns the names of all files in lexical order.
func (d *Disk) Files() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	names := make([]string, 0, len(d.files))
	for name := range d.files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Stats returns a snapshot of the accumulated I/O counters.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the I/O counters, e.g. after the build phase so that
// only join-time I/O is measured.
func (d *Disk) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Stats{}
}

// ParkHeads parks every file's head (and the shared head, if any) so
// the next read of each file counts as random regardless of prior
// activity. Benchmarks park between measurements so a cell's
// sequential/random classification does not depend on where the
// previous cell left the heads.
func (d *Disk) ParkHeads() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, f := range d.files {
		f.head = -1
	}
	d.lastFile = nil
}

// Cost returns the accumulated cost under the disk's α.
func (d *Disk) Cost() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats.Cost(d.alpha)
}

// Close invalidates the disk; subsequent Create/Open calls fail. Files
// already opened remain readable (the simulation has no real resources to
// release); Close exists so that users of the package can model lifecycle
// errors.
func (d *Disk) Close() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
}

// File is a sequence of fixed-size pages on a Disk.
type File struct {
	disk  *Disk
	name  string
	pages [][]byte
	head  int64 // page index of the last page read; -1 = parked
	stats Stats

	// base and view are set on the session files handed out by
	// View.File: page bytes come from base, head and stats are private
	// to this session, and the counters merge into base on View.Close.
	base *File
	view *View

	// Telemetry counters, resolved once per file when a collector is
	// attached; nil (no-op) otherwise. View clones delegate to their
	// base file's counters so SetCollector keeps working mid-session.
	telSeq    *telemetry.Counter
	telRand   *telemetry.Counter
	telWrites *telemetry.Counter
}

// attachTelemetryLocked resolves the file's counters against the disk's
// collector. Called with the disk lock held.
func (f *File) attachTelemetryLocked() {
	c := f.disk.tel
	if c == nil {
		f.telSeq, f.telRand, f.telWrites = nil, nil, nil
		return
	}
	f.telSeq = c.Counter("io.file." + f.name + ".seq")
	f.telRand = c.Counter("io.file." + f.name + ".rand")
	f.telWrites = c.Counter("io.file." + f.name + ".writes")
}

// Name returns the file name.
func (f *File) Name() string { return f.name }

// PageSize returns the page size of the disk holding the file.
func (f *File) PageSize() int { return f.disk.pageSize }

// Disk returns the disk holding the file.
func (f *File) Disk() *Disk { return f.disk }

// Pages returns the current number of pages in the file.
func (f *File) Pages() int64 {
	f.disk.mu.Lock()
	defer f.disk.mu.Unlock()
	return int64(len(f.pagesLocked()))
}

// Size returns the file size in bytes.
func (f *File) Size() int64 {
	f.disk.mu.Lock()
	defer f.disk.mu.Unlock()
	return int64(len(f.pagesLocked())) * int64(f.disk.pageSize)
}

// Stats returns the per-file I/O counters.
func (f *File) Stats() Stats {
	f.disk.mu.Lock()
	defer f.disk.mu.Unlock()
	return f.stats
}

// ParkHead forgets the head position so that the next read, even at the
// next sequential position, counts as random. Used to model yielding the
// device between phases.
func (f *File) ParkHead() {
	f.disk.mu.Lock()
	defer f.disk.mu.Unlock()
	f.head = -1
}

// AppendPage appends one page. data may be shorter than the page size, in
// which case the remainder is zero; longer data is an error.
func (f *File) AppendPage(data []byte) (int64, error) {
	f.disk.mu.Lock()
	defer f.disk.mu.Unlock()
	if f.base != nil {
		return 0, fmt.Errorf("%w: append to %q", ErrReadOnlyView, f.name)
	}
	if len(data) > f.disk.pageSize {
		return 0, fmt.Errorf("iosim: page data %d bytes exceeds page size %d", len(data), f.disk.pageSize)
	}
	page := make([]byte, f.disk.pageSize)
	copy(page, data)
	f.pages = append(f.pages, page)
	f.stats.Writes++
	f.disk.stats.Writes++
	f.telWrites.Add(1)
	return int64(len(f.pages) - 1), nil
}

// WritePage overwrites an existing page (or appends when idx equals the
// current page count).
func (f *File) WritePage(idx int64, data []byte) error {
	f.disk.mu.Lock()
	defer f.disk.mu.Unlock()
	if f.base != nil {
		return fmt.Errorf("%w: write to %q", ErrReadOnlyView, f.name)
	}
	if len(data) > f.disk.pageSize {
		return fmt.Errorf("iosim: page data %d bytes exceeds page size %d", len(data), f.disk.pageSize)
	}
	switch {
	case idx == int64(len(f.pages)):
		page := make([]byte, f.disk.pageSize)
		copy(page, data)
		f.pages = append(f.pages, page)
	case idx >= 0 && idx < int64(len(f.pages)):
		page := make([]byte, f.disk.pageSize)
		copy(page, data)
		f.pages[idx] = page
	default:
		return fmt.Errorf("%w: page %d of %d", ErrPageRange, idx, len(f.pages))
	}
	f.stats.Writes++
	f.disk.stats.Writes++
	f.telWrites.Add(1)
	return nil
}

// ReadPage reads page idx and classifies the read as sequential or random
// based on the head position. The returned slice aliases the stored page
// and must not be modified.
func (f *File) ReadPage(idx int64) ([]byte, error) {
	f.disk.mu.Lock()
	page, err := f.readPageLocked(idx)
	f.disk.mu.Unlock()
	if err == nil && f.disk.readDelay > 0 {
		time.Sleep(f.disk.readDelay)
	}
	return page, err
}

func (f *File) readPageLocked(idx int64) ([]byte, error) {
	pages := f.pagesLocked()
	if idx < 0 || idx >= int64(len(pages)) {
		return nil, fmt.Errorf("%w: page %d of %d in %q", ErrPageRange, idx, len(pages), f.name)
	}
	if f.view != nil && f.view.closed {
		return nil, fmt.Errorf("%w: read of %q", ErrViewClosed, f.name)
	}
	if err := f.disk.checkFault(f); err != nil {
		return nil, err
	}
	// A view session carries its own shared-head position and its own
	// disk-level counters; direct reads use the disk's.
	lastFile, aggStats, tel := &f.disk.lastFile, &f.disk.stats, f
	if f.view != nil {
		lastFile, aggStats, tel = &f.view.lastFile, &f.view.stats, f.base
	}
	sequential := f.head >= 0 && idx == f.head+1
	if f.disk.sharedHead && *lastFile != f {
		sequential = false
	}
	if sequential {
		f.stats.SeqReads++
		aggStats.SeqReads++
		tel.telSeq.Add(1)
	} else {
		f.stats.RandReads++
		aggStats.RandReads++
		tel.telRand.Add(1)
	}
	f.head = idx
	*lastFile = f
	return pages[idx], nil
}

// ReadRange reads pages [first, first+n) in order, invoking fn for each
// page. The first page of the range is classified by head position; the
// rest are sequential.
func (f *File) ReadRange(first, n int64, fn func(idx int64, page []byte) error) error {
	for i := int64(0); i < n; i++ {
		f.disk.mu.Lock()
		page, err := f.readPageLocked(first + i)
		f.disk.mu.Unlock()
		if err != nil {
			return err
		}
		if err := fn(first+i, page); err != nil {
			return err
		}
	}
	return nil
}

// ReadAt copies length bytes starting at byte offset off, reading every
// page the range spans. It is the primitive used to fetch a packed record
// (document or inverted-file entry) that may cross page boundaries.
func (f *File) ReadAt(off, length int64) ([]byte, error) {
	if length < 0 || off < 0 {
		return nil, fmt.Errorf("iosim: negative offset or length (off=%d len=%d)", off, length)
	}
	if hPages, hNanos := f.disk.readHists(); hPages != nil {
		// This branch only runs with telemetry enabled, so the clock
		// reads are telemetry timing, not simulation state: no counted
		// cost or stored byte ever depends on them.
		start := time.Now() //lint:ignore wallclock readat latency histogram is telemetry timing on the enabled path only
		out, err := f.readAt(off, length)
		hNanos.Observe(time.Since(start).Nanoseconds()) //lint:ignore wallclock readat latency histogram is telemetry timing on the enabled path only
		hPages.Observe(SpannedPages(off, length, f.disk.pageSize))
		return out, err
	}
	return f.readAt(off, length)
}

func (f *File) readAt(off, length int64) ([]byte, error) {
	out := make([]byte, 0, length)
	ps := int64(f.disk.pageSize)
	for remaining := length; remaining > 0; {
		pageIdx := off / ps
		pageOff := off % ps
		page, err := f.ReadPage(pageIdx)
		if err != nil {
			return nil, err
		}
		take := ps - pageOff
		if take > remaining {
			take = remaining
		}
		out = append(out, page[pageOff:pageOff+take]...)
		off += take
		remaining -= take
	}
	return out, nil
}

// Writer returns an appending byte writer that packs bytes tightly into
// pages ("tightly packed" in the paper's terms). Call Flush to write the
// final partial page.
func (f *File) Writer() *Writer {
	return &Writer{file: f, buf: make([]byte, 0, f.disk.pageSize)}
}

// Writer packs a byte stream into consecutive pages of a File.
type Writer struct {
	file    *File
	buf     []byte
	written int64
	flushed bool
}

// Offset returns the byte offset at which the next Write will land.
func (w *Writer) Offset() int64 { return w.written }

// Write appends p to the stream. It never fails until the underlying file
// does; the error is reported then.
func (w *Writer) Write(p []byte) (int, error) {
	if w.flushed {
		return 0, errors.New("iosim: write after Flush")
	}
	total := len(p)
	ps := w.file.disk.pageSize
	for len(p) > 0 {
		space := ps - len(w.buf)
		take := space
		if take > len(p) {
			take = len(p)
		}
		w.buf = append(w.buf, p[:take]...)
		p = p[take:]
		if len(w.buf) == ps {
			if _, err := w.file.AppendPage(w.buf); err != nil {
				return total - len(p), err
			}
			w.buf = w.buf[:0]
		}
	}
	w.written += int64(total)
	return total, nil
}

// Flush writes the final partial page, if any. The writer cannot be used
// afterwards.
func (w *Writer) Flush() error {
	if w.flushed {
		return nil
	}
	w.flushed = true
	if len(w.buf) == 0 {
		return nil
	}
	_, err := w.file.AppendPage(w.buf)
	w.buf = nil
	return err
}

// PagesForBytes returns the number of pages that n tightly packed bytes
// occupy under the given page size (the paper's ceiling convention).
func PagesForBytes(n int64, pageSize int) int64 {
	if n <= 0 {
		return 0
	}
	ps := int64(pageSize)
	return (n + ps - 1) / ps
}

// SpannedPages returns how many pages the byte range [off, off+length)
// touches: the page count actually read when fetching a packed record at a
// random position.
func SpannedPages(off, length int64, pageSize int) int64 {
	if length <= 0 {
		return 0
	}
	ps := int64(pageSize)
	first := off / ps
	last := (off + length - 1) / ps
	return last - first + 1
}
