package iosim

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// snapHeader serializes a snapshot prefix from explicit field values so
// tests can craft malformed streams byte by byte.
func snapHeader(t *testing.T, fields ...any) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, f := range fields {
		if s, ok := f.(string); ok {
			buf.WriteString(s)
			continue
		}
		if err := binary.Write(&buf, binary.LittleEndian, f); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestReadDiskRejectsCorruptHeaders pins every guard in ReadDisk: each
// crafted stream must fail with ErrBadSnapshot — never a panic, and
// never an allocation sized by the attacker-controlled count.
func TestReadDiskRejectsCorruptHeaders(t *testing.T) {
	valid := func() []byte {
		d := NewDisk(WithPageSize(32))
		f, _ := d.Create("f")
		f.AppendPage([]byte("data"))
		var buf bytes.Buffer
		if _, err := d.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", snapHeader(t, uint32(0xdeadbeef))},
		{"truncated magic", valid[:2]},
		{"unsupported version", snapHeader(t, uint32(snapshotMagic), uint16(99))},
		{"truncated after version", snapHeader(t, uint32(snapshotMagic), uint16(snapshotVersion))},
		{"zero page size", snapHeader(t, uint32(snapshotMagic), uint16(snapshotVersion), uint32(0))},
		{"huge page size", snapHeader(t, uint32(snapshotMagic), uint16(snapshotVersion), uint32(1<<30))},
		{"oversized file count", snapHeader(t, uint32(snapshotMagic), uint16(snapshotVersion),
			uint32(32), float64(5), uint32(maxSnapshotFiles+1))},
		{"zero name length", snapHeader(t, uint32(snapshotMagic), uint16(snapshotVersion),
			uint32(32), float64(5), uint32(1), uint16(0))},
		{"oversized name length", snapHeader(t, uint32(snapshotMagic), uint16(snapshotVersion),
			uint32(32), float64(5), uint32(1), uint16(maxSnapshotNameLen+1))},
		{"truncated name", snapHeader(t, uint32(snapshotMagic), uint16(snapshotVersion),
			uint32(32), float64(5), uint32(1), uint16(4), "fi")},
		{"oversized page count", snapHeader(t, uint32(snapshotMagic), uint16(snapshotVersion),
			uint32(32), float64(5), uint32(1), uint16(1), "f", uint32(maxSnapshotPages+1))},
		{"declared pages never arrive", snapHeader(t, uint32(snapshotMagic), uint16(snapshotVersion),
			uint32(32), float64(5), uint32(1), uint16(1), "f", uint32(1<<20))},
		{"duplicate file name", snapHeader(t, uint32(snapshotMagic), uint16(snapshotVersion),
			uint32(32), float64(5), uint32(2),
			uint16(1), "f", uint32(0),
			uint16(1), "f", uint32(0))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadDisk(bytes.NewReader(tc.data)); !errors.Is(err, ErrBadSnapshot) {
				t.Errorf("err = %v, want ErrBadSnapshot", err)
			}
		})
	}

	// Every truncation point of a valid snapshot fails cleanly too.
	for cut := 0; cut < len(valid); cut++ {
		if _, err := ReadDisk(bytes.NewReader(valid[:cut])); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("truncated at %d: err = %v, want ErrBadSnapshot", cut, err)
		}
	}
	if _, err := ReadDisk(bytes.NewReader(valid)); err != nil {
		t.Fatalf("intact snapshot rejected: %v", err)
	}
}
