package iosim

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
)

// Snapshot format: the simulated disk can be serialized to a real file
// and restored later, so corpora and index structures built once (e.g. by
// cmd/corpusgen or a test fixture) can be reused across processes.
//
//	magic    uint32  "TJDK"
//	version  uint16
//	pageSize uint32
//	alpha    float64 (IEEE 754 bits)
//	files    uint32
//	per file:
//	  nameLen uint16, name bytes
//	  pages   uint32, pages × pageSize raw bytes
//
// I/O statistics and head positions are deliberately not persisted: a
// restored disk starts cold, as a real machine would after a reboot.

const (
	snapshotMagic   = 0x544a444b // "TJDK"
	snapshotVersion = 1

	// Parsing limits: a snapshot claiming more than these is rejected
	// up front instead of trusted for allocation sizing, so a truncated
	// or corrupt header can never drive an out-of-memory allocation.
	maxSnapshotNameLen = 1 << 12
	maxSnapshotFiles   = 1 << 20
	maxSnapshotPages   = 1 << 28
)

// ErrBadSnapshot is returned when a snapshot cannot be parsed.
var ErrBadSnapshot = errors.New("iosim: bad snapshot")

// WriteTo serializes the disk's files. It implements io.WriterTo.
func (d *Disk) WriteTo(w io.Writer) (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	bw := bufio.NewWriter(w)
	var written int64
	put := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		written += int64(binary.Size(v))
		return nil
	}
	if err := put(uint32(snapshotMagic)); err != nil {
		return written, err
	}
	if err := put(uint16(snapshotVersion)); err != nil {
		return written, err
	}
	if err := put(uint32(d.pageSize)); err != nil {
		return written, err
	}
	if err := put(d.alpha); err != nil {
		return written, err
	}
	names := make([]string, 0, len(d.files))
	for name := range d.files {
		names = append(names, name)
	}
	// Sorted for deterministic snapshots.
	sort.Strings(names)
	if err := put(uint32(len(names))); err != nil {
		return written, err
	}
	for _, name := range names {
		f := d.files[name]
		if err := put(uint16(len(name))); err != nil {
			return written, err
		}
		n, err := bw.WriteString(name)
		written += int64(n)
		if err != nil {
			return written, err
		}
		if err := put(uint32(len(f.pages))); err != nil {
			return written, err
		}
		for _, page := range f.pages {
			n, err := bw.Write(page)
			written += int64(n)
			if err != nil {
				return written, err
			}
		}
	}
	return written, bw.Flush()
}

// ReadDisk restores a disk from a snapshot.
func ReadDisk(r io.Reader) (*Disk, error) {
	br := bufio.NewReader(r)
	var magic uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if magic != snapshotMagic {
		return nil, fmt.Errorf("%w: magic %#x", ErrBadSnapshot, magic)
	}
	var version uint16
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if version != snapshotVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadSnapshot, version)
	}
	var pageSize uint32
	if err := binary.Read(br, binary.LittleEndian, &pageSize); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if pageSize == 0 || pageSize > 1<<24 {
		return nil, fmt.Errorf("%w: page size %d", ErrBadSnapshot, pageSize)
	}
	var alpha float64
	if err := binary.Read(br, binary.LittleEndian, &alpha); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	d := NewDisk(WithPageSize(int(pageSize)), WithAlpha(alpha))
	var nFiles uint32
	if err := binary.Read(br, binary.LittleEndian, &nFiles); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if nFiles > maxSnapshotFiles {
		return nil, fmt.Errorf("%w: %d files", ErrBadSnapshot, nFiles)
	}
	for i := uint32(0); i < nFiles; i++ {
		var nameLen uint16
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		if nameLen == 0 || nameLen > maxSnapshotNameLen {
			return nil, fmt.Errorf("%w: file name length %d", ErrBadSnapshot, nameLen)
		}
		nameBytes := make([]byte, nameLen)
		if _, err := io.ReadFull(br, nameBytes); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		f, err := d.Create(string(nameBytes))
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		var nPages uint32
		if err := binary.Read(br, binary.LittleEndian, &nPages); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		if nPages > maxSnapshotPages {
			return nil, fmt.Errorf("%w: %d pages in %q", ErrBadSnapshot, nPages, nameBytes)
		}
		// Grow the page table as pages actually arrive rather than
		// trusting the declared count, so truncation fails on the first
		// missing page with only that page's memory committed.
		for p := uint32(0); p < nPages; p++ {
			page := make([]byte, pageSize)
			if _, err := io.ReadFull(br, page); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
			}
			f.pages = append(f.pages, page)
		}
	}
	// Restoration is not I/O in the model's sense.
	d.ResetStats()
	return d, nil
}
