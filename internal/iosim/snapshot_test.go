package iosim

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSnapshotRoundTrip(t *testing.T) {
	d := NewDisk(WithPageSize(64), WithAlpha(7))
	a, _ := d.Create("alpha")
	b, _ := d.Create("beta")
	for i := 0; i < 5; i++ {
		a.AppendPage([]byte{byte(i), 0xAA})
	}
	b.AppendPage([]byte("hello"))
	a.ReadPage(0) // stats must NOT survive the snapshot

	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadDisk(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.PageSize() != 64 || restored.Alpha() != 7 {
		t.Errorf("pageSize=%d alpha=%v", restored.PageSize(), restored.Alpha())
	}
	if restored.Stats() != (Stats{}) {
		t.Errorf("restored stats = %+v, want zero", restored.Stats())
	}
	files := restored.Files()
	if len(files) != 2 || files[0] != "alpha" || files[1] != "beta" {
		t.Fatalf("files = %v", files)
	}
	ra, err := restored.Open("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if ra.Pages() != 5 {
		t.Fatalf("alpha pages = %d", ra.Pages())
	}
	for i := int64(0); i < 5; i++ {
		page, err := ra.ReadPage(i)
		if err != nil {
			t.Fatal(err)
		}
		if page[0] != byte(i) || page[1] != 0xAA {
			t.Errorf("page %d = %v", i, page[:2])
		}
	}
	rb, _ := restored.Open("beta")
	page, _ := rb.ReadPage(0)
	if string(page[:5]) != "hello" {
		t.Errorf("beta page = %q", page[:5])
	}
}

func TestSnapshotEmptyDisk(t *testing.T) {
	d := NewDisk()
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadDisk(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored.Files()) != 0 {
		t.Errorf("files = %v", restored.Files())
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	mk := func() *bytes.Buffer {
		d := NewDisk(WithPageSize(32))
		for _, name := range []string{"z", "a", "m"} {
			f, _ := d.Create(name)
			f.AppendPage([]byte(name))
		}
		var buf bytes.Buffer
		if _, err := d.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return &buf
	}
	if !bytes.Equal(mk().Bytes(), mk().Bytes()) {
		t.Error("snapshots of identical disks differ")
	}
}

func TestReadDiskErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte{1, 2, 3},
		[]byte{0, 0, 0, 0, 0, 0}, // wrong magic
	}
	for _, c := range cases {
		if _, err := ReadDisk(bytes.NewReader(c)); !errors.Is(err, ErrBadSnapshot) {
			t.Errorf("ReadDisk(%v) err = %v, want ErrBadSnapshot", c, err)
		}
	}
	// Valid header but truncated body.
	d := NewDisk(WithPageSize(32))
	f, _ := d.Create("f")
	f.AppendPage([]byte("data"))
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-10]
	if _, err := ReadDisk(bytes.NewReader(trunc)); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("truncated err = %v, want ErrBadSnapshot", err)
	}
}

// Property: any disk contents survive a snapshot round trip bit-exactly.
func TestQuickSnapshotRoundTrip(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ps := []int{16, 32, 64}[r.Intn(3)]
		d := NewDisk(WithPageSize(ps))
		nFiles := r.Intn(4) + 1
		type fileData struct {
			name  string
			pages [][]byte
		}
		var want []fileData
		for i := 0; i < nFiles; i++ {
			name := string(rune('a' + i))
			f, err := d.Create(name)
			if err != nil {
				return false
			}
			fd := fileData{name: name}
			for p, n := 0, r.Intn(6); p < n; p++ {
				page := make([]byte, ps)
				r.Read(page)
				f.AppendPage(page)
				fd.pages = append(fd.pages, page)
			}
			want = append(want, fd)
		}
		var buf bytes.Buffer
		if _, err := d.WriteTo(&buf); err != nil {
			return false
		}
		restored, err := ReadDisk(&buf)
		if err != nil {
			return false
		}
		for _, fd := range want {
			f, err := restored.Open(fd.name)
			if err != nil || f.Pages() != int64(len(fd.pages)) {
				return false
			}
			for p, wantPage := range fd.pages {
				got, err := f.ReadPage(int64(p))
				if err != nil || !bytes.Equal(got, wantPage) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
