package iosim

import (
	"testing"
	"time"
)

// TestReadDelayTakesRealTime: with WithReadDelay every page read costs
// real wall-clock time, while the I/O accounting stays exactly what a
// free disk reports.
func TestReadDelayTakesRealTime(t *testing.T) {
	const delay = 2 * time.Millisecond
	const pages = 5

	build := func(opts ...Option) (*Disk, *File) {
		d := NewDisk(append([]Option{WithPageSize(64)}, opts...)...)
		f, err := d.Create("f")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < pages; i++ {
			if _, err := f.AppendPage(make([]byte, 64)); err != nil {
				t.Fatal(err)
			}
		}
		d.ResetStats()
		d.ParkHeads()
		return d, f
	}

	scan := func(f *File) {
		for i := int64(0); i < pages; i++ {
			if _, err := f.ReadPage(i); err != nil {
				t.Fatal(err)
			}
		}
	}

	slow, fslow := build(WithReadDelay(delay))
	free, ffree := build()

	begin := time.Now()
	scan(fslow)
	if elapsed := time.Since(begin); elapsed < pages*delay {
		t.Errorf("delayed scan took %v, want at least %v", elapsed, pages*delay)
	}
	scan(ffree)

	if slow.Stats() != free.Stats() {
		t.Errorf("delay changed accounting: delayed %+v, free %+v", slow.Stats(), free.Stats())
	}
}

// TestReadDelayAppliesToViews: view-bound clones read through the same
// disk, so the device model covers concurrent sessions too.
func TestReadDelayAppliesToViews(t *testing.T) {
	const delay = 2 * time.Millisecond
	d := NewDisk(WithPageSize(64), WithReadDelay(delay))
	f, err := d.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.AppendPage(make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	v := d.View()
	defer v.Close()
	begin := time.Now()
	if _, err := v.File(f).ReadPage(0); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(begin); elapsed < delay {
		t.Errorf("view read took %v, want at least %v", elapsed, delay)
	}
}
