package iosim

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCreateOpenRemove(t *testing.T) {
	d := NewDisk()
	f, err := d.Create("a")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if f.Name() != "a" {
		t.Errorf("Name = %q, want a", f.Name())
	}
	if _, err := d.Create("a"); !errors.Is(err, ErrFileExists) {
		t.Errorf("duplicate Create err = %v, want ErrFileExists", err)
	}
	g, err := d.Open("a")
	if err != nil || g != f {
		t.Errorf("Open = %v, %v; want same file", g, err)
	}
	if _, err := d.Open("missing"); !errors.Is(err, ErrFileNotFound) {
		t.Errorf("Open missing err = %v, want ErrFileNotFound", err)
	}
	if err := d.Remove("a"); err != nil {
		t.Errorf("Remove: %v", err)
	}
	if err := d.Remove("a"); !errors.Is(err, ErrFileNotFound) {
		t.Errorf("second Remove err = %v, want ErrFileNotFound", err)
	}
}

func TestFilesSorted(t *testing.T) {
	d := NewDisk()
	for _, name := range []string{"c", "a", "b"} {
		if _, err := d.Create(name); err != nil {
			t.Fatal(err)
		}
	}
	got := d.Files()
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("Files = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Files = %v, want %v", got, want)
		}
	}
}

func TestClosedDisk(t *testing.T) {
	d := NewDisk()
	d.Close()
	if _, err := d.Create("x"); !errors.Is(err, ErrClosed) {
		t.Errorf("Create on closed disk err = %v, want ErrClosed", err)
	}
	if _, err := d.Open("x"); !errors.Is(err, ErrClosed) {
		t.Errorf("Open on closed disk err = %v, want ErrClosed", err)
	}
}

func TestSequentialVsRandomClassification(t *testing.T) {
	d := NewDisk(WithPageSize(64))
	f, _ := d.Create("f")
	for i := 0; i < 10; i++ {
		if _, err := f.AppendPage([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// First read is random (head parked).
	if _, err := f.ReadPage(0); err != nil {
		t.Fatal(err)
	}
	// Next two sequential.
	f.ReadPage(1)
	f.ReadPage(2)
	// Jump: random.
	f.ReadPage(7)
	// Continue: sequential.
	f.ReadPage(8)
	// Re-read same page: random (head is at 8, 8 != 8+1).
	f.ReadPage(8)
	s := f.Stats()
	if s.SeqReads != 3 || s.RandReads != 3 {
		t.Errorf("stats = %+v, want 3 seq / 3 rand", s)
	}
	if d.Stats() != s {
		t.Errorf("disk stats %+v != file stats %+v", d.Stats(), s)
	}
}

func TestParkHead(t *testing.T) {
	d := NewDisk(WithPageSize(32))
	f, _ := d.Create("f")
	f.AppendPage(nil)
	f.AppendPage(nil)
	f.ReadPage(0)
	f.ParkHead()
	f.ReadPage(1) // would be sequential, but head was parked
	s := f.Stats()
	if s.RandReads != 2 || s.SeqReads != 0 {
		t.Errorf("stats = %+v, want 2 rand / 0 seq", s)
	}
}

func TestDedicatedHeadsInterleave(t *testing.T) {
	// Two files on a default disk have independent heads: interleaved
	// scans stay sequential after the first page of each.
	d := NewDisk(WithPageSize(32))
	a, _ := d.Create("a")
	b, _ := d.Create("b")
	for i := 0; i < 4; i++ {
		a.AppendPage(nil)
		b.AppendPage(nil)
	}
	for i := int64(0); i < 4; i++ {
		a.ReadPage(i)
		b.ReadPage(i)
	}
	s := d.Stats()
	if s.RandReads != 2 || s.SeqReads != 6 {
		t.Errorf("stats = %+v, want 2 rand / 6 seq", s)
	}
}

func TestSharedHeadInterleave(t *testing.T) {
	d := NewDisk(WithPageSize(32), WithSharedHead())
	a, _ := d.Create("a")
	b, _ := d.Create("b")
	for i := 0; i < 4; i++ {
		a.AppendPage(nil)
		b.AppendPage(nil)
	}
	for i := int64(0); i < 4; i++ {
		a.ReadPage(i)
		b.ReadPage(i)
	}
	s := d.Stats()
	if s.RandReads != 8 || s.SeqReads != 0 {
		t.Errorf("stats = %+v, want all 8 reads random under shared head", s)
	}
}

func TestReadPageOutOfRange(t *testing.T) {
	d := NewDisk()
	f, _ := d.Create("f")
	if _, err := f.ReadPage(0); !errors.Is(err, ErrPageRange) {
		t.Errorf("err = %v, want ErrPageRange", err)
	}
	if _, err := f.ReadPage(-1); !errors.Is(err, ErrPageRange) {
		t.Errorf("err = %v, want ErrPageRange", err)
	}
}

func TestWritePage(t *testing.T) {
	d := NewDisk(WithPageSize(16))
	f, _ := d.Create("f")
	if err := f.WritePage(0, []byte("hello")); err != nil {
		t.Fatalf("append via WritePage: %v", err)
	}
	if err := f.WritePage(0, []byte("world")); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	if err := f.WritePage(5, nil); !errors.Is(err, ErrPageRange) {
		t.Errorf("gap write err = %v, want ErrPageRange", err)
	}
	page, err := f.ReadPage(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(page[:5], []byte("world")) {
		t.Errorf("page = %q, want world", page[:5])
	}
}

func TestPageTooLarge(t *testing.T) {
	d := NewDisk(WithPageSize(4))
	f, _ := d.Create("f")
	if _, err := f.AppendPage([]byte("12345")); err == nil {
		t.Error("AppendPage oversized data: want error")
	}
	if err := f.WritePage(0, []byte("12345")); err == nil {
		t.Error("WritePage oversized data: want error")
	}
}

func TestWriterPacksTightly(t *testing.T) {
	d := NewDisk(WithPageSize(8))
	f, _ := d.Create("f")
	w := f.Writer()
	payload := []byte("abcdefghijklmnopqrst") // 20 bytes -> 3 pages of 8
	if w.Offset() != 0 {
		t.Errorf("initial offset = %d", w.Offset())
	}
	n, err := w.Write(payload)
	if err != nil || n != len(payload) {
		t.Fatalf("Write = %d, %v", n, err)
	}
	if w.Offset() != int64(len(payload)) {
		t.Errorf("offset = %d, want %d", w.Offset(), len(payload))
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("x")); err == nil {
		t.Error("write after Flush: want error")
	}
	if f.Pages() != 3 {
		t.Errorf("pages = %d, want 3", f.Pages())
	}
	got, err := f.ReadAt(0, int64(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("ReadAt = %q, want %q", got, payload)
	}
}

func TestReadAtCrossesPages(t *testing.T) {
	d := NewDisk(WithPageSize(4))
	f, _ := d.Create("f")
	w := f.Writer()
	w.Write([]byte("0123456789ab"))
	w.Flush()
	f.ParkHead()
	got, err := f.ReadAt(3, 6) // spans pages 0,1,2
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "345678" {
		t.Errorf("ReadAt = %q, want 345678", got)
	}
	s := f.Stats()
	if s.Reads() != 3 {
		t.Errorf("reads = %d, want 3 (pages spanned)", s.Reads())
	}
	if s.RandReads != 1 || s.SeqReads != 2 {
		t.Errorf("stats = %+v, want 1 rand + 2 seq", s)
	}
}

func TestReadAtErrors(t *testing.T) {
	d := NewDisk(WithPageSize(4))
	f, _ := d.Create("f")
	f.AppendPage([]byte("abcd"))
	if _, err := f.ReadAt(-1, 2); err == nil {
		t.Error("negative offset: want error")
	}
	if _, err := f.ReadAt(0, -2); err == nil {
		t.Error("negative length: want error")
	}
	if _, err := f.ReadAt(2, 10); !errors.Is(err, ErrPageRange) {
		t.Errorf("read past end err = %v, want ErrPageRange", err)
	}
}

func TestReadRange(t *testing.T) {
	d := NewDisk(WithPageSize(4))
	f, _ := d.Create("f")
	for i := 0; i < 5; i++ {
		f.AppendPage([]byte{byte('a' + i)})
	}
	var seen []int64
	err := f.ReadRange(1, 3, func(idx int64, page []byte) error {
		seen = append(seen, idx)
		if page[0] != byte('a'+idx) {
			t.Errorf("page %d content = %c", idx, page[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 || seen[0] != 1 || seen[2] != 3 {
		t.Errorf("seen = %v", seen)
	}
	s := f.Stats()
	if s.RandReads != 1 || s.SeqReads != 2 {
		t.Errorf("stats = %+v, want 1 rand / 2 seq", s)
	}
	stop := errors.New("stop")
	err = f.ReadRange(0, 5, func(idx int64, _ []byte) error {
		if idx == 2 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) {
		t.Errorf("ReadRange propagated err = %v, want stop", err)
	}
}

func TestStatsCostAndArithmetic(t *testing.T) {
	s := Stats{SeqReads: 10, RandReads: 4, Writes: 2}
	if got := s.Cost(5); got != 30 {
		t.Errorf("Cost(5) = %v, want 30", got)
	}
	if got := s.Reads(); got != 14 {
		t.Errorf("Reads = %d, want 14", got)
	}
	var sum Stats
	sum.Add(s)
	sum.Add(s)
	if sum.SeqReads != 20 || sum.RandReads != 8 || sum.Writes != 4 {
		t.Errorf("Add = %+v", sum)
	}
	diff := sum.Sub(s)
	if diff != s {
		t.Errorf("Sub = %+v, want %+v", diff, s)
	}
	if s.String() == "" {
		t.Error("String is empty")
	}
}

func TestResetStats(t *testing.T) {
	d := NewDisk(WithPageSize(8))
	f, _ := d.Create("f")
	f.AppendPage(nil)
	f.ReadPage(0)
	d.ResetStats()
	if d.Stats() != (Stats{}) {
		t.Errorf("stats after reset = %+v", d.Stats())
	}
}

func TestDiskCostUsesAlpha(t *testing.T) {
	d := NewDisk(WithPageSize(8), WithAlpha(7))
	f, _ := d.Create("f")
	f.AppendPage(nil)
	f.AppendPage(nil)
	f.ReadPage(0) // random
	f.ReadPage(1) // sequential
	if got := d.Cost(); got != 8 {
		t.Errorf("Cost = %v, want 8 (1 + 7)", got)
	}
	d.SetAlpha(2)
	if got := d.Cost(); got != 3 {
		t.Errorf("Cost after SetAlpha = %v, want 3", got)
	}
	if d.Alpha() != 2 {
		t.Errorf("Alpha = %v, want 2", d.Alpha())
	}
}

func TestFileAccessors(t *testing.T) {
	d := NewDisk(WithPageSize(64))
	f, _ := d.Create("f")
	if f.PageSize() != 64 {
		t.Errorf("PageSize = %d", f.PageSize())
	}
	if f.Disk() != d {
		t.Error("Disk accessor wrong")
	}
	f.AppendPage(nil)
	f.AppendPage(nil)
	if f.Size() != 128 {
		t.Errorf("Size = %d", f.Size())
	}
}

func TestPagesForBytes(t *testing.T) {
	cases := []struct {
		n    int64
		ps   int
		want int64
	}{
		{0, 4096, 0}, {-5, 4096, 0}, {1, 4096, 1}, {4096, 4096, 1},
		{4097, 4096, 2}, {8192, 4096, 2}, {10, 4, 3},
	}
	for _, c := range cases {
		if got := PagesForBytes(c.n, c.ps); got != c.want {
			t.Errorf("PagesForBytes(%d,%d) = %d, want %d", c.n, c.ps, got, c.want)
		}
	}
}

func TestSpannedPages(t *testing.T) {
	cases := []struct {
		off, length int64
		ps          int
		want        int64
	}{
		{0, 0, 4, 0}, {0, 1, 4, 1}, {0, 4, 4, 1}, {0, 5, 4, 2},
		{3, 2, 4, 2}, {4, 4, 4, 1}, {7, 10, 4, 4},
	}
	for _, c := range cases {
		if got := SpannedPages(c.off, c.length, c.ps); got != c.want {
			t.Errorf("SpannedPages(%d,%d,%d) = %d, want %d", c.off, c.length, c.ps, got, c.want)
		}
	}
}

// Property: writing any byte stream through Writer and reading it back with
// ReadAt yields the identical stream, regardless of page size.
func TestQuickWriterRoundTrip(t *testing.T) {
	check := func(data []byte, psSeed uint8) bool {
		ps := int(psSeed%61) + 3 // page sizes 3..63
		d := NewDisk(WithPageSize(ps))
		f, err := d.Create("f")
		if err != nil {
			return false
		}
		w := f.Writer()
		if _, err := w.Write(data); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		got, err := f.ReadAt(0, int64(len(data)))
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: for any access sequence, SeqReads+RandReads equals the number of
// reads issued, and scanning a file front to back costs exactly
// 1 random + (pages-1) sequential reads.
func TestQuickScanCost(t *testing.T) {
	check := func(nPages uint8) bool {
		n := int64(nPages%50) + 1
		d := NewDisk(WithPageSize(16))
		f, _ := d.Create("f")
		for i := int64(0); i < n; i++ {
			f.AppendPage(nil)
		}
		for i := int64(0); i < n; i++ {
			if _, err := f.ReadPage(i); err != nil {
				return false
			}
		}
		s := f.Stats()
		return s.RandReads == 1 && s.SeqReads == n-1 && s.Reads() == n
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentReads(t *testing.T) {
	d := NewDisk(WithPageSize(16))
	f, _ := d.Create("f")
	for i := 0; i < 100; i++ {
		f.AppendPage([]byte{byte(i)})
	}
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func(seed int64) {
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				idx := int64(r.Intn(100))
				page, err := f.ReadPage(idx)
				if err != nil {
					done <- err
					return
				}
				if page[0] != byte(idx) {
					done <- fmt.Errorf("page %d content %d", idx, page[0])
					return
				}
			}
			done <- nil
		}(int64(g))
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := f.Stats().Reads(); got != 2000 {
		t.Errorf("total reads = %d, want 2000", got)
	}
}
