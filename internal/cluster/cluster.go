// Package cluster reorders document collections so that documents close
// in storage order share many terms.
//
// The paper proves that choosing an optimal processing order for HVNL's
// outer documents is NP-hard (reduction from Optimal Batch Integrity
// Assertion Verification) and notes two practical consequences: reading
// documents out of storage order costs random I/O, and HVNL becomes very
// competitive when "close documents in storage order share many terms and
// non-close documents share few terms. ... This could happen when the
// documents in the collection are clustered."
//
// This package implements the tractable counterpart: a greedy
// nearest-neighbor ordering heuristic applied at collection-build time, so
// the clustered order *is* the storage order — sequential reads and entry
// reuse at once. The ablation benchmark quantifies the entry-fetch
// savings.
package cluster

import (
	"io"
	"sort"

	"textjoin/internal/collection"
	"textjoin/internal/document"
	"textjoin/internal/iosim"
)

// Overlap returns the number of distinct terms shared by two documents.
func Overlap(a, b *document.Document) int {
	return document.CommonTerms(a, b)
}

// GreedyOrder returns a permutation of doc indices such that consecutive
// documents share many terms: starting from the document with the largest
// vocabulary, it repeatedly appends the unvisited document with the
// greatest term overlap with the current one (ties and zero overlaps fall
// back to the smallest index, keeping the order deterministic).
//
// The exact optimum is NP-hard (the paper's Proposition); this greedy
// chain is the standard O(N²·K) approximation.
func GreedyOrder(docs []*document.Document) []int {
	n := len(docs)
	if n == 0 {
		return nil
	}
	// Index terms -> docs to avoid the full O(N²) overlap matrix when
	// vocabularies are sparse: candidate neighbors share at least one
	// term.
	byTerm := make(map[uint32][]int)
	for i, d := range docs {
		for _, c := range d.Cells {
			byTerm[c.Term] = append(byTerm[c.Term], i)
		}
	}

	visited := make([]bool, n)
	order := make([]int, 0, n)

	// Start at the largest document.
	start := 0
	for i, d := range docs {
		if d.Terms() > docs[start].Terms() {
			start = i
		}
	}
	order = append(order, start)
	visited[start] = true

	counts := make(map[int]int, 64)
	for len(order) < n {
		cur := docs[order[len(order)-1]]
		// Count shared terms with every unvisited neighbor.
		clear(counts)
		for _, c := range cur.Cells {
			for _, j := range byTerm[c.Term] {
				if !visited[j] {
					counts[j]++
				}
			}
		}
		next := -1
		bestOverlap := -1
		for j, shared := range counts {
			if shared > bestOverlap || (shared == bestOverlap && j < next) {
				next = j
				bestOverlap = shared
			}
		}
		if next == -1 {
			// No unvisited document shares a term with the current one:
			// fall back to the smallest unvisited index.
			for j := 0; j < n; j++ {
				if !visited[j] {
					next = j
					break
				}
			}
		}
		order = append(order, next)
		visited[next] = true
	}
	return order
}

// AdjacentOverlap sums the term overlap of consecutive documents under
// the given order — the quantity the greedy heuristic maximizes and the
// tests compare across orders.
func AdjacentOverlap(docs []*document.Document, order []int) int {
	total := 0
	for i := 1; i < len(order); i++ {
		total += Overlap(docs[order[i-1]], docs[order[i]])
	}
	return total
}

// IdentityOrder returns 0..n−1.
func IdentityOrder(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Reorder builds a new collection whose storage order follows the given
// permutation of src's documents; ids are re-assigned densely. It returns
// the new collection and the mapping from new id to original id.
func Reorder(name string, file *iosim.File, src *collection.Collection, order []int) (*collection.Collection, IDMap, error) {
	b, err := collection.NewBuilder(name, file)
	if err != nil {
		return nil, nil, err
	}
	origIDs := make(IDMap, 0, len(order))
	for newID, oldIdx := range order {
		d, err := src.Fetch(uint32(oldIdx))
		if err != nil {
			return nil, nil, err
		}
		nd := &document.Document{ID: uint32(newID), Cells: d.Cells}
		if err := b.Add(nd); err != nil {
			return nil, nil, err
		}
		origIDs = append(origIDs, uint32(oldIdx))
	}
	c, err := b.Finish()
	if err != nil {
		return nil, nil, err
	}
	return c, origIDs, nil
}

// IDMap records a reordering's document renumbering: m[newID] == origID.
// It travels with the reordered collection so results and postings can
// be translated between the two layouts.
type IDMap []uint32

// Orig returns the original id of reordered document newID.
func (m IDMap) Orig(newID uint32) uint32 { return m[newID] }

// Apply rewrites ids (reordered-layout document ids) to original ids in
// place and returns the slice for chaining.
func (m IDMap) Apply(ids []uint32) []uint32 {
	for i, id := range ids {
		ids[i] = m[id]
	}
	return ids
}

// Inverse returns the reverse mapping: inv[origID] == newID. Composing
// a map with its inverse is the identity, so applying Inverse to an
// original layout's postings renumbers them for the reordered layout.
func (m IDMap) Inverse() IDMap {
	inv := make(IDMap, len(m))
	for newID, origID := range m {
		inv[origID] = uint32(newID)
	}
	return inv
}

// Clustered loads all documents of src, computes the greedy order and
// materializes the reordered collection in one call.
func Clustered(name string, file *iosim.File, src *collection.Collection) (*collection.Collection, IDMap, error) {
	docs, err := loadAll(src)
	if err != nil {
		return nil, nil, err
	}
	return Reorder(name, file, src, GreedyOrder(docs))
}

func loadAll(c *collection.Collection) ([]*document.Document, error) {
	docs := make([]*document.Document, 0, c.NumDocs())
	sc := c.Scan()
	for {
		d, err := sc.Next()
		if err == io.EOF {
			return docs, nil
		}
		if err != nil {
			return nil, err
		}
		docs = append(docs, d)
	}
}

// TopicAssignments groups documents by their dominant term range,
// a diagnostic used in tests of planted-cluster corpora: it returns, for
// each document, the index of the bucket (of the given width in term ids)
// holding the plurality of its cells.
func TopicAssignments(docs []*document.Document, bucketWidth uint32) []int {
	out := make([]int, len(docs))
	for i, d := range docs {
		votes := make(map[int]int)
		for _, c := range d.Cells {
			votes[int(c.Term/bucketWidth)]++
		}
		best, bestVotes := 0, -1
		keys := make([]int, 0, len(votes))
		for k := range votes {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		for _, k := range keys {
			if votes[k] > bestVotes {
				best, bestVotes = k, votes[k]
			}
		}
		out[i] = best
	}
	return out
}
