package cluster

import (
	"math/rand"
	"testing"

	"textjoin/internal/collection"
	"textjoin/internal/core"
	"textjoin/internal/document"
	"textjoin/internal/invfile"
	"textjoin/internal/iosim"
)

func TestIDMapHelpers(t *testing.T) {
	m := IDMap{2, 0, 1}
	if m.Orig(0) != 2 || m.Orig(2) != 1 {
		t.Errorf("Orig: %v", m)
	}
	inv := m.Inverse()
	for newID, orig := range m {
		if inv[orig] != uint32(newID) {
			t.Errorf("Inverse()[%d] = %d, want %d", orig, inv[orig], newID)
		}
	}
	ids := m.Apply([]uint32{0, 1, 2, 1})
	want := []uint32{2, 0, 1, 0}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("Apply = %v, want %v", ids, want)
		}
	}
}

// TestClusteredLayoutJoinRoundTrip proves the cluster-driven build path
// end to end: joining against the reordered collection with the
// id-remapped inverted file yields exactly the original join results
// once the new inner ids are translated back through the IDMap. λ
// exceeds the inner collection so every non-zero match is kept and the
// comparison is independent of id tie-breaking.
func TestClusteredLayoutJoinRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	gen := func(n int) []*document.Document {
		docs := make([]*document.Document, n)
		for i := range docs {
			counts := make(map[uint32]int)
			for j, l := 0, r.Intn(12)+2; j < l; j++ {
				counts[uint32(r.Intn(60))]++
			}
			docs[i] = document.New(uint32(i), counts)
		}
		return docs
	}
	build := func(d *iosim.Disk, name string, docs []*document.Document) *collection.Collection {
		t.Helper()
		f, err := d.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := collection.NewBuilder(name, f)
		if err != nil {
			t.Fatal(err)
		}
		for _, doc := range docs {
			if err := b.Add(doc); err != nil {
				t.Fatal(err)
			}
		}
		c, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	d := iosim.NewDisk(iosim.WithPageSize(256))
	c1 := build(d, "c1", gen(30))
	c2 := build(d, "c2", gen(20))
	ef, _ := d.Create("c1.inv")
	tf, _ := d.Create("c1.bt")
	inv1, err := invfile.Build(c1, ef, tf)
	if err != nil {
		t.Fatal(err)
	}

	opts := core.Options{Lambda: 40, MemoryPages: 300}
	want, _, err := core.JoinHVNL(core.Inputs{Outer: c2, Inner: c1, InnerInv: inv1}, opts)
	if err != nil {
		t.Fatal(err)
	}

	cf, _ := d.Create("c1clu")
	rc, idmap, err := Clustered("c1clu", cf, c1)
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := d.Create("c1clu.inv")
	rtf, _ := d.Create("c1clu.bt")
	inv := idmap.Inverse()
	rinv, err := invfile.BuildRemapped(inv1, func(orig uint32) uint32 { return inv[orig] }, ref, rtf)
	if err != nil {
		t.Fatal(err)
	}

	for _, join := range []struct {
		name string
		run  func(in core.Inputs) ([]core.Result, *core.Stats, error)
	}{
		{"hvnl", func(in core.Inputs) ([]core.Result, *core.Stats, error) { return core.JoinHVNL(in, opts) }},
		{"hhnl", func(in core.Inputs) ([]core.Result, *core.Stats, error) { return core.JoinHHNL(in, opts) }},
	} {
		got, _, err := join.run(core.Inputs{Outer: c2, Inner: rc, InnerInv: rinv})
		if err != nil {
			t.Fatalf("%s: %v", join.name, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d rows, want %d", join.name, len(got), len(want))
		}
		for i, row := range got {
			if row.Outer != want[i].Outer {
				t.Fatalf("%s row %d: outer %d, want %d", join.name, i, row.Outer, want[i].Outer)
			}
			if len(row.Matches) != len(want[i].Matches) {
				t.Fatalf("%s outer %d: %d matches, want %d", join.name, row.Outer, len(row.Matches), len(want[i].Matches))
			}
			wantSims := map[uint32]float64{}
			for _, m := range want[i].Matches {
				wantSims[m.Doc] = m.Sim
			}
			for _, m := range row.Matches {
				orig := idmap.Orig(m.Doc)
				sim, ok := wantSims[orig]
				if !ok {
					t.Fatalf("%s outer %d: match for new id %d (orig %d) absent from original join", join.name, row.Outer, m.Doc, orig)
				}
				if sim != m.Sim {
					t.Fatalf("%s outer %d orig %d: sim %v, want %v", join.name, row.Outer, orig, m.Sim, sim)
				}
			}
		}
	}
}
