package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"textjoin/internal/collection"
	"textjoin/internal/core"
	"textjoin/internal/corpus"
	"textjoin/internal/document"
	"textjoin/internal/entrycache"
	"textjoin/internal/invfile"
	"textjoin/internal/iosim"
)

func mkdoc(id uint32, terms ...uint32) *document.Document {
	counts := make(map[uint32]int, len(terms))
	for _, t := range terms {
		counts[t]++
	}
	return document.New(id, counts)
}

func TestOverlap(t *testing.T) {
	a := mkdoc(0, 1, 2, 3)
	b := mkdoc(1, 2, 3, 4)
	if got := Overlap(a, b); got != 2 {
		t.Errorf("Overlap = %d, want 2", got)
	}
}

func TestGreedyOrderEmpty(t *testing.T) {
	if got := GreedyOrder(nil); got != nil {
		t.Errorf("GreedyOrder(nil) = %v", got)
	}
}

func TestGreedyOrderIsPermutation(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	docs := make([]*document.Document, 30)
	for i := range docs {
		counts := make(map[uint32]int)
		for j := 0; j < r.Intn(10)+1; j++ {
			counts[uint32(r.Intn(50))]++
		}
		docs[i] = document.New(uint32(i), counts)
	}
	order := GreedyOrder(docs)
	if len(order) != len(docs) {
		t.Fatalf("order length = %d", len(order))
	}
	seen := make([]bool, len(docs))
	for _, idx := range order {
		if idx < 0 || idx >= len(docs) || seen[idx] {
			t.Fatalf("bad permutation: %v", order)
		}
		seen[idx] = true
	}
}

func TestGreedyOrderChainsOverlappingDocs(t *testing.T) {
	// Two disjoint topics interleaved in input order: greedy should
	// visit one topic fully before jumping to the other.
	docs := []*document.Document{
		mkdoc(0, 1, 2, 3),
		mkdoc(1, 100, 101, 102),
		mkdoc(2, 2, 3, 4),
		mkdoc(3, 101, 102, 103),
		mkdoc(4, 3, 4, 5),
		mkdoc(5, 102, 103, 104),
	}
	order := GreedyOrder(docs)
	topic := func(idx int) int {
		if docs[idx].Cells[0].Term < 100 {
			return 0
		}
		return 1
	}
	switches := 0
	for i := 1; i < len(order); i++ {
		if topic(order[i]) != topic(order[i-1]) {
			switches++
		}
	}
	if switches != 1 {
		t.Errorf("topic switches = %d, want 1 (order %v)", switches, order)
	}
	// And adjacent overlap beats identity order.
	if AdjacentOverlap(docs, order) <= AdjacentOverlap(docs, IdentityOrder(len(docs))) {
		t.Errorf("greedy overlap %d <= identity %d",
			AdjacentOverlap(docs, order), AdjacentOverlap(docs, IdentityOrder(len(docs))))
	}
}

func TestGreedyOrderDisconnectedDocs(t *testing.T) {
	docs := []*document.Document{
		mkdoc(0, 1), mkdoc(1, 2), mkdoc(2, 3),
	}
	order := GreedyOrder(docs)
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestReorderRoundTrip(t *testing.T) {
	d := iosim.NewDisk(iosim.WithPageSize(128))
	f, _ := d.Create("c")
	b, _ := collection.NewBuilder("c", f)
	docs := []*document.Document{mkdoc(0, 1, 2), mkdoc(1, 3), mkdoc(2, 2, 3)}
	for _, doc := range docs {
		if err := b.Add(doc); err != nil {
			t.Fatal(err)
		}
	}
	c, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	nf, _ := d.Create("reordered")
	rc, origIDs, err := Reorder("reordered", nf, c, []int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if rc.NumDocs() != 3 {
		t.Fatalf("N = %d", rc.NumDocs())
	}
	if origIDs[0] != 2 || origIDs[1] != 0 || origIDs[2] != 1 {
		t.Errorf("origIDs = %v", origIDs)
	}
	got, err := rc.Fetch(0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Weight(2) != 1 || got.Weight(3) != 1 {
		t.Errorf("reordered doc 0 = %+v", got)
	}
}

// The headline experiment: on a planted-cluster corpus stored scattered,
// HVNL under tight memory fetches far fewer inverted entries after
// greedy clustering — the paper's "documents in the collection are
// clustered" scenario.
func TestClusteredOrderReducesHVNLFetches(t *testing.T) {
	d := iosim.NewDisk(iosim.WithPageSize(4096))
	p := corpus.ClusteredProfile{
		Profile: corpus.Profile{Name: "planted", NumDocs: 240, TermsPerDoc: 20, DistinctTerms: 3000},
		Topics:  8,
		Scatter: true,
	}
	f, _ := d.Create("scattered")
	scattered, err := corpus.GenerateClustered(p, 7, f)
	if err != nil {
		t.Fatal(err)
	}
	// The inner collection shares the topic structure (same vocabulary
	// ranges), so each outer topic probes a distinct slice of the
	// inverted file — the setting where processing order matters.
	innerProfile := p
	innerProfile.Name = "inner"
	innerProfile.NumDocs = 1000
	fi, _ := d.Create("inner")
	inner, err := corpus.GenerateClustered(innerProfile, 8, fi)
	if err != nil {
		t.Fatal(err)
	}
	ef, _ := d.Create("inner.inv")
	tf, _ := d.Create("inner.bt")
	inv, err := invfile.Build(inner, ef, tf)
	if err != nil {
		t.Fatal(err)
	}

	cf, _ := d.Create("clustered")
	clustered, _, err := Clustered("clustered", cf, scattered)
	if err != nil {
		t.Fatal(err)
	}

	// Sanity: greedy order has much higher adjacent overlap.
	docsScattered, err := loadAll(scattered)
	if err != nil {
		t.Fatal(err)
	}
	docsClustered, err := loadAll(clustered)
	if err != nil {
		t.Fatal(err)
	}
	ovS := AdjacentOverlap(docsScattered, IdentityOrder(len(docsScattered)))
	ovC := AdjacentOverlap(docsClustered, IdentityOrder(len(docsClustered)))
	if ovC <= ovS {
		t.Fatalf("clustered adjacent overlap %d <= scattered %d", ovC, ovS)
	}

	// The cache holds roughly one topic's entries. LRU is the right
	// policy for exploiting storage-order locality: the paper's
	// min-outer-df policy protects globally frequent terms and evicts
	// the (rare) topic terms that clustering makes reusable.
	opts := core.Options{Lambda: 5, MemoryPages: 12, CachePolicy: entrycache.LRU}
	run := func(outer *collection.Collection) int64 {
		t.Helper()
		_, st, err := core.JoinHVNL(core.Inputs{Outer: outer, Inner: inner, InnerInv: inv}, opts)
		if err != nil {
			t.Fatal(err)
		}
		return st.EntryFetches
	}
	fetchScattered := run(scattered)
	fetchClustered := run(clustered)
	if fetchClustered >= fetchScattered {
		t.Errorf("clustered fetches %d >= scattered %d", fetchClustered, fetchScattered)
	}
	t.Logf("entry fetches: scattered=%d clustered=%d (%.0f%% saved)",
		fetchScattered, fetchClustered, 100*float64(fetchScattered-fetchClustered)/float64(fetchScattered))
}

func TestTopicAssignments(t *testing.T) {
	docs := []*document.Document{
		mkdoc(0, 1, 2, 3, 150),
		mkdoc(1, 101, 102, 5),
	}
	got := TopicAssignments(docs, 100)
	if got[0] != 0 || got[1] != 1 {
		t.Errorf("assignments = %v", got)
	}
}

// Property: GreedyOrder is always a permutation and never reduces
// adjacent overlap below half of... no strong bound holds in general, so
// assert permutation validity and determinism only.
func TestQuickGreedyOrder(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(40) + 1
		docs := make([]*document.Document, n)
		for i := range docs {
			counts := make(map[uint32]int)
			for j := 0; j < r.Intn(8)+1; j++ {
				counts[uint32(r.Intn(60))]++
			}
			docs[i] = document.New(uint32(i), counts)
		}
		o1 := GreedyOrder(docs)
		o2 := GreedyOrder(docs)
		if len(o1) != n || len(o2) != n {
			return false
		}
		seen := make([]bool, n)
		for i := range o1 {
			if o1[i] != o2[i] { // deterministic
				return false
			}
			if seen[o1[i]] {
				return false
			}
			seen[o1[i]] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
