package collection

import (
	"io"
	"testing"

	"textjoin/internal/document"
	"textjoin/internal/iosim"
)

// TestScanFiltered pins the filtered scan against the plain scan for
// several keep predicates, including multi-page records and keep-gaps
// spanning pages.
func TestScanFiltered(t *testing.T) {
	d := iosim.NewDisk(iosim.WithPageSize(64))
	f, err := d.Create("c.col")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBuilder("c", f)
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		counts := map[uint32]int{}
		// Vary sizes: some docs span multiple 64-byte pages.
		for j := 0; j <= (i*7)%23; j++ {
			counts[uint32(i*31+j)] = 1 + j%3
		}
		if err := b.Add(document.New(uint32(i), counts)); err != nil {
			t.Fatal(err)
		}
	}
	c, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}

	want := make(map[uint32]*document.Document)
	sc := c.Scan()
	for {
		doc, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		want[doc.ID] = doc
	}

	keeps := map[string]func(uint32) bool{
		"all":       nil,
		"none":      func(uint32) bool { return false },
		"even":      func(id uint32) bool { return id%2 == 0 },
		"sparse":    func(id uint32) bool { return id%7 == 3 },
		"tail-half": func(id uint32) bool { return id >= n/2 },
	}
	for name, keep := range keeps {
		fs := c.ScanFiltered(keep)
		seen := 0
		for {
			doc, err := fs.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if keep != nil && !keep(doc.ID) {
				t.Fatalf("%s: yielded filtered-out doc %d", name, doc.ID)
			}
			w := want[doc.ID]
			if len(doc.Cells) != len(w.Cells) {
				t.Fatalf("%s: doc %d has %d cells, want %d", name, doc.ID, len(doc.Cells), len(w.Cells))
			}
			for i, cell := range doc.Cells {
				if cell != w.Cells[i] {
					t.Fatalf("%s: doc %d cell %d = %+v, want %+v", name, doc.ID, i, cell, w.Cells[i])
				}
			}
			seen++
		}
		wantSeen := 0
		for id := uint32(0); id < n; id++ {
			if keep == nil || keep(id) {
				wantSeen++
			}
		}
		if seen != wantSeen {
			t.Fatalf("%s: yielded %d docs, want %d", name, seen, wantSeen)
		}
	}
}

// TestScanFilteredReadsFewerPages pins the point of the filter: skipping
// documents must skip their pages.
func TestScanFilteredReadsFewerPages(t *testing.T) {
	d := iosim.NewDisk(iosim.WithPageSize(64))
	f, err := d.Create("c.col")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBuilder("c", f)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		counts := map[uint32]int{}
		for j := 0; j < 12; j++ {
			counts[uint32(i*100+j)] = 1
		}
		if err := b.Add(document.New(uint32(i), counts)); err != nil {
			t.Fatal(err)
		}
	}
	c, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}

	drain := func(keep func(uint32) bool) iosim.Stats {
		d.ResetStats()
		f.ParkHead()
		fs := c.ScanFiltered(keep)
		for {
			if _, err := fs.NextReuse(); err != nil {
				break
			}
		}
		return d.Stats()
	}
	full := drain(nil)
	half := drain(func(id uint32) bool { return id < 8 })
	if half.Reads() >= full.Reads() {
		t.Fatalf("filtered scan read %d pages, full scan %d — no saving", half.Reads(), full.Reads())
	}
	none := drain(func(uint32) bool { return false })
	if none.Reads() != 0 {
		t.Fatalf("empty keep read %d pages, want 0", none.Reads())
	}
}
