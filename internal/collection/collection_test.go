package collection

import (
	"errors"
	"io"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"textjoin/internal/document"
	"textjoin/internal/iosim"
)

func newDisk(pageSize int) *iosim.Disk {
	return iosim.NewDisk(iosim.WithPageSize(pageSize))
}

func buildDocs(t *testing.T, d *iosim.Disk, name string, docs []*document.Document) *Collection {
	t.Helper()
	f, err := d.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBuilder(name, f)
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range docs {
		if err := b.Add(doc); err != nil {
			t.Fatal(err)
		}
	}
	c, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mkdoc(id uint32, terms ...uint32) *document.Document {
	counts := make(map[uint32]int, len(terms))
	for _, t := range terms {
		counts[t]++
	}
	return document.New(id, counts)
}

func randomDocs(r *rand.Rand, n, vocab, maxLen int) []*document.Document {
	docs := make([]*document.Document, n)
	for i := range docs {
		counts := make(map[uint32]int)
		for j, l := 0, r.Intn(maxLen)+1; j < l; j++ {
			counts[uint32(r.Intn(vocab))]++
		}
		docs[i] = document.New(uint32(i), counts)
	}
	return docs
}

func TestBuilderOrderEnforced(t *testing.T) {
	d := newDisk(256)
	f, _ := d.Create("c")
	b, err := NewBuilder("c", f)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Add(mkdoc(1, 5)); !errors.Is(err, ErrDocOrder) {
		t.Errorf("out-of-order Add err = %v, want ErrDocOrder", err)
	}
	if err := b.Add(mkdoc(0, 5)); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(mkdoc(0, 5)); !errors.Is(err, ErrDocOrder) {
		t.Errorf("duplicate id err = %v, want ErrDocOrder", err)
	}
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(mkdoc(1, 5)); !errors.Is(err, ErrFinished) {
		t.Errorf("Add after Finish err = %v, want ErrFinished", err)
	}
	if _, err := b.Finish(); !errors.Is(err, ErrFinished) {
		t.Errorf("double Finish err = %v, want ErrFinished", err)
	}
}

func TestBuilderRejectsNonEmptyFile(t *testing.T) {
	d := newDisk(256)
	f, _ := d.Create("c")
	f.AppendPage(nil)
	if _, err := NewBuilder("c", f); err == nil {
		t.Error("NewBuilder on non-empty file: want error")
	}
}

func TestBuilderRejectsInvalidDoc(t *testing.T) {
	d := newDisk(256)
	f, _ := d.Create("c")
	b, _ := NewBuilder("c", f)
	bad := &document.Document{ID: 0, Cells: []document.Cell{{Term: 9, Weight: 1}, {Term: 3, Weight: 1}}}
	if err := b.Add(bad); err == nil {
		t.Error("Add invalid doc: want error")
	}
}

func TestStatsMeasured(t *testing.T) {
	d := newDisk(64)
	docs := []*document.Document{
		mkdoc(0, 1, 1, 2),    // terms {1,2}, 2 cells
		mkdoc(1, 2, 3, 4, 4), // terms {2,3,4}, 3 cells
		mkdoc(2, 5),          // terms {5}, 1 cell
	}
	c := buildDocs(t, d, "c", docs)
	st := c.Stats()
	if st.N != 3 {
		t.Errorf("N = %d", st.N)
	}
	if st.T != 5 {
		t.Errorf("T = %d", st.T)
	}
	if st.TotalCells != 6 {
		t.Errorf("TotalCells = %d", st.TotalCells)
	}
	if math.Abs(st.K-2) > 1e-9 {
		t.Errorf("K = %v, want 2", st.K)
	}
	wantBytes := int64(3*6 + 6*5) // 3 headers + 6 cells
	if st.Bytes != wantBytes {
		t.Errorf("Bytes = %d, want %d", st.Bytes, wantBytes)
	}
	if st.D != c.File().Pages() {
		t.Errorf("D = %d, pages = %d", st.D, c.File().Pages())
	}
	if st.PageSize != 64 {
		t.Errorf("PageSize = %d", st.PageSize)
	}
	if c.NumDocs() != 3 || c.Name() != "c" {
		t.Errorf("NumDocs=%d Name=%q", c.NumDocs(), c.Name())
	}
}

func TestDocumentFrequencies(t *testing.T) {
	d := newDisk(128)
	c := buildDocs(t, d, "c", []*document.Document{
		mkdoc(0, 1, 2), mkdoc(1, 2, 3), mkdoc(2, 2),
	})
	for _, tc := range []struct {
		term uint32
		want int64
	}{{1, 1}, {2, 3}, {3, 1}, {9, 0}} {
		if got := c.DF(tc.term); got != tc.want {
			t.Errorf("DF(%d) = %d, want %d", tc.term, got, tc.want)
		}
	}
	if !c.HasTerm(2) || c.HasTerm(9) {
		t.Error("HasTerm wrong")
	}
	terms := c.Terms()
	if len(terms) != 3 || terms[0] != 1 || terms[1] != 2 || terms[2] != 3 {
		t.Errorf("Terms = %v", terms)
	}
	idf := c.IDFMap()
	if idf[2] >= idf[1] {
		t.Errorf("idf common %v should be < idf rare %v", idf[2], idf[1])
	}
}

func TestNorms(t *testing.T) {
	d := newDisk(128)
	doc0 := mkdoc(0, 1, 1, 1, 2, 2, 2) // weights 3,3 -> norm sqrt(18)
	c := buildDocs(t, d, "c", []*document.Document{doc0})
	if got := c.Norm(0); math.Abs(got-math.Sqrt(18)) > 1e-12 {
		t.Errorf("Norm(0) = %v", got)
	}
	if got := c.Norm(5); got != 0 {
		t.Errorf("Norm(out of range) = %v", got)
	}
	norms := c.Norms()
	if len(norms) != 1 || norms[0] != c.Norm(0) {
		t.Errorf("Norms = %v", norms)
	}
}

func TestFetch(t *testing.T) {
	d := newDisk(32) // small pages so docs span pages
	r := rand.New(rand.NewSource(7))
	docs := randomDocs(r, 20, 50, 12)
	c := buildDocs(t, d, "c", docs)
	for i := 19; i >= 0; i-- {
		got, err := c.Fetch(uint32(i))
		if err != nil {
			t.Fatalf("Fetch(%d): %v", i, err)
		}
		if got.ID != uint32(i) || len(got.Cells) != len(docs[i].Cells) {
			t.Fatalf("Fetch(%d) = %+v", i, got)
		}
		for j := range got.Cells {
			if got.Cells[j] != docs[i].Cells[j] {
				t.Fatalf("Fetch(%d) cell %d = %v, want %v", i, j, got.Cells[j], docs[i].Cells[j])
			}
		}
	}
	if _, err := c.Fetch(99); !errors.Is(err, ErrNoSuchDoc) {
		t.Errorf("Fetch(99) err = %v, want ErrNoSuchDoc", err)
	}
	if _, err := c.Ref(99); !errors.Is(err, ErrNoSuchDoc) {
		t.Errorf("Ref(99) err = %v, want ErrNoSuchDoc", err)
	}
}

func TestScanReturnsAllDocsOnce(t *testing.T) {
	d := newDisk(64)
	r := rand.New(rand.NewSource(11))
	docs := randomDocs(r, 50, 100, 20)
	c := buildDocs(t, d, "c", docs)
	sc := c.Scan()
	for i := 0; i < 50; i++ {
		got, err := sc.Next()
		if err != nil {
			t.Fatalf("Next %d: %v", i, err)
		}
		if got.ID != uint32(i) {
			t.Fatalf("doc %d has id %d", i, got.ID)
		}
	}
	if _, err := sc.Next(); err != io.EOF {
		t.Errorf("final Next err = %v, want EOF", err)
	}
	if _, err := sc.Next(); err != io.EOF {
		t.Errorf("Next after EOF err = %v, want EOF", err)
	}
}

func TestScanIsSequentialAndCostsD(t *testing.T) {
	d := newDisk(64)
	r := rand.New(rand.NewSource(3))
	docs := randomDocs(r, 40, 80, 16)
	c := buildDocs(t, d, "c", docs)
	d.ResetStats()
	sc := c.Scan()
	for {
		if _, err := sc.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	s := d.Stats()
	if s.Reads() != c.Stats().D {
		t.Errorf("scan reads = %d, want D = %d", s.Reads(), c.Stats().D)
	}
	if s.RandReads != 1 {
		t.Errorf("RandReads = %d, want 1", s.RandReads)
	}
}

func TestReaderInterface(t *testing.T) {
	d := newDisk(128)
	c := buildDocs(t, d, "c", []*document.Document{mkdoc(0, 1), mkdoc(1, 2)})
	var r Reader = c
	if r.NumDocs() != 2 || r.Base() != c {
		t.Error("Reader basics wrong")
	}
	if r.AvgDocBytes() != float64(c.Stats().Bytes)/2 {
		t.Errorf("AvgDocBytes = %v", r.AvgDocBytes())
	}
	it := r.Documents()
	n := 0
	for {
		_, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 2 {
		t.Errorf("iterated %d docs", n)
	}
}

func TestSubsetBasics(t *testing.T) {
	d := newDisk(64)
	r := rand.New(rand.NewSource(5))
	docs := randomDocs(r, 30, 60, 10)
	c := buildDocs(t, d, "c", docs)
	sub, err := c.Subset([]uint32{7, 3, 7, 20})
	if err != nil {
		t.Fatal(err)
	}
	ids := sub.IDs()
	if len(ids) != 3 || ids[0] != 3 || ids[1] != 7 || ids[2] != 20 {
		t.Errorf("IDs = %v (want sorted dedup)", ids)
	}
	if sub.NumDocs() != 3 || sub.Base() != c {
		t.Error("subset basics wrong")
	}
	if sub.Name() == "" {
		t.Error("empty Name")
	}
	if _, err := c.Subset([]uint32{99}); !errors.Is(err, ErrNoSuchDoc) {
		t.Errorf("bad id err = %v, want ErrNoSuchDoc", err)
	}
}

func TestSubsetIterationIsRandomIO(t *testing.T) {
	d := newDisk(64)
	r := rand.New(rand.NewSource(9))
	docs := randomDocs(r, 40, 60, 10)
	c := buildDocs(t, d, "c", docs)
	sub, err := c.Subset([]uint32{2, 3, 4}) // adjacent docs: would be partly sequential without head parking
	if err != nil {
		t.Fatal(err)
	}
	d.ResetStats()
	it := sub.Documents()
	seen := 0
	for {
		doc, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if doc.ID != sub.IDs()[seen] {
			t.Errorf("doc %d = id %d", seen, doc.ID)
		}
		seen++
	}
	s := d.Stats()
	if seen != 3 {
		t.Fatalf("saw %d docs", seen)
	}
	if s.RandReads < 3 {
		t.Errorf("RandReads = %d, want >= 1 per doc", s.RandReads)
	}
}

func TestReaderAccessors(t *testing.T) {
	d := newDisk(128)
	c := buildDocs(t, d, "c", []*document.Document{mkdoc(0, 1, 2), mkdoc(1, 2)})
	// Collection as Reader.
	var r Reader = c
	if r.File() != c.File() || r.BaseStats() != c.Stats() {
		t.Error("collection reader accessors wrong")
	}
	if len(c.DFMap()) != 2 {
		t.Errorf("DFMap = %v", c.DFMap())
	}
	// Subset delegates to the base collection.
	sub, err := c.Subset([]uint32{1})
	if err != nil {
		t.Fatal(err)
	}
	var sr Reader = sub
	if sr.File() != c.File() || sr.BaseStats() != c.Stats() {
		t.Error("subset reader accessors wrong")
	}
	if sr.DF(2) != c.DF(2) {
		t.Errorf("subset DF = %d", sr.DF(2))
	}
	if len(sr.Norms()) != 2 {
		t.Errorf("subset Norms = %v", sr.Norms())
	}
	terms := sr.Terms()
	if len(terms) != 2 || terms[0] != 1 {
		t.Errorf("subset Terms = %v", terms)
	}
	if sub.AvgDocBytes() <= 0 {
		t.Error("subset AvgDocBytes")
	}
}

func TestSubsetStats(t *testing.T) {
	d := newDisk(64)
	c := buildDocs(t, d, "c", []*document.Document{
		mkdoc(0, 1, 2), mkdoc(1, 3, 4, 5), mkdoc(2, 1),
	})
	sub, _ := c.Subset([]uint32{0, 1})
	st := sub.Stats()
	if st.N != 2 {
		t.Errorf("N = %d", st.N)
	}
	if math.Abs(st.K-2.5) > 1e-9 {
		t.Errorf("K = %v, want 2.5", st.K)
	}
	if st.T <= 0 || st.T > c.Stats().T {
		t.Errorf("T = %d, parent T = %d", st.T, c.Stats().T)
	}
	empty, _ := c.Subset(nil)
	if est := empty.Stats(); est.N != 0 || est.K != 0 {
		t.Errorf("empty subset stats = %+v", est)
	}
	if empty.AvgDocBytes() != 0 {
		t.Errorf("empty AvgDocBytes = %v", empty.AvgDocBytes())
	}
}

func TestVocabularyGrowth(t *testing.T) {
	// f is increasing in m and approaches T.
	tt, k := 1000.0, 50.0
	prev := 0.0
	for _, m := range []float64{1, 2, 5, 10, 100, 1000} {
		f := VocabularyGrowth(tt, k, m)
		if f <= prev {
			t.Errorf("f(%v) = %v not increasing (prev %v)", m, f, prev)
		}
		if f > tt {
			t.Errorf("f(%v) = %v exceeds T", m, f)
		}
		prev = f
	}
	if got := VocabularyGrowth(tt, k, 1); math.Abs(got-k) > 1e-9 {
		t.Errorf("f(1) = %v, want K = %v", got, k)
	}
	if VocabularyGrowth(0, 5, 10) != 0 || VocabularyGrowth(100, 5, 0) != 0 {
		t.Error("degenerate inputs should give 0")
	}
	// K > T (cannot happen in practice) must not blow up.
	if got := VocabularyGrowth(10, 20, 3); got != 10 {
		t.Errorf("f with K>T = %v, want T", got)
	}
}

func TestMaterialize(t *testing.T) {
	d := newDisk(64)
	r := rand.New(rand.NewSource(13))
	docs := randomDocs(r, 25, 40, 8)
	c := buildDocs(t, d, "c", docs)
	sub, _ := c.Subset([]uint32{4, 9, 17})
	f, _ := d.Create("small")
	small, origIDs, err := Materialize("small", f, sub)
	if err != nil {
		t.Fatal(err)
	}
	if small.NumDocs() != 3 {
		t.Fatalf("materialized N = %d", small.NumDocs())
	}
	if len(origIDs) != 3 || origIDs[0] != 4 || origIDs[1] != 9 || origIDs[2] != 17 {
		t.Errorf("origIDs = %v", origIDs)
	}
	for newID, oldID := range origIDs {
		got, err := small.Fetch(uint32(newID))
		if err != nil {
			t.Fatal(err)
		}
		want := docs[oldID]
		if len(got.Cells) != len(want.Cells) {
			t.Fatalf("doc %d cells = %d, want %d", newID, len(got.Cells), len(want.Cells))
		}
		for i := range want.Cells {
			if got.Cells[i] != want.Cells[i] {
				t.Errorf("doc %d cell %d differs", newID, i)
			}
		}
	}
}

// Property: build + scan round-trips any random document set, and the scan
// touches exactly D pages.
func TestQuickBuildScanRoundTrip(t *testing.T) {
	check := func(seed int64, psSeed uint8) bool {
		r := rand.New(rand.NewSource(seed))
		pageSize := []int{32, 64, 128, 4096}[psSeed%4]
		d := newDisk(pageSize)
		docs := randomDocs(r, r.Intn(30)+1, 50, 15)
		f, _ := d.Create("c")
		b, err := NewBuilder("c", f)
		if err != nil {
			return false
		}
		for _, doc := range docs {
			if err := b.Add(doc); err != nil {
				return false
			}
		}
		c, err := b.Finish()
		if err != nil {
			return false
		}
		d.ResetStats()
		sc := c.Scan()
		for i := 0; ; i++ {
			doc, err := sc.Next()
			if err == io.EOF {
				if i != len(docs) {
					return false
				}
				break
			}
			if err != nil || doc.ID != uint32(i) || len(doc.Cells) != len(docs[i].Cells) {
				return false
			}
			for j := range doc.Cells {
				if doc.Cells[j] != docs[i].Cells[j] {
					return false
				}
			}
		}
		return d.Stats().Reads() == c.Stats().D
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: Fetch(id) equals the id-th document of a scan for random ids.
func TestQuickFetchMatchesScan(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := newDisk(64)
		docs := randomDocs(r, r.Intn(40)+1, 60, 12)
		f, _ := d.Create("c")
		b, _ := NewBuilder("c", f)
		for _, doc := range docs {
			if err := b.Add(doc); err != nil {
				return false
			}
		}
		c, err := b.Finish()
		if err != nil {
			return false
		}
		for probe := 0; probe < 10; probe++ {
			id := uint32(r.Intn(len(docs)))
			got, err := c.Fetch(id)
			if err != nil || got.ID != id || len(got.Cells) != len(docs[id].Cells) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
