package collection

import (
	"errors"
	"io"
	"math"
	"testing"

	"textjoin/internal/document"
)

func TestBatchBasics(t *testing.T) {
	docs := []*document.Document{
		document.New(3, map[uint32]int{1: 2, 5: 1}),
		document.New(9, map[uint32]int{5: 3}),
	}
	b, err := NewBatch("q", docs)
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "q" || b.NumDocs() != 2 {
		t.Errorf("name=%q n=%d", b.Name(), b.NumDocs())
	}
	if b.Base() != nil || b.File() != nil {
		t.Error("batch should have no base collection or file")
	}
	if b.DF(5) != 2 || b.DF(1) != 1 || b.DF(99) != 0 {
		t.Errorf("df: %d %d %d", b.DF(5), b.DF(1), b.DF(99))
	}
	terms := b.Terms()
	if len(terms) != 2 || terms[0] != 1 || terms[1] != 5 {
		t.Errorf("terms = %v", terms)
	}
	norms := b.Norms()
	if math.Abs(norms[3]-math.Sqrt(5)) > 1e-12 {
		t.Errorf("norm(3) = %v", norms[3])
	}
	st := b.BaseStats()
	if st.N != 2 || st.T != 2 || st.TotalCells != 3 || st.K != 1.5 {
		t.Errorf("stats = %+v", st)
	}
	if st.D != 0 || st.Bytes != 0 {
		t.Errorf("memory-resident batch has storage sizes: %+v", st)
	}
	if b.AvgDocBytes() <= 0 {
		t.Error("AvgDocBytes should reflect packed size")
	}
}

func TestBatchIteration(t *testing.T) {
	docs := []*document.Document{
		document.New(7, map[uint32]int{1: 1}),
		document.New(2, map[uint32]int{2: 1}),
	}
	b, err := NewBatch("q", docs)
	if err != nil {
		t.Fatal(err)
	}
	it := b.Documents()
	d1, err := it.Next()
	if err != nil || d1.ID != 7 {
		t.Fatalf("first = %v, %v", d1, err)
	}
	d2, err := it.Next()
	if err != nil || d2.ID != 2 {
		t.Fatalf("second = %v, %v", d2, err)
	}
	if _, err := it.Next(); err != io.EOF {
		t.Errorf("end err = %v", err)
	}
}

func TestBatchEmpty(t *testing.T) {
	b, err := NewBatch("q", nil)
	if err != nil {
		t.Fatal(err)
	}
	if b.NumDocs() != 0 || b.AvgDocBytes() != 0 || b.BaseStats().K != 0 {
		t.Errorf("empty batch: %+v", b.BaseStats())
	}
	if _, err := b.Documents().Next(); err != io.EOF {
		t.Error("empty iteration should EOF")
	}
	if len(b.Terms()) != 0 {
		t.Error("empty batch has terms")
	}
}

func TestBatchValidation(t *testing.T) {
	dup := []*document.Document{
		document.New(1, map[uint32]int{1: 1}),
		document.New(1, map[uint32]int{2: 1}),
	}
	if _, err := NewBatch("q", dup); !errors.Is(err, ErrDuplicateDoc) {
		t.Errorf("dup err = %v", err)
	}
	bad := &document.Document{ID: 0, Cells: []document.Cell{{Term: 9, Weight: 1}, {Term: 1, Weight: 1}}}
	if _, err := NewBatch("q", []*document.Document{bad}); err == nil {
		t.Error("invalid doc: want error")
	}
}
