package collection

import "textjoin/internal/iosim"

// WithView returns a copy of the collection whose storage access runs
// through the given read-only I/O view: scans and fetches move the
// view's private head positions and count into the view's Stats, never
// touching the shared per-file head. The copy shares every immutable
// table (directory, document frequencies, norms, memoized derived maps)
// with the original, so it is cheap and its results are byte-identical.
// A nil view returns the collection unchanged.
func (c *Collection) WithView(v *iosim.View) *Collection {
	if c == nil || v == nil {
		return c
	}
	c2 := *c
	c2.file = v.File(c.file)
	return &c2
}

// WithView returns a copy of the subset (and of its base collection)
// bound to the given read-only I/O view. See Collection.WithView.
func (s *Subset) WithView(v *iosim.View) *Subset {
	if s == nil || v == nil {
		return s
	}
	return &Subset{c: s.c.WithView(v), ids: s.ids, der: s.der}
}

// ReaderWithView rebinds a Reader's storage access to the given view.
// Collections and subsets return view-bound copies of their concrete
// types (type assertions on the result keep working); memory-resident
// readers, which perform no storage I/O, are returned unchanged.
func ReaderWithView(r Reader, v *iosim.View) Reader {
	switch t := r.(type) {
	case *Collection:
		return t.WithView(v)
	case *Subset:
		return t.WithView(v)
	}
	return r
}
