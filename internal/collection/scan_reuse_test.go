package collection

import (
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"textjoin/internal/document"
	"textjoin/internal/iosim"
)

// TestQuickScanReuseMatchesFetch property-tests the zero-allocation scan
// path: on random corpora and page sizes, the sequence of documents
// yielded by NextReuse must be byte-identical to fetching every document
// by id through the allocating Fetch/DecodeRecord path.
func TestQuickScanReuseMatchesFetch(t *testing.T) {
	check := func(seed int64, pageSel uint8) bool {
		r := rand.New(rand.NewSource(seed))
		pageSizes := []int{64, 128, 256, 1024}
		d := iosim.NewDisk(iosim.WithPageSize(pageSizes[int(pageSel)%len(pageSizes)]))
		c := buildDocs(t, d, "c", randomDocs(r, r.Intn(30)+1, 60, 12))

		sc := c.Scan()
		for id := int64(0); id < c.NumDocs(); id++ {
			want, err := c.Fetch(uint32(id))
			if err != nil {
				t.Fatal(err)
			}
			got, err := sc.NextReuse()
			if err != nil {
				t.Fatalf("doc %d: %v", id, err)
			}
			if got.ID != want.ID || len(got.Cells) != len(want.Cells) {
				return false
			}
			for i := range got.Cells {
				if got.Cells[i] != want.Cells[i] {
					return false
				}
			}
		}
		if _, err := sc.NextReuse(); err != io.EOF {
			t.Fatalf("after last doc: %v, want EOF", err)
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestScanReuseArenaSemantics pins the reuse contract: the document
// returned by NextReuse is overwritten by the following call, while Next
// returns stable clones that survive the rest of the scan.
func TestScanReuseArenaSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	d := iosim.NewDisk(iosim.WithPageSize(128))
	c := buildDocs(t, d, "c", randomDocs(r, 12, 40, 10))

	// Reuse: the arena pointer is the same across calls, and its contents
	// change when the next document differs.
	sc := c.Scan()
	first, err := sc.NextReuse()
	if err != nil {
		t.Fatal(err)
	}
	firstID := first.ID
	second, err := sc.NextReuse()
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("NextReuse yielded distinct documents %p and %p, want one arena", first, second)
	}
	if first.ID == firstID {
		t.Fatalf("arena still holds document %d after the next call", firstID)
	}

	// Clone: documents from Next are unaffected by subsequent calls.
	sc2 := c.Scan()
	d0, err := sc2.Next()
	if err != nil {
		t.Fatal(err)
	}
	id0 := d0.ID
	cells0 := append([]document.Cell(nil), d0.Cells...)
	for {
		if _, err := sc2.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if d0.ID != id0 || len(d0.Cells) != len(cells0) {
		t.Fatalf("document from Next mutated by later scanning: id %d -> %d", id0, d0.ID)
	}
	for i := range cells0 {
		if d0.Cells[i] != cells0[i] {
			t.Fatalf("cell %d of retained document mutated", i)
		}
	}
}
