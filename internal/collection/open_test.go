package collection

import (
	"math"
	"math/rand"
	"testing"

	"textjoin/internal/document"
	"textjoin/internal/iosim"
)

func TestOpenRebuildsEverything(t *testing.T) {
	d := iosim.NewDisk(iosim.WithPageSize(64))
	r := rand.New(rand.NewSource(19))
	docs := randomDocs(r, 35, 60, 12)
	c := buildDocs(t, d, "c", docs)

	f, err := d.Open("c")
	if err != nil {
		t.Fatal(err)
	}
	reopened, err := Open("c", f, c.NumDocs())
	if err != nil {
		t.Fatal(err)
	}
	a, b := c.Stats(), reopened.Stats()
	if a.N != b.N || a.T != b.T || a.TotalCells != b.TotalCells || a.Bytes != b.Bytes || a.D != b.D {
		t.Errorf("stats differ: %+v vs %+v", a, b)
	}
	if math.Abs(a.K-b.K) > 1e-12 || math.Abs(a.S-b.S) > 1e-12 {
		t.Errorf("derived stats differ: %+v vs %+v", a, b)
	}
	for _, term := range c.Terms() {
		if c.DF(term) != reopened.DF(term) {
			t.Errorf("df(%d): %d vs %d", term, c.DF(term), reopened.DF(term))
		}
	}
	for id := uint32(0); int64(id) < c.NumDocs(); id++ {
		if math.Abs(c.Norm(id)-reopened.Norm(id)) > 1e-12 {
			t.Errorf("norm(%d) differs", id)
		}
		orig, err1 := c.Fetch(id)
		back, err2 := reopened.Fetch(id)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if len(orig.Cells) != len(back.Cells) {
			t.Fatalf("doc %d cells differ", id)
		}
		for i := range orig.Cells {
			if orig.Cells[i] != back.Cells[i] {
				t.Fatalf("doc %d cell %d differs", id, i)
			}
		}
	}
}

func TestOpenEmpty(t *testing.T) {
	d := iosim.NewDisk(iosim.WithPageSize(64))
	c := buildDocs(t, d, "c", nil)
	f, _ := d.Open("c")
	reopened, err := Open("c", f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.NumDocs() != 0 || reopened.Stats() != c.Stats() {
		t.Errorf("reopened empty = %+v", reopened.Stats())
	}
}

func TestOpenWrongDocCount(t *testing.T) {
	d := iosim.NewDisk(iosim.WithPageSize(64))
	c := buildDocs(t, d, "c", []*document.Document{
		document.New(0, map[uint32]int{1: 1}),
		document.New(1, map[uint32]int{2: 1}),
	})
	f, _ := d.Open("c")
	// Asking for more documents than exist must fail (reads past the end
	// or decodes padding as a wrong-id record).
	if _, err := Open("c", f, c.NumDocs()+5); err == nil {
		t.Error("over-count Open: want error")
	}
}

func TestOpenNotACollection(t *testing.T) {
	d := iosim.NewDisk(iosim.WithPageSize(64))
	f, _ := d.Create("junk")
	f.AppendPage([]byte{9, 9, 9, 9, 9, 9, 9, 9})
	if _, err := Open("junk", f, 1); err == nil {
		t.Error("junk file: want error")
	}
}
