// Package collection stores a document collection on a simulated disk
// exactly as the paper assumes: documents packed tightly in consecutive
// storage locations in ascending document-number order.
//
// Scanning the collection in storage order therefore reads D pages
// sequentially, while fetching single documents in random order reads
// ⌈S⌉ pages per document at random-I/O cost — the two access patterns the
// paper's cost formulas are built from.
//
// The package also implements selection subsets: "due to selection
// conditions on other attributes ... it is possible that only part of the
// documents in a collection need to participate in a join". A Subset reads
// its documents by number (random I/O, the paper's Group 3 setting), while
// Materialize copies a subset into a new, originally small collection
// (the Group 4 setting).
package collection

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"textjoin/internal/codec"
	"textjoin/internal/document"
	"textjoin/internal/iosim"
)

// Errors returned by the package.
var (
	ErrDocOrder     = errors.New("collection: documents must be added in ascending id order starting at 0")
	ErrFinished     = errors.New("collection: builder already finished")
	ErrNotFinished  = errors.New("collection: builder not finished")
	ErrNoSuchDoc    = errors.New("collection: no such document")
	ErrDuplicateDoc = errors.New("collection: duplicate document id")
)

// Stats holds the collection statistics the paper's cost formulas consume.
type Stats struct {
	// N is the number of documents.
	N int64
	// T is the number of distinct terms.
	T int64
	// K is the average number of terms in a document.
	K float64
	// TotalCells is Σ over documents of the number of d-cells (N·K).
	TotalCells int64
	// Bytes is the tightly packed size in bytes.
	Bytes int64
	// S is the average size of a document in pages.
	S float64
	// D is the size of the collection in pages (the file size).
	D int64
	// PageSize is the page size the sizes are expressed in.
	PageSize int
}

// DocRef locates one packed document inside the collection file.
type DocRef struct {
	// Off is the byte offset of the document record.
	Off int64
	// Len is the packed length in bytes.
	Len int32
	// Terms is the number of distinct terms (d-cells) in the document.
	Terms int32
}

// Collection is an immutable, fully built document collection.
type Collection struct {
	name  string
	file  *iosim.File
	refs  []DocRef
	stats Stats
	df    map[uint32]int64
	norms []float64

	// der holds the lazily built derived tables behind a pointer shared
	// by every view-bound copy of the collection, so WithView can return
	// a shallow copy (no sync.Once is ever copied) and the O(N)/O(T)
	// maps are still built exactly once per collection.
	der *derived
}

// derived memoizes tables built once on first use and shared afterwards
// (every cosine/tf-idf join used to rebuild these O(N)/O(T) maps per
// call).
type derived struct {
	normOnce sync.Once
	normMap  map[uint32]float64
	idfOnce  sync.Once
	idfMap   map[uint32]float64
}

// Builder accumulates documents into a collection file. Documents must be
// added in ascending id order starting at 0 (the paper's document numbers
// are dense within a collection).
type Builder struct {
	name     string
	file     *iosim.File
	w        *iosim.Writer
	refs     []DocRef
	df       map[uint32]int64
	norms    []float64
	cells    int64
	finished bool
	buf      []byte
}

// NewBuilder starts building a collection named name in the given empty
// file.
func NewBuilder(name string, file *iosim.File) (*Builder, error) {
	if file.Pages() != 0 {
		return nil, fmt.Errorf("collection: build target %q is not empty", file.Name())
	}
	return &Builder{
		name: name,
		file: file,
		w:    file.Writer(),
		df:   make(map[uint32]int64),
	}, nil
}

// Add appends one document. The document id must equal the number of
// documents added so far.
func (b *Builder) Add(d *document.Document) error {
	if b.finished {
		return ErrFinished
	}
	if d.ID != uint32(len(b.refs)) {
		return fmt.Errorf("%w: got id %d, want %d", ErrDocOrder, d.ID, len(b.refs))
	}
	if err := d.Validate(); err != nil {
		return fmt.Errorf("collection: %v", err)
	}
	rec := d.ToRecord()
	var err error
	b.buf, err = codec.AppendRecord(b.buf[:0], rec)
	if err != nil {
		return err
	}
	off := b.w.Offset()
	if _, err := b.w.Write(b.buf); err != nil {
		return err
	}
	b.refs = append(b.refs, DocRef{Off: off, Len: int32(len(b.buf)), Terms: int32(len(d.Cells))})
	for _, c := range d.Cells {
		b.df[c.Term]++
	}
	b.norms = append(b.norms, d.Norm())
	b.cells += int64(len(d.Cells))
	return nil
}

// Finish flushes the file and returns the immutable collection.
func (b *Builder) Finish() (*Collection, error) {
	if b.finished {
		return nil, ErrFinished
	}
	b.finished = true
	if err := b.w.Flush(); err != nil {
		return nil, err
	}
	n := int64(len(b.refs))
	stats := Stats{
		N:          n,
		T:          int64(len(b.df)),
		TotalCells: b.cells,
		Bytes:      b.w.Offset(),
		D:          b.file.Pages(),
		PageSize:   b.file.PageSize(),
	}
	if n > 0 {
		stats.K = float64(b.cells) / float64(n)
		stats.S = float64(stats.Bytes) / float64(n) / float64(stats.PageSize)
	}
	return &Collection{
		name:  b.name,
		file:  b.file,
		refs:  b.refs,
		stats: stats,
		df:    b.df,
		norms: b.norms,
		der:   &derived{},
	}, nil
}

// Open re-attaches to a collection file written earlier (e.g. restored
// from a disk snapshot), rebuilding the in-memory directory, document
// frequencies and norms with one sequential scan of expectedDocs packed
// records. The scan is charged like any other statistics-collection pass;
// callers that only want join-time I/O should reset the disk statistics
// afterwards.
func Open(name string, file *iosim.File, expectedDocs int64) (*Collection, error) {
	c := &Collection{
		name:  name,
		file:  file,
		df:    make(map[uint32]int64),
		stats: Stats{PageSize: file.PageSize()},
		der:   &derived{},
	}
	var buf []byte
	var nextPage, off int64
	for id := int64(0); id < expectedDocs; id++ {
		// Buffer enough bytes for the header, then the whole record.
		need := int64(codec.DocHeaderSize)
		for int64(len(buf)) < need {
			page, err := file.ReadPage(nextPage)
			if err != nil {
				return nil, fmt.Errorf("collection %s: doc %d: %w", name, id, err)
			}
			nextPage++
			buf = append(buf, page...)
		}
		size, err := codec.PeekRecordSize(buf)
		if err != nil {
			return nil, fmt.Errorf("collection %s: doc %d: %w", name, id, err)
		}
		for int64(len(buf)) < size {
			page, err := file.ReadPage(nextPage)
			if err != nil {
				return nil, fmt.Errorf("collection %s: doc %d: %w", name, id, err)
			}
			nextPage++
			buf = append(buf, page...)
		}
		rec, consumed, err := codec.DecodeRecord(buf)
		if err != nil {
			return nil, fmt.Errorf("collection %s: doc %d: %w", name, id, err)
		}
		if int64(rec.Number) != id {
			return nil, fmt.Errorf("collection %s: record %d has id %d (not a collection file?)", name, id, rec.Number)
		}
		buf = buf[consumed:]
		d := document.FromRecord(rec)
		c.refs = append(c.refs, DocRef{Off: off, Len: int32(consumed), Terms: int32(len(d.Cells))})
		for _, cell := range d.Cells {
			c.df[cell.Term]++
		}
		c.norms = append(c.norms, d.Norm())
		c.stats.TotalCells += int64(len(d.Cells))
		off += consumed
	}
	c.stats.N = expectedDocs
	c.stats.T = int64(len(c.df))
	c.stats.Bytes = off
	c.stats.D = file.Pages()
	if expectedDocs > 0 {
		c.stats.K = float64(c.stats.TotalCells) / float64(expectedDocs)
		c.stats.S = float64(off) / float64(expectedDocs) / float64(c.stats.PageSize)
	}
	return c, nil
}

// Name returns the collection name.
func (c *Collection) Name() string { return c.name }

// Stats returns the measured collection statistics.
func (c *Collection) Stats() Stats { return c.stats }

// NumDocs returns N.
func (c *Collection) NumDocs() int64 { return c.stats.N }

// File exposes the underlying file (for I/O accounting in tests and for
// the inverted-file builder).
func (c *Collection) File() *iosim.File { return c.file }

// Ref returns the storage reference of document id.
func (c *Collection) Ref(id uint32) (DocRef, error) {
	if int(id) >= len(c.refs) {
		return DocRef{}, fmt.Errorf("%w: %d of %d", ErrNoSuchDoc, id, len(c.refs))
	}
	return c.refs[id], nil
}

// DF returns the document frequency of term (paper: "the frequency of a
// term in a collection [is] the number of documents containing the term").
func (c *Collection) DF(term uint32) int64 { return c.df[term] }

// DFMap returns the full document-frequency table; callers must not modify
// it.
func (c *Collection) DFMap() map[uint32]int64 { return c.df }

// HasTerm reports whether term occurs anywhere in the collection.
func (c *Collection) HasTerm(term uint32) bool { return c.df[term] > 0 }

// Terms returns all distinct terms in ascending order.
func (c *Collection) Terms() []uint32 {
	terms := make([]uint32, 0, len(c.df))
	for t := range c.df {
		terms = append(terms, t)
	}
	sort.Slice(terms, func(i, j int) bool { return terms[i] < terms[j] })
	return terms
}

// Norm returns the pre-computed Euclidean norm of document id, 0 when the
// id is out of range.
func (c *Collection) Norm(id uint32) float64 {
	if int(id) >= len(c.norms) {
		return 0
	}
	return c.norms[id]
}

// Norms returns the norm table keyed by document id, for cosine scoring.
// The table is computed once and the same map is returned on every call;
// callers must not modify it.
func (c *Collection) Norms() map[uint32]float64 {
	c.der.normOnce.Do(func() {
		m := make(map[uint32]float64, len(c.norms))
		for id, n := range c.norms {
			m[uint32(id)] = n
		}
		c.der.normMap = m
	})
	return c.der.normMap
}

// IDFMap returns idf weights for every term, for tf-idf scoring. The table
// is computed once and the same map is returned on every call; callers
// must not modify it.
func (c *Collection) IDFMap() map[uint32]float64 {
	c.der.idfOnce.Do(func() {
		m := make(map[uint32]float64, len(c.df))
		for term, df := range c.df {
			m[term] = document.IDF(c.stats.N, df)
		}
		c.der.idfMap = m
	})
	return c.der.idfMap
}

// Fetch reads document id with a random access, touching the ⌈S⌉-ish pages
// the record spans.
func (c *Collection) Fetch(id uint32) (*document.Document, error) {
	ref, err := c.Ref(id)
	if err != nil {
		return nil, err
	}
	raw, err := c.file.ReadAt(ref.Off, int64(ref.Len))
	if err != nil {
		return nil, err
	}
	d := &document.Document{}
	if _, err := document.DecodeInto(d, raw); err != nil {
		return nil, err
	}
	return d, nil
}

// Scanner iterates documents in storage order, reading every page of the
// collection exactly once (the paper's sequential scan costing D pages).
//
// The scanner consumes records from a page-backed window: a record that
// lies entirely within the current page is decoded straight out of the
// page image, and only records crossing a page boundary are stitched
// through a small reused scratch buffer — nothing re-copies every page
// into a growing buffer.
type Scanner struct {
	c        *Collection
	nextPage int64
	// window is the unconsumed tail of the most recently read page (it
	// aliases the page image, or scratch after a stitch).
	window  []byte
	scratch []byte
	doc     document.Document // arena for NextReuse
	next    int               // next document id to return
	err     error
}

// Scan starts a sequential scan from the first document.
func (c *Collection) Scan() *Scanner {
	return &Scanner{c: c}
}

// NextReuse returns the next document, or io.EOF when the scan is
// complete. The returned document lives in the scanner's arena: it is
// valid only until the next call, and callers that retain it must Clone
// it. The steady state allocates nothing.
func (s *Scanner) NextReuse() (*document.Document, error) {
	if s.err != nil {
		return nil, s.err
	}
	if s.next >= len(s.c.refs) {
		s.err = io.EOF
		return nil, io.EOF
	}
	need := int(s.c.refs[s.next].Len)
	if len(s.window) < need {
		// The record extends past the window: stitch it (and the rest of
		// the page it ends on) into scratch. The window may already alias
		// scratch; append copies via memmove, so the overlap is safe.
		s.scratch = append(s.scratch[:0], s.window...)
		for len(s.scratch) < need {
			page, err := s.c.file.ReadPage(s.nextPage)
			if err != nil {
				s.err = err
				return nil, err
			}
			s.nextPage++
			s.scratch = append(s.scratch, page...)
		}
		s.window = s.scratch
	}
	consumed, err := document.DecodeInto(&s.doc, s.window[:need])
	if err != nil {
		s.err = err
		return nil, err
	}
	s.window = s.window[consumed:]
	s.next++
	return &s.doc, nil
}

// Next returns the next document, or io.EOF when the scan is complete. The
// document is freshly allocated and safe to retain; hot paths that only
// inspect each document should prefer NextReuse.
func (s *Scanner) Next() (*document.Document, error) {
	d, err := s.NextReuse()
	if err != nil {
		return nil, err
	}
	return d.Clone(), nil
}

// Reader abstracts the document sources a join can consume: a full
// collection (sequential scan), a selection subset (random fetches) or a
// memory-resident query batch (no storage at all).
type Reader interface {
	// Name identifies the source for diagnostics.
	Name() string
	// NumDocs returns the number of documents the source yields.
	NumDocs() int64
	// AvgDocBytes returns the average packed document size in bytes.
	AvgDocBytes() float64
	// Documents starts a new iteration over the source's documents.
	Documents() DocIterator
	// Base returns the underlying collection, or nil for sources that
	// are not backed by one (memory-resident batches).
	Base() *Collection
	// File returns the backing storage file, or nil when the source is
	// memory-resident.
	File() *iosim.File
	// DF returns the document frequency of term over the source's
	// universe (the base collection for subsets; the batch itself for
	// memory batches).
	DF(term uint32) int64
	// Terms returns the distinct terms of the source's universe in
	// ascending order.
	Terms() []uint32
	// Norms returns pre-computed document norms keyed by document id.
	Norms() map[uint32]float64
	// BaseStats returns the statistics governing the source's storage
	// costs (zero sizes for memory-resident sources).
	BaseStats() Stats
}

// DocIterator yields documents until io.EOF. Documents returned by Next
// are stable: they remain valid after further calls.
type DocIterator interface {
	Next() (*document.Document, error)
}

// ReuseIterator is a DocIterator that can additionally yield documents
// from an internal arena. A document returned by NextReuse is valid only
// until the next call (of either method); callers that retain it must
// Clone it. Memory-resident sources may return stable documents from
// NextReuse — the contract is simply that callers must not assume
// stability, and must never mutate the yielded document.
type ReuseIterator interface {
	DocIterator
	NextReuse() (*document.Document, error)
}

// NextReuse advances it through the reuse path when the iterator offers
// one, falling back to the allocating Next otherwise. Join hot loops that
// consume each document transiently use this helper so any Reader
// implementation benefits from arena iteration without being required to
// provide it.
func NextReuse(it DocIterator) (*document.Document, error) {
	if r, ok := it.(ReuseIterator); ok {
		return r.NextReuse()
	}
	return it.Next()
}

// Collection implements Reader over all its documents.
var _ Reader = (*Collection)(nil)

// AvgDocBytes returns the average packed document size in bytes.
func (c *Collection) AvgDocBytes() float64 {
	if c.stats.N == 0 {
		return 0
	}
	return float64(c.stats.Bytes) / float64(c.stats.N)
}

// Documents starts a sequential scan (Reader interface).
func (c *Collection) Documents() DocIterator { return c.Scan() }

// Base returns the collection itself (Reader interface).
func (c *Collection) Base() *Collection { return c }

// BaseStats returns the collection's statistics (Reader interface).
func (c *Collection) BaseStats() Stats { return c.stats }

// Subset is a selection result: the documents of a collection whose ids
// are listed, read in id order by random fetches. It models the paper's
// Group 3 scenario, where "documents in C2 need to be read in randomly"
// because the surviving documents of a large collection are scattered.
type Subset struct {
	c   *Collection
	ids []uint32

	// der memoizes derived statistics behind a pointer shared by every
	// view-bound copy: a subset is immutable, so the per-call
	// O(len(ids)) directory walks are paid once.
	der *subsetDerived
}

type subsetDerived struct {
	statsOnce sync.Once
	stats     Stats
	avgOnce   sync.Once
	avgBytes  float64
}

var _ Reader = (*Subset)(nil)

// Subset creates a selection over the given document ids. The ids are
// sorted and deduplicated; unknown ids are rejected.
func (c *Collection) Subset(ids []uint32) (*Subset, error) {
	sorted := make([]uint32, len(ids))
	copy(sorted, ids)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := sorted[:0]
	var prev int64 = -1
	for _, id := range sorted {
		if int(id) >= len(c.refs) {
			return nil, fmt.Errorf("%w: %d of %d", ErrNoSuchDoc, id, len(c.refs))
		}
		if int64(id) != prev {
			out = append(out, id)
		}
		prev = int64(id)
	}
	return &Subset{c: c, ids: out, der: &subsetDerived{}}, nil
}

// Name identifies the subset.
func (s *Subset) Name() string { return fmt.Sprintf("%s[%d docs]", s.c.name, len(s.ids)) }

// NumDocs returns the number of selected documents.
func (s *Subset) NumDocs() int64 { return int64(len(s.ids)) }

// IDs returns the selected document ids in ascending order; callers must
// not modify the slice.
func (s *Subset) IDs() []uint32 { return s.ids }

// Base returns the underlying collection.
func (s *Subset) Base() *Collection { return s.c }

// File returns the underlying collection's file (Reader interface).
func (s *Subset) File() *iosim.File { return s.c.file }

// DF returns the document frequency of term in the base collection: an IR
// system keeps the full table regardless of selections.
func (s *Subset) DF(term uint32) int64 { return s.c.DF(term) }

// Norms returns the base collection's norm table (ids are shared).
func (s *Subset) Norms() map[uint32]float64 { return s.c.Norms() }

// Terms returns the base collection's distinct terms.
func (s *Subset) Terms() []uint32 { return s.c.Terms() }

// BaseStats returns the base collection's statistics (Reader interface):
// storage costs are governed by the original, originally large file.
func (s *Subset) BaseStats() Stats { return s.c.stats }

// AvgDocBytes returns the average packed size of the selected documents,
// computed from the directory once and memoized.
func (s *Subset) AvgDocBytes() float64 {
	s.der.avgOnce.Do(func() {
		if len(s.ids) == 0 {
			return
		}
		var total int64
		for _, id := range s.ids {
			total += int64(s.c.refs[id].Len)
		}
		s.der.avgBytes = float64(total) / float64(len(s.ids))
	})
	return s.der.avgBytes
}

// Stats estimates the statistics of the subset viewed as a collection of
// its own: N and K are measured from the document directory (no I/O), and
// the number of distinct terms is estimated with the paper's vocabulary
// growth formula f(m) = T·(1 − (1 − K/T)^m). The walk over the directory
// happens once; repeat calls return the memoized value.
func (s *Subset) Stats() Stats {
	s.der.statsOnce.Do(func() {
		parent := s.c.stats
		st := Stats{N: int64(len(s.ids)), PageSize: parent.PageSize}
		if st.N == 0 {
			s.der.stats = st
			return
		}
		var cells int64
		var bytes int64
		for _, id := range s.ids {
			cells += int64(s.c.refs[id].Terms)
			bytes += int64(s.c.refs[id].Len)
		}
		st.TotalCells = cells
		st.Bytes = bytes
		st.K = float64(cells) / float64(st.N)
		st.S = float64(bytes) / float64(st.N) / float64(st.PageSize)
		st.D = iosim.PagesForBytes(bytes, st.PageSize)
		st.T = int64(math.Round(VocabularyGrowth(float64(parent.T), parent.K, float64(st.N))))
		s.der.stats = st
	})
	return s.der.stats
}

// Documents iterates the selected documents in id order via random
// fetches.
func (s *Subset) Documents() DocIterator {
	return &subsetIterator{s: s}
}

type subsetIterator struct {
	s    *Subset
	next int
}

var _ ReuseIterator = (*subsetIterator)(nil)

// NextReuse is Next: random fetches decode into fresh documents (the
// random-I/O path is dominated by page reads, not allocation), which
// trivially satisfies the reuse contract.
func (it *subsetIterator) NextReuse() (*document.Document, error) { return it.Next() }

func (it *subsetIterator) Next() (*document.Document, error) {
	if it.next >= len(it.s.ids) {
		return nil, io.EOF
	}
	id := it.s.ids[it.next]
	it.next++
	doc, err := it.s.c.Fetch(id)
	if err != nil {
		return nil, err
	}
	// Park the head so the next fetch is again charged as random: the
	// selected documents are scattered through an originally large file
	// and the device is assumed to serve other requests in between.
	it.s.c.file.ParkHead()
	return doc, nil
}

// VocabularyGrowth is the paper's estimate of the number of distinct terms
// in m documents of a collection with T distinct terms and K terms per
// document: f(m) = T − (1 − K/T)^m · T.
func VocabularyGrowth(t, k, m float64) float64 {
	if t <= 0 || m <= 0 {
		return 0
	}
	frac := 1 - k/t
	if frac < 0 {
		frac = 0
	}
	return t - math.Pow(frac, m)*t
}

// Materialize copies the documents of src (in iteration order) into a new
// collection with dense ids 0..n−1 on the given file, returning the new
// collection and the mapping from new id to original id. This models the
// paper's Group 4 setting: an ORIGINALLY small collection, stored
// contiguously and read sequentially, whose inverted file and B+tree are
// sized by the small collection itself.
func Materialize(name string, file *iosim.File, src Reader) (*Collection, []uint32, error) {
	b, err := NewBuilder(name, file)
	if err != nil {
		return nil, nil, err
	}
	var origIDs []uint32
	it := src.Documents()
	for {
		d, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		origIDs = append(origIDs, d.ID)
		nd := &document.Document{ID: uint32(len(origIDs) - 1), Cells: d.Cells}
		if err := b.Add(nd); err != nil {
			return nil, nil, err
		}
	}
	c, err := b.Finish()
	if err != nil {
		return nil, nil, err
	}
	return c, origIDs, nil
}
