package collection

import (
	"io"
	"sort"

	"textjoin/internal/codec"
	"textjoin/internal/document"
	"textjoin/internal/iosim"
)

// Batch is a memory-resident set of query documents used as the outer
// side of a join — the paper's "processing of a set of queries against a
// document collection in batch".
//
// The paper points out two properties of such batches, both modeled here:
// statistics "are not available unless they are collected explicitly"
// (Batch collects its own document frequencies at construction, which is
// cheap since the batch is already in memory), and "special data
// structures commonly associated with a document collection such as an
// inverted file is unlikely to be available for the batch" — a Batch has
// no storage, so VVM (which needs the outer inverted file) is
// inapplicable, exactly the applicability distinction the paper draws.
// Reading a batch costs no I/O: BaseStats reports zero sizes, which the
// cost model interprets as a free outer scan.
type Batch struct {
	name  string
	docs  []*document.Document
	df    map[uint32]int64
	norms map[uint32]float64
	bytes int64
	cells int64
	terms int64
}

var _ Reader = (*Batch)(nil)

// NewBatch wraps query documents as a join source. Documents keep their
// ids (which must be unique); they need not be dense.
func NewBatch(name string, docs []*document.Document) (*Batch, error) {
	b := &Batch{
		name:  name,
		docs:  docs,
		df:    make(map[uint32]int64),
		norms: make(map[uint32]float64, len(docs)),
	}
	seen := make(map[uint32]bool, len(docs))
	for _, d := range docs {
		if err := d.Validate(); err != nil {
			return nil, err
		}
		if seen[d.ID] {
			return nil, ErrDuplicateDoc
		}
		seen[d.ID] = true
		for _, c := range d.Cells {
			b.df[c.Term]++
		}
		b.norms[d.ID] = d.Norm()
		b.bytes += codec.EncodedRecordSize(len(d.Cells))
		b.cells += int64(len(d.Cells))
	}
	b.terms = int64(len(b.df))
	return b, nil
}

// Name identifies the batch.
func (b *Batch) Name() string { return b.name }

// NumDocs returns the number of queries.
func (b *Batch) NumDocs() int64 { return int64(len(b.docs)) }

// AvgDocBytes returns the average packed size the queries would occupy.
func (b *Batch) AvgDocBytes() float64 {
	if len(b.docs) == 0 {
		return 0
	}
	return float64(b.bytes) / float64(len(b.docs))
}

// Documents iterates the queries in slice order, costing no I/O.
func (b *Batch) Documents() DocIterator { return &batchIterator{b: b} }

type batchIterator struct {
	b    *Batch
	next int
}

var _ ReuseIterator = (*batchIterator)(nil)

func (it *batchIterator) Next() (*document.Document, error) {
	if it.next >= len(it.b.docs) {
		return nil, io.EOF
	}
	d := it.b.docs[it.next]
	it.next++
	return d, nil
}

// NextReuse is Next: batch documents are memory-resident and stable, so
// the reuse path yields them without any copy.
func (it *batchIterator) NextReuse() (*document.Document, error) { return it.Next() }

// Base returns nil: a batch has no backing collection.
func (b *Batch) Base() *Collection { return nil }

// File returns nil: a batch is memory-resident.
func (b *Batch) File() *iosim.File { return nil }

// DF returns the document frequency of term within the batch itself (the
// explicitly collected statistics the paper mentions).
func (b *Batch) DF(term uint32) int64 { return b.df[term] }

// Norms returns the batch documents' pre-computed norms.
func (b *Batch) Norms() map[uint32]float64 { return b.norms }

// Terms returns the distinct terms of the batch in ascending order.
func (b *Batch) Terms() []uint32 {
	terms := make([]uint32, 0, len(b.df))
	for t := range b.df {
		terms = append(terms, t)
	}
	sort.Slice(terms, func(i, j int) bool { return terms[i] < terms[j] })
	return terms
}

// BaseStats reports the batch's measured statistics with zero storage
// sizes: scanning a memory-resident batch is free.
func (b *Batch) BaseStats() Stats {
	st := Stats{N: int64(len(b.docs)), T: b.terms, TotalCells: b.cells}
	if st.N > 0 {
		st.K = float64(b.cells) / float64(st.N)
	}
	return st
}
