package collection

import (
	"io"

	"textjoin/internal/document"
)

// FilteredScanner iterates a kept subset of the collection's documents
// in storage order, reading only the pages the kept documents span.
// It is the storage half of the signature prefilter: when whole pages
// (or clusters of documents) are disqualified, the scanner never touches
// them, so a skip saves real page reads — resuming after a gap costs one
// random read, like any seek.
type FilteredScanner struct {
	c       *Collection
	keep    func(id uint32) bool
	next    int
	curPage int64
	page    []byte
	scratch []byte
	doc     document.Document
	err     error
}

// ScanFiltered starts a storage-order scan that decodes only the
// documents keep reports true for. A nil keep scans everything (but
// Scan is cheaper for that — it never re-reads a page).
func (c *Collection) ScanFiltered(keep func(id uint32) bool) *FilteredScanner {
	return &FilteredScanner{c: c, keep: keep, curPage: -1}
}

// NextReuse returns the next kept document, or io.EOF when the scan is
// complete. The returned document lives in the scanner's arena: it is
// valid only until the next call; callers that retain it must Clone it.
func (s *FilteredScanner) NextReuse() (*document.Document, error) {
	if s.err != nil {
		return nil, s.err
	}
	for {
		if s.next >= len(s.c.refs) {
			s.err = io.EOF
			return nil, io.EOF
		}
		id := uint32(s.next)
		ref := s.c.refs[s.next]
		s.next++
		if s.keep != nil && !s.keep(id) {
			continue
		}
		ps := int64(s.c.stats.PageSize)
		first := ref.Off / ps
		last := (ref.Off + int64(ref.Len) - 1) / ps
		var raw []byte
		if first == last {
			// Single-page record: decode straight out of the page. The
			// one-page cache keeps a run of kept documents on the same
			// page at one read.
			pg, err := s.pageData(first)
			if err != nil {
				return nil, err
			}
			lo := ref.Off - first*ps
			raw = pg[lo : lo+int64(ref.Len)]
		} else {
			s.scratch = s.scratch[:0]
			for p := first; p <= last; p++ {
				pg, err := s.pageData(p)
				if err != nil {
					return nil, err
				}
				lo, hi := int64(0), int64(len(pg))
				if p == first {
					lo = ref.Off - p*ps
				}
				if p == last {
					hi = ref.Off + int64(ref.Len) - p*ps
				}
				s.scratch = append(s.scratch, pg[lo:hi]...)
			}
			raw = s.scratch
		}
		if _, err := document.DecodeInto(&s.doc, raw); err != nil {
			s.err = err
			return nil, err
		}
		return &s.doc, nil
	}
}

// Next returns the next kept document, freshly allocated and safe to
// retain.
func (s *FilteredScanner) Next() (*document.Document, error) {
	d, err := s.NextReuse()
	if err != nil {
		return nil, err
	}
	return d.Clone(), nil
}

// pageData reads page p, serving repeats of the most recent page from
// the cached slice (iosim pages are stable, so the alias is safe).
func (s *FilteredScanner) pageData(p int64) ([]byte, error) {
	if p == s.curPage {
		return s.page, nil
	}
	pg, err := s.c.file.ReadPage(p)
	if err != nil {
		s.err = err
		return nil, err
	}
	s.curPage, s.page = p, pg
	return pg, nil
}
