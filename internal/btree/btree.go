// Package btree implements the disk-resident B+tree that accompanies each
// inverted file.
//
// The paper: "For each inverted file, there is a B+tree which is used to
// find whether a term is in the collection and if present where the
// corresponding inverted file entry is located. ... Typically, each cell in
// the B+tree occupies 9 bytes (3 for each term number, 4 for address and 2
// for document frequency)." The paper's size estimate 9·T/P counts only the
// leaf level; this implementation lays the leaves out first so that the
// leaf region matches that estimate, with the (much smaller) internal
// levels appended after it.
//
// The tree is bulk-loaded once from the sorted term list produced by the
// inverted file builder and is immutable afterwards, matching the paper's
// static-collection setting. Both access paths of the paper are provided:
// point Search descending from the root (random page reads) and LoadAll,
// which scans the leaf region sequentially into an in-memory index (the
// paper assumes "the entire B+tree will be read in the memory when the
// inverted file needs to be accessed").
package btree

import (
	"errors"
	"fmt"
	"sort"

	"textjoin/internal/codec"
	"textjoin/internal/iosim"
)

// Page layout constants.
const (
	magic       = 0x42545245 // "BTRE"
	version     = 1
	nodeHeader  = 3 // [type:1][cellCount:2]
	leafType    = 1
	innerType   = 2
	innerCell   = codec.TermNumberSize + 4 // separator term + child page
	metaMinSize = 4 + 1 + 4*4
)

// Errors returned by the package.
var (
	ErrNotFound   = errors.New("btree: term not found")
	ErrCorrupt    = errors.New("btree: corrupt tree")
	ErrEmptyBuild = errors.New("btree: cannot build an empty tree")
)

// BTree is a handle to a bulk-loaded tree stored in an iosim file.
type BTree struct {
	file      *iosim.File
	rootPage  int64
	height    int   // number of levels, 1 = root is a leaf
	leafCount int64 // leaves occupy pages [1, leafCount]
	cellCount int64
}

// Build bulk-loads a tree from cells sorted by strictly ascending term into
// the given (empty) file.
func Build(file *iosim.File, cells []codec.BTreeCell) (*BTree, error) {
	if len(cells) == 0 {
		return nil, ErrEmptyBuild
	}
	if file.Pages() != 0 {
		return nil, fmt.Errorf("btree: build target %q is not empty", file.Name())
	}
	prev := int64(-1)
	for i, c := range cells {
		if int64(c.Term) <= prev {
			return nil, fmt.Errorf("%w: cells not strictly ascending at %d", ErrCorrupt, i)
		}
		prev = int64(c.Term)
	}
	pageSize := file.PageSize()
	leafCap := (pageSize - nodeHeader) / codec.BTreeCellSize
	innerCap := (pageSize - nodeHeader) / innerCell
	if leafCap < 1 || innerCap < 2 {
		return nil, fmt.Errorf("btree: page size %d too small", pageSize)
	}

	// Reserve page 0 for metadata; it is rewritten at the end.
	if _, err := file.AppendPage(nil); err != nil {
		return nil, err
	}

	// Level 0: leaves.
	type childRef struct {
		firstTerm uint32
		page      int64
	}
	var level []childRef
	for start := 0; start < len(cells); start += leafCap {
		end := start + leafCap
		if end > len(cells) {
			end = len(cells)
		}
		page := make([]byte, nodeHeader, pageSize)
		page[0] = leafType
		codec.PutUint16(page[1:], uint16(end-start))
		for _, c := range cells[start:end] {
			var err error
			page, err = codec.AppendBTreeCell(page, c)
			if err != nil {
				return nil, err
			}
		}
		idx, err := file.AppendPage(page)
		if err != nil {
			return nil, err
		}
		level = append(level, childRef{firstTerm: cells[start].Term, page: idx})
	}
	leafCount := int64(len(level))

	// Internal levels, bottom-up, until one root remains.
	height := 1
	for len(level) > 1 {
		var next []childRef
		for start := 0; start < len(level); start += innerCap {
			end := start + innerCap
			if end > len(level) {
				end = len(level)
			}
			page := make([]byte, nodeHeader, pageSize)
			page[0] = innerType
			codec.PutUint16(page[1:], uint16(end-start))
			for _, ref := range level[start:end] {
				var cell [innerCell]byte
				codec.PutUint24(cell[:], ref.firstTerm)
				codec.PutUint32(cell[codec.TermNumberSize:], uint32(ref.page))
				page = append(page, cell[:]...)
			}
			idx, err := file.AppendPage(page)
			if err != nil {
				return nil, err
			}
			next = append(next, childRef{firstTerm: level[start].firstTerm, page: idx})
		}
		level = next
		height++
	}

	t := &BTree{
		file:      file,
		rootPage:  level[0].page,
		height:    height,
		leafCount: leafCount,
		cellCount: int64(len(cells)),
	}
	if err := t.writeMeta(); err != nil {
		return nil, err
	}
	return t, nil
}

func (t *BTree) writeMeta() error {
	buf := make([]byte, metaMinSize)
	codec.PutUint32(buf, magic)
	buf[4] = version
	codec.PutUint32(buf[5:], uint32(t.rootPage))
	codec.PutUint32(buf[9:], uint32(t.height))
	codec.PutUint32(buf[13:], uint32(t.leafCount))
	codec.PutUint32(buf[17:], uint32(t.cellCount))
	return t.file.WritePage(0, buf)
}

// Open attaches to a previously built tree. It reads the meta page (one
// random I/O).
func Open(file *iosim.File) (*BTree, error) {
	page, err := file.ReadPage(0)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if len(page) < metaMinSize || codec.Uint32(page) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if page[4] != version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, page[4])
	}
	return &BTree{
		file:      file,
		rootPage:  int64(codec.Uint32(page[5:])),
		height:    int(codec.Uint32(page[9:])),
		leafCount: int64(codec.Uint32(page[13:])),
		cellCount: int64(codec.Uint32(page[17:])),
	}, nil
}

// Height returns the number of levels (1 when the root is a leaf).
func (t *BTree) Height() int { return t.height }

// File returns the iosim file backing the tree.
func (t *BTree) File() *iosim.File { return t.file }

// Cells returns the number of indexed terms.
func (t *BTree) Cells() int64 { return t.cellCount }

// LeafPages returns the number of leaf pages: the paper's B+tree size
// Bt = ⌈9·T/P⌉ counts exactly these.
func (t *BTree) LeafPages() int64 { return t.leafCount }

// TotalPages returns the full file size in pages including meta page and
// internal levels.
func (t *BTree) TotalPages() int64 { return t.file.Pages() }

// Search descends from the root to locate term, costing one page read per
// level. It returns ErrNotFound for absent terms.
func (t *BTree) Search(term uint32) (codec.BTreeCell, error) {
	pageIdx := t.rootPage
	for {
		page, err := t.file.ReadPage(pageIdx)
		if err != nil {
			return codec.BTreeCell{}, err
		}
		count := int(codec.Uint16(page[1:]))
		switch page[0] {
		case leafType:
			cells := page[nodeHeader:]
			i := sort.Search(count, func(i int) bool {
				return codec.Uint24(cells[i*codec.BTreeCellSize:]) >= term
			})
			if i < count {
				c, err := codec.DecodeBTreeCell(cells[i*codec.BTreeCellSize:])
				if err != nil {
					return codec.BTreeCell{}, err
				}
				if c.Term == term {
					return c, nil
				}
			}
			return codec.BTreeCell{}, fmt.Errorf("%w: term %d", ErrNotFound, term)
		case innerType:
			cells := page[nodeHeader:]
			// Find the last child whose separator is <= term.
			i := sort.Search(count, func(i int) bool {
				return codec.Uint24(cells[i*innerCell:]) > term
			})
			if i == 0 {
				// term is below the smallest key in the tree.
				return codec.BTreeCell{}, fmt.Errorf("%w: term %d", ErrNotFound, term)
			}
			pageIdx = int64(codec.Uint32(cells[(i-1)*innerCell+codec.TermNumberSize:]))
		default:
			return codec.BTreeCell{}, fmt.Errorf("%w: unknown node type %d", ErrCorrupt, page[0])
		}
	}
}

// Contains reports whether term is indexed.
func (t *BTree) Contains(term uint32) (bool, error) {
	_, err := t.Search(term)
	if err == nil {
		return true, nil
	}
	if errors.Is(err, ErrNotFound) {
		return false, nil
	}
	return false, err
}

// Scan invokes fn for every indexed cell in ascending term order, reading
// the leaf region sequentially. Returning a non-nil error from fn stops the
// scan and propagates the error.
func (t *BTree) Scan(fn func(codec.BTreeCell) error) error {
	for p := int64(1); p <= t.leafCount; p++ {
		page, err := t.file.ReadPage(p)
		if err != nil {
			return err
		}
		if page[0] != leafType {
			return fmt.Errorf("%w: page %d is not a leaf", ErrCorrupt, p)
		}
		count := int(codec.Uint16(page[1:]))
		cells := page[nodeHeader:]
		for i := 0; i < count; i++ {
			c, err := codec.DecodeBTreeCell(cells[i*codec.BTreeCellSize:])
			if err != nil {
				return err
			}
			if err := fn(c); err != nil {
				return err
			}
		}
	}
	return nil
}

// MemIndex is the in-memory image of a B+tree: the paper's algorithms load
// the whole tree before probing the inverted file.
type MemIndex struct {
	cells []codec.BTreeCell
	// byTerm gives O(1) lookups; cells stays sorted for ordered walks.
	byTerm map[uint32]int
}

// LoadAll reads the leaf region sequentially (the paper's one-time cost of
// Bt page reads) and returns the in-memory index.
func (t *BTree) LoadAll() (*MemIndex, error) {
	idx := &MemIndex{
		cells:  make([]codec.BTreeCell, 0, t.cellCount),
		byTerm: make(map[uint32]int, t.cellCount),
	}
	err := t.Scan(func(c codec.BTreeCell) error {
		idx.byTerm[c.Term] = len(idx.cells)
		idx.cells = append(idx.cells, c)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return idx, nil
}

// NewMemIndex builds an index directly from sorted cells without touching
// storage (used by builders that already hold the term list).
func NewMemIndex(cells []codec.BTreeCell) *MemIndex {
	idx := &MemIndex{cells: cells, byTerm: make(map[uint32]int, len(cells))}
	for i, c := range cells {
		idx.byTerm[c.Term] = i
	}
	return idx
}

// Lookup returns the cell for term, if present.
func (m *MemIndex) Lookup(term uint32) (codec.BTreeCell, bool) {
	i, ok := m.byTerm[term]
	if !ok {
		return codec.BTreeCell{}, false
	}
	return m.cells[i], true
}

// Contains reports whether term is indexed.
func (m *MemIndex) Contains(term uint32) bool {
	_, ok := m.byTerm[term]
	return ok
}

// Len returns the number of indexed terms.
func (m *MemIndex) Len() int { return len(m.cells) }

// Cells returns the sorted cells; callers must not modify the slice.
func (m *MemIndex) Cells() []codec.BTreeCell { return m.cells }

// SizePages returns the paper's estimate of the B+tree's memory footprint
// in pages: ⌈9·T/P⌉.
func (m *MemIndex) SizePages(pageSize int) int64 {
	return iosim.PagesForBytes(int64(len(m.cells))*codec.BTreeCellSize, pageSize)
}
