package btree

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"textjoin/internal/codec"
	"textjoin/internal/iosim"
)

func buildCells(terms []uint32) []codec.BTreeCell {
	cells := make([]codec.BTreeCell, len(terms))
	for i, t := range terms {
		cells[i] = codec.BTreeCell{Term: t, Addr: t * 10, DocFreq: uint16(t % 1000)}
	}
	return cells
}

func seqTerms(n int, stride uint32) []uint32 {
	terms := make([]uint32, n)
	for i := range terms {
		terms[i] = uint32(i)*stride + 1
	}
	return terms
}

func mustBuild(t *testing.T, pageSize int, cells []codec.BTreeCell) *BTree {
	t.Helper()
	d := iosim.NewDisk(iosim.WithPageSize(pageSize))
	f, err := d.Create("bt")
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Build(f, cells)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestBuildEmpty(t *testing.T) {
	d := iosim.NewDisk()
	f, _ := d.Create("bt")
	if _, err := Build(f, nil); !errors.Is(err, ErrEmptyBuild) {
		t.Errorf("err = %v, want ErrEmptyBuild", err)
	}
}

func TestBuildNonEmptyFile(t *testing.T) {
	d := iosim.NewDisk()
	f, _ := d.Create("bt")
	f.AppendPage(nil)
	if _, err := Build(f, buildCells([]uint32{1})); err == nil {
		t.Error("build into non-empty file: want error")
	}
}

func TestBuildUnsorted(t *testing.T) {
	d := iosim.NewDisk()
	f, _ := d.Create("bt")
	if _, err := Build(f, buildCells([]uint32{5, 3})); !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
	f2, _ := d.Create("bt2")
	if _, err := Build(f2, buildCells([]uint32{5, 5})); !errors.Is(err, ErrCorrupt) {
		t.Errorf("duplicate err = %v, want ErrCorrupt", err)
	}
}

func TestSingleLeaf(t *testing.T) {
	tree := mustBuild(t, 4096, buildCells(seqTerms(10, 2)))
	if tree.Height() != 1 {
		t.Errorf("Height = %d, want 1", tree.Height())
	}
	if tree.LeafPages() != 1 {
		t.Errorf("LeafPages = %d, want 1", tree.LeafPages())
	}
	c, err := tree.Search(5)
	if err != nil {
		t.Fatal(err)
	}
	if c.Term != 5 || c.Addr != 50 {
		t.Errorf("Search(5) = %+v", c)
	}
	if _, err := tree.Search(4); !errors.Is(err, ErrNotFound) {
		t.Errorf("Search(absent) err = %v, want ErrNotFound", err)
	}
	if _, err := tree.Search(0); !errors.Is(err, ErrNotFound) {
		t.Errorf("Search(below min) err = %v, want ErrNotFound", err)
	}
	if _, err := tree.Search(10000); !errors.Is(err, ErrNotFound) {
		t.Errorf("Search(above max) err = %v, want ErrNotFound", err)
	}
}

func TestMultiLevel(t *testing.T) {
	// Small pages force a deep tree: leafCap = (64-3)/9 = 6 cells,
	// innerCap = (64-3)/7 = 8 children.
	n := 500
	tree := mustBuild(t, 64, buildCells(seqTerms(n, 3)))
	if tree.Height() < 3 {
		t.Errorf("Height = %d, want >= 3", tree.Height())
	}
	if tree.Cells() != int64(n) {
		t.Errorf("Cells = %d, want %d", tree.Cells(), n)
	}
	for i := 0; i < n; i++ {
		term := uint32(i)*3 + 1
		c, err := tree.Search(term)
		if err != nil {
			t.Fatalf("Search(%d): %v", term, err)
		}
		if c.Term != term || c.Addr != term*10 {
			t.Fatalf("Search(%d) = %+v", term, c)
		}
		// Gaps are absent.
		if _, err := tree.Search(term + 1); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Search(%d) err = %v, want ErrNotFound", term+1, err)
		}
	}
}

func TestSearchCostsOnePagePerLevel(t *testing.T) {
	tree := mustBuild(t, 64, buildCells(seqTerms(500, 1)))
	d := treeDisk(t, tree)
	before := d.Stats().Reads()
	if _, err := tree.Search(250); err != nil {
		t.Fatal(err)
	}
	reads := d.Stats().Reads() - before
	if reads != int64(tree.Height()) {
		t.Errorf("Search reads = %d, want height %d", reads, tree.Height())
	}
}

func treeDisk(t *testing.T, tree *BTree) *iosim.Disk {
	t.Helper()
	return tree.file.Disk()
}

func TestFileAndTotalPages(t *testing.T) {
	tree := mustBuild(t, 64, buildCells(seqTerms(300, 1)))
	if tree.File() == nil {
		t.Fatal("nil File")
	}
	// Total pages = meta + leaves + internal levels > leaf pages alone.
	if tree.TotalPages() <= tree.LeafPages() {
		t.Errorf("TotalPages %d <= LeafPages %d", tree.TotalPages(), tree.LeafPages())
	}
	if tree.TotalPages() != tree.File().Pages() {
		t.Errorf("TotalPages %d != file pages %d", tree.TotalPages(), tree.File().Pages())
	}
}

func TestOpenRoundTrip(t *testing.T) {
	d := iosim.NewDisk(iosim.WithPageSize(128))
	f, _ := d.Create("bt")
	cells := buildCells(seqTerms(200, 2))
	built, err := Build(f, cells)
	if err != nil {
		t.Fatal(err)
	}
	opened, err := Open(f)
	if err != nil {
		t.Fatal(err)
	}
	if opened.Height() != built.Height() || opened.Cells() != built.Cells() || opened.LeafPages() != built.LeafPages() {
		t.Errorf("opened = %+v, built = %+v", opened, built)
	}
	c, err := opened.Search(199)
	if err != nil {
		t.Fatal(err)
	}
	if c.Term != 199 {
		t.Errorf("Search = %+v", c)
	}
}

func TestOpenCorrupt(t *testing.T) {
	d := iosim.NewDisk()
	f, _ := d.Create("junk")
	f.AppendPage([]byte{1, 2, 3})
	if _, err := Open(f); !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
	empty, _ := d.Create("empty")
	if _, err := Open(empty); !errors.Is(err, ErrCorrupt) {
		t.Errorf("empty err = %v, want ErrCorrupt", err)
	}
}

func TestContains(t *testing.T) {
	tree := mustBuild(t, 4096, buildCells([]uint32{2, 4, 6}))
	for _, c := range []struct {
		term uint32
		want bool
	}{{2, true}, {3, false}, {6, true}, {7, false}} {
		got, err := tree.Contains(c.term)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Contains(%d) = %v, want %v", c.term, got, c.want)
		}
	}
}

func TestScanOrderAndStop(t *testing.T) {
	terms := seqTerms(300, 2)
	tree := mustBuild(t, 64, buildCells(terms))
	var got []uint32
	err := tree.Scan(func(c codec.BTreeCell) error {
		got = append(got, c.Term)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(terms) {
		t.Fatalf("Scan returned %d cells, want %d", len(got), len(terms))
	}
	for i := range terms {
		if got[i] != terms[i] {
			t.Fatalf("Scan[%d] = %d, want %d", i, got[i], terms[i])
		}
	}
	stop := errors.New("stop")
	count := 0
	err = tree.Scan(func(codec.BTreeCell) error {
		count++
		if count == 5 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) || count != 5 {
		t.Errorf("Scan stop: err=%v count=%d", err, count)
	}
}

func TestScanIsSequential(t *testing.T) {
	tree := mustBuild(t, 64, buildCells(seqTerms(300, 1)))
	d := treeDisk(t, tree)
	d.ResetStats()
	if err := tree.Scan(func(codec.BTreeCell) error { return nil }); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.RandReads != 1 {
		t.Errorf("RandReads = %d, want 1 (initial positioning)", s.RandReads)
	}
	if s.Reads() != tree.LeafPages() {
		t.Errorf("reads = %d, want leafPages %d", s.Reads(), tree.LeafPages())
	}
}

func TestLoadAll(t *testing.T) {
	terms := seqTerms(250, 3)
	tree := mustBuild(t, 64, buildCells(terms))
	idx, err := tree.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != len(terms) {
		t.Fatalf("Len = %d, want %d", idx.Len(), len(terms))
	}
	for _, term := range terms {
		c, ok := idx.Lookup(term)
		if !ok || c.Term != term || c.Addr != term*10 {
			t.Fatalf("Lookup(%d) = %+v, %v", term, c, ok)
		}
		if !idx.Contains(term) {
			t.Fatalf("Contains(%d) = false", term)
		}
	}
	if _, ok := idx.Lookup(2); ok {
		t.Error("Lookup(absent) = true")
	}
	if idx.Contains(0) {
		t.Error("Contains(absent) = true")
	}
	if got := len(idx.Cells()); got != len(terms) {
		t.Errorf("Cells len = %d", got)
	}
}

func TestMemIndexSizePages(t *testing.T) {
	idx := NewMemIndex(buildCells(seqTerms(1000, 1)))
	// 1000 cells * 9 bytes = 9000 bytes -> 3 pages of 4096.
	if got := idx.SizePages(4096); got != 3 {
		t.Errorf("SizePages = %d, want 3", got)
	}
}

func TestLeafPagesMatchPaperEstimate(t *testing.T) {
	// Paper: a collection with 100,000 distinct terms has a B+tree of
	// about 220 pages of 4KB (9 bytes per cell, leaves only).
	n := 100000
	tree := mustBuild(t, 4096, buildCells(seqTerms(n, 1)))
	estimate := iosim.PagesForBytes(int64(n)*codec.BTreeCellSize, 4096) // 220
	if estimate != 220 {
		t.Fatalf("estimate = %d, want 220 (paper's example)", estimate)
	}
	// Bulk-loaded leaves hold floor((4096-3)/9) = 454 cells; 100000/454
	// rounds to 221 pages; the paper's 9N/P estimate ignores the 3-byte
	// header, so allow 1% slack.
	if tree.LeafPages() < estimate || tree.LeafPages() > estimate+3 {
		t.Errorf("LeafPages = %d, want within [%d, %d]", tree.LeafPages(), estimate, estimate+3)
	}
}

// Property: a tree built from any random sorted term set answers Search and
// Lookup identically to a map, for both present and absent probes.
func TestQuickSearchAgainstMap(t *testing.T) {
	check := func(seed int64, pageSeed uint8) bool {
		r := rand.New(rand.NewSource(seed))
		pageSize := []int{64, 128, 256, 4096}[pageSeed%4]
		n := r.Intn(400) + 1
		termSet := make(map[uint32]bool, n)
		for len(termSet) < n {
			termSet[uint32(r.Intn(5000))] = true
		}
		terms := make([]uint32, 0, n)
		for term := range termSet {
			terms = append(terms, term)
		}
		sort.Slice(terms, func(i, j int) bool { return terms[i] < terms[j] })
		cells := buildCells(terms)
		d := iosim.NewDisk(iosim.WithPageSize(pageSize))
		f, _ := d.Create("bt")
		tree, err := Build(f, cells)
		if err != nil {
			return false
		}
		for probe := 0; probe < 100; probe++ {
			term := uint32(r.Intn(5200))
			c, err := tree.Search(term)
			if termSet[term] {
				if err != nil || c.Term != term || c.Addr != term*10 {
					return false
				}
			} else if !errors.Is(err, ErrNotFound) {
				return false
			}
		}
		idx, err := tree.LoadAll()
		if err != nil || idx.Len() != n {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSearch(b *testing.B) {
	d := iosim.NewDisk()
	f, _ := d.Create("bt")
	tree, err := Build(f, buildCells(seqTerms(100000, 1)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.Search(uint32(i%100000) + 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoadAll(b *testing.B) {
	d := iosim.NewDisk()
	f, _ := d.Create("bt")
	tree, err := Build(f, buildCells(seqTerms(100000, 1)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.LoadAll(); err != nil {
			b.Fatal(err)
		}
	}
}
