// Package relation provides the minimal relational layer the paper's
// motivating example needs: global relations with ordinary attributes plus
// attributes of type text, so that queries like
//
//	Select P.P#, P.Title, A.SSN, A.Name
//	From Positions P, Applicants A
//	Where P.Title like "%Engineer%"
//	  and A.Resume SIMILAR_TO(λ) P.Job_descr
//
// can push the selection down before the textual join, shrinking the
// participating document set exactly as Section 2 describes.
//
// A text attribute's value is a document number in the collection bound to
// that attribute; the binding itself lives in the query layer's catalog.
package relation

import (
	"fmt"
	"strings"
)

// Type enumerates attribute types.
type Type int

const (
	// String is a character attribute.
	String Type = iota
	// Int is an integer attribute.
	Int
	// Text is a textual attribute: the value is a document number in
	// the collection bound to the attribute.
	Text
)

// String names the type.
func (t Type) String() string {
	switch t {
	case String:
		return "string"
	case Int:
		return "int"
	case Text:
		return "text"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Column describes one attribute.
type Column struct {
	Name string
	Type Type
}

// Value is one attribute value, tagged by its column's type.
type Value struct {
	Kind Type
	Str  string
	Int  int64
	// Doc is the document number of a Text value.
	Doc uint32
}

// StringValue makes a String value.
func StringValue(s string) Value { return Value{Kind: String, Str: s} }

// IntValue makes an Int value.
func IntValue(i int64) Value { return Value{Kind: Int, Int: i} }

// TextValue makes a Text value referencing document doc.
func TextValue(doc uint32) Value { return Value{Kind: Text, Doc: doc} }

// Format renders the value for result output.
func (v Value) Format() string {
	switch v.Kind {
	case String:
		return v.Str
	case Int:
		return fmt.Sprintf("%d", v.Int)
	case Text:
		return fmt.Sprintf("doc#%d", v.Doc)
	default:
		return "?"
	}
}

// Relation is an in-memory table.
type Relation struct {
	name    string
	columns []Column
	byName  map[string]int
	rows    [][]Value
}

// New creates an empty relation.
func New(name string, columns []Column) (*Relation, error) {
	byName := make(map[string]int, len(columns))
	for i, c := range columns {
		key := strings.ToLower(c.Name)
		if _, dup := byName[key]; dup {
			return nil, fmt.Errorf("relation %s: duplicate column %q", name, c.Name)
		}
		byName[key] = i
	}
	return &Relation{name: name, columns: columns, byName: byName}, nil
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// Columns returns the schema; callers must not modify it.
func (r *Relation) Columns() []Column { return r.columns }

// ColumnIndex resolves a column name case-insensitively.
func (r *Relation) ColumnIndex(name string) (int, error) {
	i, ok := r.byName[strings.ToLower(name)]
	if !ok {
		return 0, fmt.Errorf("relation %s: no column %q", r.name, name)
	}
	return i, nil
}

// Insert appends a row after checking arity and types.
func (r *Relation) Insert(values ...Value) error {
	if len(values) != len(r.columns) {
		return fmt.Errorf("relation %s: %d values for %d columns", r.name, len(values), len(r.columns))
	}
	for i, v := range values {
		if v.Kind != r.columns[i].Type {
			return fmt.Errorf("relation %s: column %s wants %v, got %v", r.name, r.columns[i].Name, r.columns[i].Type, v.Kind)
		}
	}
	row := make([]Value, len(values))
	copy(row, values)
	r.rows = append(r.rows, row)
	return nil
}

// NumRows returns the row count.
func (r *Relation) NumRows() int { return len(r.rows) }

// Row returns row i; callers must not modify it.
func (r *Relation) Row(i int) []Value { return r.rows[i] }

// Filter returns the indices of rows satisfying pred.
func (r *Relation) Filter(pred func(row []Value) bool) []int {
	var out []int
	for i, row := range r.rows {
		if pred(row) {
			out = append(out, i)
		}
	}
	return out
}

// RowByDoc finds the row whose Text column col references doc. Returns -1
// when absent.
func (r *Relation) RowByDoc(col int, doc uint32) int {
	for i, row := range r.rows {
		if row[col].Kind == Text && row[col].Doc == doc {
			return i
		}
	}
	return -1
}

// DocIndex builds a document-number → row-index map over a Text column.
func (r *Relation) DocIndex(col int) map[uint32]int {
	m := make(map[uint32]int, len(r.rows))
	for i, row := range r.rows {
		if row[col].Kind == Text {
			m[row[col].Doc] = i
		}
	}
	return m
}

// Like evaluates the SQL LIKE predicate: % matches any run (including
// empty), _ matches exactly one character. Matching is case-sensitive,
// as in the paper's example "%Engineer%".
func Like(pattern, s string) bool {
	return likeMatch(pattern, s)
}

func likeMatch(p, s string) bool {
	// Iterative two-pointer matcher with backtracking on the last %.
	pi, si := 0, 0
	star, starSi := -1, 0
	pr := []rune(p)
	sr := []rune(s)
	for si < len(sr) {
		switch {
		case pi < len(pr) && (pr[pi] == '_' || pr[pi] == sr[si]):
			pi++
			si++
		case pi < len(pr) && pr[pi] == '%':
			star = pi
			starSi = si
			pi++
		case star >= 0:
			pi = star + 1
			starSi++
			si = starSi
		default:
			return false
		}
	}
	for pi < len(pr) && pr[pi] == '%' {
		pi++
	}
	return pi == len(pr)
}

// Compare evaluates a comparison operator between a value and a literal of
// the same kind. Supported ops: =, <>, <, <=, >, >=.
func Compare(v Value, op string, lit Value) (bool, error) {
	if v.Kind != lit.Kind {
		return false, fmt.Errorf("relation: comparing %v with %v", v.Kind, lit.Kind)
	}
	var c int
	switch v.Kind {
	case Int:
		switch {
		case v.Int < lit.Int:
			c = -1
		case v.Int > lit.Int:
			c = 1
		}
	case String:
		c = strings.Compare(v.Str, lit.Str)
	default:
		return false, fmt.Errorf("relation: cannot compare %v values", v.Kind)
	}
	switch op {
	case "=":
		return c == 0, nil
	case "<>", "!=":
		return c != 0, nil
	case "<":
		return c < 0, nil
	case "<=":
		return c <= 0, nil
	case ">":
		return c > 0, nil
	case ">=":
		return c >= 0, nil
	default:
		return false, fmt.Errorf("relation: unknown operator %q", op)
	}
}
