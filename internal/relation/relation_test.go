package relation

import (
	"strings"
	"testing"
	"testing/quick"
)

func sample(t *testing.T) *Relation {
	t.Helper()
	r, err := New("Positions", []Column{
		{Name: "P#", Type: Int},
		{Name: "Title", Type: String},
		{Name: "Job_descr", Type: Text},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := []struct {
		id    int64
		title string
		doc   uint32
	}{
		{1, "Software Engineer", 0},
		{2, "Data Analyst", 1},
		{3, "Hardware Engineer", 2},
		{4, "Manager", 3},
	}
	for _, row := range rows {
		if err := r.Insert(IntValue(row.id), StringValue(row.title), TextValue(row.doc)); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestNewRejectsDuplicateColumns(t *testing.T) {
	if _, err := New("r", []Column{{Name: "a", Type: Int}, {Name: "A", Type: Int}}); err == nil {
		t.Error("duplicate columns: want error")
	}
}

func TestTypeString(t *testing.T) {
	if String.String() != "string" || Int.String() != "int" || Text.String() != "text" {
		t.Error("type names wrong")
	}
	if Type(9).String() == "" {
		t.Error("unknown type name empty")
	}
}

func TestInsertValidation(t *testing.T) {
	r := sample(t)
	if err := r.Insert(IntValue(9)); err == nil {
		t.Error("wrong arity: want error")
	}
	if err := r.Insert(StringValue("x"), StringValue("y"), TextValue(0)); err == nil {
		t.Error("wrong type: want error")
	}
	if r.NumRows() != 4 {
		t.Errorf("NumRows = %d", r.NumRows())
	}
}

func TestColumnIndexCaseInsensitive(t *testing.T) {
	r := sample(t)
	for _, name := range []string{"Title", "title", "TITLE"} {
		if i, err := r.ColumnIndex(name); err != nil || i != 1 {
			t.Errorf("ColumnIndex(%q) = %d, %v", name, i, err)
		}
	}
	if _, err := r.ColumnIndex("nope"); err == nil {
		t.Error("unknown column: want error")
	}
}

func TestFilter(t *testing.T) {
	r := sample(t)
	rows := r.Filter(func(row []Value) bool {
		return strings.Contains(row[1].Str, "Engineer")
	})
	if len(rows) != 2 || rows[0] != 0 || rows[1] != 2 {
		t.Errorf("Filter = %v", rows)
	}
}

func TestRowByDocAndDocIndex(t *testing.T) {
	r := sample(t)
	if got := r.RowByDoc(2, 2); got != 2 {
		t.Errorf("RowByDoc = %d", got)
	}
	if got := r.RowByDoc(2, 99); got != -1 {
		t.Errorf("RowByDoc missing = %d", got)
	}
	idx := r.DocIndex(2)
	if len(idx) != 4 || idx[3] != 3 {
		t.Errorf("DocIndex = %v", idx)
	}
}

func TestValueFormat(t *testing.T) {
	if StringValue("x").Format() != "x" {
		t.Error("string format")
	}
	if IntValue(42).Format() != "42" {
		t.Error("int format")
	}
	if TextValue(7).Format() != "doc#7" {
		t.Error("text format")
	}
	if (Value{Kind: Type(9)}).Format() != "?" {
		t.Error("unknown format")
	}
}

func TestLike(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"%Engineer%", "Software Engineer", true},
		{"%Engineer%", "Engineer", true},
		{"%Engineer%", "engineer", false}, // case-sensitive
		{"%Engineer%", "Data Analyst", false},
		{"Engineer", "Engineer", true},
		{"Engineer", "Engineers", false},
		{"Engineer%", "Engineers", true},
		{"_ngineer", "Engineer", true},
		{"_ngineer", "ngineer", false},
		{"%", "", true},
		{"%%", "abc", true},
		{"", "", true},
		{"", "x", false},
		{"a%b%c", "aXXbYYc", true},
		{"a%b%c", "acb", false},
		{"a_c", "abc", true},
		{"a_c", "ac", false},
	}
	for _, c := range cases {
		if got := Like(c.pattern, c.s); got != c.want {
			t.Errorf("Like(%q, %q) = %v, want %v", c.pattern, c.s, got, c.want)
		}
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		v    Value
		op   string
		lit  Value
		want bool
	}{
		{IntValue(3), "=", IntValue(3), true},
		{IntValue(3), "<>", IntValue(3), false},
		{IntValue(2), "<", IntValue(3), true},
		{IntValue(3), "<=", IntValue(3), true},
		{IntValue(4), ">", IntValue(3), true},
		{IntValue(3), ">=", IntValue(4), false},
		{StringValue("a"), "<", StringValue("b"), true},
		{StringValue("a"), "=", StringValue("a"), true},
		{IntValue(1), "!=", IntValue(2), true},
	}
	for _, c := range cases {
		got, err := Compare(c.v, c.op, c.lit)
		if err != nil || got != c.want {
			t.Errorf("Compare(%v %s %v) = %v, %v", c.v, c.op, c.lit, got, err)
		}
	}
	if _, err := Compare(IntValue(1), "=", StringValue("a")); err == nil {
		t.Error("cross-type compare: want error")
	}
	if _, err := Compare(TextValue(1), "=", TextValue(1)); err == nil {
		t.Error("text compare: want error")
	}
	if _, err := Compare(IntValue(1), "~", IntValue(1)); err == nil {
		t.Error("unknown op: want error")
	}
}

// Property: Like("%"+s+"%", x) is true iff s is a substring of x, for
// patterns free of wildcards.
func TestQuickLikeSubstring(t *testing.T) {
	check := func(sRaw, xRaw []byte) bool {
		s := strings.Map(stripWild, string(sRaw))
		x := strings.Map(stripWild, string(xRaw))
		return Like("%"+s+"%", x) == strings.Contains(x, s)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: a pattern with no wildcards matches only itself.
func TestQuickLikeExact(t *testing.T) {
	check := func(aRaw, bRaw []byte) bool {
		a := strings.Map(stripWild, string(aRaw))
		b := strings.Map(stripWild, string(bRaw))
		return Like(a, b) == (a == b)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func stripWild(r rune) rune {
	if r == '%' || r == '_' {
		return 'w'
	}
	return r
}
