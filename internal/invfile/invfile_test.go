package invfile

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"textjoin/internal/collection"
	"textjoin/internal/document"
	"textjoin/internal/iosim"
)

func buildCollection(t testing.TB, d *iosim.Disk, name string, docs []*document.Document) *collection.Collection {
	t.Helper()
	f, err := d.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	b, err := collection.NewBuilder(name, f)
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range docs {
		if err := b.Add(doc); err != nil {
			t.Fatal(err)
		}
	}
	c, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func buildInverted(t testing.TB, d *iosim.Disk, c *collection.Collection, prefix string) *InvertedFile {
	t.Helper()
	ef, err := d.Create(prefix + ".inv")
	if err != nil {
		t.Fatal(err)
	}
	tf, err := d.Create(prefix + ".bt")
	if err != nil {
		t.Fatal(err)
	}
	inv, err := Build(c, ef, tf)
	if err != nil {
		t.Fatal(err)
	}
	return inv
}

func mkdoc(id uint32, terms ...uint32) *document.Document {
	counts := make(map[uint32]int, len(terms))
	for _, t := range terms {
		counts[t]++
	}
	return document.New(id, counts)
}

func randomDocs(r *rand.Rand, n, vocab, maxLen int) []*document.Document {
	docs := make([]*document.Document, n)
	for i := range docs {
		counts := make(map[uint32]int)
		for j, l := 0, r.Intn(maxLen)+1; j < l; j++ {
			counts[uint32(r.Intn(vocab))]++
		}
		docs[i] = document.New(uint32(i), counts)
	}
	return docs
}

func TestBuildSmall(t *testing.T) {
	d := iosim.NewDisk(iosim.WithPageSize(64))
	c := buildCollection(t, d, "c", []*document.Document{
		mkdoc(0, 1, 1, 2), // term 1 x2, term 2 x1
		mkdoc(1, 2, 3),
		mkdoc(2, 1),
	})
	inv := buildInverted(t, d, c, "c")
	st := inv.Stats()
	if st.Entries != 3 {
		t.Errorf("Entries = %d, want 3", st.Entries)
	}
	if st.TotalCells != 5 {
		t.Errorf("TotalCells = %d, want 5", st.TotalCells)
	}
	if st.I != inv.File().Pages() {
		t.Errorf("I = %d, pages = %d", st.I, inv.File().Pages())
	}
	if inv.Tree() == nil {
		t.Fatal("nil tree")
	}

	// Scan yields entries in ascending term order with correct cells.
	sc := inv.Scan()
	e1, err := sc.Next()
	if err != nil {
		t.Fatal(err)
	}
	if e1.Term != 1 || e1.DocFreq() != 2 {
		t.Errorf("entry 1 = %+v", e1)
	}
	if e1.Cells[0].Number != 0 || e1.Cells[0].Weight != 2 {
		t.Errorf("term 1 cell 0 = %+v, want doc 0 weight 2", e1.Cells[0])
	}
	if e1.Cells[1].Number != 2 || e1.Cells[1].Weight != 1 {
		t.Errorf("term 1 cell 1 = %+v", e1.Cells[1])
	}
	e2, _ := sc.Next()
	if e2.Term != 2 || e2.DocFreq() != 2 {
		t.Errorf("entry 2 = %+v", e2)
	}
	e3, _ := sc.Next()
	if e3.Term != 3 || e3.DocFreq() != 1 || e3.Cells[0].Number != 1 {
		t.Errorf("entry 3 = %+v", e3)
	}
	if _, err := sc.Next(); err != io.EOF {
		t.Errorf("after last entry err = %v, want EOF", err)
	}
}

func TestBuildRejectsNonEmptyTargets(t *testing.T) {
	d := iosim.NewDisk(iosim.WithPageSize(64))
	c := buildCollection(t, d, "c", []*document.Document{mkdoc(0, 1)})
	ef, _ := d.Create("e")
	tf, _ := d.Create("t")
	ef.AppendPage(nil)
	if _, err := Build(c, ef, tf); err == nil {
		t.Error("non-empty entry file: want error")
	}
}

func TestIndexRequired(t *testing.T) {
	d := iosim.NewDisk(iosim.WithPageSize(64))
	c := buildCollection(t, d, "c", []*document.Document{mkdoc(0, 1)})
	inv := buildInverted(t, d, c, "c")
	if _, err := inv.FetchEntry(1); !errors.Is(err, ErrNoIndex) {
		t.Errorf("FetchEntry err = %v, want ErrNoIndex", err)
	}
	if _, err := inv.Contains(1); !errors.Is(err, ErrNoIndex) {
		t.Errorf("Contains err = %v, want ErrNoIndex", err)
	}
	if _, err := inv.DocFreq(1); !errors.Is(err, ErrNoIndex) {
		t.Errorf("DocFreq err = %v, want ErrNoIndex", err)
	}
	if _, err := inv.EntryPages(1); !errors.Is(err, ErrNoIndex) {
		t.Errorf("EntryPages err = %v, want ErrNoIndex", err)
	}
	if _, err := inv.Index(); !errors.Is(err, ErrNoIndex) {
		t.Errorf("Index err = %v, want ErrNoIndex", err)
	}
}

func TestFetchEntry(t *testing.T) {
	d := iosim.NewDisk(iosim.WithPageSize(64))
	r := rand.New(rand.NewSource(21))
	docs := randomDocs(r, 30, 40, 12)
	c := buildCollection(t, d, "c", docs)
	inv := buildInverted(t, d, c, "c")
	if _, err := inv.LoadIndex(); err != nil {
		t.Fatal(err)
	}
	if _, err := inv.LoadIndex(); err != nil { // idempotent
		t.Fatal(err)
	}
	for _, term := range c.Terms() {
		e, err := inv.FetchEntry(term)
		if err != nil {
			t.Fatalf("FetchEntry(%d): %v", term, err)
		}
		if e.Term != term {
			t.Fatalf("entry term = %d, want %d", e.Term, term)
		}
		if int64(e.DocFreq()) != c.DF(term) {
			t.Errorf("term %d df = %d, want %d", term, e.DocFreq(), c.DF(term))
		}
		// Cells ascending by doc and weights match documents.
		prev := int64(-1)
		for _, cell := range e.Cells {
			if int64(cell.Number) <= prev {
				t.Fatalf("term %d cells not ascending", term)
			}
			prev = int64(cell.Number)
			if w := docs[cell.Number].Weight(term); w != cell.Weight {
				t.Errorf("term %d doc %d weight = %d, want %d", term, cell.Number, cell.Weight, w)
			}
		}
		df, err := inv.DocFreq(term)
		if err != nil || df != c.DF(term) {
			t.Errorf("DocFreq(%d) = %d, %v", term, df, err)
		}
		ok, err := inv.Contains(term)
		if err != nil || !ok {
			t.Errorf("Contains(%d) = %v, %v", term, ok, err)
		}
	}
	if _, err := inv.FetchEntry(999999); !errors.Is(err, ErrNoTerm) {
		t.Errorf("absent FetchEntry err = %v, want ErrNoTerm", err)
	}
	if df, err := inv.DocFreq(999999); err != nil || df != 0 {
		t.Errorf("absent DocFreq = %d, %v", df, err)
	}
	if _, err := inv.EntryPages(999999); !errors.Is(err, ErrNoTerm) {
		t.Errorf("absent EntryPages err = %v, want ErrNoTerm", err)
	}
}

func TestEntryAccessors(t *testing.T) {
	d := iosim.NewDisk(iosim.WithPageSize(64))
	c := buildCollection(t, d, "c", []*document.Document{mkdoc(0, 1, 2), mkdoc(1, 1)})
	inv := buildInverted(t, d, c, "c")
	if _, err := inv.LoadIndex(); err != nil {
		t.Fatal(err)
	}
	idx, err := inv.Index()
	if err != nil || idx.Len() != 2 {
		t.Fatalf("Index = %v, %v", idx, err)
	}
	e, err := inv.FetchEntry(1)
	if err != nil {
		t.Fatal(err)
	}
	// term 1 appears in both docs: 2 i-cells of 5 bytes + 6-byte header.
	if e.Bytes() != 16 {
		t.Errorf("Bytes = %d, want 16", e.Bytes())
	}
	if e.DocFreq() != 2 {
		t.Errorf("DocFreq = %d", e.DocFreq())
	}
}

func TestFetchIsRandomIO(t *testing.T) {
	d := iosim.NewDisk(iosim.WithPageSize(64))
	r := rand.New(rand.NewSource(4))
	docs := randomDocs(r, 30, 20, 15)
	c := buildCollection(t, d, "c", docs)
	inv := buildInverted(t, d, c, "c")
	inv.LoadIndex()
	d.ResetStats()
	terms := c.Terms()
	var wantPages int64
	for _, term := range terms[:5] {
		p, err := inv.EntryPages(term)
		if err != nil {
			t.Fatal(err)
		}
		wantPages += p
		if _, err := inv.FetchEntry(term); err != nil {
			t.Fatal(err)
		}
	}
	s := inv.File().Stats()
	if s.Reads() != wantPages {
		t.Errorf("reads = %d, want spanned pages %d", s.Reads(), wantPages)
	}
	if s.RandReads < 5 {
		t.Errorf("RandReads = %d, want >= 1 per fetch", s.RandReads)
	}
}

func TestScanIsSequentialAndCostsI(t *testing.T) {
	d := iosim.NewDisk(iosim.WithPageSize(64))
	r := rand.New(rand.NewSource(17))
	docs := randomDocs(r, 40, 60, 10)
	c := buildCollection(t, d, "c", docs)
	inv := buildInverted(t, d, c, "c")
	d.ResetStats()
	sc := inv.Scan()
	count := int64(0)
	for {
		_, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		count++
	}
	if count != inv.Stats().Entries {
		t.Errorf("scanned %d entries, want %d", count, inv.Stats().Entries)
	}
	s := inv.File().Stats()
	if s.Reads() != inv.Stats().I {
		t.Errorf("reads = %d, want I = %d", s.Reads(), inv.Stats().I)
	}
	if s.RandReads != 1 {
		t.Errorf("RandReads = %d, want 1", s.RandReads)
	}
}

func TestInvertedFileSizeMatchesCollection(t *testing.T) {
	// Paper: "if document numbers and term numbers have the same size,
	// its total size is the same as the total size of its corresponding
	// inverted file" — up to the per-record headers.
	d := iosim.NewDisk(iosim.WithPageSize(4096))
	r := rand.New(rand.NewSource(8))
	docs := randomDocs(r, 200, 300, 30)
	c := buildCollection(t, d, "c", docs)
	inv := buildInverted(t, d, c, "c")
	cellBytes := c.Stats().TotalCells * 5
	collOverhead := c.Stats().Bytes - cellBytes
	invOverhead := inv.Stats().Bytes - cellBytes
	if inv.Stats().TotalCells != c.Stats().TotalCells {
		t.Errorf("cells: inv %d, coll %d", inv.Stats().TotalCells, c.Stats().TotalCells)
	}
	if collOverhead != 6*c.Stats().N || invOverhead != 6*c.Stats().T {
		t.Errorf("overheads: coll %d (N=%d), inv %d (T=%d)", collOverhead, c.Stats().N, invOverhead, c.Stats().T)
	}
}

func TestEmptyCollection(t *testing.T) {
	d := iosim.NewDisk(iosim.WithPageSize(64))
	c := buildCollection(t, d, "c", nil)
	inv := buildInverted(t, d, c, "c")
	if inv.Stats().Entries != 0 || inv.Tree() != nil {
		t.Errorf("empty stats = %+v, tree = %v", inv.Stats(), inv.Tree())
	}
	if _, err := inv.LoadIndex(); err != nil {
		t.Fatal(err)
	}
	ok, err := inv.Contains(1)
	if err != nil || ok {
		t.Errorf("Contains on empty = %v, %v", ok, err)
	}
	if _, err := inv.Scan().Next(); err != io.EOF {
		t.Errorf("scan empty err = %v, want EOF", err)
	}
}

// Property: for any random collection, rebuilding documents from the
// inverted file (transposing back) reproduces exactly the original
// document-term matrix.
func TestQuickInversionRoundTrip(t *testing.T) {
	check := func(seed int64, psSeed uint8) bool {
		r := rand.New(rand.NewSource(seed))
		pageSize := []int{48, 64, 128, 4096}[psSeed%4]
		d := iosim.NewDisk(iosim.WithPageSize(pageSize))
		docs := randomDocs(r, r.Intn(25)+1, 40, 10)
		f, _ := d.Create("c")
		b, _ := collection.NewBuilder("c", f)
		for _, doc := range docs {
			if err := b.Add(doc); err != nil {
				return false
			}
		}
		c, err := b.Finish()
		if err != nil {
			return false
		}
		ef, _ := d.Create("e")
		tf, _ := d.Create("t")
		inv, err := Build(c, ef, tf)
		if err != nil {
			return false
		}
		// Transpose back.
		rebuilt := make(map[uint32]map[uint32]uint16)
		sc := inv.Scan()
		var prevTerm int64 = -1
		for {
			e, err := sc.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return false
			}
			if int64(e.Term) <= prevTerm {
				return false // terms must ascend
			}
			prevTerm = int64(e.Term)
			for _, cell := range e.Cells {
				if rebuilt[cell.Number] == nil {
					rebuilt[cell.Number] = make(map[uint32]uint16)
				}
				rebuilt[cell.Number][e.Term] = cell.Weight
			}
		}
		for _, doc := range docs {
			got := rebuilt[doc.ID]
			if len(got) != len(doc.Cells) {
				return false
			}
			for _, cell := range doc.Cells {
				if got[cell.Term] != cell.Weight {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: FetchEntry equals the entry found by a full scan, for random
// probes.
func TestQuickFetchMatchesScan(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := iosim.NewDisk(iosim.WithPageSize(64))
		docs := randomDocs(r, r.Intn(20)+5, 30, 8)
		f, _ := d.Create("c")
		b, _ := collection.NewBuilder("c", f)
		for _, doc := range docs {
			if err := b.Add(doc); err != nil {
				return false
			}
		}
		c, err := b.Finish()
		if err != nil {
			return false
		}
		ef, _ := d.Create("e")
		tf, _ := d.Create("t")
		inv, err := Build(c, ef, tf)
		if err != nil {
			return false
		}
		if _, err := inv.LoadIndex(); err != nil {
			return false
		}
		byTerm := make(map[uint32]*Entry)
		sc := inv.Scan()
		for {
			e, err := sc.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return false
			}
			byTerm[e.Term] = e
		}
		for _, term := range c.Terms() {
			fetched, err := inv.FetchEntry(term)
			if err != nil {
				return false
			}
			want := byTerm[term]
			if len(fetched.Cells) != len(want.Cells) {
				return false
			}
			for i := range want.Cells {
				if fetched.Cells[i] != want.Cells[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBuild(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	d := iosim.NewDisk()
	docs := randomDocs(r, 1000, 2000, 50)
	c := buildCollection(b, d, "c", docs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ef, _ := d.Create(fmt.Sprintf("e%d", i))
		tf, _ := d.Create(fmt.Sprintf("t%d", i))
		if _, err := Build(c, ef, tf); err != nil {
			b.Fatal(err)
		}
	}
}
