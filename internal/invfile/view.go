package invfile

import (
	"fmt"

	"textjoin/internal/iosim"
)

// WithView returns a copy of the handle whose entry-file access runs
// through the given read-only I/O view: merge scans and random entry
// fetches move the view's private head positions and count into the
// view's Stats. The term index is loaded eagerly (idempotent, charged
// to the shared base file once) so no per-session I/O ever hits the
// shared B+tree file mid-join — every session then performs exactly
// the same I/O as a serial run, which is what keeps concurrent
// per-request Stats byte-identical. A nil view returns the handle
// unchanged.
func (f *InvertedFile) WithView(v *iosim.View) (*InvertedFile, error) {
	if f == nil || v == nil {
		return f, nil
	}
	if _, err := f.LoadIndex(); err != nil {
		return nil, fmt.Errorf("invfile: loading index for view: %w", err)
	}
	return &InvertedFile{
		entries: v.File(f.entries),
		tree:    f.tree,
		stats:   f.stats,
		idx:     f.idx,
	}, nil
}
