package invfile

import (
	"io"
	"math"
	"math/rand"
	"testing"

	"textjoin/internal/iosim"
)

func TestOpenRebuildsStatsAndEntries(t *testing.T) {
	d := iosim.NewDisk(iosim.WithPageSize(64))
	r := rand.New(rand.NewSource(23))
	docs := randomDocs(r, 30, 50, 10)
	c := buildCollection(t, d, "c", docs)
	built := buildInverted(t, d, c, "c")

	ef, _ := d.Open("c.inv")
	tf, _ := d.Open("c.bt")
	reopened, err := Open(ef, tf)
	if err != nil {
		t.Fatal(err)
	}
	a, b := built.Stats(), reopened.Stats()
	if a.Entries != b.Entries || a.TotalCells != b.TotalCells || a.Bytes != b.Bytes || a.I != b.I {
		t.Errorf("stats differ: %+v vs %+v", a, b)
	}
	if math.Abs(a.J-b.J) > 1e-12 {
		t.Errorf("J differs: %v vs %v", a.J, b.J)
	}
	// Entry fetches agree with the original handle.
	if _, err := built.LoadIndex(); err != nil {
		t.Fatal(err)
	}
	for _, term := range c.Terms() {
		e1, err1 := built.FetchEntry(term)
		e2, err2 := reopened.FetchEntry(term)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if len(e1.Cells) != len(e2.Cells) {
			t.Fatalf("term %d entries differ", term)
		}
		for i := range e1.Cells {
			if e1.Cells[i] != e2.Cells[i] {
				t.Fatalf("term %d cell %d differs", term, i)
			}
		}
	}
	// Sequential scans agree too.
	s1, s2 := built.Scan(), reopened.Scan()
	for {
		e1, err1 := s1.Next()
		e2, err2 := s2.Next()
		if err1 == io.EOF || err2 == io.EOF {
			if err1 != err2 {
				t.Fatalf("scan lengths differ: %v vs %v", err1, err2)
			}
			break
		}
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if e1.Term != e2.Term || len(e1.Cells) != len(e2.Cells) {
			t.Fatalf("scan entries differ at term %d/%d", e1.Term, e2.Term)
		}
	}
}

func TestOpenEmptyInvertedFile(t *testing.T) {
	d := iosim.NewDisk(iosim.WithPageSize(64))
	c := buildCollection(t, d, "c", nil)
	buildInverted(t, d, c, "c")
	ef, _ := d.Open("c.inv")
	tf, _ := d.Open("c.bt")
	reopened, err := Open(ef, tf)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Stats().Entries != 0 || reopened.Tree() != nil {
		t.Errorf("reopened empty = %+v", reopened.Stats())
	}
	if _, err := reopened.LoadIndex(); err != nil {
		t.Fatal(err)
	}
	ok, err := reopened.Contains(1)
	if err != nil || ok {
		t.Errorf("Contains on empty reopened = %v, %v", ok, err)
	}
}

func TestOpenCorruptTree(t *testing.T) {
	d := iosim.NewDisk(iosim.WithPageSize(64))
	ef, _ := d.Create("e")
	tf, _ := d.Create("t")
	tf.AppendPage([]byte{1, 2, 3})
	if _, err := Open(ef, tf); err == nil {
		t.Error("corrupt tree: want error")
	}
}
