package invfile

import (
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"textjoin/internal/codec"
	"textjoin/internal/document"
	"textjoin/internal/iosim"
)

// TestQuickScanReuseMatchesFetch property-tests the reuse scan path of
// the inverted file: on random corpora and page sizes, the entry sequence
// yielded by NextReuse must be byte-identical to fetching every term
// through the allocating FetchEntry/DecodeRecord path (which reads the
// B+tree for the address instead of scanning).
func TestQuickScanReuseMatchesFetch(t *testing.T) {
	check := func(seed int64, pageSel uint8) bool {
		r := rand.New(rand.NewSource(seed))
		pageSizes := []int{64, 128, 256, 1024}
		d := iosim.NewDisk(iosim.WithPageSize(pageSizes[int(pageSel)%len(pageSizes)]))
		c := buildCollection(t, d, "c", randomDocs(r, r.Intn(25)+1, 50, 10))
		inv := buildInverted(t, d, c, "c")

		index, err := inv.LoadIndex()
		if err != nil {
			t.Fatal(err)
		}
		sc := inv.Scan()
		for _, leaf := range index.Cells() {
			want, err := inv.FetchEntry(leaf.Term)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sc.NextReuse()
			if err != nil {
				t.Fatalf("term %d: %v", leaf.Term, err)
			}
			if got.Term != want.Term || len(got.Cells) != len(want.Cells) {
				return false
			}
			for i := range got.Cells {
				if got.Cells[i] != want.Cells[i] {
					return false
				}
			}
		}
		if _, err := sc.NextReuse(); err != io.EOF {
			t.Fatalf("after last entry: %v, want EOF", err)
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestScanReuseArenaSemantics pins the reuse contract on the inverted
// file scanner: NextReuse yields one arena entry overwritten per call,
// while Next returns stable clones safe to retain (HVNL's preload caches
// them; parallel VVM keeps them in flight).
func TestScanReuseArenaSemantics(t *testing.T) {
	d := iosim.NewDisk(iosim.WithPageSize(128))
	c := buildCollection(t, d, "c", []*document.Document{
		mkdoc(0, 1, 1, 2, 5),
		mkdoc(1, 2, 3, 5, 5),
		mkdoc(2, 1, 3, 4),
	})
	inv := buildInverted(t, d, c, "c")

	sc := inv.Scan()
	first, err := sc.NextReuse()
	if err != nil {
		t.Fatal(err)
	}
	firstTerm := first.Term
	second, err := sc.NextReuse()
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("NextReuse yielded distinct entries %p and %p, want one arena", first, second)
	}
	if first.Term == firstTerm {
		t.Fatalf("arena still holds term %d after the next call", firstTerm)
	}

	sc2 := inv.Scan()
	e0, err := sc2.Next()
	if err != nil {
		t.Fatal(err)
	}
	term0 := e0.Term
	cells0 := append([]codec.Cell(nil), e0.Cells...)
	for {
		if _, err := sc2.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if e0.Term != term0 || len(e0.Cells) != len(cells0) {
		t.Fatalf("entry from Next mutated by later scanning: term %d -> %d", term0, e0.Term)
	}
	for i := range cells0 {
		if e0.Cells[i] != cells0[i] {
			t.Fatalf("cell %d of retained entry mutated", i)
		}
	}
}
