// Package invfile builds and reads the inverted files of the paper.
//
// For a term t in collection C, the inverted file entry is the list of
// i-cells (d#, w) — document number and occurrence count of t in that
// document — sorted by ascending document number. Entries are stored
// tightly packed in consecutive storage locations in ascending term-number
// order, so a full scan reads I pages sequentially (the access pattern of
// VVM), while single entries are located through the accompanying B+tree
// and fetched with random I/O (the access pattern of HVNL).
//
// As the paper notes, when document numbers and term numbers have the same
// size the inverted file of a collection has the same total size as the
// collection itself; the tests verify this equivalence.
package invfile

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"textjoin/internal/btree"
	"textjoin/internal/codec"
	"textjoin/internal/collection"
	"textjoin/internal/iosim"
)

// Errors returned by the package.
var (
	ErrNoIndex = errors.New("invfile: term index not loaded; call LoadIndex first")
	ErrNoTerm  = errors.New("invfile: term has no entry")
)

// Stats describes an inverted file in the paper's terms.
type Stats struct {
	// Entries is the number of inverted file entries (= T, the number of
	// distinct terms).
	Entries int64
	// TotalCells is the total number of i-cells (= Σ document lengths).
	TotalCells int64
	// Bytes is the tightly packed size in bytes.
	Bytes int64
	// I is the size of the inverted file in pages.
	I int64
	// J is the average size of an inverted file entry in pages.
	J float64
	// PageSize is the page size the sizes are expressed in.
	PageSize int
}

// Entry is one decoded inverted-file entry.
type Entry struct {
	Term uint32
	// Cells are the i-cells: (document number, occurrences) pairs sorted
	// by ascending document number.
	Cells []codec.Cell
}

// Bytes returns the packed size of the entry.
func (e *Entry) Bytes() int64 { return codec.EncodedRecordSize(len(e.Cells)) }

// DocFreq returns the entry's document frequency.
func (e *Entry) DocFreq() int { return len(e.Cells) }

// Clone returns a deep copy of e whose cells do not alias e's. Reuse-style
// scanning (Scanner.NextReuse) overwrites the yielded entry on the next
// call; callers that retain entries across calls clone them first.
func (e *Entry) Clone() *Entry {
	cells := make([]codec.Cell, len(e.Cells))
	copy(cells, e.Cells)
	return &Entry{Term: e.Term, Cells: cells}
}

// InvertedFile is a handle to a built inverted file and its B+tree.
type InvertedFile struct {
	entries *iosim.File
	tree    *btree.BTree
	stats   Stats
	// idx memoizes the in-memory B+tree image behind a pointer shared
	// by every view-bound copy of the handle, so the one-time LoadIndex
	// happens exactly once even when concurrent sessions race to it.
	idx *indexState
}

// indexState holds the loaded term index: the in-memory B+tree image
// plus each entry's byte extent derived from it. The mutex serializes
// the one-time load; after that every access is read-only.
type indexState struct {
	mu    sync.Mutex
	index *btree.MemIndex
	addrs map[uint32]extent
}

// get returns the loaded index tables, or ErrNoIndex before LoadIndex.
func (s *indexState) get() (*btree.MemIndex, map[uint32]extent, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.index == nil {
		return nil, nil, ErrNoIndex
	}
	return s.index, s.addrs, nil
}

type extent struct {
	off, length int64
}

// Build scans a collection and writes its inverted file into entryFile and
// the accompanying B+tree into treeFile (both must be empty). The scan of
// the collection is charged to the collection's disk like any other scan;
// callers that only want to measure join-time I/O should reset the disk
// statistics afterwards.
func Build(c *collection.Collection, entryFile, treeFile *iosim.File) (*InvertedFile, error) {
	if entryFile.Pages() != 0 || treeFile.Pages() != 0 {
		return nil, fmt.Errorf("invfile: build targets must be empty")
	}
	// Invert: term -> i-cells. Document ids arrive in ascending order
	// from the scan, so each posting list is built already sorted.
	postings := make(map[uint32][]codec.Cell)
	sc := c.Scan()
	for {
		doc, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		for _, cell := range doc.Cells {
			postings[cell.Term] = append(postings[cell.Term], codec.Cell{Number: doc.ID, Weight: cell.Weight})
		}
	}
	terms := make([]uint32, 0, len(postings))
	for t := range postings {
		terms = append(terms, t)
	}
	sort.Slice(terms, func(i, j int) bool { return terms[i] < terms[j] })
	return writeEntries(entryFile, treeFile, terms, func(t uint32) []codec.Cell { return postings[t] })
}

// BuildRemapped writes an inverted file equivalent to src with every
// i-cell's document number rewritten through newID — the remap step of
// the cluster-driven build path (cluster.Reorder renumbers documents;
// the postings must follow, typically via IDMap.Inverse). src is scanned
// sequentially once; each entry's cells are renumbered and re-sorted
// into ascending new-id order.
func BuildRemapped(src *InvertedFile, newID func(uint32) uint32, entryFile, treeFile *iosim.File) (*InvertedFile, error) {
	if entryFile.Pages() != 0 || treeFile.Pages() != 0 {
		return nil, fmt.Errorf("invfile: build targets must be empty")
	}
	var (
		terms    []uint32
		postings = make(map[uint32][]codec.Cell)
	)
	sc := src.Scan()
	for {
		e, err := sc.NextReuse()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		cells := make([]codec.Cell, len(e.Cells))
		for i, c := range e.Cells {
			cells[i] = codec.Cell{Number: newID(c.Number), Weight: c.Weight}
		}
		sort.Slice(cells, func(i, j int) bool { return cells[i].Number < cells[j].Number })
		terms = append(terms, e.Term)
		postings[e.Term] = cells
	}
	return writeEntries(entryFile, treeFile, terms, func(t uint32) []codec.Cell { return postings[t] })
}

// writeEntries is the shared tail of Build and BuildRemapped: it lays
// the entries for terms (ascending) into entryFile, builds the B+-tree
// directory and assembles the stats.
func writeEntries(entryFile, treeFile *iosim.File, terms []uint32, cellsOf func(uint32) []codec.Cell) (*InvertedFile, error) {
	w := entryFile.Writer()
	treeCells := make([]codec.BTreeCell, 0, len(terms))
	var buf []byte
	var totalCells int64
	for _, t := range terms {
		cells := cellsOf(t)
		off := w.Offset()
		var err error
		buf, err = codec.AppendRecord(buf[:0], codec.Record{Number: t, Cells: cells})
		if err != nil {
			return nil, err
		}
		if _, err := w.Write(buf); err != nil {
			return nil, err
		}
		df := len(cells)
		if df > int(codec.MaxWeight) {
			df = int(codec.MaxWeight) // the 2-byte df field saturates
		}
		treeCells = append(treeCells, codec.BTreeCell{
			Term:    t,
			Addr:    uint32(off),
			DocFreq: uint16(df),
		})
		totalCells += int64(len(cells))
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	var tree *btree.BTree
	if len(treeCells) > 0 {
		var err error
		tree, err = btree.Build(treeFile, treeCells)
		if err != nil {
			return nil, err
		}
	}
	stats := Stats{
		Entries:    int64(len(terms)),
		TotalCells: totalCells,
		Bytes:      w.Offset(),
		I:          entryFile.Pages(),
		PageSize:   entryFile.PageSize(),
	}
	if stats.Entries > 0 {
		stats.J = float64(stats.Bytes) / float64(stats.Entries) / float64(stats.PageSize)
	}
	return &InvertedFile{entries: entryFile, tree: tree, stats: stats, idx: &indexState{}}, nil
}

// Open re-attaches to an inverted file and its B+tree written earlier
// (e.g. restored from a disk snapshot). The statistics are rebuilt from
// the B+tree's in-memory image plus one header read of the last entry to
// learn the packed size; the tree load is charged as usual.
func Open(entryFile, treeFile *iosim.File) (*InvertedFile, error) {
	if treeFile.Pages() == 0 {
		// Empty collection: no tree was ever built.
		return &InvertedFile{
			entries: entryFile,
			stats:   Stats{PageSize: entryFile.PageSize(), I: entryFile.Pages()},
			idx:     &indexState{},
		}, nil
	}
	tree, err := btree.Open(treeFile)
	if err != nil {
		return nil, err
	}
	idx, err := tree.LoadAll()
	if err != nil {
		return nil, err
	}
	f := &InvertedFile{
		entries: entryFile,
		tree:    tree,
		stats: Stats{
			Entries:  tree.Cells(),
			I:        entryFile.Pages(),
			PageSize: entryFile.PageSize(),
		},
		idx: &indexState{},
	}
	cells := idx.Cells()
	var totalCells int64
	for _, c := range cells {
		totalCells += int64(c.DocFreq)
	}
	f.stats.TotalCells = totalCells
	if len(cells) > 0 {
		last := cells[len(cells)-1]
		hdr, err := entryFile.ReadAt(int64(last.Addr), codec.EntryHeaderSize)
		if err != nil {
			return nil, err
		}
		size, err := codec.PeekRecordSize(hdr)
		if err != nil {
			return nil, err
		}
		entryFile.ParkHead()
		f.stats.Bytes = int64(last.Addr) + size
		f.stats.J = float64(f.stats.Bytes) / float64(f.stats.Entries) / float64(f.stats.PageSize)
	}
	// Reuse the already-loaded index for extents.
	addrs := make(map[uint32]extent, len(cells))
	for i, c := range cells {
		end := f.stats.Bytes
		if i+1 < len(cells) {
			end = int64(cells[i+1].Addr)
		}
		addrs[c.Term] = extent{off: int64(c.Addr), length: end - int64(c.Addr)}
	}
	f.idx.index = idx
	f.idx.addrs = addrs
	return f, nil
}

// Stats returns the inverted file's statistics.
func (f *InvertedFile) Stats() Stats { return f.stats }

// Tree returns the accompanying B+tree (nil for an empty file).
func (f *InvertedFile) Tree() *btree.BTree { return f.tree }

// File returns the underlying entry file.
func (f *InvertedFile) File() *iosim.File { return f.entries }

// LoadIndex reads the whole B+tree into memory (the paper's one-time cost
// of Bt sequential page reads) and prepares random entry fetches. It is
// idempotent; repeat calls are free.
func (f *InvertedFile) LoadIndex() (*btree.MemIndex, error) {
	f.idx.mu.Lock()
	defer f.idx.mu.Unlock()
	if f.idx.index != nil {
		return f.idx.index, nil
	}
	if f.tree == nil {
		f.idx.index = btree.NewMemIndex(nil)
		f.idx.addrs = map[uint32]extent{}
		return f.idx.index, nil
	}
	idx, err := f.tree.LoadAll()
	if err != nil {
		return nil, err
	}
	cells := idx.Cells()
	addrs := make(map[uint32]extent, len(cells))
	for i, c := range cells {
		end := f.stats.Bytes
		if i+1 < len(cells) {
			end = int64(cells[i+1].Addr)
		}
		addrs[c.Term] = extent{off: int64(c.Addr), length: end - int64(c.Addr)}
	}
	f.idx.index = idx
	f.idx.addrs = addrs
	return idx, nil
}

// Index returns the loaded in-memory index, or an error when LoadIndex has
// not been called.
func (f *InvertedFile) Index() (*btree.MemIndex, error) {
	idx, _, err := f.idx.get()
	return idx, err
}

// EntryPages returns the number of pages a random fetch of term's entry
// touches (the paper charges ⌈J⌉ pages per random entry read).
func (f *InvertedFile) EntryPages(term uint32) (int64, error) {
	_, addrs, err := f.idx.get()
	if err != nil {
		return 0, err
	}
	ext, ok := addrs[term]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrNoTerm, term)
	}
	return iosim.SpannedPages(ext.off, ext.length, f.stats.PageSize), nil
}

// FetchEntry reads the entry of term with a random access through the
// loaded index, touching every page the entry spans. The head is parked
// afterwards: consecutive fetches of unrelated terms are all random, as in
// the paper's ⌈J⌉·α per-entry cost.
func (f *InvertedFile) FetchEntry(term uint32) (*Entry, error) {
	_, addrs, err := f.idx.get()
	if err != nil {
		return nil, err
	}
	ext, ok := addrs[term]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoTerm, term)
	}
	raw, err := f.entries.ReadAt(ext.off, ext.length)
	if err != nil {
		return nil, err
	}
	f.entries.ParkHead()
	rec, _, err := codec.DecodeRecord(raw)
	if err != nil {
		return nil, err
	}
	return &Entry{Term: rec.Number, Cells: rec.Cells}, nil
}

// Contains reports whether term has an entry, using the loaded index
// without touching storage.
func (f *InvertedFile) Contains(term uint32) (bool, error) {
	idx, _, err := f.idx.get()
	if err != nil {
		return false, err
	}
	return idx.Contains(term), nil
}

// DocFreq returns the document frequency of term from the loaded index (0
// when absent).
func (f *InvertedFile) DocFreq(term uint32) (int64, error) {
	idx, _, err := f.idx.get()
	if err != nil {
		return 0, err
	}
	c, ok := idx.Lookup(term)
	if !ok {
		return 0, nil
	}
	return int64(c.DocFreq), nil
}

// Scanner iterates entries in ascending term order, reading the entry file
// sequentially exactly once (the access pattern of VVM's merge scan).
//
// Like collection.Scanner, it consumes records from a page-backed window:
// an entry that lies entirely within the current page is decoded straight
// out of the page image, and only entries crossing a page boundary are
// stitched through a reused scratch buffer.
type Scanner struct {
	f        *InvertedFile
	nextPage int64
	// window is the unconsumed tail of the most recently read page (it
	// aliases the page image, or scratch after a stitch).
	window   []byte
	scratch  []byte
	entry    Entry // arena for NextReuse
	consumed int64
	err      error
}

// Scan starts a sequential scan over all entries.
func (f *InvertedFile) Scan() *Scanner {
	return &Scanner{f: f}
}

// NextReuse returns the next entry, or io.EOF after the last one. The
// entry lives in the scanner's arena: it is valid only until the next
// call, and callers that retain it must Clone it. The steady state
// allocates nothing.
func (s *Scanner) NextReuse() (*Entry, error) {
	if s.err != nil {
		return nil, s.err
	}
	if s.consumed >= s.f.stats.Bytes {
		s.err = io.EOF
		return nil, io.EOF
	}
	// Ensure the record header is windowed, then the whole record.
	if err := s.ensure(codec.EntryHeaderSize); err != nil {
		return nil, err
	}
	size, err := codec.PeekRecordSize(s.window)
	if err != nil {
		s.err = err
		return nil, err
	}
	if err := s.ensure(size); err != nil {
		return nil, err
	}
	term, cells, consumed, err := codec.DecodeRecordInto(s.window[:size], s.entry.Cells[:0])
	if err != nil {
		s.err = err
		return nil, err
	}
	s.entry.Term = term
	s.entry.Cells = cells
	s.window = s.window[consumed:]
	s.consumed += consumed
	return &s.entry, nil
}

// Next returns the next entry, or io.EOF after the last one. The entry is
// freshly allocated and safe to retain (HVNL's preload caches it; parallel
// VVM keeps it in flight across workers).
func (s *Scanner) Next() (*Entry, error) {
	e, err := s.NextReuse()
	if err != nil {
		return nil, err
	}
	return e.Clone(), nil
}

// ensure stitches pages into scratch until the window holds at least n
// bytes. The window may already alias scratch; append copies via memmove,
// so the overlap is safe.
func (s *Scanner) ensure(n int64) error {
	if int64(len(s.window)) >= n {
		return nil
	}
	s.scratch = append(s.scratch[:0], s.window...)
	for int64(len(s.scratch)) < n {
		page, err := s.f.entries.ReadPage(s.nextPage)
		if err != nil {
			s.err = err
			return err
		}
		s.nextPage++
		s.scratch = append(s.scratch, page...)
	}
	s.window = s.scratch
	return nil
}
