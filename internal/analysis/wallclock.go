package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// wallClock forbids wall-clock reads and global-rand state in internal
// packages outside the exempt list (telemetry, whose whole job is
// timing). The benchmark observatory's reports are byte-stable only
// because nothing on a measured path consults the real clock or the
// shared rand source; a stray time.Now would surface as flaky baseline
// diffs long after the offending PR merged.
//
// Flagged: uses of time.Now / time.Since / time.Until (calls or stored
// function values — a stored clock still reads wall time at run time)
// and any math/rand or math/rand/v2 package-level function that
// touches the global generator (rand.Intn, rand.Float64, rand.Seed,
// …). Seeded construction — rand.New, rand.NewSource, rand.NewZipf,
// rand.NewPCG, rand.NewChaCha8 — and methods on an explicit *rand.Rand
// stay legal: they are deterministic under a fixed seed.
type wallClock struct{ pol *Policy }

func (a *wallClock) Name() string { return "wallclock" }
func (a *wallClock) Doc() string {
	return "forbid time.Now/time.Since/time.Until and math/rand global-state calls in internal packages outside telemetry"
}
func (a *wallClock) NeedsTypes() bool { return true }

var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// randConstructors are the math/rand functions that only build seeded
// generators and never touch global state.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func (a *wallClock) Check(p *Package) []Diagnostic {
	if !strings.HasPrefix(p.Rel, "internal/") || containsString(a.pol.WallClockExempt, p.Rel) || p.Info == nil {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch pkgPathOf(p, sel.X) {
			case "time":
				if clockFuncs[sel.Sel.Name] {
					diags = append(diags, p.diag(a.Name(), sel.Pos(),
						"time.%s in %s: internal packages outside telemetry must not read the wall clock (inject a clock, or justify with //lint:ignore %s <reason>)",
						sel.Sel.Name, p.Rel, a.Name()))
				}
			case "math/rand", "math/rand/v2":
				obj, ok := p.Info.Uses[sel.Sel].(*types.Func)
				if ok && !randConstructors[obj.Name()] {
					diags = append(diags, p.diag(a.Name(), sel.Pos(),
						"rand.%s uses the global rand state: seed an explicit *rand.Rand so runs stay reproducible",
						sel.Sel.Name))
				}
			}
			return true
		})
	}
	return diags
}
