package analysis

import (
	"go/ast"
	"strings"
)

// RuleLintDirective is the rule name under which the engine reports
// problems with lint:ignore directives themselves: missing reason,
// unknown rule, or a directive that suppresses nothing. It keeps the
// acceptance bar honest — every ignore in the tree must name a real
// rule, explain itself, and still be load-bearing.
const RuleLintDirective = "lintdirective"

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	Rule   string
	Reason string
	File   string
	Line   int
	used   bool
}

const ignorePrefix = "lint:ignore"

// collectIgnores parses every lint:ignore directive in the package.
// Malformed directives come back as diagnostics immediately; valid ones
// are returned for suppression matching.
func collectIgnores(pkg *Package, known []string) ([]*ignoreDirective, []Diagnostic) {
	knownSet := make(map[string]bool, len(known))
	for _, r := range known {
		knownSet[r] = true
	}
	var ignores []*ignoreDirective
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := directiveText(c)
				if !ok {
					continue
				}
				pos := pkg.Position(c.Pos())
				rule, reason, _ := strings.Cut(strings.TrimSpace(text), " ")
				reason = strings.TrimSpace(reason)
				switch {
				case rule == "":
					diags = append(diags, pkg.diag(RuleLintDirective, c.Pos(),
						"lint:ignore needs a rule name and a reason"))
				case !knownSet[rule]:
					diags = append(diags, pkg.diag(RuleLintDirective, c.Pos(),
						"lint:ignore names unknown rule %q", rule))
				case reason == "":
					diags = append(diags, pkg.diag(RuleLintDirective, c.Pos(),
						"lint:ignore %s has no reason; unexplained suppressions are not allowed", rule))
				default:
					ignores = append(ignores, &ignoreDirective{
						Rule:   rule,
						Reason: reason,
						File:   pos.Filename,
						Line:   pos.Line,
					})
				}
			}
		}
	}
	return ignores, diags
}

// directiveText extracts the payload of a lint:ignore comment. Like
// //go: directives, the marker must follow the comment opener with no
// space — `//lint:ignore` is a directive, `// lint:ignore` is prose —
// so documentation that mentions the syntax never parses as a
// suppression.
func directiveText(c *ast.Comment) (string, bool) {
	text := c.Text
	switch {
	case strings.HasPrefix(text, "//"):
		text = text[2:]
	case strings.HasPrefix(text, "/*"):
		text = strings.TrimSuffix(text[2:], "*/")
	}
	if rest, ok := strings.CutPrefix(text, ignorePrefix); ok {
		return rest, true
	}
	return "", false
}

// applyIgnores drops every diagnostic covered by a directive on the
// same line or the line directly above, marking the directive used.
func applyIgnores(diags []Diagnostic, ignores []*ignoreDirective) ([]Diagnostic, int) {
	if len(ignores) == 0 {
		return diags, 0
	}
	var kept []Diagnostic
	suppressed := 0
	for _, d := range diags {
		matched := false
		for _, ig := range ignores {
			if ig.Rule == d.Rule && ig.File == d.File &&
				(ig.Line == d.Line || ig.Line == d.Line-1) {
				ig.used = true
				matched = true
			}
		}
		if matched {
			suppressed++
			continue
		}
		kept = append(kept, d)
	}
	return kept, suppressed
}

// staleIgnores reports directives that suppressed nothing. Only full
// runs call this: under -rule or -pkg filtering an unused directive
// usually just means its analyzer did not run.
func staleIgnores(pkg *Package, ignores []*ignoreDirective) []Diagnostic {
	var diags []Diagnostic
	for _, ig := range ignores {
		if !ig.used {
			diags = append(diags, Diagnostic{
				Rule:    RuleLintDirective,
				Package: pkg.Path,
				File:    ig.File,
				Line:    ig.Line,
				Col:     1,
				Message: "lint:ignore " + ig.Rule + " suppresses nothing; remove the stale directive",
			})
		}
	}
	return diags
}
