// Package analysis is the repo's in-tree static-analysis engine: a
// stdlib-only (go/parser, go/ast, go/types, go/importer) loader plus a
// set of analyzers that lock the project's architectural promises into
// CI — the DESIGN.md package DAG, deterministic result production,
// byte-stable baselines (no stray wall-clock or global-rand reads), the
// telemetry layer's nil-receiver contract, and mutex hygiene on the
// scrape-lock-free paths.
//
// The engine mirrors the shape of golang.org/x/tools/go/analysis at a
// fraction of its surface, because the container bakes in only the Go
// toolchain: an Analyzer inspects one loaded Package at a time and
// returns position-accurate Diagnostics. Findings are suppressible at
// the flagged line (or the line above it) with
//
//	//lint:ignore <rule> <reason>
//
// where the reason is mandatory: an ignore without one, an ignore for
// an unknown rule, and an ignore that suppresses nothing are themselves
// diagnostics (rule "lintdirective"), so the tree can be held to "zero
// diagnostics and zero unexplained or stale ignores".
//
// cmd/lintcheck is the driver; internal/analysis/arch_test.go runs the
// import-layer analyzer against the live repo so `go test ./...` alone
// catches layer violations even without the Makefile.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// Diagnostic is one finding: a rule violation at a position. File is
// relative to the module root so output is stable across checkouts.
type Diagnostic struct {
	Rule    string `json:"rule"`
	Package string `json:"package"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// String renders the go-vet-style one-liner.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Rule, d.Message)
}

// Package is one loaded, parsed and (when the selected analyzers need
// it) type-checked package of the module under analysis.
type Package struct {
	// Module is the module path from go.mod.
	Module string
	// Path is the full import path ("<module>" or "<module>/<rel>").
	Path string
	// Rel is the module-root-relative directory ("" for the root).
	Rel string
	// Fset positions all Files.
	Fset *token.FileSet
	// Files holds the parsed non-test source files, sorted by name.
	Files []*ast.File
	// Types and Info are nil unless the loader type-checked the
	// package (Loader.Types). Info is populated even when the check
	// reported errors; TypeErrors then says what went wrong.
	Types      *types.Package
	Info       *types.Info
	TypeErrors []error
}

// Position resolves pos against the package's file set, with the
// filename rewritten relative to the module root.
func (p *Package) Position(pos token.Pos) token.Position {
	return p.Fset.Position(pos)
}

// diag builds a Diagnostic at pos.
func (p *Package) diag(rule string, pos token.Pos, format string, args ...any) Diagnostic {
	position := p.Position(pos)
	return Diagnostic{
		Rule:    rule,
		Package: p.Path,
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	}
}

// Analyzer inspects one package and reports findings. Analyzers are
// constructed from a Policy (see Analyzers) so every repo-specific
// fact — the import DAG, the determinism-sensitive packages, the
// nil-guarded types — lives in the checked-in policy table, not in
// analyzer code.
type Analyzer interface {
	// Name is the rule name used in diagnostics, -rule filters and
	// lint:ignore directives.
	Name() string
	// Doc is a one-paragraph description for `lintcheck -report`.
	Doc() string
	// NeedsTypes reports whether Check reads Package.Info. When every
	// selected analyzer is syntactic the loader skips type checking,
	// which keeps the arch_test smoke fast.
	NeedsTypes() bool
	// Check returns the findings for one package.
	Check(p *Package) []Diagnostic
}

// RunOptions filter an engine run.
type RunOptions struct {
	// Rules selects analyzers by name; empty means all.
	Rules []string
	// Packages selects packages whose module-relative path equals one
	// of the entries or sits beneath it; empty means the whole module.
	Packages []string
	// Now, when set, is sampled around each analyzer's Check to fill
	// RuleStat.WallNS. The clock is injected by the driver so this
	// package itself stays free of wall-clock reads (its own wallclock
	// rule applies here too); a nil Now leaves every WallNS zero.
	Now func() time.Time
}

// RuleStat aggregates one analyzer's work across a run, the numbers
// behind `lintcheck -report`.
type RuleStat struct {
	Rule string `json:"rule"`
	// Files counts source files the analyzer visited (package files of
	// every package it ran over).
	Files int `json:"files"`
	// Diagnostics counts pre-suppression findings, so a rule that fires
	// only into lint:ignore directives still shows its work.
	Diagnostics int `json:"diagnostics"`
	// WallNS is the summed wall-clock nanoseconds spent in Check, zero
	// when the driver injected no clock.
	WallNS int64 `json:"wall_ns"`
}

// Report is the result of one engine run; it is the schema behind
// `lintcheck -json` (see ValidateReport).
type Report struct {
	Module      string       `json:"module"`
	Rules       []string     `json:"rules"`
	Packages    []string     `json:"packages"`
	Diagnostics []Diagnostic `json:"diagnostics"`
	// Suppressed counts findings silenced by lint:ignore directives.
	Suppressed int `json:"suppressed"`
	// RuleStats carries per-analyzer file/diagnostic counts and wall
	// time, ordered by rule name.
	RuleStats []RuleStat `json:"rule_stats"`
}

// Run loads every package of the module rooted at root, runs the
// analyzers selected by opts, applies lint:ignore suppression, and
// returns the findings sorted by position. Load or type-check failures
// abort the run: the repo is expected to compile before it is linted.
func Run(root string, pol *Policy, opts RunOptions) (*Report, error) {
	all := Analyzers(pol)
	selected, err := selectAnalyzers(all, opts.Rules)
	if err != nil {
		return nil, err
	}
	needTypes := false
	for _, a := range selected {
		if a.NeedsTypes() {
			needTypes = true
		}
	}
	loader, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	loader.Types = needTypes

	rels, err := loader.PackageDirs()
	if err != nil {
		return nil, err
	}
	// The ignore bookkeeping needs the unfiltered directive set of each
	// analyzed package, so filtering happens per package, not per walk.
	// Slices start non-nil so -json emits [] rather than null on a
	// clean run: consumers get a stable shape either way.
	report := &Report{
		Module:      loader.Module,
		Packages:    []string{},
		Diagnostics: []Diagnostic{},
	}
	stats := make(map[string]*RuleStat, len(selected))
	for _, a := range selected {
		report.Rules = append(report.Rules, a.Name())
		stats[a.Name()] = &RuleStat{Rule: a.Name()}
	}
	sort.Strings(report.Rules)

	// An ignore directive is "stale" only when the analyzer it names
	// actually ran; partial runs (-rule, -pkg) skip staleness checks.
	fullRun := len(opts.Rules) == 0 && len(opts.Packages) == 0

	for _, rel := range rels {
		if !selectPackage(rel, opts.Packages) {
			continue
		}
		pkg, err := loader.Load(rel)
		if err != nil {
			return nil, fmt.Errorf("analysis: load %s: %w", relOrRoot(rel), err)
		}
		if needTypes && len(pkg.TypeErrors) > 0 {
			return nil, fmt.Errorf("analysis: type-check %s: %v", pkg.Path, pkg.TypeErrors[0])
		}
		report.Packages = append(report.Packages, pkg.Path)

		var diags []Diagnostic
		for _, a := range selected {
			st := stats[a.Name()]
			st.Files += len(pkg.Files)
			var begin time.Time
			if opts.Now != nil {
				begin = opts.Now()
			}
			found := a.Check(pkg)
			if opts.Now != nil {
				st.WallNS += opts.Now().Sub(begin).Nanoseconds()
			}
			st.Diagnostics += len(found)
			diags = append(diags, found...)
		}
		ignores, malformed := collectIgnores(pkg, knownRules(all))
		kept, suppressed := applyIgnores(diags, ignores)
		kept = append(kept, malformed...)
		report.Suppressed += suppressed
		if fullRun {
			kept = append(kept, staleIgnores(pkg, ignores)...)
		}
		report.Diagnostics = append(report.Diagnostics, kept...)
	}
	sort.Strings(report.Packages)
	sortDiagnostics(report.Diagnostics)
	report.RuleStats = make([]RuleStat, 0, len(stats))
	for _, name := range report.Rules {
		report.RuleStats = append(report.RuleStats, *stats[name])
	}
	return report, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
}

func selectAnalyzers(all []Analyzer, rules []string) ([]Analyzer, error) {
	if len(rules) == 0 {
		return all, nil
	}
	byName := make(map[string]Analyzer, len(all))
	for _, a := range all {
		byName[a.Name()] = a
	}
	var out []Analyzer
	for _, r := range rules {
		a, ok := byName[r]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown rule %q (have %s)", r, strings.Join(knownRules(all), ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

func selectPackage(rel string, filters []string) bool {
	if len(filters) == 0 {
		return true
	}
	for _, f := range filters {
		f = strings.Trim(f, "/")
		if f == "." || f == "" {
			if rel == "" {
				return true
			}
			continue
		}
		if rel == f || strings.HasPrefix(rel, f+"/") {
			return true
		}
	}
	return false
}

// knownRules returns the sorted rule names of all registered analyzers.
func knownRules(all []Analyzer) []string {
	names := make([]string, 0, len(all))
	for _, a := range all {
		names = append(names, a.Name())
	}
	sort.Strings(names)
	return names
}

func relOrRoot(rel string) string {
	if rel == "" {
		return "."
	}
	return rel
}
