// Package served is the lock-across-join fixture: it is in the
// fixture policy's MutexJoinScope and fixture (the module root) is the
// facade whose Join* calls must not run under a held lock.
package served

import (
	"sync"

	"fixture"
)

// Server pairs a lock with a default λ.
type Server struct {
	mu     sync.Mutex
	lambda int
}

// Bad runs the whole join with the lock held: flagged.
func (s *Server) Bad() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fixture.Join(s.lambda) // want mutexhygiene "while holding a mutex"
}

// BadParallel holds across the parallel variant too: flagged.
func (s *Server) BadParallel() int {
	s.mu.Lock()
	n := fixture.JoinParallel(s.lambda, 2) // want mutexhygiene "while holding a mutex"
	s.mu.Unlock()
	return n
}

// Good reads shared state under a short lock and joins unlocked.
func (s *Server) Good() int {
	s.mu.Lock()
	lambda := s.lambda
	s.mu.Unlock()
	return fixture.Join(lambda)
}

// NonJoin calls the facade under the lock, but not a Join*: the rule
// is about running whole joins, not about touching the facade.
func (s *Server) NonJoin() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fixture.Prepare()
}

// Closure returns a handler; the closure body is its own scope and
// does not inherit the definition site's held lock.
func (s *Server) Closure() func() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return func() int { return fixture.Join(s.lambda) }
}
