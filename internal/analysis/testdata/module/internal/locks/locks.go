// Package locks is the mutexhygiene fixture: it is in the fixture
// policy's scrape-lock-free scope and fixture/internal/iosim is the
// forbidden callee.
package locks

import (
	"sync"

	"fixture/internal/iosim"
)

// Store pairs a lock with a simulated file.
type Store struct {
	mu sync.Mutex
	f  *iosim.File
}

// Bad reads the simulated disk with the lock held: flagged.
func (s *Store) Bad() []byte {
	s.mu.Lock()
	page := s.f.ReadPage(0) // want mutexhygiene "while holding a mutex"
	s.mu.Unlock()
	return page
}

// BadDefer holds the lock for the whole function via defer: the read
// really happens under the lock, so it is flagged.
func (s *Store) BadDefer() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.ReadPage(0) // want mutexhygiene "while holding a mutex"
}

// Good releases before reading.
func (s *Store) Good() []byte {
	s.mu.Lock()
	s.mu.Unlock()
	return s.f.ReadPage(0)
}

// Handler returns a closure: the closure body is its own scope and
// does not run under the definition site's lock state.
func (s *Store) Handler() func() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return func() []byte { return s.f.ReadPage(1) }
}

// CopyParam passes a mutex by value: flagged.
func CopyParam(mu sync.Mutex) int { // want mutexhygiene "by value"
	_ = mu
	return 0
}

// CopyStruct passes a lock-bearing struct by value: flagged.
func CopyStruct(s Store) int { // want mutexhygiene "by value"
	_ = s
	return 0
}

// PointerParam is the correct shape.
func PointerParam(mu *sync.Mutex) { mu.Lock(); mu.Unlock() }

// Justified suppresses a deliberate hold with a reason.
func (s *Store) Justified() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:ignore mutexhygiene fixture: deliberate hold to exercise suppression
	return s.f.ReadPage(2)
}
