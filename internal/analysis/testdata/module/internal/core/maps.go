// Package core is the mapdeterminism fixture: a result-producing
// package in the fixture policy.
package core

import "sort"

// Keys walks a map straight into its result: flagged.
func Keys(m map[int]string) []int {
	var out []int
	for k := range m { // want mapdeterminism "range over map"
		out = append(out, k)
	}
	return out
}

// SortedKeys collects then sorts: the accepted idiom.
func SortedKeys(m map[int]string) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// SortBeforeRange sorts something else before iterating: the sort does
// not cover the loop, so the loop is still flagged.
func SortBeforeRange(m map[int]int) []int {
	pre := []int{2, 1}
	sort.Ints(pre)
	var out []int
	for k := range m { // want mapdeterminism "range over map"
		out = append(out, k)
	}
	return out
}

// SliceWalk ranges a slice: never flagged.
func SliceWalk(s []int) int {
	t := 0
	for _, v := range s {
		t += v
	}
	return t
}

// Justified is order-independent and says so.
func Justified(m map[int]int) int {
	t := 0
	//lint:ignore mapdeterminism summing commutes; iteration order cannot reach the result
	for _, v := range m {
		t += v
	}
	return t
}
