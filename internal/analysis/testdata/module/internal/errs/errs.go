// Package errs exercises the errdrop analyzer: error results on this
// (policy-listed) path must be consulted — no blank assignments, no
// bare-statement discards, no overwrite or abandonment before use.
package errs

import "fmt"

func fail() error        { return fmt.Errorf("boom") }
func pair() (int, error) { return 0, fmt.Errorf("boom") }
func sink(int)           {}

// Bare discards the error as an expression statement.
func Bare() {
	fail() // want errdrop "discards the error returned by"
}

// Blank hides the error in the blank identifier.
func Blank() {
	_ = fail() // want errdrop "assigns an error to _"
}

// TupleBlank hides the tuple's error component.
func TupleBlank() {
	v, _ := pair() // want errdrop "assigns an error to _"
	sink(v)
}

// Overwrite clobbers a fresh error before anything consulted it.
func Overwrite() error {
	err := fail()
	err = fail() // want errdrop "overwrites err before the previous error"
	return err
}

// OverwriteNamed is the named-result flavor.
func OverwriteNamed() (err error) {
	err = fail()
	err = nil // want errdrop "overwrites err before the previous error"
	return
}

// AbandonAtReturn drops the error on the flag path only; the other
// paths consult it, so the finding sits on the one bad return.
func AbandonAtReturn(flag bool) int {
	err := fail()
	if flag {
		return 1 // want errdrop "still unconsulted on this path"
	}
	if err != nil {
		return 2
	}
	return 3
}

// AbandonAtEnd never consults the error on any reachable path. The
// lexical use behind the goto keeps the compiler satisfied without
// putting a consult on a live path.
func AbandonAtEnd() {
	err := fail() // want errdrop "never consults it"
	goto done
	_ = err
done:
}

// CleanChecked is the canonical consulted error.
func CleanChecked() error {
	err := fail()
	if err != nil {
		return err
	}
	return nil
}

// CleanReturned forwards the error to the caller — returning IS
// consulting.
func CleanReturned() error {
	err := fail()
	return err
}

// CleanWrapped consults the error inside the return expression.
func CleanWrapped() error {
	err := fail()
	return fmt.Errorf("wrapped: %w", err)
}

// CleanNamedBareReturn forwards a named result through a bare return.
func CleanNamedBareReturn() (err error) {
	err = fail()
	return
}

// CleanExempt calls into a policy-exempt package whose errors are
// vacuous by contract.
func CleanExempt() {
	fmt.Println("ok")
}

// CleanAddressTaken has consumers the intraprocedural flow cannot see.
func CleanAddressTaken(capture func(*error)) {
	var err error
	capture(&err)
	err = fail()
}

// CleanClosureCaptured likewise: the closure may consult it later.
func CleanClosureCaptured() func() error {
	err := fail()
	return func() error {
		err = fail()
		return err
	}
}

// Suppressed documents a deliberate drop with a reasoned directive.
func Suppressed() {
	//lint:ignore errdrop fixture: the drop is deliberate, proving suppression works
	fail()
}

// StaleDirective carries an ignore that suppresses nothing.
func StaleDirective() error {
	//lint:ignore errdrop this error is consulted, so the directive is stale // want lintdirective "suppresses nothing"
	err := fail()
	return err
}
