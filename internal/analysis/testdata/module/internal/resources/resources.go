// Package resources exercises the resourceleak analyzer: every
// iosim.Open/OpenPair result must be Closed, deferred, returned or
// handed off on every path to exit.
package resources

import "fixture/internal/iosim"

// LeakOnEarlyReturn closes on the fall-through path only; the early
// return abandons the file.
func LeakOnEarlyReturn(flag bool) int {
	f := iosim.Open()
	if flag {
		return 0 // want resourceleak "returns without releasing f"
	}
	f.Close()
	return 1
}

// LeakAtEnd releases on one branch only, so the merged state still owes
// a Close when the function falls off its end.
func LeakAtEnd(flag bool) { // anchored at the acquire below
	f := iosim.Open() // want resourceleak "end of the function"
	if flag {
		f.Close()
	}
}

// NeverReleased has no release, defer or hand-off anywhere: one finding
// at the acquire, not one per path.
func NeverReleased() {
	f := iosim.Open() // want resourceleak "never releases"
	f.ReadPage(0)
}

// Discards drops the acquired file on the floor.
func Discards() {
	iosim.Open() // want resourceleak "discards it"
}

// DiscardsBlank is the blank-identifier flavor of the same bug.
func DiscardsBlank() {
	_ = iosim.Open() // want resourceleak "discards it"
}

// CleanDefer releases through a defer, which covers every path.
func CleanDefer(flag bool) int {
	f := iosim.Open()
	defer f.Close()
	if flag {
		return 0
	}
	return 1
}

// CleanDeferClosure releases through a deferred closure.
func CleanDeferClosure() {
	f := iosim.Open()
	defer func() {
		f.Close()
	}()
	f.ReadPage(0)
}

// CleanDeferInLoop is the classic false-positive trap: each iteration's
// defer releases its own file at function exit.
func CleanDeferInLoop(n int) {
	for i := 0; i < n; i++ {
		f := iosim.Open()
		defer f.Close()
	}
}

// CleanErrPath must not be flagged: on the err != nil edge the acquire
// failed and the nil file owes no Close.
func CleanErrPath() (int, error) {
	f, err := iosim.OpenPair()
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return 1, nil
}

// CleanNilCheck must not be flagged: the resource-is-nil edge owes no
// Close either.
func CleanNilCheck() int {
	f := iosim.Open()
	if f == nil {
		return 0
	}
	f.Close()
	return 1
}

// CleanReturned hands the file to the caller.
func CleanReturned() *iosim.File {
	f := iosim.Open()
	return f
}

// CleanHandOff transfers ownership to the sink.
func CleanHandOff(sink func(*iosim.File)) {
	f := iosim.Open()
	sink(f)
}

// CleanStored hands the file to a longer-lived owner.
type holder struct{ f *iosim.File }

func CleanStored(h *holder) {
	f := iosim.Open()
	h.f = f
}

// Suppressed documents a deliberate leak with a reasoned directive.
func Suppressed() {
	//lint:ignore resourceleak fixture: the leak is deliberate, proving suppression works
	f := iosim.Open()
	f.ReadPage(0)
}

// StaleDirective carries an ignore that suppresses nothing.
func StaleDirective() {
	//lint:ignore resourceleak this function is clean, so the directive is stale // want lintdirective "suppresses nothing"
	f := iosim.Open()
	defer f.Close()
}
