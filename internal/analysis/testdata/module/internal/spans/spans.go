// Package spans exercises the spanhygiene rule: every span started in
// a scope package must be ended on all return paths, deferred, or
// handed off to someone who will end it.
package spans

import "fixture/internal/reqtrace"

// phase wraps the provider span the way a per-package phase span does;
// the struct-field rule makes the wrapper count as a span too.
type phase struct{ s *reqtrace.Span }

// End closes the wrapped span.
func (p phase) End() { p.s.End() }

// startPhase constructs the wrapper; the construction itself neither
// binds nor drops a tracked variable, exactly like the real core's
// phase-span helper.
func startPhase(name string) phase { return phase{s: reqtrace.StartSpan(name)} }

// Dropped starts a span as a bare statement: nothing can ever end it.
func Dropped() {
	reqtrace.StartSpan("dropped") // want spanhygiene "discards it"
}

// Blank discards the span through the blank identifier.
func Blank() {
	_ = reqtrace.StartSpan("blank") // want spanhygiene "discards it"
}

// NeverEnded binds the span but no path ends it.
func NeverEnded() {
	s := reqtrace.StartSpan("leak") // want spanhygiene "never ends it"
	s.SetAttr("k", "v")
}

// EarlyReturn ends the span on the happy path but leaks it on the
// error path — the exact bug the rule exists to catch.
func EarlyReturn(fail bool) {
	s := reqtrace.StartSpan("early")
	if fail {
		return // want spanhygiene "returns without ending span s"
	}
	s.End()
}

// WrapperLeak leaks through the local phase wrapper: the struct-field
// rule sees through it.
func WrapperLeak(fail bool) {
	p := startPhase("wrapped")
	if fail {
		return // want spanhygiene "returns without ending span p"
	}
	p.End()
}

// Deferred is the canonical safe shape: the deferred End runs on every
// return path, panics included.
func Deferred(fail bool) {
	s := reqtrace.StartSpan("deferred")
	defer s.End()
	if fail {
		return
	}
	s.SetAttr("k", "v")
}

// AllPaths ends the span explicitly before each return.
func AllPaths(fail bool) {
	s := reqtrace.StartSpan("paths")
	if fail {
		s.End()
		return
	}
	s.SetAttr("k", "v")
	s.End()
}

// Children started and ended inline stay clean, including the chained
// start-and-end expression.
func Children() {
	s := reqtrace.StartSpan("parent")
	c := s.StartChild("child")
	c.End()
	s.StartChild("instant").End()
	s.End()
}

// HandOff transfers the End responsibility to the callee.
func HandOff() {
	s := reqtrace.StartSpan("given")
	record(s)
}

func record(s *reqtrace.Span) { s.End() }

// Returned hands the span to the caller: the return is an escape, not
// a leak.
func Returned() *reqtrace.Span {
	s := reqtrace.StartSpan("exported")
	s.SetAttr("k", "v")
	return s
}

// Justified keeps a deliberate leak with an explanation.
func Justified() {
	//lint:ignore spanhygiene fixture: process-lifetime span ended at shutdown elsewhere
	s := reqtrace.StartSpan("background")
	s.SetAttr("k", "v")
}
