// Package telemetry is exempt from the wallclock rule in the fixture
// policy — its clock reads must produce no findings.
package telemetry

import "time"

// Now is timing infrastructure and may read the clock.
func Now() time.Time { return time.Now() }
