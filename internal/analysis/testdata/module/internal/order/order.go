// Package order exercises the lockorder analyzer: the package's
// lock-acquisition graph must be acyclic and no path may re-acquire a
// mutex it already holds.
package order

import "sync"

// S carries the direct two-lock cycle: LockAB nests a→b while LockBA
// nests b→a.
type S struct {
	a sync.Mutex
	b sync.Mutex
}

// LockAB holds a while taking b. The cycle diagnostic anchors on the
// lexicographically-first edge, which is this acquire.
func (s *S) LockAB() {
	s.a.Lock()
	s.b.Lock() // want lockorder "lock order cycle"
	s.b.Unlock()
	s.a.Unlock()
}

// LockBA holds b while taking a — the opposite nesting.
func (s *S) LockBA() {
	s.b.Lock()
	s.a.Lock()
	s.a.Unlock()
	s.b.Unlock()
}

// Recurse re-acquires a held mutex: guaranteed self-deadlock.
func (s *S) Recurse() {
	s.a.Lock()
	s.a.Lock() // want lockorder "while already holding it"
	s.a.Unlock()
	s.a.Unlock()
}

// T carries a cycle that only closes through the call graph: CD holds c
// across a call into lockD, DC nests the pair directly the other way.
type T struct {
	c sync.Mutex
	d sync.Mutex
}

// CD acquires d via lockD while holding c.
func (t *T) CD() {
	t.c.Lock()
	defer t.c.Unlock()
	t.lockD() // want lockorder "lock order cycle"
}

func (t *T) lockD() {
	t.d.Lock()
	defer t.d.Unlock()
}

// DC nests d→c directly, closing the cycle with CD's c→d edge.
func (t *T) DC() {
	t.d.Lock()
	defer t.d.Unlock()
	t.c.Lock()
	t.c.Unlock()
}

// U carries a suppressed cycle: a known, documented inversion.
type U struct {
	e sync.Mutex
	f sync.Mutex
}

// EF holds e while taking f; the suppression below covers the cycle's
// anchor edge.
func (u *U) EF() {
	u.e.Lock()
	//lint:ignore lockorder fixture: the inversion is deliberate, proving suppression works
	u.f.Lock()
	u.f.Unlock()
	u.e.Unlock()
}

// FE is the other half of the suppressed cycle.
func (u *U) FE() {
	u.f.Lock()
	u.e.Lock()
	u.e.Unlock()
	u.f.Unlock()
}

// V nests its pair in the same g→h order everywhere: a clean order
// graph with edges but no cycle.
type V struct {
	g sync.Mutex
	h sync.Mutex
}

func (v *V) One() {
	v.g.Lock()
	v.h.Lock()
	v.h.Unlock()
	v.g.Unlock()
}

func (v *V) Two() {
	v.g.Lock()
	defer v.g.Unlock()
	v.h.Lock()
	defer v.h.Unlock()
}

// W guards the must-analysis: p is only held on one path into the q
// acquire, so no p→q edge may form — a may-analysis would pair it with
// QThenP's q→p edge into a false cycle.
type W struct {
	p sync.Mutex
	q sync.Mutex
}

func (w *W) CondThenQ(flag bool) {
	if flag {
		w.p.Lock()
		w.p.Unlock()
	}
	w.q.Lock()
	w.q.Unlock()
}

func (w *W) QThenP() {
	w.q.Lock()
	w.p.Lock()
	w.p.Unlock()
	w.q.Unlock()
}
