// Package reqtrace is the fixture span provider for the spanhygiene
// rule: a named type with an End method in a policy span package.
package reqtrace

// Span is the fixture span type.
type Span struct{ open bool }

// StartSpan opens a root span.
func StartSpan(name string) *Span { return &Span{open: true} }

// StartChild opens a child span.
func (s *Span) StartChild(name string) *Span { return &Span{open: true} }

// End closes the span.
func (s *Span) End() { s.open = false }

// SetAttr annotates the span.
func (s *Span) SetAttr(k, v string) {}
