// Package clock is the wallclock fixture: an internal package outside
// the exempt list.
package clock

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock: flagged.
func Stamp() int64 {
	return time.Now().UnixNano() // want wallclock "must not read the wall clock"
}

// Elapsed also reads the clock: flagged.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want wallclock "must not read the wall clock"
}

// StoredClock stashes the clock for later: still flagged — it reads
// wall time whenever it runs.
var StoredClock = time.Now // want wallclock "must not read the wall clock"

// Roll touches the global rand state: flagged.
func Roll() int {
	return rand.Intn(6) // want wallclock "global rand state"
}

// Seeded builds an explicit generator: deterministic, allowed.
func Seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

// Arithmetic on time values without reading the clock is fine.
func Later(d time.Duration) time.Time {
	return time.Unix(0, 0).Add(d)
}

// Justified keeps a clock read with an explanation.
func Justified() time.Time {
	//lint:ignore wallclock fixture: operator-facing timestamp off every measured path
	return time.Now()
}
