// Package guards is the nilrecv fixture; the fixture policy lists only
// type Thing.
package guards

// Thing follows the nil-safe contract.
type Thing struct{ n int }

// Guarded begins with the canonical guard.
func (t *Thing) Guarded() int {
	if t == nil {
		return 0
	}
	return t.n
}

// Flipped writes the comparison the other way around.
func (t *Thing) Flipped() int {
	if nil != t {
		return t.n
	}
	return 0
}

// Enabled uses the return-expression guard form.
func (t *Thing) Enabled() bool { return t != nil }

// Compound guards as part of a larger condition.
func (t *Thing) Compound(deep bool) int {
	if t == nil || !deep {
		return 0
	}
	return t.n
}

// Bare lacks the guard: flagged.
func (t *Thing) Bare() int { // want nilrecv "must begin with a nil-receiver guard"
	return t.n
}

// LateGuard checks nil only on the second statement: flagged.
func (t *Thing) LateGuard() int { // want nilrecv "must begin with a nil-receiver guard"
	n := 1
	if t == nil {
		return n
	}
	return t.n + n
}

// unexported methods are outside the contract.
func (t *Thing) bare() int { return t.n }

// ByValue receivers copy and cannot be guarded; exempt.
func (t Thing) ByValue() int { return t.n }

// Justified explains why its guard lives elsewhere.
//
//lint:ignore nilrecv fixture: delegates immediately to a guarded helper
func (t *Thing) Justified() int { return t.helper() }

func (t *Thing) helper() int {
	if t == nil {
		return 0
	}
	return t.n
}

// Gadget is not in the policy; nothing on it is checked.
type Gadget struct{ n int }

// Bare on an unlisted type passes.
func (g *Gadget) Bare() int { return g.n }
