// Package iosim is the fixture's stand-in for the simulated disk: the
// mutexhygiene analyzer treats calls into it as I/O.
package iosim

// File is a stub paged file.
type File struct{ pages [][]byte }

// Open returns an empty file. The resourceleak fixture policy pairs it
// with Close.
func Open() *File { return &File{} }

// OpenPair returns a file with a paired error, the (T, error) acquire
// shape whose failure path owes no Close.
func OpenPair() (*File, error) { return &File{}, nil }

// Close releases the file.
func (f *File) Close() error {
	f.pages = nil
	return nil
}

// ReadPage returns page i or nil.
func (f *File) ReadPage(i int) []byte {
	if i < 0 || i >= len(f.pages) {
		return nil
	}
	return f.pages[i]
}
