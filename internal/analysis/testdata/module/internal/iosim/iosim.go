// Package iosim is the fixture's stand-in for the simulated disk: the
// mutexhygiene analyzer treats calls into it as I/O.
package iosim

// File is a stub paged file.
type File struct{ pages [][]byte }

// Open returns an empty file.
func Open() *File { return &File{} }

// ReadPage returns page i or nil.
func (f *File) ReadPage(i int) []byte {
	if i < 0 || i >= len(f.pages) {
		return nil
	}
	return f.pages[i]
}
