// Package fixture is the fixture module's facade: the module-root
// package whose Join* entry points the mutexhygiene join rule guards.
package fixture

// Join stands in for the real facade's join entry points.
func Join(lambda int) int { return lambda }

// JoinParallel is a second Join-prefixed entry point.
func JoinParallel(lambda, workers int) int { return lambda * workers }

// Prepare is facade API that is not a join: legal under a lock.
func Prepare() int { return 1 }
