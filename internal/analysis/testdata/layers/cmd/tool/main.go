// Command tool may import anything in the module.
package main

import (
	_ "layered"
	_ "layered/internal/a"
)

func main() {}
