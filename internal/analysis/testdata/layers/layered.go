// Package layered is the fixture's facade: free to import any module
// package except cmd binaries.
package layered

import (
	_ "layered/cmd/tool" // want importlayer "never importable"

	_ "layered/internal/a"
	_ "layered/internal/b"
)
