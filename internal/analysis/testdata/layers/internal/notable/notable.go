// Package notable is missing from the fixture policy table: internal
// packages must declare their layer on arrival.
package notable // want importlayer "not in the import-layer policy table"

import _ "sort"
