// Package a is a stdlib-only leaf: listed with an empty allow list.
package a

import _ "sort"
