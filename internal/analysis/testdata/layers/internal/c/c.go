// Package c is listed with an empty allow list, so its import of
// internal/a is a violation.
package c

import _ "layered/internal/a" // want importlayer "not an allowed dependency"
