// Package b is allowed to depend on internal/a only; every other
// module import here violates a layer rule.
package b

import (
	_ "strings"

	_ "github.com/acme/dep" // want importlayer "dependency-free"

	_ "layered" // want importlayer "must not import the facade"

	_ "layered/cmd/tool" // want importlayer "never importable"

	_ "layered/internal/a"

	_ "layered/internal/c" // want importlayer "not an allowed dependency"
)
