module layered

go 1.22
