package analysis

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden tests run the engine over the fixture modules under
// testdata/ and compare every diagnostic against `// want <rule>
// "<message substring>"` annotations in the fixture sources — the
// analysistest idiom rebuilt on the in-repo engine. Every want must be
// hit and every diagnostic must be wanted, so both false negatives and
// false positives fail loudly.

// fixturePolicy is the policy testdata/module is written against.
func fixturePolicy() *Policy {
	return &Policy{
		ImportLayer: map[string][]string{
			"internal/clock":     {},
			"internal/core":      {},
			"internal/errs":      {},
			"internal/guards":    {},
			"internal/iosim":     {},
			"internal/locks":     {"internal/iosim"},
			"internal/order":     {},
			"internal/reqtrace":  {},
			"internal/resources": {"internal/iosim"},
			"internal/spans":     {"internal/reqtrace"},
			"internal/telemetry": {},
		},
		MapDeterminism:  []string{"internal/core"},
		WallClockExempt: []string{"internal/telemetry"},
		NilRecv:         map[string][]string{"internal/guards": {"Thing"}},
		MutexScope:      []string{"internal/locks"},
		MutexForbidden:  []string{"internal/iosim"},
		MutexJoinScope:  []string{"cmd/served"},
		SpanScope:       []string{"internal/spans"},
		SpanPackages:    []string{"internal/reqtrace"},
		Resources: []ResourceRule{
			{Pkg: "internal/iosim", Call: "Open", Release: "Close"},
			{Pkg: "internal/iosim", Call: "OpenPair", Release: "Close"},
		},
		ErrDrop:       []string{"internal/errs"},
		ErrDropExempt: []string{"fmt"},
		LockOrder:     []string{"internal/order"},
	}
}

// layersPolicy is the policy testdata/layers is written against.
// internal/notable is deliberately missing from the table.
func layersPolicy() *Policy {
	return &Policy{
		ImportLayer: map[string][]string{
			"internal/a": {},
			"internal/b": {"internal/a"},
			"internal/c": {},
		},
	}
}

// TestGoldenModule runs the full suite (all rules, full-run mode, so
// stale-ignore detection is live) over the type-checked fixture.
func TestGoldenModule(t *testing.T) {
	report := runGolden(t, "testdata/module", fixturePolicy(), RunOptions{})
	// One used suppression per analyzer fixture: mapdeterminism,
	// wallclock, nilrecv, mutexhygiene, spanhygiene, resourceleak,
	// errdrop, lockorder.
	if report.Suppressed != 8 {
		t.Errorf("suppressed = %d, want 8", report.Suppressed)
	}
}

// TestGoldenLayers runs the syntactic import-layer rule over the
// fixture whose imports deliberately break every layer invariant.
func TestGoldenLayers(t *testing.T) {
	runGolden(t, "testdata/layers", layersPolicy(), RunOptions{Rules: []string{"importlayer"}})
}

func runGolden(t *testing.T, root string, pol *Policy, opts RunOptions) *Report {
	t.Helper()
	report, err := Run(root, pol, opts)
	if err != nil {
		t.Fatalf("Run(%s): %v", root, err)
	}
	wants := parseWants(t, root)
	matched := make(map[*want]bool)
	for _, d := range report.Diagnostics {
		w := findWant(wants, d)
		if w == nil {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		matched[w] = true
	}
	for _, w := range wants {
		if !matched[w] {
			t.Errorf("missing diagnostic: %s:%d wants %s %q", w.file, w.line, w.rule, w.substr)
		}
	}
	return report
}

type want struct {
	file   string // root-relative, forward slashes
	line   int
	rule   string
	substr string
}

var wantRe = regexp.MustCompile(`// want ([a-z]+) "([^"]+)"`)

// parseWants scans every fixture source file for want annotations.
func parseWants(t *testing.T, root string) []*want {
	t.Helper()
	var wants []*want
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				wants = append(wants, &want{
					file:   filepath.ToSlash(rel),
					line:   i + 1,
					rule:   m[1],
					substr: m[2],
				})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("parsing wants: %v", err)
	}
	return wants
}

func findWant(wants []*want, d Diagnostic) *want {
	for _, w := range wants {
		if w.file == d.File && w.line == d.Line && w.rule == d.Rule && strings.Contains(d.Message, w.substr) {
			return w
		}
	}
	return nil
}

// TestGoldenRuleFilter pins that -rule narrows the run: with only
// wallclock selected the map-iteration fixture produces nothing.
func TestGoldenRuleFilter(t *testing.T) {
	report, err := Run("testdata/module", fixturePolicy(), RunOptions{Rules: []string{"wallclock"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range report.Diagnostics {
		if d.Rule != "wallclock" {
			t.Errorf("rule filter leaked %s diagnostic: %s", d.Rule, d)
		}
	}
	if len(report.Diagnostics) == 0 {
		t.Error("wallclock run over the fixture found nothing")
	}
}

// TestGoldenPackageFilter pins that -pkg narrows the run and disables
// stale-ignore reporting for the skipped analyzers' directives.
func TestGoldenPackageFilter(t *testing.T) {
	report, err := Run("testdata/module", fixturePolicy(), RunOptions{Packages: []string{"internal/guards"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Packages) != 1 || !strings.HasSuffix(report.Packages[0], "internal/guards") {
		t.Fatalf("packages = %v, want just internal/guards", report.Packages)
	}
	for _, d := range report.Diagnostics {
		if !strings.HasPrefix(d.File, "internal/guards/") {
			t.Errorf("package filter leaked diagnostic: %s", d)
		}
	}
}
