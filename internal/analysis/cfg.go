package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// cfg.go builds the intraprocedural control-flow graph the
// path-sensitive analyzers (resourceleak, errdrop, lockorder) run on.
// One graph covers one function scope: a FuncDecl body or a FuncLit
// body — never both, a literal is its own scope, mirroring the
// straight-line analyzers' scoping rule.
//
// Blocks hold the scope's leaf nodes in execution order: plain
// statements verbatim, plus the decomposed pieces of control
// statements (an if's Init and Cond, a for's Init/Cond/Post, a
// switch's Tag, a select clause's Comm). Nested statement bodies live
// in their own blocks, so a node never contains another node — except
// a RangeStmt, which is emitted whole as its loop header (its Body is
// still separate); walkFlowNode knows to skip it.
//
// Edges carry the branch condition where one exists: an IfStmt or
// for-loop condition produces a (cond, true) edge and a (cond, false)
// edge, which is what lets an analyzer's edge-transfer refine state by
// path — `if err != nil { return err }` invalidates the resource on
// exactly the error branch. Return statements edge to the synthetic
// exit block. `panic(...)`, `os.Exit(...)`, `runtime.Goexit()` and
// `log.Fatal*(...)` terminate their block with no successor: code
// after them is unreachable and, for leak purposes, a resource held at
// a panic is the runtime's problem, not the analyzer's.
//
// A defer statement is an ordinary node. Its exit-edge semantics —
// the deferred call runs on every path to exit that passes the defer —
// fall out of forward dataflow naturally: a transfer function that
// marks a resource released at the DeferStmt is exactly "released on
// every subsequent exit path", while paths that never execute the
// defer keep their unreleased state.

// cfgEdge is one successor edge, optionally labelled with the branch
// condition that selects it.
type cfgEdge struct {
	to     *cfgBlock
	cond   ast.Expr // nil for an unconditional edge
	branch bool     // the truth value of cond along this edge
}

// cfgBlock is one basic block: leaf nodes in execution order plus
// successor edges.
type cfgBlock struct {
	index int
	nodes []ast.Node
	succs []cfgEdge
	preds []*cfgBlock
}

// cfg is the graph for one function scope.
type cfg struct {
	entry  *cfgBlock
	exit   *cfgBlock // synthetic; every return edges here
	blocks []*cfgBlock
	// fallBlock is the block whose end reaches the closing brace (the
	// implicit return), nil when every path ends in an explicit
	// terminator. Analyzers judge the fall-off-the-end exit by
	// replaying this block rather than the exit in-state, which also
	// mixes in the explicit-return paths.
	fallBlock *cfgBlock
}

// cfgCtx is one enclosing breakable construct on the builder's stack.
type cfgCtx struct {
	label      string
	breakTo    *cfgBlock
	continueTo *cfgBlock // loops only
	fallTo     *cfgBlock // switch clauses only: the next clause's block
}

type cfgBuilder struct {
	g      *cfg
	cur    *cfgBlock // nil while the current path is terminated
	labels map[string]*cfgBlock
	ctx    []cfgCtx
}

// buildCFG constructs the graph for one function body.
func buildCFG(body *ast.BlockStmt) *cfg {
	b := &cfgBuilder{g: &cfg{}, labels: make(map[string]*cfgBlock)}
	b.g.entry = b.newBlock()
	b.g.exit = b.newBlock()
	b.cur = b.g.entry
	b.stmtList(body.List)
	if b.cur != nil {
		b.g.fallBlock = b.cur
		b.edge(b.cur, b.g.exit, nil, false)
	}
	for _, blk := range b.g.blocks {
		for _, e := range blk.succs {
			e.to.preds = append(e.to.preds, blk)
		}
	}
	return b.g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{index: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

// ensure gives dead code after a terminator an unreachable block to
// accumulate into, so the builder never dereferences a nil current.
func (b *cfgBuilder) ensure() *cfgBlock {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *cfgBuilder) emit(n ast.Node) {
	b.ensure().nodes = append(b.cur.nodes, n)
}

func (b *cfgBuilder) edge(from, to *cfgBlock, cond ast.Expr, branch bool) {
	from.succs = append(from.succs, cfgEdge{to: to, cond: cond, branch: branch})
}

// jump closes the current path with an unconditional edge to dst.
func (b *cfgBuilder) jump(dst *cfgBlock) {
	if b.cur != nil {
		b.edge(b.cur, dst, nil, false)
	}
	b.cur = nil
}

// labelBlock returns (creating on first reference) the block a label
// names, so forward gotos resolve before their LabeledStmt is built.
func (b *cfgBuilder) labelBlock(name string) *cfgBlock {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labels[name] = blk
	return blk
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// findCtx resolves a break/continue target: the innermost context, or
// the one carrying the label. needContinue restricts to loops.
func (b *cfgBuilder) findCtx(label string, needContinue bool) *cfgCtx {
	for i := len(b.ctx) - 1; i >= 0; i-- {
		c := &b.ctx[i]
		if needContinue && c.continueTo == nil {
			continue
		}
		if label == "" || c.label == label {
			return c
		}
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		b.jump(lb)
		b.cur = lb
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.IfStmt:
		if s.Init != nil {
			b.emit(s.Init)
		}
		b.emit(s.Cond)
		condBlk := b.cur
		thenBlk := b.newBlock()
		after := b.newBlock()
		b.edge(condBlk, thenBlk, s.Cond, true)
		if s.Else != nil {
			elseBlk := b.newBlock()
			b.edge(condBlk, elseBlk, s.Cond, false)
			b.cur = thenBlk
			b.stmt(s.Body, "")
			b.jump(after)
			b.cur = elseBlk
			b.stmt(s.Else, "")
			b.jump(after)
		} else {
			b.edge(condBlk, after, s.Cond, false)
			b.cur = thenBlk
			b.stmt(s.Body, "")
			b.jump(after)
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.emit(s.Init)
		}
		header := b.newBlock()
		bodyBlk := b.newBlock()
		after := b.newBlock()
		contTo := header
		var post *cfgBlock
		if s.Post != nil {
			post = b.newBlock()
			contTo = post
		}
		b.jump(header)
		b.cur = header
		if s.Cond != nil {
			b.emit(s.Cond)
			b.edge(b.cur, bodyBlk, s.Cond, true)
			b.edge(b.cur, after, s.Cond, false)
		} else {
			b.edge(b.cur, bodyBlk, nil, false)
		}
		b.ctx = append(b.ctx, cfgCtx{label: label, breakTo: after, continueTo: contTo})
		b.cur = bodyBlk
		b.stmt(s.Body, "")
		b.ctx = b.ctx[:len(b.ctx)-1]
		if s.Post != nil {
			b.jump(post)
			b.cur = post
			b.emit(s.Post)
			b.jump(header)
		} else {
			b.jump(header)
		}
		b.cur = after

	case *ast.RangeStmt:
		header := b.newBlock()
		bodyBlk := b.newBlock()
		after := b.newBlock()
		b.jump(header)
		// The RangeStmt itself is the header node: analyzers read X and
		// the Key/Value bindings from it (walkFlowNode skips its Body).
		header.nodes = append(header.nodes, s)
		b.edge(header, bodyBlk, nil, false)
		b.edge(header, after, nil, false)
		b.ctx = append(b.ctx, cfgCtx{label: label, breakTo: after, continueTo: header})
		b.cur = bodyBlk
		b.stmt(s.Body, "")
		b.ctx = b.ctx[:len(b.ctx)-1]
		b.jump(header)
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.emit(s.Init)
		}
		if s.Tag != nil {
			b.emit(s.Tag)
		}
		b.buildSwitch(s.Body.List, label, func(cc *ast.CaseClause, blk *cfgBlock) {
			for _, e := range cc.List {
				blk.nodes = append(blk.nodes, e)
			}
		})

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.emit(s.Init)
		}
		b.emit(s.Assign)
		b.buildSwitch(s.Body.List, label, nil)

	case *ast.SelectStmt:
		header := b.ensure()
		after := b.newBlock()
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(header, blk, nil, false)
			b.cur = blk
			if cc.Comm != nil {
				b.emit(cc.Comm)
			}
			b.ctx = append(b.ctx, cfgCtx{label: label, breakTo: after})
			b.stmtList(cc.Body)
			b.ctx = b.ctx[:len(b.ctx)-1]
			b.jump(after)
		}
		if len(s.Body.List) == 0 {
			// `select {}` blocks forever; keep after reachable anyway so
			// the builder stays total.
			b.edge(header, after, nil, false)
		}
		b.cur = after

	case *ast.BranchStmt:
		name := ""
		if s.Label != nil {
			name = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if c := b.findCtx(name, false); c != nil {
				b.jump(c.breakTo)
			} else {
				b.cur = nil
			}
		case token.CONTINUE:
			if c := b.findCtx(name, true); c != nil {
				b.jump(c.continueTo)
			} else {
				b.cur = nil
			}
		case token.GOTO:
			b.jump(b.labelBlock(name))
		case token.FALLTHROUGH:
			if c := b.findCtx("", false); c != nil && c.fallTo != nil {
				b.jump(c.fallTo)
			} else {
				b.cur = nil
			}
		}

	case *ast.ReturnStmt:
		b.emit(s)
		b.jump(b.g.exit)

	case *ast.ExprStmt:
		b.emit(s)
		if call, ok := s.X.(*ast.CallExpr); ok && isTerminalCall(call) {
			b.cur = nil
		}

	default:
		// Assign, Decl, Defer, Go, Send, IncDec, Empty: plain nodes.
		b.emit(s)
	}
}

// buildSwitch shares the clause scaffolding of expression and type
// switches: every clause block hangs off the header, fallthrough edges
// chain clause to clause, and a missing default adds a header→after
// edge.
func (b *cfgBuilder) buildSwitch(clauses []ast.Stmt, label string, emitCase func(*ast.CaseClause, *cfgBlock)) {
	header := b.ensure()
	after := b.newBlock()
	blks := make([]*cfgBlock, len(clauses))
	for i := range clauses {
		blks[i] = b.newBlock()
	}
	hasDefault := false
	for i, cl := range clauses {
		var body []ast.Stmt
		var fallTo *cfgBlock
		if i+1 < len(blks) {
			fallTo = blks[i+1]
		}
		switch cc := cl.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			if emitCase != nil {
				emitCase(cc, blks[i])
			}
			body = cc.Body
		}
		b.edge(header, blks[i], nil, false)
		b.cur = blks[i]
		b.ctx = append(b.ctx, cfgCtx{label: label, breakTo: after, fallTo: fallTo})
		b.stmtList(body)
		b.ctx = b.ctx[:len(b.ctx)-1]
		b.jump(after)
	}
	if !hasDefault {
		b.edge(header, after, nil, false)
	}
	b.cur = after
}

// isTerminalCall reports whether call never returns: the panic builtin,
// os.Exit, runtime.Goexit, or log.Fatal*. Matching is syntactic (by
// qualifier name), which is exact for this repo's unaliased imports and
// merely conservative elsewhere.
func isTerminalCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch pkg.Name {
		case "os":
			return fun.Sel.Name == "Exit"
		case "runtime":
			return fun.Sel.Name == "Goexit"
		case "log":
			return strings.HasPrefix(fun.Sel.Name, "Fatal")
		}
	}
	return false
}

// walkFlowNode visits n and its children the way a CFG node owns them:
// it does not descend into a RangeStmt's body (a separate block) and
// does not descend into function literals (separate scopes) — the
// FuncLit node itself is still visited, so analyzers that care about
// captures can recurse explicitly. The callback returns false to prune.
func walkFlowNode(n ast.Node, fn func(ast.Node) bool) {
	var rangeBody *ast.BlockStmt
	if rs, ok := n.(*ast.RangeStmt); ok {
		rangeBody = rs.Body
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if m == rangeBody {
			return false
		}
		if !fn(m) {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return true
	})
}

// String renders the graph for tests and debugging: one line per
// block with node kinds and successor edges.
func (g *cfg) String() string {
	var sb strings.Builder
	for _, blk := range g.blocks {
		fmt.Fprintf(&sb, "b%d", blk.index)
		if blk == g.entry {
			sb.WriteString("(entry)")
		}
		if blk == g.exit {
			sb.WriteString("(exit)")
		}
		sb.WriteString(":")
		for _, n := range blk.nodes {
			fmt.Fprintf(&sb, " %T", n)
		}
		if len(blk.succs) > 0 {
			sb.WriteString(" ->")
			for _, e := range blk.succs {
				if e.cond != nil {
					fmt.Fprintf(&sb, " b%d(%v)", e.to.index, e.branch)
				} else {
					fmt.Fprintf(&sb, " b%d", e.to.index)
				}
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// reachable returns the blocks reachable from entry, in index order.
func (g *cfg) reachable() []*cfgBlock {
	seen := make(map[*cfgBlock]bool)
	var visit func(*cfgBlock)
	visit = func(b *cfgBlock) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, e := range b.succs {
			visit(e.to)
		}
	}
	visit(g.entry)
	var out []*cfgBlock
	for _, b := range g.blocks {
		if seen[b] {
			out = append(out, b)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].index < out[j].index })
	return out
}
