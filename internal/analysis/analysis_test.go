package analysis

import (
	"encoding/json"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parsePkg wraps a single source string as a loaded (untyped) Package
// so directive handling can be unit-tested without touching disk.
func parsePkg(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p/p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return &Package{
		Module: "m",
		Path:   "m/p",
		Rel:    "p",
		Fset:   fset,
		Files:  []*ast.File{f},
	}
}

// TestDirectiveStrictness pins the //go:-style parsing rule: the marker
// must immediately follow the comment opener. Prose that mentions the
// syntax (with a space after //) must never parse as a suppression.
func TestDirectiveStrictness(t *testing.T) {
	pkg := parsePkg(t, `package p

//lint:ignore wallclock benchmark timing is the measurement itself
var a int

// lint:ignore wallclock this is prose discussing the directive syntax
var b int

/*lint:ignore nilrecv block comments are directives too*/
var c int
`)
	ignores, malformed := collectIgnores(pkg, []string{"wallclock", "nilrecv"})
	if len(malformed) != 0 {
		t.Fatalf("malformed = %v, want none", malformed)
	}
	if len(ignores) != 2 {
		t.Fatalf("ignores = %d, want 2 (prose must not parse)", len(ignores))
	}
	if ignores[0].Rule != "wallclock" || ignores[1].Rule != "nilrecv" {
		t.Errorf("parsed rules = %s, %s", ignores[0].Rule, ignores[1].Rule)
	}
	if !strings.Contains(ignores[0].Reason, "measurement") {
		t.Errorf("reason not captured: %q", ignores[0].Reason)
	}
}

// TestMalformedDirectives: unknown rule, missing reason, and missing
// rule each become a lintdirective diagnostic instead of an ignore.
func TestMalformedDirectives(t *testing.T) {
	pkg := parsePkg(t, `package p

//lint:ignore nosuchrule because reasons
var a int

//lint:ignore wallclock
var b int

//lint:ignore
var c int
`)
	ignores, malformed := collectIgnores(pkg, []string{"wallclock"})
	if len(ignores) != 0 {
		t.Fatalf("ignores = %v, want none", ignores)
	}
	if len(malformed) != 3 {
		t.Fatalf("malformed = %d diagnostics, want 3: %v", len(malformed), malformed)
	}
	for _, d := range malformed {
		if d.Rule != RuleLintDirective {
			t.Errorf("malformed directive reported under rule %q", d.Rule)
		}
	}
	wantSubstrs := []string{"unknown rule", "no reason", "needs a rule name"}
	for i, sub := range wantSubstrs {
		if !strings.Contains(malformed[i].Message, sub) {
			t.Errorf("malformed[%d] = %q, want substring %q", i, malformed[i].Message, sub)
		}
	}
}

// TestApplyIgnores pins the matching window: same line or the line
// directly above, same rule, same file.
func TestApplyIgnores(t *testing.T) {
	diags := []Diagnostic{
		{Rule: "wallclock", File: "p/p.go", Line: 5, Col: 2, Message: "x"},
		{Rule: "wallclock", File: "p/p.go", Line: 9, Col: 2, Message: "y"},
		{Rule: "nilrecv", File: "p/p.go", Line: 5, Col: 2, Message: "z"},
	}
	ignores := []*ignoreDirective{
		{Rule: "wallclock", File: "p/p.go", Line: 4}, // line above diag 0
		{Rule: "wallclock", File: "p/q.go", Line: 9}, // wrong file
	}
	kept, suppressed := applyIgnores(diags, ignores)
	if suppressed != 1 || len(kept) != 2 {
		t.Fatalf("suppressed = %d, kept = %d, want 1 and 2", suppressed, len(kept))
	}
	if !ignores[0].used || ignores[1].used {
		t.Errorf("used flags = %v, %v, want true, false", ignores[0].used, ignores[1].used)
	}
	stale := staleIgnores(&Package{Path: "m/p"}, ignores)
	if len(stale) != 1 || !strings.Contains(stale[0].Message, "suppresses nothing") {
		t.Errorf("stale = %v, want one suppresses-nothing diagnostic", stale)
	}
}

// TestRunUnknownRule: the driver's -rule flag surfaces a load-time
// error, not an empty report.
func TestRunUnknownRule(t *testing.T) {
	_, err := Run("testdata/module", fixturePolicy(), RunOptions{Rules: []string{"nosuchrule"}})
	if err == nil || !strings.Contains(err.Error(), "unknown rule") {
		t.Fatalf("err = %v, want unknown rule error", err)
	}
}

func TestSelectPackage(t *testing.T) {
	cases := []struct {
		rel     string
		filters []string
		want    bool
	}{
		{"internal/core", nil, true},
		{"internal/core", []string{"internal/core"}, true},
		{"internal/core/deep", []string{"internal/core"}, true},
		{"internal/corpus", []string{"internal/core"}, false},
		{"", []string{"."}, true},
		{"cmd/lintcheck", []string{"internal"}, false},
		{"internal/core", []string{"internal/core/"}, true},
	}
	for _, c := range cases {
		if got := selectPackage(c.rel, c.filters); got != c.want {
			t.Errorf("selectPackage(%q, %v) = %v, want %v", c.rel, c.filters, got, c.want)
		}
	}
}

// TestValidateReport round-trips a real engine run through the JSON
// schema validator, then checks each structural invariant rejects.
func TestValidateReport(t *testing.T) {
	report, err := Run("testdata/layers", layersPolicy(), RunOptions{Rules: []string{"importlayer"}})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateReport(data); err != nil {
		t.Fatalf("real report rejected: %v", err)
	}

	diag := `{"rule":"importlayer","package":"m","file":"a.go","line":1,"col":1,"message":"x"}`
	cases := []struct {
		name string
		data string
		want string
	}{
		{"unknown field",
			`{"module":"m","rules":["importlayer"],"packages":["m"],"diagnostics":[],"suppressed":0,"extra":1}`,
			"invalid report"},
		{"trailing data",
			`{"module":"m","rules":["importlayer"],"packages":["m"],"diagnostics":[],"suppressed":0} {}`,
			"trailing data"},
		{"no module",
			`{"module":"","rules":["importlayer"],"packages":["m"],"diagnostics":[],"suppressed":0}`,
			"no module"},
		{"no rules",
			`{"module":"m","rules":[],"packages":["m"],"diagnostics":[],"suppressed":0}`,
			"ran no rules"},
		{"unknown rule",
			`{"module":"m","rules":["nosuchrule"],"packages":["m"],"diagnostics":[],"suppressed":0}`,
			"unknown rule"},
		{"unsorted rules",
			`{"module":"m","rules":["wallclock","importlayer"],"packages":["m"],"diagnostics":[],"suppressed":0}`,
			"not sorted"},
		{"unsorted packages",
			`{"module":"m","rules":["importlayer"],"packages":["m/b","m/a"],"diagnostics":[],"suppressed":0}`,
			"not sorted"},
		{"diag for rule that did not run",
			`{"module":"m","rules":["importlayer"],"packages":["m"],"diagnostics":[` +
				`{"rule":"wallclock","package":"m","file":"a.go","line":1,"col":1,"message":"x"}],"suppressed":0}`,
			"did not run"},
		{"zero position",
			`{"module":"m","rules":["importlayer"],"packages":["m"],"diagnostics":[` +
				`{"rule":"importlayer","package":"m","file":"a.go","line":0,"col":1,"message":"x"}],"suppressed":0}`,
			"before line 1"},
		{"empty message",
			`{"module":"m","rules":["importlayer"],"packages":["m"],"diagnostics":[` +
				`{"rule":"importlayer","package":"m","file":"a.go","line":1,"col":1,"message":""}],"suppressed":0}`,
			"empty"},
		{"negative suppressed",
			`{"module":"m","rules":["importlayer"],"packages":["m"],"diagnostics":[],"suppressed":-1}`,
			"negative suppressed"},
		{"out of order diagnostics",
			`{"module":"m","rules":["importlayer"],"packages":["m"],"diagnostics":[` +
				`{"rule":"importlayer","package":"m","file":"b.go","line":1,"col":1,"message":"x"},` + diag +
				`],"suppressed":0}`,
			"not in position order"},
	}
	for _, c := range cases {
		err := ValidateReport([]byte(c.data))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
	if err := ValidateReport([]byte(`{"module":"m","rules":["importlayer"],"packages":["m"],"diagnostics":[` + diag + `],"suppressed":0}`)); err != nil {
		t.Errorf("minimal valid report rejected: %v", err)
	}
}
