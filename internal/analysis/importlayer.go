package analysis

import (
	"strconv"
	"strings"
)

// importLayer enforces the package DAG of Policy.ImportLayer — the
// mechanical form of the DESIGN.md layer diagram. Three global
// invariants apply on top of the per-package allow lists:
//
//   - no package imports a cmd/* binary;
//   - no internal package imports the facade (module root) package;
//   - no package imports anything outside the module and the standard
//     library — the repo is dependency-free by design.
//
// The rule is purely syntactic (import declarations), so the arch_test
// smoke and `lintcheck -rule importlayer` run without type checking.
type importLayer struct{ pol *Policy }

func (a *importLayer) Name() string { return "importlayer" }
func (a *importLayer) Doc() string {
	return "enforce the DESIGN.md package DAG from the checked-in policy table (stdlib-only leaves, zero-dep telemetry, no internal→cmd or internal→facade edges, no external dependencies)"
}
func (a *importLayer) NeedsTypes() bool { return false }

func (a *importLayer) Check(p *Package) []Diagnostic {
	var diags []Diagnostic
	internal := strings.HasPrefix(p.Rel, "internal/")
	allowed, listed := a.pol.ImportLayer[p.Rel]
	if internal && !listed {
		diags = append(diags, p.diag(a.Name(), p.Files[0].Name.Pos(),
			"internal package %s is not in the import-layer policy table; add it (and its layer) to analysis.DefaultPolicy", p.Rel))
	}
	allowSet := make(map[string]bool, len(allowed))
	for _, rel := range allowed {
		allowSet[rel] = true
	}

	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			switch kind, rel := a.classify(p.Module, path); kind {
			case importExternal:
				diags = append(diags, p.diag(a.Name(), imp.Pos(),
					"import of %s: the module is dependency-free; only stdlib and module packages are allowed", path))
			case importModule:
				switch {
				case rel == "cmd" || strings.HasPrefix(rel, "cmd/"):
					diags = append(diags, p.diag(a.Name(), imp.Pos(),
						"import of %s: cmd binaries are never importable", path))
				case !internal:
					// The facade, cmd/* and examples/* may import any
					// module package (cmd/* was excluded above).
				case rel == "":
					diags = append(diags, p.diag(a.Name(), imp.Pos(),
						"import of %s: internal packages must not import the facade package", path))
				case listed && !allowSet[rel]:
					diags = append(diags, p.diag(a.Name(), imp.Pos(),
						"import of %s: not an allowed dependency of %s (policy allows only: %s)",
						path, p.Rel, allowListString(allowed)))
				}
			}
		}
	}
	return diags
}

type importKind int

const (
	importStd importKind = iota
	importModule
	importExternal
)

// classify buckets an import path: module-internal (returning the
// module-relative path), standard library, or external. The stdlib
// test is the go tool's own heuristic — a dot in the first path
// element means a hosted module.
func (a *importLayer) classify(module, path string) (importKind, string) {
	if path == module {
		return importModule, ""
	}
	if rest, ok := strings.CutPrefix(path, module+"/"); ok {
		return importModule, rest
	}
	first := path
	if i := strings.Index(path, "/"); i >= 0 {
		first = path[:i]
	}
	if strings.Contains(first, ".") {
		return importExternal, ""
	}
	return importStd, ""
}

func allowListString(allowed []string) string {
	if len(allowed) == 0 {
		return "the standard library"
	}
	return "stdlib + " + strings.Join(allowed, ", ")
}
