package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

// repoRoot walks up from the working directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}

// TestArchitecture runs the import-layer analyzer against the live
// repo, so `go test ./...` alone — without the Makefile — fails on a
// package DAG violation. importlayer is syntactic, so this stays a
// parse-only smoke (no type checking).
func TestArchitecture(t *testing.T) {
	report, err := Run(repoRoot(t), DefaultPolicy(), RunOptions{Rules: []string{"importlayer"}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range report.Diagnostics {
		t.Errorf("%s", d)
	}
	if len(report.Packages) < 20 {
		t.Errorf("only %d packages analyzed; the walker lost most of the module", len(report.Packages))
	}
}

// TestRepoLintClean runs the full suite — all nine analyzers plus
// directive hygiene — over the live repo and requires zero diagnostics.
// This is the checked-in-tree acceptance bar: every suppression in the
// tree must be explained and load-bearing, every finding fixed.
func TestRepoLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full typed lint run in -short mode")
	}
	report, err := Run(repoRoot(t), DefaultPolicy(), RunOptions{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range report.Diagnostics {
		t.Errorf("%s", d)
	}
}

// TestPathSensitiveRulesClean is the dedicated gate for the CFG-based
// analyzers: resourceleak, errdrop and lockorder must report nothing
// against the live repo. It runs the three rules in isolation so a
// regression in the dataflow engine is named by this test even when
// the full-suite run fails for an unrelated reason.
func TestPathSensitiveRulesClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typed lint run in -short mode")
	}
	report, err := Run(repoRoot(t), DefaultPolicy(), RunOptions{
		Rules: []string{"resourceleak", "errdrop", "lockorder"},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range report.Diagnostics {
		t.Errorf("%s", d)
	}
	if len(report.Packages) < 20 {
		t.Errorf("only %d packages analyzed; the walker lost most of the module", len(report.Packages))
	}
}
