package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// lockOrder builds a lock-acquisition order graph from the CFG's
// held-lock sets and reports cycles — the static shadow of a deadlock.
// The serving layer is the motivating customer: textjoind holds the
// admission semaphore's mutex, the flight recorder's mutex and the SLO
// engine's mutex in nested critical sections, and two call paths that
// nest the same pair in opposite orders can deadlock under exactly the
// concurrent load the loadgen harness generates.
//
// Per function the analyzer runs a must-analysis over the CFG: a lock
// key is in the held set only when it is held on EVERY path reaching a
// node (join = intersection), so a conditional acquire never poisons
// order edges downstream of the merge. Deferred unlocks keep the lock
// held to scope exit, matching their runtime meaning. Lock keys name
// the lock's declaration site, not its dynamic identity:
// "pkg.Type.field" for a mutex field reached through any receiver,
// "pkg.var" for a package-level mutex, "pkg.func.name" for a local.
//
// Acquiring key B while holding key A adds edge A→B with the acquire
// site as witness. A call to a same-package function g while holding A
// adds A→k for every lock k that g transitively acquires (summaries
// computed to a fixpoint over the package's call graph — the import DAG
// is acyclic, checked by importlayer, so a cross-package cycle cannot
// close without a callback and per-package analysis is sound for this
// module). A cycle in the resulting graph is reported once, with every
// edge's witness path printed; acquiring a key already in the held set
// (directly or through a call chain) is reported as a recursive
// acquisition — sync.Mutex self-deadlock.
type lockOrder struct{ pol *Policy }

func (a *lockOrder) Name() string { return "lockorder" }
func (a *lockOrder) Doc() string {
	return "the module-wide lock-acquisition graph is acyclic: no two paths nest the same mutexes in opposite orders, no path re-acquires a held mutex"
}
func (a *lockOrder) NeedsTypes() bool { return true }

const loHeld fact = 1

// loEvent is one lock acquisition observed with its pre-acquire held
// set.
type loEvent struct {
	held []string
	key  string
	pos  token.Pos
	fn   string
}

// loCall is one same-package call site observed with its held set.
type loCall struct {
	held   []string
	callee *types.Func
	pos    token.Pos
	fn     string
}

// loEdge is one order-graph edge with its first witness.
type loEdge struct {
	from, to string
	pos      token.Pos
	witness  string
}

func (a *lockOrder) Check(p *Package) []Diagnostic {
	if p.Info == nil || !matchScope(a.pol.LockOrder, p.Rel) {
		return nil
	}
	var (
		events []loEvent
		calls  []loCall
		diags  []Diagnostic
	)
	// direct maps each function to the lock keys it acquires directly,
	// for the transitive-acquire summaries.
	direct := make(map[*types.Func]map[string]loEvent)
	callees := make(map[*types.Func][]loCall)

	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fnObj, _ := p.Info.Defs[fd.Name].(*types.Func)
			for si, scope := range functionScopes(fd.Body) {
				name := fd.Name.Name
				if si > 0 {
					name = fd.Name.Name + " literal"
				}
				ev, cs := a.scanScope(p, name, scope)
				events = append(events, ev...)
				calls = append(calls, cs...)
				// Only the named function's own body feeds call-graph
				// summaries; literals run on their own goroutine/schedule.
				if si == 0 && fnObj != nil {
					m := direct[fnObj]
					if m == nil {
						m = make(map[string]loEvent)
						direct[fnObj] = m
					}
					for _, e := range ev {
						if _, ok := m[e.key]; !ok {
							m[e.key] = e
						}
					}
					callees[fnObj] = append(callees[fnObj], cs...)
				}
			}
		}
	}
	if len(events) == 0 {
		return nil
	}

	// Transitive acquire summaries to a fixpoint.
	trans := make(map[*types.Func]map[string]loEvent)
	for fn, m := range direct {
		cp := make(map[string]loEvent, len(m))
		for k, v := range m {
			cp[k] = v
		}
		trans[fn] = cp
	}
	for changed := true; changed; {
		changed = false
		for fn, cs := range callees {
			for _, c := range cs {
				for k, via := range trans[c.callee] {
					if _, ok := trans[fn][k]; !ok {
						if trans[fn] == nil {
							trans[fn] = make(map[string]loEvent)
						}
						trans[fn][k] = via
						changed = true
					}
				}
			}
		}
	}

	// Build order edges; first witness wins (scan order is file order,
	// so it is deterministic).
	edges := make(map[[2]string]*loEdge)
	addEdge := func(from, to string, pos token.Pos, witness string) {
		if _, ok := edges[[2]string{from, to}]; !ok {
			edges[[2]string{from, to}] = &loEdge{from: from, to: to, pos: pos, witness: witness}
		}
	}
	for _, e := range events {
		for _, h := range e.held {
			if h == e.key {
				diags = append(diags, p.diag(a.Name(), e.pos,
					"%s acquires %s while already holding it; a second Lock on a held sync mutex deadlocks", e.fn, e.key))
				continue
			}
			addEdge(h, e.key, e.pos, fmt.Sprintf("%s acquires %s while holding %s (%s)",
				e.fn, e.key, h, posString(p, e.pos)))
		}
	}
	for _, c := range calls {
		if len(c.held) == 0 {
			continue
		}
		for k, via := range trans[c.callee] {
			for _, h := range c.held {
				if h == k {
					diags = append(diags, p.diag(a.Name(), c.pos,
						"%s calls %s while holding %s, and %s acquires %s again (%s); recursive acquisition deadlocks",
						c.fn, c.callee.Name(), h, c.callee.Name(), k, posString(p, via.pos)))
					continue
				}
				addEdge(h, k, c.pos, fmt.Sprintf("%s calls %s while holding %s, and %s acquires %s (%s)",
					c.fn, c.callee.Name(), h, c.callee.Name(), k, posString(p, via.pos)))
			}
		}
	}

	diags = append(diags, a.reportCycles(p, edges)...)
	return diags
}

// scanScope runs the held-set dataflow over one scope and returns the
// lock events and same-package call sites it observes.
func (a *lockOrder) scanScope(p *Package, fname string, body *ast.BlockStmt) ([]loEvent, []loCall) {
	// Quick reject: scopes without any mutex method call need no CFG.
	found := false
	inspectScope(body, func(n ast.Node) {
		if call, ok := n.(*ast.CallExpr); ok {
			if _, kind := mutexCallKey(p, fname, call); kind != loNone {
				found = true
			}
		}
	})
	if !found {
		return nil, nil
	}

	transfer := func(st flowState, n ast.Node) {
		if _, ok := n.(*ast.DeferStmt); ok {
			return // deferred unlocks release at exit; held set unchanged
		}
		walkFlowNode(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			key, kind := mutexCallKey(p, fname, call)
			switch kind {
			case loAcquire:
				st[key] = loHeld
			case loRelease:
				delete(st, key)
			}
			return true
		})
	}
	fl := &flow{
		// Must-analysis: held only if held on every path.
		join: func(x, y fact) fact {
			if x == y {
				return x
			}
			return 0
		},
		transfer: transfer,
	}
	g := buildCFG(body)
	in := fl.forward(g)

	var events []loEvent
	var calls []loCall
	fl.scanBlocks(g, in, func(st flowState, n ast.Node, _ *cfgBlock) {
		if _, ok := n.(*ast.DeferStmt); ok {
			return
		}
		// Replay node-internal ordering: a node can both acquire and
		// call, so track the evolving held set while walking.
		local := st.clone()
		walkFlowNode(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			key, kind := mutexCallKey(p, fname, call)
			switch kind {
			case loAcquire:
				events = append(events, loEvent{held: heldKeys(local), key: key, pos: call.Pos(), fn: fname})
				local[key] = loHeld
			case loRelease:
				delete(local, key)
			case loNone:
				if fn := samePackageCallee(p, call); fn != nil {
					calls = append(calls, loCall{held: heldKeys(local), callee: fn, pos: call.Pos(), fn: fname})
				}
			}
			return true
		})
	})
	return events, calls
}

type loKind int

const (
	loNone loKind = iota
	loAcquire
	loRelease
)

// mutexCallKey classifies a call as a mutex acquire/release and
// computes the lock's declaration-site key.
func mutexCallKey(p *Package, fname string, call *ast.CallExpr) (string, loKind) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", loNone
	}
	var kind loKind
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock":
		kind = loAcquire
	case "Unlock", "RUnlock":
		kind = loRelease
	default:
		return "", loNone
	}
	if !isMutexExpr(p, sel.X) {
		return "", loNone
	}
	key := lockKey(p, fname, sel.X)
	if key == "" {
		return "", loNone
	}
	return key, kind
}

// lockKey names a mutex by its declaration site. RWMutex read and
// write locks share a key: a read lock inside a cycle still deadlocks
// once a writer queues up.
func lockKey(p *Package, fname string, e ast.Expr) string {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		// receiver.field (possibly nested): key on the owning type.
		t := p.Info.TypeOf(e.X)
		if t == nil {
			return ""
		}
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			pkg := ""
			if obj.Pkg() != nil {
				pkg = shortPkg(p, obj.Pkg().Path())
			}
			return pkg + "." + obj.Name() + "." + e.Sel.Name
		}
		// pkgname.mu: package-level mutex through a selector.
		if id, ok := e.X.(*ast.Ident); ok {
			if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
				return shortPkg(p, pn.Imported().Path()) + "." + e.Sel.Name
			}
		}
		return ""
	case *ast.Ident:
		obj := p.Info.Uses[e]
		if obj == nil {
			obj = p.Info.Defs[e]
		}
		if obj == nil || obj.Pkg() == nil {
			return ""
		}
		pkg := shortPkg(p, obj.Pkg().Path())
		if obj.Parent() == obj.Pkg().Scope() {
			return pkg + "." + obj.Name()
		}
		return pkg + "." + fname + "." + obj.Name()
	}
	return ""
}

// shortPkg trims the module prefix so keys and messages read as
// "internal/slo.Engine.mu" rather than a full import path.
func shortPkg(p *Package, path string) string {
	if path == p.Module {
		return "."
	}
	prefix := p.Module + "/"
	if len(path) > len(prefix) && path[:len(prefix)] == prefix {
		return path[len(prefix):]
	}
	return path
}

// samePackageCallee resolves a call to a function or method declared in
// the package under analysis.
func samePackageCallee(p *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := p.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != p.Path {
		return nil
	}
	return fn
}

func heldKeys(st flowState) []string {
	var out []string
	for k, v := range st {
		if v != loHeld {
			continue
		}
		if s, ok := k.(string); ok {
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

func posString(p *Package, pos token.Pos) string {
	pp := p.Position(pos)
	return fmt.Sprintf("%s:%d", pp.Filename, pp.Line)
}

// reportCycles finds cycles in the order graph and reports each once,
// anchored at the lexicographically-first edge's witness, with every
// witness in the cycle printed.
func (a *lockOrder) reportCycles(p *Package, edges map[[2]string]*loEdge) []Diagnostic {
	adj := make(map[string][]string)
	for k := range edges {
		adj[k[0]] = append(adj[k[0]], k[1])
	}
	for k := range adj {
		sort.Strings(adj[k])
	}
	var keys [][2]string
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})

	reported := make(map[string]bool)
	var diags []Diagnostic
	for _, k := range keys {
		from, to := k[0], k[1]
		path := findPath(adj, to, from)
		if path == nil {
			continue
		}
		// path is [to, ..., from]; dropping its closing node leaves the
		// cycle's node sequence from → to → ... (implicitly back to from).
		cycle := append([]string{from}, path[:len(path)-1]...)
		sig := cycleSignature(cycle)
		if reported[sig] {
			continue
		}
		reported[sig] = true

		var names string
		for _, n := range cycle {
			names += n + " → "
		}
		names += cycle[0]
		var witnesses string
		anchor := edges[k]
		for i := 0; i < len(cycle); i++ {
			u, v := cycle[i], cycle[(i+1)%len(cycle)]
			if e := edges[[2]string{u, v}]; e != nil {
				witnesses += "; " + e.witness
			}
		}
		diags = append(diags, p.diag(a.Name(), anchor.pos,
			"lock order cycle %s is a potential deadlock%s", names, witnesses))
	}
	return diags
}

// findPath returns the node sequence from `from`'s successors to `to`
// inclusive (BFS, deterministic order), or nil.
func findPath(adj map[string][]string, from, to string) []string {
	type qn struct {
		node string
		path []string
	}
	seen := map[string]bool{from: true}
	work := []qn{{node: from, path: []string{from}}}
	for len(work) > 0 {
		cur := work[0]
		work = work[1:]
		if cur.node == to {
			return cur.path
		}
		for _, next := range adj[cur.node] {
			if seen[next] {
				continue
			}
			seen[next] = true
			np := append(append([]string{}, cur.path...), next)
			work = append(work, qn{node: next, path: np})
		}
	}
	return nil
}

// cycleSignature canonicalizes a cycle's node set for deduplication.
func cycleSignature(cycle []string) string {
	s := append([]string{}, cycle...)
	sort.Strings(s)
	out := ""
	for _, n := range s {
		out += n + "|"
	}
	return out
}
