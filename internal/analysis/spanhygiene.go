package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// spanHygiene enforces the request-tracing contract on the serving
// path: a span that is started must be ended. A request trace with
// dangling spans silently loses the phases the operator is trying to
// see — the span simply never appears in the recorded tree — so the
// leak is invisible exactly when the trace is needed.
//
// Within a Policy.SpanScope package, a "span start" is a call whose
// callee name begins with Start (or start) and whose result is a span
// type: a named type carrying an End method that either lives in a
// Policy.SpanPackages package or embeds such a type in a struct field
// (which is how per-package wrappers like a dual telemetry+reqtrace
// phase span are caught). The rules, per function scope:
//
//   - a start whose result is discarded (expression statement or
//     assignment to _) is flagged outright, unless End is chained onto
//     it in the same expression;
//   - a span variable with `defer x.End()` is always fine — the
//     deferred End runs on every return path, panics included;
//   - a span variable never ended at all is flagged at the start;
//   - with only explicit Ends, every return after the start must have
//     an End before it in source order — the early-error-return that
//     forgets to close the phase span is the bug this catches.
//
// The analysis is straight-line per scope, like mutexhygiene: function
// literals are separate scopes, and a span that escapes the scope
// (passed to a call, returned, stored in a composite literal or another
// variable) transfers the End responsibility and is not tracked
// further. False negatives are accepted; a finding is always a span
// that some path genuinely abandons or an escape the analyzer cannot
// see through — the latter is what //lint:ignore with a reason is for.
type spanHygiene struct{ pol *Policy }

func (a *spanHygiene) Name() string { return "spanhygiene" }
func (a *spanHygiene) Doc() string {
	return "every request-trace span started on a serving-path package is ended on all return paths (or deferred, or handed off)"
}
func (a *spanHygiene) NeedsTypes() bool { return true }

func (a *spanHygiene) Check(p *Package) []Diagnostic {
	if p.Info == nil || !containsString(a.pol.SpanScope, p.Rel) {
		return nil
	}
	spanPkgs := make(map[string]bool, len(a.pol.SpanPackages))
	for _, rel := range a.pol.SpanPackages {
		spanPkgs[p.Module+"/"+rel] = true
	}

	var diags []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			for _, scope := range functionScopes(fd.Body) {
				diags = append(diags, a.checkScope(p, fd, scope, spanPkgs)...)
			}
		}
	}
	return diags
}

// spanVar tracks one span-holding variable within a scope.
type spanVar struct {
	name     string
	start    token.Pos
	deferEnd bool
	escaped  bool
	ends     []token.Pos
}

// checkScope runs the per-scope analysis: collect span starts, then
// classify every other touch of each span variable, then judge the
// return paths.
func (a *spanHygiene) checkScope(p *Package, fd *ast.FuncDecl, scope *ast.BlockStmt, spanPkgs map[string]bool) []Diagnostic {
	var diags []Diagnostic

	// Pass 1: span starts. Assignments bind a variable; a start used as
	// a bare statement or assigned to _ drops the span on the floor.
	spans := make(map[types.Object]*spanVar)
	var order []types.Object
	inspectScope(scope, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return
			}
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !a.isSpanStart(p, call, spanPkgs) {
					continue
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				if id.Name == "_" {
					diags = append(diags, p.diag(a.Name(), call.Pos(),
						"%s starts a span and discards it; a dropped span never appears in the trace", fd.Name.Name))
					continue
				}
				obj := p.Info.Defs[id]
				if obj == nil {
					obj = p.Info.Uses[id]
				}
				if obj == nil {
					continue
				}
				if _, seen := spans[obj]; !seen {
					spans[obj] = &spanVar{name: id.Name, start: call.Pos()}
					order = append(order, obj)
				}
			}
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && a.isSpanStart(p, call, spanPkgs) {
				diags = append(diags, p.diag(a.Name(), call.Pos(),
					"%s starts a span and discards it; a dropped span never appears in the trace", fd.Name.Name))
			}
		}
	})
	if len(spans) == 0 {
		return diags
	}

	// Pass 2: every other touch of a tracked variable. A method call on
	// the span (End, SetAttr, StartChild, ...) is fine; any use outside
	// a receiver position hands the span off and ends tracking.
	deferred := make(map[*ast.CallExpr]bool)
	recv := make(map[*ast.Ident]bool)
	var returns []token.Pos
	inspectScope(scope, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.DeferStmt:
			deferred[n.Call] = true
		case *ast.ReturnStmt:
			returns = append(returns, n.Pos())
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return
			}
			sv := spans[p.Info.Uses[id]]
			if sv == nil {
				return
			}
			recv[id] = true
			if sel.Sel.Name != "End" {
				return
			}
			if deferred[n] {
				sv.deferEnd = true
			} else {
				sv.ends = append(sv.ends, n.Pos())
			}
		}
	})
	// Defer statements are visited after the call in some orders; walk
	// again for receivers of deferred Ends missed above.
	inspectScope(scope, func(n ast.Node) {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return
		}
		sel, ok := d.Call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "End" {
			return
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			if sv := spans[p.Info.Uses[id]]; sv != nil {
				sv.deferEnd = true
				recv[id] = true
			}
		}
	})
	inspectScope(scope, func(n ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok || recv[id] {
			return
		}
		obj := p.Info.Uses[id]
		if obj == nil {
			return
		}
		if sv := spans[obj]; sv != nil && id.Pos() != sv.start {
			// Receiver positions were marked above; anything else is a
			// hand-off (call argument, return value, composite literal,
			// reassignment) — but a selector receiver outside a call
			// (method value) also lands here and counts as an escape.
			if !isReceiverIdent(scope, id) {
				sv.escaped = true
			}
		}
	})
	sort.Slice(returns, func(i, j int) bool { return returns[i] < returns[j] })

	for _, obj := range order {
		sv := spans[obj]
		if sv.escaped || sv.deferEnd {
			continue
		}
		if len(sv.ends) == 0 {
			diags = append(diags, p.diag(a.Name(), sv.start,
				"%s starts span %s but never ends it; call %s.End() on every return path or defer it",
				fd.Name.Name, sv.name, sv.name))
			continue
		}
		sort.Slice(sv.ends, func(i, j int) bool { return sv.ends[i] < sv.ends[j] })
		for _, ret := range returns {
			if ret < sv.start {
				continue
			}
			if sv.ends[0] > ret {
				diags = append(diags, p.diag(a.Name(), ret,
					"%s returns without ending span %s; this path leaves the span open and drops it from the trace",
					fd.Name.Name, sv.name))
			}
		}
	}
	return diags
}

// isReceiverIdent reports whether id appears as the X of a selector
// expression that is called — i.e. a method call receiver.
func isReceiverIdent(scope *ast.BlockStmt, id *ast.Ident) bool {
	found := false
	inspectScope(scope, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.X == id {
			found = true
		}
	})
	return found
}

// isSpanStart reports whether call is a span-producing start call: the
// callee name begins with Start/start and the result is a span type.
func (a *spanHygiene) isSpanStart(p *Package, call *ast.CallExpr, spanPkgs map[string]bool) bool {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return false
	}
	if !strings.HasPrefix(id.Name, "Start") && !strings.HasPrefix(id.Name, "start") {
		return false
	}
	tv, ok := p.Info.Types[call]
	if !ok {
		return false
	}
	return isSpanType(tv.Type, spanPkgs, make(map[types.Type]bool))
}

// isSpanType reports whether t is a span: a named type with an End
// method that is either defined in a span package or wraps such a type
// in a struct field.
func isSpanType(t types.Type, spanPkgs map[string]bool, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if ptr, ok := t.(*types.Pointer); ok {
		return isSpanType(ptr.Elem(), spanPkgs, seen)
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	hasEnd := false
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == "End" {
			hasEnd = true
			break
		}
	}
	if !hasEnd {
		return false
	}
	if obj := named.Obj(); obj.Pkg() != nil && spanPkgs[obj.Pkg().Path()] {
		return true
	}
	if st, ok := named.Underlying().(*types.Struct); ok {
		for i := 0; i < st.NumFields(); i++ {
			if isSpanType(st.Field(i).Type(), spanPkgs, seen) {
				return true
			}
		}
	}
	return false
}
