package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// errDrop flags dropped errors on policy-listed persistence, write and
// Close paths. A dropped error in this codebase is usually a corrupted
// measurement: an unchecked page-write error means the btree or the
// inverted file silently diverges from the cost the ledger charged for
// it, and an unchecked Close in a cmd/ tool means a truncated report
// file exits 0.
//
// Three syntactic forms are flagged directly:
//   - a call used as a bare expression statement whose result (or any
//     tuple component) is an error — unless the callee's package is on
//     the ErrDropExempt list (fmt printers, bytes.Buffer writes and
//     friends whose errors are vacuous by contract);
//   - an error-typed result assigned to the blank identifier, in
//     single-value or tuple position;
//
// and one path-sensitive form rides the CFG dataflow: an error value
// that is assigned and then, on some path, overwritten or abandoned at
// a return without ever being consulted. Facts are bottom < fresh <
// consulted with join = max, so a merge where either branch consulted
// the error is clean, while a return reached before any consultation is
// judged on its own path's pre-state. Error variables that escape the
// scope — address taken or captured by a function literal — are exempt:
// the analyzer cannot see their consumers.
//
// go and defer statements are never flagged here (a deferred Close's
// error is a separate idiom, policed by resourceleak's pairing instead).
type errDrop struct{ pol *Policy }

func (a *errDrop) Name() string { return "errdrop" }
func (a *errDrop) Doc() string {
	return "error results on persistence/write/Close paths are consulted: no _ assignments, no bare-statement discards, no overwrite or return before use"
}
func (a *errDrop) NeedsTypes() bool { return true }

func (a *errDrop) Check(p *Package) []Diagnostic {
	if p.Info == nil || !matchScope(a.pol.ErrDrop, p.Rel) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			for _, scope := range functionScopes(fd.Body) {
				diags = append(diags, a.checkScope(p, fd.Name.Name, scope)...)
			}
		}
	}
	return diags
}

const (
	edFresh fact = iota + 1 // assigned, not yet consulted
	edConsulted
)

type edScope struct {
	a     *errDrop
	p     *Package
	fname string
	// candidates are the local error-typed variables the flow tracks.
	candidates map[types.Object]bool
	lastAssign map[types.Object]token.Pos
}

func (a *errDrop) checkScope(p *Package, fname string, body *ast.BlockStmt) []Diagnostic {
	sc := &edScope{a: a, p: p, fname: fname,
		candidates: make(map[types.Object]bool),
		lastAssign: make(map[types.Object]token.Pos)}
	var diags []Diagnostic

	// Syntactic pass: bare-statement and blank-identifier discards, plus
	// candidate discovery for the flow pass.
	inspectScope(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if pos, callee := sc.discardedError(call); pos.IsValid() {
					diags = append(diags, p.diag(a.Name(), pos,
						"%s discards the error returned by %s; handle it or suppress with a reason", fname, callee))
				}
			}
		case *ast.AssignStmt:
			diags = append(diags, sc.blankErrors(n)...)
			sc.collectCandidates(n)
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						sc.collectSpecCandidates(vs)
					}
				}
			}
		}
	})

	// Escape pass: error variables that are address-taken anywhere or
	// mentioned inside a nested function literal have consumers the
	// intraprocedural flow cannot see — drop them from tracking.
	if len(sc.candidates) > 0 {
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					if id, ok := n.X.(*ast.Ident); ok {
						delete(sc.candidates, objOf(p, id))
					}
				}
			case *ast.FuncLit:
				if n.Body != body {
					ast.Inspect(n.Body, func(m ast.Node) bool {
						if id, ok := m.(*ast.Ident); ok {
							delete(sc.candidates, objOf(p, id))
						}
						return true
					})
					return false
				}
			}
			return true
		})
	}
	if len(sc.candidates) == 0 {
		return diags
	}

	g := buildCFG(body)
	fl := &flow{
		join:     func(x, y fact) fact { return maxFact(x, y) },
		transfer: sc.transfer,
	}
	in := fl.forward(g)

	seen := make(map[token.Pos]bool)
	fl.scanBlocks(g, in, func(st flowState, n ast.Node, _ *cfgBlock) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// Overwriting a still-fresh error is a drop at the overwrite.
			for _, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := objOf(p, id)
				if sc.candidates[obj] && st[obj] == edFresh && !seen[id.Pos()] {
					seen[id.Pos()] = true
					diags = append(diags, p.diag(a.Name(), id.Pos(),
						"%s overwrites %s before the previous error (assigned at line %d) was consulted",
						fname, id.Name, p.Position(sc.lastAssign[obj]).Line))
				}
			}
		case *ast.ReturnStmt:
			// A fresh error abandoned at a return that does not carry it.
			returned := make(map[types.Object]bool)
			for _, res := range n.Results {
				markIdentObjs(p, res, returned)
			}
			if len(n.Results) == 0 {
				// A bare return forwards every named result.
				for obj := range sc.candidates {
					if v, ok := obj.(*types.Var); ok && v.IsField() == false && sc.isNamedResult(body, obj) {
						returned[obj] = true
					}
				}
			}
			for obj := range sc.candidates {
				if st[obj] == edFresh && !returned[obj] && !seen[n.Pos()] {
					diags = append(diags, p.diag(a.Name(), n.Pos(),
						"%s returns while the error in %s (assigned at line %d) is still unconsulted on this path",
						fname, obj.Name(), p.Position(sc.lastAssign[obj]).Line))
					seen[n.Pos()] = true
				}
			}
		}
	})
	if exit := fl.exitState(g, in); exit != nil {
		for obj := range sc.candidates {
			if exit[obj] == edFresh {
				diags = append(diags, p.diag(a.Name(), sc.lastAssign[obj],
					"%s assigns an error to %s but never consults it before the function ends", fname, obj.Name()))
			}
		}
	}
	return diags
}

// transfer: assignments refresh or clear tracked errors, every other
// ident use consults them.
func (sc *edScope) transfer(st flowState, n ast.Node) {
	if _, ok := n.(*ast.DeferStmt); ok {
		return
	}
	assignedHere := make(map[*ast.Ident]bool)
	if as, ok := n.(*ast.AssignStmt); ok {
		errorPos := errorPositions(sc.p, as)
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := objOf(sc.p, id)
			if !sc.candidates[obj] {
				continue
			}
			assignedHere[id] = true
			if errorPos[i] {
				st[obj] = edFresh
			} else {
				delete(st, obj)
			}
		}
	}
	if ds, ok := n.(*ast.DeclStmt); ok {
		if gd, ok := ds.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) == 0 {
					continue
				}
				for _, name := range vs.Names {
					if obj := objOf(sc.p, name); sc.candidates[obj] {
						assignedHere[name] = true
						st[obj] = edFresh
					}
				}
			}
		}
	}
	// Any other mention of a candidate on this node consults it: a
	// comparison, a return carrying it, a call argument, a wrap.
	walkFlowNode(n, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok || assignedHere[id] {
			return true
		}
		if obj := objOf(sc.p, id); sc.candidates[obj] {
			st[obj] = edConsulted
		}
		return true
	})
}

// discardedError reports whether call's result is (or contains) an
// error that a bare expression statement throws away, returning the
// diagnostic position and a printable callee name.
func (sc *edScope) discardedError(call *ast.CallExpr) (token.Pos, string) {
	if !resultHasError(sc.p, call) {
		return token.NoPos, ""
	}
	path, display, _ := calleePackage(sc.p, call)
	if path != "" && containsString(sc.a.pol.ErrDropExempt, path) {
		return token.NoPos, ""
	}
	if display == "" {
		display = "the call"
	}
	return call.Pos(), display
}

// blankErrors flags error results assigned to the blank identifier.
// Only call results count: `_ = err` on an existing variable is an
// explicit discard of a value the flow pass already judged at its
// producing call.
func (sc *edScope) blankErrors(as *ast.AssignStmt) []Diagnostic {
	var diags []Diagnostic
	errorPos := errorPositions(sc.p, as)
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" || !errorPos[i] {
			continue
		}
		if !blankFedByCall(as, i) {
			continue
		}
		// The _ = err idiom still hides an error; policy wants a reason.
		if exemptBlankAssign(sc.p, as, i, sc.a.pol.ErrDropExempt) {
			continue
		}
		diags = append(diags, sc.p.diag(sc.a.Name(), id.Pos(),
			"%s assigns an error to _; handle it or suppress with a reason", sc.fname))
	}
	return diags
}

// blankFedByCall reports whether the value feeding LHS slot i comes
// from a call expression.
func blankFedByCall(as *ast.AssignStmt, i int) bool {
	var rhs ast.Expr
	if len(as.Rhs) == 1 {
		rhs = as.Rhs[0]
	} else if i < len(as.Rhs) {
		rhs = as.Rhs[i]
	}
	_, ok := rhs.(*ast.CallExpr)
	return ok
}

// exemptBlankAssign reports whether the value feeding the blank error
// slot comes from an exempt package's call.
func exemptBlankAssign(p *Package, as *ast.AssignStmt, i int, exempt []string) bool {
	var rhs ast.Expr
	if len(as.Rhs) == 1 {
		rhs = as.Rhs[0]
	} else if i < len(as.Rhs) {
		rhs = as.Rhs[i]
	}
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		return false
	}
	path, _, _ := calleePackage(p, call)
	return path != "" && containsString(exempt, path)
}

// errorPositions maps each LHS index of an assignment to whether an
// error value lands there.
func errorPositions(p *Package, as *ast.AssignStmt) map[int]bool {
	out := make(map[int]bool)
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		if tup, ok := p.Info.TypeOf(as.Rhs[0]).(*types.Tuple); ok {
			for i := 0; i < tup.Len() && i < len(as.Lhs); i++ {
				if isErrorType(tup.At(i).Type()) {
					out[i] = true
				}
			}
		}
		// v, ok := m[k] / x, ok := y.(T) never carry errors; TypeOf
		// returns the value type there, which isErrorType rejects above.
		return out
	}
	for i := range as.Lhs {
		if i < len(as.Rhs) && as.Rhs[i] != nil {
			if t := p.Info.TypeOf(as.Rhs[i]); t != nil && isErrorType(t) {
				out[i] = true
			}
		}
	}
	return out
}

// resultHasError reports whether a call's result type is or contains
// the error type.
func resultHasError(p *Package, call *ast.CallExpr) bool {
	t := p.Info.TypeOf(call)
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErrorType(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return types.Identical(t, errorType)
}

// collectCandidates registers local error variables assigned by as.
func (sc *edScope) collectCandidates(as *ast.AssignStmt) {
	errorPos := errorPositions(sc.p, as)
	for i, lhs := range as.Lhs {
		if !errorPos[i] {
			continue
		}
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := objOf(sc.p, id)
		if obj == nil {
			continue
		}
		sc.candidates[obj] = true
		if p := sc.lastAssign[obj]; !p.IsValid() || id.Pos() > p {
			sc.lastAssign[obj] = id.Pos()
		}
	}
}

func (sc *edScope) collectSpecCandidates(vs *ast.ValueSpec) {
	if len(vs.Values) == 0 {
		return
	}
	for i, name := range vs.Names {
		if name.Name == "_" {
			continue
		}
		var t types.Type
		if len(vs.Values) == 1 && len(vs.Names) > 1 {
			if tup, ok := sc.p.Info.TypeOf(vs.Values[0]).(*types.Tuple); ok && i < tup.Len() {
				t = tup.At(i).Type()
			}
		} else if i < len(vs.Values) {
			t = sc.p.Info.TypeOf(vs.Values[i])
		}
		if t == nil || !isErrorType(t) {
			continue
		}
		obj := objOf(sc.p, name)
		if obj == nil {
			continue
		}
		sc.candidates[obj] = true
		sc.lastAssign[obj] = name.Pos()
	}
}

// isNamedResult reports whether obj is one of the enclosing function's
// named results. The receiver scope walk is cheap: named results are
// declared at the body's position in the function type, so the object's
// position precedes the body.
func (sc *edScope) isNamedResult(body *ast.BlockStmt, obj types.Object) bool {
	return obj.Pos() < body.Pos()
}

func objOf(p *Package, id *ast.Ident) types.Object {
	if o := p.Info.Defs[id]; o != nil {
		return o
	}
	return p.Info.Uses[id]
}
