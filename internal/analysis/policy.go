package analysis

// Policy is the checked-in table of repo-specific facts the analyzers
// enforce. DESIGN.md §11 documents it as the source of truth for the
// package DAG: a PR that adds a dependency edge must extend this table,
// which makes layering changes reviewable instead of accidental.
type Policy struct {
	// ImportLayer is the package DAG. Key: module-relative package
	// path. Value: the complete list of module-internal packages it may
	// import (stdlib is always allowed; anything outside the module is
	// never allowed — the repo is dependency-free by design). Every
	// package under internal/ MUST have an entry: an internal package
	// missing from the table is itself a violation, so new packages
	// declare their layer on arrival. Packages outside internal/
	// (the facade, cmd/*, examples/*) may import any module package
	// except that nothing may import cmd/* binaries.
	ImportLayer map[string][]string

	// MapDeterminism lists the result-producing packages in which a
	// `for range` over a map is flagged unless the loop's function
	// later feeds a sort (or the site carries an ignore directive).
	MapDeterminism []string

	// WallClockExempt lists the internal packages allowed to read the
	// wall clock and global rand state. Everything else under
	// internal/ must stay deterministic so benchreport baselines remain
	// byte-stable.
	WallClockExempt []string

	// NilRecv maps a package to the types whose exported
	// pointer-receiver methods must begin with a nil-receiver guard
	// (the telemetry disabled-path contract).
	NilRecv map[string][]string

	// MutexScope lists the packages where holding a mutex across a
	// call into a MutexForbidden package is flagged — the
	// scrape-lock-free promise of the observability layer.
	MutexScope []string

	// MutexForbidden lists the module-relative packages whose
	// functions and methods must not be called under a held lock
	// within MutexScope (direct calls only).
	MutexForbidden []string

	// MutexJoinScope lists the packages (the serving and benchmark
	// front ends under cmd/) in which holding a mutex across a facade
	// Join* call is flagged. A handler that runs a whole join under a
	// lock serializes every concurrent request behind that join's
	// simulated device I/O; the serving path must snapshot a view
	// under a short lock and run the join unlocked.
	MutexJoinScope []string

	// SpanScope lists the request-path packages in which spanhygiene
	// tracks trace spans: every span started there must be ended on
	// all return paths, deferred, or handed off.
	SpanScope []string

	// SpanPackages lists the module-relative packages whose
	// End()-bearing named types count as spans for spanhygiene. A
	// named type outside these packages that wraps one of them in a
	// struct field (a per-package phase-span wrapper) counts too.
	SpanPackages []string

	// Resources is the acquire→release pairing table for the CFG-based
	// resourceleak analyzer: each rule names an acquiring function and
	// the release method its result owes on every path to exit.
	Resources []ResourceRule

	// ErrDrop lists the package scopes (prefix semantics; "." is the
	// module root) in which the errdrop analyzer polices dropped
	// errors: _-assignments, bare-statement discards, and error values
	// overwritten or abandoned before being consulted.
	ErrDrop []string

	// ErrDropExempt lists callee import paths whose returned errors are
	// vacuous by contract (fmt printers, in-memory buffer and hash
	// writes) and may be discarded without a directive.
	ErrDropExempt []string

	// LockOrder lists the package scopes in which lockorder builds the
	// lock-acquisition order graph and reports cycles and recursive
	// acquisitions.
	LockOrder []string
}

// ResourceRule pairs an acquiring call with the release method its
// result must see on every path. Pkg is "." for the module root, a
// module-relative path for internal packages, or a stdlib import path;
// Call is the acquiring function or method name; Release the method
// that frees the result. Scope, when non-empty, restricts enforcement
// to the listed package prefixes.
type ResourceRule struct {
	Pkg     string
	Call    string
	Release string
	Scope   []string
}

// DefaultPolicy returns the live repo's policy. The ImportLayer table
// transcribes the DESIGN.md layer diagram: telemetry is zero-dep,
// accum/codec/costmodel/relation/topk/analysis are stdlib-only,
// document sits one rung above codec, metrics sees only telemetry
// among internal packages, and the join core is the only package that
// may pull the whole storage stack together.
func DefaultPolicy() *Policy {
	return &Policy{
		ImportLayer: map[string][]string{
			"internal/accum":     {},
			"internal/analysis":  {},
			"internal/codec":     {},
			"internal/costmodel": {},
			"internal/relation":  {},
			"internal/reqtrace":  {},
			"internal/telemetry": {},
			"internal/topk":      {},

			"internal/document": {"internal/codec"},
			"internal/iosim":    {"internal/telemetry"},
			"internal/metrics":  {"internal/telemetry"},
			"internal/slo":      {"internal/metrics", "internal/telemetry"},

			"internal/btree":      {"internal/codec", "internal/iosim"},
			"internal/termmap":    {"internal/codec", "internal/document"},
			"internal/tokenize":   {"internal/document", "internal/termmap"},
			"internal/collection": {"internal/codec", "internal/document", "internal/iosim"},
			"internal/stats":      {"internal/collection", "internal/document"},
			"internal/invfile":    {"internal/btree", "internal/codec", "internal/collection", "internal/iosim"},
			"internal/entrycache": {"internal/invfile", "internal/telemetry"},
			"internal/cluster":    {"internal/collection", "internal/document", "internal/iosim"},
			"internal/lsh":        {"internal/collection", "internal/document", "internal/iosim"},
			"internal/signature":  {"internal/collection", "internal/document", "internal/iosim"},
			"internal/corpus":     {"internal/collection", "internal/costmodel", "internal/document", "internal/iosim"},

			"internal/core": {
				"internal/accum", "internal/codec", "internal/collection",
				"internal/costmodel", "internal/document", "internal/entrycache",
				"internal/invfile", "internal/iosim", "internal/lsh",
				"internal/reqtrace", "internal/signature", "internal/stats",
				"internal/telemetry", "internal/topk",
			},
			"internal/query": {
				"internal/collection", "internal/core", "internal/costmodel",
				"internal/document", "internal/invfile", "internal/lsh",
				"internal/relation", "internal/telemetry",
			},
			"internal/simulate": {
				"internal/collection", "internal/core", "internal/corpus",
				"internal/costmodel", "internal/invfile", "internal/iosim",
				"internal/telemetry",
			},
		},
		MapDeterminism: []string{
			"internal/accum", "internal/core", "internal/invfile", "internal/query",
			"internal/lsh", "internal/metrics", "internal/reqtrace", "internal/slo",
		},
		WallClockExempt: []string{"internal/telemetry"},
		NilRecv: map[string][]string{
			"internal/telemetry": {"Collector", "Counter", "Histogram", "Snapshot"},
			"internal/metrics":   {"Exporter"},
			"internal/reqtrace":  {"Tracer", "Span", "Recorder"},
			"internal/slo":       {"Engine"},
		},
		MutexScope:     []string{"internal/metrics", "internal/telemetry", "cmd/textjoind"},
		MutexForbidden: []string{"internal/iosim"},
		MutexJoinScope: []string{"cmd/benchreport", "cmd/textjoin", "cmd/textjoind"},
		SpanScope:      []string{"internal/core", "cmd/textjoind"},
		SpanPackages:   []string{"internal/reqtrace", "internal/telemetry"},
		Resources: []ResourceRule{
			// iosim view sessions: a leaked view never merges its IOStats
			// into the shared ledger, corrupting the Section-5 accounting.
			{Pkg: "internal/iosim", Call: "View", Release: "Close"},
			// The facade's Snapshot is the same session one layer up.
			{Pkg: ".", Call: "Snapshot", Release: "Close"},
			// Network listeners and OS file handles in the front ends.
			{Pkg: "net", Call: "Listen", Release: "Close"},
			{Pkg: "os", Call: "Open", Release: "Close", Scope: []string{"cmd"}},
			{Pkg: "os", Call: "Create", Release: "Close", Scope: []string{"cmd"}},
			{Pkg: "os", Call: "OpenFile", Release: "Close", Scope: []string{"cmd"}},
		},
		ErrDrop: []string{
			"internal/iosim", "internal/btree", "internal/invfile",
			"internal/collection", "internal/signature", "internal/lsh",
			".", "cmd",
		},
		ErrDropExempt: []string{
			"fmt", "strings", "bytes", "hash", "hash/fnv", "hash/maphash",
			"math/rand",
		},
		LockOrder: []string{"internal", "cmd", "."},
	}
}

// matchScope reports whether the module-relative package path rel falls
// under any listed scope. "." matches only the module root; any other
// entry matches itself and everything beneath it.
func matchScope(list []string, rel string) bool {
	for _, s := range list {
		if s == "." {
			if rel == "" {
				return true
			}
			continue
		}
		if rel == s || len(rel) > len(s) && rel[:len(s)] == s && rel[len(s)] == '/' {
			return true
		}
	}
	return false
}

// Analyzers instantiates the full analyzer suite over a policy.
func Analyzers(pol *Policy) []Analyzer {
	return []Analyzer{
		&importLayer{pol: pol},
		&mapDeterminism{pol: pol},
		&wallClock{pol: pol},
		&nilRecv{pol: pol},
		&mutexHygiene{pol: pol},
		&spanHygiene{pol: pol},
		&resourceLeak{pol: pol},
		&errDrop{pol: pol},
		&lockOrder{pol: pol},
	}
}
