package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// mutexHygiene enforces three locking rules.
//
// Copy-by-value (module-wide): no receiver, parameter or result passes
// a sync.Mutex/sync.RWMutex — or a struct containing one — by value. A
// copied mutex guards nothing; go vet's copylocks catches many such
// sites, this rule pins the signature-level cases the repo cares about
// even when vet is not run.
//
// Lock-across-I/O (Policy.MutexScope, i.e. the observability layer):
// within a scope package, no function calls directly into a
// Policy.MutexForbidden package (internal/iosim) while a mutex is
// held. This is the scrape-lock-free promise: /metrics and /traces
// snapshot atomics under short mutexes and must never sit on a lock
// waiting for simulated disk I/O.
//
// Lock-across-join (Policy.MutexJoinScope, i.e. the front ends under
// cmd/): within a scope package, no function calls a facade
// (module-root) function whose name starts with Join while a mutex is
// held. A handler that runs a whole join under a lock serializes every
// concurrent request behind that join's simulated device I/O — the
// serving path snapshots a view under a short lock and joins unlocked
// (DESIGN.md §13).
//
// Both held-lock analyses are per function body, straight-line by
// source position, and intentionally direct-call only. A deferred
// Unlock does not release — the lock is genuinely held for the rest of
// the function, so a forbidden call after `defer mu.Unlock()` is a
// real finding. Function literals are separate scopes (a closure body
// does not run under the lock state of its definition site).
type mutexHygiene struct{ pol *Policy }

func (a *mutexHygiene) Name() string { return "mutexhygiene" }
func (a *mutexHygiene) Doc() string {
	return "no mutex copied by value in signatures; no lock held across a direct call into iosim in the scrape-lock-free packages; no lock held across a facade Join* call in the serving front ends"
}
func (a *mutexHygiene) NeedsTypes() bool { return true }

func (a *mutexHygiene) Check(p *Package) []Diagnostic {
	if p.Info == nil {
		return nil
	}
	var diags []Diagnostic
	forbidden := make(map[string]bool, len(a.pol.MutexForbidden))
	for _, rel := range a.pol.MutexForbidden {
		forbidden[p.Module+"/"+rel] = true
	}
	if !containsString(a.pol.MutexScope, p.Rel) {
		forbidden = nil
	}
	joinScope := containsString(a.pol.MutexJoinScope, p.Rel)

	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			diags = append(diags, a.checkSignature(p, fd)...)
			if (len(forbidden) == 0 && !joinScope) || fd.Body == nil {
				continue
			}
			for _, scope := range functionScopes(fd.Body) {
				diags = append(diags, a.checkLockHeld(p, fd, scope, forbidden, joinScope)...)
			}
		}
	}
	return diags
}

// checkSignature flags by-value mutexes in receiver, params, results.
func (a *mutexHygiene) checkSignature(p *Package, fd *ast.FuncDecl) []Diagnostic {
	var diags []Diagnostic
	var fields []*ast.Field
	if fd.Recv != nil {
		fields = append(fields, fd.Recv.List...)
	}
	if fd.Type.Params != nil {
		fields = append(fields, fd.Type.Params.List...)
	}
	if fd.Type.Results != nil {
		fields = append(fields, fd.Type.Results.List...)
	}
	for _, field := range fields {
		tv, ok := p.Info.Types[field.Type]
		if !ok {
			continue
		}
		if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
			continue
		}
		if containsLockType(tv.Type, make(map[types.Type]bool)) {
			diags = append(diags, p.diag(a.Name(), field.Type.Pos(),
				"%s passes a mutex by value (%s); a copied mutex guards nothing — use a pointer",
				fd.Name.Name, tv.Type.String()))
		}
	}
	return diags
}

// functionScopes returns body plus every function-literal body inside
// it, each to be analyzed as its own straight-line scope.
func functionScopes(body *ast.BlockStmt) []*ast.BlockStmt {
	scopes := []*ast.BlockStmt{body}
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			scopes = append(scopes, fl.Body)
		}
		return true
	})
	return scopes
}

type lockEvent struct {
	pos  token.Pos
	kind int // 0 lock, 1 unlock, 2 forbidden call, 3 facade join call
	name string
}

// checkLockHeld scans one function scope in source order and reports
// forbidden-package calls (and, in the join scope, facade Join* calls)
// made between a Lock and its Unlock.
func (a *mutexHygiene) checkLockHeld(p *Package, fd *ast.FuncDecl, scope *ast.BlockStmt, forbidden map[string]bool, joinScope bool) []Diagnostic {
	deferred := make(map[*ast.CallExpr]bool)
	var events []lockEvent
	inspectScope(scope, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.DeferStmt:
			deferred[n.Call] = true
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if ok {
				switch sel.Sel.Name {
				case "Lock", "RLock":
					if isMutexExpr(p, sel.X) && !deferred[n] {
						events = append(events, lockEvent{n.Pos(), 0, ""})
						return
					}
				case "Unlock", "RUnlock":
					if isMutexExpr(p, sel.X) {
						if !deferred[n] {
							events = append(events, lockEvent{n.Pos(), 1, ""})
						}
						return
					}
				}
			}
			switch path, name, bare := calleePackage(p, n); {
			case forbidden[path]:
				events = append(events, lockEvent{n.Pos(), 2, name})
			case joinScope && path == p.Module && strings.HasPrefix(bare, "Join"):
				events = append(events, lockEvent{n.Pos(), 3, name})
			}
		}
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	var diags []Diagnostic
	held := 0
	for _, e := range events {
		switch e.kind {
		case 0:
			held++
		case 1:
			if held > 0 {
				held--
			}
		case 2:
			if held > 0 {
				diags = append(diags, p.diag(a.Name(), e.pos,
					"%s calls %s while holding a mutex; the scrape-lock-free layer must not block on simulated I/O under a lock",
					fd.Name.Name, e.name))
			}
		case 3:
			if held > 0 {
				diags = append(diags, p.diag(a.Name(), e.pos,
					"%s calls %s while holding a mutex; serve joins from a snapshot view instead of locking across the whole join",
					fd.Name.Name, e.name))
			}
		}
	}
	return diags
}

// inspectScope walks scope without descending into nested function
// literals (each literal is its own scope).
func inspectScope(scope *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(scope, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && fl.Body != scope {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// calleePackage resolves the defining package path, display name and
// bare function name of a call's callee, or "" when unresolvable.
func calleePackage(p *Package, call *ast.CallExpr) (string, string, string) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return "", "", ""
	}
	fn, ok := p.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", "", ""
	}
	return fn.Pkg().Path(), fn.Pkg().Name() + "." + fn.Name(), fn.Name()
}

// isMutexExpr reports whether e's type is (a pointer to) sync.Mutex,
// sync.RWMutex or the sync.Locker interface.
func isMutexExpr(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok {
		return false
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return isSyncLockType(t)
}

// isSyncLockType matches the lockable sync types. The Locker
// interface counts for held-lock tracking but not for the copy check —
// copying an interface value does not copy the mutex behind it.
func isSyncLockType(t types.Type) bool {
	return isNamedSync(t, "Mutex") || isNamedSync(t, "RWMutex") || isNamedSync(t, "Locker")
}

func isNamedSync(t types.Type, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == name
}

// containsLockType reports whether t holds a sync mutex by value,
// walking named types, structs and arrays (seen guards recursion).
func containsLockType(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if isNamedSync(t, "Mutex") || isNamedSync(t, "RWMutex") {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockType(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLockType(u.Elem(), seen)
	}
	return false
}
