package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// resourceLeak is the CFG-based must-release analyzer: a resource
// acquired by a Policy.Resources call must, on every path from the
// acquire to the function's exit, be released (directly or via defer),
// returned, or handed off to another owner. The bug class it exists
// for is the early-error-return that leaks an iosim.Disk.View or
// facade Workspace.Snapshot session: a leaked view never merges its
// per-view IOStats into the shared ledger, silently corrupting the
// paper's Section-5 I/O accounting — invisible to every syntactic
// analyzer because the happy path closes the view correctly.
//
// Per function scope (literals are separate scopes) the analyzer runs
// a forward merge-over-paths dataflow on the scope's CFG with the
// lattice bottom < invalid < released < acquired < escaped and join =
// max, so "leaks on some path" survives a merge with a clean path
// while a possible hand-off gets the benefit of the doubt. The
// edge-transfer makes it path-sensitive: on a branch edge where the
// acquire's paired error is known non-nil, or the resource itself is
// known nil, the resource is invalid and owes no release — the
// `v, err := acquire(); if err != nil { return err }` idiom is clean.
//
// Events, per node:
//   - acquire call bound to a variable: acquired (binding to _ or
//     using the call as a bare statement is flagged outright);
//   - rule's release method called on the variable: released — a
//     DeferStmt release counts on every later path, which also keeps
//     the defer-in-loop idiom clean, and a deferred closure whose body
//     releases counts the same way;
//   - the variable returned, passed to a call, captured by a literal,
//     or stored anywhere: escaped (ownership transferred);
//   - other method calls on the variable and nil-comparisons: neutral.
//
// Judgment: a return reached with the resource still acquired (and not
// escaping through that return) is flagged at the return; a scope
// whose closing brace is reached still acquired is flagged too. A
// resource with no release, defer, or escape anywhere gets a single
// finding at the acquire instead of one per return.
type resourceLeak struct{ pol *Policy }

func (a *resourceLeak) Name() string { return "resourceleak" }
func (a *resourceLeak) Doc() string {
	return "every acquired resource (iosim views, workspace snapshots, listeners, cmd/ file handles) is released, deferred, returned or handed off on every path to exit"
}
func (a *resourceLeak) NeedsTypes() bool { return true }

func (a *resourceLeak) Check(p *Package) []Diagnostic {
	if p.Info == nil {
		return nil
	}
	var rules []*ResourceRule
	for i := range a.pol.Resources {
		r := &a.pol.Resources[i]
		if r.Scope == nil || matchScope(r.Scope, p.Rel) {
			rules = append(rules, r)
		}
	}
	if len(rules) == 0 {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			diags = append(diags, a.checkScope(p, fd.Name.Name, fd.Body, rules)...)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					diags = append(diags, a.checkScope(p, fd.Name.Name+" literal", fl.Body, rules)...)
				}
				return true
			})
		}
	}
	return diags
}

// Resource facts, ordered so join = max favors reporting a possible
// leak (acquired) over a completed release, and a possible hand-off
// (escaped) over a possible leak.
const (
	rlInvalid fact = iota + 1 // acquire failed on this path (err != nil / resource nil)
	rlReleased
	rlAcquired
	rlEscaped
)

// rlTracked is one acquire site bound to a variable.
type rlTracked struct {
	obj     types.Object
	rule    *ResourceRule
	pos     token.Pos
	name    string
	errObj  types.Object // tuple-mate error variable, when the acquire returns (T, error)
	handled bool         // any release/defer/escape event observed anywhere
}

// rlScope carries one scope's analysis state.
type rlScope struct {
	a       *resourceLeak
	p       *Package
	fname   string
	rules   []*ResourceRule
	tracked map[types.Object]*rlTracked
	order   []*rlTracked
}

func (a *resourceLeak) checkScope(p *Package, fname string, body *ast.BlockStmt, rules []*ResourceRule) []Diagnostic {
	sc := &rlScope{a: a, p: p, fname: fname, rules: rules, tracked: make(map[types.Object]*rlTracked)}
	var diags []Diagnostic

	// Pass 1: find acquire sites. Bindings register tracked variables;
	// a discarded acquire is flagged immediately.
	inspectScope(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			sc.registerAssign(n, &diags)
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						sc.registerValueSpec(vs)
					}
				}
			}
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if rule := sc.acquireRule(call); rule != nil {
					diags = append(diags, p.diag(a.Name(), call.Pos(),
						"%s acquires a %s and discards it; the resource can never be released", fname, rule.what()))
				}
			}
		}
	})
	if len(sc.tracked) == 0 {
		return diags
	}

	g := buildCFG(body)
	fl := &flow{
		join:     func(x, y fact) fact { return maxFact(x, y) },
		transfer: sc.transfer,
		edge:     sc.edgeTransfer,
	}
	in := fl.forward(g)

	// Judgment pass: pre-states at each return, then the fall-off exit.
	leaks := make(map[*rlTracked][]token.Pos)
	fl.scanBlocks(g, in, func(st flowState, n ast.Node, _ *cfgBlock) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return
		}
		escapes := make(map[types.Object]bool)
		for _, res := range ret.Results {
			markIdentObjs(sc.p, res, escapes)
		}
		for _, t := range sc.order {
			if st[t.obj] == rlAcquired && !escapes[t.obj] {
				leaks[t] = append(leaks[t], ret.Pos())
			}
		}
	})
	exit := fl.exitState(g, in)

	for _, t := range sc.order {
		line := p.Position(t.pos).Line
		if !t.handled {
			diags = append(diags, p.diag(a.Name(), t.pos,
				"%s acquires %s (%s) but never releases it; call %s.%s on every path, defer it, or hand the resource off",
				fname, t.name, t.rule.what(), t.name, t.rule.Release))
			continue
		}
		for _, pos := range leaks[t] {
			diags = append(diags, p.diag(a.Name(), pos,
				"%s returns without releasing %s (%s acquired at line %d); this path leaks the resource",
				fname, t.name, t.rule.what(), line))
		}
		if exit != nil && exit[t.obj] == rlAcquired {
			diags = append(diags, p.diag(a.Name(), t.pos,
				"%s acquires %s (%s) but the path reaching the end of the function never releases it",
				fname, t.name, t.rule.what()))
		}
	}
	return diags
}

func maxFact(a, b fact) fact {
	if a > b {
		return a
	}
	return b
}

// what renders a rule as "iosim.View"-style prose for messages.
func (r *ResourceRule) what() string {
	pkg := r.Pkg
	if pkg == "." {
		pkg = "facade"
	}
	return pkg + "." + r.Call + " resource"
}

// acquireRule resolves call's callee and matches it against the active
// rules, returning the matched rule or nil.
func (sc *rlScope) acquireRule(call *ast.CallExpr) *ResourceRule {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return nil
	}
	fn, ok := sc.p.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	path := fn.Pkg().Path()
	for _, r := range sc.rules {
		if r.Call == fn.Name() && rulePkgPath(sc.p, r.Pkg) == path {
			return r
		}
	}
	return nil
}

// rulePkgPath resolves a policy package field to a full import path:
// "." is the module root (the facade), module-internal paths get the
// module prefix, anything else is a stdlib path used verbatim.
func rulePkgPath(p *Package, pkg string) string {
	if pkg == "." {
		return p.Module
	}
	if pkg == "internal" || pkg == "cmd" ||
		len(pkg) > 9 && pkg[:9] == "internal/" || len(pkg) > 4 && pkg[:4] == "cmd/" {
		return p.Module + "/" + pkg
	}
	return pkg
}

// registerAssign records acquire bindings in an assignment and flags
// acquires dropped into the blank identifier.
func (sc *rlScope) registerAssign(n *ast.AssignStmt, diags *[]Diagnostic) {
	// Tuple form: v, err := acquire().
	if len(n.Lhs) == 2 && len(n.Rhs) == 1 {
		if call, ok := n.Rhs[0].(*ast.CallExpr); ok {
			if rule := sc.acquireRule(call); rule != nil {
				sc.bind(n.Lhs[0], n.Lhs[1], call, rule, diags)
				return
			}
		}
	}
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, rhs := range n.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			continue
		}
		if rule := sc.acquireRule(call); rule != nil {
			sc.bind(n.Lhs[i], nil, call, rule, diags)
		}
	}
}

// registerValueSpec records `var v = acquire()` bindings.
func (sc *rlScope) registerValueSpec(vs *ast.ValueSpec) {
	if len(vs.Values) != 1 {
		return
	}
	call, ok := vs.Values[0].(*ast.CallExpr)
	if !ok {
		return
	}
	rule := sc.acquireRule(call)
	if rule == nil {
		return
	}
	if len(vs.Names) >= 1 {
		var errIdent *ast.Ident
		if len(vs.Names) == 2 {
			errIdent = vs.Names[1]
		}
		sc.bindIdent(vs.Names[0], errIdent, call, rule)
	}
}

func (sc *rlScope) bind(lhs, errLhs ast.Expr, call *ast.CallExpr, rule *ResourceRule, diags *[]Diagnostic) {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		// Stored straight into a field or element: handed off.
		return
	}
	if id.Name == "_" {
		*diags = append(*diags, sc.p.diag(sc.a.Name(), call.Pos(),
			"%s acquires a %s and discards it; the resource can never be released", sc.fname, rule.what()))
		return
	}
	var errIdent *ast.Ident
	if errLhs != nil {
		if eid, ok := errLhs.(*ast.Ident); ok && eid.Name != "_" {
			errIdent = eid
		}
	}
	sc.bindIdent(id, errIdent, call, rule)
}

func (sc *rlScope) bindIdent(id, errIdent *ast.Ident, call *ast.CallExpr, rule *ResourceRule) {
	obj := sc.p.Info.Defs[id]
	if obj == nil {
		obj = sc.p.Info.Uses[id]
	}
	if obj == nil {
		return
	}
	if _, seen := sc.tracked[obj]; seen {
		return
	}
	t := &rlTracked{obj: obj, rule: rule, pos: call.Pos(), name: id.Name}
	if errIdent != nil {
		if eo := sc.p.Info.Defs[errIdent]; eo != nil {
			t.errObj = eo
		} else if eo := sc.p.Info.Uses[errIdent]; eo != nil {
			t.errObj = eo
		}
	}
	sc.tracked[obj] = t
	sc.order = append(sc.order, t)
}

// transfer applies one CFG node's resource events to the state.
func (sc *rlScope) transfer(st flowState, n ast.Node) {
	switch n := n.(type) {
	case *ast.DeferStmt:
		sc.transferDefer(st, n)
		return
	case *ast.ReturnStmt:
		escapes := make(map[types.Object]bool)
		for _, res := range n.Results {
			markIdentObjs(sc.p, res, escapes)
		}
		for obj := range escapes {
			if t := sc.tracked[obj]; t != nil {
				t.handled = true
				st[obj] = rlEscaped
			}
		}
		return
	}
	sc.scanNode(st, n)
}

// transferDefer handles defer statements: a deferred release (direct
// or inside a deferred closure) marks the resource released on every
// later path; deferring the resource into any other call hands it off.
func (sc *rlScope) transferDefer(st flowState, n *ast.DeferStmt) {
	call := n.Call
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if t := sc.tracked[sc.useObj(id)]; t != nil {
				t.handled = true
				if sel.Sel.Name == t.rule.Release {
					st[t.obj] = rlReleased
				} else {
					// Deferring some other method keeps the question open;
					// treat as neutral, args below may still escape.
					st[t.obj] = maxFact(st[t.obj], rlAcquired)
				}
			}
		}
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		// defer func() { v.Close() }(): scan the closure body for
		// releases; any other captured use is a hand-off.
		released := make(map[types.Object]bool)
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			c, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := c.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if t := sc.tracked[sc.useObj(id)]; t != nil && sel.Sel.Name == t.rule.Release {
				released[t.obj] = true
			}
			return true
		})
		for obj := range released {
			sc.tracked[obj].handled = true
			st[obj] = rlReleased
		}
		if len(released) > 0 {
			return
		}
	}
	// Tracked resources passed as arguments to the deferred call (for
	// example `defer cleanup(v)`) are handed off.
	for _, arg := range call.Args {
		escapes := make(map[types.Object]bool)
		markIdentObjs(sc.p, arg, escapes)
		for obj := range escapes {
			if t := sc.tracked[obj]; t != nil {
				t.handled = true
				st[obj] = rlEscaped
			}
		}
	}
}

// scanNode handles every other node kind: acquire bindings set the
// acquired fact, release calls set released, any remaining use of a
// tracked variable outside a method-receiver position or a
// nil-comparison is a hand-off.
func (sc *rlScope) scanNode(st flowState, n ast.Node) {
	// Identify benign ident occurrences first: method-call receivers
	// (releases among them), nil comparisons, and the binding LHS of an
	// acquire assignment.
	benign := make(map[*ast.Ident]bool)
	walkFlowNode(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.CallExpr:
			if sel, ok := m.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok {
					if t := sc.tracked[sc.useObj(id)]; t != nil {
						benign[id] = true
						if sel.Sel.Name == t.rule.Release {
							t.handled = true
							st[t.obj] = rlReleased
						}
					}
				}
			}
		case *ast.BinaryExpr:
			if m.Op == token.EQL || m.Op == token.NEQ {
				if id := identComparedToNil(m); id != nil {
					benign[id] = true
				}
			}
		}
		return true
	})

	// Acquire bindings: the LHS ident of a registered acquire is a
	// definition, not an escape, and flips the fact to acquired.
	if as, ok := n.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if t := sc.tracked[sc.defOrUseObj(id)]; t != nil {
					benign[id] = true
					// Re-binding the variable: an acquire RHS re-acquires,
					// anything else ends tracking on this path.
					if sc.assignsAcquire(as, id) {
						st[t.obj] = rlAcquired
					} else {
						delete(st, t.obj)
					}
				}
			}
		}
	}
	if ds, ok := n.(*ast.DeclStmt); ok {
		if gd, ok := ds.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						if t := sc.tracked[sc.defOrUseObj(name)]; t != nil {
							benign[name] = true
							st[t.obj] = rlAcquired
						}
					}
				}
			}
		}
	}

	// Everything else: a non-benign occurrence of a tracked variable
	// transfers ownership (call argument, composite literal, map key,
	// assignment into a field, capture by a function literal, ...).
	walkFlowNode(n, func(m ast.Node) bool {
		if lit, ok := m.(*ast.FuncLit); ok && m != n {
			// A closure capturing the resource shares ownership with it.
			captures := make(map[types.Object]bool)
			markIdentObjs(sc.p, lit, captures)
			for obj := range captures {
				if t := sc.tracked[obj]; t != nil {
					t.handled = true
					st[obj] = rlEscaped
				}
			}
			return false
		}
		id, ok := m.(*ast.Ident)
		if !ok || benign[id] {
			return true
		}
		if t := sc.tracked[sc.useObj(id)]; t != nil && id.Pos() != t.pos {
			t.handled = true
			st[t.obj] = rlEscaped
		}
		return true
	})
}

// assignsAcquire reports whether, within as, the value assigned to id
// comes from an acquire call (direct or tuple position 0).
func (sc *rlScope) assignsAcquire(as *ast.AssignStmt, id *ast.Ident) bool {
	if len(as.Lhs) == 2 && len(as.Rhs) == 1 && as.Lhs[0] == id {
		if call, ok := as.Rhs[0].(*ast.CallExpr); ok {
			return sc.acquireRule(call) != nil
		}
		return false
	}
	for i, lhs := range as.Lhs {
		if lhs == id && i < len(as.Rhs) {
			if call, ok := as.Rhs[i].(*ast.CallExpr); ok {
				return sc.acquireRule(call) != nil
			}
		}
	}
	return false
}

// edgeTransfer is the path-sensitivity hook: along a branch edge where
// the acquire's paired error is known non-nil, or the resource itself
// is known nil, the acquire failed and the resource owes no release.
func (sc *rlScope) edgeTransfer(st flowState, cond ast.Expr, branch bool) {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return
	}
	id := identComparedToNil(be)
	if id == nil {
		return
	}
	obj := sc.useObj(id)
	if obj == nil {
		return
	}
	// isNil: on this edge, id == nil holds.
	isNil := (be.Op == token.EQL) == branch
	if t := sc.tracked[obj]; t != nil && isNil && st[obj] == rlAcquired {
		st[obj] = rlInvalid
		return
	}
	if isNil {
		// id == nil holds: an error known nil validates nothing to undo,
		// and the resource-is-nil case was handled above.
		return
	}
	// err != nil on this edge: the acquire failed, its resource is nil
	// and owes no release.
	for _, t := range sc.order {
		if t.errObj == obj && st[t.obj] == rlAcquired {
			st[t.obj] = rlInvalid
		}
	}
}

func (sc *rlScope) useObj(id *ast.Ident) types.Object {
	if o := sc.p.Info.Uses[id]; o != nil {
		return o
	}
	return sc.p.Info.Defs[id]
}

func (sc *rlScope) defOrUseObj(id *ast.Ident) types.Object {
	if o := sc.p.Info.Defs[id]; o != nil {
		return o
	}
	return sc.p.Info.Uses[id]
}

// identComparedToNil returns the ident compared against nil in a
// binary ==/!= expression, or nil.
func identComparedToNil(be *ast.BinaryExpr) *ast.Ident {
	if isNilIdent(be.Y) {
		if id, ok := be.X.(*ast.Ident); ok {
			return id
		}
	}
	if isNilIdent(be.X) {
		if id, ok := be.Y.(*ast.Ident); ok {
			return id
		}
	}
	return nil
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// markIdentObjs collects the objects of every ident under e (function
// literals included — a capture is a use).
func markIdentObjs(p *Package, e ast.Node, out map[types.Object]bool) {
	ast.Inspect(e, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if o := p.Info.Uses[id]; o != nil {
				out[o] = true
			}
		}
		return true
	})
}
