package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks the packages of one module without any
// tooling beyond the standard library. Module-internal imports resolve
// to the module's own directories; everything else resolves through the
// stdlib source importer (go/importer "source"), which reads GOROOT and
// therefore works no matter how the module is laid out. Loaded packages
// are cached, so a whole-module run type-checks each package once.
type Loader struct {
	// Root is the absolute module root (the directory with go.mod).
	Root string
	// Module is the module path declared in go.mod.
	Module string
	// Types enables type checking. Syntactic runs (import-layer only)
	// leave it off and skip the cost entirely.
	Types bool

	fset     *token.FileSet
	std      types.Importer
	pkgs     map[string]*Package // keyed by rel
	checking map[string]bool     // import-cycle guard
}

// NewLoader builds a loader for the module rooted at root.
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	module, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:     abs,
		Module:   module,
		fset:     fset,
		std:      importer.ForCompiler(fset, "source", nil),
		pkgs:     make(map[string]*Package),
		checking: make(map[string]bool),
	}, nil
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module declaration in %s", gomod)
}

// PackageDirs walks the module and returns the module-relative
// directory of every buildable package ("" for the root), sorted.
// Hidden directories, underscore directories and testdata trees are
// skipped, mirroring the go tool's matching rules.
func (l *Loader) PackageDirs() ([]string, error) {
	var rels []string
	err := filepath.WalkDir(l.Root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.Root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		has, err := hasGoFiles(path)
		if err != nil {
			return err
		}
		if has {
			rel, err := filepath.Rel(l.Root, path)
			if err != nil {
				return err
			}
			if rel == "." {
				rel = ""
			}
			rels = append(rels, filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(rels)
	return rels, nil
}

func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if !e.IsDir() && isSourceFile(e.Name()) {
			return true, nil
		}
	}
	return false, nil
}

// isSourceFile reports whether name is a non-test Go source file. Test
// files are out of scope for every analyzer: tests may legitimately
// cross layers, read clocks and iterate maps.
func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_")
}

// Load parses (and, when l.Types is set, type-checks) the package in
// the module-relative directory rel. Results are cached.
func (l *Loader) Load(rel string) (*Package, error) {
	if p, ok := l.pkgs[rel]; ok {
		return p, nil
	}
	if l.checking[rel] {
		return nil, fmt.Errorf("import cycle through %s", relOrRoot(rel))
	}
	l.checking[rel] = true
	defer delete(l.checking, rel)

	dir := filepath.Join(l.Root, filepath.FromSlash(rel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && isSourceFile(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go source files in %s", relOrRoot(rel))
	}

	pkg := &Package{
		Module: l.Module,
		Path:   l.importPath(rel),
		Rel:    rel,
		Fset:   l.fset,
	}
	for _, name := range names {
		full := filepath.Join(dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		// Positions carry the module-relative path so diagnostics are
		// stable across checkouts and readable in CI logs.
		display := filepath.ToSlash(filepath.Join(filepath.FromSlash(rel), name))
		f, err := parser.ParseFile(l.fset, display, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
	}

	if l.Types {
		if err := l.typeCheck(pkg); err != nil {
			return nil, err
		}
	}
	l.pkgs[rel] = pkg
	return pkg, nil
}

func (l *Loader) importPath(rel string) string {
	if rel == "" {
		return l.Module
	}
	return l.Module + "/" + rel
}

// typeCheck runs go/types over the parsed files. Errors are collected
// softly into pkg.TypeErrors (Info stays usable for whatever did
// resolve); the engine decides whether they are fatal.
func (l *Loader) typeCheck(pkg *Package) error {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	cfg := &types.Config{
		Importer: l,
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	tpkg, err := cfg.Check(pkg.Path, l.fset, pkg.Files, info)
	if err != nil && len(pkg.TypeErrors) == 0 {
		pkg.TypeErrors = append(pkg.TypeErrors, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	return nil
}

// Import implements types.Importer: module paths load from the module
// tree, "unsafe" maps to types.Unsafe, and everything else goes to the
// stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
		p, err := l.Load(rel)
		if err != nil {
			return nil, err
		}
		if len(p.TypeErrors) > 0 {
			return nil, fmt.Errorf("package %s has type errors: %v", path, p.TypeErrors[0])
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}
