package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildTestCFG parses a function body and builds its graph. The body is
// parse-only: CFG construction is syntactic, so unresolved identifiers
// are fine.
func buildTestCFG(t *testing.T, body string) *cfg {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	return buildCFG(fd.Body)
}

// callReachable reports whether a call to the named function sits in a
// block reachable from entry.
func callReachable(g *cfg, name string) bool {
	for _, blk := range g.reachable() {
		for _, n := range blk.nodes {
			found := false
			walkFlowNode(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
						found = true
					}
				}
				return true
			})
			if found {
				return true
			}
		}
	}
	return false
}

// TestCFGLabeledBreak pins that `break outer` exits both loops: the
// statement after the inner loop is dead, the statement after the
// outer loop is live.
func TestCFGLabeledBreak(t *testing.T) {
	g := buildTestCFG(t, `
outer:
	for {
		for {
			break outer
		}
		dead()
	}
	live()
`)
	if callReachable(g, "dead") {
		t.Errorf("statement after always-breaking inner loop should be unreachable\n%s", g)
	}
	if !callReachable(g, "live") {
		t.Errorf("break outer must reach the code after the outer loop\n%s", g)
	}
}

// TestCFGLabeledContinue pins that `continue outer` targets the outer
// loop's header, keeping the outer post-loop code live.
func TestCFGLabeledContinue(t *testing.T) {
	g := buildTestCFG(t, `
outer:
	for i := 0; i < n; i++ {
		for {
			continue outer
		}
	}
	live()
`)
	if !callReachable(g, "live") {
		t.Errorf("continue outer must keep the outer loop's exit reachable\n%s", g)
	}
}

// TestCFGSelect pins that every select clause gets its own block and
// control rejoins after the statement.
func TestCFGSelect(t *testing.T) {
	g := buildTestCFG(t, `
	select {
	case v := <-ch:
		recv(v)
	case ch2 <- 1:
		sent()
	default:
		idle()
	}
	after()
`)
	for _, name := range []string{"recv", "sent", "idle", "after"} {
		if !callReachable(g, name) {
			t.Errorf("%s unreachable in select CFG\n%s", name, g)
		}
	}
}

// TestCFGSwitchFallthrough pins the fallthrough chain: case 1 runs
// case 2's body too, and every clause rejoins after the switch.
func TestCFGSwitchFallthrough(t *testing.T) {
	g := buildTestCFG(t, `
	switch x {
	case 1:
		one()
		fallthrough
	case 2:
		two()
	default:
		other()
	}
	after()
`)
	for _, name := range []string{"one", "two", "other", "after"} {
		if !callReachable(g, name) {
			t.Errorf("%s unreachable in switch CFG\n%s", name, g)
		}
	}
}

// TestCFGGoto pins forward gotos: the jumped-over statement is dead,
// the label target is live.
func TestCFGGoto(t *testing.T) {
	g := buildTestCFG(t, `
	goto done
	dead()
done:
	live()
`)
	if callReachable(g, "dead") {
		t.Errorf("statement jumped over by goto should be unreachable\n%s", g)
	}
	if !callReachable(g, "live") {
		t.Errorf("goto target should be reachable\n%s", g)
	}
}

// TestCFGTerminators pins that panic and os.Exit end their paths: code
// after them is dead and the function has no fall-off exit when every
// path terminates.
func TestCFGTerminators(t *testing.T) {
	g := buildTestCFG(t, `
	if cond {
		panic("boom")
	}
	os.Exit(1)
	dead()
`)
	if callReachable(g, "dead") {
		t.Errorf("code after os.Exit should be unreachable\n%s", g)
	}
}

// TestCFGConditionEdges pins the path-sensitivity contract: an if
// condition labels its two out-edges with opposite branch values.
func TestCFGConditionEdges(t *testing.T) {
	g := buildTestCFG(t, `
	if err != nil {
		a()
	}
	b()
`)
	var seen []bool
	for _, blk := range g.blocks {
		for _, e := range blk.succs {
			if e.cond != nil {
				seen = append(seen, e.branch)
			}
		}
	}
	if len(seen) != 2 || seen[0] == seen[1] {
		t.Errorf("want one true and one false labelled edge, got %v\n%s", seen, g)
	}
}

// TestCFGFallBlock pins the fall-off-the-end bookkeeping used for
// closing-brace judgments.
func TestCFGFallBlock(t *testing.T) {
	falls := buildTestCFG(t, `
	work()
`)
	if falls.fallBlock == nil {
		t.Errorf("body without return must record a fall block\n%s", falls)
	}
	returns := buildTestCFG(t, `
	work()
	return
`)
	if returns.fallBlock != nil {
		t.Errorf("body ending in return must not record a fall block\n%s", returns)
	}
}

// flowForCalls builds a test analysis over call names: calling set(...)
// raises the key's fact to 1, calling clear(...) drops it.
func flowForCalls(join func(a, b fact) fact) *flow {
	return &flow{
		join: join,
		transfer: func(st flowState, n ast.Node) {
			walkFlowNode(n, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok {
					switch id.Name {
					case "set":
						st["k"] = 1
					case "clear":
						delete(st, "k")
					}
				}
				return true
			})
		},
	}
}

// stateAt replays the flow and returns the pre-state at the call to
// the named function.
func stateAt(g *cfg, fl *flow, name string) (flowState, bool) {
	in := fl.forward(g)
	var out flowState
	found := false
	fl.scanBlocks(g, in, func(st flowState, n ast.Node, _ *cfgBlock) {
		walkFlowNode(n, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
					out = st.clone()
					found = true
				}
			}
			return true
		})
	})
	return out, found
}

// TestDataflowMayMerge pins merge-over-paths with join = max: a fact
// set on one branch survives the merge.
func TestDataflowMayMerge(t *testing.T) {
	g := buildTestCFG(t, `
	if cond {
		set()
	}
	probe()
`)
	max := func(a, b fact) fact {
		if a > b {
			return a
		}
		return b
	}
	st, ok := stateAt(g, flowForCalls(max), "probe")
	if !ok {
		t.Fatal("probe not found")
	}
	if st["k"] != 1 {
		t.Errorf("may-join must keep the one-branch fact, state = %v", st)
	}
}

// TestDataflowMustMerge pins the intersection join lockorder uses: a
// fact set on only one branch does NOT survive the merge, while a fact
// set on both does.
func TestDataflowMustMerge(t *testing.T) {
	g := buildTestCFG(t, `
	if cond {
		set()
	}
	probe()
	set()
	if cond2 {
		other()
	}
	probe2()
`)
	must := func(a, b fact) fact {
		if a == b {
			return a
		}
		return 0
	}
	fl := flowForCalls(must)
	st, ok := stateAt(g, fl, "probe")
	if !ok {
		t.Fatal("probe not found")
	}
	if st["k"] != 0 {
		t.Errorf("must-join lost the one-branch drop, state = %v", st)
	}
	st2, ok := stateAt(g, fl, "probe2")
	if !ok {
		t.Fatal("probe2 not found")
	}
	if st2["k"] != 1 {
		t.Errorf("must-join must keep a both-paths fact, state = %v", st2)
	}
}

// TestDataflowLoopFixpoint pins convergence on a loop that clears the
// fact: after the loop the may-state still remembers the pre-loop set.
func TestDataflowLoopFixpoint(t *testing.T) {
	g := buildTestCFG(t, `
	set()
	for i := 0; i < n; i++ {
		clear()
	}
	probe()
`)
	max := func(a, b fact) fact {
		if a > b {
			return a
		}
		return b
	}
	st, ok := stateAt(g, flowForCalls(max), "probe")
	if !ok {
		t.Fatal("probe not found")
	}
	// Zero-iteration path keeps the fact; the loop path cleared it. May
	// analysis keeps the maximum.
	if st["k"] != 1 {
		t.Errorf("zero-iteration path lost across loop merge, state = %v", st)
	}
}

// TestCFGDeferAfterConditionalAcquire is the end-to-end shape from the
// issue: acquire, bail out on the error edge, defer the release. The
// resourceleak analyzer must stay silent, and moving the defer above
// the error check must not introduce edges that crash the builder.
func TestCFGDeferAfterConditionalAcquire(t *testing.T) {
	g := buildTestCFG(t, `
	f, err := open()
	if err != nil {
		return
	}
	defer f.Close()
	use(f)
`)
	// The defer node must sit on the non-error path only: exactly one
	// block contains it and that block is reachable.
	count := 0
	for _, blk := range g.reachable() {
		for _, n := range blk.nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				count++
			}
		}
	}
	if count != 1 {
		t.Errorf("defer statement should appear in exactly one reachable block, got %d\n%s", count, g)
	}
	if !strings.Contains(g.String(), "DeferStmt") {
		t.Errorf("graph dump should name the defer node\n%s", g)
	}
}
