package analysis

import (
	"go/ast"
	"go/types"
)

// mapDeterminism flags `for range` over a map inside the
// result-producing packages of Policy.MapDeterminism. Go randomizes
// map iteration order, so any map walk on a path that feeds join
// results, accumulator drains or query output is a nondeterminism bug
// waiting for a baseline diff — the repo's parallel-identity and
// byte-stable-benchmark promises all assume ordered production.
//
// A map range is accepted when the surrounding function visibly
// restores order afterwards: a call into package sort or slices
// (Sort/Slice/Strings/Sorted/...) positioned after the loop's start.
// That covers the collect-keys-then-sort idiom without data-flow
// analysis; a loop that is order-independent for a subtler reason
// documents it with a lint:ignore directive.
type mapDeterminism struct{ pol *Policy }

func (a *mapDeterminism) Name() string { return "mapdeterminism" }
func (a *mapDeterminism) Doc() string {
	return "flag map iteration in result-producing packages unless the enclosing function sorts afterwards"
}
func (a *mapDeterminism) NeedsTypes() bool { return true }

// sortFuncs are the package-level functions of sort and slices that
// restore a deterministic order.
var sortFuncs = map[string]bool{
	"Sort": true, "Stable": true, "Slice": true, "SliceStable": true,
	"Strings": true, "Ints": true, "Float64s": true,
	"SortFunc": true, "SortStableFunc": true,
	"Sorted": true, "SortedFunc": true, "SortedStableFunc": true,
}

func (a *mapDeterminism) Check(p *Package) []Diagnostic {
	if !containsString(a.pol.MapDeterminism, p.Rel) || p.Info == nil {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := p.Info.Types[rs.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				if a.feedsSort(p, fd, rs) {
					return true
				}
				diags = append(diags, p.diag(a.Name(), rs.Pos(),
					"range over map in %s: iteration order is nondeterministic; collect and sort, or justify with //lint:ignore %s <reason>",
					fd.Name.Name, a.Name()))
				return true
			})
		}
	}
	return diags
}

// feedsSort reports whether fd calls a sorting function at a position
// after the range statement begins.
func (a *mapDeterminism) feedsSort(p *Package, fd *ast.FuncDecl, rs *ast.RangeStmt) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.Pos() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !sortFuncs[sel.Sel.Name] {
			return true
		}
		if pkgPathOf(p, sel.X) == "sort" || pkgPathOf(p, sel.X) == "slices" {
			found = true
			return false
		}
		return true
	})
	return found
}

// pkgPathOf resolves e to the import path of the package it names, or
// "" when e is not a package qualifier.
func pkgPathOf(p *Package, e ast.Expr) string {
	id, ok := e.(*ast.Ident)
	if !ok || p.Info == nil {
		return ""
	}
	if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

func containsString(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
