package analysis

import (
	"go/ast"
)

// dataflow.go is the lattice-based forward-dataflow framework the
// path-sensitive analyzers share. An analysis instantiates flow with a
// per-entity join (the lattice's least upper bound — or greatest lower
// bound for must-analyses; the framework only requires monotonicity), a
// transfer function applied to each CFG node, and an optional
// edge-transfer that refines state along a labelled branch edge — the
// path-sensitivity hook: on the true edge of `err != nil` a resource
// tied to err is known invalid.
//
// States are small maps from tracked entities (a types.Object, a lock
// key string) to one-byte facts, with the zero fact as bottom: an
// absent key and a zero fact are the same thing, so joins never grow
// states with dead entries. Iteration is merge-over-paths to a
// fixpoint over a worklist; the first propagation into a block seeds
// its in-state rather than joining against bottom, which gives
// may-analyses (join = max) a bottom start and must-analyses (join =
// intersection) the optimistic start they need to converge on loops.

// flowKey identifies one tracked entity in a dataflow state.
type flowKey any

// fact is one lattice element; 0 is bottom ("untracked").
type fact uint8

// flowState maps tracked entities to facts; absent key = bottom.
type flowState map[flowKey]fact

func (s flowState) clone() flowState {
	out := make(flowState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// equal treats an absent key and a zero fact as the same state.
func (s flowState) equal(o flowState) bool {
	for k, v := range s {
		if v != 0 && o[k] != v {
			return false
		}
	}
	for k, v := range o {
		if v != 0 && s[k] != v {
			return false
		}
	}
	return true
}

// flow is one configured dataflow analysis.
type flow struct {
	// join merges the facts for one entity arriving along two paths.
	// It must be commutative and monotone over repeated application.
	join func(a, b fact) fact
	// transfer applies one CFG node's effect to the state in place.
	transfer func(st flowState, n ast.Node)
	// edge, when non-nil, refines the state along a conditional branch
	// edge: cond is the branch condition, branch its truth value on
	// this edge.
	edge func(st flowState, cond ast.Expr, branch bool)
}

// joinStates merges b into a copy of a, dropping entities that join to
// bottom.
func (fl *flow) joinStates(a, b flowState) flowState {
	out := a.clone()
	for k, bv := range b {
		j := fl.join(out[k], bv)
		if j == 0 {
			delete(out, k)
		} else {
			out[k] = j
		}
	}
	// Entities present in a but absent in b join against bottom.
	for k, av := range a {
		if _, ok := b[k]; ok {
			continue
		}
		j := fl.join(av, 0)
		if j == 0 {
			delete(out, k)
		} else {
			out[k] = j
		}
	}
	return out
}

// forward runs merge-over-paths iteration to a fixpoint and returns
// the in-state of every reached block. Unreachable blocks have no
// entry in the result. A step cap bounds pathological non-monotone
// transfer functions; hitting it abandons the remaining propagation
// (fewer findings, never a crash).
func (fl *flow) forward(g *cfg) map[*cfgBlock]flowState {
	in := map[*cfgBlock]flowState{g.entry: {}}
	work := []*cfgBlock{g.entry}
	queued := map[*cfgBlock]bool{g.entry: true}
	steps, limit := 0, 64*len(g.blocks)+256
	for len(work) > 0 {
		if steps++; steps > limit {
			break
		}
		blk := work[0]
		work = work[1:]
		queued[blk] = false
		st := in[blk].clone()
		for _, n := range blk.nodes {
			fl.transfer(st, n)
		}
		for _, e := range blk.succs {
			es := st
			if e.cond != nil && fl.edge != nil {
				es = st.clone()
				fl.edge(es, e.cond, e.branch)
			}
			old, seen := in[e.to]
			if !seen {
				in[e.to] = es.clone()
			} else {
				merged := fl.joinStates(old, es)
				if merged.equal(old) {
					continue
				}
				in[e.to] = merged
			}
			if !queued[e.to] {
				work = append(work, e.to)
				queued[e.to] = true
			}
		}
	}
	return in
}

// scanBlocks replays the transfer function over every reached block in
// index order, calling visit with the state immediately BEFORE each
// node's transfer. This is how analyzers turn fixpoint states into
// positioned diagnostics: the pre-state at a return statement is the
// judgment state for that path.
func (fl *flow) scanBlocks(g *cfg, in map[*cfgBlock]flowState, visit func(st flowState, n ast.Node, blk *cfgBlock)) {
	for _, blk := range g.blocks {
		st, ok := in[blk]
		if !ok {
			continue
		}
		st = st.clone()
		for _, n := range blk.nodes {
			visit(st, n, blk)
			fl.transfer(st, n)
		}
	}
}

// exitState replays the fall-off-the-end block to its out-state — the
// state at the closing brace — or nil when every path returns or
// terminates explicitly.
func (fl *flow) exitState(g *cfg, in map[*cfgBlock]flowState) flowState {
	if g.fallBlock == nil {
		return nil
	}
	st, ok := in[g.fallBlock]
	if !ok {
		return nil
	}
	st = st.clone()
	for _, n := range g.fallBlock.nodes {
		fl.transfer(st, n)
	}
	return st
}
