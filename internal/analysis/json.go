package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
)

// ValidateReport checks that data is a well-formed `lintcheck -json`
// report, the same strict-schema idiom as telemetry.ValidateJSON: no
// unknown fields, no trailing data, and the structural invariants a
// consumer may rely on — module set, rules known and sorted, packages
// sorted, diagnostics sorted by position with every field populated
// and every rule among the rules that ran.
func ValidateReport(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var r Report
	if err := dec.Decode(&r); err != nil {
		return fmt.Errorf("analysis: invalid report: %w", err)
	}
	if dec.More() {
		return errors.New("analysis: trailing data after report")
	}
	if r.Module == "" {
		return errors.New("analysis: report has no module")
	}
	if len(r.Rules) == 0 {
		return errors.New("analysis: report ran no rules")
	}
	known := knownRules(Analyzers(DefaultPolicy()))
	knownSet := make(map[string]bool, len(known)+1)
	for _, k := range known {
		knownSet[k] = true
	}
	knownSet[RuleLintDirective] = true
	ranSet := make(map[string]bool, len(r.Rules)+1)
	for i, rule := range r.Rules {
		if !knownSet[rule] {
			return fmt.Errorf("analysis: report names unknown rule %q", rule)
		}
		if i > 0 && r.Rules[i-1] >= rule {
			return errors.New("analysis: report rules not sorted and unique")
		}
		ranSet[rule] = true
	}
	ranSet[RuleLintDirective] = true
	for i, p := range r.Packages {
		if p == "" {
			return errors.New("analysis: report has empty package path")
		}
		if i > 0 && r.Packages[i-1] >= p {
			return errors.New("analysis: report packages not sorted and unique")
		}
	}
	if r.Suppressed < 0 {
		return errors.New("analysis: negative suppressed count")
	}
	for i, d := range r.Diagnostics {
		if !ranSet[d.Rule] {
			return fmt.Errorf("analysis: diagnostic %d has rule %q which did not run", i, d.Rule)
		}
		if d.File == "" || d.Message == "" || d.Package == "" {
			return fmt.Errorf("analysis: diagnostic %d has empty file, package or message", i)
		}
		if d.Line < 1 || d.Col < 1 {
			return fmt.Errorf("analysis: diagnostic %d has position %d:%d before line 1, col 1", i, d.Line, d.Col)
		}
	}
	sorted := make([]Diagnostic, len(r.Diagnostics))
	copy(sorted, r.Diagnostics)
	sortDiagnostics(sorted)
	for i := range sorted {
		if sorted[i] != r.Diagnostics[i] {
			return fmt.Errorf("analysis: diagnostics not in position order at index %d", i)
		}
	}
	// rule_stats is optional (older reports omit it) but when present it
	// must mirror the rules list and stay non-negative.
	for i, st := range r.RuleStats {
		if !ranSet[st.Rule] {
			return fmt.Errorf("analysis: rule_stats entry %d names rule %q which did not run", i, st.Rule)
		}
		if i > 0 && r.RuleStats[i-1].Rule >= st.Rule {
			return errors.New("analysis: rule_stats not sorted and unique by rule")
		}
		if st.Files < 0 || st.Diagnostics < 0 || st.WallNS < 0 {
			return fmt.Errorf("analysis: rule_stats entry %d has negative counters", i)
		}
	}
	return nil
}
