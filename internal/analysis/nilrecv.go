package analysis

import (
	"go/ast"
	"go/token"
)

// nilRecv enforces the telemetry layer's disabled-path contract: every
// exported pointer-receiver method on the types listed in
// Policy.NilRecv must begin with a nil-receiver guard, so instrumented
// code can hold plain fields and call unconditionally. Accepted guard
// forms, both as the method's first statement:
//
//	if c == nil { ... }          (either comparison order, any operator
//	if c != nil { ... }           among ==/!=, possibly part of a larger
//	                              condition)
//	return c != nil              (a return whose expression compares the
//	                              receiver against nil, e.g. Enabled)
//
// Methods with an unnamed or blank receiver cannot dereference it and
// are trivially nil-safe, so they pass. The check is syntactic.
type nilRecv struct{ pol *Policy }

func (a *nilRecv) Name() string { return "nilrecv" }
func (a *nilRecv) Doc() string {
	return "exported pointer-receiver methods on the nil-safe telemetry/metrics types must begin with a nil-receiver guard"
}
func (a *nilRecv) NeedsTypes() bool { return false }

func (a *nilRecv) Check(p *Package) []Diagnostic {
	typeNames := a.pol.NilRecv[p.Rel]
	if len(typeNames) == 0 {
		return nil
	}
	guarded := make(map[string]bool, len(typeNames))
	for _, t := range typeNames {
		guarded[t] = true
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 || fd.Body == nil {
				continue
			}
			if !fd.Name.IsExported() {
				continue
			}
			star, ok := fd.Recv.List[0].Type.(*ast.StarExpr)
			if !ok {
				continue // value receivers copy; nil does not reach them
			}
			base, ok := star.X.(*ast.Ident)
			if !ok || !guarded[base.Name] {
				continue
			}
			recvName := receiverName(fd.Recv.List[0])
			if recvName == "" || recvName == "_" {
				continue // receiver never dereferenced
			}
			if !beginsWithNilGuard(fd.Body, recvName) {
				diags = append(diags, p.diag(a.Name(), fd.Name.Pos(),
					"exported method (*%s).%s must begin with a nil-receiver guard (`if %s == nil`), per the nil-safe collector contract",
					base.Name, fd.Name.Name, recvName))
			}
		}
	}
	return diags
}

func receiverName(field *ast.Field) string {
	if len(field.Names) == 0 {
		return ""
	}
	return field.Names[0].Name
}

// beginsWithNilGuard reports whether the first statement of body is a
// recognized nil-receiver guard for recv.
func beginsWithNilGuard(body *ast.BlockStmt, recv string) bool {
	if len(body.List) == 0 {
		return false
	}
	switch s := body.List[0].(type) {
	case *ast.IfStmt:
		return containsNilCompare(s.Cond, recv)
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			if containsNilCompare(res, recv) {
				return true
			}
		}
	}
	return false
}

// containsNilCompare walks e for a `recv == nil` / `recv != nil`
// comparison (either operand order).
func containsNilCompare(e ast.Expr, recv string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		if isIdent(be.X, recv) && isIdent(be.Y, "nil") ||
			isIdent(be.X, "nil") && isIdent(be.Y, recv) {
			found = true
			return false
		}
		return true
	})
	return found
}

func isIdent(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}
