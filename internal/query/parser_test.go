package query

import (
	"strings"
	"testing"
)

func TestParseMotivatingExample(t *testing.T) {
	q, err := Parse(`Select P.P#, P.Title, A.SSN, A.Name
		From Positions P, Applicants A
		Where A.Resume SIMILAR_TO(20) P.Job_descr`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Select) != 4 {
		t.Fatalf("select = %v", q.Select)
	}
	if q.Select[0] != (ColRef{Table: "P", Column: "P#"}) {
		t.Errorf("select[0] = %v", q.Select[0])
	}
	if len(q.From) != 2 || q.From[0].Relation != "Positions" || q.From[0].Alias != "P" {
		t.Errorf("from = %v", q.From)
	}
	sp, err := q.SimilarPredicate()
	if err != nil {
		t.Fatal(err)
	}
	if sp.Lambda != 20 {
		t.Errorf("lambda = %d", sp.Lambda)
	}
	if sp.Left != (ColRef{Table: "A", Column: "Resume"}) || sp.Right != (ColRef{Table: "P", Column: "Job_descr"}) {
		t.Errorf("similar = %+v", sp)
	}
}

func TestParseWithSelection(t *testing.T) {
	q, err := Parse(`SELECT P.P#, A.Name FROM Positions P, Applicants A
		WHERE P.Title like "%Engineer%" and A.Resume SIMILAR_TO(5) P.Job_descr`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where) != 2 {
		t.Fatalf("where = %v", q.Where)
	}
	lp, ok := q.Where[0].(*LikePred)
	if !ok || lp.Pattern != "%Engineer%" || lp.Negated {
		t.Errorf("like = %+v", q.Where[0])
	}
}

func TestParseComparisonsAndNotLike(t *testing.T) {
	q, err := Parse(`select a.x from r1 a, r2 b
		where a.n >= 10 and a.s = 'hi' and b.s not like '%x%' and a.t similar_to(3) b.t`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where) != 4 {
		t.Fatalf("where = %d", len(q.Where))
	}
	cp := q.Where[0].(*ComparePred)
	if cp.Op != ">=" || cp.Lit.Int != 10 {
		t.Errorf("compare = %+v", cp)
	}
	cp2 := q.Where[1].(*ComparePred)
	if !cp2.Lit.IsString || cp2.Lit.Str != "hi" {
		t.Errorf("compare = %+v", cp2)
	}
	nl := q.Where[2].(*LikePred)
	if !nl.Negated {
		t.Errorf("not like = %+v", nl)
	}
}

func TestParseUnqualifiedColumns(t *testing.T) {
	q, err := Parse(`select name from r1, r2 where resume similar_to(2) descr`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Select[0].Table != "" || q.Select[0].Column != "name" {
		t.Errorf("select = %v", q.Select[0])
	}
	if q.From[0].Alias != "" {
		t.Errorf("alias = %q", q.From[0].Alias)
	}
}

func TestParseStringEscapes(t *testing.T) {
	q, err := Parse(`select a.x from r1 a, r2 b where a.s = 'it''s' and a.t similar_to(1) b.t`)
	if err != nil {
		t.Fatal(err)
	}
	cp := q.Where[0].(*ComparePred)
	if cp.Lit.Str != "it's" {
		t.Errorf("escaped string = %q", cp.Lit.Str)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"select",
		"select x",
		"select x from",
		"select x from r1, r2",                // no where
		"select x from r1, r2 where",          // empty where
		"select x from r1, r2 where a like 5", // like needs string
		"select x from r1, r2 where a similar_to() b",       // missing lambda
		"select x from r1, r2 where a similar_to(0) b",      // zero lambda
		"select x from r1, r2 where a similar_to(-1) b",     // negative
		"select x from r1, r2 where a similar_to(2 b",       // missing paren
		"select x from r1, r2 where a = ",                   // missing literal
		"select x from r1, r2 where a ~ 3",                  // bad char
		"select x from r1, r2 where a = 'unterminated",      // bad string
		"select x from r1, r2 where a similar_to(1) b junk", // trailing
		"select select from r1, r2 where a similar_to(1) b", // reserved as ident
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): want error", src)
		}
	}
}

func TestSimilarPredicateErrors(t *testing.T) {
	q, err := Parse(`select x from r1, r2 where a = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.SimilarPredicate(); err == nil {
		t.Error("no SIMILAR_TO: want error")
	}
	q2, err := Parse(`select x from r1, r2 where a similar_to(1) b and c similar_to(2) d`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q2.SimilarPredicate(); err == nil {
		t.Error("two SIMILAR_TO: want error")
	}
}

func TestColRefString(t *testing.T) {
	if (ColRef{Column: "x"}).String() != "x" {
		t.Error("unqualified")
	}
	if (ColRef{Table: "t", Column: "x"}).String() != "t.x" {
		t.Error("qualified")
	}
}

func TestLiteralString(t *testing.T) {
	if (Literal{IsString: true, Str: "a"}).String() != `"a"` {
		t.Error("string literal")
	}
	if (Literal{Int: 5}).String() != "5" {
		t.Error("int literal")
	}
}

func TestTableRefName(t *testing.T) {
	if (TableRef{Relation: "r"}).Name() != "r" {
		t.Error("no alias")
	}
	if (TableRef{Relation: "r", Alias: "a"}).Name() != "a" {
		t.Error("alias")
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	if _, err := Parse(`SeLeCt a.x FrOm r1 a, r2 b WhErE a.t SIMILAR_to(7) b.t`); err != nil {
		t.Errorf("mixed case: %v", err)
	}
}

func TestLexerTokens(t *testing.T) {
	toks, err := lex(`a.b, (5) 'str' <= <> != P#`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.kind)
		texts = append(texts, tok.text)
	}
	want := []string{"a", ".", "b", ",", "(", "5", ")", "str", "<=", "<>", "!=", "P#", ""}
	if len(texts) != len(want) {
		t.Fatalf("tokens = %v", texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
	if kinds[len(kinds)-1] != tokEOF {
		t.Error("missing EOF")
	}
	if !strings.Contains(toks[0].String(), "a") {
		t.Error("token String broken")
	}
}
