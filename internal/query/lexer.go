package query

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // , . ( )
	tokOp    // = <> < <= > >=
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer tokenizes an extended-SQL string.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the whole input up front.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, tok)
		if tok.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], pos: start}, nil
	case c >= '0' && c <= '9':
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.pos++
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil
	case c == '\'' || c == '"':
		quote := c
		l.pos++
		var sb strings.Builder
		for l.pos < len(l.src) {
			if l.src[l.pos] == quote {
				// Doubled quote escapes itself, SQL style.
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == quote {
					sb.WriteByte(quote)
					l.pos += 2
					continue
				}
				l.pos++
				return token{kind: tokString, text: sb.String(), pos: start}, nil
			}
			sb.WriteByte(l.src[l.pos])
			l.pos++
		}
		return token{}, fmt.Errorf("query: unterminated string at offset %d", start)
	case c == ',' || c == '.' || c == '(' || c == ')':
		l.pos++
		return token{kind: tokPunct, text: string(c), pos: start}, nil
	case c == '=':
		l.pos++
		return token{kind: tokOp, text: "=", pos: start}, nil
	case c == '<':
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '=' || l.src[l.pos] == '>') {
			l.pos++
		}
		return token{kind: tokOp, text: l.src[start:l.pos], pos: start}, nil
	case c == '>':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
		}
		return token{kind: tokOp, text: l.src[start:l.pos], pos: start}, nil
	case c == '!':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{kind: tokOp, text: "!=", pos: start}, nil
		}
		return token{}, fmt.Errorf("query: unexpected character %q at offset %d", c, start)
	default:
		return token{}, fmt.Errorf("query: unexpected character %q at offset %d", c, start)
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '#' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
