package query

import (
	"sync/atomic"

	"fmt"
	"strings"

	"textjoin/internal/collection"
	"textjoin/internal/core"
	"textjoin/internal/costmodel"
	"textjoin/internal/document"
	"textjoin/internal/invfile"
	"textjoin/internal/lsh"
	"textjoin/internal/relation"
	"textjoin/internal/telemetry"
)

// TextBinding attaches the storage structures of a textual attribute: the
// document collection holding the attribute's values and (optionally) its
// inverted file with B+tree.
type TextBinding struct {
	Collection *collection.Collection
	Inverted   *invfile.InvertedFile
	// LSH is the collection's MinHash sidecar, or nil. When bound on the
	// inner side and the query carries a RECALL SLO, the planner may run
	// the approximate LSH join instead of an exact algorithm.
	LSH *lsh.Sidecar
}

// Catalog maps relation names to relations and textual attributes to
// their bindings.
type Catalog struct {
	relations map[string]*relation.Relation
	bindings  map[string]map[string]TextBinding
}

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		relations: make(map[string]*relation.Relation),
		bindings:  make(map[string]map[string]TextBinding),
	}
}

// Register adds a relation.
func (c *Catalog) Register(rel *relation.Relation) error {
	key := strings.ToLower(rel.Name())
	if _, dup := c.relations[key]; dup {
		return fmt.Errorf("query: relation %q already registered", rel.Name())
	}
	c.relations[key] = rel
	return nil
}

// Relation resolves a relation by name.
func (c *Catalog) Relation(name string) (*relation.Relation, error) {
	rel, ok := c.relations[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("query: unknown relation %q", name)
	}
	return rel, nil
}

// BindText attaches a text binding to relation.column. The column must
// exist and have type Text.
func (c *Catalog) BindText(relName, colName string, b TextBinding) error {
	rel, err := c.Relation(relName)
	if err != nil {
		return err
	}
	idx, err := rel.ColumnIndex(colName)
	if err != nil {
		return err
	}
	if rel.Columns()[idx].Type != relation.Text {
		return fmt.Errorf("query: column %s.%s is not of type text", relName, colName)
	}
	if b.Collection == nil {
		return fmt.Errorf("query: binding for %s.%s has no collection", relName, colName)
	}
	key := strings.ToLower(relName)
	if c.bindings[key] == nil {
		c.bindings[key] = make(map[string]TextBinding)
	}
	c.bindings[key][strings.ToLower(colName)] = b
	return nil
}

// textBinding resolves the binding of relation.column.
func (c *Catalog) textBinding(relName, colName string) (TextBinding, error) {
	b, ok := c.bindings[strings.ToLower(relName)][strings.ToLower(colName)]
	if !ok {
		return TextBinding{}, fmt.Errorf("query: no text binding for %s.%s", relName, colName)
	}
	return b, nil
}

// Options configures query execution.
type Options struct {
	// MemoryPages is the buffer budget B for the join (default 10000).
	MemoryPages int64
	// Force runs a specific algorithm instead of the integrated choice.
	Force *core.Algorithm
	// Weighting selects the similarity function.
	Weighting document.Weighting
	// ExplainOnly plans the query — selection push-down, statistics,
	// cost estimates, algorithm choice — without executing the join.
	// The ResultSet carries the plan (Algorithm, Estimates, Plan) and no
	// rows.
	ExplainOnly bool
	// Telemetry, when non-nil, collects per-phase spans and counters
	// from the join the query executes.
	Telemetry *telemetry.Collector
}

// ResultSet is a query's output plus the planner's explanation.
type ResultSet struct {
	Columns []string
	Rows    [][]string
	// Algorithm actually executed (or chosen, under ExplainOnly).
	Algorithm core.Algorithm
	// Estimates are the integrated algorithm's cost estimates (nil when
	// forced).
	Estimates []costmodel.Estimate
	// JoinStats reports the join's I/O work (nil under ExplainOnly).
	JoinStats *core.Stats
	// Plan describes the chosen strategy in one human-readable line per
	// step (populated under ExplainOnly).
	Plan []string
}

// Engine executes parsed queries against a catalog.
type Engine struct {
	cat *Catalog
}

// NewEngine creates an engine.
func NewEngine(cat *Catalog) *Engine { return &Engine{cat: cat} }

// ExecuteString parses and executes src.
func (e *Engine) ExecuteString(src string, opts Options) (*ResultSet, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return e.Execute(q, opts)
}

// boundTable is one FROM entry resolved against the catalog.
type boundTable struct {
	ref TableRef
	rel *relation.Relation
	// surviving are the row indices passing this table's selections.
	surviving []int
}

// Execute runs a parsed query: push selections down, choose the join
// algorithm by estimated cost, run it, and project the results.
func (e *Engine) Execute(q *Query, opts Options) (*ResultSet, error) {
	// Nil-safe: with no collector attached these are single nil checks.
	opts.Telemetry.Counter("query.statements").Add(1)
	if len(q.From) != 2 {
		return nil, fmt.Errorf("query: exactly two relations required, got %d", len(q.From))
	}
	tables := make(map[string]*boundTable, 2)
	ordered := make([]*boundTable, 0, 2)
	for _, ref := range q.From {
		rel, err := e.cat.Relation(ref.Relation)
		if err != nil {
			return nil, err
		}
		bt := &boundTable{ref: ref, rel: rel}
		key := strings.ToLower(ref.Name())
		if _, dup := tables[key]; dup {
			return nil, fmt.Errorf("query: duplicate table name %q", ref.Name())
		}
		tables[key] = bt
		ordered = append(ordered, bt)
	}

	resolve := func(col ColRef) (*boundTable, int, error) {
		if col.Table != "" {
			bt, ok := tables[strings.ToLower(col.Table)]
			if !ok {
				return nil, 0, fmt.Errorf("query: unknown table %q in %s", col.Table, col)
			}
			idx, err := bt.rel.ColumnIndex(col.Column)
			if err != nil {
				return nil, 0, err
			}
			return bt, idx, nil
		}
		var found *boundTable
		var foundIdx int
		for _, bt := range ordered {
			if idx, err := bt.rel.ColumnIndex(col.Column); err == nil {
				if found != nil {
					return nil, 0, fmt.Errorf("query: ambiguous column %q", col.Column)
				}
				found = bt
				foundIdx = idx
			}
		}
		if found == nil {
			return nil, 0, fmt.Errorf("query: unknown column %q", col.Column)
		}
		return found, foundIdx, nil
	}

	// Locate the textual join.
	sp, err := q.SimilarPredicate()
	if err != nil {
		return nil, err
	}
	innerTable, innerCol, err := resolve(sp.Left)
	if err != nil {
		return nil, err
	}
	outerTable, outerCol, err := resolve(sp.Right)
	if err != nil {
		return nil, err
	}
	if innerTable == outerTable {
		return nil, fmt.Errorf("query: SIMILAR_TO must join two different relations")
	}
	innerBind, err := e.cat.textBinding(innerTable.ref.Relation, innerTable.rel.Columns()[innerCol].Name)
	if err != nil {
		return nil, err
	}
	outerBind, err := e.cat.textBinding(outerTable.ref.Relation, outerTable.rel.Columns()[outerCol].Name)
	if err != nil {
		return nil, err
	}

	// Push selections down (Section 2: evaluate them first so only the
	// surviving documents participate in the join).
	for _, bt := range ordered {
		bt.surviving = allRows(bt.rel)
	}
	for _, p := range q.Where {
		switch pred := p.(type) {
		case *SimilarPred:
			continue
		case *LikePred:
			bt, idx, err := resolve(pred.Col)
			if err != nil {
				return nil, err
			}
			bt.surviving = filterRows(bt.rel, bt.surviving, func(row []relation.Value) bool {
				if row[idx].Kind != relation.String {
					return false
				}
				m := relation.Like(pred.Pattern, row[idx].Str)
				if pred.Negated {
					return !m
				}
				return m
			})
		case *ComparePred:
			bt, idx, err := resolve(pred.Col)
			if err != nil {
				return nil, err
			}
			lit := relation.StringValue(pred.Lit.Str)
			if !pred.Lit.IsString {
				lit = relation.IntValue(pred.Lit.Int)
			}
			var evalErr error
			bt.surviving = filterRows(bt.rel, bt.surviving, func(row []relation.Value) bool {
				ok, err := relation.Compare(row[idx], pred.Op, lit)
				if err != nil && evalErr == nil {
					evalErr = err
				}
				return ok
			})
			if evalErr != nil {
				return nil, evalErr
			}
		default:
			return nil, fmt.Errorf("query: unsupported predicate %T", p)
		}
	}

	// Build the join inputs. The outer side becomes a Subset when a
	// selection reduced it; the inner side, if reduced, is materialized
	// as an originally-small collection (the paper's Group 4 shape) with
	// a fresh inverted file.
	in := core.Inputs{Inner: innerBind.Collection, InnerInv: innerBind.Inverted, OuterInv: outerBind.Inverted}
	outerDocOf := outerTable.rel.DocIndex(outerCol)
	innerDocRow := innerTable.rel.DocIndex(innerCol)

	if len(outerTable.surviving) == outerTable.rel.NumRows() {
		in.Outer = outerBind.Collection
	} else {
		ids := make([]uint32, 0, len(outerTable.surviving))
		for _, rowIdx := range outerTable.surviving {
			v := outerTable.rel.Row(rowIdx)[outerCol]
			ids = append(ids, v.Doc)
		}
		sub, err := outerBind.Collection.Subset(ids)
		if err != nil {
			return nil, err
		}
		in.Outer = sub
	}

	innerIDMap := identityMap(innerBind.Collection.NumDocs())
	if len(innerTable.surviving) != innerTable.rel.NumRows() {
		reduced, idMap, err := materializeInner(innerBind, innerTable, innerCol)
		if err != nil {
			return nil, err
		}
		in.Inner = reduced.coll
		in.InnerInv = reduced.inv
		innerIDMap = idMap
	}

	// Choose and run. The RECALL SLO only reaches the planner when the
	// bound sidecar still describes the join's actual inner side: a
	// selection-materialized inner is a different collection, whose band
	// keys the sidecar does not cover.
	jopts := core.Options{
		Lambda:      sp.Lambda,
		MemoryPages: opts.MemoryPages,
		Weighting:   opts.Weighting,
		Telemetry:   opts.Telemetry,
	}
	if innerBind.LSH != nil && in.Inner == innerBind.Collection {
		jopts.LSH = innerBind.LSH
		jopts.RecallSLO = sp.Recall
	}
	rs := &ResultSet{}
	if opts.ExplainOnly {
		dec, err := core.Choose(in, jopts)
		if err != nil {
			return nil, err
		}
		if opts.Force != nil {
			dec.Chosen = *opts.Force
		}
		rs.Algorithm = dec.Chosen
		rs.Estimates = dec.Estimates
		rs.Plan = append(rs.Plan,
			fmt.Sprintf("textual join: %s SIMILAR_TO(%d) %s", sp.Left, sp.Lambda, sp.Right))
		rs.Plan = append(rs.Plan,
			fmt.Sprintf("outer %s: %d of %d documents after selections",
				outerTable.ref.Name(), len(outerTable.surviving), outerTable.rel.NumRows()))
		rs.Plan = append(rs.Plan,
			fmt.Sprintf("inner %s: %d of %d documents after selections",
				innerTable.ref.Name(), len(innerTable.surviving), innerTable.rel.NumRows()))
		for _, e := range dec.Estimates {
			rs.Plan = append(rs.Plan,
				fmt.Sprintf("estimate %v: seq=%.0f rand=%.0f", e.Algorithm, e.Seq, e.Rand))
		}
		if sp.Recall > 0 {
			rs.Plan = append(rs.Plan,
				fmt.Sprintf("recall SLO %.3g: estimated recall %.3g", sp.Recall, dec.EstimatedRecall))
		}
		rs.Plan = append(rs.Plan, fmt.Sprintf("chosen: %v", dec.Chosen))
		opts.Telemetry.Counter("query.explains").Add(1)
		return rs, nil
	}
	var results []core.Result
	var stats *core.Stats
	if opts.Force != nil {
		rs.Algorithm = *opts.Force
		results, stats, err = core.Join(rs.Algorithm, in, jopts)
	} else {
		var dec core.Decision
		results, stats, dec, err = core.JoinIntegrated(in, jopts)
		rs.Algorithm = dec.Chosen
		rs.Estimates = dec.Estimates
	}
	if err != nil {
		return nil, err
	}
	rs.JoinStats = stats

	// Project.
	type outCol struct {
		bt  *boundTable
		idx int
	}
	var cols []outCol
	for _, c := range q.Select {
		bt, idx, err := resolve(c)
		if err != nil {
			return nil, err
		}
		cols = append(cols, outCol{bt, idx})
		rs.Columns = append(rs.Columns, c.String())
	}
	rs.Columns = append(rs.Columns, "similarity")

	for _, res := range results {
		outerRow, ok := outerDocOf[res.Outer]
		if !ok {
			return nil, fmt.Errorf("query: result references unknown outer document %d", res.Outer)
		}
		for _, m := range res.Matches {
			origInner := innerIDMap[m.Doc]
			innerRow, ok := innerDocRow[origInner]
			if !ok {
				return nil, fmt.Errorf("query: result references unknown inner document %d", origInner)
			}
			row := make([]string, 0, len(cols)+1)
			for _, c := range cols {
				var v relation.Value
				switch c.bt {
				case outerTable:
					v = outerTable.rel.Row(outerRow)[c.idx]
				case innerTable:
					v = innerTable.rel.Row(innerRow)[c.idx]
				}
				row = append(row, v.Format())
			}
			row = append(row, fmt.Sprintf("%.4g", m.Sim))
			rs.Rows = append(rs.Rows, row)
		}
	}
	opts.Telemetry.Counter("query.rows").Add(int64(len(rs.Rows)))
	return rs, nil
}

func allRows(rel *relation.Relation) []int {
	out := make([]int, rel.NumRows())
	for i := range out {
		out[i] = i
	}
	return out
}

func filterRows(rel *relation.Relation, rows []int, pred func([]relation.Value) bool) []int {
	out := rows[:0]
	for _, i := range rows {
		if pred(rel.Row(i)) {
			out = append(out, i)
		}
	}
	return out
}

func identityMap(n int64) []uint32 {
	m := make([]uint32, n)
	for i := range m {
		m[i] = uint32(i)
	}
	return m
}

// materializedInner is a reduced inner collection with its fresh inverted
// file.
type materializedInner struct {
	coll *collection.Collection
	inv  *invfile.InvertedFile
}

// materializeSeq disambiguates temp-file names when several queries
// materialize selections of the same collection (atomic: engines may be
// shared across goroutines).
var materializeSeq atomic.Int64

// materializeInner copies the inner documents surviving a selection into
// an originally small collection (the paper's Group 4 shape) and builds
// its inverted file, so the join's λ candidates come only from selected
// documents.
func materializeInner(bind TextBinding, bt *boundTable, col int) (materializedInner, []uint32, error) {
	ids := make([]uint32, 0, len(bt.surviving))
	for _, rowIdx := range bt.surviving {
		ids = append(ids, bt.rel.Row(rowIdx)[col].Doc)
	}
	sub, err := bind.Collection.Subset(ids)
	if err != nil {
		return materializedInner{}, nil, err
	}
	disk := bind.Collection.File().Disk()
	prefix := fmt.Sprintf("%s.sel%d", bind.Collection.Name(), materializeSeq.Add(1))
	cf, err := disk.Create(prefix + ".docs")
	if err != nil {
		return materializedInner{}, nil, err
	}
	coll, idMap, err := collection.Materialize(prefix, cf, sub)
	if err != nil {
		return materializedInner{}, nil, err
	}
	ef, err := disk.Create(prefix + ".inv")
	if err != nil {
		return materializedInner{}, nil, err
	}
	tf, err := disk.Create(prefix + ".bt")
	if err != nil {
		return materializedInner{}, nil, err
	}
	inv, err := invfile.Build(coll, ef, tf)
	if err != nil {
		return materializedInner{}, nil, err
	}
	return materializedInner{coll: coll, inv: inv}, idMap, nil
}
