package query

import (
	"strings"
	"testing"
)

// FuzzParse asserts the parser never panics and that accepted queries
// satisfy basic well-formedness invariants. Run with `go test -fuzz
// FuzzParse ./internal/query` for continuous fuzzing; the seed corpus runs
// on every plain `go test`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`select a.x from r1 a, r2 b where a.t similar_to(3) b.t`,
		`Select P.P#, P.Title From Positions P, Applicants A Where P.Title like "%Engineer%" and A.Resume SIMILAR_TO(20) P.Job_descr`,
		`select x from r1, r2 where a = 'it''s' and t similar_to(1) u`,
		`select x from r1, r2 where a <> 5 and t similar_to(1) u`,
		`select x from r1, r2 where a not like '%y%' and t similar_to(1) u`,
		"select\tx\nfrom r1, r2 where t similar_to(1) u",
		`%%%`,
		`select`,
		``,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if len(q.Select) == 0 || len(q.From) == 0 || len(q.Where) == 0 {
			t.Fatalf("accepted malformed query %q -> %+v", src, q)
		}
		for _, ref := range q.From {
			if ref.Relation == "" {
				t.Fatalf("empty relation in %q", src)
			}
			if reserved[strings.ToLower(ref.Relation)] {
				t.Fatalf("reserved word as relation in %q", src)
			}
		}
	})
}
