package query

import (
	"strings"
	"testing"

	"textjoin/internal/collection"
	"textjoin/internal/core"
	"textjoin/internal/invfile"
	"textjoin/internal/iosim"
	"textjoin/internal/relation"
	"textjoin/internal/telemetry"
	"textjoin/internal/termmap"
	"textjoin/internal/tokenize"
)

// jobEnv builds the motivating example: Positions and Applicants with
// textual attributes over real tokenized text.
type jobEnv struct {
	cat    *Catalog
	engine *Engine
}

var positionTexts = []string{
	"design and build distributed database systems in go",
	"maintain legacy payroll software and reports",
	"research information retrieval and text indexing engines",
	"manage a team of hardware engineers",
}

var positionTitles = []string{
	"Database Engineer", "Payroll Clerk", "Search Engineer", "Engineering Manager",
}

var applicantTexts = []string{
	"experienced database engineer distributed systems go postgres",
	"payroll administration and report writing for enterprises",
	"text retrieval indexing search engines information systems",
	"hardware team management leadership",
	"go systems programming databases indexing",
}

var applicantNames = []string{"Ada", "Bob", "Cara", "Dan", "Eve"}

func buildJobEnv(t *testing.T) *jobEnv {
	t.Helper()
	d := iosim.NewDisk(iosim.WithPageSize(256))
	dict := termmap.NewDictionary()
	tok := tokenize.New(dict, tokenize.Options{})

	build := func(name string, texts []string) (*collection.Collection, *invfile.InvertedFile) {
		f, err := d.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := collection.NewBuilder(name, f)
		if err != nil {
			t.Fatal(err)
		}
		for i, text := range texts {
			doc, err := tok.Document(uint32(i), text)
			if err != nil {
				t.Fatal(err)
			}
			if err := b.Add(doc); err != nil {
				t.Fatal(err)
			}
		}
		c, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		ef, _ := d.Create(name + ".inv")
		tf, _ := d.Create(name + ".bt")
		inv, err := invfile.Build(c, ef, tf)
		if err != nil {
			t.Fatal(err)
		}
		return c, inv
	}

	resumes, resumesInv := build("resumes", applicantTexts)
	descrs, descrsInv := build("descrs", positionTexts)

	positions, err := relation.New("Positions", []relation.Column{
		{Name: "P#", Type: relation.Int},
		{Name: "Title", Type: relation.String},
		{Name: "Job_descr", Type: relation.Text},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, title := range positionTitles {
		if err := positions.Insert(relation.IntValue(int64(i+1)), relation.StringValue(title), relation.TextValue(uint32(i))); err != nil {
			t.Fatal(err)
		}
	}
	applicants, err := relation.New("Applicants", []relation.Column{
		{Name: "SSN", Type: relation.Int},
		{Name: "Name", Type: relation.String},
		{Name: "Resume", Type: relation.Text},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range applicantNames {
		if err := applicants.Insert(relation.IntValue(int64(1000+i)), relation.StringValue(name), relation.TextValue(uint32(i))); err != nil {
			t.Fatal(err)
		}
	}

	cat := NewCatalog()
	if err := cat.Register(positions); err != nil {
		t.Fatal(err)
	}
	if err := cat.Register(applicants); err != nil {
		t.Fatal(err)
	}
	if err := cat.BindText("Positions", "Job_descr", TextBinding{Collection: descrs, Inverted: descrsInv}); err != nil {
		t.Fatal(err)
	}
	if err := cat.BindText("Applicants", "Resume", TextBinding{Collection: resumes, Inverted: resumesInv}); err != nil {
		t.Fatal(err)
	}
	return &jobEnv{cat: cat, engine: NewEngine(cat)}
}

func TestCatalogValidation(t *testing.T) {
	e := buildJobEnv(t)
	pos, _ := e.cat.Relation("positions")
	if err := e.cat.Register(pos); err == nil {
		t.Error("duplicate Register: want error")
	}
	if _, err := e.cat.Relation("nope"); err == nil {
		t.Error("unknown relation: want error")
	}
	if err := e.cat.BindText("Positions", "Title", TextBinding{}); err == nil {
		t.Error("binding non-text column: want error")
	}
	if err := e.cat.BindText("Positions", "Job_descr", TextBinding{}); err == nil {
		t.Error("binding without collection: want error")
	}
	if err := e.cat.BindText("Nope", "x", TextBinding{}); err == nil {
		t.Error("binding unknown relation: want error")
	}
}

func TestExecuteMotivatingExample(t *testing.T) {
	e := buildJobEnv(t)
	rs, err := e.engine.ExecuteString(`
		Select P.P#, P.Title, A.SSN, A.Name
		From Positions P, Applicants A
		Where A.Resume SIMILAR_TO(2) P.Job_descr`, Options{MemoryPages: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Columns) != 5 || rs.Columns[4] != "similarity" {
		t.Fatalf("columns = %v", rs.Columns)
	}
	// Every position gets up to 2 applicants.
	if len(rs.Rows) == 0 || len(rs.Rows) > 8 {
		t.Fatalf("rows = %d", len(rs.Rows))
	}
	// The database position's best match should be Ada (shares
	// database/engineer/distributed/systems/go).
	foundAda := false
	for _, row := range rs.Rows {
		if row[1] == "Database Engineer" && row[3] == "Ada" {
			foundAda = true
		}
	}
	if !foundAda {
		t.Errorf("Ada not matched to Database Engineer: %v", rs.Rows)
	}
	if rs.JoinStats == nil || rs.Estimates == nil {
		t.Error("missing stats or estimates")
	}
}

func TestExecuteWithSelectionOnOuter(t *testing.T) {
	e := buildJobEnv(t)
	rs, err := e.engine.ExecuteString(`
		Select P.Title, A.Name
		From Positions P, Applicants A
		Where P.Title like "%Engineer%" and A.Resume SIMILAR_TO(1) P.Job_descr`,
		Options{MemoryPages: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Three titles contain "Engineer"; each gets its single best match.
	if len(rs.Rows) != 3 {
		t.Fatalf("rows = %v", rs.Rows)
	}
	for _, row := range rs.Rows {
		if !strings.Contains(row[0], "Engineer") {
			t.Errorf("selection leaked: %v", row)
		}
	}
}

func TestExecuteWithSelectionOnInner(t *testing.T) {
	e := buildJobEnv(t)
	// Only applicants with SSN >= 1002 participate as match candidates.
	rs, err := e.engine.ExecuteString(`
		Select P.Title, A.Name, A.SSN
		From Positions P, Applicants A
		Where A.SSN >= 1002 and A.Resume SIMILAR_TO(1) P.Job_descr`,
		Options{MemoryPages: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range rs.Rows {
		if row[1] == "Ada" || row[1] == "Bob" {
			t.Errorf("excluded applicant matched: %v", row)
		}
	}
}

func TestExecuteForcedAlgorithms(t *testing.T) {
	e := buildJobEnv(t)
	src := `Select P.Title, A.Name From Positions P, Applicants A
		Where A.Resume SIMILAR_TO(2) P.Job_descr`
	var baseline *ResultSet
	for _, alg := range []core.Algorithm{core.HHNL, core.HVNL, core.VVM} {
		a := alg
		rs, err := e.engine.ExecuteString(src, Options{MemoryPages: 100, Force: &a})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if rs.Algorithm != alg {
			t.Errorf("ran %v, want %v", rs.Algorithm, alg)
		}
		if baseline == nil {
			baseline = rs
			continue
		}
		if len(rs.Rows) != len(baseline.Rows) {
			t.Fatalf("%v: %d rows vs %d", alg, len(rs.Rows), len(baseline.Rows))
		}
		for i := range rs.Rows {
			for j := range rs.Rows[i] {
				if rs.Rows[i][j] != baseline.Rows[i][j] {
					t.Errorf("%v row %d col %d: %q vs %q", alg, i, j, rs.Rows[i][j], baseline.Rows[i][j])
				}
			}
		}
	}
}

func TestExecuteErrors(t *testing.T) {
	e := buildJobEnv(t)
	cases := []string{
		// one table
		`select a.Name from Applicants a where a.Resume similar_to(1) a.Resume`,
		// unknown relation
		`select a.Name from Applicants a, Ghosts g where a.Resume similar_to(1) g.T`,
		// unknown column
		`select a.Nope from Applicants a, Positions p where a.Resume similar_to(1) p.Job_descr`,
		// unknown table alias in colref
		`select z.Name from Applicants a, Positions p where a.Resume similar_to(1) p.Job_descr`,
		// no similar_to
		`select a.Name from Applicants a, Positions p where a.SSN = 1`,
		// similar over non-bound column
		`select a.Name from Applicants a, Positions p where a.Name similar_to(1) p.Job_descr`,
		// ambiguous unqualified column would need identical names; use duplicate table
		`select a.Name from Applicants a, Applicants a where a.Resume similar_to(1) a.Resume`,
	}
	for _, src := range cases {
		if _, err := e.engine.ExecuteString(src, Options{MemoryPages: 100}); err == nil {
			t.Errorf("ExecuteString(%q): want error", src)
		}
	}
}

func TestExplainOnly(t *testing.T) {
	e := buildJobEnv(t)
	rs, err := e.engine.ExecuteString(`
		Select P.Title, A.Name
		From Positions P, Applicants A
		Where P.Title like "%Engineer%" and A.Resume SIMILAR_TO(2) P.Job_descr`,
		Options{MemoryPages: 100, ExplainOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 0 {
		t.Errorf("explain returned rows: %v", rs.Rows)
	}
	if rs.JoinStats != nil {
		t.Error("explain ran the join")
	}
	if len(rs.Estimates) != 3 || len(rs.Plan) < 5 {
		t.Fatalf("estimates=%d plan=%v", len(rs.Estimates), rs.Plan)
	}
	joined := strings.Join(rs.Plan, "\n")
	if !strings.Contains(joined, "3 of 4 documents") {
		t.Errorf("plan missing outer selection info:\n%s", joined)
	}
	if !strings.Contains(joined, "chosen:") {
		t.Errorf("plan missing choice:\n%s", joined)
	}
	// Forced algorithm shows up in the plan result.
	forced := core.VVM
	rs2, err := e.engine.ExecuteString(`
		Select P.Title From Positions P, Applicants A
		Where A.Resume SIMILAR_TO(1) P.Job_descr`,
		Options{MemoryPages: 100, ExplainOnly: true, Force: &forced})
	if err != nil {
		t.Fatal(err)
	}
	if rs2.Algorithm != core.VVM {
		t.Errorf("forced explain algorithm = %v", rs2.Algorithm)
	}
}

func TestExecuteSelectionLeavesNothing(t *testing.T) {
	e := buildJobEnv(t)
	rs, err := e.engine.ExecuteString(`
		Select P.Title, A.Name
		From Positions P, Applicants A
		Where P.Title like "%Astronaut%" and A.Resume SIMILAR_TO(1) P.Job_descr`,
		Options{MemoryPages: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 0 {
		t.Errorf("rows = %v, want none", rs.Rows)
	}
}

func TestExecuteSelectionOnBothSides(t *testing.T) {
	e := buildJobEnv(t)
	rs, err := e.engine.ExecuteString(`
		Select P.Title, A.Name
		From Positions P, Applicants A
		Where P.Title like "%Engineer%" and A.SSN <> 1000
		  and A.Resume SIMILAR_TO(1) P.Job_descr`,
		Options{MemoryPages: 100})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rs.Rows {
		if !strings.Contains(row[0], "Engineer") {
			t.Errorf("outer selection leaked: %v", row)
		}
		if row[1] == "Ada" {
			t.Errorf("inner selection leaked: %v", row)
		}
	}
	if len(rs.Rows) == 0 {
		t.Error("no rows at all")
	}
}

func TestExecuteNotLike(t *testing.T) {
	e := buildJobEnv(t)
	rs, err := e.engine.ExecuteString(`
		Select P.Title, A.Name
		From Positions P, Applicants A
		Where P.Title not like "%Engineer%" and A.Resume SIMILAR_TO(1) P.Job_descr`,
		Options{MemoryPages: 100})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rs.Rows {
		if strings.Contains(row[0], "Engineer") {
			t.Errorf("NOT LIKE leaked: %v", row)
		}
	}
}

func TestExecuteUnqualifiedAndAmbiguous(t *testing.T) {
	e := buildJobEnv(t)
	// Unqualified unique columns resolve fine.
	rs, err := e.engine.ExecuteString(`
		select Title, Name from Positions, Applicants
		where Resume similar_to(1) Job_descr`, Options{MemoryPages: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) == 0 {
		t.Error("no rows")
	}
}

func TestExecuteTelemetryCounters(t *testing.T) {
	e := buildJobEnv(t)
	tel := telemetry.New()
	opts := Options{MemoryPages: 100, Telemetry: tel}
	rs, err := e.engine.ExecuteString(`
		Select P.Title, A.Name
		From Positions P, Applicants A
		Where A.Resume SIMILAR_TO(1) P.Job_descr`, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.ExplainOnly = true
	if _, err := e.engine.ExecuteString(`
		Select P.Title From Positions P, Applicants A
		Where A.Resume SIMILAR_TO(1) P.Job_descr`, opts); err != nil {
		t.Fatal(err)
	}

	s := tel.Snapshot()
	counters := map[string]int64{}
	for _, c := range s.Counters {
		counters[c.Name] = c.Value
	}
	if counters["query.statements"] != 2 {
		t.Errorf("query.statements = %d, want 2", counters["query.statements"])
	}
	if counters["query.explains"] != 1 {
		t.Errorf("query.explains = %d, want 1", counters["query.explains"])
	}
	if counters["query.rows"] != int64(len(rs.Rows)) {
		t.Errorf("query.rows = %d, want %d", counters["query.rows"], len(rs.Rows))
	}

	// A nil collector must stay nil-safe end to end.
	if _, err := e.engine.ExecuteString(`
		Select P.Title From Positions P, Applicants A
		Where A.Resume SIMILAR_TO(1) P.Job_descr`, Options{MemoryPages: 100}); err != nil {
		t.Fatal(err)
	}
}
