package query

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses one extended-SQL SELECT statement.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("query: trailing input at %s", p.peek())
	}
	return q, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

// keyword consumes an identifier matching kw case-insensitively.
func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return fmt.Errorf("query: expected %s, found %s", strings.ToUpper(kw), p.peek())
	}
	return nil
}

func (p *parser) expectPunct(s string) error {
	t := p.peek()
	if t.kind == tokPunct && t.text == s {
		p.advance()
		return nil
	}
	return fmt.Errorf("query: expected %q, found %s", s, t)
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	q := &Query{}
	for {
		col, err := p.parseColRef()
		if err != nil {
			return nil, err
		}
		q.Select = append(q.Select, col)
		if p.peek().kind == tokPunct && p.peek().text == "," {
			p.advance()
			continue
		}
		break
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	for {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		q.From = append(q.From, ref)
		if p.peek().kind == tokPunct && p.peek().text == "," {
			p.advance()
			continue
		}
		break
	}
	if err := p.expectKeyword("where"); err != nil {
		return nil, err
	}
	for {
		pred, err := p.parsePredicate()
		if err != nil {
			return nil, err
		}
		q.Where = append(q.Where, pred)
		if p.keyword("and") {
			continue
		}
		break
	}
	return q, nil
}

var reserved = map[string]bool{
	"select": true, "from": true, "where": true, "and": true,
	"like": true, "not": true, "similar_to": true,
}

func (p *parser) parseIdent() (string, error) {
	t := p.peek()
	if t.kind != tokIdent || reserved[strings.ToLower(t.text)] {
		return "", fmt.Errorf("query: expected identifier, found %s", t)
	}
	p.advance()
	return t.text, nil
}

func (p *parser) parseColRef() (ColRef, error) {
	first, err := p.parseIdent()
	if err != nil {
		return ColRef{}, err
	}
	if p.peek().kind == tokPunct && p.peek().text == "." {
		p.advance()
		second, err := p.parseIdent()
		if err != nil {
			return ColRef{}, err
		}
		return ColRef{Table: first, Column: second}, nil
	}
	return ColRef{Column: first}, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	name, err := p.parseIdent()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Relation: name}
	// Optional alias: a bare identifier that is not a keyword.
	if t := p.peek(); t.kind == tokIdent && !reserved[strings.ToLower(t.text)] {
		ref.Alias = t.text
		p.advance()
	}
	return ref, nil
}

func (p *parser) parsePredicate() (Predicate, error) {
	col, err := p.parseColRef()
	if err != nil {
		return nil, err
	}
	switch {
	case p.keyword("not"):
		if err := p.expectKeyword("like"); err != nil {
			return nil, err
		}
		pat, err := p.parseString()
		if err != nil {
			return nil, err
		}
		return &LikePred{Col: col, Pattern: pat, Negated: true}, nil
	case p.keyword("like"):
		pat, err := p.parseString()
		if err != nil {
			return nil, err
		}
		return &LikePred{Col: col, Pattern: pat}, nil
	case p.keyword("similar_to"):
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		t := p.peek()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("query: SIMILAR_TO expects a numeric λ, found %s", t)
		}
		p.advance()
		lambda, err := strconv.Atoi(t.text)
		if err != nil || lambda <= 0 {
			return nil, fmt.Errorf("query: invalid λ %q", t.text)
		}
		var recall float64
		if p.peek().kind == tokPunct && p.peek().text == "," {
			p.advance()
			if err := p.expectKeyword("recall"); err != nil {
				return nil, err
			}
			recall, err = p.parseDecimal()
			if err != nil {
				return nil, err
			}
			if recall <= 0 || recall > 1 {
				return nil, fmt.Errorf("query: RECALL must be in (0, 1], got %v", recall)
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		right, err := p.parseColRef()
		if err != nil {
			return nil, err
		}
		return &SimilarPred{Left: col, Lambda: lambda, Right: right, Recall: recall}, nil
	case p.peek().kind == tokOp:
		op := p.advance().text
		lit, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return &ComparePred{Col: col, Op: op, Lit: lit}, nil
	default:
		return nil, fmt.Errorf("query: expected predicate operator after %s, found %s", col, p.peek())
	}
}

// parseDecimal parses a decimal number from the integer-only lexer's
// tokens: a number, optionally followed by "." and a fraction number,
// recomposed textually so 0.95 parses exactly.
func (p *parser) parseDecimal() (float64, error) {
	t := p.peek()
	if t.kind != tokNumber {
		return 0, fmt.Errorf("query: expected a number, found %s", t)
	}
	p.advance()
	text := t.text
	if p.peek().kind == tokPunct && p.peek().text == "." {
		p.advance()
		frac := p.peek()
		if frac.kind != tokNumber {
			return 0, fmt.Errorf("query: expected digits after %q., found %s", text, frac)
		}
		p.advance()
		text = text + "." + frac.text
	}
	v, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return 0, fmt.Errorf("query: bad number %q: %v", text, err)
	}
	return v, nil
}

func (p *parser) parseString() (string, error) {
	t := p.peek()
	if t.kind != tokString {
		return "", fmt.Errorf("query: expected string literal, found %s", t)
	}
	p.advance()
	return t.text, nil
}

func (p *parser) parseLiteral() (Literal, error) {
	t := p.peek()
	switch t.kind {
	case tokString:
		p.advance()
		return Literal{IsString: true, Str: t.text}, nil
	case tokNumber:
		p.advance()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return Literal{}, fmt.Errorf("query: bad number %q: %v", t.text, err)
		}
		return Literal{Int: n}, nil
	default:
		return Literal{}, fmt.Errorf("query: expected literal, found %s", t)
	}
}
