// Package query implements the extended-SQL front end of the paper's
// motivating example: a lexer, parser, cost-based planner and executor for
// queries of the form
//
//	SELECT R1.X1, R2.Y2
//	FROM R1, R2
//	WHERE R1.C1 SIMILAR_TO(λ) R2.C2 [AND selections...]
//
// Selections on non-textual attributes are pushed down before the textual
// join, shrinking the participating document sets; the planner then runs
// the paper's integrated algorithm — estimate the cost of HHNL, HVNL and
// VVM from the (possibly reduced) collection statistics and execute the
// cheapest.
package query

import "fmt"

// ColRef names a column, optionally qualified by a table alias.
type ColRef struct {
	Table  string // alias or relation name; empty when unqualified
	Column string
}

func (c ColRef) String() string {
	if c.Table == "" {
		return c.Column
	}
	return c.Table + "." + c.Column
}

// TableRef names a relation with an optional alias.
type TableRef struct {
	Relation string
	Alias    string
}

// Name returns the name the table is addressed by in the query.
func (t TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Relation
}

// Literal is a string or integer constant.
type Literal struct {
	IsString bool
	Str      string
	Int      int64
}

func (l Literal) String() string {
	if l.IsString {
		return fmt.Sprintf("%q", l.Str)
	}
	return fmt.Sprintf("%d", l.Int)
}

// Predicate is one conjunct of the WHERE clause.
type Predicate interface{ predicate() }

// LikePred is `col LIKE "pattern"`.
type LikePred struct {
	Col     ColRef
	Pattern string
	// Negated marks NOT LIKE.
	Negated bool
}

// ComparePred is `col op literal` with op ∈ {=, <>, <, <=, >, >=}.
type ComparePred struct {
	Col ColRef
	Op  string
	Lit Literal
}

// SimilarPred is `left SIMILAR_TO(λ [, RECALL r]) right`: find, for
// each document of the right (outer) attribute, the λ most similar
// documents of the left (inner) attribute — the paper's asymmetric
// semantics. The optional RECALL knob sets a recall SLO in (0, 1],
// letting the planner substitute the approximate LSH join when its
// estimated recall meets the SLO and its estimated cost beats every
// exact plan; Recall 0 (absent) and 1 both demand exact results.
type SimilarPred struct {
	Left   ColRef
	Lambda int
	Right  ColRef
	Recall float64
}

func (LikePred) predicate()    {}
func (ComparePred) predicate() {}
func (SimilarPred) predicate() {}

// Query is a parsed SELECT statement.
type Query struct {
	Select []ColRef
	From   []TableRef
	Where  []Predicate
}

// SimilarPredicate returns the query's textual-join predicate, or an error
// when there is none or more than one.
func (q *Query) SimilarPredicate() (*SimilarPred, error) {
	var found *SimilarPred
	for _, p := range q.Where {
		if sp, ok := p.(*SimilarPred); ok {
			if found != nil {
				return nil, fmt.Errorf("query: multiple SIMILAR_TO predicates are not supported")
			}
			found = sp
		}
	}
	if found == nil {
		return nil, fmt.Errorf("query: no SIMILAR_TO predicate")
	}
	return found, nil
}
