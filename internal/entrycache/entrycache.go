// Package entrycache implements HVNL's memory-budgeted cache of inverted
// file entries.
//
// "To reduce the I/O cost, inverted file entries that are read in for
// processing earlier documents are kept in the memory to process later
// documents. ... Our replacement policy chooses the inverted file entry
// whose corresponding term has the lowest frequency in C2 to replace. This
// reduces the possibility of the replaced inverted file entry to be reused
// in the future."
//
// The cache is byte-budgeted (the paper reasons in pages of entries; bytes
// are the exact equivalent) and supports two replacement policies: the
// paper's minimum-outer-document-frequency policy and plain LRU, kept for
// the ablation benchmark.
package entrycache

import (
	"container/heap"
	"fmt"

	"textjoin/internal/invfile"
	"textjoin/internal/telemetry"
)

// Policy selects the replacement victim.
type Policy int

const (
	// MinOuterDF evicts the entry whose term has the lowest document
	// frequency in the outer collection — the paper's policy.
	MinOuterDF Policy = iota
	// LRU evicts the least recently used entry (ablation baseline).
	LRU
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case MinOuterDF:
		return "min-outer-df"
	case LRU:
		return "lru"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Stats reports cache effectiveness.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Rejected  int64 // entries larger than the whole budget, never cached
}

// HitRate returns hits / (hits + misses), 0 when no lookups happened.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type item struct {
	term  uint32
	entry *invfile.Entry
	size  int64
	// key orders the eviction heap: the fixed outer document frequency
	// under MinOuterDF, the last-access tick under LRU. Lower = evicted
	// first.
	key int64
	// idx is the item's position in the heap, maintained by the heap
	// interface methods.
	idx int
}

// Cache is a byte-budgeted inverted-file entry cache. It is not safe for
// concurrent use; a join runs single-threaded over its own cache.
type Cache struct {
	policy   Policy
	budget   int64
	used     int64
	priority func(term uint32) int64
	items    map[uint32]*item
	heap     evictHeap
	clock    int64
	stats    Stats

	// Telemetry counters keyed by policy name, resolved once by
	// SetTelemetry; nil (no-op) when telemetry is disabled.
	telHits      *telemetry.Counter
	telMisses    *telemetry.Counter
	telEvictions *telemetry.Counter
	telRejected  *telemetry.Counter
}

// New creates a cache with the given byte budget. priority returns the
// eviction key for a term under MinOuterDF (the term's document frequency
// in the outer collection); it may be nil for LRU.
func New(budget int64, policy Policy, priority func(uint32) int64) *Cache {
	if policy == MinOuterDF && priority == nil {
		panic("entrycache: MinOuterDF policy requires a priority function")
	}
	return &Cache{
		policy:   policy,
		budget:   budget,
		priority: priority,
		items:    make(map[uint32]*item),
	}
}

// SetTelemetry attaches live hit/miss/eviction counters, named by the
// cache's policy ("cache.<policy>.hits" etc.) so ablation runs comparing
// policies stay distinguishable in one snapshot. A nil collector is a
// no-op: the cache keeps its own Stats either way.
func (c *Cache) SetTelemetry(t *telemetry.Collector) {
	if t == nil {
		return
	}
	p := c.policy.String()
	c.telHits = t.Counter("cache." + p + ".hits")
	c.telMisses = t.Counter("cache." + p + ".misses")
	c.telEvictions = t.Counter("cache." + p + ".evictions")
	c.telRejected = t.Counter("cache." + p + ".rejected")
}

// Budget returns the byte budget.
func (c *Cache) Budget() int64 { return c.budget }

// Used returns the bytes currently held.
func (c *Cache) Used() int64 { return c.used }

// Len returns the number of cached entries.
func (c *Cache) Len() int { return len(c.items) }

// Stats returns the hit/miss/eviction counters.
func (c *Cache) Stats() Stats { return c.stats }

// Contains reports whether term is cached, without counting a lookup and
// without touching LRU recency. HVNL uses it to order a document's terms
// so that cached entries are consumed first ("terms in d1 whose
// corresponding inverted file entries are already in the memory are
// considered first").
func (c *Cache) Contains(term uint32) bool {
	_, ok := c.items[term]
	return ok
}

// Get returns the cached entry for term, counting a hit or miss and (under
// LRU) refreshing recency.
func (c *Cache) Get(term uint32) (*invfile.Entry, bool) {
	it, ok := c.items[term]
	if !ok {
		c.stats.Misses++
		c.telMisses.Add(1)
		return nil, false
	}
	c.stats.Hits++
	c.telHits.Add(1)
	if c.policy == LRU {
		c.clock++
		it.key = c.clock
		heap.Fix(&c.heap, it.idx)
	}
	return it.entry, true
}

// Put inserts an entry of the given byte size, evicting victims until it
// fits. Entries larger than the whole budget are not cached (the caller
// still holds the fetched entry for the current document). Re-inserting a
// cached term replaces the old copy. It returns the evicted terms, in
// eviction order.
func (c *Cache) Put(term uint32, entry *invfile.Entry, size int64) []uint32 {
	if old, ok := c.items[term]; ok {
		c.removeItem(old)
	}
	if size > c.budget {
		c.stats.Rejected++
		c.telRejected.Add(1)
		return nil
	}
	var evicted []uint32
	for c.used+size > c.budget {
		victim := c.heap.items[0]
		c.removeItem(victim)
		c.stats.Evictions++
		c.telEvictions.Add(1)
		evicted = append(evicted, victim.term)
	}
	it := &item{term: term, entry: entry, size: size}
	switch c.policy {
	case MinOuterDF:
		it.key = c.priority(term)
	case LRU:
		c.clock++
		it.key = c.clock
	}
	c.items[term] = it
	heap.Push(&c.heap, it)
	c.used += size
	return evicted
}

// Remove drops term from the cache if present.
func (c *Cache) Remove(term uint32) {
	if it, ok := c.items[term]; ok {
		c.removeItem(it)
	}
}

// Terms returns the cached terms in unspecified order.
func (c *Cache) Terms() []uint32 {
	out := make([]uint32, 0, len(c.items))
	for t := range c.items {
		out = append(out, t)
	}
	return out
}

func (c *Cache) removeItem(it *item) {
	heap.Remove(&c.heap, it.idx)
	delete(c.items, it.term)
	c.used -= it.size
}

// evictHeap is a min-heap over item.key with index maintenance.
type evictHeap struct {
	items []*item
}

func (h evictHeap) Len() int { return len(h.items) }

func (h evictHeap) Less(i, j int) bool {
	if h.items[i].key != h.items[j].key {
		return h.items[i].key < h.items[j].key
	}
	// Deterministic tie-break by term number.
	return h.items[i].term < h.items[j].term
}

func (h evictHeap) Swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].idx = i
	h.items[j].idx = j
}

func (h *evictHeap) Push(x any) {
	it := x.(*item)
	it.idx = len(h.items)
	h.items = append(h.items, it)
}

func (h *evictHeap) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	h.items = old[:n-1]
	return it
}
