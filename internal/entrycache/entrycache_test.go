package entrycache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"textjoin/internal/codec"
	"textjoin/internal/invfile"
)

func entry(term uint32, df int) *invfile.Entry {
	cells := make([]codec.Cell, df)
	for i := range cells {
		cells[i] = codec.Cell{Number: uint32(i), Weight: 1}
	}
	return &invfile.Entry{Term: term, Cells: cells}
}

func TestPolicyString(t *testing.T) {
	if MinOuterDF.String() != "min-outer-df" || LRU.String() != "lru" {
		t.Error("policy names wrong")
	}
	if Policy(7).String() == "" {
		t.Error("unknown policy name empty")
	}
}

func TestNewPanicsWithoutPriority(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(MinOuterDF, nil) did not panic")
		}
	}()
	New(100, MinOuterDF, nil)
}

func TestGetMissAndHit(t *testing.T) {
	c := New(100, LRU, nil)
	if _, ok := c.Get(1); ok {
		t.Error("hit on empty cache")
	}
	c.Put(1, entry(1, 2), 10)
	e, ok := c.Get(1)
	if !ok || e.Term != 1 {
		t.Errorf("Get = %+v, %v", e, ok)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.HitRate() != 0.5 {
		t.Errorf("HitRate = %v", s.HitRate())
	}
	if (Stats{}).HitRate() != 0 {
		t.Error("empty HitRate should be 0")
	}
}

func TestBudgetAccounting(t *testing.T) {
	c := New(100, LRU, nil)
	c.Put(1, entry(1, 1), 40)
	c.Put(2, entry(2, 1), 40)
	if c.Used() != 80 || c.Len() != 2 || c.Budget() != 100 {
		t.Errorf("used=%d len=%d budget=%d", c.Used(), c.Len(), c.Budget())
	}
	evicted := c.Put(3, entry(3, 1), 40) // must evict one
	if len(evicted) != 1 || c.Used() != 80 || c.Len() != 2 {
		t.Errorf("evicted=%v used=%d len=%d", evicted, c.Used(), c.Len())
	}
}

func TestOversizedEntryRejected(t *testing.T) {
	c := New(50, LRU, nil)
	c.Put(1, entry(1, 1), 10)
	if evicted := c.Put(2, entry(2, 1), 60); evicted != nil {
		t.Errorf("evicted = %v, want none", evicted)
	}
	if c.Contains(2) {
		t.Error("oversized entry cached")
	}
	if !c.Contains(1) {
		t.Error("existing entry dropped by rejected insert")
	}
	if c.Stats().Rejected != 1 {
		t.Errorf("Rejected = %d", c.Stats().Rejected)
	}
}

func TestMinOuterDFEviction(t *testing.T) {
	df := map[uint32]int64{1: 10, 2: 3, 3: 7, 4: 99}
	c := New(30, MinOuterDF, func(t uint32) int64 { return df[t] })
	c.Put(1, entry(1, 1), 10)
	c.Put(2, entry(2, 1), 10)
	c.Put(3, entry(3, 1), 10)
	// Cache full. Inserting term 4 must evict term 2 (lowest outer df).
	evicted := c.Put(4, entry(4, 1), 10)
	if len(evicted) != 1 || evicted[0] != 2 {
		t.Errorf("evicted = %v, want [2]", evicted)
	}
	// Next insert evicts term 3 (df 7 < 10 < 99).
	evicted = c.Put(5, entry(5, 1), 10)
	if len(evicted) != 1 || evicted[0] != 3 {
		t.Errorf("evicted = %v, want [3]", evicted)
	}
}

func TestMinOuterDFTieBreak(t *testing.T) {
	c := New(20, MinOuterDF, func(uint32) int64 { return 5 })
	c.Put(9, entry(9, 1), 10)
	c.Put(4, entry(4, 1), 10)
	evicted := c.Put(1, entry(1, 1), 10)
	if len(evicted) != 1 || evicted[0] != 4 {
		t.Errorf("evicted = %v, want [4] (lowest term on tie)", evicted)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(30, LRU, nil)
	c.Put(1, entry(1, 1), 10)
	c.Put(2, entry(2, 1), 10)
	c.Put(3, entry(3, 1), 10)
	c.Get(1) // refresh 1; LRU victim becomes 2
	evicted := c.Put(4, entry(4, 1), 10)
	if len(evicted) != 1 || evicted[0] != 2 {
		t.Errorf("evicted = %v, want [2]", evicted)
	}
	if !c.Contains(1) || !c.Contains(3) || !c.Contains(4) {
		t.Error("wrong survivors")
	}
}

func TestMultipleEvictionsForLargeEntry(t *testing.T) {
	c := New(30, LRU, nil)
	c.Put(1, entry(1, 1), 10)
	c.Put(2, entry(2, 1), 10)
	c.Put(3, entry(3, 1), 10)
	evicted := c.Put(4, entry(4, 1), 25)
	if len(evicted) != 3 {
		t.Errorf("evicted = %v, want all three", evicted)
	}
	if c.Used() != 25 || c.Len() != 1 {
		t.Errorf("used=%d len=%d", c.Used(), c.Len())
	}
	if c.Stats().Evictions != 3 {
		t.Errorf("Evictions = %d", c.Stats().Evictions)
	}
}

func TestReinsertReplaces(t *testing.T) {
	c := New(100, LRU, nil)
	c.Put(1, entry(1, 1), 30)
	c.Put(1, entry(1, 2), 50)
	if c.Used() != 50 || c.Len() != 1 {
		t.Errorf("used=%d len=%d after reinsert", c.Used(), c.Len())
	}
	e, _ := c.Get(1)
	if e.DocFreq() != 2 {
		t.Errorf("stale entry returned: df=%d", e.DocFreq())
	}
}

func TestRemove(t *testing.T) {
	c := New(100, LRU, nil)
	c.Put(1, entry(1, 1), 30)
	c.Remove(1)
	c.Remove(1) // no-op
	if c.Len() != 0 || c.Used() != 0 || c.Contains(1) {
		t.Error("Remove did not clear entry")
	}
}

func TestTerms(t *testing.T) {
	c := New(100, LRU, nil)
	c.Put(3, entry(3, 1), 10)
	c.Put(1, entry(1, 1), 10)
	terms := c.Terms()
	if len(terms) != 2 {
		t.Fatalf("Terms = %v", terms)
	}
	seen := map[uint32]bool{}
	for _, term := range terms {
		seen[term] = true
	}
	if !seen[1] || !seen[3] {
		t.Errorf("Terms = %v", terms)
	}
}

// Property: used bytes always equal the sum of cached entry sizes and never
// exceed the budget; every Get(t) after Put(t) with no interleaving
// eviction returns the entry.
func TestQuickInvariants(t *testing.T) {
	check := func(seed int64, policySeed uint8) bool {
		r := rand.New(rand.NewSource(seed))
		policy := Policy(policySeed % 2)
		df := func(term uint32) int64 { return int64(term%17) + 1 }
		budget := int64(r.Intn(200) + 50)
		c := New(budget, policy, df)
		sizes := make(map[uint32]int64)
		for op := 0; op < 500; op++ {
			term := uint32(r.Intn(40))
			switch r.Intn(3) {
			case 0:
				size := int64(r.Intn(60) + 1)
				c.Put(term, entry(term, 1), size)
				if size <= budget {
					sizes[term] = size
				} else {
					delete(sizes, term)
				}
			case 1:
				c.Get(term)
			case 2:
				c.Remove(term)
				delete(sizes, term)
			}
			if c.Used() > budget {
				return false
			}
			// Recompute used from live terms.
			var sum int64
			for _, term := range c.Terms() {
				if sz, ok := sizes[term]; ok {
					sum += sz
				} else {
					return false // cache holds a term we never put (or put oversized)
				}
			}
			if sum != c.Used() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: under MinOuterDF, an evicted term never has a strictly higher
// priority than any term that remains cached.
func TestQuickMinDFEvictsLowest(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		df := func(term uint32) int64 { return int64(term % 23) }
		c := New(100, MinOuterDF, df)
		for op := 0; op < 300; op++ {
			term := uint32(r.Intn(60))
			evicted := c.Put(term, entry(term, 1), int64(r.Intn(30)+1))
			for _, ev := range evicted {
				for _, kept := range c.Terms() {
					if kept == term {
						// The just-inserted term is exempt: eviction
						// happens before insertion, so the newcomer may
						// have any priority.
						continue
					}
					if df(ev) > df(kept) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPutGet(b *testing.B) {
	c := New(1<<20, MinOuterDF, func(t uint32) int64 { return int64(t % 100) })
	e := entry(0, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		term := uint32(i % 10000)
		if _, ok := c.Get(term); !ok {
			c.Put(term, e, 128)
		}
	}
}
