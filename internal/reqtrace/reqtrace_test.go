package reqtrace

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic clock advancing a fixed step per read,
// the same idiom telemetry tests use under the wallclock lint.
func fakeClock(step time.Duration) func() time.Time {
	base := time.Unix(1700000000, 0)
	n := 0
	var mu sync.Mutex
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		n++
		return base.Add(time.Duration(n) * step)
	}
}

func TestDeterministicIDs(t *testing.T) {
	mk := func() (TraceID, SpanID) {
		tr := NewTracer(42, fakeClock(time.Millisecond))
		root := tr.StartTrace("join")
		child := root.StartChild("scan", "outer")
		return root.TraceID(), child.SpanID()
	}
	id1, sp1 := mk()
	id2, sp2 := mk()
	if id1 != id2 || sp1 != sp2 {
		t.Fatalf("same seed produced different IDs: %v/%v vs %v/%v", id1, sp1, id2, sp2)
	}
	other := NewTracer(43, fakeClock(time.Millisecond)).StartTrace("join").TraceID()
	if other == id1 {
		t.Fatalf("different seeds produced the same trace ID %v", id1)
	}
	if id1.IsZero() || sp1 == 0 {
		t.Fatal("generated IDs must be non-zero")
	}
}

func TestTraceTreeRoundTrip(t *testing.T) {
	tr := NewTracer(7, fakeClock(time.Millisecond))
	root := tr.StartTrace("join alg=hvnl")
	root.SetAttr("alg", "hvnl")
	root.SetInt("show", 10)
	root.SetFloat("lambda", 20)

	queue := root.StartChild("queue", "admission")
	queue.End()
	exec := root.StartChild("plan", "integrated.choose")
	probe := exec.StartChild("probe", "hvnl.probe")
	probe.End()
	exec.End()
	root.End()

	d := root.Data()
	if d == nil {
		t.Fatal("Data returned nil")
	}
	if err := ValidateData(d); err != nil {
		t.Fatalf("finished trace fails validation: %v", err)
	}
	if len(d.Spans) != 4 {
		t.Fatalf("spans = %d, want 4", len(d.Spans))
	}
	// Root is last (end order) and carries the attributes.
	rootSpan := d.Spans[len(d.Spans)-1]
	if rootSpan.Parent != "" {
		t.Fatalf("last span is not the root: %+v", rootSpan)
	}
	if len(rootSpan.Attrs) != 3 || rootSpan.Attrs[0].Value != "hvnl" ||
		rootSpan.Attrs[1].Value != "10" || rootSpan.Attrs[2].Value != "20" {
		t.Fatalf("root attrs = %+v", rootSpan.Attrs)
	}
	// The probe span's parent is the exec span.
	var probeData, execData *SpanData
	for i := range d.Spans {
		switch d.Spans[i].Name {
		case "hvnl.probe":
			probeData = &d.Spans[i]
		case "integrated.choose":
			execData = &d.Spans[i]
		}
	}
	if probeData == nil || execData == nil {
		t.Fatal("missing expected spans")
	}
	if probeData.Parent != execData.ID {
		t.Fatalf("probe parent = %s, want %s", probeData.Parent, execData.ID)
	}
	// The wire form round-trips through Validate.
	raw, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(raw); err != nil {
		t.Fatalf("marshaled trace fails Validate: %v", err)
	}
	// Data is built once.
	if root.Data() != d {
		t.Fatal("Data is not cached")
	}
}

func TestDataSealsOpenRoot(t *testing.T) {
	tr := NewTracer(1, fakeClock(time.Millisecond))
	root := tr.StartTrace("join")
	child := root.StartChild("scan", "outer")
	child.End()
	// Record-without-End (a panic path) must still yield a closed tree.
	d := root.Data()
	if err := ValidateData(d); err != nil {
		t.Fatalf("implicitly sealed trace fails validation: %v", err)
	}
	if d.DurNanos <= 0 {
		t.Fatalf("sealed trace has duration %d", d.DurNanos)
	}
}

func TestAttrsAfterEndDropped(t *testing.T) {
	tr := NewTracer(1, fakeClock(time.Millisecond))
	root := tr.StartTrace("join")
	root.End()
	root.SetAttr("late", "x")
	d := root.Data()
	if len(d.Spans[0].Attrs) != 0 {
		t.Fatalf("attr recorded after End: %+v", d.Spans[0].Attrs)
	}
}

func TestEndIdempotent(t *testing.T) {
	tr := NewTracer(1, fakeClock(time.Millisecond))
	root := tr.StartTrace("join")
	c := root.StartChild("scan", "x")
	c.End()
	c.End()
	root.End()
	root.End()
	if n := len(root.Data().Spans); n != 2 {
		t.Fatalf("double End duplicated spans: %d, want 2", n)
	}
}

func TestConcurrentSiblings(t *testing.T) {
	tr := NewTracer(1, fakeClock(time.Microsecond))
	root := tr.StartTrace("join")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := root.StartChild("merge", "worker")
			sp.SetInt("worker", int64(i))
			sp.End()
		}(i)
	}
	wg.Wait()
	root.End()
	d := root.Data()
	if len(d.Spans) != 9 {
		t.Fatalf("spans = %d, want 9", len(d.Spans))
	}
	if err := ValidateData(d); err != nil {
		t.Fatalf("concurrent trace fails validation: %v", err)
	}
}

// TestNilPathAllocsNothing is the reqtrace half of the
// BenchmarkTelemetryOverhead contract: with tracing disabled (nil
// tracer → nil spans) the request-path primitives must not allocate.
func TestNilPathAllocsNothing(t *testing.T) {
	var tr *Tracer
	var rec *Recorder
	allocs := testing.AllocsPerRun(100, func() {
		root := tr.StartTrace("join")
		child := root.StartChild("scan", "outer")
		child.SetAttr("k", "v")
		child.SetInt("n", 1)
		child.SetFloat("f", 0.5)
		child.End()
		_ = root.TraceID()
		_ = root.SpanID()
		rec.Record(root)
		root.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing path allocates %.1f per op, want 0", allocs)
	}
}

func TestContextRoundTrip(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context yields a span")
	}
	tr := NewTracer(1, fakeClock(time.Millisecond))
	root := tr.StartTrace("join")
	ctx := NewContext(context.Background(), root)
	if FromContext(ctx) != root {
		t.Fatal("context does not round-trip the span")
	}
	if FromContext(NewContext(context.Background(), nil)) != nil {
		t.Fatal("nil span in context must come back nil")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	id := TraceID{Hi: 0xdeadbeef, Lo: 0x12345678}
	sp := SpanID(0xabcdef01)
	v := FormatTraceparent(id, sp)
	gotID, gotSpan, err := ParseTraceparent(v)
	if err != nil {
		t.Fatal(err)
	}
	if gotID != id || gotSpan != sp {
		t.Fatalf("round trip: %v/%v, want %v/%v", gotID, gotSpan, id, sp)
	}

	bad := []string{
		"",
		"00-abc-def-01",
		"01-" + id.String() + "-" + sp.String() + "-01",             // version
		"00-" + strings.Repeat("0", 32) + "-" + sp.String() + "-01", // zero trace
		"00-" + id.String() + "-" + strings.Repeat("0", 16) + "-01", // zero span
		"00-" + id.String() + "-" + sp.String() + "-zz",             // flags
		"00-" + strings.Repeat("g", 32) + "-" + sp.String() + "-01", // non-hex
		"00-" + id.String() + "-" + sp.String(),                     // missing flags
		"00-" + id.String() + "-" + sp.String() + "-01-extra",       // extra field
		"00-" + id.String()[:31] + "-" + sp.String() + "-01",        // short trace
	}
	for _, v := range bad {
		if _, _, err := ParseTraceparent(v); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted", v)
		}
	}
}

func TestStartLinkedTrace(t *testing.T) {
	tr := NewTracer(9, fakeClock(time.Millisecond))
	remote := TraceID{Hi: 1, Lo: 2}
	root := tr.StartLinkedTrace("join", remote, SpanID(77))
	root.End()
	d := root.Data()
	if d.TraceID != remote.String() {
		t.Fatalf("linked trace id = %s, want %s", d.TraceID, remote.String())
	}
	if d.RemoteParent != SpanID(77).String() {
		t.Fatalf("remote parent = %q", d.RemoteParent)
	}
	if err := ValidateData(d); err != nil {
		t.Fatalf("linked trace fails validation: %v", err)
	}
	// The root span itself has no parent — the remote parent is
	// trace-level only, keeping the local tree self-contained.
	if d.Spans[0].Parent != "" {
		t.Fatalf("root span parent = %q, want empty", d.Spans[0].Parent)
	}
	// Zero remote ID falls back to a fresh trace.
	fresh := tr.StartLinkedTrace("join", TraceID{}, 0)
	if fresh.TraceID().IsZero() {
		t.Fatal("zero remote ID must mint a fresh trace ID")
	}
}
