package reqtrace

import "context"

// ctxKey is the private context key for the active span.
type ctxKey struct{}

// NewContext returns a context carrying s. Storing a nil span is fine —
// FromContext then returns nil and the disabled path stays uniform.
func NewContext(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span carried by ctx, or nil when the context
// carries none (the disabled span).
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}
