package reqtrace

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// record runs one synthetic trace with the given number of extra clock
// steps (so later traces are slower) and files it.
func record(tr *Tracer, rec *Recorder, name string, steps int) *TraceData {
	root := tr.StartTrace(name)
	for i := 0; i < steps; i++ {
		c := root.StartChild("scan", "work")
		c.End()
	}
	root.End()
	rec.Record(root)
	return root.Data()
}

func TestRecorderBounds(t *testing.T) {
	tr := NewTracer(3, fakeClock(time.Millisecond))
	rec := NewRecorder(4)
	var all []*TraceData
	for i := 0; i < 10; i++ {
		all = append(all, record(tr, rec, fmt.Sprintf("r%d", i), i))
	}
	recent := rec.Recent()
	if len(recent) != 4 {
		t.Fatalf("recent = %d, want 4", len(recent))
	}
	// Newest first: r9, r8, r7, r6.
	for i, d := range recent {
		if want := fmt.Sprintf("r%d", 9-i); d.Name != want {
			t.Errorf("recent[%d] = %s, want %s", i, d.Name, want)
		}
	}
	slow := rec.Slowest()
	if len(slow) != 4 {
		t.Fatalf("slowest = %d, want 4", len(slow))
	}
	for i := 1; i < len(slow); i++ {
		if slow[i-1].DurNanos < slow[i].DurNanos {
			t.Fatalf("slowest not sorted: %d < %d at %d", slow[i-1].DurNanos, slow[i].DurNanos, i)
		}
	}
	// The slowest recorded trace (most steps) must be kept.
	if slow[0].TraceID != all[9].TraceID {
		t.Errorf("slowest[0] = %s, want the 9-step trace %s", slow[0].TraceID, all[9].TraceID)
	}
	// Every surviving trace is retrievable by ID; an evicted fast,
	// old trace is not.
	if rec.Lookup(slow[0].TraceID) == nil {
		t.Error("slowest trace not retrievable by ID")
	}
	if rec.Lookup(all[0].TraceID) != nil {
		t.Error("evicted trace still retrievable")
	}
	if rec.Lookup(strings.Repeat("f", 32)) != nil {
		t.Error("unknown ID retrievable")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	tr := NewTracer(3, fakeClock(time.Microsecond))
	rec := NewRecorder(8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				record(tr, rec, "load", i%3)
			}
		}(g)
	}
	// Concurrent scrapes while recording.
	for i := 0; i < 20; i++ {
		for _, d := range rec.Slowest() {
			if err := ValidateData(d); err != nil {
				t.Errorf("torn slowest trace: %v", err)
			}
		}
		for _, d := range rec.Recent() {
			if err := ValidateData(d); err != nil {
				t.Errorf("torn recent trace: %v", err)
			}
		}
	}
	wg.Wait()
}

func TestHandler(t *testing.T) {
	tr := NewTracer(11, fakeClock(time.Millisecond))
	rec := NewRecorder(4)
	d := record(tr, rec, "join alg=vvm", 2)

	h := Handler(rec, "/debug/requests")
	get := func(path, accept string) (int, string, []byte) {
		req := httptest.NewRequest("GET", path, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		body, _ := io.ReadAll(w.Result().Body)
		return w.Code, w.Result().Header.Get("Content-Type"), body
	}

	// HTML listing with a link to the trace.
	code, ct, body := get("/debug/requests", "")
	if code != 200 || !strings.Contains(ct, "text/html") {
		t.Fatalf("listing: code %d, type %s", code, ct)
	}
	if !strings.Contains(string(body), d.TraceID) {
		t.Fatal("listing does not mention the recorded trace")
	}

	// JSON listing.
	code, ct, body = get("/debug/requests?format=json", "")
	if code != 200 || !strings.Contains(ct, "application/json") {
		t.Fatalf("json listing: code %d, type %s", code, ct)
	}
	var doc struct {
		Slowest []struct {
			TraceID string `json:"trace_id"`
		} `json:"slowest"`
		Recent []json.RawMessage `json:"recent"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("json listing: %v", err)
	}
	if len(doc.Slowest) != 1 || doc.Slowest[0].TraceID != d.TraceID || len(doc.Recent) != 1 {
		t.Fatalf("json listing contents: %s", body)
	}

	// Detail JSON is exactly the validated wire format.
	code, _, body = get("/debug/requests/"+d.TraceID, "application/json")
	if code != 200 {
		t.Fatalf("detail: code %d", code)
	}
	if err := Validate(body); err != nil {
		t.Fatalf("detail JSON fails Validate: %v", err)
	}

	// Detail HTML renders the tree.
	code, ct, body = get("/debug/requests/"+d.TraceID, "")
	if code != 200 || !strings.Contains(ct, "text/html") {
		t.Fatalf("detail html: code %d, type %s", code, ct)
	}
	if !strings.Contains(string(body), "join alg=vvm") {
		t.Fatal("detail html lacks the request name")
	}

	// Unknown ID → 404; nil recorder → 503.
	if code, _, _ = get("/debug/requests/"+strings.Repeat("a", 32), ""); code != 404 {
		t.Fatalf("unknown trace: code %d, want 404", code)
	}
	nilH := Handler(nil, "/debug/requests")
	w := httptest.NewRecorder()
	nilH.ServeHTTP(w, httptest.NewRequest("GET", "/debug/requests", nil))
	if w.Code != 503 {
		t.Fatalf("nil recorder: code %d, want 503", w.Code)
	}
}
