package reqtrace

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
)

// SchemaVersion identifies the per-request trace JSON shape. The field
// name ("reqtrace_schema") is unique to this format, so cmd/tracecheck
// can auto-detect a request trace next to telemetry snapshots and JSONL
// streams without guessing.
const SchemaVersion = 1

// TraceData is the wire form of one finished request trace: exactly
// what /debug/requests/{traceID} serves and what Validate accepts.
type TraceData struct {
	Schema int `json:"reqtrace_schema"`
	// TraceID is 32 lowercase hex digits.
	TraceID string `json:"trace_id"`
	// Name is the request label the trace was started with.
	Name string `json:"name"`
	// RemoteParent is the propagated upstream span ID (16 hex digits)
	// when the request carried a traceparent header; empty otherwise.
	RemoteParent string `json:"remote_parent,omitempty"`
	// StartUnixNanos anchors the trace on the wall clock.
	StartUnixNanos int64 `json:"start_unix_ns"`
	// DurNanos is the root span's duration.
	DurNanos int64 `json:"dur_ns"`
	// Spans lists every finished span, in end order; the root (empty
	// parent) is last.
	Spans []SpanData `json:"spans"`
}

// SpanData is the wire form of one finished span.
type SpanData struct {
	// ID is 16 lowercase hex digits, unique within the trace.
	ID string `json:"id"`
	// Parent is the parent span's ID; empty on the root.
	Parent string `json:"parent,omitempty"`
	// Phase is the telemetry phase label the span ran under.
	Phase string `json:"phase"`
	// Name identifies the operation, e.g. "hvnl.probe".
	Name string `json:"name"`
	// StartNanos is the offset from the trace start.
	StartNanos int64 `json:"start_ns"`
	// DurNanos is the span duration; always >= 0 (end >= start).
	DurNanos int64  `json:"dur_ns"`
	Attrs    []Attr `json:"attrs,omitempty"`
}

// Validate parses data as one TraceData document (unknown fields
// rejected, no trailing garbage) and checks tree well-formedness with
// ValidateData.
func Validate(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var t TraceData
	if err := dec.Decode(&t); err != nil {
		return fmt.Errorf("reqtrace: %v", err)
	}
	if dec.More() {
		return errors.New("reqtrace: trailing data after trace document")
	}
	return ValidateData(&t)
}

// ValidateData checks the invariants every finished trace holds:
// schema version, a parseable non-zero trace ID, a non-negative
// duration, and a well-formed span tree — at least one span, exactly
// one root, unique parseable span IDs, every parent resolving to a
// span in the trace, every span with end >= start and a non-empty
// phase and name.
func ValidateData(t *TraceData) error {
	if t.Schema != SchemaVersion {
		return fmt.Errorf("reqtrace: schema %d, want %d", t.Schema, SchemaVersion)
	}
	if _, err := ParseTraceID(t.TraceID); err != nil {
		return err
	}
	if t.DurNanos < 0 {
		return fmt.Errorf("reqtrace: trace %s: negative duration %d", t.TraceID, t.DurNanos)
	}
	if t.RemoteParent != "" {
		if _, err := ParseSpanID(t.RemoteParent); err != nil {
			return err
		}
	}
	if len(t.Spans) == 0 {
		return fmt.Errorf("reqtrace: trace %s has no spans", t.TraceID)
	}
	ids := make(map[string]bool, len(t.Spans))
	roots := 0
	for i := range t.Spans {
		sp := &t.Spans[i]
		if _, err := ParseSpanID(sp.ID); err != nil {
			return err
		}
		if ids[sp.ID] {
			return fmt.Errorf("reqtrace: trace %s: duplicate span id %s", t.TraceID, sp.ID)
		}
		ids[sp.ID] = true
		if sp.Parent == "" {
			roots++
		}
		if sp.DurNanos < 0 {
			return fmt.Errorf("reqtrace: span %s: end before start (dur %d)", sp.ID, sp.DurNanos)
		}
		if sp.Phase == "" || sp.Name == "" {
			return fmt.Errorf("reqtrace: span %s: empty phase or name", sp.ID)
		}
	}
	if roots != 1 {
		return fmt.Errorf("reqtrace: trace %s: %d root spans, want exactly 1", t.TraceID, roots)
	}
	for i := range t.Spans {
		sp := &t.Spans[i]
		if sp.Parent == "" {
			continue
		}
		if _, err := ParseSpanID(sp.Parent); err != nil {
			return err
		}
		if !ids[sp.Parent] {
			return fmt.Errorf("reqtrace: span %s: orphan parent %s", sp.ID, sp.Parent)
		}
		if sp.Parent == sp.ID {
			return fmt.Errorf("reqtrace: span %s is its own parent", sp.ID)
		}
	}
	return nil
}
