// Package reqtrace is the request-scoped tracing layer of the join
// service: one trace per /join request, built from parent/child spans
// with string attributes, identified by 128-bit trace IDs and 64-bit
// span IDs.
//
// Where internal/telemetry aggregates (counters, histograms, a global
// ring of phase spans with no request identity), reqtrace preserves
// causality: every span knows its parent, every trace is one request,
// and the finished tree records where that request's milliseconds went
// — queue wait, plan decision, join phases, per-view I/O — next to the
// planner's estimates, so the paper's estimated-vs-measured comparison
// (Section 5) exists per request on the live server, not only in
// offline calibration runs.
//
// Two rules shape the implementation:
//
//   - Determinism under the wallclock lint. IDs come from a seeded
//     splitmix64 sequence, never from a global RNG, and every timestamp
//     is read through the injected clock a Tracer is constructed with.
//     The package itself never calls time.Now, so it stays inside the
//     repo's wall-clock hygiene rule rather than joining telemetry on
//     the exemption list; a fixed seed plus a fake clock reproduces a
//     trace byte for byte.
//
//   - The nil disabled path. Like a nil *telemetry.Collector, a nil
//     *Tracer, *Span or *Recorder is the disabled tracer: every method
//     is a nil-check no-op that performs no allocation and reads no
//     clock, so instrumented code threads spans unconditionally and a
//     server with tracing off pays one predictable branch per call.
package reqtrace

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is a 128-bit trace identifier, rendered as 32 lowercase hex
// digits (the W3C trace-context shape).
type TraceID struct{ Hi, Lo uint64 }

// IsZero reports whether the ID is the invalid all-zero ID.
func (id TraceID) IsZero() bool { return id.Hi == 0 && id.Lo == 0 }

// String renders the ID as 32 lowercase hex digits.
func (id TraceID) String() string {
	return fmt.Sprintf("%016x%016x", id.Hi, id.Lo)
}

// ParseTraceID parses 32 hex digits into a TraceID. The all-zero ID is
// rejected, as in the W3C trace-context spec.
func ParseTraceID(s string) (TraceID, error) {
	if len(s) != 32 {
		return TraceID{}, fmt.Errorf("reqtrace: trace id %q: want 32 hex digits", s)
	}
	hi, err := strconv.ParseUint(s[:16], 16, 64)
	if err != nil {
		return TraceID{}, fmt.Errorf("reqtrace: trace id %q: %v", s, err)
	}
	lo, err := strconv.ParseUint(s[16:], 16, 64)
	if err != nil {
		return TraceID{}, fmt.Errorf("reqtrace: trace id %q: %v", s, err)
	}
	id := TraceID{Hi: hi, Lo: lo}
	if id.IsZero() {
		return TraceID{}, errors.New("reqtrace: trace id is all zero")
	}
	return id, nil
}

// SpanID is a 64-bit span identifier, rendered as 16 lowercase hex
// digits. The zero SpanID means "no span" (a root has no parent).
type SpanID uint64

// String renders the ID as 16 lowercase hex digits.
func (id SpanID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// ParseSpanID parses 16 hex digits into a SpanID, rejecting zero.
func ParseSpanID(s string) (SpanID, error) {
	if len(s) != 16 {
		return 0, fmt.Errorf("reqtrace: span id %q: want 16 hex digits", s)
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("reqtrace: span id %q: %v", s, err)
	}
	if v == 0 {
		return 0, errors.New("reqtrace: span id is zero")
	}
	return SpanID(v), nil
}

// Tracer mints traces. IDs are drawn from a seeded splitmix64 sequence
// (the same generator the LSH and signature layers use), so a fixed
// seed yields a reproducible ID stream; timestamps come from the
// injected clock. A nil *Tracer is the disabled tracer: StartTrace
// returns a nil span and the whole downstream tree is a no-op.
//
// Tracer is safe for concurrent use: the ID state advances atomically.
type Tracer struct {
	now   func() time.Time
	state atomic.Uint64
}

// NewTracer creates a tracer with the given ID seed and clock. The
// clock is required — the package never reads wall time on its own;
// pass time.Now from main, or a fake from tests.
func NewTracer(seed uint64, now func() time.Time) *Tracer {
	if now == nil {
		panic("reqtrace: NewTracer needs a clock")
	}
	t := &Tracer{now: now}
	// Mix the seed so seed 0 still produces a usable stream.
	t.state.Store(seed ^ 0x9e3779b97f4a7c15)
	return t
}

// nextID draws the next splitmix64 output, mapped away from zero so it
// is always a valid trace-half or span ID.
func (t *Tracer) nextID() uint64 {
	x := t.state.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

// StartTrace begins a new trace and returns its root span. On a nil
// tracer no clock is read and the returned span is nil (a no-op).
func (t *Tracer) StartTrace(name string) *Span {
	if t == nil {
		return nil
	}
	return t.start(name, TraceID{Hi: t.nextID(), Lo: t.nextID()}, 0)
}

// StartLinkedTrace continues a trace context propagated from another
// process (a traceparent header): the new trace adopts the remote trace
// ID and records the remote span as the root's logical parent. The
// remote parent is kept as a trace-level field — not as the root span's
// parent reference — so the local span tree stays self-contained (one
// root, every parent resolvable) while the coordinator can still stitch
// trees across nodes by ID.
func (t *Tracer) StartLinkedTrace(name string, remote TraceID, remoteParent SpanID) *Span {
	if t == nil {
		return nil
	}
	if remote.IsZero() {
		return t.StartTrace(name)
	}
	return t.start(name, remote, remoteParent)
}

func (t *Tracer) start(name string, id TraceID, remoteParent SpanID) *Span {
	tr := &Trace{
		tracer:       t,
		id:           id,
		remoteParent: remoteParent,
		name:         name,
		start:        t.now(),
	}
	tr.root = &Span{trace: tr, id: SpanID(t.nextID()), phase: "request", name: name, start: tr.start}
	return tr.root
}

// Trace is one request's span tree under construction. Spans append to
// it as they end; the root span's End seals the trace. All methods are
// internal to the package — callers hold spans, and hand the root to a
// Recorder.
type Trace struct {
	tracer       *Tracer
	id           TraceID
	remoteParent SpanID
	name         string
	start        time.Time

	root *Span

	mu    sync.Mutex
	spans []SpanData
	end   time.Time
	done  bool
	data  *TraceData // built once, after done
}

// Span is one timed operation within a trace. Spans form a tree:
// StartChild hangs a new span under the receiver. A nil *Span is the
// disabled span — StartChild returns nil, attribute setters and End do
// nothing, no clock is read, nothing allocates.
//
// A single span is owned by one goroutine (set attributes and End from
// the goroutine that started it); sibling spans may be used
// concurrently — StartChild and End are safe to call on different
// spans from different goroutines.
type Span struct {
	trace  *Trace
	id     SpanID
	parent SpanID
	phase  string
	name   string
	start  time.Time
	attrs  []Attr
	ended  bool
}

// Attr is one string-valued span attribute.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// TraceID returns the trace's ID, zero on a nil span.
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.trace.id
}

// SpanID returns the span's ID, zero on a nil span.
func (s *Span) SpanID() SpanID {
	if s == nil {
		return 0
	}
	return s.id
}

// StartChild begins a child span in the given phase. Phase labels reuse
// the telemetry taxonomy (telemetry.PhaseScan etc.) so traces and the
// aggregate phase histograms line up. On a nil span no clock is read
// and nil is returned.
func (s *Span) StartChild(phase, name string) *Span {
	if s == nil {
		return nil
	}
	t := s.trace
	return &Span{
		trace:  t,
		id:     SpanID(t.tracer.nextID()),
		parent: s.id,
		phase:  phase,
		name:   name,
		start:  t.tracer.now(),
	}
}

// SetAttr records a string attribute on the span. No-op on a nil span
// or after End.
func (s *Span) SetAttr(key, value string) {
	if s == nil || s.ended {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// SetInt records an integer attribute. No-op on a nil span.
func (s *Span) SetInt(key string, v int64) {
	if s == nil || s.ended {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: strconv.FormatInt(v, 10)})
}

// SetFloat records a float attribute. No-op on a nil span.
func (s *Span) SetFloat(key string, v float64) {
	if s == nil || s.ended {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: strconv.FormatFloat(v, 'g', -1, 64)})
}

// End finishes the span, appending it to the trace. Ending the root
// span seals the trace (its duration is fixed and Data becomes
// available). End is idempotent; no-op on a nil span.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	t := s.trace
	end := t.tracer.now()
	sd := SpanData{
		ID:         s.id.String(),
		Phase:      s.phase,
		Name:       s.name,
		StartNanos: s.start.Sub(t.start).Nanoseconds(),
		DurNanos:   end.Sub(s.start).Nanoseconds(),
		Attrs:      s.attrs,
	}
	if s.parent != 0 {
		sd.Parent = s.parent.String()
	}
	t.mu.Lock()
	t.spans = append(t.spans, sd)
	if s.parent == 0 && !t.done {
		t.done = true
		t.end = end
	}
	t.mu.Unlock()
}

// Data returns the finished trace tree. The root span must have been
// ended; Data on an unfinished trace ends the root implicitly so a
// panic-path Record still yields a closed tree. The result is built
// once and immutable afterwards — safe to share with concurrent
// readers. Nil on a nil span.
func (s *Span) Data() *TraceData {
	if s == nil {
		return nil
	}
	root := s.trace.root
	if root != s {
		// Only the root span seals a trace.
		root.End()
	} else {
		s.End()
	}
	t := s.trace
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.data != nil {
		return t.data
	}
	d := &TraceData{
		Schema:         SchemaVersion,
		TraceID:        t.id.String(),
		Name:           t.name,
		StartUnixNanos: t.start.UnixNano(),
		DurNanos:       t.end.Sub(t.start).Nanoseconds(),
		Spans:          t.spans,
	}
	if t.remoteParent != 0 {
		d.RemoteParent = t.remoteParent.String()
	}
	t.data = d
	return d
}
