package reqtrace

import (
	"fmt"
	"strings"
)

// TraceparentHeader is the propagation header textjoind parses on the
// way in and emits on the way out, in the W3C trace-context shape:
//
//	00-<32 hex trace id>-<16 hex span id>-<2 hex flags>
//
// so a future shard coordinator can stitch cross-node traces by ID.
const TraceparentHeader = "Traceparent"

// FormatTraceparent renders a traceparent value for the given IDs with
// the sampled flag set.
func FormatTraceparent(id TraceID, span SpanID) string {
	return "00-" + id.String() + "-" + span.String() + "-01"
}

// ParseTraceparent parses a traceparent value. Only version 00 is
// decoded; the flags octet is validated as hex but otherwise ignored
// (this server records every request it admits).
func ParseTraceparent(v string) (TraceID, SpanID, error) {
	parts := strings.Split(strings.TrimSpace(v), "-")
	if len(parts) != 4 {
		return TraceID{}, 0, fmt.Errorf("reqtrace: traceparent %q: want 4 dash-separated fields", v)
	}
	if parts[0] != "00" {
		return TraceID{}, 0, fmt.Errorf("reqtrace: traceparent version %q unsupported", parts[0])
	}
	id, err := ParseTraceID(parts[1])
	if err != nil {
		return TraceID{}, 0, err
	}
	span, err := ParseSpanID(parts[2])
	if err != nil {
		return TraceID{}, 0, err
	}
	if len(parts[3]) != 2 || !isHex(parts[3]) {
		return TraceID{}, 0, fmt.Errorf("reqtrace: traceparent flags %q: want 2 hex digits", parts[3])
	}
	return id, span, nil
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'f', c >= 'A' && c <= 'F':
		default:
			return false
		}
	}
	return true
}
