package reqtrace

import "sync"

// DefaultRecorderCap bounds each of the recorder's two lists when
// NewRecorder is given a non-positive capacity.
const DefaultRecorderCap = 32

// Recorder is the flight recorder: a bounded memory of finished
// request traces, keeping the N slowest and the N most recent. It
// answers "what did the last requests do" and "where did the worst
// requests spend their time" without unbounded growth.
//
// Scraping never blocks a running join: Record and the read methods
// hold one short mutex only while swapping pointers in the two small
// lists — every *TraceData is immutable once recorded, so handlers
// marshal outside the lock and concurrent scrapes share the same
// underlying data. A nil *Recorder is the disabled recorder: Record is
// a no-op, lookups return nothing.
type Recorder struct {
	cap int

	mu      sync.Mutex
	recent  []*TraceData // ring, oldest first once full
	nextIdx int
	full    bool
	slowest []*TraceData // sorted by DurNanos descending, len <= cap
}

// NewRecorder creates a recorder keeping up to n slowest and n most
// recent traces (DefaultRecorderCap when n <= 0).
func NewRecorder(n int) *Recorder {
	if n <= 0 {
		n = DefaultRecorderCap
	}
	return &Recorder{cap: n, recent: make([]*TraceData, 0, n)}
}

// Record seals root's trace (ending the root span if the caller has
// not) and files it in both lists. No-op on a nil recorder or nil
// span.
func (r *Recorder) Record(root *Span) {
	if r == nil || root == nil {
		return
	}
	d := root.Data()
	r.mu.Lock()
	defer r.mu.Unlock()
	// Most-recent ring.
	if len(r.recent) < r.cap {
		r.recent = append(r.recent, d)
	} else {
		r.recent[r.nextIdx] = d
		r.full = true
	}
	r.nextIdx = (r.nextIdx + 1) % r.cap
	// Slowest list: insertion sort into a tiny descending slice.
	if len(r.slowest) < r.cap || d.DurNanos > r.slowest[len(r.slowest)-1].DurNanos {
		i := len(r.slowest)
		if i < r.cap {
			r.slowest = append(r.slowest, d)
		} else {
			i = r.cap - 1
			r.slowest[i] = d
		}
		for i > 0 && r.slowest[i-1].DurNanos < d.DurNanos {
			r.slowest[i-1], r.slowest[i] = r.slowest[i], r.slowest[i-1]
			i--
		}
	}
}

// Recent returns the most recent traces, newest first. Safe to read
// concurrently with Record; the returned traces are immutable. Nil
// recorder returns nil.
func (r *Recorder) Recent() []*TraceData {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*TraceData, 0, len(r.recent))
	// Walk the ring backwards from the most recently written slot.
	n := len(r.recent)
	for i := 0; i < n; i++ {
		idx := (r.nextIdx - 1 - i + n) % n
		out = append(out, r.recent[idx])
	}
	return out
}

// Slowest returns the slowest traces, slowest first. Nil recorder
// returns nil.
func (r *Recorder) Slowest() []*TraceData {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*TraceData, len(r.slowest))
	copy(out, r.slowest)
	return out
}

// Lookup returns the recorded trace with the given ID (32 hex digits),
// or nil. Both lists are bounded, so this is a short scan under the
// same short mutex as Record.
func (r *Recorder) Lookup(traceID string) *TraceData {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, d := range r.recent {
		if d.TraceID == traceID {
			return d
		}
	}
	for _, d := range r.slowest {
		if d.TraceID == traceID {
			return d
		}
	}
	return nil
}
