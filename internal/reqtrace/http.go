package reqtrace

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"sort"
	"strings"
)

// listDoc is the JSON shape of /debug/requests?format=json.
type listDoc struct {
	Slowest []listRow `json:"slowest"`
	Recent  []listRow `json:"recent"`
}

type listRow struct {
	TraceID string  `json:"trace_id"`
	Name    string  `json:"name"`
	DurMs   float64 `json:"dur_ms"`
	Spans   int     `json:"spans"`
}

func row(d *TraceData) listRow {
	return listRow{
		TraceID: d.TraceID,
		Name:    d.Name,
		DurMs:   float64(d.DurNanos) / 1e6,
		Spans:   len(d.Spans),
	}
}

// Handler serves the flight recorder under prefix (normally
// "/debug/requests"): the listing at the prefix itself (HTML by
// default, JSON with ?format=json) and one trace's full tree at
// prefix+"/{traceID}" (HTML by default; JSON — exactly the document
// Validate accepts — with ?format=json or an Accept: application/json
// header). A nil recorder answers 503, keeping accidental nil wiring
// observable like a nil metrics exporter.
func Handler(rec *Recorder, prefix string) http.Handler {
	prefix = strings.TrimSuffix(prefix, "/")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if rec == nil {
			http.Error(w, "reqtrace: nil recorder", http.StatusServiceUnavailable)
			return
		}
		rest := strings.TrimPrefix(r.URL.Path, prefix)
		rest = strings.Trim(rest, "/")
		if rest == "" {
			serveList(w, r, rec)
			return
		}
		d := rec.Lookup(rest)
		if d == nil {
			http.Error(w, "reqtrace: no recorded trace "+rest, http.StatusNotFound)
			return
		}
		serveTrace(w, r, d)
	})
}

func wantJSON(r *http.Request) bool {
	if r.URL.Query().Get("format") == "json" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "application/json")
}

func serveList(w http.ResponseWriter, r *http.Request, rec *Recorder) {
	slowest, recent := rec.Slowest(), rec.Recent()
	if wantJSON(r) {
		doc := listDoc{Slowest: []listRow{}, Recent: []listRow{}}
		for _, d := range slowest {
			doc.Slowest = append(doc.Slowest, row(d))
		}
		for _, d := range recent {
			doc.Recent = append(doc.Recent, row(d))
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(doc)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	var b strings.Builder
	b.WriteString("<!DOCTYPE html><html><head><title>textjoind request traces</title></head><body>\n")
	b.WriteString("<h1>Request flight recorder</h1>\n")
	writeTable(&b, "Slowest requests", slowest)
	writeTable(&b, "Most recent requests", recent)
	b.WriteString("</body></html>\n")
	fmt.Fprint(w, b.String())
}

func writeTable(b *strings.Builder, title string, traces []*TraceData) {
	fmt.Fprintf(b, "<h2>%s</h2>\n", html.EscapeString(title))
	if len(traces) == 0 {
		b.WriteString("<p>none recorded</p>\n")
		return
	}
	b.WriteString("<table border=\"1\" cellpadding=\"4\"><tr><th>trace</th><th>request</th><th>duration</th><th>spans</th></tr>\n")
	for _, d := range traces {
		fmt.Fprintf(b, "<tr><td><a href=\"requests/%s\">%s</a></td><td>%s</td><td>%.3f ms</td><td>%d</td></tr>\n",
			html.EscapeString(d.TraceID), html.EscapeString(d.TraceID),
			html.EscapeString(d.Name), float64(d.DurNanos)/1e6, len(d.Spans))
	}
	b.WriteString("</table>\n")
}

func serveTrace(w http.ResponseWriter, r *http.Request, d *TraceData) {
	if wantJSON(r) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(d)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	var b strings.Builder
	b.WriteString("<!DOCTYPE html><html><head><title>trace " + html.EscapeString(d.TraceID) + "</title></head><body>\n")
	fmt.Fprintf(&b, "<h1>%s</h1>\n<p>trace <code>%s</code> &middot; %.3f ms &middot; %d spans",
		html.EscapeString(d.Name), html.EscapeString(d.TraceID), float64(d.DurNanos)/1e6, len(d.Spans))
	if d.RemoteParent != "" {
		fmt.Fprintf(&b, " &middot; remote parent <code>%s</code>", html.EscapeString(d.RemoteParent))
	}
	b.WriteString("</p>\n")
	writeSpanTree(&b, d)
	fmt.Fprintf(&b, "<p><a href=\"%s?format=json\">JSON</a></p>\n", html.EscapeString(d.TraceID))
	b.WriteString("</body></html>\n")
	fmt.Fprint(w, b.String())
}

// writeSpanTree renders the span tree as nested lists, children in
// start order under their parent.
func writeSpanTree(b *strings.Builder, d *TraceData) {
	children := make(map[string][]*SpanData)
	var root *SpanData
	for i := range d.Spans {
		sp := &d.Spans[i]
		if sp.Parent == "" {
			root = sp
			continue
		}
		children[sp.Parent] = append(children[sp.Parent], sp)
	}
	for _, kids := range children {
		sort.Slice(kids, func(i, j int) bool { return kids[i].StartNanos < kids[j].StartNanos })
	}
	if root == nil {
		b.WriteString("<p>malformed trace: no root span</p>\n")
		return
	}
	var walk func(sp *SpanData)
	walk = func(sp *SpanData) {
		fmt.Fprintf(b, "<li><b>%s</b> <code>%s</code> +%.3f ms, %.3f ms",
			html.EscapeString(sp.Phase), html.EscapeString(sp.Name),
			float64(sp.StartNanos)/1e6, float64(sp.DurNanos)/1e6)
		if len(sp.Attrs) > 0 {
			b.WriteString(" <small>")
			for i, a := range sp.Attrs {
				if i > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(b, "%s=%s", html.EscapeString(a.Key), html.EscapeString(a.Value))
			}
			b.WriteString("</small>")
		}
		if kids := children[sp.ID]; len(kids) > 0 {
			b.WriteString("<ul>\n")
			for _, k := range kids {
				walk(k)
			}
			b.WriteString("</ul>\n")
		}
		b.WriteString("</li>\n")
	}
	b.WriteString("<ul>\n")
	walk(root)
	b.WriteString("</ul>\n")
}
