package reqtrace

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// goodTrace builds a small valid TraceData for mutation tests.
func goodTrace(t *testing.T) *TraceData {
	t.Helper()
	tr := NewTracer(5, fakeClock(time.Millisecond))
	root := tr.StartTrace("join")
	c := root.StartChild("scan", "outer")
	c.End()
	root.End()
	d := root.Data()
	if err := ValidateData(d); err != nil {
		t.Fatalf("fixture trace invalid: %v", err)
	}
	return d
}

func marshal(t *testing.T, d *TraceData) []byte {
	t.Helper()
	raw, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestValidateNegativeCases(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*TraceData)
		want   string
	}{
		{"bad schema", func(d *TraceData) { d.Schema = 2 }, "schema"},
		{"bad trace id", func(d *TraceData) { d.TraceID = "xyz" }, "trace id"},
		{"zero trace id", func(d *TraceData) { d.TraceID = strings.Repeat("0", 32) }, "all zero"},
		{"negative trace dur", func(d *TraceData) { d.DurNanos = -1 }, "negative duration"},
		{"no spans", func(d *TraceData) { d.Spans = nil }, "no spans"},
		{"bad span id", func(d *TraceData) { d.Spans[0].ID = "nope" }, "span id"},
		{"duplicate span id", func(d *TraceData) { d.Spans[1].ID = d.Spans[0].ID }, "duplicate"},
		{"orphan parent", func(d *TraceData) { d.Spans[0].Parent = "00000000000000ff" }, "orphan parent"},
		{"self parent", func(d *TraceData) { d.Spans[0].Parent = d.Spans[0].ID }, "its own parent"},
		{"two roots", func(d *TraceData) { d.Spans[0].Parent = "" }, "root spans"},
		{"no root", func(d *TraceData) { d.Spans[1].Parent = d.Spans[0].ID }, "root spans"},
		{"end before start", func(d *TraceData) { d.Spans[0].DurNanos = -5 }, "end before start"},
		{"empty phase", func(d *TraceData) { d.Spans[0].Phase = "" }, "empty phase"},
		{"empty name", func(d *TraceData) { d.Spans[0].Name = "" }, "empty phase or name"},
		{"bad remote parent", func(d *TraceData) { d.RemoteParent = "zz" }, "span id"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := goodTrace(t)
			tc.mutate(d)
			err := Validate(marshal(t, d))
			if err == nil {
				t.Fatal("mutated trace accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestValidateRejectsForeignDocuments(t *testing.T) {
	// A telemetry snapshot and a JSONL entry are both JSON but neither
	// is a request trace: DisallowUnknownFields must reject them so the
	// tracecheck auto-detection stays unambiguous.
	foreign := [][]byte{
		[]byte(`{"counters":[],"histograms":[],"trace":[],"trace_dropped":0}`),
		[]byte(`{"seq":0,"kind":"span","phase":"scan","name":"x","start_ns":0}`),
		[]byte(`not json`),
		[]byte(`[]`),
	}
	for _, raw := range foreign {
		if err := Validate(raw); err == nil {
			t.Errorf("Validate accepted foreign document %s", raw)
		}
	}
	// Trailing garbage after a valid document is rejected too.
	d := goodTrace(t)
	raw := append(marshal(t, d), []byte("{}")...)
	if err := Validate(raw); err == nil {
		t.Error("Validate accepted trailing data")
	}
}
