package termmap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"textjoin/internal/document"
)

func TestDictionaryIntern(t *testing.T) {
	d := NewDictionary()
	a, err := d.Intern("apple")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := d.Intern("banana")
	a2, _ := d.Intern("apple")
	if a != a2 {
		t.Errorf("re-intern changed number: %d vs %d", a, a2)
	}
	if a == b {
		t.Error("distinct terms share a number")
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d", d.Len())
	}
	if n, ok := d.Lookup("banana"); !ok || n != b {
		t.Errorf("Lookup = %d, %v", n, ok)
	}
	if _, ok := d.Lookup("cherry"); ok {
		t.Error("Lookup of absent term succeeded")
	}
	s, err := d.Term(a)
	if err != nil || s != "apple" {
		t.Errorf("Term(%d) = %q, %v", a, s, err)
	}
	if _, err := d.Term(99); err == nil {
		t.Error("Term(out of range): want error")
	}
}

func TestLocalMappingBasics(t *testing.T) {
	dict := NewDictionary()
	// The standard already knows some terms.
	g1, _ := dict.Intern("database")
	g2, _ := dict.Intern("join")

	local := map[uint32]string{
		100: "join",     // known, different local number
		200: "database", // known
		300: "textual",  // new to the standard
	}
	m, err := NewLocalMapping("irsys1", dict, local)
	if err != nil {
		t.Fatal(err)
	}
	if m.System() != "irsys1" || m.Len() != 3 {
		t.Errorf("mapping = %s/%d", m.System(), m.Len())
	}
	if g, ok := m.Global(100); !ok || g != g2 {
		t.Errorf("Global(100) = %d, want %d", g, g2)
	}
	if g, ok := m.Global(200); !ok || g != g1 {
		t.Errorf("Global(200) = %d, want %d", g, g1)
	}
	if g, ok := m.Global(300); !ok || int(g) >= dict.Len() {
		t.Errorf("Global(300) = %d, dict len %d", g, dict.Len())
	}
	if _, ok := m.Global(999); ok {
		t.Error("Global of unmapped local succeeded")
	}
	if m.SizeBytes() != 3*6 {
		t.Errorf("SizeBytes = %d", m.SizeBytes())
	}
}

func TestRemapDocument(t *testing.T) {
	dict := NewDictionary()
	m, err := NewLocalMapping("sys", dict, map[uint32]string{
		1: "alpha", 2: "beta", 3: "alpha", // locals 1 and 3 are the same term
	})
	if err != nil {
		t.Fatal(err)
	}
	doc := document.New(7, map[uint32]int{1: 2, 2: 5, 3: 4, 9: 1}) // 9 unmapped
	out := m.RemapDocument(doc)
	if out.ID != 7 {
		t.Errorf("ID = %d", out.ID)
	}
	ga, _ := dict.Lookup("alpha")
	gb, _ := dict.Lookup("beta")
	if got := out.Weight(ga); got != 6 { // merged 2+4
		t.Errorf("alpha weight = %d, want 6", got)
	}
	if got := out.Weight(gb); got != 5 {
		t.Errorf("beta weight = %d, want 5", got)
	}
	if len(out.Cells) != 2 {
		t.Errorf("cells = %v", out.Cells)
	}
	if m.UnknownSeen() != 1 {
		t.Errorf("UnknownSeen = %d", m.UnknownSeen())
	}
}

func TestRemapAll(t *testing.T) {
	dict := NewDictionary()
	m, _ := NewLocalMapping("sys", dict, map[uint32]string{1: "x"})
	docs := []*document.Document{
		document.New(0, map[uint32]int{1: 1}),
		document.New(1, map[uint32]int{1: 3}),
	}
	out := m.RemapAll(docs)
	if len(out) != 2 || out[1].Weight(0) != 3 {
		t.Errorf("RemapAll = %+v", out)
	}
}

func TestTwoLocalsAgreeThroughStandard(t *testing.T) {
	// Two autonomous systems number the same vocabulary differently; after
	// remapping, identical texts have identical vectors.
	dict := NewDictionary()
	m1, _ := NewLocalMapping("a", dict, map[uint32]string{10: "data", 20: "base", 30: "query"})
	m2, _ := NewLocalMapping("b", dict, map[uint32]string{7: "query", 8: "data", 9: "base"})

	d1 := m1.RemapDocument(document.New(0, map[uint32]int{10: 1, 20: 2, 30: 3}))
	d2 := m2.RemapDocument(document.New(0, map[uint32]int{8: 1, 9: 2, 7: 3}))
	if len(d1.Cells) != len(d2.Cells) {
		t.Fatalf("cells differ: %v vs %v", d1.Cells, d2.Cells)
	}
	for i := range d1.Cells {
		if d1.Cells[i] != d2.Cells[i] {
			t.Errorf("cell %d: %v vs %v", i, d1.Cells[i], d2.Cells[i])
		}
	}
	if sim := document.Similarity(d1, d2); sim != 1*1+2*2+3*3 {
		t.Errorf("similarity = %v, want 14", sim)
	}
}

// Property: remapping preserves total occurrence mass of mapped terms.
func TestQuickRemapPreservesMass(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dict := NewDictionary()
		vocabSize := r.Intn(20) + 1
		vocab := make(map[uint32]string, vocabSize)
		for i := 0; i < vocabSize; i++ {
			// Collisions in names are allowed: several locals may map
			// to one standard term.
			vocab[uint32(i)] = string(rune('a' + r.Intn(8)))
		}
		m, err := NewLocalMapping("s", dict, vocab)
		if err != nil {
			return false
		}
		counts := make(map[uint32]int)
		var mass int
		for i := 0; i < r.Intn(15); i++ {
			local := uint32(r.Intn(vocabSize))
			w := r.Intn(5) + 1
			counts[local] += w
			mass += w
		}
		out := m.RemapDocument(document.New(1, counts))
		var got int
		for _, c := range out.Cells {
			got += int(c.Weight)
		}
		return got == mass
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
