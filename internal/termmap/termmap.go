// Package termmap implements the paper's term-number standardization for
// multidatabase environments.
//
// Section 3: "different numbers may be used to represent the same term in
// different local IR systems due to the local autonomy. ... An attractive
// method is to have a standard mapping from terms to term numbers and have
// all local IR systems use the same mapping." When locals have not adopted
// the standard, "this assumption can be simulated by always keeping the
// mapping structure in the memory".
//
// Dictionary is the standard (global) term → number mapping; LocalMapping
// is the memory-resident translation from one local system's term numbers
// to the standard numbers, built by matching vocabularies. Remapping a
// document renumbers and re-sorts its cells, merging occurrences when two
// local terms map to one standard term.
package termmap

import (
	"errors"
	"fmt"
	"sort"

	"textjoin/internal/codec"
	"textjoin/internal/document"
)

// Errors returned by the package.
var (
	ErrUnknownTerm = errors.New("termmap: term not in dictionary")
	ErrFull        = errors.New("termmap: dictionary full")
)

// Dictionary assigns standard term numbers to term strings. Numbers are
// dense, starting at 0, in insertion order.
type Dictionary struct {
	byTerm map[string]uint32
	terms  []string
}

// NewDictionary creates an empty standard dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{byTerm: make(map[string]uint32)}
}

// Intern returns the standard number of term, assigning the next free
// number on first sight.
func (d *Dictionary) Intern(term string) (uint32, error) {
	if n, ok := d.byTerm[term]; ok {
		return n, nil
	}
	if len(d.terms) > codec.MaxNumber {
		return 0, ErrFull
	}
	n := uint32(len(d.terms))
	d.byTerm[term] = n
	d.terms = append(d.terms, term)
	return n, nil
}

// Lookup returns the standard number of term without interning.
func (d *Dictionary) Lookup(term string) (uint32, bool) {
	n, ok := d.byTerm[term]
	return n, ok
}

// Term returns the string of a standard number.
func (d *Dictionary) Term(n uint32) (string, error) {
	if int(n) >= len(d.terms) {
		return "", fmt.Errorf("%w: number %d of %d", ErrUnknownTerm, n, len(d.terms))
	}
	return d.terms[n], nil
}

// Len returns the number of interned terms.
func (d *Dictionary) Len() int { return len(d.terms) }

// LocalMapping translates one local IR system's term numbers to standard
// numbers. It is the memory-resident "mapping structure" of Section 3.
type LocalMapping struct {
	system  string
	toGlob  map[uint32]uint32
	unknown int64
}

// NewLocalMapping builds a mapping for a local system from its vocabulary:
// localVocab[localNumber] = term string. Terms absent from the dictionary
// are interned (the standard grows to cover all locals).
func NewLocalMapping(system string, dict *Dictionary, localVocab map[uint32]string) (*LocalMapping, error) {
	m := &LocalMapping{system: system, toGlob: make(map[uint32]uint32, len(localVocab))}
	// Deterministic interning order: sort local numbers.
	locals := make([]uint32, 0, len(localVocab))
	for l := range localVocab {
		locals = append(locals, l)
	}
	sort.Slice(locals, func(i, j int) bool { return locals[i] < locals[j] })
	for _, l := range locals {
		g, err := dict.Intern(localVocab[l])
		if err != nil {
			return nil, err
		}
		m.toGlob[l] = g
	}
	return m, nil
}

// System returns the local system's name.
func (m *LocalMapping) System() string { return m.system }

// Len returns the number of mapped local terms.
func (m *LocalMapping) Len() int { return len(m.toGlob) }

// Global translates a local term number.
func (m *LocalMapping) Global(local uint32) (uint32, bool) {
	g, ok := m.toGlob[local]
	return g, ok
}

// UnknownSeen returns how many untranslatable local numbers RemapDocument
// has dropped.
func (m *LocalMapping) UnknownSeen() int64 { return m.unknown }

// RemapDocument renumbers a document from local to standard term numbers.
// Occurrence counts of local terms mapping to the same standard term are
// summed; local numbers missing from the mapping are dropped and counted
// in UnknownSeen.
func (m *LocalMapping) RemapDocument(d *document.Document) *document.Document {
	counts := make(map[uint32]int, len(d.Cells))
	for _, c := range d.Cells {
		g, ok := m.toGlob[c.Term]
		if !ok {
			m.unknown++
			continue
		}
		counts[g] += int(c.Weight)
	}
	return document.New(d.ID, counts)
}

// RemapAll renumbers a slice of documents.
func (m *LocalMapping) RemapAll(docs []*document.Document) []*document.Document {
	out := make([]*document.Document, len(docs))
	for i, d := range docs {
		out[i] = m.RemapDocument(d)
	}
	return out
}

// SizeBytes estimates the memory footprint of the mapping structure:
// 2·|t#| bytes per entry (local number → standard number), the figure a
// cost model should charge when locals have not adopted the standard.
func (m *LocalMapping) SizeBytes() int64 {
	return int64(len(m.toGlob)) * 2 * codec.TermNumberSize
}
