package topk

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0)
}

func TestBasicKeepsBest(t *testing.T) {
	tk := New(2)
	tk.Offer(1, 5)
	tk.Offer(2, 9)
	tk.Offer(3, 7)
	tk.Offer(4, 1)
	got := tk.Results()
	if len(got) != 2 || got[0] != (Match{2, 9}) || got[1] != (Match{3, 7}) {
		t.Errorf("Results = %v", got)
	}
	if tk.K() != 2 {
		t.Errorf("K = %d", tk.K())
	}
}

func TestZeroSimilarityNeverKept(t *testing.T) {
	tk := New(3)
	if tk.Offer(1, 0) {
		t.Error("Offer(sim=0) kept")
	}
	if tk.Offer(2, -1) {
		t.Error("Offer(sim<0) kept")
	}
	if tk.Len() != 0 {
		t.Errorf("Len = %d", tk.Len())
	}
}

func TestFewerThanKCandidates(t *testing.T) {
	tk := New(10)
	tk.Offer(5, 3)
	tk.Offer(6, 8)
	got := tk.Results()
	if len(got) != 2 || got[0].Doc != 6 || got[1].Doc != 5 {
		t.Errorf("Results = %v", got)
	}
}

func TestTieBreakByDocID(t *testing.T) {
	tk := New(2)
	tk.Offer(9, 5)
	tk.Offer(3, 5)
	tk.Offer(7, 5)
	got := tk.Results()
	// All sims equal: keep the two smallest doc ids, ordered ascending.
	if len(got) != 2 || got[0] != (Match{3, 5}) || got[1] != (Match{7, 5}) {
		t.Errorf("Results = %v", got)
	}
}

func TestThreshold(t *testing.T) {
	tk := New(2)
	if _, full := tk.Threshold(); full {
		t.Error("empty tracker reports full")
	}
	tk.Offer(1, 4)
	tk.Offer(2, 6)
	th, full := tk.Threshold()
	if !full || th != 4 {
		t.Errorf("Threshold = %v, %v; want 4, true", th, full)
	}
	tk.Offer(3, 5) // replaces doc 1
	th, _ = tk.Threshold()
	if th != 5 {
		t.Errorf("Threshold after replace = %v, want 5", th)
	}
}

func TestOfferReturnValue(t *testing.T) {
	tk := New(1)
	if !tk.Offer(1, 2) {
		t.Error("first Offer not kept")
	}
	if tk.Offer(2, 1) {
		t.Error("worse Offer kept")
	}
	if tk.Offer(2, 2) {
		t.Error("equal sim higher doc kept over incumbent")
	}
	if !tk.Offer(0, 2) {
		t.Error("equal sim lower doc should replace incumbent")
	}
	got := tk.Results()
	if got[0] != (Match{0, 2}) {
		t.Errorf("Results = %v", got)
	}
}

func TestReset(t *testing.T) {
	tk := New(2)
	tk.Offer(1, 1)
	tk.Reset()
	if tk.Len() != 0 {
		t.Errorf("Len after Reset = %d", tk.Len())
	}
	tk.Offer(2, 2)
	if got := tk.Results(); len(got) != 1 || got[0].Doc != 2 {
		t.Errorf("Results after Reset = %v", got)
	}
}

func TestLessOrdering(t *testing.T) {
	if !Less(Match{1, 5}, Match{2, 3}) {
		t.Error("higher sim should come first")
	}
	if !Less(Match{1, 5}, Match{2, 5}) {
		t.Error("equal sim: lower doc first")
	}
	if Less(Match{2, 5}, Match{2, 5}) {
		t.Error("Less(x, x) must be false")
	}
}

// referenceSelect is a brute-force top-k used to verify the heap.
func referenceSelect(k int, candidates []Match) []Match {
	var pos []Match
	for _, m := range candidates {
		if m.Sim > 0 {
			pos = append(pos, m)
		}
	}
	sort.Slice(pos, func(i, j int) bool { return Less(pos[i], pos[j]) })
	if len(pos) > k {
		pos = pos[:k]
	}
	return pos
}

// Property: TopK matches a full sort-and-cut for any candidate stream.
func TestQuickAgainstReference(t *testing.T) {
	check := func(seed int64, kSeed uint8) bool {
		r := rand.New(rand.NewSource(seed))
		k := int(kSeed%20) + 1
		n := r.Intn(200)
		candidates := make([]Match, 0, n)
		tk := New(k)
		for i := 0; i < n; i++ {
			m := Match{Doc: uint32(r.Intn(50)), Sim: float64(r.Intn(20))}
			candidates = append(candidates, m)
			tk.Offer(m.Doc, m.Sim)
		}
		got := tk.Results()
		want := referenceSelect(k, candidates)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Select agrees with the incremental tracker.
func TestQuickSelect(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := r.Intn(10) + 1
		n := r.Intn(100)
		candidates := make([]Match, n)
		for i := range candidates {
			candidates[i] = Match{Doc: uint32(r.Intn(30)), Sim: float64(r.Intn(10)) - 1}
		}
		got := Select(k, candidates)
		want := referenceSelect(k, candidates)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: results are always sorted best-first and within capacity.
func TestQuickResultsSorted(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := r.Intn(8) + 1
		tk := New(k)
		for i := 0; i < 300; i++ {
			tk.Offer(uint32(r.Intn(100)), r.Float64()*10-1)
		}
		got := tk.Results()
		if len(got) > k {
			return false
		}
		for i := 1; i < len(got); i++ {
			if Less(got[i], got[i-1]) {
				return false
			}
		}
		for _, m := range got {
			if m.Sim <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkOffer(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	sims := make([]float64, 4096)
	for i := range sims {
		sims[i] = r.Float64()
	}
	tk := New(20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk.Offer(uint32(i), sims[i%len(sims)])
	}
}
