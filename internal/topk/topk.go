// Package topk tracks the λ largest similarities for one outer document.
//
// Every join algorithm in the paper ends the processing of an outer
// document by identifying the λ documents of the inner collection with the
// largest similarities. HHNL additionally maintains the running set
// incrementally ("keep track of only those documents ... which have the λ
// largest similarities"), replacing the smallest kept similarity whenever a
// larger one arrives. This package implements that structure as a bounded
// min-heap with deterministic tie-breaking so that all three algorithms
// produce byte-identical results.
//
// Only non-zero similarities are candidates: the paper's accumulating
// algorithms store only non-zero intermediate similarities, so a document
// pair sharing no terms can never appear in a result.
package topk

import "sort"

// Match pairs an inner document with its similarity to the outer document.
type Match struct {
	Doc uint32
	Sim float64
}

// Less orders matches best-first: by descending similarity, breaking ties
// by ascending document number. The deterministic tie-break keeps the
// three algorithms' outputs identical.
func Less(a, b Match) bool {
	if a.Sim != b.Sim {
		return a.Sim > b.Sim
	}
	return a.Doc < b.Doc
}

// TopK keeps the k best matches seen so far.
//
// The zero value is not usable; create with New. TopK is not safe for
// concurrent use: each outer document owns its own tracker.
type TopK struct {
	k int
	// heap is a min-heap under the best-first order: heap[0] is the
	// *worst* kept match, the one replaced next.
	heap []Match
}

// New creates a tracker keeping the k best matches. k must be positive.
func New(k int) *TopK {
	if k <= 0 {
		panic("topk: k must be positive")
	}
	return &TopK{k: k, heap: make([]Match, 0, k)}
}

// K returns the tracker's capacity λ.
func (t *TopK) K() int { return t.k }

// Len returns how many matches are currently kept.
func (t *TopK) Len() int { return len(t.heap) }

// worse reports whether heap[i] is worse than heap[j] (ordered before it
// in the min-heap).
func (t *TopK) worse(i, j int) bool { return Less(t.heap[j], t.heap[i]) }

// Threshold returns the similarity a new candidate must exceed to enter a
// full tracker, and whether the tracker is full. HHNL uses it to skip the
// replacement bookkeeping cheaply.
func (t *TopK) Threshold() (float64, bool) {
	if len(t.heap) < t.k {
		return 0, false
	}
	return t.heap[0].Sim, true
}

// Offer considers a candidate match and reports whether it was kept.
// Candidates with zero or negative similarity are never kept.
func (t *TopK) Offer(doc uint32, sim float64) bool {
	if sim <= 0 {
		return false
	}
	m := Match{Doc: doc, Sim: sim}
	if len(t.heap) < t.k {
		t.heap = append(t.heap, m)
		t.up(len(t.heap) - 1)
		return true
	}
	// Full: replace the worst kept match if the candidate beats it.
	if !Less(m, t.heap[0]) {
		return false
	}
	t.heap[0] = m
	t.down(0)
	return true
}

func (t *TopK) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !t.worse(i, parent) {
			break
		}
		t.heap[i], t.heap[parent] = t.heap[parent], t.heap[i]
		i = parent
	}
}

func (t *TopK) down(i int) {
	n := len(t.heap)
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < n && t.worse(l, worst) {
			worst = l
		}
		if r < n && t.worse(r, worst) {
			worst = r
		}
		if worst == i {
			return
		}
		t.heap[i], t.heap[worst] = t.heap[worst], t.heap[i]
		i = worst
	}
}

// Results returns the kept matches ordered best-first. The tracker remains
// usable afterwards.
func (t *TopK) Results() []Match {
	out := make([]Match, len(t.heap))
	copy(out, t.heap)
	sort.Slice(out, func(i, j int) bool { return Less(out[i], out[j]) })
	return out
}

// Reset empties the tracker for reuse on the next outer document.
func (t *TopK) Reset() { t.heap = t.heap[:0] }

// Select returns the k best matches of a full candidate slice, best-first,
// using the same candidate rules as TopK (non-positive similarities are
// dropped). It is the reference implementation used by tests and by the
// accumulate-then-select algorithms (HVNL, VVM).
func Select(k int, candidates []Match) []Match {
	t := New(k)
	for _, m := range candidates {
		t.Offer(m.Doc, m.Sim)
	}
	return t.Results()
}
