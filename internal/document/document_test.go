package document

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"textjoin/internal/codec"
)

func doc(id uint32, pairs ...uint32) *Document {
	cells := make([]Cell, 0, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		cells = append(cells, Cell{Term: pairs[i], Weight: uint16(pairs[i+1])})
	}
	return &Document{ID: id, Cells: cells}
}

func TestNewMergesAndSorts(t *testing.T) {
	d := New(3, map[uint32]int{7: 2, 1: 5, 4: 1, 9: 0, 2: -3})
	if d.ID != 3 {
		t.Errorf("ID = %d", d.ID)
	}
	want := []Cell{{1, 5}, {4, 1}, {7, 2}}
	if len(d.Cells) != len(want) {
		t.Fatalf("cells = %v, want %v", d.Cells, want)
	}
	for i := range want {
		if d.Cells[i] != want[i] {
			t.Errorf("cell %d = %v, want %v", i, d.Cells[i], want[i])
		}
	}
	if d.Terms() != 3 {
		t.Errorf("Terms = %d", d.Terms())
	}
}

func TestNewClampsWeights(t *testing.T) {
	d := New(0, map[uint32]int{1: 1 << 20})
	if d.Cells[0].Weight != codec.MaxWeight {
		t.Errorf("weight = %d, want clamped %d", d.Cells[0].Weight, codec.MaxWeight)
	}
}

func TestWeightLookup(t *testing.T) {
	d := doc(1, 2, 10, 5, 20, 9, 30)
	cases := []struct {
		term uint32
		want uint16
	}{{2, 10}, {5, 20}, {9, 30}, {1, 0}, {4, 0}, {100, 0}}
	for _, c := range cases {
		if got := d.Weight(c.term); got != c.want {
			t.Errorf("Weight(%d) = %d, want %d", c.term, got, c.want)
		}
	}
}

func TestNorm(t *testing.T) {
	d := doc(1, 1, 3, 2, 4)
	if got := d.Norm(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := (&Document{}).Norm(); got != 0 {
		t.Errorf("empty Norm = %v", got)
	}
}

func TestValidate(t *testing.T) {
	if err := doc(1, 1, 1, 2, 1).Validate(); err != nil {
		t.Errorf("valid doc: %v", err)
	}
	if err := doc(1, 2, 1, 2, 1).Validate(); err == nil {
		t.Error("duplicate terms: want error")
	}
	if err := doc(1, 5, 1, 2, 1).Validate(); err == nil {
		t.Error("descending terms: want error")
	}
	if err := (&Document{ID: codec.MaxNumber + 1}).Validate(); err == nil {
		t.Error("oversized id: want error")
	}
	big := &Document{ID: 1, Cells: []Cell{{Term: codec.MaxNumber + 1, Weight: 1}}}
	if err := big.Validate(); err == nil {
		t.Error("oversized term: want error")
	}
}

func TestSimilarityExamples(t *testing.T) {
	d1 := doc(1, 1, 2, 3, 4, 5, 1)
	d2 := doc(2, 3, 5, 5, 2, 9, 7)
	// common terms: 3 (4·5) and 5 (1·2) => 22
	if got := Similarity(d1, d2); got != 22 {
		t.Errorf("Similarity = %v, want 22", got)
	}
	if got := Similarity(d1, doc(3, 100, 1)); got != 0 {
		t.Errorf("disjoint Similarity = %v, want 0", got)
	}
	if got := Similarity(&Document{}, d1); got != 0 {
		t.Errorf("empty Similarity = %v, want 0", got)
	}
	if got := CommonTerms(d1, d2); got != 2 {
		t.Errorf("CommonTerms = %d, want 2", got)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	d := doc(12, 3, 7, 10, 2)
	r := d.ToRecord()
	back := FromRecord(r)
	if back.ID != d.ID || len(back.Cells) != len(d.Cells) {
		t.Fatalf("round trip = %+v", back)
	}
	for i := range d.Cells {
		if back.Cells[i] != d.Cells[i] {
			t.Errorf("cell %d = %v, want %v", i, back.Cells[i], d.Cells[i])
		}
	}
	if d.EncodedSize() != codec.EncodedRecordSize(2) {
		t.Errorf("EncodedSize = %d", d.EncodedSize())
	}
}

func TestIDF(t *testing.T) {
	if got := IDF(100, 0); got != 0 {
		t.Errorf("IDF df=0 = %v", got)
	}
	if got := IDF(0, 5); got != 0 {
		t.Errorf("IDF n=0 = %v", got)
	}
	rare := IDF(1000, 1)
	common := IDF(1000, 900)
	if rare <= common {
		t.Errorf("IDF rare=%v should exceed common=%v", rare, common)
	}
}

func TestWeightingString(t *testing.T) {
	for _, c := range []struct {
		w    Weighting
		want string
	}{{RawTF, "raw"}, {Cosine, "cosine"}, {TFIDF, "tfidf"}, {Weighting(9), "Weighting(9)"}} {
		if got := c.w.String(); got != c.want {
			t.Errorf("String(%d) = %q, want %q", int(c.w), got, c.want)
		}
	}
}

func TestParseWeighting(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Weighting
		ok   bool
	}{{"raw", RawTF, true}, {"", RawTF, true}, {"cosine", Cosine, true}, {"tfidf", TFIDF, true}, {"bogus", RawTF, false}} {
		got, err := ParseWeighting(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("ParseWeighting(%q) = %v, %v", c.in, got, err)
		}
	}
}

func TestScorerValidation(t *testing.T) {
	if _, err := NewScorer(Cosine, nil, nil, nil); err == nil {
		t.Error("cosine without norms: want error")
	}
	if _, err := NewScorer(TFIDF, nil, nil, nil); err == nil {
		t.Error("tfidf without idf: want error")
	}
	if _, err := NewScorer(Weighting(42), nil, nil, nil); err == nil {
		t.Error("unknown weighting: want error")
	}
	s, err := NewScorer(RawTF, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Weighting() != RawTF {
		t.Errorf("Weighting = %v", s.Weighting())
	}
}

func TestScorerRaw(t *testing.T) {
	s, _ := NewScorer(RawTF, nil, nil, nil)
	d1 := doc(1, 1, 2, 3, 4)
	d2 := doc(2, 3, 5)
	if got := s.Score(d1, d2); got != 20 {
		t.Errorf("Score = %v, want 20", got)
	}
	if s.TermFactor(3) != 1 {
		t.Errorf("TermFactor = %v, want 1", s.TermFactor(3))
	}
	if got := s.Finalize(1, 2, 20); got != 20 {
		t.Errorf("Finalize = %v, want identity", got)
	}
}

func TestScorerCosine(t *testing.T) {
	d1 := doc(1, 1, 3, 2, 4) // norm 5
	d2 := doc(2, 1, 6, 2, 8) // norm 10
	norms1 := map[uint32]float64{1: d1.Norm()}
	norms2 := map[uint32]float64{2: d2.Norm()}
	s, err := NewScorer(Cosine, nil, norms1, norms2)
	if err != nil {
		t.Fatal(err)
	}
	got := s.Score(d1, d2)
	if math.Abs(got-1) > 1e-12 { // parallel vectors => cosine 1
		t.Errorf("cosine Score = %v, want 1", got)
	}
	// Missing norm: treated as zero similarity rather than dividing by 0.
	if got := s.Finalize(99, 2, 10); got != 0 {
		t.Errorf("Finalize missing norm = %v, want 0", got)
	}
}

func TestScorerTFIDF(t *testing.T) {
	idf := map[uint32]float64{1: 2, 2: 0.5}
	s, err := NewScorer(TFIDF, idf, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	d1 := doc(1, 1, 1, 2, 2)
	d2 := doc(2, 1, 3, 2, 4)
	// term 1: 1·3·2² = 12 ; term 2: 2·4·0.5² = 2 ; total 14
	if got := s.Score(d1, d2); math.Abs(got-14) > 1e-12 {
		t.Errorf("tfidf Score = %v, want 14", got)
	}
	if got := s.TermFactor(1); got != 4 {
		t.Errorf("TermFactor(1) = %v, want 4", got)
	}
	if got := s.TermFactor(999); got != 0 {
		t.Errorf("TermFactor(unknown) = %v, want 0", got)
	}
}

func randomDoc(r *rand.Rand, id uint32, vocab int) *Document {
	counts := make(map[uint32]int)
	for i, n := 0, r.Intn(30); i < n; i++ {
		counts[uint32(r.Intn(vocab))] = 1 + r.Intn(5)
	}
	return New(id, counts)
}

// Property: merge-based similarity equals the naive map-based dot product.
func TestQuickSimilarityAgainstNaive(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomDoc(r, 1, 40)
		b := randomDoc(r, 2, 40)
		naive := 0.0
		m := make(map[uint32]uint16)
		for _, c := range a.Cells {
			m[c.Term] = c.Weight
		}
		for _, c := range b.Cells {
			if w, ok := m[c.Term]; ok {
				naive += float64(w) * float64(c.Weight)
			}
		}
		return Similarity(a, b) == naive
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: similarity is symmetric and non-negative; self-similarity
// equals the squared norm.
func TestQuickSimilarityAlgebra(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomDoc(r, 1, 25)
		b := randomDoc(r, 2, 25)
		s1, s2 := Similarity(a, b), Similarity(b, a)
		self := Similarity(a, a)
		norm := a.Norm()
		return s1 == s2 && s1 >= 0 && math.Abs(self-norm*norm) < 1e-6
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
