// Package document implements the vector representation of documents used
// throughout the paper.
//
// A document is a list of d-cells (term number, occurrence count) sorted by
// ascending term number. The similarity between two documents D1 and D2
// with common terms t1..tn occurring u1..un times in D1 and v1..vn times in
// D2 is Σ ui·vi (the paper's base similarity). The package also provides
// the "more realistic" variants the paper mentions: cosine normalization by
// the document norms and inverse-document-frequency term weighting, both of
// which can be layered on top of the raw dot product exactly as the paper
// prescribes (norms pre-computed and divided in at the end; idf weights
// pre-computed per term and folded into the products).
package document

import (
	"fmt"
	"math"
	"sort"

	"textjoin/internal/codec"
)

// Cell is one (term, occurrences) component of a document vector.
type Cell struct {
	Term   uint32
	Weight uint16
}

// Document is a term vector: cells sorted by strictly ascending term
// number, plus the document's number within its collection.
type Document struct {
	ID    uint32
	Cells []Cell
}

// Terms returns the number of distinct terms in the document (the paper's
// per-document K contribution).
func (d *Document) Terms() int { return len(d.Cells) }

// EncodedSize returns the packed on-disk size of the document in bytes.
func (d *Document) EncodedSize() int64 { return codec.EncodedRecordSize(len(d.Cells)) }

// Weight returns the occurrence count of term in d, or 0 when absent,
// using binary search over the sorted cells.
func (d *Document) Weight(term uint32) uint16 {
	i := sort.Search(len(d.Cells), func(i int) bool { return d.Cells[i].Term >= term })
	if i < len(d.Cells) && d.Cells[i].Term == term {
		return d.Cells[i].Weight
	}
	return 0
}

// Norm returns the Euclidean norm of the raw occurrence vector, used for
// cosine normalization. The paper pre-computes and stores norms; callers
// should do the same rather than recompute per comparison.
func (d *Document) Norm() float64 {
	var sum float64
	for _, c := range d.Cells {
		w := float64(c.Weight)
		sum += w * w
	}
	return math.Sqrt(sum)
}

// Validate checks the invariants every document must satisfy before being
// stored: sorted, strictly ascending cells with representable numbers.
func (d *Document) Validate() error {
	if d.ID > codec.MaxNumber {
		return fmt.Errorf("document %d: id exceeds %d", d.ID, codec.MaxNumber)
	}
	prev := int64(-1)
	for i, c := range d.Cells {
		if c.Term > codec.MaxNumber {
			return fmt.Errorf("document %d: cell %d term %d exceeds %d", d.ID, i, c.Term, codec.MaxNumber)
		}
		if int64(c.Term) <= prev {
			return fmt.Errorf("document %d: cells not strictly ascending at %d (term %d after %d)", d.ID, i, c.Term, prev)
		}
		prev = int64(c.Term)
	}
	return nil
}

// New builds a Document from an unsorted bag of (term, count) pairs,
// merging duplicate terms by summing their counts (saturating at the
// on-disk maximum).
func New(id uint32, counts map[uint32]int) *Document {
	cells := make([]Cell, 0, len(counts))
	for term, n := range counts {
		if n <= 0 {
			continue
		}
		cells = append(cells, Cell{Term: term, Weight: codec.ClampWeight(n)})
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].Term < cells[j].Term })
	return &Document{ID: id, Cells: cells}
}

// FromRecord converts a decoded storage record into a Document.
func FromRecord(r codec.Record) *Document {
	cells := make([]Cell, len(r.Cells))
	for i, c := range r.Cells {
		cells[i] = Cell{Term: c.Number, Weight: c.Weight}
	}
	return &Document{ID: r.Number, Cells: cells}
}

// Clone returns a deep copy of d whose cells do not alias d's. Reuse-style
// iterators (collection.Scanner.NextReuse) overwrite the yielded document
// on the next call; callers that retain documents across calls clone them
// first.
func (d *Document) Clone() *Document {
	cells := make([]Cell, len(d.Cells))
	copy(cells, d.Cells)
	return &Document{ID: d.ID, Cells: cells}
}

// DecodeInto decodes one packed record from the start of b directly into
// d, reusing d's cell capacity so a steady-state decode loop allocates
// nothing. It is the document-side twin of codec.DecodeRecordInto: one
// bounds check against the full record size up front, then a straight
// 5-byte unpack loop, with the strictly-ascending invariant verified by a
// flag instead of a per-cell early exit. On error d is left with zero
// cells. Returns the number of bytes consumed.
func DecodeInto(d *Document, b []byte) (int64, error) {
	if len(b) < codec.DocHeaderSize {
		d.Cells = d.Cells[:0]
		return 0, fmt.Errorf("document: %w: need %d header bytes, have %d", codec.ErrShortBuffer, codec.DocHeaderSize, len(b))
	}
	number := codec.Uint24(b)
	count := int(codec.Uint24(b[codec.DocNumberSize:]))
	size := codec.EncodedRecordSize(count)
	if int64(len(b)) < size {
		d.Cells = d.Cells[:0]
		return 0, fmt.Errorf("document: %w: record needs %d bytes, have %d", codec.ErrShortBuffer, size, len(b))
	}
	if cap(d.Cells) < count {
		d.Cells = make([]Cell, count)
	}
	d.Cells = d.Cells[:count]
	body := b[codec.DocHeaderSize:size:size]
	ascending := true
	prev := int64(-1)
	for i := range d.Cells {
		c := body[i*codec.CellSize : i*codec.CellSize+codec.CellSize]
		t := uint32(c[0]) | uint32(c[1])<<8 | uint32(c[2])<<16
		d.Cells[i] = Cell{Term: t, Weight: uint16(c[3]) | uint16(c[4])<<8}
		ascending = ascending && int64(t) > prev
		prev = int64(t)
	}
	if !ascending {
		d.Cells = d.Cells[:0]
		return 0, fmt.Errorf("document: %w: cells not strictly ascending", codec.ErrCorrupt)
	}
	d.ID = number
	return size, nil
}

// ToRecord converts a Document into its storage record.
func (d *Document) ToRecord() codec.Record {
	cells := make([]codec.Cell, len(d.Cells))
	for i, c := range d.Cells {
		cells[i] = codec.Cell{Number: c.Term, Weight: c.Weight}
	}
	return codec.Record{Number: d.ID, Cells: cells}
}

// Similarity computes the paper's base similarity Σ ui·vi over the common
// terms of a and b with a linear merge of the two sorted cell lists.
func Similarity(a, b *Document) float64 {
	return DotCells(a.Cells, b.Cells)
}

// DotCells merges two sorted cell slices and accumulates the products of
// the weights of common terms.
func DotCells(a, b []Cell) float64 {
	var sum float64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Term < b[j].Term:
			i++
		case a[i].Term > b[j].Term:
			j++
		default:
			sum += float64(a[i].Weight) * float64(b[j].Weight)
			i++
			j++
		}
	}
	return sum
}

// CommonTerms returns the number of terms shared by a and b.
func CommonTerms(a, b *Document) int {
	n := 0
	i, j := 0, 0
	for i < len(a.Cells) && j < len(b.Cells) {
		switch {
		case a.Cells[i].Term < b.Cells[j].Term:
			i++
		case a.Cells[i].Term > b.Cells[j].Term:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// Weighting selects the similarity function applied by a join.
type Weighting int

const (
	// RawTF is the paper's base similarity: the dot product of
	// occurrence counts.
	RawTF Weighting = iota
	// Cosine divides the dot product by the product of the two
	// pre-computed document norms.
	Cosine
	// TFIDF multiplies each term product by the squared inverse document
	// frequency weight of the term (idf of the inner collection, as the
	// paper stores idf in the inverted list heads).
	TFIDF
)

// String names the weighting for logs and flags.
func (w Weighting) String() string {
	switch w {
	case RawTF:
		return "raw"
	case Cosine:
		return "cosine"
	case TFIDF:
		return "tfidf"
	default:
		return fmt.Sprintf("Weighting(%d)", int(w))
	}
}

// ParseWeighting converts a flag string to a Weighting.
func ParseWeighting(s string) (Weighting, error) {
	switch s {
	case "raw", "":
		return RawTF, nil
	case "cosine":
		return Cosine, nil
	case "tfidf":
		return TFIDF, nil
	}
	return RawTF, fmt.Errorf("document: unknown weighting %q", s)
}

// IDF returns the inverse document frequency weight log(1 + N/df) for a
// term with document frequency df in a collection of n documents. A zero
// document frequency yields 0 so that terms absent from the collection
// contribute nothing.
func IDF(n int64, df int64) float64 {
	if df <= 0 || n <= 0 {
		return 0
	}
	return math.Log(1 + float64(n)/float64(df))
}

// Scorer computes similarities under a Weighting with pre-computed
// statistics, following the paper's advice to pre-compute norms and idf
// weights rather than recompute them per pair.
type Scorer struct {
	weighting Weighting
	// idf maps term -> idf weight (TFIDF only).
	idf map[uint32]float64
	// norms maps document id -> norm for each side (Cosine only).
	outerNorms map[uint32]float64
	innerNorms map[uint32]float64
}

// NewScorer builds a scorer for the given weighting. idf may be nil unless
// the weighting is TFIDF; the norm maps may be nil unless it is Cosine.
func NewScorer(w Weighting, idf map[uint32]float64, outerNorms, innerNorms map[uint32]float64) (*Scorer, error) {
	s := &Scorer{weighting: w, idf: idf, outerNorms: outerNorms, innerNorms: innerNorms}
	switch w {
	case RawTF:
	case Cosine:
		if outerNorms == nil || innerNorms == nil {
			return nil, fmt.Errorf("document: cosine weighting requires pre-computed norms")
		}
	case TFIDF:
		if idf == nil {
			return nil, fmt.Errorf("document: tfidf weighting requires idf weights")
		}
	default:
		return nil, fmt.Errorf("document: unknown weighting %v", w)
	}
	return s, nil
}

// Weighting reports the scorer's weighting.
func (s *Scorer) Weighting() Weighting { return s.weighting }

// TermFactor returns the multiplicative factor applied to the product of
// occurrence counts for a given term (1 for raw and cosine, idf² for
// tf-idf). Algorithms that accumulate term by term (HVNL, VVM) apply it as
// they accumulate.
func (s *Scorer) TermFactor(term uint32) float64 {
	if s.weighting != TFIDF {
		return 1
	}
	w := s.idf[term]
	return w * w
}

// Finalize applies the per-pair normalization to an accumulated raw score
// (division by the norms for cosine; identity otherwise). outer is the C2
// document id, inner the C1 document id.
func (s *Scorer) Finalize(outer, inner uint32, raw float64) float64 {
	if s.weighting != Cosine {
		return raw
	}
	no := s.outerNorms[outer]
	ni := s.innerNorms[inner]
	if no == 0 || ni == 0 {
		return 0
	}
	return raw / (no * ni)
}

// Score computes the full similarity of two documents under the scorer,
// the reference implementation used by HHNL and by the tests of the
// accumulating algorithms.
func (s *Scorer) Score(outer, inner *Document) float64 {
	var raw float64
	i, j := 0, 0
	for i < len(outer.Cells) && j < len(inner.Cells) {
		oc, ic := outer.Cells[i], inner.Cells[j]
		switch {
		case oc.Term < ic.Term:
			i++
		case oc.Term > ic.Term:
			j++
		default:
			raw += float64(oc.Weight) * float64(ic.Weight) * s.TermFactor(oc.Term)
			i++
			j++
		}
	}
	return s.Finalize(outer.ID, inner.ID, raw)
}
