package simulate

import (
	"fmt"
	"strings"

	"textjoin/internal/corpus"
	"textjoin/internal/costmodel"
)

// Additional parameter sweeps beyond the paper's five groups, under its
// further-studies item "(4) more detailed simulation and experiment".

// LambdaSweep is the λ values swept by GroupLambda.
var LambdaSweep = []int64{1, 5, 20, 100, 500}

// DeltaSweep is the δ values swept by GroupDelta.
var DeltaSweep = []float64{0.01, 0.05, 0.1, 0.3, 0.6, 1.0}

// GroupLambda sweeps λ for each self join at base parameters. The paper
// notes "only HHNL involves λ and it is not really sensitive to λ"; the
// table demonstrates it (λ enters only through the 4λ/P term of HHNL's
// batch size).
func GroupLambda() []*Table {
	var tables []*Table
	for _, p := range corpus.Profiles() {
		c := p.Stats()
		in := costmodel.Input{C1: c, C2: c}
		t := &Table{
			ID:      fmt.Sprintf("lambda-%s", strings.ToLower(p.Name)),
			Title:   fmt.Sprintf("self join %s ⋈ %s, varying λ (B=10000, α=5)", p.Name, p.Name),
			Columns: CostColumns,
		}
		for _, lambda := range LambdaSweep {
			q := costmodel.Query{Lambda: lambda, Delta: 0.1}
			t.Rows = append(t.Rows, costRow(fmt.Sprintf("lambda=%d", lambda), in, costmodel.DefaultSystem(), q))
		}
		tables = append(tables, t)
	}
	return tables
}

// GroupDelta sweeps δ, the non-zero similarity fraction, for each self
// join. δ scales HVNL's accumulator reservation and, much more
// importantly, VVM's partition count ⌈SM/M⌉ — the knob behind VVM's
// N1·N2 memory sensitivity.
func GroupDelta() []*Table {
	var tables []*Table
	for _, p := range corpus.Profiles() {
		c := p.Stats()
		in := costmodel.Input{C1: c, C2: c}
		t := &Table{
			ID:      fmt.Sprintf("delta-%s", strings.ToLower(p.Name)),
			Title:   fmt.Sprintf("self join %s ⋈ %s, varying δ (B=10000, α=5)", p.Name, p.Name),
			Columns: CostColumns,
		}
		for _, delta := range DeltaSweep {
			q := costmodel.Query{Lambda: 20, Delta: delta}
			t.Rows = append(t.Rows, costRow(fmt.Sprintf("delta=%g", delta), in, costmodel.DefaultSystem(), q))
		}
		tables = append(tables, t)
	}
	return tables
}

// LambdaSensitivity quantifies the paper's insensitivity claim over the
// practical range λ ≤ maxLambda: the maximum relative change of hhs per
// collection. The full sweep (GroupLambda) also includes λ=500, where the
// claim visibly breaks — at 4·500/P ≈ 0.5 pages of similarity slots per
// outer document the batch size collapses for small-document collections.
func LambdaSensitivity(maxLambda int64) map[string]float64 {
	out := make(map[string]float64, 3)
	for _, tb := range GroupLambda() {
		lo, hi := 0.0, 0.0
		first := true
		for _, r := range tb.Rows {
			var lambda int64
			fmt.Sscanf(r.Label, "lambda=%d", &lambda)
			if lambda > maxLambda {
				continue
			}
			v := r.Costs["hhs"]
			if first {
				lo, hi = v, v
				first = false
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		name := strings.TrimPrefix(tb.ID, "lambda-")
		if lo > 0 {
			out[name] = (hi - lo) / lo
		}
	}
	return out
}
