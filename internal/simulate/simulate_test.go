package simulate

import (
	"math"
	"strings"
	"testing"

	"textjoin/internal/corpus"
)

func TestTable1Shape(t *testing.T) {
	tb := Table1()
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	if len(tb.Columns) != 3 {
		t.Fatalf("columns = %v", tb.Columns)
	}
	// Spot check: WSJ collection size ≈ 40605 pages at P=4000.
	var sizeRow Row
	for _, r := range tb.Rows {
		if r.Label == "size(pages)" {
			sizeRow = r
		}
	}
	if math.Abs(sizeRow.Costs["WSJ"]-40605) > 10 {
		t.Errorf("WSJ size = %v, want ≈ 40605", sizeRow.Costs["WSJ"])
	}
	if math.Abs(sizeRow.Costs["FR"]-33315) > 10 {
		t.Errorf("FR size = %v, want ≈ 33315", sizeRow.Costs["FR"])
	}
	if math.Abs(sizeRow.Costs["DOE"]-25152) > 10 {
		t.Errorf("DOE size = %v, want ≈ 25152", sizeRow.Costs["DOE"])
	}
	if !strings.Contains(tb.Format(), "table1") {
		t.Error("Format missing id")
	}
}

func TestGroup1Shape(t *testing.T) {
	tables := Group1()
	if len(tables) != 6 {
		t.Fatalf("Group 1 should have 6 simulations (3 collections × 2 parameters), got %d", len(tables))
	}
	for _, tb := range tables {
		wantRows := len(BSweep)
		if strings.Contains(tb.ID, "alpha") {
			wantRows = len(AlphaSweep)
		}
		if len(tb.Rows) != wantRows {
			t.Errorf("%s: rows = %d, want %d", tb.ID, len(tb.Rows), wantRows)
		}
		for _, r := range tb.Rows {
			for _, c := range CostColumns {
				if _, ok := r.Costs[c]; !ok {
					t.Errorf("%s %s: missing column %s", tb.ID, r.Label, c)
				}
			}
			if r.Chosen == "" {
				t.Errorf("%s %s: no chosen algorithm", tb.ID, r.Label)
			}
		}
	}
}

func TestGroup1CostsDecreaseWithMemory(t *testing.T) {
	for _, tb := range Group1() {
		if !strings.Contains(tb.ID, "-B") {
			continue
		}
		for _, col := range []string{"hhs", "hvs", "vvs"} {
			prev := math.Inf(1)
			for _, r := range tb.Rows {
				v := r.Costs[col]
				if !math.IsInf(v, 1) && v > prev+1e-6 {
					t.Errorf("%s: %s increases with B at %s (%v > %v)", tb.ID, col, r.Label, v, prev)
				}
				if !math.IsInf(v, 1) {
					prev = v
				}
			}
		}
	}
}

func TestGroup1AlphaMonotone(t *testing.T) {
	for _, tb := range Group1() {
		if !strings.Contains(tb.ID, "alpha") {
			continue
		}
		for _, col := range []string{"hhr", "hvr", "vvr"} {
			prev := 0.0
			for _, r := range tb.Rows {
				v := r.Costs[col]
				if math.IsInf(v, 1) {
					continue
				}
				if v < prev-1e-6 {
					t.Errorf("%s: %s decreases with α at %s", tb.ID, col, r.Label)
				}
				prev = v
			}
		}
	}
}

func TestGroup2Shape(t *testing.T) {
	tables := Group2()
	if len(tables) != 6 {
		t.Fatalf("Group 2 should have 6 ordered pairs, got %d", len(tables))
	}
	seen := map[string]bool{}
	for _, tb := range tables {
		seen[tb.ID] = true
		if len(tb.Rows) != len(BSweep) {
			t.Errorf("%s: rows = %d", tb.ID, len(tb.Rows))
		}
	}
	for _, id := range []string{"group2-wsj-fr", "group2-fr-wsj", "group2-doe-wsj"} {
		if !seen[id] {
			t.Errorf("missing table %s (have %v)", id, seen)
		}
	}
}

func TestGroup3HVNLWinsSmallM(t *testing.T) {
	for _, tb := range Group3() {
		if len(tb.Rows) != len(MSweep) {
			t.Fatalf("%s: rows = %d", tb.ID, len(tb.Rows))
		}
		// m=1: HVNL must be the winner (the extreme single-query case).
		first := tb.Rows[0]
		if first.Chosen != "HVNL" {
			t.Errorf("%s m=1: chosen %s, want HVNL (costs %v)", tb.ID, first.Chosen, first.Costs)
		}
		// Costs grow with m for every algorithm's sequential variant.
		prev := 0.0
		for _, r := range tb.Rows {
			v := r.Costs["hvs"]
			if math.IsInf(v, 1) {
				continue
			}
			if v < prev-1e-6 {
				t.Errorf("%s: hvs decreases at %s", tb.ID, r.Label)
			}
			prev = v
		}
	}
}

func TestGroup4SmallerThanGroup3(t *testing.T) {
	// Group 4's sequential C2 reads and small inverted file can only
	// make things cheaper than Group 3 at the same m for HHNL and VVM.
	g3 := Group3()
	g4 := Group4()
	for i := range g3 {
		for j, r3 := range g3[i].Rows {
			r4 := g4[i].Rows[j]
			if r4.Costs["hhs"] > r3.Costs["hhs"]+1e-6 {
				t.Errorf("%s %s: group4 hhs %v > group3 %v", g4[i].ID, r4.Label, r4.Costs["hhs"], r3.Costs["hhs"])
			}
			if !math.IsInf(r4.Costs["vvs"], 1) && !math.IsInf(r3.Costs["vvs"], 1) &&
				r4.Costs["vvs"] > r3.Costs["vvs"]+1e-6 {
				t.Errorf("%s %s: group4 vvs %v > group3 %v", g4[i].ID, r4.Label, r4.Costs["vvs"], r3.Costs["vvs"])
			}
		}
	}
}

func TestGroup5VVMTakesOver(t *testing.T) {
	for _, tb := range Group5() {
		if len(tb.Rows) != len(FactorSweep) {
			t.Fatalf("%s: rows = %d", tb.ID, len(tb.Rows))
		}
		// At the largest factor VVM must win (the group's purpose).
		last := tb.Rows[len(tb.Rows)-1]
		if last.Chosen != "VVM" {
			t.Errorf("%s %s: chosen %s, want VVM (costs %v)", tb.ID, last.Label, last.Chosen, last.Costs)
		}
		// vvs improves (or stays) as the factor grows: fewer documents
		// mean fewer partitions over the same file sizes.
		prev := math.Inf(1)
		for _, r := range tb.Rows {
			v := r.Costs["vvs"]
			if math.IsInf(v, 1) {
				continue
			}
			if v > prev+1e-6 {
				t.Errorf("%s: vvs increases at %s (%v > %v)", tb.ID, r.Label, v, prev)
			}
			prev = v
		}
	}
}

func TestFindingsAllHold(t *testing.T) {
	fs := Findings()
	if len(fs) != 5 {
		t.Fatalf("findings = %d", len(fs))
	}
	for _, f := range fs {
		if !f.Holds {
			t.Errorf("finding %d does not hold: %s (%s)", f.ID, f.Statement, f.Evidence)
		}
	}
	report := FormatFindings(fs)
	if !strings.Contains(report, "(1)") || !strings.Contains(report, "(5)") {
		t.Error("report incomplete")
	}
}

func TestRunAllCount(t *testing.T) {
	tables := RunAll()
	// 1 (table1) + 6 (g1) + 6 (g2) + 3 (g3) + 3 (g4) + 3 (g5)
	// + 3 (λ sweep) + 3 (δ sweep) = 28.
	if len(tables) != 28 {
		t.Errorf("RunAll = %d tables, want 28", len(tables))
	}
	for _, tb := range tables {
		if tb.Format() == "" {
			t.Errorf("%s: empty format", tb.ID)
		}
	}
}

func TestMeasuredRankingMatchesModel(t *testing.T) {
	if testing.Short() {
		t.Skip("empirical run")
	}
	// The headline validation: across profiles, the measured cost
	// ranking of the three algorithms agrees with the model's
	// sequential-cost ranking (ties in either direction tolerated
	// within 20%).
	for _, p := range []corpus.Profile{corpus.WSJ, corpus.DOE} {
		res, err := Measured(p, p, 256, 200, 3)
		if err != nil {
			t.Fatal(err)
		}
		costs := map[string]float64{}
		models := map[string]float64{}
		for _, r := range res.Rows {
			costs[r.Alg] = r.MeasuredCost
			models[r.Alg] = r.ModelSeq
		}
		pairs := [][2]string{{"HHNL", "HVNL"}, {"HHNL", "VVM"}, {"HVNL", "VVM"}}
		for _, pair := range pairs {
			a, b := pair[0], pair[1]
			modelSaysALess := models[a] < models[b]*0.8
			modelSaysBLess := models[b] < models[a]*0.8
			switch {
			case modelSaysALess && costs[a] > costs[b]*1.2:
				t.Errorf("%s: model ranks %s < %s but measured %v > %v", p.Name, a, b, costs[a], costs[b])
			case modelSaysBLess && costs[b] > costs[a]*1.2:
				t.Errorf("%s: model ranks %s < %s but measured %v > %v", p.Name, b, a, costs[b], costs[a])
			}
		}
	}
}

func TestMeasuredAgainstModel(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping empirical run in -short mode")
	}
	res, err := Measured(corpus.WSJ, corpus.WSJ, 256, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.MeasuredCost <= 0 {
			t.Errorf("%s: measured cost %v", r.Alg, r.MeasuredCost)
		}
		if r.SeqReads+r.RandReads == 0 {
			t.Errorf("%s: no reads", r.Alg)
		}
	}
	if res.Format() == "" {
		t.Error("empty format")
	}
	// Shape check: VVM's measured cost should be within an order of
	// magnitude of its sequential model. The model idealizes records as
	// bare 5-byte cells while the real layout adds per-record headers,
	// which at reduced scale (short postings lists) inflate the files —
	// so the tolerance is generous but still catches order-of-magnitude
	// drift.
	for _, r := range res.Rows {
		if r.Alg == "VVM" && !math.IsInf(r.ModelSeq, 1) {
			ratio := r.MeasuredCost / r.ModelSeq
			if ratio < 0.2 || ratio > 8 {
				t.Errorf("VVM measured/model = %v, want within [0.2, 8]", ratio)
			}
		}
	}
}
