package simulate

import (
	"textjoin/internal/corpus"
	"textjoin/internal/costmodel"

	"math"
	"strings"
	"testing"
)

func TestGroupLambdaShape(t *testing.T) {
	tables := GroupLambda()
	if len(tables) != 3 {
		t.Fatalf("tables = %d", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) != len(LambdaSweep) {
			t.Errorf("%s: rows = %d", tb.ID, len(tb.Rows))
		}
	}
}

func TestLambdaInsensitivity(t *testing.T) {
	// The paper: "only HHNL involves λ and it is not really sensitive to
	// λ". λ only shrinks the batch size through the 4λ/P slot term, so
	// over the paper's own range (λ ≤ 20) the cost difference is bounded
	// by one extra inner scan (⌈N2/X⌉ is a ceiling, so a marginal batch
	// shrink can add one scan of D1 — never more).
	sys := costmodel.DefaultSystem()
	for _, p := range corpus.Profiles() {
		d1 := p.Stats().D(sys)
		name := strings.ToLower(p.Name)
		rel := LambdaSensitivity(20)[name]
		// Convert the relative variation back to absolute pages against
		// the λ=1 cost to compare with D1.
		var base float64
		for _, tb := range GroupLambda() {
			if tb.ID == "lambda-"+name {
				base = tb.Rows[0].Costs["hhs"]
			}
		}
		if rel*base > d1*1.01 {
			t.Errorf("%s: hhs varies by %.0f pages across λ ≤ 20, more than one inner scan (%.0f)",
				name, rel*base, d1)
		}
	}
	// At λ=500 the claim breaks for DOE (documents of 0.11 pages carry
	// 0.49 pages of similarity slots each): hhs grows by more than 50%.
	full := LambdaSensitivity(500)
	if full["doe"] < 0.5 {
		t.Errorf("doe at λ=500: variation %.1f%%, expected the claim to break (> 50%%)", full["doe"]*100)
	}
	// And the non-HHNL formulas do not involve λ at all.
	for _, tb := range GroupLambda() {
		for _, col := range []string{"hvs", "vvs"} {
			first := tb.Rows[0].Costs[col]
			for _, r := range tb.Rows[1:] {
				if !math.IsInf(first, 1) && math.Abs(r.Costs[col]-first) > 1e-9 {
					t.Errorf("%s: %s changed with λ (%v vs %v)", tb.ID, col, r.Costs[col], first)
				}
			}
		}
	}
}

func TestGroupDeltaShape(t *testing.T) {
	tables := GroupDelta()
	if len(tables) != 3 {
		t.Fatalf("tables = %d", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) != len(DeltaSweep) {
			t.Errorf("%s: rows = %d", tb.ID, len(tb.Rows))
		}
		// vvs is non-decreasing in δ (more partitions), and hhs ignores δ.
		prevVVS := 0.0
		firstHHS := tb.Rows[0].Costs["hhs"]
		for _, r := range tb.Rows {
			v := r.Costs["vvs"]
			if !math.IsInf(v, 1) {
				if v < prevVVS-1e-9 {
					t.Errorf("%s: vvs decreased at %s", tb.ID, r.Label)
				}
				prevVVS = v
			}
			if math.Abs(r.Costs["hhs"]-firstHHS) > 1e-9 {
				t.Errorf("%s: hhs changed with δ at %s", tb.ID, r.Label)
			}
		}
	}
}

func TestDeltaScalesVVMPartitions(t *testing.T) {
	// At 10× the δ, VVM's cost grows by roughly 10× for partition-bound
	// joins (WSJ self join: SM ≫ M at both settings).
	for _, tb := range GroupDelta() {
		if !strings.Contains(tb.ID, "wsj") {
			continue
		}
		var v01, v10 float64
		for _, r := range tb.Rows {
			switch r.Label {
			case "delta=0.1":
				v01 = r.Costs["vvs"]
			case "delta=1":
				v10 = r.Costs["vvs"]
			}
		}
		ratio := v10 / v01
		if ratio < 8 || ratio > 12 {
			t.Errorf("vvs(δ=1)/vvs(δ=0.1) = %v, want ≈ 10", ratio)
		}
	}
}
