package simulate

import (
	"math"
	"strings"
	"testing"
)

// Golden tests pin the table rendering so regressions in the CLI output
// show up as diffs rather than silent format drift.

func TestTableFormatGolden(t *testing.T) {
	tb := &Table{
		ID:      "demo",
		Title:   "demo table",
		Columns: []string{"hhs", "vvs"},
		Rows: []Row{
			{Label: "B=10", Costs: map[string]float64{"hhs": 1234.4, "vvs": math.Inf(1)}, Chosen: "HHNL"},
			{Label: "B=20", Costs: map[string]float64{"hhs": 99.6}, Chosen: "HHNL"},
		},
	}
	got := tb.Format()
	want := "" +
		"== demo: demo table ==\n" +
		"                       hhs         vvs      chosen\n" +
		"B=10                  1234         inf        HHNL\n" +
		"B=20                   100           -        HHNL\n"
	if got != want {
		t.Errorf("Format mismatch:\n got: %q\nwant: %q", got, want)
	}
}

func TestMeasuredFormatGolden(t *testing.T) {
	m := &MeasuredResult{
		Title: "demo",
		Rows: []MeasuredRow{
			{Alg: "HHNL", ModelSeq: 10, ModelRand: 20, MeasuredCost: 15, SeqReads: 9, RandReads: 2, Passes: 1},
		},
	}
	got := m.Format()
	if !strings.Contains(got, "== measured: demo ==") {
		t.Errorf("missing header: %q", got)
	}
	if !strings.Contains(got, "HHNL") || !strings.Contains(got, "15") {
		t.Errorf("missing row data: %q", got)
	}
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 3 {
		t.Errorf("lines = %d, want 3 (header, columns, row)", len(lines))
	}
}

func TestFindingsFormatListsAll(t *testing.T) {
	out := FormatFindings([]Finding{
		{ID: 1, Statement: "s1", Holds: true, Evidence: "e1"},
		{ID: 2, Statement: "s2", Holds: false, Evidence: "e2"},
	})
	if !strings.Contains(out, "HOLDS: e1") || !strings.Contains(out, "DOES NOT HOLD: e2") {
		t.Errorf("format = %q", out)
	}
}
