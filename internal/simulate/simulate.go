// Package simulate reproduces the paper's Section 6 simulation study.
//
// The paper compares the six cost formulas (hhs/hhr, hvs/hvr, vvs/vvr)
// over the statistics of the TREC collections WSJ, FR and DOE in five
// experiment groups; the conference version prints the collection
// statistics table and a summary of findings, with the detailed tables in
// the cited technical report. This package regenerates the full grid:
//
//	Table 1  — collection statistics (reproduced at P = 4000; see the
//	           note on the paper's page-size arithmetic)
//	Group 1  — self joins, varying B and α
//	Group 2  — all six ordered cross-collection pairs, varying B
//	Group 3  — a selection leaves m documents of an originally large C2
//	Group 4  — an originally small C2 of m documents derived from C1
//	Group 5  — fewer-but-larger-document transforms (VVM's sweet spot)
//
// plus a programmatic check of the paper's five summary findings and, as
// the empirical counterpart the paper leaves to future work, Measured —
// which runs the three real algorithms on scaled synthetic corpora and
// compares measured page I/O against the formulas.
package simulate

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"textjoin/internal/collection"
	"textjoin/internal/core"
	"textjoin/internal/corpus"
	"textjoin/internal/costmodel"
	"textjoin/internal/invfile"
	"textjoin/internal/iosim"
	"textjoin/internal/telemetry"
)

// Sweep values used by the groups.
var (
	// BSweep is the memory sizes (pages) swept in Groups 1 and 2,
	// bracketing the paper's base value 10000.
	BSweep = []int64{2500, 5000, 10000, 20000, 40000, 80000}
	// AlphaSweep is the random/sequential cost ratios swept in Group 1.
	AlphaSweep = []float64{1, 2, 5, 8, 10}
	// MSweep is the participating-document counts swept in Groups 3
	// and 4.
	MSweep = []int64{1, 10, 50, 100, 400, 1600}
	// FactorSweep is the fewer-but-larger factors swept in Group 5.
	FactorSweep = []int64{1, 4, 16, 64, 256}
)

// CostColumns is the column order of the cost tables.
var CostColumns = []string{"hhs", "hhr", "hvs", "hvr", "vvs", "vvr"}

// Row is one line of a simulation table.
type Row struct {
	// Label names the swept parameter value ("B=10000", "m=50", ...).
	Label string
	// Costs maps column name to cost in sequential-page units.
	Costs map[string]float64
	// Chosen is the integrated algorithm's pick for this row.
	Chosen string
}

// Table is one simulation result table.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    []Row
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	width := 12
	fmt.Fprintf(&b, "%-14s", "")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%*s", width, c)
	}
	fmt.Fprintf(&b, "%*s\n", width, "chosen")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-14s", r.Label)
		for _, c := range t.Columns {
			v, ok := r.Costs[c]
			switch {
			case !ok:
				fmt.Fprintf(&b, "%*s", width, "-")
			case math.IsInf(v, 1):
				fmt.Fprintf(&b, "%*s", width, "inf")
			default:
				fmt.Fprintf(&b, "%*.0f", width, v)
			}
		}
		fmt.Fprintf(&b, "%*s\n", width, r.Chosen)
	}
	return b.String()
}

// costRow evaluates all six formulas for one configuration.
func costRow(label string, in costmodel.Input, sys costmodel.System, q costmodel.Query) Row {
	chosen, _ := costmodel.Choose(in, sys, q)
	return Row{
		Label: label,
		Costs: map[string]float64{
			"hhs": costmodel.HHNLSeq(in, sys, q),
			"hhr": costmodel.HHNLRand(in, sys, q),
			"hvs": costmodel.HVNLSeq(in, sys, q),
			"hvr": costmodel.HVNLRand(in, sys, q),
			"vvs": costmodel.VVMSeq(in, sys, q),
			"vvr": costmodel.VVMRand(in, sys, q),
		},
		Chosen: chosen.String(),
	}
}

// Table1 reproduces the paper's collection statistics table. The derived
// rows only reproduce with P = 4000 bytes even though the paper says
// "4k"; the table is therefore evaluated at 4000 and the page size noted
// in the title.
func Table1() *Table {
	sys := costmodel.System{B: 10000, P: 4000, Alpha: 5}
	t := &Table{
		ID:      "table1",
		Title:   "collection statistics (derived rows at P=4000 bytes, as the paper's arithmetic implies)",
		Columns: []string{"WSJ", "FR", "DOE"},
	}
	rows := []struct {
		name string
		get  func(costmodel.Collection) float64
	}{
		{"#documents", func(c costmodel.Collection) float64 { return float64(c.N) }},
		{"#terms/doc", func(c costmodel.Collection) float64 { return c.K }},
		{"#dist.terms", func(c costmodel.Collection) float64 { return float64(c.T) }},
		{"size(pages)", func(c costmodel.Collection) float64 { return c.D(sys) }},
		{"S(doc pages)", func(c costmodel.Collection) float64 { return c.S(sys) * 1000 }}, // ×1000 for display
		{"J(entry pg)", func(c costmodel.Collection) float64 { return c.J(sys) * 1000 }},
	}
	stats := []costmodel.Collection{corpus.WSJ.Stats(), corpus.FR.Stats(), corpus.DOE.Stats()}
	for _, r := range rows {
		row := Row{Label: r.name, Costs: map[string]float64{}}
		for i, name := range t.Columns {
			row.Costs[name] = r.get(stats[i])
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

func baseQuery() costmodel.Query { return costmodel.DefaultQuery() }

// Group1 runs self joins (C1 = C2 = each real collection), sweeping B with
// α at its base value and sweeping α with B at its base value: the
// paper's six Group 1 simulations.
func Group1() []*Table {
	var tables []*Table
	for _, p := range corpus.Profiles() {
		c := p.Stats()
		in := costmodel.Input{C1: c, C2: c}

		bt := &Table{
			ID:      fmt.Sprintf("group1-%s-B", strings.ToLower(p.Name)),
			Title:   fmt.Sprintf("self join %s ⋈ %s, varying B (α=5)", p.Name, p.Name),
			Columns: CostColumns,
		}
		for _, b := range BSweep {
			sys := costmodel.System{B: b, P: 4096, Alpha: 5}
			bt.Rows = append(bt.Rows, costRow(fmt.Sprintf("B=%d", b), in, sys, baseQuery()))
		}
		tables = append(tables, bt)

		at := &Table{
			ID:      fmt.Sprintf("group1-%s-alpha", strings.ToLower(p.Name)),
			Title:   fmt.Sprintf("self join %s ⋈ %s, varying α (B=10000)", p.Name, p.Name),
			Columns: CostColumns,
		}
		for _, a := range AlphaSweep {
			sys := costmodel.System{B: 10000, P: 4096, Alpha: a}
			at.Rows = append(at.Rows, costRow(fmt.Sprintf("alpha=%g", a), in, sys, baseQuery()))
		}
		tables = append(tables, at)
	}
	return tables
}

// Group2 runs all six ordered pairs of distinct real collections, sweeping
// B.
func Group2() []*Table {
	var tables []*Table
	ps := corpus.Profiles()
	for _, p1 := range ps {
		for _, p2 := range ps {
			if p1.Name == p2.Name {
				continue
			}
			in := costmodel.Input{C1: p1.Stats(), C2: p2.Stats()}
			t := &Table{
				ID:      fmt.Sprintf("group2-%s-%s", strings.ToLower(p1.Name), strings.ToLower(p2.Name)),
				Title:   fmt.Sprintf("cross join C1=%s, C2=%s, varying B (α=5)", p1.Name, p2.Name),
				Columns: CostColumns,
			}
			for _, b := range BSweep {
				sys := costmodel.System{B: b, P: 4096, Alpha: 5}
				t.Rows = append(t.Rows, costRow(fmt.Sprintf("B=%d", b), in, sys, baseQuery()))
			}
			tables = append(tables, t)
		}
	}
	return tables
}

// group34Input builds the cost input for Groups 3 and 4: m participating
// documents of C2 with per-document shape inherited from the profile. For
// Group 3 (originallyLarge) the documents are read randomly and the
// inverted file on C2 keeps the original collection's statistics; for
// Group 4 both shrink with the small collection.
func group34Input(p corpus.Profile, m int64, originallyLarge bool) costmodel.Input {
	full := p.Stats()
	sub := costmodel.Collection{
		N: m,
		K: p.TermsPerDoc,
		T: int64(collection.VocabularyGrowth(float64(p.DistinctTerms), p.TermsPerDoc, float64(m))),
	}
	in := costmodel.Input{C1: full, C2: sub, InvOnC1: full}
	if originallyLarge {
		in.InvOnC2 = full
		in.C2Random = true
	} else {
		in.InvOnC2 = sub
	}
	return in
}

// Group3 sweeps the number m of documents surviving a selection on an
// originally large C2 (C1 = C2 = each real collection; base B and α).
func Group3() []*Table {
	var tables []*Table
	for _, p := range corpus.Profiles() {
		t := &Table{
			ID:      fmt.Sprintf("group3-%s", strings.ToLower(p.Name)),
			Title:   fmt.Sprintf("selection leaves m docs of originally large C2 (C1=%s)", p.Name),
			Columns: CostColumns,
		}
		for _, m := range MSweep {
			in := group34Input(p, m, true)
			t.Rows = append(t.Rows, costRow(fmt.Sprintf("m=%d", m), in, costmodel.DefaultSystem(), baseQuery()))
		}
		tables = append(tables, t)
	}
	return tables
}

// Group4 sweeps the size m of an ORIGINALLY small C2 derived from C1.
func Group4() []*Table {
	var tables []*Table
	for _, p := range corpus.Profiles() {
		t := &Table{
			ID:      fmt.Sprintf("group4-%s", strings.ToLower(p.Name)),
			Title:   fmt.Sprintf("originally small C2 of m docs derived from C1=%s", p.Name),
			Columns: CostColumns,
		}
		for _, m := range MSweep {
			in := group34Input(p, m, false)
			t.Rows = append(t.Rows, costRow(fmt.Sprintf("m=%d", m), in, costmodel.DefaultSystem(), baseQuery()))
		}
		tables = append(tables, t)
	}
	return tables
}

// Group5 applies the fewer-but-larger-documents transform to each real
// collection (C1 = C2 = transformed), sweeping the factor. This is the
// experiment "especially aimed at observing the behavior of Algorithm
// VVM".
func Group5() []*Table {
	var tables []*Table
	for _, p := range corpus.Profiles() {
		t := &Table{
			ID:      fmt.Sprintf("group5-%s", strings.ToLower(p.Name)),
			Title:   fmt.Sprintf("fewer but larger docs: %s with N/f docs of K·f terms", p.Name),
			Columns: CostColumns,
		}
		for _, f := range FactorSweep {
			d := p.FewerLargerDocs(f).Stats()
			in := costmodel.Input{C1: d, C2: d}
			t.Rows = append(t.Rows, costRow(fmt.Sprintf("f=%d", f), in, costmodel.DefaultSystem(), baseQuery()))
		}
		tables = append(tables, t)
	}
	return tables
}

// Finding is one of the paper's summary findings checked against the
// regenerated grid.
type Finding struct {
	ID        int
	Statement string
	Holds     bool
	Evidence  string
}

// Findings re-derives the paper's five Section 6.1 findings from the
// regenerated grid and reports whether each holds.
func Findings() []Finding {
	var fs []Finding

	// Finding 1: costs differ drastically between algorithms in the
	// same situation.
	maxRatio := 0.0
	evidence1 := ""
	for _, t := range append(Group1(), Group5()...) {
		for _, r := range t.Rows {
			lo, hi := math.Inf(1), 0.0
			for _, c := range []string{"hhs", "hvs", "vvs"} {
				v := r.Costs[c]
				if math.IsInf(v, 1) {
					continue
				}
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
			if lo > 0 && hi/lo > maxRatio {
				maxRatio = hi / lo
				evidence1 = fmt.Sprintf("%s %s: best %.0f vs worst %.0f (%.0f×)", t.ID, r.Label, lo, hi, hi/lo)
			}
		}
	}
	fs = append(fs, Finding{
		ID:        1,
		Statement: "the cost of one algorithm can differ drastically from another's in the same situation",
		Holds:     maxRatio > 10,
		Evidence:  evidence1,
	})

	// Finding 2: HVNL tends to win when the participating C2 has very
	// few documents. The paper hedges the threshold ("M is likely to be
	// limited by 100" and it "mainly depends on the number of terms in
	// each document"), so the check is: HVNL wins every m=1
	// configuration, wins a substantial share of m ≤ 100
	// configurations, and never wins past m = 100.
	wins, total, winsAtOne, totalAtOne, winsBeyond := 0, 0, 0, 0, 0
	for _, t := range append(Group3(), Group4()...) {
		for _, r := range t.Rows {
			var m int64
			fmt.Sscanf(r.Label, "m=%d", &m)
			switch {
			case m == 1:
				totalAtOne++
				if r.Chosen == "HVNL" {
					winsAtOne++
				}
				fallthrough
			case m <= 100:
				total++
				if r.Chosen == "HVNL" {
					wins++
				}
			default:
				if r.Chosen == "HVNL" {
					winsBeyond++
				}
			}
		}
	}
	fs = append(fs, Finding{
		ID:        2,
		Statement: "with very few participating C2 documents HVNL has a very good chance to win, with the threshold below m ≈ 100",
		Holds:     winsAtOne == totalAtOne && wins*3 >= total && winsBeyond == 0,
		Evidence: fmt.Sprintf("HVNL chosen in %d/%d m=1 configs, %d/%d m≤100 configs, %d configs beyond m=100",
			winsAtOne, totalAtOne, wins, total, winsBeyond),
	})

	// Finding 3: VVM wins when N1·N2 < 10000·B and the collections are
	// too large for memory (Group 5 at larger factors).
	vvmWins, vvmTotal := 0, 0
	sys := costmodel.DefaultSystem()
	for _, p := range corpus.Profiles() {
		for _, f := range FactorSweep {
			d := p.FewerLargerDocs(f).Stats()
			if float64(d.N)*float64(d.N) < float64(10000*sys.B) && d.D(sys) > float64(sys.B) {
				vvmTotal++
				in := costmodel.Input{C1: d, C2: d}
				alg, _ := costmodel.Choose(in, sys, baseQuery())
				if alg == costmodel.AlgVVM {
					vvmWins++
				}
			}
		}
	}
	fs = append(fs, Finding{
		ID:        3,
		Statement: "VVM wins when N1·N2 < 10000·B and both collections exceed memory",
		Holds:     vvmTotal > 0 && vvmWins == vvmTotal,
		Evidence:  fmt.Sprintf("VVM chosen in %d of %d qualifying configurations", vvmWins, vvmTotal),
	})

	// Finding 4: HHNL wins most other cases (Group 1/2 at base values).
	hhnlWins, otherTotal := 0, 0
	for _, t := range append(Group1(), Group2()...) {
		for _, r := range t.Rows {
			otherTotal++
			if r.Chosen == "HHNL" {
				hhnlWins++
			}
		}
	}
	fs = append(fs, Finding{
		ID:        4,
		Statement: "for most other cases the simple HHNL performs very well",
		Holds:     hhnlWins*2 > otherTotal,
		Evidence:  fmt.Sprintf("HHNL chosen in %d of %d full-collection configurations", hhnlWins, otherTotal),
	})

	// Finding 5: the random variants do not change the ranking except
	// for VVM.
	flips, flipsInvolvingVVM, comparisons := 0, 0, 0
	for _, t := range append(Group1(), Group2()...) {
		for _, r := range t.Rows {
			seqOrder := rankOrder(r.Costs["hhs"], r.Costs["hvs"], r.Costs["vvs"])
			randOrder := rankOrder(r.Costs["hhr"], r.Costs["hvr"], r.Costs["vvr"])
			comparisons++
			if seqOrder != randOrder {
				flips++
				if strings.Contains(diffPositions(seqOrder, randOrder), "v") {
					flipsInvolvingVVM++
				}
			}
		}
	}
	fs = append(fs, Finding{
		ID:        5,
		Statement: "random-variant costs change the ranking only where VVM is involved",
		Holds:     flips == flipsInvolvingVVM,
		Evidence:  fmt.Sprintf("%d of %d rankings flip between seq and rand; %d involve VVM", flips, comparisons, flipsInvolvingVVM),
	})
	return fs
}

// rankOrder returns a canonical string of the algorithms ordered by cost.
func rankOrder(h, v, m float64) string {
	type kv struct {
		name string
		c    float64
	}
	s := []kv{{"h", h}, {"n", v}, {"v", m}}
	sort.SliceStable(s, func(i, j int) bool { return s[i].c < s[j].c })
	return s[0].name + s[1].name + s[2].name
}

// diffPositions returns the names that moved between two rank orders.
func diffPositions(a, b string) string {
	var out strings.Builder
	for i := range a {
		if a[i] != b[i] {
			out.WriteByte(a[i])
			out.WriteByte(b[i])
		}
	}
	return out.String()
}

// FormatFindings renders the findings report.
func FormatFindings(fs []Finding) string {
	var b strings.Builder
	b.WriteString("== findings: paper's Section 6.1 summary, re-derived ==\n")
	for _, f := range fs {
		status := "HOLDS"
		if !f.Holds {
			status = "DOES NOT HOLD"
		}
		fmt.Fprintf(&b, "(%d) %s\n    -> %s: %s\n", f.ID, f.Statement, status, f.Evidence)
	}
	return b.String()
}

// MeasuredRow compares a real algorithm run against the model.
type MeasuredRow struct {
	Alg          string
	ModelSeq     float64
	ModelRand    float64
	MeasuredCost float64
	SeqReads     int64
	RandReads    int64
	Passes       int
}

// MeasuredResult is the outcome of one empirical experiment.
type MeasuredResult struct {
	Title string
	Rows  []MeasuredRow
}

// Format renders the measured-vs-model table.
func (m *MeasuredResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== measured: %s ==\n", m.Title)
	fmt.Fprintf(&b, "%-8s%12s%12s%12s%12s%12s%8s\n", "alg", "model-seq", "model-rand", "measured", "seqReads", "randReads", "passes")
	for _, r := range m.Rows {
		fmt.Fprintf(&b, "%-8s%12.0f%12.0f%12.0f%12d%12d%8d\n",
			r.Alg, r.ModelSeq, r.ModelRand, r.MeasuredCost, r.SeqReads, r.RandReads, r.Passes)
	}
	return b.String()
}

// Measured builds scaled synthetic corpora for the two profiles, runs all
// three real algorithms, and reports measured I/O cost next to the cost
// model evaluated at the scaled corpora's *measured* statistics. The
// measured cost should fall between the model's sequential and random
// variants and preserve the ranking.
func Measured(p1, p2 corpus.Profile, scale int64, memoryPages int64, seed int64) (*MeasuredResult, error) {
	return MeasuredTelemetry(p1, p2, scale, memoryPages, seed, nil)
}

// MeasuredTelemetry is Measured with an optional telemetry collector
// attached to the simulated disk and every join: estimated model costs
// are recorded as "plan" events next to each algorithm's measured cost,
// so one snapshot carries the estimated-vs-measured comparison.
func MeasuredTelemetry(p1, p2 corpus.Profile, scale int64, memoryPages int64, seed int64, tel *telemetry.Collector) (*MeasuredResult, error) {
	d := iosim.NewDisk(iosim.WithPageSize(4096), iosim.WithAlpha(5))
	c1, err := corpus.GenerateOn(d, "c1", p1.Scaled(scale), seed)
	if err != nil {
		return nil, err
	}
	c2, err := corpus.GenerateOn(d, "c2", p2.Scaled(scale), seed+1)
	if err != nil {
		return nil, err
	}
	inv1, err := buildInv(d, c1, "c1")
	if err != nil {
		return nil, err
	}
	inv2, err := buildInv(d, c2, "c2")
	if err != nil {
		return nil, err
	}
	d.ResetStats()
	d.SetCollector(tel)

	in := core.Inputs{Outer: c2, Inner: c1, InnerInv: inv1, OuterInv: inv2}
	opts := core.Options{Lambda: 20, MemoryPages: memoryPages, Telemetry: tel}
	mi, err := core.ModelInput(in)
	if err != nil {
		return nil, err
	}
	sys := core.ModelSystem(in, opts)
	q := costmodel.Query{Lambda: 20, Delta: 0.1}

	res := &MeasuredResult{Title: fmt.Sprintf("C1=%s C2=%s scale=1/%d B=%d", p1.Name, p2.Name, scale, memoryPages)}
	type modelFns struct {
		alg  core.Algorithm
		seq  func(costmodel.Input, costmodel.System, costmodel.Query) float64
		rand func(costmodel.Input, costmodel.System, costmodel.Query) float64
	}
	for _, mf := range []modelFns{
		{core.HHNL, costmodel.HHNLSeq, costmodel.HHNLRand},
		{core.HVNL, costmodel.HVNLSeq, costmodel.HVNLRand},
		{core.VVM, costmodel.VVMSeq, costmodel.VVMRand},
	} {
		_, st, err := core.Join(mf.alg, in, opts)
		if err != nil {
			return nil, fmt.Errorf("measured %v: %w", mf.alg, err)
		}
		if tel != nil {
			name := strings.ToLower(mf.alg.String())
			tel.Event(telemetry.PhasePlan, "estimate."+name+".seq", int64(mf.seq(mi, sys, q)+0.5))
			tel.Event(telemetry.PhasePlan, "estimate."+name+".rand", int64(mf.rand(mi, sys, q)+0.5))
			tel.Event(telemetry.PhasePlan, "measured."+name+".cost", int64(st.Cost+0.5))
		}
		res.Rows = append(res.Rows, MeasuredRow{
			Alg:          mf.alg.String(),
			ModelSeq:     mf.seq(mi, sys, q),
			ModelRand:    mf.rand(mi, sys, q),
			MeasuredCost: st.Cost,
			SeqReads:     st.IO.SeqReads,
			RandReads:    st.IO.RandReads,
			Passes:       st.Passes,
		})
	}
	return res, nil
}

func buildInv(d *iosim.Disk, c *collection.Collection, prefix string) (*invfile.InvertedFile, error) {
	ef, err := d.Create(prefix + ".inv")
	if err != nil {
		return nil, err
	}
	tf, err := d.Create(prefix + ".bt")
	if err != nil {
		return nil, err
	}
	return invfile.Build(c, ef, tf)
}

// RunAll regenerates every analytic table: the paper's five groups in
// paper order, then the additional λ and δ sweeps.
func RunAll() []*Table {
	tables := []*Table{Table1()}
	tables = append(tables, Group1()...)
	tables = append(tables, Group2()...)
	tables = append(tables, Group3()...)
	tables = append(tables, Group4()...)
	tables = append(tables, Group5()...)
	tables = append(tables, GroupLambda()...)
	tables = append(tables, GroupDelta()...)
	return tables
}
