package codec

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestUintRoundTrips(t *testing.T) {
	var b [4]byte
	for _, v := range []uint32{0, 1, 255, 256, 65535, 65536, MaxNumber} {
		PutUint24(b[:], v)
		if got := Uint24(b[:]); got != v {
			t.Errorf("Uint24 round trip %d -> %d", v, got)
		}
	}
	for _, v := range []uint16{0, 1, 255, 256, 65535} {
		PutUint16(b[:], v)
		if got := Uint16(b[:]); got != v {
			t.Errorf("Uint16 round trip %d -> %d", v, got)
		}
	}
	for _, v := range []uint32{0, 1, 1 << 30, 0xffffffff} {
		PutUint32(b[:], v)
		if got := Uint32(b[:]); got != v {
			t.Errorf("Uint32 round trip %d -> %d", v, got)
		}
	}
}

func TestPutUint24Overflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("PutUint24(1<<24) did not panic")
		}
	}()
	var b [3]byte
	PutUint24(b[:], 1<<24)
}

func TestCellRoundTrip(t *testing.T) {
	dst, err := AppendCell(nil, Cell{Number: 123456, Weight: 789})
	if err != nil {
		t.Fatal(err)
	}
	if len(dst) != CellSize {
		t.Fatalf("encoded size = %d, want %d", len(dst), CellSize)
	}
	c, err := DecodeCell(dst)
	if err != nil {
		t.Fatal(err)
	}
	if c.Number != 123456 || c.Weight != 789 {
		t.Errorf("decoded = %+v", c)
	}
}

func TestCellErrors(t *testing.T) {
	if _, err := AppendCell(nil, Cell{Number: MaxNumber + 1}); !errors.Is(err, ErrRange) {
		t.Errorf("AppendCell overflow err = %v, want ErrRange", err)
	}
	if _, err := DecodeCell([]byte{1, 2}); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("DecodeCell short err = %v, want ErrShortBuffer", err)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	r := Record{Number: 42, Cells: []Cell{{1, 3}, {5, 1}, {900000, 65535}}}
	enc, err := AppendRecord(nil, r)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(enc)) != EncodedRecordSize(len(r.Cells)) {
		t.Errorf("size = %d, want %d", len(enc), EncodedRecordSize(len(r.Cells)))
	}
	got, n, err := DecodeRecord(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(enc)) {
		t.Errorf("consumed = %d, want %d", n, len(enc))
	}
	if got.Number != r.Number || len(got.Cells) != len(r.Cells) {
		t.Fatalf("decoded = %+v", got)
	}
	for i := range r.Cells {
		if got.Cells[i] != r.Cells[i] {
			t.Errorf("cell %d = %+v, want %+v", i, got.Cells[i], r.Cells[i])
		}
	}
}

func TestEmptyRecord(t *testing.T) {
	enc, err := AppendRecord(nil, Record{Number: 7})
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := DecodeRecord(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Number != 7 || len(got.Cells) != 0 || n != DocHeaderSize {
		t.Errorf("decoded = %+v n=%d", got, n)
	}
}

func TestRecordRejectsUnsortedCells(t *testing.T) {
	_, err := AppendRecord(nil, Record{Number: 1, Cells: []Cell{{5, 1}, {3, 1}}})
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("unsorted append err = %v, want ErrCorrupt", err)
	}
	_, err = AppendRecord(nil, Record{Number: 1, Cells: []Cell{{5, 1}, {5, 1}}})
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("duplicate append err = %v, want ErrCorrupt", err)
	}
}

func TestDecodeRecordCorrupt(t *testing.T) {
	// Handcraft a record with descending cells.
	var b []byte
	var hdr [DocHeaderSize]byte
	PutUint24(hdr[:], 1)
	PutUint24(hdr[3:], 2)
	b = append(b, hdr[:]...)
	b, _ = AppendCell(b, Cell{9, 1})
	// Append a lower-numbered cell manually.
	var cb [CellSize]byte
	PutUint24(cb[:], 3)
	PutUint16(cb[3:], 1)
	b = append(b, cb[:]...)
	if _, _, err := DecodeRecord(b); !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
}

func TestDecodeRecordShort(t *testing.T) {
	if _, _, err := DecodeRecord([]byte{1, 2}); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("short header err = %v, want ErrShortBuffer", err)
	}
	var hdr [DocHeaderSize]byte
	PutUint24(hdr[:], 1)
	PutUint24(hdr[3:], 4) // claims 4 cells, none present
	if _, _, err := DecodeRecord(hdr[:]); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("truncated body err = %v, want ErrShortBuffer", err)
	}
}

func TestPeekRecordSize(t *testing.T) {
	r := Record{Number: 9, Cells: []Cell{{2, 1}, {4, 2}}}
	enc, _ := AppendRecord(nil, r)
	size, err := PeekRecordSize(enc[:DocHeaderSize])
	if err != nil {
		t.Fatal(err)
	}
	if size != int64(len(enc)) {
		t.Errorf("PeekRecordSize = %d, want %d", size, len(enc))
	}
	if _, err := PeekRecordSize([]byte{1}); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("short peek err = %v, want ErrShortBuffer", err)
	}
}

func TestBTreeCellRoundTrip(t *testing.T) {
	c := BTreeCell{Term: 555555, Addr: 4000000000, DocFreq: 60000}
	enc, err := AppendBTreeCell(nil, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != BTreeCellSize {
		t.Fatalf("size = %d, want %d", len(enc), BTreeCellSize)
	}
	got, err := DecodeBTreeCell(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got != c {
		t.Errorf("decoded = %+v, want %+v", got, c)
	}
	if _, err := AppendBTreeCell(nil, BTreeCell{Term: MaxNumber + 1}); !errors.Is(err, ErrRange) {
		t.Errorf("overflow err = %v, want ErrRange", err)
	}
	if _, err := DecodeBTreeCell(enc[:5]); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("short err = %v, want ErrShortBuffer", err)
	}
}

func TestClampWeight(t *testing.T) {
	cases := []struct {
		in   int
		want uint16
	}{{-1, 0}, {0, 0}, {1, 1}, {65535, 65535}, {70000, 65535}}
	for _, c := range cases {
		if got := ClampWeight(c.in); got != c.want {
			t.Errorf("ClampWeight(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

// Property: any sorted set of cells round-trips through Record encoding.
func TestQuickRecordRoundTrip(t *testing.T) {
	check := func(number uint32, seed int64, n uint8) bool {
		number %= MaxNumber + 1
		r := rand.New(rand.NewSource(seed))
		count := int(n % 64)
		seen := make(map[uint32]bool, count)
		cells := make([]Cell, 0, count)
		for len(cells) < count {
			num := uint32(r.Intn(MaxNumber + 1))
			if seen[num] {
				continue
			}
			seen[num] = true
			cells = append(cells, Cell{Number: num, Weight: uint16(r.Intn(65536))})
		}
		sort.Slice(cells, func(i, j int) bool { return cells[i].Number < cells[j].Number })
		rec := Record{Number: number, Cells: cells}
		enc, err := AppendRecord(nil, rec)
		if err != nil {
			return false
		}
		got, consumed, err := DecodeRecord(enc)
		if err != nil || consumed != int64(len(enc)) || got.Number != number || len(got.Cells) != count {
			return false
		}
		for i := range cells {
			if got.Cells[i] != cells[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: concatenated records decode back in sequence with PeekRecordSize
// agreeing with DecodeRecord's consumed size.
func TestQuickRecordStream(t *testing.T) {
	check := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		count := int(n%10) + 1
		var stream []byte
		var want []Record
		for i := 0; i < count; i++ {
			nc := r.Intn(8)
			cells := make([]Cell, 0, nc)
			for j := 0; j < nc; j++ {
				cells = append(cells, Cell{Number: uint32(j*10 + r.Intn(9)), Weight: uint16(r.Intn(100))})
			}
			rec := Record{Number: uint32(i), Cells: cells}
			enc, err := AppendRecord(stream, rec)
			if err != nil {
				return false
			}
			stream = enc
			want = append(want, rec)
		}
		off := int64(0)
		for i := 0; i < count; i++ {
			size, err := PeekRecordSize(stream[off:])
			if err != nil {
				return false
			}
			rec, consumed, err := DecodeRecord(stream[off:])
			if err != nil || consumed != size || rec.Number != want[i].Number || len(rec.Cells) != len(want[i].Cells) {
				return false
			}
			off += consumed
		}
		return off == int64(len(stream))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
