// Package codec implements the binary layouts of the paper's storage
// structures.
//
// The paper represents each document as a list of d-cells (t#, w) and each
// inverted-file entry as a list of i-cells (d#, w), where t# and d# are
// 3-byte term/document numbers and w is a 2-byte occurrence count, so every
// cell occupies exactly 5 bytes ("|t#| = 3 and |w| = 2 is sufficient").
// B+tree leaf cells occupy 9 bytes: 3 for the term number, 4 for the
// address, and 2 for the document frequency.
//
// All integers are little-endian. Records are packed tightly; the page
// structure is provided by package iosim.
package codec

import (
	"errors"
	"fmt"
)

// Sizes of the on-disk primitives, in bytes.
const (
	// TermNumberSize is |t#|: the width of a term number (3 bytes as in
	// the paper, supporting up to ~16.7M distinct terms).
	TermNumberSize = 3
	// DocNumberSize is |d#|: the width of a document number.
	DocNumberSize = 3
	// WeightSize is |w|: the width of an occurrence count.
	WeightSize = 2
	// CellSize is the size of one d-cell or i-cell (5 bytes).
	CellSize = TermNumberSize + WeightSize
	// BTreeCellSize is the size of one B+tree leaf cell: term number,
	// 4-byte address and 2-byte document frequency (9 bytes, as in the
	// paper's B+tree size estimate 9·N/P).
	BTreeCellSize = TermNumberSize + 4 + WeightSize
	// DocHeaderSize is the header preceding a packed document: 3-byte
	// document number + 3-byte cell count.
	DocHeaderSize = DocNumberSize + 3
	// EntryHeaderSize is the header preceding a packed inverted-file
	// entry: 3-byte term number + 3-byte cell count.
	EntryHeaderSize = TermNumberSize + 3
)

// Limits implied by the field widths.
const (
	// MaxNumber is the largest representable term or document number.
	MaxNumber = 1<<24 - 1
	// MaxWeight is the largest representable occurrence count. Larger
	// counts are clamped by the builders, matching practice (a 2-byte
	// occurrence count saturates).
	MaxWeight = 1<<16 - 1
)

// Errors returned by decoding functions.
var (
	ErrShortBuffer = errors.New("codec: short buffer")
	ErrRange       = errors.New("codec: value out of range")
	ErrCorrupt     = errors.New("codec: corrupt record")
)

// PutUint24 encodes v into b[0:3] little-endian. It panics if v does not
// fit, mirroring encoding/binary's behavior on short buffers.
func PutUint24(b []byte, v uint32) {
	if v > MaxNumber {
		panic(fmt.Sprintf("codec: uint24 overflow: %d", v))
	}
	_ = b[2]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
}

// Uint24 decodes a little-endian 3-byte integer from b[0:3].
func Uint24(b []byte) uint32 {
	_ = b[2]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16
}

// PutUint16 encodes v into b[0:2] little-endian.
func PutUint16(b []byte, v uint16) {
	_ = b[1]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
}

// Uint16 decodes a little-endian 2-byte integer from b[0:2].
func Uint16(b []byte) uint16 {
	_ = b[1]
	return uint16(b[0]) | uint16(b[1])<<8
}

// PutUint32 encodes v into b[0:4] little-endian.
func PutUint32(b []byte, v uint32) {
	_ = b[3]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

// Uint32 decodes a little-endian 4-byte integer from b[0:4].
func Uint32(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// Cell is a (number, weight) pair: a d-cell when number is a term number,
// an i-cell when number is a document number.
type Cell struct {
	Number uint32
	Weight uint16
}

// AppendCell appends the 5-byte encoding of c to dst.
func AppendCell(dst []byte, c Cell) ([]byte, error) {
	if c.Number > MaxNumber {
		return dst, fmt.Errorf("%w: cell number %d", ErrRange, c.Number)
	}
	var buf [CellSize]byte
	PutUint24(buf[:], c.Number)
	PutUint16(buf[TermNumberSize:], c.Weight)
	return append(dst, buf[:]...), nil
}

// DecodeCell decodes one cell from the start of b.
func DecodeCell(b []byte) (Cell, error) {
	if len(b) < CellSize {
		return Cell{}, fmt.Errorf("%w: need %d bytes for cell, have %d", ErrShortBuffer, CellSize, len(b))
	}
	return Cell{Number: Uint24(b), Weight: Uint16(b[TermNumberSize:])}, nil
}

// Record layouts.
//
// A packed document is
//
//	docNumber  uint24
//	cellCount  uint24
//	cells      cellCount × Cell   (d-cells sorted by ascending term number)
//
// A packed inverted-file entry is
//
//	termNumber uint24
//	cellCount  uint24
//	cells      cellCount × Cell   (i-cells sorted by ascending doc number)
//
// Both share the same shape, captured by Record.
type Record struct {
	// Number is the document number of a packed document, or the term
	// number of a packed inverted-file entry.
	Number uint32
	// Cells are the record's cells in ascending Number order.
	Cells []Cell
}

// EncodedRecordSize returns the packed size in bytes of a record with n
// cells.
func EncodedRecordSize(n int) int64 {
	return DocHeaderSize + int64(n)*CellSize
}

// AppendRecord appends the packed encoding of r to dst. Cells must be
// sorted by strictly ascending Number; this is validated because both the
// similarity merge and the VVM scan rely on it.
func AppendRecord(dst []byte, r Record) ([]byte, error) {
	if r.Number > MaxNumber {
		return dst, fmt.Errorf("%w: record number %d", ErrRange, r.Number)
	}
	if len(r.Cells) > MaxNumber {
		return dst, fmt.Errorf("%w: %d cells", ErrRange, len(r.Cells))
	}
	var hdr [DocHeaderSize]byte
	PutUint24(hdr[:], r.Number)
	PutUint24(hdr[DocNumberSize:], uint32(len(r.Cells)))
	dst = append(dst, hdr[:]...)
	prev := int64(-1)
	for _, c := range r.Cells {
		if int64(c.Number) <= prev {
			return dst, fmt.Errorf("%w: cells not strictly ascending (%d after %d)", ErrCorrupt, c.Number, prev)
		}
		prev = int64(c.Number)
		var err error
		dst, err = AppendCell(dst, c)
		if err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// DecodeRecord decodes one packed record from the start of b and returns it
// together with the number of bytes consumed.
func DecodeRecord(b []byte) (Record, int64, error) {
	number, cells, size, err := DecodeRecordInto(b, nil)
	if err != nil {
		return Record{}, 0, err
	}
	return Record{Number: number, Cells: cells}, size, nil
}

// DecodeRecordInto is the batch decode kernel behind DecodeRecord: it
// decodes one packed record from the start of b, appending the cells to
// dst (whose capacity is reused, so a caller recycling its buffer decodes
// without allocating). Bounds are checked once against the full record
// size; the unpack loop then runs without per-cell checks, and the
// strictly-ascending invariant is verified with a flag folded into the
// loop rather than a per-cell early exit.
func DecodeRecordInto(b []byte, dst []Cell) (number uint32, cells []Cell, consumed int64, err error) {
	if len(b) < DocHeaderSize {
		return 0, dst, 0, fmt.Errorf("%w: need %d header bytes, have %d", ErrShortBuffer, DocHeaderSize, len(b))
	}
	number = Uint24(b)
	count := int(Uint24(b[DocNumberSize:]))
	size := EncodedRecordSize(count)
	if int64(len(b)) < size {
		return 0, dst, 0, fmt.Errorf("%w: record needs %d bytes, have %d", ErrShortBuffer, size, len(b))
	}
	base := len(dst)
	if cap(dst)-base < count {
		grown := make([]Cell, base, base+count)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:base+count]
	out := dst[base:]
	body := b[DocHeaderSize:size:size]
	ascending := true
	prev := int64(-1)
	for i := range out {
		c := body[i*CellSize : i*CellSize+CellSize]
		n := uint32(c[0]) | uint32(c[1])<<8 | uint32(c[2])<<16
		out[i] = Cell{Number: n, Weight: uint16(c[3]) | uint16(c[4])<<8}
		ascending = ascending && int64(n) > prev
		prev = int64(n)
	}
	if !ascending {
		return 0, dst[:base], 0, fmt.Errorf("%w: cells not strictly ascending", ErrCorrupt)
	}
	return number, dst, size, nil
}

// PeekRecordSize reads only the record header from b and returns the full
// packed size, letting callers fetch exactly the remaining bytes.
func PeekRecordSize(b []byte) (int64, error) {
	if len(b) < DocHeaderSize {
		return 0, fmt.Errorf("%w: need %d header bytes, have %d", ErrShortBuffer, DocHeaderSize, len(b))
	}
	count := int(Uint24(b[DocNumberSize:]))
	return EncodedRecordSize(count), nil
}

// BTreeCell is one leaf cell of the term B+tree: it locates the inverted
// file entry of a term and carries the term's document frequency (the
// paper stores document frequencies in the list heads / B+tree so that no
// extra I/O is needed to obtain them).
type BTreeCell struct {
	Term uint32
	// Addr is the byte offset of the term's inverted-file entry within
	// the inverted file.
	Addr uint32
	// DocFreq is the number of documents containing the term.
	DocFreq uint16
}

// AppendBTreeCell appends the 9-byte encoding of c to dst.
func AppendBTreeCell(dst []byte, c BTreeCell) ([]byte, error) {
	if c.Term > MaxNumber {
		return dst, fmt.Errorf("%w: term %d", ErrRange, c.Term)
	}
	var buf [BTreeCellSize]byte
	PutUint24(buf[:], c.Term)
	PutUint32(buf[TermNumberSize:], c.Addr)
	PutUint16(buf[TermNumberSize+4:], c.DocFreq)
	return append(dst, buf[:]...), nil
}

// DecodeBTreeCell decodes one B+tree leaf cell from the start of b.
func DecodeBTreeCell(b []byte) (BTreeCell, error) {
	if len(b) < BTreeCellSize {
		return BTreeCell{}, fmt.Errorf("%w: need %d bytes for btree cell, have %d", ErrShortBuffer, BTreeCellSize, len(b))
	}
	return BTreeCell{
		Term:    Uint24(b),
		Addr:    Uint32(b[TermNumberSize:]),
		DocFreq: Uint16(b[TermNumberSize+4:]),
	}, nil
}

// ClampWeight saturates an occurrence count to the 2-byte on-disk range.
func ClampWeight(n int) uint16 {
	if n < 0 {
		return 0
	}
	if n > MaxWeight {
		return MaxWeight
	}
	return uint16(n)
}
