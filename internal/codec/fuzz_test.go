package codec

import (
	"bytes"
	"testing"
)

// FuzzDecodeRecord asserts the decoder never panics on arbitrary bytes and
// that anything it accepts re-encodes to the same bytes (decode∘encode
// identity on the accepted language).
func FuzzDecodeRecord(f *testing.F) {
	good, _ := AppendRecord(nil, Record{Number: 3, Cells: []Cell{{1, 2}, {7, 1}}})
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, consumed, err := DecodeRecord(data)
		if err != nil {
			return
		}
		if consumed <= 0 || consumed > int64(len(data)) {
			t.Fatalf("consumed %d of %d", consumed, len(data))
		}
		re, err := AppendRecord(nil, rec)
		if err != nil {
			t.Fatalf("re-encode of accepted record failed: %v", err)
		}
		if !bytes.Equal(re, data[:consumed]) {
			t.Fatalf("re-encode mismatch: %x vs %x", re, data[:consumed])
		}
	})
}

// FuzzDecodeBTreeCell covers the 9-byte leaf-cell decoder.
func FuzzDecodeBTreeCell(f *testing.F) {
	enc, _ := AppendBTreeCell(nil, BTreeCell{Term: 9, Addr: 100, DocFreq: 3})
	f.Add(enc)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeBTreeCell(data)
		if err != nil {
			return
		}
		re, err := AppendBTreeCell(nil, c)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(re, data[:BTreeCellSize]) {
			t.Fatalf("re-encode mismatch")
		}
	})
}
