package codec

import (
	"bytes"
	"testing"
)

// FuzzDecodeRecord asserts the decoder never panics on arbitrary bytes and
// that anything it accepts re-encodes to the same bytes (decode∘encode
// identity on the accepted language).
func FuzzDecodeRecord(f *testing.F) {
	good, _ := AppendRecord(nil, Record{Number: 3, Cells: []Cell{{1, 2}, {7, 1}}})
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, consumed, err := DecodeRecord(data)
		if err != nil {
			return
		}
		if consumed <= 0 || consumed > int64(len(data)) {
			t.Fatalf("consumed %d of %d", consumed, len(data))
		}
		re, err := AppendRecord(nil, rec)
		if err != nil {
			t.Fatalf("re-encode of accepted record failed: %v", err)
		}
		if !bytes.Equal(re, data[:consumed]) {
			t.Fatalf("re-encode mismatch: %x vs %x", re, data[:consumed])
		}
	})
}

// FuzzDecodeRecordInto checks the batch cell-decode kernel against a
// reference decoder assembled from the per-cell primitives: both must
// accept exactly the same inputs and produce identical numbers, cells and
// consumed counts, including when the kernel appends into a dirty,
// partially filled destination buffer.
func FuzzDecodeRecordInto(f *testing.F) {
	good, _ := AppendRecord(nil, Record{Number: 3, Cells: []Cell{{1, 2}, {7, 1}}})
	f.Add(good, uint8(0))
	f.Add([]byte{}, uint8(3))
	f.Add([]byte{1, 2, 3}, uint8(1))
	f.Add(bytes.Repeat([]byte{0xff}, 64), uint8(7))
	f.Add(append([]byte{9, 0, 0, 2, 0, 0}, bytes.Repeat([]byte{5, 0, 0, 1, 0}, 2)...), uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, prefill uint8) {
		// Reference: header reads plus a per-cell DecodeCell loop.
		refRec, refConsumed, refErr := func() (Record, int64, error) {
			if len(data) < DocHeaderSize {
				return Record{}, 0, ErrShortBuffer
			}
			number := Uint24(data)
			count := int(Uint24(data[DocNumberSize:]))
			size := EncodedRecordSize(count)
			if int64(len(data)) < size {
				return Record{}, 0, ErrShortBuffer
			}
			cells := make([]Cell, 0, count)
			off := DocHeaderSize
			prev := int64(-1)
			for i := 0; i < count; i++ {
				c, err := DecodeCell(data[off:])
				if err != nil {
					return Record{}, 0, err
				}
				if int64(c.Number) <= prev {
					return Record{}, 0, ErrCorrupt
				}
				prev = int64(c.Number)
				cells = append(cells, c)
				off += CellSize
			}
			return Record{Number: number, Cells: cells}, size, nil
		}()

		// Kernel, appending after `prefill` sentinel cells that must
		// survive untouched.
		dst := make([]Cell, 0, int(prefill)+4)
		for i := 0; i < int(prefill); i++ {
			dst = append(dst, Cell{Number: 0xABC000 + uint32(i), Weight: 0xEE})
		}
		number, got, consumed, err := DecodeRecordInto(data, dst)
		if (err == nil) != (refErr == nil) {
			t.Fatalf("accept mismatch: kernel err=%v, reference err=%v", err, refErr)
		}
		if err != nil {
			if len(got) != int(prefill) {
				t.Fatalf("error path truncated dst to %d, want %d", len(got), prefill)
			}
			return
		}
		if number != refRec.Number || consumed != refConsumed {
			t.Fatalf("kernel (%d, %d) vs reference (%d, %d)", number, consumed, refRec.Number, refConsumed)
		}
		if len(got) != int(prefill)+len(refRec.Cells) {
			t.Fatalf("kernel yielded %d cells, want %d + %d prefilled", len(got), len(refRec.Cells), prefill)
		}
		for i := 0; i < int(prefill); i++ {
			if got[i] != (Cell{Number: 0xABC000 + uint32(i), Weight: 0xEE}) {
				t.Fatalf("prefilled cell %d clobbered: %+v", i, got[i])
			}
		}
		for i, c := range refRec.Cells {
			if got[int(prefill)+i] != c {
				t.Fatalf("cell %d: kernel %+v vs reference %+v", i, got[int(prefill)+i], c)
			}
		}
	})
}

// FuzzDecodeBTreeCell covers the 9-byte leaf-cell decoder.
func FuzzDecodeBTreeCell(f *testing.F) {
	enc, _ := AppendBTreeCell(nil, BTreeCell{Term: 9, Addr: 100, DocFreq: 3})
	f.Add(enc)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeBTreeCell(data)
		if err != nil {
			return
		}
		re, err := AppendBTreeCell(nil, c)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(re, data[:BTreeCellSize]) {
			t.Fatalf("re-encode mismatch")
		}
	})
}
