package lsh

import (
	"encoding/binary"
	"testing"

	"textjoin/internal/document"
)

// FuzzBandKeys drives the MinHash/banding kernel with random token
// multisets and pins its three core invariants:
//
//  1. seed determinism — the same (seed, shape, terms) always folds to
//     the same band keys, and a different seed is allowed to differ;
//  2. permutation invariance — the keys depend on the term *set*, not on
//     the order the cells arrive in or their occurrence counts;
//  3. path equivalence — the per-document row-major path (Keys) and the
//     term-major batch path Build uses (batchKeys) produce identical
//     output bit for bit.
func FuzzBandKeys(f *testing.F) {
	f.Add(uint64(1), uint8(16), uint8(2), []byte{0, 0, 0, 1, 0, 0, 0, 5})
	f.Add(uint64(0), uint8(0), uint8(0), []byte{})
	f.Add(uint64(42), uint8(1), uint8(1), []byte{9, 9, 9, 9, 9, 9, 9, 9})
	f.Add(uint64(7), uint8(3), uint8(5), []byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, seed uint64, bands, rows uint8, data []byte) {
		cfg := Config{
			Bands: int(bands % 32),
			Rows:  int(rows % 8),
			Seed:  seed,
		}.withDefaults()

		// Decode the corpus bytes into a term multiset: every 4-byte
		// window is one token, so duplicates and arbitrary counts arise
		// naturally from the fuzzed input.
		var cells []document.Cell
		seen := make(map[uint32]int)
		for i := 0; i+4 <= len(data); i += 4 {
			term := binary.LittleEndian.Uint32(data[i:])
			if n, dup := seen[term]; dup {
				// A repeated token only bumps the weight of its cell —
				// the kernel must ignore weights entirely.
				cells[n].Weight++
				continue
			}
			seen[term] = len(cells)
			cells = append(cells, document.Cell{Term: term, Weight: 1})
		}
		d := &document.Document{ID: 0, Cells: cells}

		keys := cfg.Keys(d, nil)
		if len(cells) == 0 {
			if len(keys) != 0 {
				t.Fatalf("empty multiset produced %d keys", len(keys))
			}
			return
		}
		if len(keys) != cfg.Bands {
			t.Fatalf("got %d keys, want %d bands", len(keys), cfg.Bands)
		}

		// 1. Determinism: recompute from scratch.
		again := cfg.Keys(d, nil)
		for j := range keys {
			if keys[j] != again[j] {
				t.Fatalf("band %d differs across invocations", j)
			}
		}

		// 2a. Permutation invariance: reverse the cell order.
		rev := make([]document.Cell, len(cells))
		for i, c := range cells {
			rev[len(cells)-1-i] = c
		}
		permKeys := cfg.Keys(&document.Document{ID: 0, Cells: rev}, nil)
		for j := range keys {
			if keys[j] != permKeys[j] {
				t.Fatalf("band %d sensitive to cell order", j)
			}
		}
		// 2b. Rotate by a data-derived offset for a second permutation.
		if n := len(cells); n > 1 {
			rot := make([]document.Cell, 0, n)
			off := int(data[0]) % n
			rot = append(rot, cells[off:]...)
			rot = append(rot, cells[:off]...)
			rotKeys := cfg.Keys(&document.Document{ID: 0, Cells: rot}, nil)
			for j := range keys {
				if keys[j] != rotKeys[j] {
					t.Fatalf("band %d sensitive to cell rotation", j)
				}
			}
		}
		// 2c. Weight independence: doubling every count changes nothing.
		heavy := make([]document.Cell, len(cells))
		for i, c := range cells {
			heavy[i] = document.Cell{Term: c.Term, Weight: c.Weight * 2}
		}
		heavyKeys := cfg.Keys(&document.Document{ID: 0, Cells: heavy}, nil)
		for j := range keys {
			if keys[j] != heavyKeys[j] {
				t.Fatalf("band %d sensitive to occurrence counts", j)
			}
		}

		// 3. Batch-path equivalence, including into a dirty buffer.
		minima := make([]uint64, cfg.Bands*cfg.Rows)
		dst := make([]uint64, cfg.Bands)
		for i := range dst {
			dst[i] = 0xDEADBEEF
		}
		batch := cfg.batchKeys(d, minima, dst)
		if len(batch) != len(keys) {
			t.Fatalf("batch path yielded %d keys, want %d", len(batch), len(keys))
		}
		for j := range keys {
			if keys[j] != batch[j] {
				t.Fatalf("band %d: per-doc %x, batch %x", j, keys[j], batch[j])
			}
		}
	})
}
