package lsh

import (
	"math"
	"strings"
	"testing"

	"textjoin/internal/collection"
	"textjoin/internal/document"
	"textjoin/internal/iosim"
)

// buildColl stores docs (term multisets) on a small disk and returns the
// collection plus its disk.
func buildColl(t *testing.T, pageSize int, docs [][]uint32) (*collection.Collection, *iosim.Disk) {
	t.Helper()
	d := iosim.NewDisk(iosim.WithPageSize(pageSize))
	f, err := d.Create("c.col")
	if err != nil {
		t.Fatal(err)
	}
	b, err := collection.NewBuilder("c", f)
	if err != nil {
		t.Fatal(err)
	}
	for i, terms := range docs {
		counts := make(map[uint32]int, len(terms))
		for _, term := range terms {
			counts[term]++
		}
		if err := b.Add(document.New(uint32(i), counts)); err != nil {
			t.Fatal(err)
		}
	}
	c, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return c, d
}

var testDocs = [][]uint32{
	{1, 5, 9, 12},
	{5, 9, 12, 100},
	{7, 8},
	{2000},
	{},
	{40000, 40001, 40002},
	{1, 5, 9, 12}, // duplicate of doc 0: identical keys under every config
}

// TestKeysShape pins the basic contract: Bands keys per non-empty
// document, none for an empty one, equal documents → equal keys, and two
// invocations are bit-identical (seed determinism).
func TestKeysShape(t *testing.T) {
	for _, cfg := range []Config{{}, {Bands: 4, Rows: 3}, {Bands: 1, Rows: 1, Seed: 77}} {
		eff := cfg.withDefaults()
		var keys [][]uint64
		for i, terms := range testDocs {
			counts := make(map[uint32]int)
			for _, term := range terms {
				counts[term]++
			}
			d := document.New(uint32(i), counts)
			k := cfg.Keys(d, nil)
			if len(terms) == 0 {
				if len(k) != 0 {
					t.Fatalf("cfg %+v: empty doc got %d keys", cfg, len(k))
				}
			} else if len(k) != eff.Bands {
				t.Fatalf("cfg %+v: doc %d got %d keys, want %d", cfg, i, len(k), eff.Bands)
			}
			again := cfg.Keys(d, nil)
			for j := range k {
				if k[j] != again[j] {
					t.Fatalf("cfg %+v: doc %d keys differ across invocations", cfg, i)
				}
			}
			keys = append(keys, append([]uint64(nil), k...))
		}
		// Docs 0 and 6 hold the same term set.
		for j := range keys[0] {
			if keys[0][j] != keys[6][j] {
				t.Fatalf("cfg %+v: identical documents produced different keys", cfg)
			}
		}
	}
}

// TestKeysSeedSensitivity ensures different seeds actually reshuffle the
// buckets — equal output under different seeds would mean the seed is
// ignored.
func TestKeysSeedSensitivity(t *testing.T) {
	d := document.New(0, map[uint32]int{1: 1, 5: 2, 9: 1})
	a := Config{Seed: 1}.Keys(d, nil)
	b := Config{Seed: 2}.Keys(d, nil)
	same := true
	for j := range a {
		if a[j] != b[j] {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical band keys")
	}
}

// TestRoundTrip pins that Open returns exactly what Build wrote: config,
// per-document keys and bucket membership.
func TestRoundTrip(t *testing.T) {
	c, d := buildColl(t, 128, testDocs)
	f, err := d.Create("c.lsh")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Bands: 8, Rows: 2, Seed: 42}
	built, err := Build(c, f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := d.Open("c.lsh")
	if err != nil {
		t.Fatal(err)
	}
	opened, err := Open(f2)
	if err != nil {
		t.Fatal(err)
	}
	if opened.Config() != built.Config() {
		t.Fatalf("config mismatch: %+v vs %+v", opened.Config(), built.Config())
	}
	if opened.NumDocs() != built.NumDocs() {
		t.Fatalf("numDocs mismatch: %d vs %d", opened.NumDocs(), built.NumDocs())
	}
	for i := range testDocs {
		a, b := built.DocKeys(uint32(i)), opened.DocKeys(uint32(i))
		if len(a) != len(b) {
			t.Fatalf("doc %d: key count %d vs %d", i, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("doc %d key %d differs after round trip", i, j)
			}
		}
		for b2, key := range a {
			ma, mb := built.Bucket(b2, key), opened.Bucket(b2, key)
			if len(ma) != len(mb) {
				t.Fatalf("doc %d band %d bucket size %d vs %d", i, b2, len(ma), len(mb))
			}
			for k := range ma {
				if ma[k] != mb[k] {
					t.Fatalf("doc %d band %d bucket member %d differs", i, b2, k)
				}
			}
		}
	}
	// The empty document must be bucketless on both sides.
	if built.DocKeys(4) != nil || opened.DocKeys(4) != nil {
		t.Fatal("empty document has band keys")
	}
}

// TestBuildKeysMatchPerDoc verifies Build's term-major batch path against
// the per-document Keys path over a real collection.
func TestBuildKeysMatchPerDoc(t *testing.T) {
	c, d := buildColl(t, 128, testDocs)
	f, err := d.Create("c.lsh")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Bands: 6, Rows: 3, Seed: 9}
	sc, err := Build(c, f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, terms := range testDocs {
		counts := make(map[uint32]int)
		for _, term := range terms {
			counts[term]++
		}
		want := cfg.Keys(document.New(uint32(i), counts), nil)
		got := sc.DocKeys(uint32(i))
		if len(terms) == 0 {
			if got != nil {
				t.Fatalf("doc %d: empty doc has sidecar keys", i)
			}
			continue
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("doc %d band %d: sidecar %x, per-doc %x", i, j, got[j], want[j])
			}
		}
	}
}

// TestBucketsSorted pins that every bucket lists its members in ascending
// id order — the joins rely on it for deterministic candidate order.
func TestBucketsSorted(t *testing.T) {
	docs := make([][]uint32, 64)
	for i := range docs {
		docs[i] = []uint32{uint32(i % 7), uint32(i % 5), uint32(100 + i%3)}
	}
	c, d := buildColl(t, 64, docs)
	f, err := d.Create("c.lsh")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Build(c, f, Config{Bands: 4, Rows: 1})
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < sc.NumDocs(); id++ {
		for b, key := range sc.DocKeys(uint32(id)) {
			members := sc.Bucket(b, key)
			for k := 1; k < len(members); k++ {
				if members[k-1] >= members[k] {
					t.Fatalf("band %d key %x: members not ascending: %v", b, key, members)
				}
			}
		}
	}
}

// TestBuildRequiresEmptyFile mirrors the signature sidecar contract.
func TestBuildRequiresEmptyFile(t *testing.T) {
	c, d := buildColl(t, 128, testDocs)
	f, err := d.Create("c.lsh")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(c, f, Config{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Build(c, f, Config{}); err == nil || !strings.Contains(err.Error(), "must be empty") {
		t.Fatalf("second build on the same file: err = %v, want must-be-empty", err)
	}
}

// TestOpenRejectsCorruption covers the parse error paths.
func TestOpenRejectsCorruption(t *testing.T) {
	d := iosim.NewDisk(iosim.WithPageSize(64))
	writeFile := func(name string, data []byte) *iosim.File {
		t.Helper()
		f, err := d.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		w := f.Writer()
		if _, err := w.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		return f
	}
	// A zero-page file has no header at all. (A partially written page
	// still reads back page-sized, so only an empty file is "short".)
	empty, err := d.Create("empty")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(empty); err == nil || !strings.Contains(err.Error(), "truncated header") {
		t.Errorf("empty: err = %v, want truncated header", err)
	}
	f0 := writeFile("magic", make([]byte, headerSize))
	if _, err := Open(f0); err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Errorf("magic: err = %v, want bad magic", err)
	}
	// Valid magic, wrong version.
	bad := make([]byte, headerSize)
	bad[0], bad[1], bad[2], bad[3] = 0x48, 0x4c, 0x4a, 0x54 // "TJLH" LE
	bad[4] = 99
	f := writeFile("version", bad)
	if _, err := Open(f); err == nil || !strings.Contains(err.Error(), "unsupported version") {
		t.Errorf("version: err = %v, want unsupported version", err)
	}
	// Valid header claiming more docs than the body holds.
	bad = make([]byte, headerSize)
	bad[0], bad[1], bad[2], bad[3] = 0x48, 0x4c, 0x4a, 0x54
	bad[4] = version
	bad[8] = 16  // bands
	bad[12] = 2  // rows
	bad[16] = 50 // numDocs, body absent
	f = writeFile("body", bad)
	if _, err := Open(f); err == nil || !strings.Contains(err.Error(), "truncated body") {
		t.Errorf("body: err = %v, want truncated body", err)
	}
}

// TestEstimateRecall pins the S-curve's shape and boundary values.
func TestEstimateRecall(t *testing.T) {
	if got := EstimateRecall(16, 2, 0); got != 0 {
		t.Errorf("recall at s=0: %v", got)
	}
	if got := EstimateRecall(16, 2, 1); got != 1 {
		t.Errorf("recall at s=1: %v", got)
	}
	// Monotone in s.
	prev := -1.0
	for s := 0.05; s < 1; s += 0.05 {
		r := EstimateRecall(16, 2, s)
		if r <= prev {
			t.Fatalf("recall not increasing at s=%.2f", s)
		}
		if r < 0 || r > 1 {
			t.Fatalf("recall out of range at s=%.2f: %v", s, r)
		}
		prev = r
	}
	// More bands raise recall; more rows lower it (fixed moderate s).
	if EstimateRecall(32, 2, 0.5) <= EstimateRecall(8, 2, 0.5) {
		t.Error("more bands did not raise recall")
	}
	if EstimateRecall(16, 4, 0.5) >= EstimateRecall(16, 2, 0.5) {
		t.Error("more rows did not lower recall")
	}
	// One band, one row: recall equals s exactly.
	if got := EstimateRecall(1, 1, 0.3); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("b=r=1 recall = %v, want 0.3", got)
	}
}

// TestSelfProbe sanity-checks the planner measurement: duplicated
// documents must probe each other, and the fractions stay in range.
func TestSelfProbe(t *testing.T) {
	docs := make([][]uint32, 32)
	for i := range docs {
		// Two identical cohorts → every doc has at least 15 certain
		// candidates besides itself.
		base := uint32(i % 2 * 1000)
		docs[i] = []uint32{base + 1, base + 2, base + 3}
	}
	c, d := buildColl(t, 64, docs)
	f, err := d.Create("c.lsh")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Build(c, f, Config{Bands: 8, Rows: 2})
	if err != nil {
		t.Fatal(err)
	}
	candFrac, runs := sc.SelfProbe()
	if candFrac < 0.5 || candFrac > 1 {
		t.Errorf("candFrac = %v, want [0.5, 1] for two identical cohorts", candFrac)
	}
	if runs <= 0 || runs > float64(sc.NumDocs()) {
		t.Errorf("runs = %v out of range", runs)
	}
	// Deterministic: a second probe returns the same numbers.
	c2, r2 := sc.SelfProbe()
	if c2 != candFrac || r2 != runs {
		t.Errorf("SelfProbe not deterministic: (%v,%v) vs (%v,%v)", candFrac, runs, c2, r2)
	}
}
