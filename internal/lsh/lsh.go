// Package lsh implements seeded, deterministic MinHash/banding
// signatures for the approximate similarity join: every document gets
// b band keys, each a fold of r MinHash row values over the document's
// term set, persisted as a bucket-partitioned sidecar file on the iosim
// disk (the same idiom as internal/signature's "TJSG" file).
//
// Two documents become a candidate pair iff at least one band key
// collides. For Jaccard similarity s between the term sets, the
// collision probability is the classic S-curve
//
//	P(candidate) = 1 − (1 − s^r)^b
//
// which EstimateRecall exposes to the cost model. Unlike the
// superimposed-code prefilter (which may only skip, never admit), LSH
// may miss truly similar pairs — the join that consumes these buckets
// verifies every candidate with the exact scorer, so precision is
// perfect and only recall is probabilistic.
//
// Everything is derived from Config.Seed with splitmix64-style mixing:
// the same collection, configuration and seed produce byte-identical
// sidecar files and bucket tables on every run and platform, which the
// differential harness and the fuzz tests pin.
package lsh

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"textjoin/internal/collection"
	"textjoin/internal/document"
	"textjoin/internal/iosim"
)

// Defaults for Config's zero values.
const (
	DefaultBands = 16
	DefaultRows  = 2
	// DefaultSeed is an arbitrary nonzero constant so the zero Config is
	// usable; any fixed seed works, determinism is what matters.
	DefaultSeed = 0x746a6c736831 // "tjlsh1"
)

// Sidecar file layout constants.
const (
	magic   = 0x544a4c48 // "TJLH"
	version = 1
	// headerSize is the fixed serialized header: magic, version, bands,
	// rows (uint32 each) then numDocs, seed (uint64 each). The body is
	// numDocs×bands little-endian band keys followed by the non-empty
	// bitmap, ⌈numDocs/8⌉ bytes.
	headerSize = 4*4 + 2*8
)

// golden is the splitmix64 stream increment.
const golden = 0x9e3779b97f4a7c15

// Config sets the banding shape. The zero value selects the defaults
// above.
type Config struct {
	// Bands is b: the number of independent band keys per document. More
	// bands raise recall and candidate volume.
	Bands int
	// Rows is r: the number of MinHash rows folded into each band key.
	// More rows sharpen the S-curve (fewer low-similarity candidates,
	// lower recall at fixed b).
	Rows int
	// Seed derives every row and band salt. Equal seeds produce equal
	// buckets; 0 selects DefaultSeed.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Bands <= 0 {
		c.Bands = DefaultBands
	}
	if c.Rows <= 0 {
		c.Rows = DefaultRows
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	return c
}

// mix64 is the splitmix64 finalizer: a bijective 64-bit mix with good
// avalanche, the same construction internal/signature hashes with.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// rowSalt derives MinHash row j's salt from the seed.
func (c Config) rowSalt(j int) uint64 {
	return mix64(c.Seed + uint64(j+1)*golden)
}

// rowHash hashes one term under row salt — the value whose minimum over
// a document's terms is that document's MinHash row value.
func rowHash(salt uint64, term uint32) uint64 {
	return mix64(salt ^ (uint64(term) + golden))
}

// bandSalt derives band b's fold seed.
func (c Config) bandSalt(b int) uint64 {
	return mix64(c.Seed ^ (uint64(b)+1)*golden)
}

// foldBand folds r row minima into one band key.
func foldBand(salt uint64, rows []uint64) uint64 {
	key := salt
	for _, v := range rows {
		key = mix64(key ^ v)
	}
	return key
}

// Keys computes d's band keys into dst (reallocating when mis-sized)
// and returns them. A document with no terms has no MinHash and
// returns an empty slice: it lands in no bucket and pairs with nothing,
// matching the exact joins where an empty document scores zero against
// everything and zero similarities are never kept.
//
// This is the per-document path: row-major, each row's minimum taken
// over the terms before the next row starts. Build uses an incremental
// term-major path; both must produce identical keys (fuzz-pinned).
func (c Config) Keys(d *document.Document, dst []uint64) []uint64 {
	c = c.withDefaults()
	if len(d.Cells) == 0 {
		return dst[:0]
	}
	if cap(dst) < c.Bands {
		dst = make([]uint64, c.Bands)
	}
	dst = dst[:c.Bands]
	rows := make([]uint64, c.Rows)
	for b := 0; b < c.Bands; b++ {
		for j := 0; j < c.Rows; j++ {
			salt := c.rowSalt(b*c.Rows + j)
			min := uint64(math.MaxUint64)
			for _, cell := range d.Cells {
				if h := rowHash(salt, cell.Term); h < min {
					min = h
				}
			}
			rows[j] = min
		}
		dst[b] = foldBand(c.bandSalt(b), rows)
	}
	return dst
}

// batchKeys is the term-major path Build uses: one pass over the cells
// updates every row minimum, then the bands fold. Identical output to
// Keys — the min over terms commutes with the loop order.
func (c Config) batchKeys(d *document.Document, minima, dst []uint64) []uint64 {
	if len(d.Cells) == 0 {
		return dst[:0]
	}
	total := c.Bands * c.Rows
	minima = minima[:total]
	for j := range minima {
		minima[j] = math.MaxUint64
	}
	for _, cell := range d.Cells {
		for j := 0; j < total; j++ {
			if h := rowHash(c.rowSalt(j), cell.Term); h < minima[j] {
				minima[j] = h
			}
		}
	}
	dst = dst[:c.Bands]
	for b := 0; b < c.Bands; b++ {
		dst[b] = foldBand(c.bandSalt(b), minima[b*c.Rows:(b+1)*c.Rows])
	}
	return dst
}

// EstimateRecall returns the banding S-curve 1 − (1 − s^rows)^bands:
// the probability that a pair with Jaccard similarity s shares at least
// one band key.
func EstimateRecall(bands, rows int, s float64) float64 {
	if s <= 0 {
		return 0
	}
	if s >= 1 {
		return 1
	}
	return 1 - math.Pow(1-math.Pow(s, float64(rows)), float64(bands))
}

// Sidecar is a collection's MinHash band-key file held resident after
// one sequential sweep, with the per-band bucket tables rebuilt in
// memory: Bucket(b, key) lists every document whose band b folded to
// key, in ascending document id order.
type Sidecar struct {
	cfg      Config
	file     *iosim.File
	numDocs  int
	keys     []uint64 // numDocs × Bands band keys
	nonEmpty []byte   // bitmap: bit id set iff document id has terms
	buckets  []map[uint64][]uint32
}

// Build scans c, computes every document's band keys under cfg and
// writes them to the empty sidecar file f, returning the resident
// sidecar with its bucket tables.
func Build(c *collection.Collection, f *iosim.File, cfg Config) (*Sidecar, error) {
	if f.Pages() != 0 {
		return nil, fmt.Errorf("lsh: build target %q must be empty", f.Name())
	}
	cfg = cfg.withDefaults()
	numDocs := int(c.NumDocs())
	s := &Sidecar{
		cfg:      cfg,
		file:     f,
		numDocs:  numDocs,
		keys:     make([]uint64, numDocs*cfg.Bands),
		nonEmpty: make([]byte, (numDocs+7)/8),
	}
	minima := make([]uint64, cfg.Bands*cfg.Rows)
	sc := c.Scan()
	for {
		d, err := sc.NextReuse()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		i := int(d.ID) * cfg.Bands
		keys := cfg.batchKeys(d, minima, s.keys[i:i+cfg.Bands])
		if len(keys) > 0 {
			s.nonEmpty[d.ID>>3] |= 1 << (d.ID & 7)
		}
	}
	if err := s.write(); err != nil {
		return nil, err
	}
	s.buildBuckets()
	return s, nil
}

// Open reads a sidecar previously written by Build back from f with one
// sequential sweep (charged to the iosim file) and rebuilds the bucket
// tables.
func Open(f *iosim.File) (*Sidecar, error) {
	raw := make([]byte, 0, f.Size())
	err := f.ReadRange(0, f.Pages(), func(_ int64, page []byte) error {
		raw = append(raw, page...)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("lsh: %q: %w", f.Name(), err)
	}
	if len(raw) < headerSize {
		return nil, fmt.Errorf("lsh: %q: truncated header", f.Name())
	}
	head := raw[:headerSize]
	if binary.LittleEndian.Uint32(head[0:]) != magic {
		return nil, fmt.Errorf("lsh: %q: bad magic", f.Name())
	}
	if v := binary.LittleEndian.Uint32(head[4:]); v != version {
		return nil, fmt.Errorf("lsh: %q: unsupported version %d", f.Name(), v)
	}
	cfg := Config{
		Bands: int(binary.LittleEndian.Uint32(head[8:])),
		Rows:  int(binary.LittleEndian.Uint32(head[12:])),
	}
	numDocs := int(binary.LittleEndian.Uint64(head[16:]))
	cfg.Seed = binary.LittleEndian.Uint64(head[24:])
	s := &Sidecar{
		cfg:      cfg,
		file:     f,
		numDocs:  numDocs,
		keys:     make([]uint64, numDocs*cfg.Bands),
		nonEmpty: make([]byte, (numDocs+7)/8),
	}
	off := headerSize
	if off+len(s.keys)*8+len(s.nonEmpty) > len(raw) {
		return nil, fmt.Errorf("lsh: %q: truncated body", f.Name())
	}
	for i := range s.keys {
		s.keys[i] = binary.LittleEndian.Uint64(raw[off+i*8:])
	}
	off += len(s.keys) * 8
	copy(s.nonEmpty, raw[off:off+len(s.nonEmpty)])
	s.buildBuckets()
	return s, nil
}

// write serializes the sidecar through f's writer.
func (s *Sidecar) write() error {
	w := s.file.Writer()
	head := make([]byte, headerSize)
	binary.LittleEndian.PutUint32(head[0:], magic)
	binary.LittleEndian.PutUint32(head[4:], version)
	binary.LittleEndian.PutUint32(head[8:], uint32(s.cfg.Bands))
	binary.LittleEndian.PutUint32(head[12:], uint32(s.cfg.Rows))
	binary.LittleEndian.PutUint64(head[16:], uint64(s.numDocs))
	binary.LittleEndian.PutUint64(head[24:], s.cfg.Seed)
	if _, err := w.Write(head); err != nil {
		return err
	}
	var buf [8]byte
	for _, v := range s.keys {
		binary.LittleEndian.PutUint64(buf[:], v)
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
	}
	if _, err := w.Write(s.nonEmpty); err != nil {
		return err
	}
	return w.Flush()
}

// buildBuckets partitions the documents into per-band hash tables.
// Ascending id insertion order makes every bucket's member list sorted,
// which the joins rely on for deterministic candidate order.
func (s *Sidecar) buildBuckets() {
	s.buckets = make([]map[uint64][]uint32, s.cfg.Bands)
	for b := range s.buckets {
		s.buckets[b] = make(map[uint64][]uint32)
	}
	for id := 0; id < s.numDocs; id++ {
		if !s.hasTerms(uint32(id)) {
			continue
		}
		for b := 0; b < s.cfg.Bands; b++ {
			key := s.keys[id*s.cfg.Bands+b]
			s.buckets[b][key] = append(s.buckets[b][key], uint32(id))
		}
	}
}

func (s *Sidecar) hasTerms(id uint32) bool {
	return s.nonEmpty[id>>3]&(1<<(id&7)) != 0
}

// Config returns the banding parameters the sidecar was built with.
func (s *Sidecar) Config() Config { return s.cfg }

// File returns the backing sidecar file.
func (s *Sidecar) File() *iosim.File { return s.file }

// Pages returns the sidecar's size in storage pages — the sequential
// read cost of loading it.
func (s *Sidecar) Pages() int64 { return s.file.Pages() }

// NumDocs returns the number of documents the sidecar covers.
func (s *Sidecar) NumDocs() int { return s.numDocs }

// MemBytes returns the resident size of the key array and bitmap (the
// bucket tables add map overhead on top).
func (s *Sidecar) MemBytes() int64 {
	return int64(len(s.keys))*8 + int64(len(s.nonEmpty))
}

// DocKeys returns document id's band keys, or an empty slice for a
// document with no terms. The returned slice aliases the sidecar; do
// not modify.
func (s *Sidecar) DocKeys(id uint32) []uint64 {
	if !s.hasTerms(id) {
		return nil
	}
	i := int(id) * s.cfg.Bands
	return s.keys[i : i+s.cfg.Bands]
}

// Bucket returns the ascending document ids whose band b key equals
// key, or nil. The returned slice aliases the sidecar; do not modify.
func (s *Sidecar) Bucket(b int, key uint64) []uint32 {
	return s.buckets[b][key]
}

// maxProbeSamples bounds SelfProbe's work.
const maxProbeSamples = 256

// SelfProbe measures the sidecar's candidate volume for the planner by
// probing its own documents against its buckets: up to maxProbeSamples
// evenly spaced documents each collect the deduplicated union of their
// buckets' members. It returns the mean candidate fraction (candidates
// per probe over NumDocs) and the mean number of contiguous-id
// candidate runs per probe (each run a filtered scan resumes costs one
// random seek). CPU-only over the resident tables, fully deterministic.
func (s *Sidecar) SelfProbe() (candFrac, runs float64) {
	if s.numDocs == 0 {
		return 0, 0
	}
	step := s.numDocs / maxProbeSamples
	if step == 0 {
		step = 1
	}
	stamp := make([]int, s.numDocs)
	for i := range stamp {
		stamp[i] = -1
	}
	var cand []uint32
	var samples, totalCand, totalRuns int64
	for id := 0; id < s.numDocs; id += step {
		keys := s.DocKeys(uint32(id))
		if keys == nil {
			continue
		}
		samples++
		probe := int(samples) // distinct stamp per probe
		cand = cand[:0]
		for b, key := range keys {
			for _, m := range s.Bucket(b, key) {
				if stamp[m] != probe {
					stamp[m] = probe
					cand = append(cand, m)
				}
			}
		}
		totalCand += int64(len(cand))
		for _, m := range cand {
			if m == 0 || stamp[m-1] != probe {
				totalRuns++
			}
		}
	}
	if samples == 0 {
		return 0, 0
	}
	return float64(totalCand) / float64(samples) / float64(s.numDocs),
		float64(totalRuns) / float64(samples)
}
