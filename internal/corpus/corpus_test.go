package corpus

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"textjoin/internal/document"
	"textjoin/internal/iosim"
)

func TestPaperProfiles(t *testing.T) {
	if WSJ.NumDocs != 98736 || WSJ.TermsPerDoc != 329 || WSJ.DistinctTerms != 156298 {
		t.Errorf("WSJ = %+v", WSJ)
	}
	if FR.NumDocs != 26207 || FR.TermsPerDoc != 1017 || FR.DistinctTerms != 126258 {
		t.Errorf("FR = %+v", FR)
	}
	if DOE.NumDocs != 226087 || DOE.TermsPerDoc != 89 || DOE.DistinctTerms != 186225 {
		t.Errorf("DOE = %+v", DOE)
	}
	if len(Profiles()) != 3 {
		t.Error("Profiles() wrong length")
	}
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"wsj", "WSJ", "Fr", "doe"} {
		if _, err := ProfileByName(name); err != nil {
			t.Errorf("ProfileByName(%q): %v", name, err)
		}
	}
	if _, err := ProfileByName("trec"); err == nil {
		t.Error("unknown profile: want error")
	}
}

func TestStatsConversion(t *testing.T) {
	st := FR.Stats()
	if st.N != FR.NumDocs || st.K != FR.TermsPerDoc || st.T != FR.DistinctTerms {
		t.Errorf("Stats = %+v", st)
	}
}

func TestScaledPreservesDensity(t *testing.T) {
	for _, p := range Profiles() {
		s := p.Scaled(256)
		if s.NumDocs >= p.NumDocs || s.DistinctTerms >= p.DistinctTerms {
			t.Errorf("%s scaled up: %+v", p.Name, s)
		}
		origDensity := p.TermsPerDoc / float64(p.DistinctTerms)
		newDensity := s.TermsPerDoc / float64(s.DistinctTerms)
		if newDensity < origDensity/3 || newDensity > origDensity*3 {
			t.Errorf("%s density drifted: %v -> %v", p.Name, origDensity, newDensity)
		}
		if !strings.Contains(s.Name, p.Name) {
			t.Errorf("scaled name = %q", s.Name)
		}
	}
	if got := WSJ.Scaled(1); got != WSJ {
		t.Error("Scaled(1) should be identity")
	}
}

func TestFewerLargerDocsKeepsSize(t *testing.T) {
	p := FR.FewerLargerDocs(16)
	if p.NumDocs != FR.NumDocs/16 {
		t.Errorf("NumDocs = %d", p.NumDocs)
	}
	if p.TermsPerDoc != FR.TermsPerDoc*16 {
		t.Errorf("TermsPerDoc = %v", p.TermsPerDoc)
	}
	// Collection size N·K is preserved up to the integer division of N.
	orig := float64(FR.NumDocs) * FR.TermsPerDoc
	got := float64(p.NumDocs) * p.TermsPerDoc
	if math.Abs(got-orig)/orig > 0.01 {
		t.Errorf("size drifted: %v -> %v", orig, got)
	}
	if got := FR.FewerLargerDocs(1); got != FR {
		t.Error("FewerLargerDocs(1) should be identity")
	}
	// K is capped at T.
	huge := FR.FewerLargerDocs(1 << 20)
	if huge.TermsPerDoc > float64(huge.DistinctTerms) {
		t.Errorf("K %v > T %d", huge.TermsPerDoc, huge.DistinctTerms)
	}
}

func TestSmallProfile(t *testing.T) {
	p := WSJ.Small(50)
	if p.NumDocs != 50 {
		t.Errorf("NumDocs = %d", p.NumDocs)
	}
	if p.DistinctTerms >= WSJ.DistinctTerms {
		t.Errorf("T = %d not reduced", p.DistinctTerms)
	}
	if p.DistinctTerms < int64(p.TermsPerDoc) {
		t.Errorf("T = %d < K = %v", p.DistinctTerms, p.TermsPerDoc)
	}
}

func TestNewGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(Profile{NumDocs: 1, TermsPerDoc: 10, DistinctTerms: 5}, 1); err == nil {
		t.Error("K > T: want error")
	}
	if _, err := NewGenerator(Profile{NumDocs: 1, TermsPerDoc: 0, DistinctTerms: 5}, 1); err == nil {
		t.Error("K = 0: want error")
	}
}

func TestGenerateMatchesProfileStats(t *testing.T) {
	p := Profile{Name: "test", NumDocs: 400, TermsPerDoc: 30, DistinctTerms: 2000}
	d := iosim.NewDisk(iosim.WithPageSize(4096))
	c, err := GenerateOn(d, "c", p, 42)
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.N != 400 {
		t.Errorf("N = %d", st.N)
	}
	if math.Abs(st.K-30)/30 > 0.15 {
		t.Errorf("K = %v, want ≈ 30", st.K)
	}
	// Vocabulary coverage: Zipf sampling reaches a large share of T for
	// N·K ≫ T.
	if st.T < 500 || st.T > 2000 {
		t.Errorf("T = %d, want within (500, 2000]", st.T)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Profile{Name: "det", NumDocs: 50, TermsPerDoc: 10, DistinctTerms: 300}
	d := iosim.NewDisk()
	c1, err := GenerateOn(d, "a", p, 7)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := GenerateOn(d, "b", p, 7)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Stats() != c2.Stats() {
		t.Errorf("same seed, different stats: %+v vs %+v", c1.Stats(), c2.Stats())
	}
	for id := uint32(0); id < 50; id++ {
		a, err1 := c1.Fetch(id)
		b, err2 := c2.Fetch(id)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if len(a.Cells) != len(b.Cells) {
			t.Fatalf("doc %d differs", id)
		}
		for i := range a.Cells {
			if a.Cells[i] != b.Cells[i] {
				t.Fatalf("doc %d cell %d differs", id, i)
			}
		}
	}
	c3, err := GenerateOn(d, "c", p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c3.Stats() == c1.Stats() {
		t.Error("different seeds produced identical stats (suspicious)")
	}
}

func TestZipfSkew(t *testing.T) {
	// Document frequencies must be skewed: the most frequent term should
	// appear in far more documents than the median term.
	p := Profile{Name: "skew", NumDocs: 300, TermsPerDoc: 20, DistinctTerms: 1000}
	d := iosim.NewDisk()
	c, err := GenerateOn(d, "c", p, 3)
	if err != nil {
		t.Fatal(err)
	}
	var maxDF, totalDF int64
	terms := c.Terms()
	for _, term := range terms {
		df := c.DF(term)
		totalDF += df
		if df > maxDF {
			maxDF = df
		}
	}
	meanDF := float64(totalDF) / float64(len(terms))
	if float64(maxDF) < 5*meanDF {
		t.Errorf("max df %d not skewed vs mean %.1f", maxDF, meanDF)
	}
}

func TestDenseDocsFallback(t *testing.T) {
	// K close to T forces the deterministic vocabulary sweep.
	p := Profile{Name: "dense", NumDocs: 10, TermsPerDoc: 90, DistinctTerms: 100}
	d := iosim.NewDisk()
	c, err := GenerateOn(d, "c", p, 5)
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats().N != 10 {
		t.Errorf("N = %d", c.Stats().N)
	}
	if c.Stats().K < 45 {
		t.Errorf("K = %v, want ≥ K/2", c.Stats().K)
	}
}

func TestWriteReadText(t *testing.T) {
	p := Profile{Name: "txt", NumDocs: 30, TermsPerDoc: 8, DistinctTerms: 200}
	g, err := NewGenerator(p, 11)
	if err != nil {
		t.Fatal(err)
	}
	var docs []*document.Document
	for id := int64(0); id < p.NumDocs; id++ {
		docs = append(docs, g.Document(uint32(id)))
	}
	var buf bytes.Buffer
	if err := WriteText(&buf, docs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(docs) {
		t.Fatalf("read %d docs, want %d", len(back), len(docs))
	}
	for i := range docs {
		if back[i].ID != docs[i].ID || len(back[i].Cells) != len(docs[i].Cells) {
			t.Fatalf("doc %d differs: %+v vs %+v", i, back[i], docs[i])
		}
		for j := range docs[i].Cells {
			if back[i].Cells[j] != docs[i].Cells[j] {
				t.Errorf("doc %d cell %d differs", i, j)
			}
		}
	}
}

func TestReadTextSkipsCommentsAndBlanks(t *testing.T) {
	input := "# comment\n\n0 5:2 9:1\n1 3:4\n"
	docs, err := ReadText(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 || docs[0].ID != 0 || docs[1].ID != 1 {
		t.Fatalf("docs = %+v", docs)
	}
	if docs[0].Weight(5) != 2 || docs[0].Weight(9) != 1 || docs[1].Weight(3) != 4 {
		t.Error("weights wrong")
	}
}

func TestReadTextErrors(t *testing.T) {
	for _, bad := range []string{"x 1:2", "0 nope", "0 5:bad", "0 5"} {
		if _, err := ReadText(strings.NewReader(bad)); err == nil {
			t.Errorf("ReadText(%q): want error", bad)
		}
	}
}

func TestBuildFromDocs(t *testing.T) {
	input := "7 5:2\n9 3:1\n"
	docs, err := ReadText(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	d := iosim.NewDisk()
	f, _ := d.Create("c")
	c, err := BuildFromDocs("c", f, docs)
	if err != nil {
		t.Fatal(err)
	}
	// IDs are reassigned densely regardless of the ids in the file.
	if c.NumDocs() != 2 {
		t.Fatalf("N = %d", c.NumDocs())
	}
	d0, err := c.Fetch(0)
	if err != nil {
		t.Fatal(err)
	}
	if d0.Weight(5) != 2 {
		t.Errorf("doc 0 = %+v", d0)
	}
}

func TestGenerateClusteredScattered(t *testing.T) {
	d := iosim.NewDisk()
	p := ClusteredProfile{
		Profile: Profile{Name: "pc", NumDocs: 60, TermsPerDoc: 10, DistinctTerms: 600, ZipfS: 1.3, MaxOccurrences: 3},
		Topics:  4,
		Scatter: true,
	}
	f, _ := d.Create("c")
	c, err := GenerateClustered(p, 5, f)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumDocs() != 60 {
		t.Fatalf("N = %d", c.NumDocs())
	}
	// Scatter: consecutive docs belong to different topics, so their
	// dominant term ranges differ for most adjacent pairs.
	topicOf := func(id uint32) int {
		doc, err := c.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		votes := map[int]int{}
		for _, cell := range doc.Cells {
			votes[int(cell.Term)/150]++
		}
		best, bestN := 0, -1
		for k, n := range votes {
			if n > bestN {
				best, bestN = k, n
			}
		}
		return best
	}
	same := 0
	for id := uint32(1); id < 60; id++ {
		if topicOf(id) == topicOf(id-1) {
			same++
		}
	}
	if same > 20 {
		t.Errorf("scattered storage has %d/59 same-topic neighbors, want few", same)
	}
}

func TestGenerateClusteredContiguous(t *testing.T) {
	d := iosim.NewDisk()
	p := ClusteredProfile{
		Profile: Profile{Name: "pc", NumDocs: 40, TermsPerDoc: 8, DistinctTerms: 400},
		Topics:  4,
		Scatter: false,
	}
	f, _ := d.Create("c")
	c, err := GenerateClustered(p, 5, f)
	if err != nil {
		t.Fatal(err)
	}
	// Contiguous: docs 0-9 are topic 0, 10-19 topic 1, etc. Check the
	// first doc of each block draws most terms from its topic range.
	for block := 0; block < 4; block++ {
		doc, err := c.Fetch(uint32(block * 10))
		if err != nil {
			t.Fatal(err)
		}
		inRange := 0
		lo, hi := uint32(block*100), uint32((block+1)*100)
		for _, cell := range doc.Cells {
			if cell.Term >= lo && cell.Term < hi {
				inRange++
			}
		}
		if inRange*2 < len(doc.Cells) {
			t.Errorf("block %d doc: %d/%d terms in topic range", block, inRange, len(doc.Cells))
		}
	}
}

func TestGenerateClusteredValidation(t *testing.T) {
	d := iosim.NewDisk()
	base := Profile{Name: "pc", NumDocs: 5, TermsPerDoc: 3, DistinctTerms: 50}
	f1, _ := d.Create("a")
	if _, err := GenerateClustered(ClusteredProfile{Profile: base, Topics: 0}, 1, f1); err == nil {
		t.Error("zero topics: want error")
	}
	if _, err := GenerateClustered(ClusteredProfile{Profile: base, Topics: 2, TopicFraction: 2}, 1, f1); err == nil {
		t.Error("fraction > 1: want error")
	}
	bad := base
	bad.TermsPerDoc = 100
	if _, err := GenerateClustered(ClusteredProfile{Profile: bad, Topics: 2}, 1, f1); err == nil {
		t.Error("K > T: want error")
	}
	// More topics than the vocabulary can split still works (width 1).
	f2, _ := d.Create("b")
	tiny := Profile{Name: "tiny", NumDocs: 3, TermsPerDoc: 1, DistinctTerms: 2}
	if _, err := GenerateClustered(ClusteredProfile{Profile: tiny, Topics: 10}, 1, f2); err != nil {
		t.Errorf("narrow topics: %v", err)
	}
}

// Property: generation never produces invalid documents and always matches
// the requested N exactly.
func TestQuickGenerationValid(t *testing.T) {
	check := func(seed int64, nSeed, kSeed, tSeed uint16) bool {
		n := int64(nSeed%80) + 1
		k := float64(kSeed%40) + 1
		vocab := int64(tSeed%3000) + int64(k)*2
		p := Profile{Name: "q", NumDocs: n, TermsPerDoc: k, DistinctTerms: vocab}
		g, err := NewGenerator(p, seed)
		if err != nil {
			return false
		}
		for id := int64(0); id < n; id++ {
			d := g.Document(uint32(id))
			if d.ID != uint32(id) || len(d.Cells) == 0 {
				return false
			}
			if err := d.Validate(); err != nil {
				return false
			}
			for _, c := range d.Cells {
				if int64(c.Term) >= vocab || c.Weight == 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
