// Package corpus generates synthetic document collections that reproduce
// the statistics of the paper's three TREC collections.
//
// The paper's simulation is driven entirely by collection statistics —
// number of documents N, average terms per document K, distinct terms T —
// taken from the ARPA/NIST TREC-1 tapes (WSJ, FR, DOE), which are not
// redistributable. This package substitutes synthetic corpora whose
// *measured* statistics match a target Profile: document lengths are
// jittered around K, term choices follow a Zipf distribution over a
// T-term vocabulary (giving realistic document-frequency skew, which
// drives HVNL's cache policy and the non-zero-similarity fraction δ), and
// occurrence counts follow a small geometric-like distribution.
//
// Profiles can be scaled down for laptop-scale empirical runs
// (Profile.Scaled preserves the vocabulary density K/T that the paper's
// overlap and δ behavior depend on) and transformed the way the paper's
// experiment groups require (Group 5's fewer-but-larger documents).
package corpus

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"textjoin/internal/collection"
	"textjoin/internal/costmodel"
	"textjoin/internal/document"
	"textjoin/internal/iosim"
)

// Profile describes the target statistics of a synthetic collection.
type Profile struct {
	// Name identifies the profile (e.g. "WSJ").
	Name string
	// NumDocs is N, the number of documents.
	NumDocs int64
	// TermsPerDoc is K, the mean number of distinct terms per document.
	TermsPerDoc float64
	// DistinctTerms is T, the vocabulary size.
	DistinctTerms int64
	// ZipfS is the Zipf skew parameter (> 1). Zero selects the default
	// 1.2, a typical text skew.
	ZipfS float64
	// MaxOccurrences bounds the per-term occurrence count. Zero selects
	// the default 6.
	MaxOccurrences int
}

// The paper's statistics table ("collected by ARPA/NIST"):
//
//	            WSJ     FR      DOE
//	#documents  98736   26207   226087
//	terms/doc   329     1017    89
//	#terms      156298  126258  186225
var (
	// WSJ is the Wall Street Journal collection profile.
	WSJ = Profile{Name: "WSJ", NumDocs: 98736, TermsPerDoc: 329, DistinctTerms: 156298}
	// FR is the Federal Register collection profile: fewer but larger
	// documents.
	FR = Profile{Name: "FR", NumDocs: 26207, TermsPerDoc: 1017, DistinctTerms: 126258}
	// DOE is the Department of Energy collection profile: more but
	// smaller documents.
	DOE = Profile{Name: "DOE", NumDocs: 226087, TermsPerDoc: 89, DistinctTerms: 186225}
)

// Profiles returns the three paper profiles in presentation order.
func Profiles() []Profile { return []Profile{WSJ, FR, DOE} }

// ProfileByName finds a paper profile by case-insensitive name.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if strings.EqualFold(p.Name, name) {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("corpus: unknown profile %q (want wsj, fr or doe)", name)
}

// Stats converts the profile to the cost model's collection description.
func (p Profile) Stats() costmodel.Collection {
	return costmodel.Collection{N: p.NumDocs, K: p.TermsPerDoc, T: p.DistinctTerms}
}

// Scaled shrinks the profile by the given divisor for laptop-scale runs:
// N is divided by d, while K and T are divided by √d so that the
// vocabulary density K/T — which governs term overlap and the non-zero
// similarity fraction — is preserved.
func (p Profile) Scaled(divisor int64) Profile {
	if divisor <= 1 {
		return p
	}
	root := math.Sqrt(float64(divisor))
	out := p
	out.Name = fmt.Sprintf("%s/%d", p.Name, divisor)
	out.NumDocs = maxI64(1, p.NumDocs/divisor)
	out.TermsPerDoc = math.Max(2, p.TermsPerDoc/root)
	out.DistinctTerms = maxI64(int64(out.TermsPerDoc)*4, int64(float64(p.DistinctTerms)/root))
	return out
}

// FewerLargerDocs applies the paper's Group 5 transform: divide the number
// of documents by factor and multiply the terms per document by the same
// factor, leaving the collection size (and vocabulary) unchanged —
// "reducing the number of documents in the real collection and increasing
// the number of terms in each document in the real collection by the same
// factor such that the collection size remains unchanged".
func (p Profile) FewerLargerDocs(factor int64) Profile {
	if factor <= 1 {
		return p
	}
	out := p
	out.Name = fmt.Sprintf("%s×%d", p.Name, factor)
	out.NumDocs = maxI64(1, p.NumDocs/factor)
	out.TermsPerDoc = p.TermsPerDoc * float64(factor)
	if out.TermsPerDoc > float64(out.DistinctTerms) {
		out.TermsPerDoc = float64(out.DistinctTerms)
	}
	return out
}

// Small derives an originally small collection with m documents and the
// same per-document shape (the paper's Group 4 setting).
func (p Profile) Small(m int64) Profile {
	out := p
	out.Name = fmt.Sprintf("%s-small%d", p.Name, m)
	out.NumDocs = m
	// The vocabulary reachable by m documents follows the paper's
	// growth formula.
	out.DistinctTerms = maxI64(int64(p.TermsPerDoc),
		int64(collection.VocabularyGrowth(float64(p.DistinctTerms), p.TermsPerDoc, float64(m))))
	return out
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func (p Profile) zipfS() float64 {
	if p.ZipfS > 1 {
		return p.ZipfS
	}
	return 1.2
}

func (p Profile) maxOcc() int {
	if p.MaxOccurrences > 0 {
		return p.MaxOccurrences
	}
	return 6
}

// Generator produces random documents matching a profile. It is
// deterministic for a given seed.
type Generator struct {
	p    Profile
	r    *rand.Rand
	zipf *rand.Zipf
}

// NewGenerator creates a generator for the profile.
func NewGenerator(p Profile, seed int64) (*Generator, error) {
	if p.NumDocs < 0 || p.DistinctTerms < 1 || p.TermsPerDoc < 1 {
		return nil, fmt.Errorf("corpus: degenerate profile %+v", p)
	}
	if p.TermsPerDoc > float64(p.DistinctTerms) {
		return nil, fmt.Errorf("corpus: profile %q has K=%v > T=%d", p.Name, p.TermsPerDoc, p.DistinctTerms)
	}
	r := rand.New(rand.NewSource(seed))
	return &Generator{
		p:    p,
		r:    r,
		zipf: rand.NewZipf(r, p.zipfS(), 1, uint64(p.DistinctTerms-1)),
	}, nil
}

// docLength samples a distinct-term count with mean ≈ K: uniform jitter in
// [K/2, 3K/2).
func (g *Generator) docLength() int {
	k := g.p.TermsPerDoc
	l := int(k * (0.5 + g.r.Float64()))
	if l < 1 {
		l = 1
	}
	if int64(l) > g.p.DistinctTerms {
		l = int(g.p.DistinctTerms)
	}
	return l
}

// Document generates the document with the given id.
func (g *Generator) Document(id uint32) *document.Document {
	length := g.docLength()
	counts := make(map[uint32]int, length)
	// Sample Zipf-distributed distinct terms; if the rejection loop
	// stalls (length close to T), sweep the vocabulary deterministically.
	attempts := 0
	for len(counts) < length && attempts < 20*length {
		term := uint32(g.zipf.Uint64())
		attempts++
		if _, ok := counts[term]; ok {
			continue
		}
		counts[term] = 1 + g.occurrences()
	}
	for term := uint32(0); len(counts) < length && int64(term) < g.p.DistinctTerms; term++ {
		if _, ok := counts[term]; !ok {
			counts[term] = 1 + g.occurrences()
		}
	}
	return document.New(id, counts)
}

// occurrences samples the extra occurrences beyond the first: a geometric
// tail truncated at MaxOccurrences.
func (g *Generator) occurrences() int {
	extra := 0
	for extra < g.p.maxOcc()-1 && g.r.Float64() < 0.4 {
		extra++
	}
	return extra
}

// Generate builds a full collection matching the profile into the given
// empty file.
func Generate(p Profile, seed int64, file *iosim.File) (*collection.Collection, error) {
	g, err := NewGenerator(p, seed)
	if err != nil {
		return nil, err
	}
	b, err := collection.NewBuilder(p.Name, file)
	if err != nil {
		return nil, err
	}
	for id := int64(0); id < p.NumDocs; id++ {
		if err := b.Add(g.Document(uint32(id))); err != nil {
			return nil, err
		}
	}
	return b.Finish()
}

// ClusteredProfile configures planted-topic corpus generation for
// experiments on clustered collections (the paper's remark that HVNL
// benefits when close documents share many terms).
type ClusteredProfile struct {
	Profile
	// Topics is the number of planted clusters. The vocabulary is split
	// into Topics contiguous ranges; each document draws TopicFraction
	// of its terms from its own topic's range and the rest globally.
	Topics int
	// TopicFraction is the fraction of a document's terms drawn from
	// its topic (default 0.8).
	TopicFraction float64
	// Scatter controls the storage order of cluster members: true
	// assigns documents to topics round-robin (cluster members are
	// scattered through the file), false stores each cluster
	// contiguously.
	Scatter bool
}

// GenerateClustered builds a collection with planted topic clusters into
// the given empty file. Document i belongs to topic i%Topics (Scatter) or
// topic i/(N/Topics) (contiguous).
func GenerateClustered(p ClusteredProfile, seed int64, file *iosim.File) (*collection.Collection, error) {
	if p.Topics <= 0 {
		return nil, fmt.Errorf("corpus: clustered profile needs at least one topic")
	}
	frac := p.TopicFraction
	if frac == 0 {
		frac = 0.8
	}
	if frac < 0 || frac > 1 {
		return nil, fmt.Errorf("corpus: topic fraction %v out of [0,1]", frac)
	}
	g, err := NewGenerator(p.Profile, seed)
	if err != nil {
		return nil, err
	}
	b, err := collection.NewBuilder(p.Name, file)
	if err != nil {
		return nil, err
	}
	topicWidth := p.DistinctTerms / int64(p.Topics)
	if topicWidth < 1 {
		topicWidth = 1
	}
	perTopic := (p.NumDocs + int64(p.Topics) - 1) / int64(p.Topics)
	for id := int64(0); id < p.NumDocs; id++ {
		topic := id % int64(p.Topics)
		if !p.Scatter {
			topic = id / perTopic
			if topic >= int64(p.Topics) {
				topic = int64(p.Topics) - 1
			}
		}
		length := g.docLength()
		counts := make(map[uint32]int, length)
		lo := topic * topicWidth
		for len(counts) < length {
			var term uint32
			if g.r.Float64() < frac {
				term = uint32(lo + g.r.Int63n(topicWidth))
			} else {
				term = uint32(g.zipf.Uint64())
			}
			if _, ok := counts[term]; ok {
				continue
			}
			counts[term] = 1 + g.occurrences()
		}
		if err := b.Add(document.New(uint32(id), counts)); err != nil {
			return nil, err
		}
	}
	return b.Finish()
}

// GenerateOn is a convenience that creates the file on the disk and
// generates the collection.
func GenerateOn(d *iosim.Disk, fileName string, p Profile, seed int64) (*collection.Collection, error) {
	f, err := d.Create(fileName)
	if err != nil {
		return nil, err
	}
	return Generate(p, seed, f)
}

// WriteText serializes documents in the portable text format used by
// cmd/corpusgen: one document per line,
//
//	<docID> <term>:<occurrences> <term>:<occurrences> ...
func WriteText(w io.Writer, docs []*document.Document) error {
	bw := bufio.NewWriter(w)
	for _, d := range docs {
		if _, err := fmt.Fprintf(bw, "%d", d.ID); err != nil {
			return err
		}
		for _, c := range d.Cells {
			if _, err := fmt.Fprintf(bw, " %d:%d", c.Term, c.Weight); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses the portable text format back into documents.
func ReadText(r io.Reader) ([]*document.Document, error) {
	var docs []*document.Document
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		id, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("corpus: line %d: bad doc id %q: %v", lineNo, fields[0], err)
		}
		counts := make(map[uint32]int, len(fields)-1)
		for _, f := range fields[1:] {
			term, occ, ok := strings.Cut(f, ":")
			if !ok {
				return nil, fmt.Errorf("corpus: line %d: bad cell %q", lineNo, f)
			}
			tn, err := strconv.ParseUint(term, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("corpus: line %d: bad term %q: %v", lineNo, term, err)
			}
			on, err := strconv.ParseUint(occ, 10, 16)
			if err != nil {
				return nil, fmt.Errorf("corpus: line %d: bad occurrence count %q: %v", lineNo, occ, err)
			}
			counts[uint32(tn)] += int(on)
		}
		docs = append(docs, document.New(uint32(id), counts))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return docs, nil
}

// BuildFromDocs loads pre-built documents (e.g. parsed from the text
// format) into a new collection; ids are reassigned densely in slice
// order.
func BuildFromDocs(name string, file *iosim.File, docs []*document.Document) (*collection.Collection, error) {
	b, err := collection.NewBuilder(name, file)
	if err != nil {
		return nil, err
	}
	for i, d := range docs {
		nd := &document.Document{ID: uint32(i), Cells: d.Cells}
		if err := b.Add(nd); err != nil {
			return nil, err
		}
	}
	return b.Finish()
}
