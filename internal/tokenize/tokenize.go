// Package tokenize converts raw text into the term vectors the join
// algorithms consume, so that the examples can ingest realistic documents
// (résumés, job descriptions, abstracts).
//
// The pipeline is the standard IR front end the paper's vector
// representation assumes: lowercase, split on non-alphanumeric runs, drop
// stopwords and very short tokens, apply a light suffix-stripping stemmer,
// and count occurrences. Term numbers come from a shared termmap
// Dictionary — the paper's standard term-number mapping — so that
// documents tokenized for different collections agree on numbering.
package tokenize

import (
	"strings"
	"unicode"

	"textjoin/internal/document"
	"textjoin/internal/termmap"
)

// DefaultStopwords is a compact English stopword list sufficient for the
// examples.
var DefaultStopwords = []string{
	"a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "from",
	"has", "have", "he", "her", "his", "i", "in", "is", "it", "its", "of",
	"on", "or", "our", "she", "that", "the", "their", "they", "this", "to",
	"was", "we", "were", "will", "with", "you", "your",
}

// Options configures a Tokenizer.
type Options struct {
	// MinLength drops tokens shorter than this many runes (default 2).
	MinLength int
	// Stopwords overrides the default stopword list; an empty non-nil
	// slice disables stopword removal.
	Stopwords []string
	// DisableStemming turns the light stemmer off.
	DisableStemming bool
}

// Tokenizer turns text into documents using a shared dictionary.
type Tokenizer struct {
	dict      *termmap.Dictionary
	stopwords map[string]bool
	minLen    int
	stem      bool
}

// New creates a tokenizer over the given standard dictionary.
func New(dict *termmap.Dictionary, opts Options) *Tokenizer {
	words := opts.Stopwords
	if words == nil {
		words = DefaultStopwords
	}
	stop := make(map[string]bool, len(words))
	for _, w := range words {
		stop[w] = true
	}
	minLen := opts.MinLength
	if minLen == 0 {
		minLen = 2
	}
	return &Tokenizer{dict: dict, stopwords: stop, minLen: minLen, stem: !opts.DisableStemming}
}

// Dictionary returns the shared dictionary.
func (t *Tokenizer) Dictionary() *termmap.Dictionary { return t.dict }

// Terms splits text into normalized term strings (after stopword removal
// and stemming), preserving occurrence multiplicity.
func (t *Tokenizer) Terms(text string) []string {
	fields := strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
	out := fields[:0]
	for _, f := range fields {
		if len([]rune(f)) < t.minLen || t.stopwords[f] {
			continue
		}
		if t.stem {
			f = Stem(f)
		}
		if len([]rune(f)) < t.minLen {
			continue
		}
		out = append(out, f)
	}
	return out
}

// Document tokenizes text into a term vector with the given document id,
// interning new terms into the dictionary.
func (t *Tokenizer) Document(id uint32, text string) (*document.Document, error) {
	counts := make(map[uint32]int)
	for _, term := range t.Terms(text) {
		n, err := t.dict.Intern(term)
		if err != nil {
			return nil, err
		}
		counts[n]++
	}
	return document.New(id, counts), nil
}

// Stem applies a light suffix-stripping stemmer (a small subset of
// Porter's rules — enough to conflate inflectional variants in the
// examples without a full stemming dependency).
func Stem(w string) string {
	n := len(w)
	switch {
	case n > 6 && strings.HasSuffix(w, "ational"):
		return w[:n-7] + "ate"
	case n > 5 && strings.HasSuffix(w, "ization"):
		return w[:n-7] + "ize"
	case n > 4 && strings.HasSuffix(w, "iness"):
		return w[:n-5] + "y"
	case n > 4 && strings.HasSuffix(w, "ement"):
		return w[:n-5]
	case n > 4 && strings.HasSuffix(w, "ing") && hasVowel(w[:n-3]):
		return undouble(w[:n-3])
	case n > 3 && strings.HasSuffix(w, "ies"):
		return w[:n-3] + "y"
	case n > 3 && strings.HasSuffix(w, "ed") && hasVowel(w[:n-2]):
		return undouble(w[:n-2])
	case n > 2 && strings.HasSuffix(w, "s") && !strings.HasSuffix(w, "ss"):
		return w[:n-1]
	default:
		return w
	}
}

func hasVowel(s string) bool {
	return strings.ContainsAny(s, "aeiouy")
}

// undouble collapses a trailing doubled consonant left by suffix
// stripping ("stopp" → "stop").
func undouble(s string) string {
	n := len(s)
	if n >= 2 && s[n-1] == s[n-2] && !strings.ContainsRune("aeiou", rune(s[n-1])) && s[n-1] != 'l' && s[n-1] != 's' {
		return s[:n-1]
	}
	return s
}
