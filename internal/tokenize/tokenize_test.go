package tokenize

import (
	"testing"
	"testing/quick"

	"textjoin/internal/termmap"
)

func newTok() *Tokenizer {
	return New(termmap.NewDictionary(), Options{})
}

func TestTermsBasic(t *testing.T) {
	tok := newTok()
	terms := tok.Terms("The quick brown fox, jumping over the lazy dog!")
	want := []string{"quick", "brown", "fox", "jump", "over", "lazy", "dog"}
	if len(terms) != len(want) {
		t.Fatalf("terms = %v, want %v", terms, want)
	}
	for i := range want {
		if terms[i] != want[i] {
			t.Errorf("term %d = %q, want %q", i, terms[i], want[i])
		}
	}
}

func TestStopwordsAndShortTokens(t *testing.T) {
	tok := newTok()
	terms := tok.Terms("a I to x of databases")
	if len(terms) != 1 || terms[0] != "database" {
		t.Errorf("terms = %v, want [database]", terms)
	}
}

func TestCustomStopwords(t *testing.T) {
	tok := New(termmap.NewDictionary(), Options{Stopwords: []string{"fox"}})
	terms := tok.Terms("the fox runs")
	// "the" is no longer a stopword, "fox" is.
	if len(terms) != 2 || terms[0] != "the" || terms[1] != "run" {
		t.Errorf("terms = %v", terms)
	}
	none := New(termmap.NewDictionary(), Options{Stopwords: []string{}})
	if got := none.Terms("the cat"); len(got) != 2 {
		t.Errorf("empty stopword list: %v", got)
	}
}

func TestDisableStemming(t *testing.T) {
	tok := New(termmap.NewDictionary(), Options{DisableStemming: true})
	terms := tok.Terms("running databases")
	if terms[0] != "running" || terms[1] != "databases" {
		t.Errorf("terms = %v", terms)
	}
}

func TestStemExamples(t *testing.T) {
	cases := map[string]string{
		"running":      "run",
		"stopped":      "stop",
		"databases":    "database",
		"queries":      "query",
		"relational":   "relate",
		"organization": "organize",
		"happiness":    "happy",
		"management":   "manag",
		"engineers":    "engineer",
		"pass":         "pass",
		"falling":      "fall",
		"go":           "go",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestDocumentCountsOccurrences(t *testing.T) {
	tok := newTok()
	doc, err := tok.Document(3, "join join join query")
	if err != nil {
		t.Fatal(err)
	}
	if doc.ID != 3 || len(doc.Cells) != 2 {
		t.Fatalf("doc = %+v", doc)
	}
	j, _ := tok.Dictionary().Lookup("join")
	if doc.Weight(j) != 3 {
		t.Errorf("join weight = %d, want 3", doc.Weight(j))
	}
}

func TestSharedDictionaryAcrossDocuments(t *testing.T) {
	tok := newTok()
	d1, _ := tok.Document(0, "database systems")
	d2, _ := tok.Document(1, "database engineering")
	n, ok := tok.Dictionary().Lookup("database")
	if !ok {
		t.Fatal("database not interned")
	}
	if d1.Weight(n) != 1 || d2.Weight(n) != 1 {
		t.Error("shared term has different numbers across documents")
	}
}

func TestUnicodeSplitting(t *testing.T) {
	tok := newTok()
	terms := tok.Terms("naïve café-style 'reading'")
	if len(terms) != 4 {
		t.Errorf("terms = %v", terms)
	}
}

// Property: tokenization is deterministic and every produced document
// validates.
func TestQuickTokenizeValid(t *testing.T) {
	tok := newTok()
	check := func(text string, id uint32) bool {
		id %= 1 << 24 // document numbers are 3 bytes on disk
		d1, err1 := tok.Document(id, text)
		d2, err2 := tok.Document(id, text)
		if err1 != nil || err2 != nil {
			return false
		}
		if d1.Validate() != nil || len(d1.Cells) != len(d2.Cells) {
			return false
		}
		for i := range d1.Cells {
			if d1.Cells[i] != d2.Cells[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
