package core

import (
	"fmt"
	"io"
	"sync"

	"textjoin/internal/costmodel"
	"textjoin/internal/document"
	"textjoin/internal/lsh"
	"textjoin/internal/telemetry"
	"textjoin/internal/topk"
)

// JoinLSH evaluates the join approximately with MinHash/banding
// buckets: resident outer batches are filled exactly as in HHNL (same
// memory policy, same batch boundaries), but instead of scanning the
// whole inner collection per batch, each resident outer document's band
// keys probe the inner sidecar's buckets, and only the inner documents
// that share at least one bucket with some resident outer document are
// read — via the same filtered scan the signature prefilter uses, so
// pages with no candidates are never read.
//
// Every candidate pair is verified with the exact scorer before it may
// enter a λ-tracker, so precision is perfect: any returned (outer,
// inner, sim) triple is byte-identical to what the exact joins compute
// for that pair. What LSH trades away is recall — a truly similar pair
// whose band keys never collide is missed. The expected recall for a
// pair of Jaccard similarity s is 1 − (1 − s^r)^b (lsh.EstimateRecall),
// which the cost model exposes to the integrated planner.
//
// Options.LSH must hold the sidecar built over Inputs.Inner's current
// layout. Options.Prefilter is ignored: bucket candidate generation
// subsumes the signature skip.
func JoinLSH(in Inputs, opts Options) ([]Result, *Stats, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, nil, err
	}
	if in.Outer == nil || in.Inner == nil {
		return nil, nil, fmt.Errorf("%w: LSH needs both document collections", ErrMissingInput)
	}
	sc, err := activeLSH(in, opts)
	if err != nil {
		return nil, nil, err
	}
	scorer, err := in.scorer(opts)
	if err != nil {
		return nil, nil, err
	}
	stats := &Stats{Algorithm: LSH, InnerDocs: in.Inner.NumDocs()}
	stats.LSH.Enabled = true
	budget, slotBytes, err := hhnlBatchBytes(in, opts)
	if err != nil {
		return nil, nil, err
	}
	track := trackIO(in.Outer.File(), in.Inner.File())
	tel, trace := opts.Telemetry, opts.Trace
	gen := newLSHCandidates(sc, in)

	var results []Result
	outer := in.Outer.Documents()
	var pending *document.Document
	done := false
	for !done {
		fill := startPhase(tel, trace, telemetry.PhaseScan, "lsh.fill-batch")
		var batch []*document.Document
		var used int64
		for {
			var d *document.Document
			if pending != nil {
				d, pending = pending, nil
			} else {
				var err error
				d, err = outer.Next()
				if err == io.EOF {
					done = true
					break
				}
				if err != nil {
					fill.End()
					return nil, nil, err
				}
			}
			cost := d.EncodedSize() + slotBytes
			if used+cost > budget && len(batch) > 0 {
				pending = d
				break
			}
			if used+cost > budget {
				fill.End()
				return nil, nil, fmt.Errorf("%w: outer document %d (%d bytes) exceeds the batch budget %d",
					ErrInsufficientMemory, d.ID, cost, budget)
			}
			batch = append(batch, d)
			used += cost
		}
		fill.End()
		if len(batch) == 0 {
			break
		}
		stats.Passes++
		stats.OuterDocs += int64(len(batch))
		if used > stats.PeakMemoryBytes {
			stats.PeakMemoryBytes = used
		}

		trackers := make([]*topk.TopK, len(batch))
		for i := range trackers {
			trackers[i] = topk.New(opts.Lambda)
		}
		// Probe the buckets with every resident outer document's band
		// keys, building the per-inner-document candidate lists and the
		// keep vector for the filtered verify scan.
		cand := startPhase(tel, trace, telemetry.PhaseScan, "lsh.candidates")
		err := gen.generate(batch, stats)
		cand.End()
		if err != nil {
			return nil, nil, err
		}

		// Verify: read only candidate inner documents, score each
		// against exactly the resident outer documents it collided
		// with. One document consumed at a time, so the reuse arena
		// applies.
		score := startPhase(tel, trace, telemetry.PhaseScore, "lsh.verify-scan")
		next := in.Inner.ScanFiltered(gen.keepFunc()).NextReuse
		for {
			d1, err := next()
			if err == io.EOF {
				break
			}
			if err != nil {
				score.End()
				return nil, nil, err
			}
			for _, i := range gen.lists[d1.ID] {
				sim := scorer.Score(batch[i], d1)
				stats.Comparisons++
				trackers[i].Offer(d1.ID, sim)
			}
		}
		score.End()
		flush := startPhase(tel, trace, telemetry.PhaseFlush, "lsh.flush-batch")
		for i, d2 := range batch {
			results = append(results, Result{Outer: d2.ID, Matches: trackers[i].Results()})
		}
		flush.End()
	}
	stats.IO = track.delta()
	stats.Cost = stats.IO.Cost(alpha(in.Inner.File()))
	recordJoinStats(tel, stats)
	return results, stats, nil
}

// JoinLSHParallel is JoinLSH with the candidate verification fanned out
// over workers, following the HHNL-parallel discipline: batch fill,
// bucket probing and the filtered inner scan all stay on the
// coordinator (same I/O, same candidates, same skip counters as
// serial); chunks of scanned candidate documents go to a worker pool,
// each worker scoring them against its candidates' resident outer
// documents into its own trackers, merged per batch. Results and Stats
// are byte-identical to the serial join.
func JoinLSHParallel(in Inputs, opts Options, workers int) ([]Result, *Stats, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, nil, err
	}
	if in.Outer == nil || in.Inner == nil {
		return nil, nil, fmt.Errorf("%w: LSH needs both document collections", ErrMissingInput)
	}
	sc, err := activeLSH(in, opts)
	if err != nil {
		return nil, nil, err
	}
	scorer, err := in.scorer(opts)
	if err != nil {
		return nil, nil, err
	}
	nWorkers := resolveWorkers(workers)
	stats := &Stats{Algorithm: LSH, InnerDocs: in.Inner.NumDocs()}
	stats.LSH.Enabled = true
	budget, slotBytes, err := hhnlBatchBytes(in, opts)
	if err != nil {
		return nil, nil, err
	}
	track := trackIO(in.Outer.File(), in.Inner.File())
	tel, trace := opts.Telemetry, opts.Trace
	gen := newLSHCandidates(sc, in)

	const chunkSize = 64
	chunkPool := sync.Pool{New: func() any {
		s := make([]*document.Document, 0, chunkSize)
		return &s
	}}

	var results []Result
	outer := in.Outer.Documents()
	var pending *document.Document
	done := false
	for !done {
		fill := startPhase(tel, trace, telemetry.PhaseScan, "lshp.fill-batch")
		var batch []*document.Document
		var used int64
		for {
			var d *document.Document
			if pending != nil {
				d, pending = pending, nil
			} else {
				var err error
				d, err = outer.Next()
				if err == io.EOF {
					done = true
					break
				}
				if err != nil {
					fill.End()
					return nil, nil, err
				}
			}
			cost := d.EncodedSize() + slotBytes
			if used+cost > budget && len(batch) > 0 {
				pending = d
				break
			}
			if used+cost > budget {
				fill.End()
				return nil, nil, fmt.Errorf("%w: outer document %d (%d bytes) exceeds the batch budget %d",
					ErrInsufficientMemory, d.ID, cost, budget)
			}
			batch = append(batch, d)
			used += cost
		}
		fill.End()
		if len(batch) == 0 {
			break
		}
		stats.Passes++
		stats.OuterDocs += int64(len(batch))
		if used > stats.PeakMemoryBytes {
			stats.PeakMemoryBytes = used
		}

		// Candidate generation on the coordinator, before any worker
		// starts: the lists and keep vector are read-only afterwards.
		cand := startPhase(tel, trace, telemetry.PhaseScan, "lshp.candidates")
		err := gen.generate(batch, stats)
		cand.End()
		if err != nil {
			return nil, nil, err
		}

		workerTrackers := make([][]*topk.TopK, nWorkers)
		for w := range workerTrackers {
			ts := make([]*topk.TopK, len(batch))
			for i := range ts {
				ts[i] = topk.New(opts.Lambda)
			}
			workerTrackers[w] = ts
		}
		compCounts := make([]int64, nWorkers)

		chunks := make(chan *[]*document.Document, nWorkers)
		var wg sync.WaitGroup
		for w := 0; w < nWorkers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ts := workerTrackers[w]
				var count int64
				for chunk := range chunks {
					for _, d1 := range *chunk {
						for _, i := range gen.lists[d1.ID] {
							sim := scorer.Score(batch[i], d1)
							count++
							ts[i].Offer(d1.ID, sim)
						}
					}
					*chunk = (*chunk)[:0]
					chunkPool.Put(chunk)
				}
				compCounts[w] = count
			}(w)
		}

		// Single-threaded filtered scan; cloned documents because they
		// outlive the scan step inside worker chunks.
		score := startPhase(tel, trace, telemetry.PhaseScore, "lshp.verify-scan")
		next := in.Inner.ScanFiltered(gen.keepFunc()).Next
		var scanErr error
		chunk := chunkPool.Get().(*[]*document.Document)
		for {
			d1, err := next()
			if err == io.EOF {
				break
			}
			if err != nil {
				scanErr = err
				break
			}
			*chunk = append(*chunk, d1)
			if len(*chunk) == chunkSize {
				chunks <- chunk
				chunk = chunkPool.Get().(*[]*document.Document)
			}
		}
		if len(*chunk) > 0 && scanErr == nil {
			chunks <- chunk
		}
		close(chunks)
		wg.Wait()
		score.End()
		if scanErr != nil {
			return nil, nil, scanErr
		}

		merge := startPhase(tel, trace, telemetry.PhaseMerge, "lshp.merge-trackers")
		for i, d2 := range batch {
			merged := topk.New(opts.Lambda)
			for w := 0; w < nWorkers; w++ {
				for _, m := range workerTrackers[w][i].Results() {
					merged.Offer(m.Doc, m.Sim)
				}
			}
			results = append(results, Result{Outer: d2.ID, Matches: merged.Results()})
		}
		merge.End()
		for w, c := range compCounts {
			stats.Comparisons += c
			if tel != nil {
				tel.Counter(fmt.Sprintf("join.lsh.worker.%d.comparisons", w)).Add(c)
			}
		}
	}
	stats.IO = track.delta()
	stats.Cost = stats.IO.Cost(alpha(in.Inner.File()))
	recordJoinStats(tel, stats)
	return results, stats, nil
}

// activeLSH validates Options.LSH against the inputs. A sidecar that
// does not match its collection is an error: band keys computed over a
// different layout would bucket the wrong documents.
func activeLSH(in Inputs, opts Options) (*lsh.Sidecar, error) {
	sc := opts.LSH
	if sc == nil {
		return nil, fmt.Errorf("%w: LSH needs the inner MinHash sidecar", ErrMissingInput)
	}
	if in.Inner != nil && int64(sc.NumDocs()) != in.Inner.NumDocs() {
		return nil, fmt.Errorf("core: LSH sidecar covers %d docs, collection has %d — rebuild the sidecar",
			sc.NumDocs(), in.Inner.NumDocs())
	}
	return sc, nil
}

// lshCandidates owns the per-batch candidate state, reused across
// batches: for each inner document, the batch indices of the resident
// outer documents it must be verified against, plus the keep vector the
// filtered scan consumes.
type lshCandidates struct {
	sc    *lsh.Sidecar
	in    Inputs
	lists [][]int32 // inner id → batch indices, ascending
	keep  []bool
	stamp []int // inner id → last outer probe that added it
	probe int
	keys  []uint64
}

func newLSHCandidates(sc *lsh.Sidecar, in Inputs) *lshCandidates {
	n := int(in.Inner.NumDocs())
	g := &lshCandidates{
		sc:    sc,
		in:    in,
		lists: make([][]int32, n),
		keep:  make([]bool, n),
		stamp: make([]int, n),
	}
	for i := range g.stamp {
		g.stamp[i] = -1
	}
	return g
}

// generate probes the buckets with every batch document's band keys.
// Each (outer, inner) pair appends exactly once (bands are deduplicated
// with a stamp per outer probe), in ascending batch order within each
// inner list, so the verify order — and with it every tracker's Offer
// order — is deterministic. Skip counters accrue into st.
func (g *lshCandidates) generate(batch []*document.Document, st *Stats) error {
	cfg := g.sc.Config()
	for id := range g.lists {
		g.lists[id] = g.lists[id][:0]
		g.keep[id] = false
	}
	for i, d2 := range batch {
		g.keys = cfg.Keys(d2, g.keys)
		g.probe++
		for b, key := range g.keys {
			st.LSH.BucketProbes++
			for _, id := range g.sc.Bucket(b, key) {
				if g.stamp[id] != g.probe {
					g.stamp[id] = g.probe
					g.lists[id] = append(g.lists[id], int32(i))
					g.keep[id] = true
					st.LSH.Candidates++
				}
			}
		}
	}
	kept := 0
	for _, k := range g.keep {
		if k {
			kept++
		}
	}
	st.LSH.DocsSkipped += int64(len(g.keep) - kept)
	touched, err := touchedPages(g.in.Inner, g.keep)
	if err != nil {
		return err
	}
	st.LSH.PagesSkipped += g.in.Inner.File().Pages() - touched
	return nil
}

func (g *lshCandidates) keepFunc() func(id uint32) bool {
	keep := g.keep
	return func(id uint32) bool { return keep[id] }
}

// measureLSH probes the sidecar's resident bucket tables for the
// planner: candidate volume and scan-run counts feed the cost formula,
// the banding shape feeds the recall curve. CPU-only and deterministic.
func measureLSH(sc *lsh.Sidecar) costmodel.LSH {
	candFrac, runs := sc.SelfProbe()
	cfg := sc.Config()
	return costmodel.LSH{
		SidecarPages:  float64(sc.Pages()),
		CandidateFrac: candFrac,
		ScanRuns:      runs,
		Bands:         cfg.Bands,
		Rows:          cfg.Rows,
	}
}
