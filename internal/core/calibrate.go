package core

import (
	"fmt"
	"strings"

	"textjoin/internal/costmodel"
	"textjoin/internal/telemetry"
)

// PlanSamples replays the integrated planner's plan-phase trace events
// of a telemetry snapshot into cost-model calibration samples. Every
// JoinIntegrated call leaves "estimate.<alg>.seq" events for all three
// algorithms followed by one "measured.<alg>.cost" event for the
// algorithm it ran; each measured event pairs with the latest preceding
// estimate of the same algorithm to form one estimated-vs-measured
// sample. Estimates without a later measurement (the algorithms the
// planner rejected) produce no sample — their cost was never observed.
//
// Labels are "plan-<n>" in measurement order, unique within one
// snapshot; callers auditing a whole grid prefix them per cell. Events
// from a ring that overwrote its estimates (trace_dropped > 0 on a busy
// collector) simply skip the orphaned measurements.
func PlanSamples(s *telemetry.Snapshot) []costmodel.Sample {
	if s == nil {
		return nil
	}
	latestEst := make(map[string]float64)
	var out []costmodel.Sample
	for _, e := range s.Trace {
		if e.Kind != telemetry.KindEvent || e.Phase != telemetry.PhasePlan {
			continue
		}
		switch {
		case strings.HasPrefix(e.Name, "estimate.") && strings.HasSuffix(e.Name, ".seq"):
			alg := strings.TrimSuffix(strings.TrimPrefix(e.Name, "estimate."), ".seq")
			latestEst[alg] = float64(e.Value)
		case strings.HasPrefix(e.Name, "measured.") && strings.HasSuffix(e.Name, ".cost"):
			alg := strings.TrimSuffix(strings.TrimPrefix(e.Name, "measured."), ".cost")
			est, ok := latestEst[alg]
			if !ok {
				continue
			}
			a, err := ParseAlgorithm(alg)
			if err != nil {
				continue
			}
			out = append(out, costmodel.Sample{
				Label:     fmt.Sprintf("plan-%d", len(out)),
				Algorithm: modelAlg(a),
				Estimated: est,
				Measured:  float64(e.Value),
			})
		}
	}
	return out
}

// modelAlg converts a core algorithm id to its costmodel counterpart.
func modelAlg(a Algorithm) costmodel.Algorithm {
	switch a {
	case HVNL:
		return costmodel.AlgHVNL
	case VVM:
		return costmodel.AlgVVM
	case LSH:
		return costmodel.AlgLSH
	default:
		return costmodel.AlgHHNL
	}
}
