package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"textjoin/internal/iosim"
)

func TestParallelHHNLMatchesSerial(t *testing.T) {
	e := buildEnv(t, 41, 40, 35, 60, 14, 256)
	opts := Options{Lambda: 5, MemoryPages: 60}
	serial, serialStats, err := JoinHHNL(e.inputs(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 7} {
		par, parStats, err := JoinHHNLParallel(e.inputs(), opts, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := sameResults(serial, par); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if parStats.Comparisons != serialStats.Comparisons {
			t.Errorf("workers=%d: comparisons %d vs serial %d", workers, parStats.Comparisons, serialStats.Comparisons)
		}
		// I/O is identical: the scan stays single-threaded.
		if parStats.IO.Reads() != serialStats.IO.Reads() {
			t.Errorf("workers=%d: reads %d vs serial %d", workers, parStats.IO.Reads(), serialStats.IO.Reads())
		}
	}
}

func TestParallelHHNLRejectsBackward(t *testing.T) {
	e := buildEnv(t, 42, 5, 5, 20, 8, 256)
	_, _, err := JoinHHNLParallel(e.inputs(), Options{Backward: true, MemoryPages: 50}, 2)
	if err == nil {
		t.Error("backward parallel: want error")
	}
}

func TestParallelVVMMatchesSerial(t *testing.T) {
	e := buildEnv(t, 43, 40, 35, 60, 14, 128)
	for _, opts := range []Options{
		{Lambda: 5, MemoryPages: 1000},          // single pass
		{Lambda: 5, MemoryPages: 8, Delta: 1.0}, // many passes
	} {
		serial, serialStats, err := JoinVVM(e.inputs(), opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 3, 8} {
			par, parStats, err := JoinVVMParallel(e.inputs(), opts, workers)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if err := sameResults(serial, par); err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if parStats.Passes != serialStats.Passes {
				t.Errorf("workers=%d: passes %d vs %d", workers, parStats.Passes, serialStats.Passes)
			}
			if parStats.Accumulations != serialStats.Accumulations {
				t.Errorf("workers=%d: accumulations %d vs %d", workers, parStats.Accumulations, serialStats.Accumulations)
			}
			if parStats.IO.Reads() != serialStats.IO.Reads() {
				t.Errorf("workers=%d: reads %d vs %d", workers, parStats.IO.Reads(), serialStats.IO.Reads())
			}
		}
	}
}

func TestParallelVVMSubset(t *testing.T) {
	e := buildEnv(t, 44, 30, 30, 50, 12, 256)
	sub, err := e.c2.Subset([]uint32{2, 9, 14, 15, 28})
	if err != nil {
		t.Fatal(err)
	}
	in := Inputs{Outer: sub, Inner: e.c1, InnerInv: e.inv1, OuterInv: e.inv2}
	opts := Options{Lambda: 3, MemoryPages: 500}
	serial, _, err := JoinVVM(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := JoinVVMParallel(in, opts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameResults(serial, par); err != nil {
		t.Fatal(err)
	}
}

func TestParallelMissingInputs(t *testing.T) {
	e := buildEnv(t, 45, 5, 5, 20, 8, 256)
	if _, _, err := JoinHHNLParallel(Inputs{Outer: e.c2}, Options{}, 2); !errors.Is(err, ErrMissingInput) {
		t.Errorf("HHNL err = %v", err)
	}
	if _, _, err := JoinVVMParallel(Inputs{Outer: e.c2, Inner: e.c1}, Options{}, 2); !errors.Is(err, ErrMissingInput) {
		t.Errorf("VVM err = %v", err)
	}
}

func TestParallelPropagatesFaults(t *testing.T) {
	e := buildEnv(t, 46, 20, 20, 40, 10, 128)
	e.disk.InjectFaults(iosim.FaultPlan{FailAfterReads: 8, Repeat: true})
	if _, _, err := JoinHHNLParallel(e.inputs(), Options{Lambda: 3, MemoryPages: 100}, 3); !errors.Is(err, iosim.ErrInjected) {
		t.Errorf("parallel HHNL err = %v, want ErrInjected", err)
	}
	e.disk.InjectFaults(iosim.FaultPlan{})
	e.disk.InjectFaults(iosim.FaultPlan{FailFile: "c2.inv", FailAfterReads: 1, Repeat: true})
	if _, _, err := JoinVVMParallel(e.inputs(), Options{Lambda: 3, MemoryPages: 100}, 3); !errors.Is(err, iosim.ErrInjected) {
		t.Errorf("parallel VVM err = %v, want ErrInjected", err)
	}
}

func TestResolveWorkers(t *testing.T) {
	if resolveWorkers(0) < 1 {
		t.Error("resolveWorkers(0) < 1")
	}
	if resolveWorkers(-3) < 1 {
		t.Error("resolveWorkers(-3) < 1")
	}
	if resolveWorkers(5) != 5 {
		t.Error("resolveWorkers(5) != 5")
	}
}

// Property: parallel and serial results agree for random corpora, worker
// counts and memory budgets.
func TestQuickParallelEqualsSerial(t *testing.T) {
	check := func(seed int64, workerSeed uint8) bool {
		r := rand.New(rand.NewSource(seed))
		workers := int(workerSeed%6) + 1
		d := iosim.NewDisk(iosim.WithPageSize(128))
		c1 := buildColl(t, d, "c1", randomDocs(r, r.Intn(20)+1, 40, 10))
		c2 := buildColl(t, d, "c2", randomDocs(r, r.Intn(20)+1, 40, 10))
		inv1 := buildInv(t, d, c1, "c1")
		inv2 := buildInv(t, d, c2, "c2")
		in := Inputs{Outer: c2, Inner: c1, InnerInv: inv1, OuterInv: inv2}
		opts := Options{Lambda: r.Intn(5) + 1, MemoryPages: int64(r.Intn(100) + 8)}

		sh, _, err1 := JoinHHNL(in, opts)
		ph, _, err2 := JoinHHNLParallel(in, opts, workers)
		if err1 != nil || err2 != nil {
			return errors.Is(err1, ErrInsufficientMemory) && errors.Is(err2, ErrInsufficientMemory)
		}
		if sameResults(sh, ph) != nil {
			return false
		}
		sv, _, err3 := JoinVVM(in, opts)
		pv, _, err4 := JoinVVMParallel(in, opts, workers)
		if err3 != nil || err4 != nil {
			return errors.Is(err3, ErrInsufficientMemory) && errors.Is(err4, ErrInsufficientMemory)
		}
		return sameResults(sv, pv) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
