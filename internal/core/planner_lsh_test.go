package core

import (
	"math"
	"math/rand"
	"testing"

	"textjoin/internal/costmodel"
	"textjoin/internal/document"
	"textjoin/internal/iosim"
	"textjoin/internal/lsh"
)

// buildEnvLSH attaches a MinHash sidecar to a standard test environment,
// re-zeroing the disk stats afterwards.
func buildEnvLSH(tb testing.TB, e *env, cfg lsh.Config) *lsh.Sidecar {
	tb.Helper()
	f, err := e.disk.Create("c1.lsh")
	if err != nil {
		tb.Fatal(err)
	}
	sc, err := lsh.Build(e.c1, f, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	e.disk.ResetStats()
	return sc
}

// TestPlannerRecallSLOContract is the property test pinning the
// planner's recall contract across seeds, memory budgets and the whole
// SLO range:
//
//   - SLO 0 (unset) and SLO 1 never choose LSH — approximation is an
//     explicit opt-in, and no banding shape promises recall 1;
//   - whenever an exact algorithm is chosen, EstimatedRecall is exactly 1;
//   - whenever LSH is chosen, EstimatedRecall meets the SLO, lies in
//     (0, 1), and matches the AlgLSH estimate the Decision records.
func TestPlannerRecallSLOContract(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for seed := int64(1); seed <= 4; seed++ {
		e := buildEnv(t, seed, 60, 50, 80, 10, 256)
		sc := buildEnvLSH(t, e, lsh.Config{})
		for _, mem := range []int64{40, 120, 400} {
			for slo := 0.0; slo <= 1.0; slo += 0.05 {
				// Perturb the grid so the sweep is not only round numbers.
				s := slo
				if s > 0 && s < 1 {
					s += (r.Float64() - 0.5) * 0.04
				}
				opts := Options{Lambda: 4, MemoryPages: mem, LSH: sc, RecallSLO: s}
				dec, err := Choose(e.inputs(), opts)
				if err != nil {
					t.Fatalf("seed %d mem %d slo %v: %v", seed, mem, s, err)
				}
				if (s == 0 || s == 1) && dec.Chosen == LSH {
					t.Fatalf("seed %d mem %d: SLO %v chose LSH — must stay exact", seed, mem, s)
				}
				if dec.Chosen != LSH {
					if dec.EstimatedRecall != 1 {
						t.Fatalf("seed %d mem %d slo %v: exact plan %v with EstimatedRecall %v, want 1",
							seed, mem, s, dec.Chosen, dec.EstimatedRecall)
					}
					continue
				}
				if dec.EstimatedRecall < s || dec.EstimatedRecall <= 0 || dec.EstimatedRecall >= 1 {
					t.Fatalf("seed %d mem %d: LSH chosen at SLO %v with EstimatedRecall %v",
						seed, mem, s, dec.EstimatedRecall)
				}
				found := false
				for _, est := range dec.Estimates {
					if est.Algorithm == costmodel.AlgLSH {
						found = true
						if est.Recall != dec.EstimatedRecall {
							t.Fatalf("decision recall %v does not match its AlgLSH estimate %v",
								dec.EstimatedRecall, est.Recall)
						}
					} else if est.Recall != 0 {
						t.Fatalf("exact estimate %v carries recall %v, want 0", est.Algorithm, est.Recall)
					}
				}
				if !found {
					t.Fatal("LSH chosen but Decision records no AlgLSH estimate")
				}
			}
		}
	}
}

// TestPlannerChoosesLSHWhenCheaper anchors the contract test against
// vacuity: on a corpus built to favor approximation — a large, mostly
// dissimilar inner collection forcing many outer batches, no inverted
// files (so only HHNL competes), and a tight memory budget — the planner
// must actually pick LSH under a satisfiable SLO, and must fall back to
// exact when the SLO demands recall the banding cannot promise.
func TestPlannerChoosesLSHWhenCheaper(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	d := iosim.NewDisk(iosim.WithPageSize(256))
	sparse := func(n, base int) []*document.Document {
		docs := make([]*document.Document, n)
		for i := range docs {
			counts := make(map[uint32]int)
			for j := 0; j < 8; j++ {
				counts[uint32(base+r.Intn(20000))]++
			}
			docs[i] = document.New(uint32(i), counts)
		}
		return docs
	}
	c1 := buildColl(t, d, "c1", sparse(400, 0))
	c2 := buildColl(t, d, "c2", sparse(600, 0))
	e := &env{disk: d, c1: c1, c2: c2}
	sc := buildEnvLSH(t, e, lsh.Config{Bands: 8, Rows: 1})

	in := Inputs{Outer: e.c2, Inner: e.c1} // no inverted files: HHNL vs LSH
	opts := Options{Lambda: 3, MemoryPages: 24, LSH: sc, RecallSLO: 0.9}
	dec, err := Choose(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Chosen != LSH {
		t.Fatalf("favorable setup chose %v, want LSH; estimates: %+v", dec.Chosen, dec.Estimates)
	}
	if dec.EstimatedRecall < 0.9 {
		t.Fatalf("EstimatedRecall %v below the 0.9 SLO", dec.EstimatedRecall)
	}

	// An SLO above what 8×1 banding can promise at the default match
	// similarity must push the planner back to exact.
	promised := costmodel.Recall(8, 1, costmodel.DefaultMatchSim)
	opts.RecallSLO = math.Nextafter(promised, 1)
	dec, err = Choose(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Chosen == LSH {
		t.Fatalf("SLO %v above promised recall %v still chose LSH", opts.RecallSLO, promised)
	}
	if dec.EstimatedRecall != 1 {
		t.Fatalf("exact fallback EstimatedRecall = %v, want 1", dec.EstimatedRecall)
	}

	// End to end: the integrated join runs the approximate plan and its
	// Stats carry the LSH section.
	opts.RecallSLO = 0.9
	_, stats, dec2, err := JoinIntegrated(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if dec2.Chosen != LSH || stats.Algorithm != LSH || !stats.LSH.Enabled {
		t.Fatalf("integrated run: chosen %v, stats %+v", dec2.Chosen, stats)
	}
}
