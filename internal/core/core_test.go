package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"textjoin/internal/collection"
	"textjoin/internal/document"
	"textjoin/internal/entrycache"
	"textjoin/internal/invfile"
	"textjoin/internal/iosim"
	"textjoin/internal/topk"
)

// env bundles a fully built pair of collections with inverted files.
type env struct {
	disk *iosim.Disk
	c1   *collection.Collection
	c2   *collection.Collection
	inv1 *invfile.InvertedFile
	inv2 *invfile.InvertedFile
}

func (e *env) inputs() Inputs {
	return Inputs{Outer: e.c2, Inner: e.c1, InnerInv: e.inv1, OuterInv: e.inv2}
}

func buildColl(tb testing.TB, d *iosim.Disk, name string, docs []*document.Document) *collection.Collection {
	tb.Helper()
	f, err := d.Create(name)
	if err != nil {
		tb.Fatal(err)
	}
	b, err := collection.NewBuilder(name, f)
	if err != nil {
		tb.Fatal(err)
	}
	for _, doc := range docs {
		if err := b.Add(doc); err != nil {
			tb.Fatal(err)
		}
	}
	c, err := b.Finish()
	if err != nil {
		tb.Fatal(err)
	}
	return c
}

func buildInv(tb testing.TB, d *iosim.Disk, c *collection.Collection, prefix string) *invfile.InvertedFile {
	tb.Helper()
	ef, err := d.Create(prefix + ".inv")
	if err != nil {
		tb.Fatal(err)
	}
	tf, err := d.Create(prefix + ".bt")
	if err != nil {
		tb.Fatal(err)
	}
	inv, err := invfile.Build(c, ef, tf)
	if err != nil {
		tb.Fatal(err)
	}
	return inv
}

func randomDocs(r *rand.Rand, n, vocab, maxLen int) []*document.Document {
	docs := make([]*document.Document, n)
	for i := range docs {
		counts := make(map[uint32]int)
		for j, l := 0, r.Intn(maxLen)+1; j < l; j++ {
			counts[uint32(r.Intn(vocab))]++
		}
		docs[i] = document.New(uint32(i), counts)
	}
	return docs
}

func buildEnv(tb testing.TB, seed int64, n1, n2, vocab, maxLen, pageSize int) *env {
	tb.Helper()
	r := rand.New(rand.NewSource(seed))
	d := iosim.NewDisk(iosim.WithPageSize(pageSize))
	c1 := buildColl(tb, d, "c1", randomDocs(r, n1, vocab, maxLen))
	c2 := buildColl(tb, d, "c2", randomDocs(r, n2, vocab, maxLen))
	inv1 := buildInv(tb, d, c1, "c1")
	inv2 := buildInv(tb, d, c2, "c2")
	d.ResetStats()
	return &env{disk: d, c1: c1, c2: c2, inv1: inv1, inv2: inv2}
}

// reference computes the expected results by brute force.
func reference(tb testing.TB, outer collection.Reader, inner *collection.Collection, lambda int, scorer *document.Scorer) []Result {
	tb.Helper()
	var innerDocs []*document.Document
	sc := inner.Scan()
	for {
		d, err := sc.Next()
		if err != nil {
			break
		}
		innerDocs = append(innerDocs, d)
	}
	var results []Result
	it := outer.Documents()
	for {
		d2, err := it.Next()
		if err != nil {
			break
		}
		var cands []topk.Match
		for _, d1 := range innerDocs {
			cands = append(cands, topk.Match{Doc: d1.ID, Sim: scorer.Score(d2, d1)})
		}
		results = append(results, Result{Outer: d2.ID, Matches: topk.Select(lambda, cands)})
	}
	return results
}

func rawScorer(tb testing.TB) *document.Scorer {
	tb.Helper()
	s, err := document.NewScorer(document.RawTF, nil, nil, nil)
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

func sameResults(a, b []Result) error {
	if len(a) != len(b) {
		return fmt.Errorf("result count %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Outer != b[i].Outer {
			return fmt.Errorf("row %d outer %d vs %d", i, a[i].Outer, b[i].Outer)
		}
		if len(a[i].Matches) != len(b[i].Matches) {
			return fmt.Errorf("outer %d match count %d vs %d", a[i].Outer, len(a[i].Matches), len(b[i].Matches))
		}
		for j := range a[i].Matches {
			ma, mb := a[i].Matches[j], b[i].Matches[j]
			if ma.Doc != mb.Doc || math.Abs(ma.Sim-mb.Sim) > 1e-6 {
				return fmt.Errorf("outer %d match %d: %+v vs %+v", a[i].Outer, j, ma, mb)
			}
		}
	}
	return nil
}

func TestAlgorithmString(t *testing.T) {
	if HHNL.String() != "HHNL" || HVNL.String() != "HVNL" || VVM.String() != "VVM" {
		t.Error("algorithm names wrong")
	}
	if Algorithm(9).String() == "" {
		t.Error("unknown algorithm empty name")
	}
}

func TestParseAlgorithm(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Algorithm
		ok   bool
	}{{"hhnl", HHNL, true}, {"HVNL", HVNL, true}, {"vvm", VVM, true}, {"x", HHNL, false}} {
		got, err := ParseAlgorithm(c.in)
		if (err == nil) != c.ok || (c.ok && got != c.want) {
			t.Errorf("ParseAlgorithm(%q) = %v, %v", c.in, got, err)
		}
	}
}

func TestJoinDispatch(t *testing.T) {
	e := buildEnv(t, 1, 10, 8, 30, 10, 256)
	for _, alg := range []Algorithm{HHNL, HVNL, VVM} {
		res, st, err := Join(alg, e.inputs(), Options{Lambda: 3, MemoryPages: 100})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if st.Algorithm != alg {
			t.Errorf("stats.Algorithm = %v, want %v", st.Algorithm, alg)
		}
		if len(res) != 8 {
			t.Errorf("%v: %d results, want 8", alg, len(res))
		}
	}
	if _, _, err := Join(Algorithm(42), e.inputs(), Options{}); err == nil {
		t.Error("unknown algorithm: want error")
	}
}

func TestMissingInputs(t *testing.T) {
	e := buildEnv(t, 2, 5, 5, 20, 8, 256)
	if _, _, err := JoinHHNL(Inputs{Outer: e.c2}, Options{}); !errors.Is(err, ErrMissingInput) {
		t.Errorf("HHNL err = %v", err)
	}
	if _, _, err := JoinHVNL(Inputs{Outer: e.c2, Inner: e.c1}, Options{}); !errors.Is(err, ErrMissingInput) {
		t.Errorf("HVNL err = %v", err)
	}
	if _, _, err := JoinVVM(Inputs{Outer: e.c2, Inner: e.c1, InnerInv: e.inv1}, Options{}); !errors.Is(err, ErrMissingInput) {
		t.Errorf("VVM err = %v", err)
	}
}

func TestOptionValidation(t *testing.T) {
	e := buildEnv(t, 3, 4, 4, 20, 8, 256)
	if _, _, err := JoinHHNL(e.inputs(), Options{Lambda: -1}); err == nil {
		t.Error("negative lambda: want error")
	}
	if _, _, err := JoinHVNL(e.inputs(), Options{Delta: 2}); err == nil {
		t.Error("delta > 1: want error")
	}
}

func TestHHNLAgainstReference(t *testing.T) {
	e := buildEnv(t, 4, 30, 25, 60, 15, 256)
	opts := Options{Lambda: 5, MemoryPages: 50}
	got, st, err := JoinHHNL(e.inputs(), opts)
	if err != nil {
		t.Fatal(err)
	}
	want := reference(t, e.c2, e.c1, 5, rawScorer(t))
	if err := sameResults(got, want); err != nil {
		t.Fatal(err)
	}
	if st.OuterDocs != 25 || st.InnerDocs != 30 {
		t.Errorf("doc counts: %+v", st)
	}
	if st.Comparisons != 25*30 {
		t.Errorf("Comparisons = %d, want 750", st.Comparisons)
	}
	if st.Passes < 1 {
		t.Errorf("Passes = %d", st.Passes)
	}
	if st.IO.Reads() == 0 {
		t.Error("no I/O recorded")
	}
	if st.Cost <= 0 {
		t.Error("no cost recorded")
	}
}

func TestHHNLSmallMemoryMultipleBatches(t *testing.T) {
	e := buildEnv(t, 5, 20, 20, 50, 12, 128)
	// Tiny memory: a few pages -> many batches, each rescanning C1.
	got, st, err := JoinHHNL(e.inputs(), Options{Lambda: 3, MemoryPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := reference(t, e.c2, e.c1, 3, rawScorer(t))
	if err := sameResults(got, want); err != nil {
		t.Fatal(err)
	}
	if st.Passes < 2 {
		t.Errorf("Passes = %d, want > 1 under tiny memory", st.Passes)
	}
	// Each batch scans C1 once: inner reads ~ Passes * D1.
	d1 := e.c1.Stats().D
	if got := e.c1.File().Stats().Reads(); got < int64(st.Passes)*d1 {
		t.Errorf("inner reads = %d, want >= passes %d × D1 %d", got, st.Passes, d1)
	}
}

func TestHHNLInsufficientMemory(t *testing.T) {
	e := buildEnv(t, 6, 10, 10, 30, 20, 64)
	_, _, err := JoinHHNL(e.inputs(), Options{Lambda: 100000, MemoryPages: 2})
	if !errors.Is(err, ErrInsufficientMemory) {
		t.Errorf("err = %v, want ErrInsufficientMemory", err)
	}
}

func TestHHNLBackwardMatchesForward(t *testing.T) {
	e := buildEnv(t, 7, 25, 18, 50, 12, 256)
	fw, _, err := JoinHHNL(e.inputs(), Options{Lambda: 4, MemoryPages: 60})
	if err != nil {
		t.Fatal(err)
	}
	bw, st, err := JoinHHNL(e.inputs(), Options{Lambda: 4, MemoryPages: 60, Backward: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := sameResults(fw, bw); err != nil {
		t.Fatal(err)
	}
	if st.OuterDocs != 18 {
		t.Errorf("backward OuterDocs = %d", st.OuterDocs)
	}
}

func TestHHNLEmptyCollections(t *testing.T) {
	d := iosim.NewDisk(iosim.WithPageSize(256))
	empty := buildColl(t, d, "empty", nil)
	full := buildColl(t, d, "full", randomDocs(rand.New(rand.NewSource(1)), 5, 20, 8))

	// Empty outer: no results.
	res, _, err := JoinHHNL(Inputs{Outer: empty, Inner: full}, Options{Lambda: 2, MemoryPages: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("empty outer: %d results", len(res))
	}
	// Empty inner: one result per outer doc, no matches.
	res, _, err = JoinHHNL(Inputs{Outer: full, Inner: empty}, Options{Lambda: 2, MemoryPages: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("empty inner: %d results", len(res))
	}
	for _, r := range res {
		if len(r.Matches) != 0 {
			t.Errorf("outer %d has matches against empty inner", r.Outer)
		}
	}
	// Backward with empty inner behaves the same.
	res, _, err = JoinHHNL(Inputs{Outer: full, Inner: empty}, Options{Lambda: 2, MemoryPages: 10, Backward: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("backward empty inner: %d results", len(res))
	}
}

func TestHVNLAgainstReference(t *testing.T) {
	e := buildEnv(t, 8, 30, 25, 60, 15, 256)
	got, st, err := JoinHVNL(e.inputs(), Options{Lambda: 5, MemoryPages: 200})
	if err != nil {
		t.Fatal(err)
	}
	want := reference(t, e.c2, e.c1, 5, rawScorer(t))
	if err := sameResults(got, want); err != nil {
		t.Fatal(err)
	}
	if st.Accumulations == 0 {
		t.Errorf("stats = %+v", st)
	}
	// Either entries were fetched on demand, or the whole inverted file
	// was preloaded sequentially (the paper's X ≥ T1 regime).
	if st.EntryFetches == 0 && st.Passes != 1 {
		t.Errorf("no fetches and no preload sweep: %+v", st)
	}
	if st.Cache.Hits+st.Cache.Misses == 0 {
		t.Error("no cache lookups recorded")
	}
}

func TestHVNLCacheReuse(t *testing.T) {
	// With ample memory every entry is fetched at most once.
	e := buildEnv(t, 9, 40, 40, 30, 12, 256)
	_, st, err := JoinHVNL(e.inputs(), Options{Lambda: 3, MemoryPages: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if st.EntryFetches > int64(e.c1.Stats().T) {
		t.Errorf("EntryFetches = %d > T1 = %d with ample memory", st.EntryFetches, e.c1.Stats().T)
	}
	if st.Cache.Evictions != 0 {
		t.Errorf("Evictions = %d, want 0 with ample memory", st.Cache.Evictions)
	}

	// With tight memory entries are re-fetched.
	_, tight, err := JoinHVNL(e.inputs(), Options{Lambda: 3, MemoryPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	if tight.EntryFetches <= st.EntryFetches {
		t.Errorf("tight fetches %d should exceed ample fetches %d", tight.EntryFetches, st.EntryFetches)
	}
	if tight.Cache.Evictions == 0 {
		t.Error("tight memory but no evictions")
	}
}

func TestHVNLPolicies(t *testing.T) {
	e := buildEnv(t, 10, 40, 40, 30, 12, 256)
	for _, policy := range []entrycache.Policy{entrycache.MinOuterDF, entrycache.LRU} {
		got, _, err := JoinHVNL(e.inputs(), Options{Lambda: 3, MemoryPages: 10, CachePolicy: policy})
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		want := reference(t, e.c2, e.c1, 3, rawScorer(t))
		if err := sameResults(got, want); err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
	}
}

func TestHVNLInsufficientMemory(t *testing.T) {
	e := buildEnv(t, 11, 10, 10, 30, 10, 64)
	_, _, err := JoinHVNL(e.inputs(), Options{Lambda: 3, MemoryPages: 1})
	if !errors.Is(err, ErrInsufficientMemory) {
		t.Errorf("err = %v, want ErrInsufficientMemory", err)
	}
}

func TestVVMAgainstReference(t *testing.T) {
	e := buildEnv(t, 12, 30, 25, 60, 15, 256)
	got, st, err := JoinVVM(e.inputs(), Options{Lambda: 5, MemoryPages: 1000})
	if err != nil {
		t.Fatal(err)
	}
	want := reference(t, e.c2, e.c1, 5, rawScorer(t))
	if err := sameResults(got, want); err != nil {
		t.Fatal(err)
	}
	if st.Passes != 1 {
		t.Errorf("Passes = %d, want 1 with ample memory", st.Passes)
	}
	// One pass scans each inverted file exactly once.
	i1, i2 := e.inv1.Stats().I, e.inv2.Stats().I
	if got := st.IO.Reads(); got != i1+i2 {
		t.Errorf("reads = %d, want I1+I2 = %d", got, i1+i2)
	}
}

func TestVVMPartitioned(t *testing.T) {
	e := buildEnv(t, 13, 40, 40, 50, 12, 64)
	got, st, err := JoinVVM(e.inputs(), Options{Lambda: 3, MemoryPages: 6, Delta: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := reference(t, e.c2, e.c1, 3, rawScorer(t))
	if err := sameResults(got, want); err != nil {
		t.Fatal(err)
	}
	if st.Passes < 2 {
		t.Fatalf("Passes = %d, want >= 2 under tight memory", st.Passes)
	}
	i1, i2 := e.inv1.Stats().I, e.inv2.Stats().I
	if got := st.IO.Reads(); got != int64(st.Passes)*(i1+i2) {
		t.Errorf("reads = %d, want passes %d × (I1+I2) %d", got, st.Passes, i1+i2)
	}
}

func TestVVMInsufficientMemory(t *testing.T) {
	e := buildEnv(t, 14, 200, 200, 30, 60, 64)
	_, _, err := JoinVVM(e.inputs(), Options{Lambda: 3, MemoryPages: 1})
	if !errors.Is(err, ErrInsufficientMemory) {
		t.Errorf("err = %v, want ErrInsufficientMemory", err)
	}
}

func TestSubsetJoinAllAlgorithms(t *testing.T) {
	e := buildEnv(t, 15, 30, 30, 50, 12, 256)
	sub, err := e.c2.Subset([]uint32{3, 7, 11, 25})
	if err != nil {
		t.Fatal(err)
	}
	in := Inputs{Outer: sub, Inner: e.c1, InnerInv: e.inv1, OuterInv: e.inv2}
	want := reference(t, sub, e.c1, 4, rawScorer(t))
	for _, alg := range []Algorithm{HHNL, HVNL, VVM} {
		got, st, err := Join(alg, in, Options{Lambda: 4, MemoryPages: 300})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if err := sameResults(got, want); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if st.OuterDocs != 4 {
			t.Errorf("%v OuterDocs = %d, want 4", alg, st.OuterDocs)
		}
	}
}

func TestWeightingsAcrossAlgorithms(t *testing.T) {
	e := buildEnv(t, 16, 25, 20, 40, 12, 256)
	for _, w := range []document.Weighting{document.Cosine, document.TFIDF} {
		opts := Options{Lambda: 4, MemoryPages: 300, Weighting: w}
		scorer, err := e.inputs().scorer(opts)
		if err != nil {
			t.Fatal(err)
		}
		want := reference(t, e.c2, e.c1, 4, scorer)
		for _, alg := range []Algorithm{HHNL, HVNL, VVM} {
			got, _, err := Join(alg, e.inputs(), opts)
			if err != nil {
				t.Fatalf("%v/%v: %v", alg, w, err)
			}
			if err := sameResults(got, want); err != nil {
				t.Fatalf("%v/%v: %v", alg, w, err)
			}
		}
	}
}

func TestSelfJoinClusteringSpecialCase(t *testing.T) {
	// The paper frames IR clustering as the self-join special case.
	e := buildEnv(t, 17, 20, 20, 40, 10, 256)
	in := Inputs{Outer: e.c1, Inner: e.c1, InnerInv: e.inv1, OuterInv: e.inv1}
	got, _, err := JoinHHNL(in, Options{Lambda: 3, MemoryPages: 200})
	if err != nil {
		t.Fatal(err)
	}
	// Every document's best match is itself (self-similarity = squared
	// norm is maximal for raw dot products... not necessarily; but it
	// must appear among candidates when non-zero).
	for _, r := range got {
		found := false
		for _, m := range r.Matches {
			if m.Doc == r.Outer {
				found = true
			}
		}
		if !found && len(r.Matches) > 0 && e.c1.Norm(r.Outer) > 0 {
			// Self-similarity is norm² > 0; it can only be pushed out by
			// λ strictly better matches — possible but rare with λ=3.
			// Verify it is at least as similar as the last kept match.
			self := e.c1.Norm(r.Outer) * e.c1.Norm(r.Outer)
			last := r.Matches[len(r.Matches)-1]
			if self > last.Sim {
				t.Errorf("doc %d: self-sim %v beats kept %v but was dropped", r.Outer, self, last.Sim)
			}
		}
	}
}

func TestChooseIntegrated(t *testing.T) {
	e := buildEnv(t, 18, 30, 25, 60, 15, 256)
	dec, err := Choose(e.inputs(), Options{Lambda: 5, MemoryPages: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Estimates) != 3 {
		t.Fatalf("estimates = %v", dec.Estimates)
	}
	res, st, dec2, err := JoinIntegrated(e.inputs(), Options{Lambda: 5, MemoryPages: 100})
	if err != nil {
		t.Fatal(err)
	}
	if dec2.Chosen != dec.Chosen {
		t.Errorf("decisions differ: %v vs %v", dec2.Chosen, dec.Chosen)
	}
	if st.Algorithm != dec.Chosen {
		t.Errorf("ran %v, chose %v", st.Algorithm, dec.Chosen)
	}
	want := reference(t, e.c2, e.c1, 5, rawScorer(t))
	if err := sameResults(res, want); err != nil {
		t.Fatal(err)
	}
}

func TestChooseFallsBackWithoutStructures(t *testing.T) {
	e := buildEnv(t, 19, 10, 10, 30, 10, 256)
	in := Inputs{Outer: e.c2, Inner: e.c1} // no inverted files
	dec, err := Choose(in, Options{Lambda: 3, MemoryPages: 50})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Chosen != HHNL {
		t.Errorf("Chosen = %v, want HHNL fallback", dec.Chosen)
	}
}

func TestChooseFallsBackToCheapestAvailable(t *testing.T) {
	// A one-document selection makes HVNL far cheaper than HHNL; with
	// the outer inverted file missing (VVM unavailable), the fallback
	// must pick HVNL, not blindly HHNL.
	e := buildEnv(t, 20, 200, 200, 400, 30, 4096)
	sub, err := e.c2.Subset([]uint32{5})
	if err != nil {
		t.Fatal(err)
	}
	in := Inputs{Outer: sub, Inner: e.c1, InnerInv: e.inv1} // no OuterInv
	dec, err := Choose(in, Options{Lambda: 3, MemoryPages: 30})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Chosen == VVM {
		t.Fatalf("VVM chosen without its structures")
	}
	// Verify the choice matches the cheapest available estimate.
	var hh, hv float64
	for _, est := range dec.Estimates {
		switch est.Algorithm.String() {
		case "HHNL":
			hh = est.Seq
		case "HVNL":
			hv = est.Seq
		}
	}
	if hv < hh && dec.Chosen != HVNL {
		t.Errorf("Chosen = %v with hvs %v < hhs %v", dec.Chosen, hv, hh)
	}
	if hh <= hv && dec.Chosen != HHNL {
		t.Errorf("Chosen = %v with hhs %v <= hvs %v", dec.Chosen, hh, hv)
	}
}

// The paper's central invariant: all three algorithms compute the same
// join. Property-tested over random corpora, memory budgets and λ.
func TestQuickCrossAlgorithmEquality(t *testing.T) {
	check := func(seed int64, memSeed, lambdaSeed uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n1 := r.Intn(25) + 1
		n2 := r.Intn(25) + 1
		vocab := r.Intn(60) + 5
		pageSize := []int{64, 128, 256}[r.Intn(3)]
		mem := int64(memSeed%40) + 6
		lambda := int(lambdaSeed%6) + 1

		d := iosim.NewDisk(iosim.WithPageSize(pageSize))
		c1 := buildColl(t, d, "c1", randomDocs(r, n1, vocab, 10))
		c2 := buildColl(t, d, "c2", randomDocs(r, n2, vocab, 10))
		inv1 := buildInv(t, d, c1, "c1")
		inv2 := buildInv(t, d, c2, "c2")
		in := Inputs{Outer: c2, Inner: c1, InnerInv: inv1, OuterInv: inv2}
		opts := Options{Lambda: lambda, MemoryPages: mem}

		var all [][]Result
		for _, alg := range []Algorithm{HHNL, HVNL, VVM} {
			res, _, err := Join(alg, in, opts)
			if errors.Is(err, ErrInsufficientMemory) {
				return true // legitimately infeasible at this budget
			}
			if err != nil {
				t.Logf("seed %d alg %v: %v", seed, alg, err)
				return false
			}
			all = append(all, res)
		}
		for i := 1; i < len(all); i++ {
			if err := sameResults(all[0], all[i]); err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: backward HHNL equals forward HHNL.
func TestQuickBackwardEqualsForward(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := iosim.NewDisk(iosim.WithPageSize(128))
		c1 := buildColl(t, d, "c1", randomDocs(r, r.Intn(20)+1, 40, 10))
		c2 := buildColl(t, d, "c2", randomDocs(r, r.Intn(20)+1, 40, 10))
		in := Inputs{Outer: c2, Inner: c1}
		opts := Options{Lambda: 3, MemoryPages: 50}
		fw, _, err1 := JoinHHNL(in, opts)
		opts.Backward = true
		bw, _, err2 := JoinHHNL(in, opts)
		if err1 != nil || err2 != nil {
			return errors.Is(err1, ErrInsufficientMemory) && errors.Is(err2, ErrInsufficientMemory)
		}
		return sameResults(fw, bw) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: results do not depend on the memory budget.
func TestQuickMemoryInvariance(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := iosim.NewDisk(iosim.WithPageSize(128))
		c1 := buildColl(t, d, "c1", randomDocs(r, 15, 30, 10))
		c2 := buildColl(t, d, "c2", randomDocs(r, 15, 30, 10))
		inv1 := buildInv(t, d, c1, "c1")
		inv2 := buildInv(t, d, c2, "c2")
		in := Inputs{Outer: c2, Inner: c1, InnerInv: inv1, OuterInv: inv2}
		var baseline []Result
		for _, mem := range []int64{8, 20, 100, 5000} {
			res, _, err := Join(VVM, in, Options{Lambda: 4, MemoryPages: mem, Delta: 0.5})
			if errors.Is(err, ErrInsufficientMemory) {
				continue
			}
			if err != nil {
				return false
			}
			if baseline == nil {
				baseline = res
			} else if sameResults(baseline, res) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
