package core

import (
	"fmt"
	"io"

	"textjoin/internal/accum"
	"textjoin/internal/collection"
	"textjoin/internal/invfile"
	"textjoin/internal/iosim"
	"textjoin/internal/telemetry"
	"textjoin/internal/topk"
)

// JoinVVM evaluates the join with the Vertical–Vertical Merge of Section
// 4.3: scan the inverted files on both collections in parallel (they are
// stored in ascending term-number order, so one scan of each suffices,
// "very much like the merge phase of sort merge") and, whenever two
// entries carry the same term, accumulate u·v into the similarity of every
// document pair the two entries span.
//
// The memory needed for intermediate similarities is proportional to
// N1·N2; following the paper's extension, when the estimated accumulator
// size SM = 4·δ·N1·N2 bytes exceeds the available memory
// M = (B − ⌈J1⌉ − ⌈J2⌉)·P, the outer collection is divided into ⌈SM/M⌉
// ranges and both inverted files are re-scanned once per range.
//
// The per-pass similarity store is an accum.Accumulator: a dense
// range×N1 matrix when it fits M, an open-addressing table otherwise —
// never a Go map, whose hashing dominated the accumulation hot loop.
//
// When Inputs.Outer is a selection subset, only i-cells of its documents
// accumulate — but the inverted files are still scanned in full, the
// paper's point that "the sizes of the inverted files will remain the same
// even if the number of documents ... can be reduced by a selection".
func JoinVVM(in Inputs, opts Options) ([]Result, *Stats, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, nil, err
	}
	if in.InnerInv == nil || in.OuterInv == nil || in.Outer == nil || in.Inner == nil {
		return nil, nil, fmt.Errorf("%w: VVM needs both inverted files and both collections' statistics", ErrMissingInput)
	}
	if in.Outer.Base() == nil {
		// A memory-resident query batch has no inverted file — the
		// paper's point that "the availability of inverted files means
		// the applicability of certain algorithms".
		return nil, nil, fmt.Errorf("%w: VVM needs a stored outer collection, not a query batch", ErrMissingInput)
	}
	scorer, err := in.scorer(opts)
	if err != nil {
		return nil, nil, err
	}

	plan, err := vvmPlan(in, opts)
	if err != nil {
		return nil, nil, err
	}
	stats := plan.stats
	n1 := int(in.Inner.NumDocs())
	tel, trace := opts.Telemetry, opts.Trace
	occupancy := tel.Histogram("vvm.accum.occupancy", telemetry.DefaultSizeBuckets)

	var results []Result
	for p := 0; p < plan.passes; p++ {
		rangeIDs := plan.rangeIDs(p)
		if len(rangeIDs) == 0 {
			continue
		}
		stats.Passes++
		set := accum.NewIDSet(rangeIDs)
		acc := accum.New(len(rangeIDs), n1, plan.passBytes)
		if tel != nil {
			tel.Counter("join.vvm.accum." + acc.Kind()).Add(1)
		}

		merge := startPhase(tel, trace, telemetry.PhaseMerge, "vvm.merge-scan")
		if err := mergeScan(in.InnerInv, in.OuterInv, true, func(term uint32, e1, e2 *invfile.Entry) {
			factor := scorer.TermFactor(term)
			if factor == 0 {
				return
			}
			for _, c2 := range e2.Cells {
				row, ok := set.Rank(c2.Number)
				if !ok {
					continue
				}
				v := float64(c2.Weight) * factor
				for _, c1 := range e1.Cells {
					acc.Add(row, c1.Number, float64(c1.Weight)*v)
				}
				stats.Accumulations += int64(len(e1.Cells))
			}
		}); err != nil {
			merge.End()
			return nil, nil, err
		}
		merge.End()

		if mem := acc.Bytes(); mem > stats.PeakMemoryBytes {
			stats.PeakMemoryBytes = mem
		}
		occupancy.Observe(int64(acc.Len()))

		// Emit the λ best matches for every outer document in the range,
		// including documents with no non-zero similarity. rangeIDs is
		// ascending, so row order is emission order.
		finalize := startPhase(tel, trace, telemetry.PhaseFinalize, "vvm.emit-range")
		trackers := make([]*topk.TopK, len(rangeIDs))
		acc.ForEach(func(row int, inner uint32, raw float64) {
			tk := trackers[row]
			if tk == nil {
				tk = topk.New(opts.Lambda)
				trackers[row] = tk
			}
			tk.Offer(inner, scorer.Finalize(rangeIDs[row], inner, raw))
		})
		for row, id := range rangeIDs {
			var matches []Match
			if tk := trackers[row]; tk != nil {
				matches = tk.Results()
			}
			results = append(results, Result{Outer: id, Matches: matches})
		}
		finalize.End()
	}

	stats.IO = plan.track.delta()
	stats.Cost = stats.IO.Cost(alpha(in.InnerInv.File()))
	recordJoinStats(tel, stats)
	return results, stats, nil
}

// vvmPlanned is the partitioning shared by the serial and parallel VVM
// variants: the outer id list (always ascending — 0..N2-1 for a full
// collection, Subset.IDs order for a selection), the pass count, and the
// per-pass accumulator budget M in bytes.
type vvmPlanned struct {
	outerIDs  []uint32
	passes    int
	passBytes int64
	stats     *Stats
	track     *ioTracker
}

// rangeIDs returns pass p's slice of the outer ids.
func (pl *vvmPlanned) rangeIDs(p int) []uint32 {
	lo := p * len(pl.outerIDs) / pl.passes
	hi := (p + 1) * len(pl.outerIDs) / pl.passes
	return pl.outerIDs[lo:hi]
}

// vvmPlan computes the outer id list, pass count, pass memory budget, base
// statistics and I/O tracker shared by the serial and parallel VVM
// variants.
func vvmPlan(in Inputs, opts Options) (*vvmPlanned, error) {
	// The outer document ids to join: all of C2, or the selection.
	var outerIDs []uint32
	if sub, ok := in.Outer.(*collection.Subset); ok {
		outerIDs = sub.IDs()
	} else {
		n := in.Outer.NumDocs()
		outerIDs = make([]uint32, n)
		for i := range outerIDs {
			outerIDs[i] = uint32(i)
		}
	}

	// Partitioning: ⌈SM/M⌉ ranges of the outer ids.
	pageSize := int64(in.InnerInv.File().PageSize())
	n1 := in.Inner.NumDocs()
	n2 := int64(len(outerIDs))
	smBytes := int64(4 * opts.Delta * float64(n1) * float64(n2))
	j1Pages := iosim.PagesForBytes(int64(in.InnerInv.Stats().J*float64(pageSize)+0.999), int(pageSize))
	j2Pages := iosim.PagesForBytes(int64(in.OuterInv.Stats().J*float64(pageSize)+0.999), int(pageSize))
	mBytes := opts.MemoryPages*pageSize - (j1Pages+j2Pages)*pageSize
	if mBytes <= 0 {
		return nil, fmt.Errorf("%w: B=%d pages cannot hold one inverted entry from each file", ErrInsufficientMemory, opts.MemoryPages)
	}
	passes := 1
	if smBytes > mBytes {
		passes = int((smBytes + mBytes - 1) / mBytes)
	}
	if passes > len(outerIDs) && len(outerIDs) > 0 {
		passes = len(outerIDs)
	}
	if len(outerIDs) == 0 {
		passes = 0
	}

	stats := &Stats{Algorithm: VVM, InnerDocs: n1, OuterDocs: n2}
	var treeFiles []*iosim.File
	if in.InnerInv.Tree() != nil {
		treeFiles = append(treeFiles, in.InnerInv.Tree().File())
	}
	if in.OuterInv.Tree() != nil {
		treeFiles = append(treeFiles, in.OuterInv.Tree().File())
	}
	track := trackIO(append([]*iosim.File{in.InnerInv.File(), in.OuterInv.File()}, treeFiles...)...)
	return &vvmPlanned{outerIDs: outerIDs, passes: passes, passBytes: mBytes, stats: stats, track: track}, nil
}

// mergeScan runs one parallel scan over both inverted files, invoking fn
// for every term present in both (e1 from inner/C1, e2 from outer/C2).
//
// With reuse, entries are yielded from the scanners' arenas and are valid
// only for the duration of fn (the serial VVM's accumulation consumes them
// immediately); callers whose fn retains entries or sub-slices of their
// cells — the parallel VVM routes both across worker channels — must pass
// reuse=false to get stable, freshly allocated entries.
func mergeScan(inner, outer *invfile.InvertedFile, reuse bool, fn func(term uint32, e1, e2 *invfile.Entry)) error {
	s1 := inner.Scan()
	s2 := outer.Scan()
	next1, next2 := s1.Next, s2.Next
	if reuse {
		next1, next2 = s1.NextReuse, s2.NextReuse
	}
	e1, err1 := next1()
	e2, err2 := next2()
	for err1 == nil && err2 == nil {
		switch {
		case e1.Term < e2.Term:
			e1, err1 = next1()
		case e1.Term > e2.Term:
			e2, err2 = next2()
		default:
			fn(e1.Term, e1, e2)
			e1, err1 = next1()
			e2, err2 = next2()
		}
	}
	// Drain the longer file so both scans cost their full sequential
	// sweep, as the paper's one-scan cost I1 + I2 assumes. Drained
	// entries are discarded, so the reuse path always applies.
	for err1 == nil {
		_, err1 = s1.NextReuse()
	}
	for err2 == nil {
		_, err2 = s2.NextReuse()
	}
	if err1 != io.EOF {
		return err1
	}
	if err2 != io.EOF {
		return err2
	}
	return nil
}
